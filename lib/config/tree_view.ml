let summary cfg insns =
  let s = ref 0 and d = ref 0 and i = ref 0 and e = ref 0 in
  List.iter
    (fun info ->
      match Config.effective cfg info with
      | Config.Single -> incr s
      | Config.Double -> incr d
      | Config.Ignore -> incr i
      | Config.Fmt _ -> incr e)
    insns;
  Printf.sprintf "[s:%d d:%d%s%s of %d]" !s !d
    (if !e > 0 then Printf.sprintf " e:%d" !e else "")
    (if !i > 0 then Printf.sprintf " i:%d" !i else "")
    (!s + !d + !e + !i)

let render ?counts (p : Ir.program) cfg =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let rec walk prefix node =
    match (node : Static.node) with
    | Static.Insn info ->
        let f = Config.effective cfg info in
        let count_str =
          match counts with
          | Some c when info.addr < Array.length c -> Printf.sprintf "  (exec %d)" c.(info.addr)
          | _ -> ""
        in
        add "%s%s 0x%06x \"%s\"%s\n" prefix (Config.flag_token f) info.addr info.disasm
          count_str
    | Static.Block (_, children) | Static.Func (_, _, children) | Static.Module (_, children)
      ->
        add "%s%s  %s\n" prefix (Static.node_name node) (summary cfg (Static.node_insns node));
        List.iter (walk (prefix ^ "  ")) children
  in
  List.iter (walk "") (Static.tree p);
  Buffer.contents buf
