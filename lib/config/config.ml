module SMap = Map.Make (String)
module IMap = Map.Make (Int)

(* [Fmt f] assigns a reduced emulated format from the precision lattice
   (half, bfloat16, customs). [Single] and [Double] remain distinct
   constructors — not [Fmt Formats.single] / [Fmt Formats.double] — so the
   pre-lattice pipeline, exchange texts and digests stay byte-identical.
   [of_format] normalizes incoming formats onto that convention. *)
type flag = Single | Double | Ignore | Fmt of Formats.t

let of_format f =
  if Formats.equal f Formats.single then Single
  else if Formats.equal f Formats.double then Double
  else Fmt f

let format_of_flag = function
  | Single -> Some Formats.single
  | Double -> Some Formats.double
  | Fmt f -> Some f
  | Ignore -> None

type t = {
  modules : flag SMap.t;
  funcs : flag SMap.t;
  blocks : flag IMap.t;
  insns : flag IMap.t;
}

let empty =
  { modules = SMap.empty; funcs = SMap.empty; blocks = IMap.empty; insns = IMap.empty }

let set_module t m f = { t with modules = SMap.add m f t.modules }
let set_func t name f = { t with funcs = SMap.add name f t.funcs }
let set_block t label f = { t with blocks = IMap.add label f t.blocks }
let set_insn t addr f = { t with insns = IMap.add addr f t.insns }

let set_node t node f =
  match (node : Static.node) with
  | Module (m, _) -> set_module t m f
  | Func (_, name, _) -> set_func t name f
  | Block (label, _) -> set_block t label f
  | Insn { addr; _ } -> set_insn t addr f

let of_nodes nodes f = List.fold_left (fun acc n -> set_node acc n f) empty nodes

let union a b =
  let keep_left _ x _ = Some x in
  {
    modules = SMap.union (fun k x y -> keep_left k x y) a.modules b.modules;
    funcs = SMap.union (fun k x y -> keep_left k x y) a.funcs b.funcs;
    blocks = IMap.union (fun k x y -> keep_left k x y) a.blocks b.blocks;
    insns = IMap.union (fun k x y -> keep_left k x y) a.insns b.insns;
  }

(* Aggregates override children (paper §2.1), so resolution goes from the
   coarsest structure inwards. *)
let effective t (info : Static.insn_info) =
  match SMap.find_opt info.module_name t.modules with
  | Some f -> f
  | None -> (
      match SMap.find_opt info.fname t.funcs with
      | Some f -> f
      | None -> (
          match IMap.find_opt info.block_label t.blocks with
          | Some f -> f
          | None -> (
              match IMap.find_opt info.addr t.insns with Some f -> f | None -> Double)))

let is_empty t =
  SMap.is_empty t.modules && SMap.is_empty t.funcs && IMap.is_empty t.blocks
  && IMap.is_empty t.insns

let flag_char = function Single -> 's' | Double -> 'd' | Ignore -> 'i' | Fmt _ -> 'e'

let flag_of_char = function
  | 's' -> Some Single
  | 'd' -> Some Double
  | 'i' -> Some Ignore
  | _ -> None

(* Canonical flag token for exchange texts, digests and checkpoints: the
   historical one-character flags for the three base decisions, and the
   format's ["e<E>m<M>"] token for lattice formats — lowercase, so it can
   never be mistaken for the uppercase structure keywords. *)
let flag_token = function
  | Single -> "s"
  | Double -> "d"
  | Ignore -> "i"
  | Fmt f -> Formats.token f

let flag_of_token tok =
  match tok with
  | "s" -> Some Single
  | "d" -> Some Double
  | "i" -> Some Ignore
  | _ -> (
      (* accept any spelling Formats knows (e5m10, bf16, f16, tf32, ...)
         and normalize single/double back onto the base constructors *)
      match Formats.of_string tok with
      | Some f -> Some (of_format f)
      | None -> None)

let print (p : Ir.program) t =
  let buf = Buffer.create 4096 in
  let line ?flag ~indent fmt =
    Format.kasprintf
      (fun s ->
        (* one-character tokens (s/d/i and unflagged) render byte-identically
           to the pre-lattice format; lattice formats widen the flag column
           with their e<E>m<M> token *)
        let tok = match flag with Some f -> flag_token f | None -> " " in
        Buffer.add_string buf tok;
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let ordinal = ref 0 in
  let emit_node node =
    match (node : Static.node) with
    | Module (m, funcs) ->
        line ?flag:(SMap.find_opt m t.modules) ~indent:1 "MODULE: %s" m;
        List.iter
          (fun fnode ->
            match (fnode : Static.node) with
            | Func (fid, name, blocks) ->
                line ?flag:(SMap.find_opt name t.funcs) ~indent:3 "FUNC%02d: %s()" (fid + 1)
                  name;
                List.iter
                  (fun bnode ->
                    match (bnode : Static.node) with
                    | Block (label, insns) ->
                        line ?flag:(IMap.find_opt label t.blocks) ~indent:5 "BBLK%02d" label;
                        List.iter
                          (fun inode ->
                            match (inode : Static.node) with
                            | Insn info ->
                                incr ordinal;
                                line
                                  ?flag:(IMap.find_opt info.addr t.insns)
                                  ~indent:7 "INSN%02d: 0x%06x \"%s\"" !ordinal info.addr
                                  info.disasm
                            | Module _ | Func _ | Block _ -> ())
                          insns
                    | Module _ | Func _ | Insn _ -> ())
                  blocks
            | Module _ | Block _ | Insn _ -> ())
          funcs
    | Func _ | Block _ | Insn _ -> ()
  in
  List.iter emit_node (Static.tree p);
  Buffer.contents buf

let parse (p : Ir.program) text =
  let known_modules =
    Array.to_list p.modules |> List.to_seq |> Seq.map (fun m -> (m, ())) |> Hashtbl.of_seq
  in
  let known_funcs = Hashtbl.create 16 in
  Array.iter (fun (f : Ir.func) -> Hashtbl.replace known_funcs f.fname ()) p.funcs;
  let known_blocks = Hashtbl.create 64 in
  let known_addrs = Hashtbl.create 256 in
  Array.iter
    (fun (f : Ir.func) ->
      Array.iter
        (fun (b : Ir.block) ->
          Hashtbl.replace known_blocks b.label ();
          Array.iter
            (fun (i : Ir.instr) ->
              if Ir.is_candidate i.op then Hashtbl.replace known_addrs i.addr ())
            b.instrs)
        f.blocks)
    p.funcs;
  let result = ref empty in
  let error = ref None in
  let fail lineno fmt =
    Format.kasprintf
      (fun s -> if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno s))
      fmt
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      if String.trim raw <> "" && !error = None then begin
        (* Flag column. The historical one-character flags (and the unflagged
           space) parse exactly as before. Anything else lowercase before the
           first space is a lattice-format token; an unknown token is a hard
           error — a worker fed a config from a newer peer must reject it,
           not silently drop the flag. *)
        let flag, body =
          match raw.[0] with
          | 's' | 'd' | 'i' | ' ' ->
              ( flag_of_char raw.[0],
                String.trim
                  (if String.length raw > 1 then String.sub raw 1 (String.length raw - 1)
                   else "") )
          | _ ->
              let toklen =
                match String.index_opt raw ' ' with
                | Some j -> j
                | None -> String.length raw
              in
              let tok = String.sub raw 0 toklen in
              (match flag_of_token tok with
              | Some fl -> (Some fl, String.trim (String.sub raw toklen (String.length raw - toklen)))
              | None ->
                  fail lineno "unknown flag token %S" tok;
                  (None, ""))
        in
        let with_flag f = match flag with Some fl -> f fl | None -> () in
        if String.length body >= 7 && String.sub body 0 7 = "MODULE:" then begin
          let m = String.trim (String.sub body 7 (String.length body - 7)) in
          if not (Hashtbl.mem known_modules m) then fail lineno "unknown module %S" m
          else with_flag (fun fl -> result := set_module !result m fl)
        end
        else if String.length body >= 4 && String.sub body 0 4 = "FUNC" then begin
          match String.index_opt body ':' with
          | None -> fail lineno "malformed FUNC line"
          | Some i ->
              let name = String.trim (String.sub body (i + 1) (String.length body - i - 1)) in
              let name =
                if String.length name >= 2 && String.sub name (String.length name - 2) 2 = "()"
                then String.sub name 0 (String.length name - 2)
                else name
              in
              if not (Hashtbl.mem known_funcs name) then fail lineno "unknown function %S" name
              else with_flag (fun fl -> result := set_func !result name fl)
        end
        else if String.length body >= 4 && String.sub body 0 4 = "BBLK" then begin
          match int_of_string_opt (String.sub body 4 (String.length body - 4)) with
          | None -> fail lineno "malformed BBLK line"
          | Some label ->
              if not (Hashtbl.mem known_blocks label) then fail lineno "unknown block %d" label
              else with_flag (fun fl -> result := set_block !result label fl)
        end
        else if String.length body >= 4 && String.sub body 0 4 = "INSN" then begin
          match String.index_opt body ':' with
          | None -> fail lineno "malformed INSN line"
          | Some i -> (
              let rest = String.trim (String.sub body (i + 1) (String.length body - i - 1)) in
              let addr_str =
                match String.index_opt rest ' ' with
                | Some j -> String.sub rest 0 j
                | None -> rest
              in
              match int_of_string_opt addr_str with
              | None -> fail lineno "malformed instruction address %S" addr_str
              | Some addr ->
                  if not (Hashtbl.mem known_addrs addr) then
                    fail lineno "unknown instruction address 0x%x" addr
                  else with_flag (fun fl -> result := set_insn !result addr fl))
        end
        else fail lineno "unrecognized line %S" body
      end)
    lines;
  match !error with Some e -> Error e | None -> Ok !result

(* FNV-1a over the effective flag of every candidate, so two configurations
   that resolve to the same per-instruction decisions share a digest — exactly
   the equivalence the evaluation memoizer needs. The flag contributes its
   token bytes: one byte for s/d/i, so every pre-lattice digest (and with it
   every old journal, checkpoint and store log) is unchanged. *)
let digest (p : Ir.program) t =
  let h = ref 0xcbf29ce484222325L in
  let mix c = h := Int64.mul (Int64.logxor !h (Int64.of_int c)) 0x100000001b3L in
  Array.iter
    (fun (info : Static.insn_info) ->
      mix info.addr;
      String.iter (fun c -> mix (Char.code c)) (flag_token (effective t info)))
    (Static.candidates p);
  Printf.sprintf "%016Lx" !h

let summarize t =
  let buf = Buffer.create 128 in
  let add fmt =
    Format.kasprintf
      (fun s ->
        if Buffer.length buf > 0 then Buffer.add_string buf "; ";
        Buffer.add_string buf s)
      fmt
  in
  SMap.iter (fun m f -> add "%s MODULE: %s" (flag_token f) m) t.modules;
  SMap.iter (fun n f -> add "%s FUNC: %s()" (flag_token f) n) t.funcs;
  IMap.iter (fun l f -> add "%s BBLK%02d" (flag_token f) l) t.blocks;
  IMap.iter (fun a f -> add "%s INSN: 0x%06x" (flag_token f) a) t.insns;
  if Buffer.length buf = 0 then "(all-double)" else Buffer.contents buf

let stats p t =
  (* lattice formats count as replaced (the first component): they narrow
     at least as far as single does *)
  let s = ref 0 and d = ref 0 and i = ref 0 in
  Array.iter
    (fun info ->
      match effective t info with
      | Single | Fmt _ -> incr s
      | Double -> incr d
      | Ignore -> incr i)
    (Static.candidates p);
  (!s, !d, !i)

let bits_saved p t =
  Array.fold_left
    (fun acc info ->
      match format_of_flag (effective t info) with
      | Some f -> acc + Formats.bits_saved f
      | None -> acc)
    0 (Static.candidates p)

let format_census p t =
  let tbl = Hashtbl.create 8 in
  let bump k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  Array.iter
    (fun info ->
      match effective t info with
      | Ignore -> bump "ignore"
      | fl -> (
          match format_of_flag fl with
          | Some f -> bump (Formats.name f)
          | None -> assert false))
    (Static.candidates p);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
