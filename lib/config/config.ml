module SMap = Map.Make (String)
module IMap = Map.Make (Int)

type flag = Single | Double | Ignore

type t = {
  modules : flag SMap.t;
  funcs : flag SMap.t;
  blocks : flag IMap.t;
  insns : flag IMap.t;
}

let empty =
  { modules = SMap.empty; funcs = SMap.empty; blocks = IMap.empty; insns = IMap.empty }

let set_module t m f = { t with modules = SMap.add m f t.modules }
let set_func t name f = { t with funcs = SMap.add name f t.funcs }
let set_block t label f = { t with blocks = IMap.add label f t.blocks }
let set_insn t addr f = { t with insns = IMap.add addr f t.insns }

let set_node t node f =
  match (node : Static.node) with
  | Module (m, _) -> set_module t m f
  | Func (_, name, _) -> set_func t name f
  | Block (label, _) -> set_block t label f
  | Insn { addr; _ } -> set_insn t addr f

let of_nodes nodes f = List.fold_left (fun acc n -> set_node acc n f) empty nodes

let union a b =
  let keep_left _ x _ = Some x in
  {
    modules = SMap.union (fun k x y -> keep_left k x y) a.modules b.modules;
    funcs = SMap.union (fun k x y -> keep_left k x y) a.funcs b.funcs;
    blocks = IMap.union (fun k x y -> keep_left k x y) a.blocks b.blocks;
    insns = IMap.union (fun k x y -> keep_left k x y) a.insns b.insns;
  }

(* Aggregates override children (paper §2.1), so resolution goes from the
   coarsest structure inwards. *)
let effective t (info : Static.insn_info) =
  match SMap.find_opt info.module_name t.modules with
  | Some f -> f
  | None -> (
      match SMap.find_opt info.fname t.funcs with
      | Some f -> f
      | None -> (
          match IMap.find_opt info.block_label t.blocks with
          | Some f -> f
          | None -> (
              match IMap.find_opt info.addr t.insns with Some f -> f | None -> Double)))

let is_empty t =
  SMap.is_empty t.modules && SMap.is_empty t.funcs && IMap.is_empty t.blocks
  && IMap.is_empty t.insns

let flag_char = function Single -> 's' | Double -> 'd' | Ignore -> 'i'

let flag_of_char = function
  | 's' -> Some Single
  | 'd' -> Some Double
  | 'i' -> Some Ignore
  | _ -> None

let print (p : Ir.program) t =
  let buf = Buffer.create 4096 in
  let line ?flag ~indent fmt =
    Format.kasprintf
      (fun s ->
        let c = match flag with Some f -> flag_char f | None -> ' ' in
        Buffer.add_char buf c;
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let ordinal = ref 0 in
  let emit_node node =
    match (node : Static.node) with
    | Module (m, funcs) ->
        line ?flag:(SMap.find_opt m t.modules) ~indent:1 "MODULE: %s" m;
        List.iter
          (fun fnode ->
            match (fnode : Static.node) with
            | Func (fid, name, blocks) ->
                line ?flag:(SMap.find_opt name t.funcs) ~indent:3 "FUNC%02d: %s()" (fid + 1)
                  name;
                List.iter
                  (fun bnode ->
                    match (bnode : Static.node) with
                    | Block (label, insns) ->
                        line ?flag:(IMap.find_opt label t.blocks) ~indent:5 "BBLK%02d" label;
                        List.iter
                          (fun inode ->
                            match (inode : Static.node) with
                            | Insn info ->
                                incr ordinal;
                                line
                                  ?flag:(IMap.find_opt info.addr t.insns)
                                  ~indent:7 "INSN%02d: 0x%06x \"%s\"" !ordinal info.addr
                                  info.disasm
                            | Module _ | Func _ | Block _ -> ())
                          insns
                    | Module _ | Func _ | Insn _ -> ())
                  blocks
            | Module _ | Block _ | Insn _ -> ())
          funcs
    | Func _ | Block _ | Insn _ -> ()
  in
  List.iter emit_node (Static.tree p);
  Buffer.contents buf

let parse (p : Ir.program) text =
  let known_modules =
    Array.to_list p.modules |> List.to_seq |> Seq.map (fun m -> (m, ())) |> Hashtbl.of_seq
  in
  let known_funcs = Hashtbl.create 16 in
  Array.iter (fun (f : Ir.func) -> Hashtbl.replace known_funcs f.fname ()) p.funcs;
  let known_blocks = Hashtbl.create 64 in
  let known_addrs = Hashtbl.create 256 in
  Array.iter
    (fun (f : Ir.func) ->
      Array.iter
        (fun (b : Ir.block) ->
          Hashtbl.replace known_blocks b.label ();
          Array.iter
            (fun (i : Ir.instr) ->
              if Ir.is_candidate i.op then Hashtbl.replace known_addrs i.addr ())
            b.instrs)
        f.blocks)
    p.funcs;
  let result = ref empty in
  let error = ref None in
  let fail lineno fmt =
    Format.kasprintf
      (fun s -> if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno s))
      fmt
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      if String.trim raw <> "" && !error = None then begin
        let flag = if String.length raw > 0 then flag_of_char raw.[0] else None in
        let body = String.trim (if String.length raw > 1 then String.sub raw 1 (String.length raw - 1) else "") in
        let with_flag f = match flag with Some fl -> f fl | None -> () in
        if String.length body >= 7 && String.sub body 0 7 = "MODULE:" then begin
          let m = String.trim (String.sub body 7 (String.length body - 7)) in
          if not (Hashtbl.mem known_modules m) then fail lineno "unknown module %S" m
          else with_flag (fun fl -> result := set_module !result m fl)
        end
        else if String.length body >= 4 && String.sub body 0 4 = "FUNC" then begin
          match String.index_opt body ':' with
          | None -> fail lineno "malformed FUNC line"
          | Some i ->
              let name = String.trim (String.sub body (i + 1) (String.length body - i - 1)) in
              let name =
                if String.length name >= 2 && String.sub name (String.length name - 2) 2 = "()"
                then String.sub name 0 (String.length name - 2)
                else name
              in
              if not (Hashtbl.mem known_funcs name) then fail lineno "unknown function %S" name
              else with_flag (fun fl -> result := set_func !result name fl)
        end
        else if String.length body >= 4 && String.sub body 0 4 = "BBLK" then begin
          match int_of_string_opt (String.sub body 4 (String.length body - 4)) with
          | None -> fail lineno "malformed BBLK line"
          | Some label ->
              if not (Hashtbl.mem known_blocks label) then fail lineno "unknown block %d" label
              else with_flag (fun fl -> result := set_block !result label fl)
        end
        else if String.length body >= 4 && String.sub body 0 4 = "INSN" then begin
          match String.index_opt body ':' with
          | None -> fail lineno "malformed INSN line"
          | Some i -> (
              let rest = String.trim (String.sub body (i + 1) (String.length body - i - 1)) in
              let addr_str =
                match String.index_opt rest ' ' with
                | Some j -> String.sub rest 0 j
                | None -> rest
              in
              match int_of_string_opt addr_str with
              | None -> fail lineno "malformed instruction address %S" addr_str
              | Some addr ->
                  if not (Hashtbl.mem known_addrs addr) then
                    fail lineno "unknown instruction address 0x%x" addr
                  else with_flag (fun fl -> result := set_insn !result addr fl))
        end
        else fail lineno "unrecognized line %S" body
      end)
    lines;
  match !error with Some e -> Error e | None -> Ok !result

(* FNV-1a over the effective flag of every candidate, so two configurations
   that resolve to the same per-instruction decisions share a digest — exactly
   the equivalence the evaluation memoizer needs. *)
let digest (p : Ir.program) t =
  let h = ref 0xcbf29ce484222325L in
  let mix c = h := Int64.mul (Int64.logxor !h (Int64.of_int c)) 0x100000001b3L in
  Array.iter
    (fun (info : Static.insn_info) ->
      mix info.addr;
      mix (Char.code (flag_char (effective t info))))
    (Static.candidates p);
  Printf.sprintf "%016Lx" !h

let summarize t =
  let buf = Buffer.create 128 in
  let add fmt =
    Format.kasprintf
      (fun s ->
        if Buffer.length buf > 0 then Buffer.add_string buf "; ";
        Buffer.add_string buf s)
      fmt
  in
  SMap.iter (fun m f -> add "%c MODULE: %s" (flag_char f) m) t.modules;
  SMap.iter (fun n f -> add "%c FUNC: %s()" (flag_char f) n) t.funcs;
  IMap.iter (fun l f -> add "%c BBLK%02d" (flag_char f) l) t.blocks;
  IMap.iter (fun a f -> add "%c INSN: 0x%06x" (flag_char f) a) t.insns;
  if Buffer.length buf = 0 then "(all-double)" else Buffer.contents buf

let stats p t =
  let s = ref 0 and d = ref 0 and i = ref 0 in
  Array.iter
    (fun info ->
      match effective t info with
      | Single -> incr s
      | Double -> incr d
      | Ignore -> incr i)
    (Static.candidates p);
  (!s, !d, !i)
