(** Precision configurations (paper §2.1).

    A configuration maps each double-precision candidate instruction to
    [Single], [Double] or [Ignore]. Decisions can also be attached to
    aggregate structures — modules, functions, basic blocks — and an
    aggregate's flag {e overrides} any flags of its children (the paper's
    semantics: "If an aggregate entry has a flag in the first column, it
    overrides any flags specified for its children").

    Configurations are immutable; the search manipulates thousands of them,
    and immutability makes the domain-parallel evaluator safe by
    construction. *)

type flag = Single | Double | Ignore

type t

val empty : t
(** Everything defaults to [Double]. *)

val set_module : t -> string -> flag -> t
val set_func : t -> string -> flag -> t
(** Functions are addressed by name (unique within a program). *)

val set_block : t -> int -> flag -> t
(** Blocks are addressed by label. *)

val set_insn : t -> int -> flag -> t
(** Instructions are addressed by address. *)

val set_node : t -> Static.node -> flag -> t
(** Attach a flag to a structure-tree node at the node's own level. *)

val of_nodes : Static.node list -> flag -> t
(** [of_nodes nodes f] flags each node [f] (everything else default). *)

val union : t -> t -> t
(** Merge two configurations; on conflicting entries the left one wins.
    Used to compose the "final" configuration from individually-passing
    replacements. *)

val effective : t -> Static.insn_info -> flag
(** Resolve the flag of one candidate instruction: module flag if present,
    else function, else block, else the instruction's own flag, else
    [Double]. *)

val is_empty : t -> bool

val flag_char : flag -> char
(** ['s'], ['d'], ['i']. *)

(** {1 The exchange file format (paper Fig. 3)} *)

val print : Ir.program -> t -> string
(** Render in the plain-text exchange format: the program's structure
    listing with per-line flag characters in the first column. *)

val parse : Ir.program -> string -> (t, string) result
(** Parse the exchange format back. Structures are matched to the program
    by module name, function name, block label and instruction address;
    unknown structures are an error. [parse p (print p c)] observationally
    equals [c] (same effective flag on every candidate). *)

val digest : Ir.program -> t -> string
(** Stable 16-hex-digit fingerprint of the configuration's {e effective}
    per-candidate flags. Two configurations with the same observable
    behaviour under [effective] share a digest, which is what the
    evaluation journal keys on. *)

val summarize : t -> string
(** One-line rendering of the explicitly flagged structures in the Fig. 3
    token style, e.g. ["s MODULE: cg; s INSN: 0x00001f"]; ["(all-double)"]
    for the empty configuration. *)

val stats : Ir.program -> t -> int * int * int
(** [(singles, doubles, ignores)] over the program's candidate
    instructions, using effective flags. *)
