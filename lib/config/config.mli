(** Precision configurations (paper §2.1), generalized to a format lattice.

    A configuration maps each double-precision candidate instruction to
    [Single], [Double], [Ignore], or a reduced lattice format [Fmt f]
    (half, bfloat16, tf32-style customs — see {!Formats}). Decisions can
    also be attached to aggregate structures — modules, functions, basic
    blocks — and an aggregate's flag {e overrides} any flags of its
    children (the paper's semantics: "If an aggregate entry has a flag in
    the first column, it overrides any flags specified for its children").

    [Single] and [Double] stay distinct constructors rather than becoming
    [Fmt Formats.single] / [Fmt Formats.double]: their exchange-text
    encoding ([s]/[d]), digests and execution fast path are byte- and
    bit-identical to the pre-lattice system. {!of_format} normalizes.

    Configurations are immutable; the search manipulates thousands of them,
    and immutability makes the domain-parallel evaluator safe by
    construction. *)

type flag = Single | Double | Ignore | Fmt of Formats.t

val of_format : Formats.t -> flag
(** Normalize: binary32 maps to [Single], binary64 to [Double], anything
    else to [Fmt]. *)

val format_of_flag : flag -> Formats.t option
(** The execution format of a flag; [None] for [Ignore]. *)

type t

val empty : t
(** Everything defaults to [Double]. *)

val set_module : t -> string -> flag -> t
val set_func : t -> string -> flag -> t
(** Functions are addressed by name (unique within a program). *)

val set_block : t -> int -> flag -> t
(** Blocks are addressed by label. *)

val set_insn : t -> int -> flag -> t
(** Instructions are addressed by address. *)

val set_node : t -> Static.node -> flag -> t
(** Attach a flag to a structure-tree node at the node's own level. *)

val of_nodes : Static.node list -> flag -> t
(** [of_nodes nodes f] flags each node [f] (everything else default). *)

val union : t -> t -> t
(** Merge two configurations; on conflicting entries the left one wins.
    Used to compose the "final" configuration from individually-passing
    replacements. *)

val effective : t -> Static.insn_info -> flag
(** Resolve the flag of one candidate instruction: module flag if present,
    else function, else block, else the instruction's own flag, else
    [Double]. *)

val is_empty : t -> bool

val flag_char : flag -> char
(** ['s'], ['d'], ['i']; lattice formats collapse to ['e'] (display only —
    use {!flag_token} wherever the flag must round-trip). *)

val flag_token : flag -> string
(** Canonical exchange token: ["s"], ["d"], ["i"], or the format's
    ["e<E>m<M>"] token. *)

val flag_of_token : string -> flag option
(** Inverse of {!flag_token}; also accepts friendly format names
    ([bf16], [f16], [tf32], ...), normalized through {!of_format}. *)

(** {1 The exchange file format (paper Fig. 3)} *)

val print : Ir.program -> t -> string
(** Render in the plain-text exchange format: the program's structure
    listing with per-line flag characters in the first column. *)

val parse : Ir.program -> string -> (t, string) result
(** Parse the exchange format back. Structures are matched to the program
    by module name, function name, block label and instruction address;
    unknown structures are an error. [parse p (print p c)] observationally
    equals [c] (same effective flag on every candidate). *)

val digest : Ir.program -> t -> string
(** Stable 16-hex-digit fingerprint of the configuration's {e effective}
    per-candidate flags. Two configurations with the same observable
    behaviour under [effective] share a digest, which is what the
    evaluation journal keys on. *)

val summarize : t -> string
(** One-line rendering of the explicitly flagged structures in the Fig. 3
    token style, e.g. ["s MODULE: cg; s INSN: 0x00001f"]; ["(all-double)"]
    for the empty configuration. *)

val stats : Ir.program -> t -> int * int * int
(** [(replaced, doubles, ignores)] over the program's candidate
    instructions, using effective flags; lattice formats count under the
    first component. *)

val bits_saved : Ir.program -> t -> int
(** Total bits shaved off binary64 slots across all candidates: 32 per
    [Single], [64 - width] per [Fmt], 0 per [Double]/[Ignore]. The bench's
    primary lattice metric. *)

val format_census : Ir.program -> t -> (string * int) list
(** Candidates per effective format, by friendly name (plus ["ignore"]),
    sorted by name. *)
