exception Killed

type action = Kill | Stall | Garbage | Dup

let action_name = function
  | Kill -> "kill"
  | Stall -> "stall"
  | Garbage -> "garbage"
  | Dup -> "dup"

type spec = {
  seed : int;
  rate : float;
  actions : action list;
  limit : int;
  stall_for : float;
}

let default =
  { seed = 1; rate = 0.25; actions = [ Kill; Stall; Garbage; Dup ]; limit = 4; stall_for = 1.0 }

let to_string s =
  Printf.sprintf "seed=%d,rate=%g,actions=%s,limit=%d,stall=%g" s.seed s.rate
    (String.concat "+" (List.map action_name s.actions))
    s.limit s.stall_for

let action_of_string = function
  | "kill" -> Ok Kill
  | "stall" -> Ok Stall
  | "garbage" -> Ok Garbage
  | "dup" -> Ok Dup
  | s -> Error (Printf.sprintf "unknown chaos action %S (want kill|stall|garbage|dup)" s)

let parse text =
  let fields = String.split_on_char ',' (String.trim text) in
  List.fold_left
    (fun acc field ->
      Result.bind acc (fun spec ->
          let field = String.trim field in
          if field = "" then Ok spec
          else
            match String.index_opt field '=' with
            | None -> Error (Printf.sprintf "bad chaos field %S (want key=value)" field)
            | Some i -> (
                let k = String.sub field 0 i in
                let v = String.sub field (i + 1) (String.length field - i - 1) in
                match k with
                | "seed" -> (
                    match int_of_string_opt v with
                    | Some seed -> Ok { spec with seed }
                    | None -> Error (Printf.sprintf "bad chaos seed %S" v))
                | "rate" -> (
                    match float_of_string_opt v with
                    | Some rate when rate >= 0.0 && rate <= 1.0 -> Ok { spec with rate }
                    | _ -> Error (Printf.sprintf "bad chaos rate %S (want 0..1)" v))
                | "limit" -> (
                    match int_of_string_opt v with
                    | Some limit when limit >= 0 -> Ok { spec with limit }
                    | _ -> Error (Printf.sprintf "bad chaos limit %S" v))
                | "stall" -> (
                    match float_of_string_opt v with
                    | Some stall_for when stall_for >= 0.0 -> Ok { spec with stall_for }
                    | _ -> Error (Printf.sprintf "bad chaos stall %S" v))
                | "actions" ->
                    let names = String.split_on_char '+' v in
                    Result.bind
                      (List.fold_left
                         (fun acc n ->
                           Result.bind acc (fun l ->
                               Result.map (fun a -> a :: l) (action_of_string (String.trim n))))
                         (Ok []) names)
                      (fun rev ->
                        match List.rev rev with
                        | [] -> Error "empty chaos action list"
                        | actions -> Ok { spec with actions })
                | _ -> Error (Printf.sprintf "unknown chaos field %S" k))))
    (Ok default) fields

type t = {
  spec : spec;
  lock : Mutex.t;
  mutable fired : int;
  log : (action * string) list ref;  (* newest first, for reports *)
}

let create spec = { spec; lock = Mutex.create (); fired = 0; log = ref [] }
let fired t = Mutex.protect t.lock (fun () -> t.fired)
let stall_for t = t.spec.stall_for

let history t =
  List.rev_map
    (fun (a, key) -> Printf.sprintf "%s@%s" (action_name a) key)
    (Mutex.protect t.lock (fun () -> !(t.log)))

(* Same discipline as Vm.Faults: the decision for a given key is a pure
   function of (spec seed, key), so a campaign replays bit-for-bit. Only
   the [limit] budget is stateful — once spent, the fleet runs clean and
   the campaign is guaranteed to drain. *)
let draw t ~key =
  if t.spec.actions = [] || t.spec.rate <= 0.0 then None
  else
    let rng = Rng.create (Hashtbl.hash (t.spec.seed, "chaos", key)) in
    if Rng.uniform rng >= t.spec.rate then None
    else
      let a = List.nth t.spec.actions (Rng.int rng (List.length t.spec.actions)) in
      Mutex.protect t.lock (fun () ->
          if t.fired >= t.spec.limit then None
          else begin
            t.fired <- t.fired + 1;
            t.log := (a, key) :: !(t.log);
            Some a
          end)
