(** Exclusive state-dir lock for [craft serve].

    Two daemons on one [--state-dir] would silently interleave appends
    into the same store log, WAL and per-job journals; this lock makes the
    second one refuse to start with a clear error instead.

    The exclusion is an [fcntl(2)] record lock ([Unix.lockf F_TLOCK]) on
    [<dir>/LOCK], held for the daemon's lifetime. Kernel locks die with
    their process, so a lock left by a SIGKILLed or crashed daemon is
    stale by construction and reclaimed by the next {!acquire} — no pid
    probing races. The owner's pid is written into the file purely to make
    the refusal message actionable. *)

type t

val acquire : dir:string -> (t, string) result
(** Take the exclusive lock on [dir] (created if missing), writing our pid
    into it. [Error] names the live holder when another daemon has it. *)

val release : t -> unit
(** Unlock, close and remove the lockfile. The lock also vanishes on any
    process death, including [kill -9]. *)

val path : dir:string -> string
(** [<dir>/LOCK], for tests and error messages. *)
