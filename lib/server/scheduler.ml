type options = {
  max_concurrent : int;
  wave_width : int;
  retries : int;
  quarantine_after : int;
  state_dir : string option;
}

let default_options =
  { max_concurrent = 2; wave_width = 2; retries = 0; quarantine_after = 2; state_dir = None }

type job = {
  id : string;
  spec : Wire.job_spec;
  kernel : Kernel.t;
  mutable state : Wire.job_state;
  mutable tested : int;
  mutable hits : int;  (* evaluations served from the result store *)
  mutable misses : int;
  mutable started : float;  (* of the current run; 0.0 when not running *)
  mutable wall : float;  (* accumulated over finished runs *)
  mutable events_rev : string list;
  mutable n_events : int;
  stop : bool Atomic.t;
  mutable deaths : int;  (* driver crashes so far *)
  mutable recovered : bool;  (* requeued by WAL replay after a daemon death *)
  mutable config_text : string;
  mutable summary : string;
}

type t = {
  opts : options;
  echo : string -> unit;
  resolve : Wire.job_spec -> (Kernel.t, string) result;
  pool : Pool.t;
  cache : Compile.cache;
  store : Store.t;
  fleet : Fleet.t option;
  lock : Mutex.t;
  cond : Condition.t;  (* work queued / job finished / lifecycle change *)
  jobs : (string, job) Hashtbl.t;
  mutable order : string list;  (* job ids, newest first *)
  mutable next_id : int;
  mutable accepting : bool;
  mutable alive : bool;  (* runners may pick up new jobs *)
  kill : bool Atomic.t;  (* shutdown ~cancel_running: stop running jobs *)
  mutable runners : Thread.t list;
  mutable wal : Wal.t option;  (* job-table WAL; present iff state_dir is *)
  t0 : float;
}

let now () = Unix.gettimeofday ()

(* Lock held. *)
let event t j fmt =
  Format.kasprintf
    (fun line ->
      j.events_rev <- line :: j.events_rev;
      j.n_events <- j.n_events + 1;
      t.echo (Printf.sprintf "%s: %s" j.id line))
    fmt

let is_terminal = function
  | Wire.Done | Wire.Cancelled | Wire.Failed _ | Wire.Quarantined _ -> true
  | Wire.Queued | Wire.Running -> false

(* Lock held. *)
let status_of j =
  {
    Wire.id = j.id;
    spec = j.spec;
    state = j.state;
    tested = j.tested;
    store_hits = j.hits;
    store_misses = j.misses;
    wall = (j.wall +. if j.state = Wire.Running then now () -. j.started else 0.0);
  }

(* ------------------------------------------------------------- campaigns *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Everything an evaluation verdict depends on besides the program and the
   candidate config: the step budget and the backend. Two jobs that differ
   here may legitimately disagree on a timeout verdict, so they must not
   share store entries. *)
let opts_digest (spec : Wire.job_spec) =
  Printf.sprintf "steps=%s;backend=compiled"
    (match spec.Wire.eval_steps with None -> "default" | Some n -> string_of_int n)

(* Run one campaign for [j]. Returns the job's terminal state. Called
   without the lock; takes it only for counters and events. *)
let run_campaign t j =
  let k = j.kernel in
  let resumed = j.deaths > 0 || j.recovered in
  let target =
    Kernel.target ?eval_steps:j.spec.Wire.eval_steps ~cache:t.cache k
  in
  let harness, target = Harness.wrap_target ~retries:t.opts.retries target in
  let program_key = Checkpoint.program_key k.Kernel.program in
  let opts_digest = opts_digest j.spec in
  let journal, checkpoint =
    match t.opts.state_dir with
    | None -> (None, None)
    | Some root ->
        let dir = Filename.concat root j.id in
        mkdir_p dir;
        let journal =
          Journal.create ~resume:resumed ~path:(Filename.concat dir "journal")
            k.Kernel.program
        in
        let checkpoint =
          Bfs.checkpoint ~resume:resumed
            ~save_counters:(fun () ->
              (* checkpoint saves land on wave boundaries: the natural
                 per-wave durability point for the journal too *)
              Journal.sync journal;
              Harness.counters_list harness)
            ~restore_counters:(Harness.restore_counters harness)
            (Filename.concat dir "checkpoint")
        in
        (Some journal, Some checkpoint)
  in
  let eval cfg =
    let config_digest = Config.digest k.Kernel.program cfg in
    let key = Store.key ~program_key ~opts_digest ~config_digest in
    (* fleet offload happens inside the store's compute closure: only
       store misses reach the fleet, and the store's in-flight dedup
       guarantees at most one fleet item per key — which is what keeps
       the journal free of lost and duplicate verdicts under chaos *)
    let remote = ref false in
    let compute () =
      match t.fleet with
      | None -> Harness.eval harness cfg
      | Some fleet ->
          let ctx =
            {
              Fleet.bench = j.spec.Wire.bench;
              cls = j.spec.Wire.cls;
              eval_steps = j.spec.Wire.eval_steps;
              retries = t.opts.retries;
            }
          in
          let text = Config.print k.Kernel.program cfg in
          let verdict, origin =
            Fleet.eval fleet ~ctx ~key ~text (fun () -> Harness.eval harness cfg)
          in
          if origin = `Remote then remote := true;
          verdict
    in
    let verdict, served = Store.find_or_compute t.store ~key compute in
    Mutex.protect t.lock (fun () ->
        j.tested <- j.tested + 1;
        if served then j.hits <- j.hits + 1 else j.misses <- j.misses + 1;
        event t j "EVAL %s %s%s"
          (Verdict.verdict_label verdict)
          (Config.summarize cfg)
          (if served then " [store]" else if !remote then " [fleet]" else ""));
    Option.iter (fun jr -> Journal.record jr cfg verdict) journal;
    verdict = Verdict.Pass
  in
  let target = { target with Bfs.Target.eval } in
  let shadow =
    if not j.spec.Wire.shadow then None
    else begin
      Mutex.protect t.lock (fun () -> event t j "SHADOW tracing %s" k.Kernel.name);
      let tracer =
        Shadow_tracer.create
          ~config:(Shadow_tracer.all_single ~base:k.Kernel.hints k.Kernel.program)
          k.Kernel.program
      in
      let (_ : Vm.t) = Shadow_tracer.trace tracer ~setup:k.Kernel.setup in
      let report = Shadow_report.make ~base:k.Kernel.hints k.Kernel.program tracer in
      let on_pruned cfg div =
        Option.iter
          (fun jr ->
            Journal.record jr cfg
              (Verdict.Pruned (Printf.sprintf "shadow predicted divergence %.3e" div)))
          journal
      in
      Some (Bfs.shadow ~on_pruned report)
    end
  in
  let formats =
    (* the menu was validated at submission; a WAL-recovered job whose
       saved menu no longer parses falls back to the single-only default
       instead of wedging the runner *)
    match j.spec.Wire.formats with
    | "" -> Bfs.default_options.Bfs.formats
    | m -> (
        match Formats.menu_of_string m with
        | Ok menu -> menu
        | Error _ -> Bfs.default_options.Bfs.formats)
  in
  let options =
    {
      Bfs.default_options with
      workers = t.opts.wave_width;
      base = k.Kernel.hints;
      pool = Some t.pool;
      checkpoint;
      shadow;
      formats;
      stop = (fun () -> Atomic.get j.stop || Atomic.get t.kill);
    }
  in
  let strategy =
    (* validated at submission, like the menu; a WAL-recovered job whose
       saved token no longer parses falls back to the default bfs *)
    match Strategy.of_string j.spec.Wire.strategy with
    | Ok tok -> tok
    | Error _ -> Strategy.Bfs
  in
  let finally () = Option.iter Journal.close journal in
  (* Strategy.run with Bfs IS Bfs.search — same moves, same journal, same
     checkpoints; the other strategies drive the same wrapped eval path
     (store, fleet offload, journal) through their wave machines *)
  let res = Fun.protect ~finally (fun () -> Strategy.run ~options strategy target) in
  let summary =
    Printf.sprintf
      "tested %d (%d from store), static %.1f%%, dynamic %.1f%%, %d bits saved, final %s"
      j.tested j.hits res.Bfs.static_pct res.Bfs.dynamic_pct res.Bfs.bits_saved
      (if res.Bfs.final_pass then "pass" else "fail")
  in
  let state = if res.Bfs.interrupted then Wire.Cancelled else Wire.Done in
  (state, Config.print k.Kernel.program res.Bfs.final, summary)

(* --------------------------------------------------------------- runners *)

(* Lock held: the queued job with the highest priority (then oldest id). *)
let pick_queued t =
  Hashtbl.fold
    (fun _ j best ->
      if j.state <> Wire.Queued then best
      else
        match best with
        | Some b
          when b.spec.Wire.priority > j.spec.Wire.priority
               || (b.spec.Wire.priority = j.spec.Wire.priority && b.id < j.id) ->
            best
        | _ -> Some j)
    t.jobs None

let result_path root id = Filename.concat (Filename.concat root id) "result"

(* Write-temp/fsync/rename, like Checkpoint.save: the result file is always
   either absent or a complete configuration. *)
let write_result path text =
  mkdir_p (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc text;
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc;
  Sys.rename tmp path

let read_result path =
  if not (Sys.file_exists path) then ""
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  end

(* Lock held; [j.state] is terminal. Persist the outcome so a restarted
   daemon re-lists this job as finished instead of re-running it. *)
let persist_outcome t j =
  match t.wal with
  | None -> ()
  | Some wal ->
      (match t.opts.state_dir with
      | Some root when j.config_text <> "" ->
          write_result (result_path root j.id) j.config_text
      | _ -> ());
      Wal.append wal (Wal.Outcome { id = j.id; state = j.state; summary = j.summary })

let finish_run t j state config_text summary =
  Mutex.protect t.lock (fun () ->
      j.wall <- j.wall +. (now () -. j.started);
      j.started <- 0.0;
      j.state <- state;
      j.config_text <- config_text;
      j.summary <- summary;
      if is_terminal state then persist_outcome t j;
      (match state with
      | Wire.Done -> event t j "DONE %s" summary
      | Wire.Cancelled -> event t j "CANCELLED %s" summary
      | Wire.Failed why -> event t j "FAILED %s" why
      | Wire.Quarantined why -> event t j "QUARANTINED %s" why
      | Wire.Queued -> event t j "REQUEUED %s" summary
      | Wire.Running -> ());
      Condition.broadcast t.cond)

let rec runner_loop t =
  Mutex.lock t.lock;
  let rec next () =
    if Atomic.get t.kill then begin
      (* cancelled shutdown: nothing queued survives *)
      Hashtbl.iter
        (fun _ j ->
          if j.state = Wire.Queued then begin
            j.state <- Wire.Cancelled;
            j.summary <- "cancelled before starting (server shutdown)";
            persist_outcome t j;
            event t j "CANCELLED before starting (server shutdown)"
          end)
        t.jobs;
      Condition.broadcast t.cond;
      None
    end
    else
      match pick_queued t with
      | Some j -> Some j
      | None ->
          if not t.alive then None
          else begin
            Condition.wait t.cond t.lock;
            next ()
          end
  in
  match next () with
  | None -> Mutex.unlock t.lock
  | Some j ->
      j.state <- Wire.Running;
      j.started <- now ();
      event t j "RUNNING %s.%s%s (priority %d)" j.spec.Wire.bench j.spec.Wire.cls
        (if j.spec.Wire.shadow then " [shadow-guided]" else "")
        j.spec.Wire.priority;
      Mutex.unlock t.lock;
      (match run_campaign t j with
      | state, text, summary -> finish_run t j state text summary
      | exception e ->
          (* a dead campaign driver is this job's failure, never the
             scheduler's: requeue, then quarantine — Pool semantics one
             level up. A requeued job resumes from its own checkpoint and
             journal, so the retry costs almost no re-evaluation. *)
          let why = Printexc.to_string e in
          Mutex.protect t.lock (fun () -> j.deaths <- j.deaths + 1);
          if j.deaths >= t.opts.quarantine_after then
            finish_run t j
              (Wire.Quarantined
                 (Printf.sprintf "driver died %d time(s), last: %s" j.deaths why))
              "" ""
          else
            finish_run t j Wire.Queued ""
              (Printf.sprintf "driver died (%s); will resume from checkpoint" why));
      runner_loop t

(* -------------------------------------------------------------- recovery *)

let state_label = function
  | Wire.Queued -> "queued"
  | Wire.Running -> "running"
  | Wire.Done -> "done"
  | Wire.Cancelled -> "cancelled"
  | Wire.Failed _ -> "failed"
  | Wire.Quarantined _ -> "quarantined"

(* Replay the job-table WAL a previous daemon life left on this state dir:
   jobs with a terminal outcome are re-listed with their persisted result;
   jobs without one are re-queued and resume from their own per-job
   journal+checkpoint — the same machinery a driver death uses, extended
   to daemon death. *)
let recover t root wal_path =
  let entries = Wal.replay (Wal.load ~path:wal_path) in
  Mutex.protect t.lock (fun () ->
      List.iter
        (fun (id, { Wal.spec; outcome }) ->
          (match
             if String.length id > 1 && id.[0] = 'j' then
               int_of_string_opt (String.sub id 1 (String.length id - 1))
             else None
           with
          | Some n -> t.next_id <- max t.next_id n
          | None -> ());
          match t.resolve spec with
          | Error why ->
              t.echo
                (Printf.sprintf "%s: not recovered (cannot resolve %s.%s: %s)" id
                   spec.Wire.bench spec.Wire.cls why)
          | Ok kernel ->
              let j =
                {
                  id;
                  spec;
                  kernel;
                  state = Wire.Queued;
                  tested = 0;
                  hits = 0;
                  misses = 0;
                  started = 0.0;
                  wall = 0.0;
                  events_rev = [];
                  n_events = 0;
                  stop = Atomic.make false;
                  deaths = 0;
                  recovered = false;
                  config_text = "";
                  summary = "";
                }
              in
              Hashtbl.replace t.jobs id j;
              t.order <- id :: t.order;
              (match outcome with
              | Some (state, summary) ->
                  j.state <- state;
                  j.summary <- summary;
                  j.config_text <- read_result (result_path root id);
                  event t j "RECOVERED %s (daemon restarted on this state dir)"
                    (state_label state)
              | None ->
                  j.recovered <- true;
                  event t j
                    "RECOVERED requeued after daemon death; will resume from \
                     journal+checkpoint"))
        entries;
      Condition.broadcast t.cond)

(* ------------------------------------------------------------- lifecycle *)

let create ?(options = default_options) ?(log = ignore) ?fleet ~resolve ~pool ~cache ~store () =
  let opts =
    {
      options with
      max_concurrent = max 1 options.max_concurrent;
      wave_width = max 1 options.wave_width;
      quarantine_after = max 1 options.quarantine_after;
    }
  in
  let t =
    {
      opts;
      echo = log;
      resolve;
      pool;
      cache;
      store;
      fleet;
      lock = Mutex.create ();
      cond = Condition.create ();
      jobs = Hashtbl.create 32;
      order = [];
      next_id = 0;
      accepting = true;
      alive = true;
      kill = Atomic.make false;
      runners = [];
      wal = None;
      t0 = now ();
    }
  in
  (match opts.state_dir with
  | None -> ()
  | Some root ->
      mkdir_p root;
      let wal_path = Filename.concat root "jobs.wal" in
      (* replay the previous life's job table before the writer reopens the
         WAL, and before any runner can race the recovered queue *)
      recover t root wal_path;
      t.wal <- Some (Wal.create ~path:wal_path));
  t.runners <- List.init opts.max_concurrent (fun _ -> Thread.create runner_loop t);
  t

let submit t spec =
  match
    (* a bad formats menu or an unknown strategy token is the submitter's
       error, caught before the job can queue (and long before a runner
       would have to guess) *)
    match
      match spec.Wire.strategy with
      | "" -> Ok ()
      | s -> Result.map (fun (_ : Strategy.token) -> ()) (Strategy.of_string s)
    with
    | Error why -> Error why
    | Ok () -> (
        match spec.Wire.formats with
        | "" -> t.resolve spec
        | m -> (
            match Formats.menu_of_string m with
            | Error why -> Error why
            | Ok _ -> t.resolve spec))
  with
  | Error why -> Error (Printf.sprintf "cannot resolve %s.%s: %s" spec.Wire.bench spec.Wire.cls why)
  | Ok kernel ->
      Mutex.protect t.lock (fun () ->
          if not t.accepting then Error "server is draining; not accepting new campaigns"
          else begin
            t.next_id <- t.next_id + 1;
            let id = Printf.sprintf "j%04d" t.next_id in
            let j =
              {
                id;
                spec;
                kernel;
                state = Wire.Queued;
                tested = 0;
                hits = 0;
                misses = 0;
                started = 0.0;
                wall = 0.0;
                events_rev = [];
                n_events = 0;
                stop = Atomic.make false;
                deaths = 0;
                recovered = false;
                config_text = "";
                summary = "";
              }
            in
            Hashtbl.replace t.jobs id j;
            t.order <- id :: t.order;
            Option.iter (fun wal -> Wal.append wal (Wal.Submitted { id; spec })) t.wal;
            event t j "QUEUED %s.%s (priority %d)" spec.Wire.bench spec.Wire.cls
              spec.Wire.priority;
            Condition.broadcast t.cond;
            Ok id
          end)

let find t id = Hashtbl.find_opt t.jobs id

let status t who =
  Mutex.protect t.lock (fun () ->
      match who with
      | Some id -> (
          match find t id with
          | Some j -> Ok [ status_of j ]
          | None -> Error (Printf.sprintf "unknown job %S" id))
      | None -> Ok (List.rev_map (fun id -> status_of (Hashtbl.find t.jobs id)) t.order))

let events t ~job ~from =
  Mutex.protect t.lock (fun () ->
      match find t job with
      | None -> Error (Printf.sprintf "unknown job %S" job)
      | Some j ->
          (* a cursor past the end of the log can only come from a client
             that watched a previous daemon life: restart the stream so the
             recovered job's events are not silently skipped *)
          let from = if from > j.n_events then 0 else max 0 from in
          let lines =
            if from >= j.n_events then []
            else
              List.filteri (fun i _ -> i >= from) (List.rev j.events_rev)
          in
          let next = max from j.n_events in
          Ok (next, lines, is_terminal j.state && next >= j.n_events))

let result t id =
  Mutex.protect t.lock (fun () ->
      match find t id with
      | None -> Error (Printf.sprintf "unknown job %S" id)
      | Some j ->
          if is_terminal j.state then Ok (status_of j, j.config_text, j.summary)
          else
            Error
              (Printf.sprintf "job %s is not finished (%s)" id
                 (match j.state with Wire.Running -> "running" | _ -> "queued")))

let cancel t id =
  Mutex.protect t.lock (fun () ->
      match find t id with
      | None -> false
      | Some j -> (
          match j.state with
          | Wire.Queued ->
              j.state <- Wire.Cancelled;
              j.summary <- "cancelled before starting";
              persist_outcome t j;
              event t j "CANCELLED before starting";
              Condition.broadcast t.cond;
              true
          | Wire.Running ->
              Atomic.set j.stop true;
              event t j "CANCEL requested; stopping at the next wave boundary";
              true
          | _ -> false))

let stats t =
  let store = Store.stats t.store in
  let cache = Compile.stats t.cache in
  Mutex.protect t.lock (fun () ->
      let count p = Hashtbl.fold (fun _ j n -> if p j.state then n + 1 else n) t.jobs 0 in
      {
        Wire.submitted = t.next_id;
        completed = count (fun s -> s = Wire.Done);
        failed =
          count (function Wire.Failed _ | Wire.Quarantined _ -> true | _ -> false);
        cancelled = count (fun s -> s = Wire.Cancelled);
        running = count (fun s -> s = Wire.Running);
        queued = count (fun s -> s = Wire.Queued);
        store =
          { Wire.hits = store.Store.hits; misses = store.Store.misses; entries = store.Store.entries };
        cache_hits = cache.Code_cache.hits;
        cache_misses = cache.Code_cache.misses;
        uptime = now () -. t.t0;
      })

let drain t =
  Mutex.protect t.lock (fun () ->
      t.accepting <- false;
      Condition.broadcast t.cond)

let wait_idle t =
  Mutex.protect t.lock (fun () ->
      let busy () =
        Hashtbl.fold
          (fun _ j b -> b || j.state = Wire.Queued || j.state = Wire.Running)
          t.jobs false
      in
      while busy () do
        Condition.wait t.cond t.lock
      done)

let shutdown t ?(cancel_running = false) () =
  drain t;
  if cancel_running then Atomic.set t.kill true;
  let runners =
    Mutex.protect t.lock (fun () ->
        t.alive <- false;
        Condition.broadcast t.cond;
        let rs = t.runners in
        t.runners <- [];
        rs)
  in
  List.iter Thread.join runners;
  match Mutex.protect t.lock (fun () -> let w = t.wal in t.wal <- None; w) with
  | Some wal -> Wal.close wal
  | None -> ()
