type t = {
  addr : Server.addr;
  timeout : float option;
  retry_wall : float;  (* cap on total backoff time per rpc *)
  rng : Rng.t;  (* backoff jitter: keep reconnecting clients desynchronised *)
  lock : Mutex.t;
  mutable fd : Unix.file_descr option;
  mutable open_ : bool;
}

let sockaddr_of = Server.sockaddr_of

let dial ?timeout addr =
  let domain =
    match addr with Server.Unix_path _ -> Unix.PF_UNIX | Server.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd (sockaddr_of addr) with
  | () ->
      Option.iter (fun s -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO s) timeout;
      Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error e

let connect ?(retries = 5) ?(retry_delay = 0.2) ?(retry_wall = 10.0) ?timeout addr =
  let rng = Rng.create (Hashtbl.hash (Unix.getpid (), Server.addr_to_string addr)) in
  let rec go attempt delay =
    match dial ?timeout addr with
    | Ok fd ->
        Ok
          {
            addr;
            timeout;
            retry_wall = Float.max 0.0 retry_wall;
            rng;
            lock = Mutex.create ();
            fd = Some fd;
            open_ = true;
          }
    | Error e ->
        if attempt >= retries then
          Error
            (Printf.sprintf "cannot connect to %s: %s"
               (Server.addr_to_string addr) (Unix.error_message e))
        else begin
          Thread.delay (delay *. (0.5 +. Rng.uniform rng));
          go (attempt + 1) (delay *. 2.0)
        end
  in
  go 0 retry_delay

let drop_fd t =
  match t.fd with
  | None -> ()
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let close t =
  if t.open_ then begin
    t.open_ <- false;
    drop_fd t
  end

(* One request/reply exchange. Serialised: the protocol has no frame ids,
   so interleaved requests would pair with the wrong replies.

   Retry discipline: only the dial and the write phase retry — with
   jittered exponential backoff against a reconnect stampede
   (ECONNREFUSED while the daemon restarts, EPIPE on a stale fd), capped
   by [retry_wall] of total backoff so a dead daemon fails the call in
   bounded time. A failure {e after} the request was written is never
   blindly retried: the daemon may already have executed it, and
   resubmitting a non-idempotent frame (Submit) would double it. *)
let rpc t frame =
  Mutex.protect t.lock (fun () ->
      if not t.open_ then Error "connection is closed"
      else begin
        let deadline = Unix.gettimeofday () +. t.retry_wall in
        let backoff delay e fn =
          let pause = delay *. (0.5 +. Rng.uniform t.rng) in
          if Unix.gettimeofday () +. pause > deadline then
            Error
              (Printf.sprintf "%s: %s (gave up after %.1fs of retries)" fn
                 (Unix.error_message e) t.retry_wall)
          else begin
            Thread.delay pause;
            Ok (delay *. 2.0)
          end
        in
        let rec attempt delay =
          match t.fd with
          | None -> (
              match dial ?timeout:t.timeout t.addr with
              | Ok fd ->
                  t.fd <- Some fd;
                  attempt delay
              | Error e -> (
                  match backoff delay e "connect" with
                  | Ok delay -> attempt delay
                  | Error _ as err -> err))
          | Some fd -> (
              match Wire.write_frame fd frame with
              | exception Unix.Unix_error (e, fn, _) -> (
                  (* the frame never fully left: safe to reconnect and
                     retry even a non-idempotent request *)
                  drop_fd t;
                  match backoff delay e fn with
                  | Ok delay -> attempt delay
                  | Error _ as err -> err)
              | () -> (
                  match Wire.read_frame fd with
                  | Ok reply -> Ok reply
                  | Error err ->
                      drop_fd t;
                      Error (Wire.error_to_string err)
                  | exception Unix.Unix_error (e, fn, _) ->
                      drop_fd t;
                      Error (Printf.sprintf "%s: %s (server gone?)" fn (Unix.error_message e))))
        in
        attempt 0.05
      end)

let unexpected what = Error (Printf.sprintf "unexpected reply to %s" what)

let submit t spec =
  match rpc t (Wire.Submit spec) with
  | Ok (Wire.Accepted id) -> Ok id
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "submit"

let status ?job t =
  match rpc t (Wire.Status job) with
  | Ok (Wire.Status_reply jobs) -> Ok jobs
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "status"

let events t ~job ~from =
  match rpc t (Wire.Events { job; from }) with
  | Ok (Wire.Events_reply { next; events; final }) -> Ok (next, events, final)
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "events"

let watch ?(poll = 0.05) ?(from = 0) t ~job emit =
  let rec go cursor =
    match events t ~job ~from:cursor with
    | Error why -> Error why
    | Ok (next, lines, final) ->
        List.iter emit lines;
        if final then Ok next
        else begin
          if lines = [] then Thread.delay poll;
          go next
        end
  in
  go from

let result t job =
  match rpc t (Wire.Result job) with
  | Ok (Wire.Result_reply { status; config_text; summary }) ->
      Ok (status, config_text, summary)
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "result"

let terminal = function
  | Wire.Done | Wire.Cancelled | Wire.Failed _ | Wire.Quarantined _ -> true
  | Wire.Queued | Wire.Running -> false

let wait ?(poll = 0.05) t job =
  let rec go () =
    match status ~job t with
    | Error why -> Error why
    | Ok [ { Wire.state; _ } ] when terminal state -> result t job
    | Ok _ ->
        Thread.delay poll;
        go ()
  in
  go ()

let cancel t job =
  match rpc t (Wire.Cancel job) with
  | Ok (Wire.Cancel_reply ok) -> Ok ok
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "cancel"

let stats t =
  match rpc t Wire.Stats with
  | Ok (Wire.Stats_reply s) -> Ok s
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "stats"
