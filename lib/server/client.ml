type t = {
  addr : Server.addr;
  timeout : float option;
  retry_wall : float;  (* cap on total backoff time per rpc *)
  rng : Rng.t;  (* backoff jitter: keep reconnecting clients desynchronised *)
  lock : Mutex.t;
  mutable fd : Unix.file_descr option;
  mutable open_ : bool;
}

let sockaddr_of = Server.sockaddr_of

let dial ?timeout addr =
  let domain =
    match addr with Server.Unix_path _ -> Unix.PF_UNIX | Server.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd (sockaddr_of addr) with
  | () ->
      Option.iter (fun s -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO s) timeout;
      Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error e

let connect ?(retries = 5) ?(retry_delay = 0.2) ?(retry_wall = 10.0) ?timeout addr =
  (* a client writing to a daemon that just died must see EPIPE (and ride
     the restart via the retry loop), not die of a process-killing SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let rng = Rng.create (Hashtbl.hash (Unix.getpid (), Server.addr_to_string addr)) in
  let rec go attempt delay =
    match dial ?timeout addr with
    | Ok fd ->
        Ok
          {
            addr;
            timeout;
            retry_wall = Float.max 0.0 retry_wall;
            rng;
            lock = Mutex.create ();
            fd = Some fd;
            open_ = true;
          }
    | Error e ->
        if attempt >= retries then
          Error
            (Printf.sprintf "cannot connect to %s: %s"
               (Server.addr_to_string addr) (Unix.error_message e))
        else begin
          Thread.delay (delay *. (0.5 +. Rng.uniform rng));
          go (attempt + 1) (delay *. 2.0)
        end
  in
  go 0 retry_delay

let drop_fd t =
  match t.fd with
  | None -> ()
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let close t =
  if t.open_ then begin
    t.open_ <- false;
    drop_fd t
  end

(* A failed exchange is either the transport's fault — the daemon is gone
   or restarting, and trying again later may succeed — or the server's
   typed refusal, which retrying verbatim cannot fix. [watch]/[wait] key
   their rejoin loops on the distinction. *)
type failure =
  | Lost of string  (* transport: dial/write/read died, or garbled frame *)
  | Remote of string  (* the daemon answered: a typed Error_reply *)

let failure_message = function Lost why | Remote why -> why

(* Every frame a campaign client sends is a read-only query except Submit
   (re-sending it would enqueue the campaign twice) — even Cancel: the
   daemon either knows the job id or not, and cancelling twice equals
   cancelling once. Idempotent requests may be resubmitted after a
   transport failure, which is what lets a watching client ride through a
   daemon restart. *)
let idempotent = function Wire.Submit _ -> false | _ -> true

(* One request/reply exchange. Serialised: the protocol has no frame ids,
   so interleaved requests would pair with the wrong replies.

   Retry discipline: the dial and the write phase always retry — with
   jittered exponential backoff against a reconnect stampede
   (ECONNREFUSED while the daemon restarts, EPIPE on a stale fd), capped
   by [retry_wall] of total backoff so a dead daemon fails the call in
   bounded time. A failure {e after} the request was written retries only
   an {!idempotent} frame: the daemon may already have executed the
   request, and resubmitting a non-idempotent one (Submit) would double
   it. *)
let exchange t frame =
  Mutex.protect t.lock (fun () ->
      if not t.open_ then Error (Remote "connection is closed")
      else begin
        let deadline = Unix.gettimeofday () +. t.retry_wall in
        let backoff delay why fn =
          let pause = delay *. (0.5 +. Rng.uniform t.rng) in
          if Unix.gettimeofday () +. pause > deadline then
            Error
              (Lost
                 (Printf.sprintf "%s: %s (gave up after %.1fs of retries)" fn why
                    t.retry_wall))
          else begin
            Thread.delay pause;
            Ok (delay *. 2.0)
          end
        in
        let rec attempt delay =
          match t.fd with
          | None -> (
              match dial ?timeout:t.timeout t.addr with
              | Ok fd ->
                  t.fd <- Some fd;
                  attempt delay
              | Error e -> (
                  match backoff delay (Unix.error_message e) "connect" with
                  | Ok delay -> attempt delay
                  | Error _ as err -> err))
          | Some fd -> (
              match Wire.write_frame fd frame with
              | exception Unix.Unix_error (e, fn, _) -> (
                  (* the frame never fully left: safe to reconnect and
                     retry even a non-idempotent request *)
                  drop_fd t;
                  match backoff delay (Unix.error_message e) fn with
                  | Ok delay -> attempt delay
                  | Error _ as err -> err)
              | () -> (
                  let lost why fn =
                    drop_fd t;
                    if idempotent frame then
                      match backoff delay why fn with
                      | Ok delay -> attempt delay
                      | Error _ as err -> err
                    else Error (Lost (Printf.sprintf "%s: %s" fn why))
                  in
                  match Wire.read_frame fd with
                  | Ok reply -> Ok reply
                  | Error err -> lost (Wire.error_to_string err) "read"
                  | exception Unix.Unix_error (e, fn, _) ->
                      lost (Unix.error_message e ^ " (server gone?)") fn))
        in
        attempt 0.05
      end)

let rpc t frame =
  match exchange t frame with Ok r -> Ok r | Error f -> Error (failure_message f)

let unexpected what = Error (Printf.sprintf "unexpected reply to %s" what)

let submit t spec =
  match rpc t (Wire.Submit spec) with
  | Ok (Wire.Accepted id) -> Ok id
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "submit"

let status ?job t =
  match rpc t (Wire.Status job) with
  | Ok (Wire.Status_reply jobs) -> Ok jobs
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "status"

let events_x t ~job ~from =
  match exchange t (Wire.Events { job; from }) with
  | Ok (Wire.Events_reply { next; events; final }) -> Ok (next, events, final)
  | Ok (Wire.Error_reply why) -> Error (Remote why)
  | Error f -> Error f
  | Ok _ -> Error (Remote "unexpected reply to events")

let events t ~job ~from =
  match events_x t ~job ~from with Ok r -> Ok r | Error f -> Error (failure_message f)

(* Ride through a daemon restart: on [Lost], keep the cursor and the job
   id and retry until the daemon has been continuously unreachable for
   [rejoin] seconds. A recovered daemon knows the job (its WAL re-listed
   it) and resets a cursor past the end of the rebuilt event log, so the
   stream resumes instead of dying with the old process. *)
let watch ?(poll = 0.05) ?(from = 0) ?(rejoin = 30.0) t ~job emit =
  let rec go cursor lost_since =
    match events_x t ~job ~from:cursor with
    | Ok (next, lines, final) ->
        List.iter emit lines;
        if final then Ok next
        else begin
          if lines = [] then Thread.delay poll;
          go next None
        end
    | Error (Remote why) -> Error why
    | Error (Lost why) ->
        let t0 = Option.value lost_since ~default:(Unix.gettimeofday ()) in
        if Unix.gettimeofday () -. t0 >= rejoin then
          Error (Printf.sprintf "%s (daemon unreachable for %.0fs; giving up)" why rejoin)
        else begin
          Thread.delay poll;
          go cursor (Some t0)
        end
  in
  go from None

let status_x ?job t =
  match exchange t (Wire.Status job) with
  | Ok (Wire.Status_reply jobs) -> Ok jobs
  | Ok (Wire.Error_reply why) -> Error (Remote why)
  | Error f -> Error f
  | Ok _ -> Error (Remote "unexpected reply to status")

let result_x t job =
  match exchange t (Wire.Result job) with
  | Ok (Wire.Result_reply { status; config_text; summary }) ->
      Ok (status, config_text, summary)
  | Ok (Wire.Error_reply why) -> Error (Remote why)
  | Error f -> Error f
  | Ok _ -> Error (Remote "unexpected reply to result")

let result t job =
  match result_x t job with Ok r -> Ok r | Error f -> Error (failure_message f)

let terminal = function
  | Wire.Done | Wire.Cancelled | Wire.Failed _ | Wire.Quarantined _ -> true
  | Wire.Queued | Wire.Running -> false

(* Same rejoin discipline as {!watch}: both Status and Result are
   idempotent queries, so a daemon restart mid-wait costs reconnect time,
   never the result. *)
let wait ?(poll = 0.05) ?(rejoin = 30.0) t job =
  let rec go lost_since =
    let lost why =
      let t0 = Option.value lost_since ~default:(Unix.gettimeofday ()) in
      if Unix.gettimeofday () -. t0 >= rejoin then
        Error (Printf.sprintf "%s (daemon unreachable for %.0fs; giving up)" why rejoin)
      else begin
        Thread.delay poll;
        go (Some t0)
      end
    in
    match status_x ~job t with
    | Error (Remote why) -> Error why
    | Error (Lost why) -> lost why
    | Ok [ { Wire.state; _ } ] when terminal state -> (
        match result_x t job with
        | Ok r -> Ok r
        | Error (Remote why) -> Error why
        | Error (Lost why) -> lost why)
    | Ok _ ->
        Thread.delay poll;
        go None
  in
  go None

let cancel t job =
  match rpc t (Wire.Cancel job) with
  | Ok (Wire.Cancel_reply ok) -> Ok ok
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "cancel"

let stats t =
  match rpc t Wire.Stats with
  | Ok (Wire.Stats_reply s) -> Ok s
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "stats"
