type t = { fd : Unix.file_descr; lock : Mutex.t; mutable open_ : bool }

let sockaddr_of = function
  | Server.Unix_path p -> Unix.ADDR_UNIX p
  | Server.Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> raise (Unix.Unix_error (Unix.EADDRNOTAVAIL, "getaddrinfo", host)))
      in
      Unix.ADDR_INET (ip, port)

let connect ?(retries = 5) ?(retry_delay = 0.2) ?timeout addr =
  let domain =
    match addr with Server.Unix_path _ -> Unix.PF_UNIX | Server.Tcp _ -> Unix.PF_INET
  in
  let rec go attempt delay =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd (sockaddr_of addr) with
    | () ->
        Option.iter (fun s -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO s) timeout;
        Ok { fd; lock = Mutex.create (); open_ = true }
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if attempt >= retries then
          Error
            (Printf.sprintf "cannot connect to %s: %s"
               (Server.addr_to_string addr) (Unix.error_message e))
        else begin
          Thread.delay delay;
          go (attempt + 1) (delay *. 2.0)
        end
  in
  go 0 retry_delay

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* One request/reply exchange. Serialised: the protocol has no frame ids,
   so interleaved requests would pair with the wrong replies. *)
let rpc t frame =
  Mutex.protect t.lock (fun () ->
      if not t.open_ then Error "connection is closed"
      else
        match
          Wire.write_frame t.fd frame;
          Wire.read_frame t.fd
        with
        | Ok reply -> Ok reply
        | Error err -> Error (Wire.error_to_string err)
        | exception Unix.Unix_error (e, fn, _) ->
            Error (Printf.sprintf "%s: %s (server gone?)" fn (Unix.error_message e)))

let unexpected what = Error (Printf.sprintf "unexpected reply to %s" what)

let submit t spec =
  match rpc t (Wire.Submit spec) with
  | Ok (Wire.Accepted id) -> Ok id
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "submit"

let status ?job t =
  match rpc t (Wire.Status job) with
  | Ok (Wire.Status_reply jobs) -> Ok jobs
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "status"

let events t ~job ~from =
  match rpc t (Wire.Events { job; from }) with
  | Ok (Wire.Events_reply { next; events; final }) -> Ok (next, events, final)
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "events"

let watch ?(poll = 0.05) ?(from = 0) t ~job emit =
  let rec go cursor =
    match events t ~job ~from:cursor with
    | Error why -> Error why
    | Ok (next, lines, final) ->
        List.iter emit lines;
        if final then Ok next
        else begin
          if lines = [] then Thread.delay poll;
          go next
        end
  in
  go from

let result t job =
  match rpc t (Wire.Result job) with
  | Ok (Wire.Result_reply { status; config_text; summary }) ->
      Ok (status, config_text, summary)
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "result"

let terminal = function
  | Wire.Done | Wire.Cancelled | Wire.Failed _ | Wire.Quarantined _ -> true
  | Wire.Queued | Wire.Running -> false

let wait ?(poll = 0.05) t job =
  let rec go () =
    match status ~job t with
    | Error why -> Error why
    | Ok [ { Wire.state; _ } ] when terminal state -> result t job
    | Ok _ ->
        Thread.delay poll;
        go ()
  in
  go ()

let cancel t job =
  match rpc t (Wire.Cancel job) with
  | Ok (Wire.Cancel_reply ok) -> Ok ok
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "cancel"

let stats t =
  match rpc t Wire.Stats with
  | Ok (Wire.Stats_reply s) -> Ok s
  | Ok (Wire.Error_reply why) | Error why -> Error why
  | Ok _ -> unexpected "stats"
