(** The remote evaluation worker ([craft worker]).

    A worker dials the campaign daemon, introduces itself
    ([Worker_hello]), then loops: lease a batch of configuration
    evaluations, rebuild the batch's kernel + resilient harness locally,
    evaluate each item, and stream the verdicts back ([Result_push]) —
    heartbeating between items so the {!Fleet} dispatcher can tell a slow
    worker from a dead one. The loop survives a dropped connection by
    rejoining with its reconnect token: the daemon replies with the keys
    that resolved while it was away (delta sync), which the worker skips.

    A worker never fabricates verdicts: an unparseable config or an
    unbuildable kernel is skipped, and the daemon requeues the item when
    the lease expires.

    Failure injection: [?faults] ({!Vm.Faults}) makes the {e evaluations}
    hostile — the worker's own harness contains those, exactly as the
    in-process pool does; [?chaos] ({!Chaos}) makes the {e worker}
    hostile at the transport layer (death mid-batch, heartbeat stalls,
    garbage frames, duplicate deliveries), which only the daemon's fleet
    machinery can contain. *)

type stats = {
  evaluated : int;  (** configurations actually evaluated *)
  pushed : int;  (** verdicts the daemon accepted *)
  skipped : int;  (** delta-synced away, or unresolvable *)
  batches : int;  (** leases taken *)
  rejoins : int;  (** reconnects after a lost connection *)
}

val run :
  ?name:string ->
  ?capacity:int ->
  ?faults:Faults.t ->
  ?chaos:Chaos.t ->
  ?log:(string -> unit) ->
  ?dial_retries:int ->
  ?stop:(unit -> bool) ->
  resolve:(bench:string -> cls:string -> (Kernel.t, string) result) ->
  Server.addr ->
  stats
(** [run ~resolve addr] works until the daemon goes away (dial budget
    exhausted), refuses us (quarantine, version mismatch), or [stop ()]
    turns true (the worker then says [Goodbye] so its lease requeues
    immediately). [name] defaults to ["worker-<pid>"] and is the
    daemon-side quarantine identity. [chaos]'s [Kill] action raises
    {!Chaos.Killed} out of [run] — process hosts turn it into
    [exit 137], test hosts catch it and restart [run] with fresh state,
    both faithful to a real SIGKILL. Thread-safe to host several workers
    in one process (each gets its own compile cache and harnesses). *)
