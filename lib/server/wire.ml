type job_spec = {
  bench : string;
  cls : string;
  shadow : bool;
  priority : int;
  eval_steps : int option;
  formats : string;
      (* precision-format menu as a comma-separated token string
         (Formats.menu_of_string syntax); "" means the single-only default *)
  strategy : string;
      (* search-strategy token (Strategy.of_string syntax); "" means the
         default bfs. Like formats, the codec carries it verbatim —
         validation happens at Scheduler.submit *)
}

type job_state =
  | Queued
  | Running
  | Done
  | Cancelled
  | Failed of string
  | Quarantined of string

type job_status = {
  id : string;
  spec : job_spec;
  state : job_state;
  tested : int;
  store_hits : int;
  store_misses : int;
  wall : float;
}

type store_stats = { hits : int; misses : int; entries : int }

type server_stats = {
  submitted : int;
  completed : int;
  failed : int;
  cancelled : int;
  running : int;
  queued : int;
  store : store_stats;
  cache_hits : int;
  cache_misses : int;
  uptime : float;
}

type batch = {
  lease : string;
  bench : string;
  cls : string;
  eval_steps : int option;
  retries : int;
  items : (string * string) list;
}

type frame =
  | Submit of job_spec
  | Status of string option
  | Events of { job : string; from : int }
  | Result of string
  | Cancel of string
  | Stats
  | Worker_hello of {
      name : string;
      wire_version : int;
      reconnect : string option;
      capacity : int;
    }
  | Lease_request of { worker : string; capacity : int }
  | Result_push of { worker : string; lease : string; results : (string * string) list }
  | Heartbeat of { worker : string; lease : string option; completed : int }
  | Goodbye of string
  | Accepted of string
  | Status_reply of job_status list
  | Events_reply of { next : int; events : string list; final : bool }
  | Result_reply of { status : job_status; config_text : string; summary : string }
  | Cancel_reply of bool
  | Stats_reply of server_stats
  | Error_reply of string
  | Worker_welcome of {
      worker : string;
      wire_version : int;
      heartbeat_every : float;
      lease_ttl : float;
      already_done : string list;
    }
  | Lease_reply of batch option
  | Result_ack of { accepted : int; ignored : int }
  | Heartbeat_ack of { abandon : bool }
  | Goodbye_ack of { requeued : int }

let version = 2
let min_version = 1
let max_frame = 16 * 1024 * 1024

type error =
  | Need_more of int
  | Bad_version of int
  | Bad_tag of int
  | Oversized of int
  | Malformed of string

let error_to_string = function
  | Need_more n -> Printf.sprintf "incomplete frame (need >= %d more byte(s))" n
  | Bad_version v ->
      Printf.sprintf "unsupported protocol version %d (expected %d-%d)" v min_version version
  | Bad_tag t -> Printf.sprintf "unknown frame tag %d" t
  | Oversized n -> Printf.sprintf "frame payload %d exceeds the %d-byte limit" n max_frame
  | Malformed why -> "malformed frame: " ^ why

(* ------------------------------------------------------------- encoding *)

let tag_of = function
  | Submit _ -> 1
  | Status _ -> 2
  | Events _ -> 3
  | Result _ -> 4
  | Cancel _ -> 5
  | Stats -> 6
  | Worker_hello _ -> 7
  | Lease_request _ -> 8
  | Result_push _ -> 9
  | Heartbeat _ -> 10
  | Goodbye _ -> 11
  | Accepted _ -> 16
  | Status_reply _ -> 17
  | Events_reply _ -> 18
  | Result_reply _ -> 19
  | Cancel_reply _ -> 20
  | Stats_reply _ -> 21
  | Error_reply _ -> 22
  | Worker_welcome _ -> 23
  | Lease_reply _ -> 24
  | Result_ack _ -> 25
  | Heartbeat_ack _ -> 26
  | Goodbye_ack _ -> 27

(* Fleet frames are a protocol-2 extension; everything else still goes out
   as version 1, so a v1 peer keeps understanding the campaign frames and
   rejects only the worker traffic it could never serve anyway. *)
let version_of_tag t = if (t >= 7 && t <= 11) || t >= 23 then 2 else 1

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let put_i64 b v =
  let v = Int64.of_int v in
  for shift = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * shift)) 0xFFL)))
  done

let put_f64 b v =
  let bits = Int64.bits_of_float v in
  for shift = 7 downto 0 do
    Buffer.add_char b
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * shift)) 0xFFL)))
  done

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_bool b v = put_u8 b (if v then 1 else 0)

let put_opt_int b = function
  | None -> put_u8 b 0
  | Some v ->
      put_u8 b 1;
      put_i64 b v

let put_opt_str b = function
  | None -> put_u8 b 0
  | Some s ->
      put_u8 b 1;
      put_str b s

let put_list b put xs =
  put_u32 b (List.length xs);
  List.iter (put b) xs

let put_spec b (s : job_spec) =
  put_str b s.bench;
  put_str b s.cls;
  put_bool b s.shadow;
  put_i64 b s.priority;
  put_opt_int b s.eval_steps;
  put_str b s.formats;
  put_str b s.strategy

let put_state b = function
  | Queued -> put_u8 b 0
  | Running -> put_u8 b 1
  | Done -> put_u8 b 2
  | Cancelled -> put_u8 b 3
  | Failed why ->
      put_u8 b 4;
      put_str b why
  | Quarantined why ->
      put_u8 b 5;
      put_str b why

let put_status b (st : job_status) =
  put_str b st.id;
  put_spec b st.spec;
  put_state b st.state;
  put_i64 b st.tested;
  put_i64 b st.store_hits;
  put_i64 b st.store_misses;
  put_f64 b st.wall

let put_server_stats b (s : server_stats) =
  put_i64 b s.submitted;
  put_i64 b s.completed;
  put_i64 b s.failed;
  put_i64 b s.cancelled;
  put_i64 b s.running;
  put_i64 b s.queued;
  put_i64 b s.store.hits;
  put_i64 b s.store.misses;
  put_i64 b s.store.entries;
  put_i64 b s.cache_hits;
  put_i64 b s.cache_misses;
  put_f64 b s.uptime

let put_pair b (k, v) =
  put_str b k;
  put_str b v

let put_batch b (bt : batch) =
  put_str b bt.lease;
  put_str b bt.bench;
  put_str b bt.cls;
  put_opt_int b bt.eval_steps;
  put_i64 b bt.retries;
  put_list b put_pair bt.items

let encode frame =
  let body = Buffer.create 64 in
  let tag = tag_of frame in
  put_u8 body (version_of_tag tag);
  put_u8 body tag;
  (match frame with
  | Submit spec -> put_spec body spec
  | Status job -> put_opt_str body job
  | Events { job; from } ->
      put_str body job;
      put_i64 body from
  | Result job | Cancel job | Accepted job | Goodbye job -> put_str body job
  | Stats -> ()
  | Worker_hello { name; wire_version; reconnect; capacity } ->
      put_str body name;
      put_i64 body wire_version;
      put_opt_str body reconnect;
      put_i64 body capacity
  | Lease_request { worker; capacity } ->
      put_str body worker;
      put_i64 body capacity
  | Result_push { worker; lease; results } ->
      put_str body worker;
      put_str body lease;
      put_list body put_pair results
  | Heartbeat { worker; lease; completed } ->
      put_str body worker;
      put_opt_str body lease;
      put_i64 body completed
  | Worker_welcome { worker; wire_version; heartbeat_every; lease_ttl; already_done } ->
      put_str body worker;
      put_i64 body wire_version;
      put_f64 body heartbeat_every;
      put_f64 body lease_ttl;
      put_list body put_str already_done
  | Lease_reply b -> (
      match b with
      | None -> put_u8 body 0
      | Some bt ->
          put_u8 body 1;
          put_batch body bt)
  | Result_ack { accepted; ignored } ->
      put_i64 body accepted;
      put_i64 body ignored
  | Heartbeat_ack { abandon } -> put_bool body abandon
  | Goodbye_ack { requeued } -> put_i64 body requeued
  | Status_reply sts -> put_list body put_status sts
  | Events_reply { next; events; final } ->
      put_i64 body next;
      put_list body put_str events;
      put_bool body final
  | Result_reply { status; config_text; summary } ->
      put_status body status;
      put_str body config_text;
      put_str body summary
  | Cancel_reply ok -> put_bool body ok
  | Stats_reply s -> put_server_stats body s
  | Error_reply msg -> put_str body msg);
  let n = Buffer.length body in
  let out = Buffer.create (n + 4) in
  put_u32 out n;
  Buffer.add_buffer out body;
  Buffer.to_bytes out

(* ------------------------------------------------------------- decoding *)

(* Internal parse failures use this exception; [decode] catches it (and
   anything else) at the boundary, so the public API is total. *)
exception Parse of string

type cursor = { buf : Bytes.t; stop : int; mutable at : int }

let need c n =
  if c.at + n > c.stop then
    raise (Parse (Printf.sprintf "payload truncated at byte %d (want %d more)" c.at n))

let get_u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.buf c.at) in
  c.at <- c.at + 1;
  v

let get_u32 c =
  need c 4;
  let b i = Char.code (Bytes.get c.buf (c.at + i)) in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  c.at <- c.at + 4;
  v

let get_i64 c =
  need c 8;
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code (Bytes.get c.buf (c.at + i))))
  done;
  c.at <- c.at + 8;
  Int64.to_int !v

let get_f64 c =
  need c 8;
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code (Bytes.get c.buf (c.at + i))))
  done;
  c.at <- c.at + 8;
  Int64.float_of_bits !v

let get_str c =
  let n = get_u32 c in
  if n > max_frame then raise (Parse (Printf.sprintf "string length %d too large" n));
  need c n;
  let s = Bytes.sub_string c.buf c.at n in
  c.at <- c.at + n;
  s

let get_bool c =
  match get_u8 c with
  | 0 -> false
  | 1 -> true
  | v -> raise (Parse (Printf.sprintf "bad boolean byte %d" v))

let get_opt c get =
  match get_u8 c with
  | 0 -> None
  | 1 -> Some (get c)
  | v -> raise (Parse (Printf.sprintf "bad option byte %d" v))

let get_list c get =
  let n = get_u32 c in
  (* every element takes at least one byte; reject absurd counts before
     allocating on their behalf *)
  if n > c.stop - c.at then raise (Parse (Printf.sprintf "list length %d too large" n));
  List.init n (fun _ -> get c)

let get_spec c =
  let bench = get_str c in
  let cls = get_str c in
  let shadow = get_bool c in
  let priority = get_i64 c in
  let eval_steps = get_opt c get_i64 in
  let formats = get_str c in
  let strategy = get_str c in
  { bench; cls; shadow; priority; eval_steps; formats; strategy }

let get_state c =
  match get_u8 c with
  | 0 -> Queued
  | 1 -> Running
  | 2 -> Done
  | 3 -> Cancelled
  | 4 -> Failed (get_str c)
  | 5 -> Quarantined (get_str c)
  | v -> raise (Parse (Printf.sprintf "bad job-state byte %d" v))

let get_status c =
  let id = get_str c in
  let spec = get_spec c in
  let state = get_state c in
  let tested = get_i64 c in
  let store_hits = get_i64 c in
  let store_misses = get_i64 c in
  let wall = get_f64 c in
  { id; spec; state; tested; store_hits; store_misses; wall }

let get_server_stats c =
  let submitted = get_i64 c in
  let completed = get_i64 c in
  let failed = get_i64 c in
  let cancelled = get_i64 c in
  let running = get_i64 c in
  let queued = get_i64 c in
  let hits = get_i64 c in
  let misses = get_i64 c in
  let entries = get_i64 c in
  let cache_hits = get_i64 c in
  let cache_misses = get_i64 c in
  let uptime = get_f64 c in
  {
    submitted;
    completed;
    failed;
    cancelled;
    running;
    queued;
    store = { hits; misses; entries };
    cache_hits;
    cache_misses;
    uptime;
  }

let get_pair c =
  let k = get_str c in
  let v = get_str c in
  (k, v)

let get_batch c =
  let lease = get_str c in
  let bench = get_str c in
  let cls = get_str c in
  let eval_steps = get_opt c get_i64 in
  let retries = get_i64 c in
  let items = get_list c get_pair in
  { lease; bench; cls; eval_steps; retries; items }

let parse_body c tag =
  match tag with
  | 1 -> Submit (get_spec c)
  | 2 -> Status (get_opt c get_str)
  | 3 ->
      let job = get_str c in
      let from = get_i64 c in
      Events { job; from }
  | 4 -> Result (get_str c)
  | 5 -> Cancel (get_str c)
  | 6 -> Stats
  | 7 ->
      let name = get_str c in
      let wire_version = get_i64 c in
      let reconnect = get_opt c get_str in
      let capacity = get_i64 c in
      Worker_hello { name; wire_version; reconnect; capacity }
  | 8 ->
      let worker = get_str c in
      let capacity = get_i64 c in
      Lease_request { worker; capacity }
  | 9 ->
      let worker = get_str c in
      let lease = get_str c in
      let results = get_list c get_pair in
      Result_push { worker; lease; results }
  | 10 ->
      let worker = get_str c in
      let lease = get_opt c get_str in
      let completed = get_i64 c in
      Heartbeat { worker; lease; completed }
  | 11 -> Goodbye (get_str c)
  | 16 -> Accepted (get_str c)
  | 17 -> Status_reply (get_list c get_status)
  | 18 ->
      let next = get_i64 c in
      let events = get_list c get_str in
      let final = get_bool c in
      Events_reply { next; events; final }
  | 19 ->
      let status = get_status c in
      let config_text = get_str c in
      let summary = get_str c in
      Result_reply { status; config_text; summary }
  | 20 -> Cancel_reply (get_bool c)
  | 21 -> Stats_reply (get_server_stats c)
  | 22 -> Error_reply (get_str c)
  | 23 ->
      let worker = get_str c in
      let wire_version = get_i64 c in
      let heartbeat_every = get_f64 c in
      let lease_ttl = get_f64 c in
      let already_done = get_list c get_str in
      Worker_welcome { worker; wire_version; heartbeat_every; lease_ttl; already_done }
  | 24 -> Lease_reply (get_opt c get_batch)
  | 25 ->
      let accepted = get_i64 c in
      let ignored = get_i64 c in
      Result_ack { accepted; ignored }
  | 26 -> Heartbeat_ack { abandon = get_bool c }
  | 27 -> Goodbye_ack { requeued = get_i64 c }
  | _ -> assert false (* tag already validated *)

(* A tag is only known at the protocol version that introduced it: a v1
   frame carrying a fleet tag is hostile (or corrupt), not future-proof. *)
let known_tag ~version:v t =
  (t >= 1 && t <= 6) || (t >= 16 && t <= 22)
  || (v >= 2 && ((t >= 7 && t <= 11) || (t >= 23 && t <= 27)))

let decode buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    Error (Malformed "window outside the buffer")
  else if len < 4 then Error (Need_more (4 - len))
  else begin
    let b i = Char.code (Bytes.get buf (pos + i)) in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if n > max_frame then Error (Oversized n)
    else if n < 2 then Error (Malformed "payload too short for version and tag")
    else if len < 4 + n then Error (Need_more (4 + n - len))
    else begin
      let c = { buf; stop = pos + 4 + n; at = pos + 4 } in
      match
        let v = get_u8 c in
        if v < min_version || v > version then Error (Bad_version v)
        else begin
          let tag = get_u8 c in
          if not (known_tag ~version:v tag) then Error (Bad_tag tag)
          else begin
            let frame = parse_body c tag in
            if c.at <> c.stop then
              Error (Malformed (Printf.sprintf "%d trailing byte(s) in frame" (c.stop - c.at)))
            else Ok (frame, 4 + n)
          end
        end
      with
      | res -> res
      | exception Parse why -> Error (Malformed why)
      | exception _ -> Error (Malformed "unparseable payload")
    end
  end

(* --------------------------------------------------------------- fd I/O *)

let write_all fd buf =
  let n = Bytes.length buf in
  let sent = ref 0 in
  while !sent < n do
    let k = Unix.write fd buf !sent (n - !sent) in
    if k = 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
    sent := !sent + k
  done

let write_frame fd frame = write_all fd (encode frame)

let read_exact fd buf off n =
  let got = ref 0 in
  (try
     while !got < n do
       let k = Unix.read fd buf (off + !got) (n - !got) in
       if k = 0 then raise Exit;
       got := !got + k
     done
   with Exit -> ());
  !got

let read_frame fd =
  let head = Bytes.create 4 in
  match read_exact fd head 0 4 with
  | 0 -> Error (Need_more 4)
  | k when k < 4 -> Error (Malformed "EOF inside the length prefix")
  | _ -> (
      let b i = Char.code (Bytes.get head i) in
      let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if n > max_frame then Error (Oversized n)
      else begin
        let buf = Bytes.create (4 + n) in
        Bytes.blit head 0 buf 0 4;
        let got = read_exact fd buf 4 n in
        if got < n then Error (Malformed "EOF inside the payload")
        else
          match decode buf ~pos:0 ~len:(4 + n) with
          | Ok (frame, _) -> Ok frame
          | Error _ as e -> e
      end)
