(** Deterministic network-level fault injection for the worker fleet.

    {!Vm.Faults} makes individual {e evaluations} hostile (traps, hangs,
    silent corruption inside the VM); this module makes the {e fleet}
    hostile, at the transport layer, so the dispatcher's death/rejoin
    machinery can be proven out the same way the resilient harness was.
    A chaos-enabled worker ({!Worker}, [craft worker --chaos ...]) draws
    at most one action per leased batch:

    - [Kill]: the worker dies mid-batch ({!Killed} simulates SIGKILL
      in-process; [craft worker] turns it into [exit 137]) and restarts
      from scratch — the daemon must requeue the unfinished items.
    - [Stall]: the worker stops heartbeating and sleeps mid-batch — the
      daemon's two-tier deadlines must requeue the lease and ignore the
      stale results that arrive after the stall.
    - [Garbage]: the worker writes raw junk bytes into the connection —
      the daemon's total decoder drops the connection, and the worker
      must rejoin with result-store delta sync.
    - [Dup]: the worker delivers a result batch twice — the daemon must
      acknowledge the duplicate without double-recording.

    Like {!Vm.Faults}, decisions are a pure function of (seed, batch key),
    so a chaos campaign replays bit-for-bit; a [limit] budget bounds the
    total number of fired faults so every campaign eventually drains. *)

exception Killed
(** Raised inside an in-process worker selected for [Kill]; simulates
    SIGKILL for workers hosted in test threads and bench domains. *)

type action = Kill | Stall | Garbage | Dup

val action_name : action -> string

type spec = {
  seed : int;
  rate : float;  (** probability that a leased batch draws a fault *)
  actions : action list;  (** drawn uniformly from this list *)
  limit : int;  (** total faults allowed to fire; 0 disables injection *)
  stall_for : float;  (** seconds a [Stall] holds its breath *)
}

val default : spec
(** [seed=1, rate=0.25, actions=all four, limit=4, stall=1s]. *)

val parse : string -> (spec, string) result
(** Parse a CLI spec: comma-separated [seed=N], [rate=F],
    [actions=kill+stall+garbage+dup], [limit=N], [stall=F]. Omitted
    fields keep their {!default}. *)

val to_string : spec -> string
(** Inverse of {!parse} (up to field order). *)

type t
(** Injector state: the spec plus the spent-budget counter. *)

val create : spec -> t

val draw : t -> key:string -> action option
(** [draw t ~key] decides deterministically whether the batch identified
    by [key] (worker name + lease id) faults, and with which action.
    Returns [None] once [limit] faults have fired. Thread-safe. *)

val fired : t -> int
(** Faults that actually fired so far. *)

val stall_for : t -> float
(** The spec's [stall_for], for the worker applying a [Stall]. *)

val history : t -> string list
(** Fired faults in order, ["action@key"], for reports and the bench. *)
