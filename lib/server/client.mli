(** Typed client for the campaign daemon.

    One {!t} is one connection running the strict request/reply protocol;
    it is thread-safe (a mutex serialises frames on the wire). Every call
    is total — transport failures, server [Error_reply]s and protocol
    surprises all come back as [Error _] strings, never exceptions, so CLI
    verbs and the bench can pattern-match their way to an exit code.

    Reconnects are retried with {e jittered} exponential backoff (so many
    clients whose daemon restarts do not stampede it in lockstep) and the
    total backoff per call is capped by [retry_wall]. Failures where the
    request provably never left — a refused dial, a failed write — are
    always retried. Once a request has been written, a transport failure
    retries only {e idempotent} frames (every query including Cancel;
    everything except Submit, which could be doubled): this is what lets
    {!watch} and {!wait} ride through a daemon restart, reconnecting with
    their event cursor and job id and resuming against the recovered job
    table instead of dying with the old process. *)

type t

val connect :
  ?retries:int ->
  ?retry_delay:float ->
  ?retry_wall:float ->
  ?timeout:float ->
  Server.addr ->
  (t, string) result
(** [connect addr] with up to [retries] (default 5) extra attempts spaced
    [retry_delay] (default 0.2s, doubling, jittered) apart — a
    just-started daemon may not be listening yet. [retry_wall] (default
    10s) caps the total backoff later calls spend reconnecting after
    [ECONNREFUSED]/[EPIPE]. [timeout] (default none) arms a per-reply
    receive deadline on the socket. Also ignores [SIGPIPE] process-wide,
    like {!Server.start}: a write to a daemon that just died must surface
    as [EPIPE] and feed the retry loop, not kill the client. *)

val close : t -> unit
(** Idempotent. *)

val submit : t -> Wire.job_spec -> (string, string) result
(** Returns the job id. *)

val status : ?job:string -> t -> (Wire.job_status list, string) result
val events : t -> job:string -> from:int -> (int * string list * bool, string) result

val watch :
  ?poll:float ->
  ?from:int ->
  ?rejoin:float ->
  t ->
  job:string ->
  (string -> unit) ->
  (int, string) result
(** Stream the job's event lines to the callback until the server reports
    the stream final (the job is terminal and fully drained), polling
    every [poll] seconds (default 0.05) when no new lines are pending.
    Returns the final cursor. A transport loss keeps the cursor and
    retries until the daemon has been continuously unreachable for
    [rejoin] seconds (default 30): a daemon restarted on its state dir
    re-lists the job from its WAL, and the watch resumes. *)

val result : t -> string -> (Wire.job_status * string * string, string) result
(** [(status, config_text, summary)] of a terminal job. *)

val wait :
  ?poll:float ->
  ?rejoin:float ->
  t ->
  string ->
  (Wire.job_status * string * string, string) result
(** Poll until the job is terminal, then fetch its result, with the same
    restart-riding [rejoin] budget as {!watch}. *)

val cancel : t -> string -> (bool, string) result
val stats : t -> (Wire.server_stats, string) result
