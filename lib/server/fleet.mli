(** The distributed worker fleet dispatcher.

    The paper ran its mixed-precision search on a Xeon cluster over MPI;
    this is the reproduction's equivalent: remote [craft worker]
    processes ({!Worker}) connect to the campaign daemon over the wire
    protocol, lease batches of configuration evaluations carved out of
    the scheduler's waves, and stream verdicts back. The dispatcher makes
    worker failure a first-class event rather than a campaign-killer:

    - {b Leases with two-tier deadlines} ({!Pool}'s design one layer up):
      a worker that misses two heartbeat intervals has its lease requeued
      and earns a strike (tier 1); after a further grace period it is
      presumed dead (tier 2). Requeue is time-based, never
      disconnect-based, so a worker that drops its connection and rejoins
      quickly keeps its lease and its in-flight work.
    - {b Requeue-from-checkpoint}: items of a dead lease return to the
      queue with their original enqueue time, so the campaign-wide item
      deadline still bounds their total wait.
    - {b Quarantine}: a worker {e name} that repeatedly kills batches
      (strikes ≥ [quarantine_after]) is banned — later hellos, leases and
      heartbeats are refused, exactly like the scheduler quarantines a
      crashing campaign.
    - {b Rejoin with delta sync}: a returning worker presents its old id
      and receives the keys of leased items that resolved while it was
      away, so it never re-evaluates memoized work.
    - {b Graceful degradation}: with no live workers — or when an item
      has waited past its deadline — the waiter reclaims the item and
      evaluates on the in-process pool, so a chaos-ravaged fleet can only
      slow a campaign down, never wedge or corrupt it.

    Verdict integrity: the dispatcher accepts a pushed verdict only for
    an item still leased to the pushing worker under the pushed lease id;
    everything else (duplicates, stale leases, reclaimed items,
    unparseable verdicts) is counted and ignored. Combined with the
    {!Store}'s in-flight dedup — {!eval} runs inside [find_or_compute],
    so each store key reaches the fleet at most once — the journal sees
    no lost and no duplicate verdicts under chaos. *)

type options = {
  heartbeat_every : float;  (** expected worker heartbeat interval, seconds *)
  grace : float;  (** tier-2 slack past the missed-heartbeat deadline *)
  lease_ttl : float;  (** max lease age before it is requeued regardless *)
  item_deadline : float;
      (** max seconds an item waits on the fleet before its waiter
          reclaims it and evaluates locally *)
  poll_timeout : float;  (** long-poll bound for an empty-queue lease request *)
  max_batch : int;  (** max items per lease *)
  quarantine_after : int;  (** strikes before a worker name is banned *)
}

val default_options : options
(** heartbeat 2s, grace 2s, lease TTL 60s, item deadline 300s, poll 1s,
    batch 8, quarantine after 3 strikes. *)

type ctx = {
  bench : string;
  cls : string;
  eval_steps : int option;
  retries : int;  (** harness retry budget workers must apply *)
}
(** Everything a worker needs to rebuild the evaluation environment; one
    lease carries one context. *)

type stats = {
  joined : int;
  rejoined : int;
  leases : int;
  requeued_leases : int;
  requeued_items : int;
  accepted : int;
  ignored : int;  (** duplicates, stale leases, unparseable verdicts *)
  remote : int;  (** evaluations resolved by the fleet *)
  local_fallbacks : int;  (** evaluations reclaimed to the local pool *)
  quarantined : string list;  (** banned worker names *)
}

type t

val create : ?options:options -> ?log:(string -> unit) -> unit -> t
(** Start the dispatcher and its monitor thread (the deadline clock). *)

val stop : t -> unit
(** Stop the monitor and release every waiter into local fallback. *)

val eval :
  t ->
  ctx:ctx ->
  key:string ->
  text:string ->
  (unit -> Verdict.verdict) ->
  Verdict.verdict * [ `Remote | `Local ]
(** [eval t ~ctx ~key ~text local] resolves one configuration evaluation:
    offered to the fleet when live workers exist, falling back to
    [local ()] when the fleet is empty, the dispatcher is stopped, or the
    item waits past [item_deadline]. [key] must be unique among in-flight
    items — the scheduler guarantees this by calling [eval] inside
    {!Store.find_or_compute}. [text] is the {!Config.print} exchange form
    workers parse back. Blocks until a verdict exists. *)

val handle : t -> Wire.frame -> Wire.frame option
(** Dispatch one fleet frame (hello / lease request / result push /
    heartbeat / goodbye) to its reply; [None] for campaign frames, which
    the caller routes to the scheduler as before. *)

val disconnected : t -> string -> unit
(** [disconnected t wid]: the worker's connection dropped. A hint only —
    leases are reclaimed by the deadline sweep, not by disconnects, so a
    quick rejoin (see {!handle} on [Worker_hello] with a reconnect token)
    resumes without losing work. *)

val live_workers : t -> int
(** Workers currently considered live (connected, or within their
    two-tier deadline). *)

val stats : t -> stats
val report : t -> string
(** One-line counter summary for shutdown logs and the bench. *)
