type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let addr_of_string s =
  match String.rindex_opt s ':' with
  | Some i when not (String.contains s '/') -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad TCP endpoint %S (want host:port)" s))
  | _ -> if s = "" then Error "empty address" else Ok (Unix_path s)

type t = {
  mutable bound : addr;
  listener : Unix.file_descr;
  scheduler : Scheduler.t;
  fleet : Fleet.t option;
  max_conns : int;
  echo : string -> unit;
  lock : Mutex.t;
  mutable conns : (Unix.file_descr * Thread.t) list;
  mutable accepting : bool;
  mutable accept_thread : Thread.t option;
  mutable stopped : bool;
}

(* One request frame -> one reply frame. Total: client mistakes become
   [Error_reply], never a handler crash. Fleet frames go to the
   dispatcher when one is attached; campaign frames to the scheduler. *)
let dispatch t frame =
  match Option.bind t.fleet (fun f -> Fleet.handle f frame) with
  | Some reply -> reply
  | None -> (
      match frame with
      | Wire.Submit spec -> (
          match Scheduler.submit t.scheduler spec with
          | Ok id -> Wire.Accepted id
          | Error why -> Wire.Error_reply why)
      | Wire.Status who -> (
          match Scheduler.status t.scheduler who with
          | Ok jobs -> Wire.Status_reply jobs
          | Error why -> Wire.Error_reply why)
      | Wire.Events { job; from } -> (
          match Scheduler.events t.scheduler ~job ~from with
          | Ok (next, events, final) -> Wire.Events_reply { next; events; final }
          | Error why -> Wire.Error_reply why)
      | Wire.Result job -> (
          match Scheduler.result t.scheduler job with
          | Ok (status, config_text, summary) ->
              Wire.Result_reply { status; config_text; summary }
          | Error why -> Wire.Error_reply why)
      | Wire.Cancel job -> Wire.Cancel_reply (Scheduler.cancel t.scheduler job)
      | Wire.Stats -> Wire.Stats_reply (Scheduler.stats t.scheduler)
      | Wire.Worker_hello _ | Wire.Lease_request _ | Wire.Result_push _
      | Wire.Heartbeat _ | Wire.Goodbye _ ->
          Wire.Error_reply "this daemon runs no fleet dispatcher; workers not accepted"
      | ( Wire.Accepted _ | Wire.Status_reply _ | Wire.Events_reply _
        | Wire.Result_reply _ | Wire.Cancel_reply _ | Wire.Stats_reply _
        | Wire.Error_reply _ | Wire.Worker_welcome _ | Wire.Lease_reply _
        | Wire.Result_ack _ | Wire.Heartbeat_ack _ | Wire.Goodbye_ack _ ) as f ->
          Wire.Error_reply
            (Printf.sprintf "protocol violation: server-to-client frame %s sent by client"
               (match f with
               | Wire.Accepted _ -> "Accepted"
               | Wire.Status_reply _ -> "Status_reply"
               | Wire.Events_reply _ -> "Events_reply"
               | Wire.Result_reply _ -> "Result_reply"
               | Wire.Cancel_reply _ -> "Cancel_reply"
               | Wire.Stats_reply _ -> "Stats_reply"
               | Wire.Worker_welcome _ -> "Worker_welcome"
               | Wire.Lease_reply _ -> "Lease_reply"
               | Wire.Result_ack _ -> "Result_ack"
               | Wire.Heartbeat_ack _ -> "Heartbeat_ack"
               | Wire.Goodbye_ack _ -> "Goodbye_ack"
               | _ -> "Error_reply")))

(* [worker] remembers the worker id welcomed on this connection, so the
   close path can hint the fleet that its transport dropped. *)
let handle t fd peer worker =
  let alive = ref true in
  while !alive do
    match Wire.read_frame fd with
    | Ok frame -> (
        let reply = try dispatch t frame with e ->
          Wire.Error_reply (Printf.sprintf "internal error: %s" (Printexc.to_string e))
        in
        (match reply with
        | Wire.Worker_welcome { worker = wid; _ } -> worker := Some wid
        | _ -> ());
        try Wire.write_frame fd reply with Unix.Unix_error _ -> alive := false)
    | Error (Wire.Need_more _) ->
        (* clean EOF between frames: the client hung up *)
        alive := false
    | Error err ->
        t.echo (Printf.sprintf "%s: dropping connection: %s" peer
             (Wire.error_to_string err));
        (try Wire.write_frame fd (Wire.Error_reply (Wire.error_to_string err))
         with Unix.Unix_error _ -> ());
        alive := false
  done

let forget t fd =
  Mutex.protect t.lock (fun () ->
      t.conns <- List.filter (fun (fd', _) -> fd' != fd) t.conns);
  try Unix.close fd with Unix.Unix_error _ -> ()

(* The loop polls [accepting] via a select timeout: closing a file
   descriptor does NOT wake a thread already blocked in accept(2), so a
   plain blocking accept would wedge {!stop} forever. *)
let accept_loop t =
  let n = ref 0 in
  while t.accepting do
    match
      (match Unix.select [ t.listener ] [] [] 0.2 with
      | [], _, _ -> None
      | _ -> Some (Unix.accept t.listener))
    with
    | None -> ()
    | exception
        Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED | Unix.EINTR), _, _)
      ->
        (* stop closed the listener under us, a connection died between
           select and accept, or a signal interrupted the accept — either
           way, re-check [accepting] and try again *)
        ()
    | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE) as e, _, _) ->
        (* out of descriptors: we cannot even accept, so there is no fd to
           send a typed shed frame on. Breathe and retry — existing
           connections keep draining, and the soft [max_conns] limit below
           sheds with a typed frame before the hard limit is ever hit. *)
        t.echo
          (Printf.sprintf "accept: out of descriptors (%s); backing off"
             (Unix.error_message e));
        Thread.delay 0.05
    | Some (fd, _) ->
        let shed =
          Mutex.protect t.lock (fun () -> List.length t.conns >= t.max_conns)
        in
        if shed then begin
          (* soft descriptor limit: refuse with a typed error frame
             instead of letting accept(2) run the process into EMFILE *)
          t.echo "shedding connection: at the connection limit";
          (try
             Wire.write_frame fd
               (Wire.Error_reply "server is at its connection limit; retry later")
           with Unix.Unix_error _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else begin
          incr n;
          let peer = Printf.sprintf "client#%d" !n in
          t.echo (Printf.sprintf "%s: connected" peer);
          let worker = ref None in
          let th =
            Thread.create
              (fun () ->
                (try handle t fd peer worker
                 with e ->
                   t.echo
                     (Printf.sprintf "%s: handler died: %s" peer (Printexc.to_string e)));
                forget t fd;
                (match (!worker, t.fleet) with
                | Some wid, Some fleet -> Fleet.disconnected fleet wid
                | _ -> ());
                t.echo (Printf.sprintf "%s: disconnected" peer))
              ()
          in
          Mutex.protect t.lock (fun () ->
              if t.accepting then t.conns <- (fd, th) :: t.conns)
        end
  done

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> raise (Unix.Unix_error (Unix.EADDRNOTAVAIL, "getaddrinfo", host)))
      in
      Unix.ADDR_INET (ip, port)

let start ?(backlog = 16) ?(log = ignore) ?fleet ?(max_conns = 64) ~scheduler addr =
  (* a write to a peer that died mid-frame (a SIGKILLed worker, a gone
     client) must surface as EPIPE — which every write here handles — not
     as a process-killing SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (match addr with
  | Unix_path p when Sys.file_exists p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | _ -> ());
  let domain = match addr with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
  let listener = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     if domain = Unix.PF_INET then Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener (sockaddr_of addr);
     Unix.listen listener backlog
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  let bound =
    match (addr, Unix.getsockname listener) with
    | Tcp (host, _), Unix.ADDR_INET (_, port) -> Tcp (host, port)
    | _ -> addr
  in
  let t =
    {
      bound;
      listener;
      scheduler;
      fleet;
      max_conns = max 1 max_conns;
      echo = log;
      lock = Mutex.create ();
      conns = [];
      accepting = true;
      accept_thread = None;
      stopped = false;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  log (Printf.sprintf "listening on %s" (addr_to_string bound));
  t

let addr t = t.bound

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    t.accepting <- false;
    (* the accept loop notices within one select timeout *)
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    let conns = Mutex.protect t.lock (fun () -> t.conns) in
    List.iter
      (fun (fd, _) ->
        (* wakes the handler's blocking read with EOF *)
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun (_, th) -> Thread.join th) conns;
    match t.bound with
    | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end
