(** The scheduler's job-table write-ahead log.

    The durable {!Store} preserves {e verdicts} across a daemon death; this
    WAL preserves the {e job table}: every accepted submission and every
    terminal outcome is appended (flushed + fsynced — lifecycle transitions
    are rare next to evaluations) so a daemon restarted on the same
    [--state-dir] re-lists every job it ever accepted, re-queues the ones
    that never reached a terminal state, and serves the results of the ones
    that did.

    Format mirrors the Journal: a text header, one record per line, and a
    tolerant loader that drops anything unparseable — including the
    truncated half-record a [kill -9] can leave at the end.

    {v
    # craft-wal v1
    submit <id> <bench> <cls> <0|1> <priority> <steps|-> <formats|-> <strategy|->
    outcome <id> <done|cancelled|failed:why|quarantined:why> <summary>
    v}

    The trailing [formats] and [strategy] tokens are later additions:
    7-token (pre-lattice) and 8-token (pre-strategy) submit records still
    load, resuming with the single-only menu and the default [bfs]
    strategy respectively. *)

type record =
  | Submitted of { id : string; spec : Wire.job_spec }
  | Outcome of { id : string; state : Wire.job_state; summary : string }

type t

val create : path:string -> t
(** Open [path] for appending, creating (with header) if missing. *)

val path : t -> string

val append : t -> record -> unit
(** Append one record, flushed and fsynced before returning. Thread-safe. *)

val close : t -> unit

val load : path:string -> record list
(** Tolerantly parse a WAL into records, oldest first, without opening it
    for writing. Unparseable lines are dropped, never fatal. *)

type entry = {
  spec : Wire.job_spec;
  outcome : (Wire.job_state * string) option;
      (** terminal [(state, summary)], or [None] for a job the dead daemon
          never finished — the restart re-queues it *)
}

val replay : record list -> (string * entry) list
(** Fold records into the job table, in submission order. Duplicate
    submissions of one id keep the first; outcomes for unknown ids or with
    non-terminal states are dropped; repeated outcomes keep the last. *)
