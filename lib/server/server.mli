(** The campaign daemon's listener: accepts connections on a Unix-domain
    socket (default) or a TCP endpoint, and answers {!Wire} frames by
    dispatching them to one {!Scheduler}.

    Each accepted connection gets its own handler thread running a strict
    request/reply loop — clients poll ([Events] cursors) rather than being
    pushed to, which keeps a handler a pure function of one frame. A
    malformed or wrong-version frame earns the client a final
    [Error_reply] and a closed connection; a clean client EOF just ends
    the handler. Handler crashes are contained per-connection: the daemon
    never dies because one client misbehaved.

    {!stop} is graceful by construction: the listener closes first (no
    new clients), live connections are shut down, handler threads are
    joined — then the caller decides what to do with the scheduler
    (usually {!Scheduler.shutdown}, finishing queued work; that ordering
    is what [craft serve]'s SIGTERM handler implements). *)

type addr =
  | Unix_path of string  (** socket file; created on start, unlinked on stop *)
  | Tcp of string * int  (** host, port *)

val addr_to_string : addr -> string

val addr_of_string : string -> (addr, string) result
(** ["host:port"] becomes [Tcp]; anything else is a socket path. *)

type t

val start :
  ?backlog:int ->
  ?log:(string -> unit) ->
  ?fleet:Fleet.t ->
  ?max_conns:int ->
  scheduler:Scheduler.t ->
  addr ->
  t
(** Bind, listen and staff the accept thread. An existing socket file at a
    [Unix_path] is replaced (stale files from a killed daemon would
    otherwise wedge restarts). Raises [Unix.Unix_error] when the address
    cannot be bound.

    With [fleet], worker frames (hello / lease / result / heartbeat /
    goodbye) are routed to the {!Fleet} dispatcher and a dropped worker
    connection is reported to it; without, workers are refused with a
    typed [Error_reply]. [max_conns] (default 64) is a soft descriptor
    limit: connections beyond it are shed with a typed [Error_reply]
    before accept(2) can run the process into [EMFILE]; the accept loop
    additionally survives [EINTR] and backs off on a genuine
    [EMFILE]/[ENFILE] instead of crashing the listener thread. *)

val sockaddr_of : addr -> Unix.sockaddr
(** Resolve to a connectable socket address (clients and workers dial
    this). Raises [Unix.Unix_error] when a TCP host cannot be resolved. *)

val addr : t -> addr
(** The bound address — with [Tcp (host, 0)] the kernel-chosen port is
    filled in. *)

val stop : t -> unit
(** Close the listener, disconnect clients, join every handler thread,
    unlink a [Unix_path] socket file. Idempotent. Does {e not} touch the
    scheduler. *)
