(** The campaign-server wire protocol.

    One protocol frame is a 4-byte big-endian payload length followed by
    the payload: one version byte ({!version}), one tag byte naming the
    frame constructor, and the constructor's fields (strings are 4-byte
    length-prefixed bytes, integers are 8-byte big-endian two's
    complement, floats travel as their IEEE-754 bit patterns — every
    value round-trips exactly).

    Decoding is {e total}: a hostile or truncated byte stream can never
    raise, only return a typed {!error}. [Need_more] is the streaming
    signal ("keep reading"); everything else is fatal for the connection.
    A length prefix above {!max_frame} is rejected {e before} any
    allocation, so a malicious 4-GiB length cannot balloon the server. *)

(** {1 Protocol data} *)

type job_spec = {
  bench : string;  (** benchmark name, e.g. ["cg"] *)
  cls : string;  (** problem class, e.g. ["W"] *)
  shadow : bool;  (** run the shadow-value analysis first and let it
                      seed/reorder the campaign *)
  priority : int;  (** scheduling priority; higher runs first *)
  eval_steps : int option;  (** per-evaluation VM step budget override *)
  formats : string;
      (** precision-format menu, comma-separated friendly names or
          [e<E>m<M>] tokens ({!Formats.menu_of_string} syntax); [""] runs
          the single-only pre-lattice search. Validated at submission. *)
  strategy : string;
      (** search-strategy token ({!Strategy.of_string} syntax: [bfs],
          [split], [delta], [anneal[:<seed>]]); [""] runs the default
          [bfs]. The codec carries the token verbatim — hostile bytes
          travel intact and are refused with a typed error at
          submission. *)
}

type job_state =
  | Queued
  | Running
  | Done
  | Cancelled  (** stopped at a wave boundary by a cancel request *)
  | Failed of string  (** the driver could not run the campaign *)
  | Quarantined of string
      (** the campaign crashed its runner repeatedly and was isolated,
          the job-level analogue of {!Pool}'s poison-task quarantine *)

type job_status = {
  id : string;
  spec : job_spec;
  state : job_state;
  tested : int;  (** configurations evaluated so far *)
  store_hits : int;  (** evaluations served from the result store *)
  store_misses : int;  (** evaluations this job computed itself *)
  wall : float;  (** seconds spent running (so far, or total) *)
}

type store_stats = { hits : int; misses : int; entries : int }

type server_stats = {
  submitted : int;
  completed : int;
  failed : int;  (** failed + quarantined *)
  cancelled : int;
  running : int;
  queued : int;
  store : store_stats;  (** cross-campaign result store counters *)
  cache_hits : int;  (** shared compiled-code cache counters *)
  cache_misses : int;
  uptime : float;
}

type batch = {
  lease : string;  (** lease id; every result push must echo it *)
  bench : string;  (** benchmark to load on the worker, e.g. ["cg"] *)
  cls : string;  (** problem class, e.g. ["W"] *)
  eval_steps : int option;  (** per-evaluation VM step budget override *)
  retries : int;  (** harness retry budget the worker must apply *)
  items : (string * string) list;
      (** (config digest, config exchange text) per candidate; the digest
          doubles as the item key in {!frame.Result_push} *)
}
(** One leased unit of evaluation work. A batch mixes only candidates of
    one benchmark under one set of evaluation options, so a worker builds
    one target and harness per batch. *)

type frame =
  (* client -> server *)
  | Submit of job_spec
  | Status of string option  (** one job, or [None] for all *)
  | Events of { job : string; from : int }
      (** fetch the job's event lines starting at cursor [from] *)
  | Result of string
  | Cancel of string
  | Stats
  (* worker -> server (protocol v2) *)
  | Worker_hello of {
      name : string;  (** stable worker name (host/pid); quarantine key *)
      wire_version : int;  (** highest protocol version the worker speaks *)
      reconnect : string option;
          (** previously assigned worker id — a rejoin after a dropped
              connection, asking for result-store delta sync *)
      capacity : int;  (** max batch items the worker wants per lease *)
    }
  | Lease_request of { worker : string; capacity : int }
  | Result_push of { worker : string; lease : string; results : (string * string) list }
      (** streamed verdicts for leased items: (config digest,
          {!Verdict.verdict_to_string} serialization). Safe to resend —
          the daemon acknowledges duplicates instead of double-counting. *)
  | Heartbeat of { worker : string; lease : string option; completed : int }
  | Goodbye of string  (** clean departure; payload is the worker id *)
  (* server -> client *)
  | Accepted of string  (** submit acknowledged; payload is the job id *)
  | Status_reply of job_status list
  | Events_reply of { next : int; events : string list; final : bool }
      (** [final] means the job is terminal {e and} [events] drains the
          log: the cursor [next] will never grow again *)
  | Result_reply of { status : job_status; config_text : string; summary : string }
  | Cancel_reply of bool  (** whether the job was actually cancelled *)
  | Stats_reply of server_stats
  | Error_reply of string
  (* server -> worker (protocol v2) *)
  | Worker_welcome of {
      worker : string;  (** assigned (or re-recognised) worker id *)
      wire_version : int;  (** negotiated protocol version *)
      heartbeat_every : float;  (** seconds between expected heartbeats *)
      lease_ttl : float;  (** seconds before an unfinished lease is requeued *)
      already_done : string list;
          (** delta sync on rejoin: config digests from the worker's
              outstanding lease that resolved while it was away — the
              worker must drop them instead of re-evaluating *)
    }
  | Lease_reply of batch option  (** [None]: no work right now, poll again *)
  | Result_ack of { accepted : int; ignored : int }
      (** [ignored] counts duplicates, stale-lease deliveries and
          unparseable verdicts — never an error, never double-recorded *)
  | Heartbeat_ack of { abandon : bool }
      (** [abandon] orders the worker to drop its current lease (it was
          requeued, or the worker is quarantined) *)
  | Goodbye_ack of { requeued : int }  (** unfinished items requeued *)

(** {1 Codec} *)

val version : int
(** Current protocol version byte (2). Campaign frames still travel as
    version 1 ({!min_version}); only the fleet frames require 2, so v1
    peers interoperate on everything they understand. *)

val min_version : int
(** Oldest version byte {!decode} accepts (1). *)

val max_frame : int
(** Upper bound on one frame's payload size (16 MiB). *)

type error =
  | Need_more of int
      (** the buffer holds only a frame prefix; at least this many more
          bytes are needed (a lower bound, not a promise) *)
  | Bad_version of int  (** version byte of a complete, rejected frame *)
  | Bad_tag of int
  | Oversized of int  (** announced payload length above {!max_frame} *)
  | Malformed of string  (** structurally invalid payload *)

val error_to_string : error -> string

val encode : frame -> Bytes.t
(** Complete frame, length prefix included. *)

val decode : Bytes.t -> pos:int -> len:int -> (frame * int, error) result
(** [decode buf ~pos ~len] parses one frame from [buf.[pos .. pos+len-1]],
    returning the frame and the number of bytes consumed. Total: any
    hostile payload is a typed [Error], never an exception. Trailing
    garbage inside a frame's announced length is [Malformed]. *)

val write_frame : Unix.file_descr -> frame -> unit
(** Blocking full write of [encode frame]. Raises [Unix.Unix_error] on a
    dead peer (callers treat the connection as closed). *)

val read_frame : Unix.file_descr -> (frame, error) result
(** Blocking read of exactly one frame. A clean EOF before any byte is
    [Error (Need_more 4)]; EOF mid-frame is [Malformed]. *)
