type t = { fd : Unix.file_descr; path : string }

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let path ~dir = Filename.concat dir "LOCK"

(* The exclusion is the kernel's fcntl record lock, not the file's
   existence: a lock held by a SIGKILLed daemon evaporates with its
   process, so stale locks reclaim themselves — the pid in the file is
   only for the refusal message. *)
let acquire ~dir =
  mkdir_p dir;
  let p = path ~dir in
  match Unix.openfile p [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot open lockfile %s: %s" p (Unix.error_message e))
  | fd -> (
      match Unix.lockf fd Unix.F_TLOCK 0 with
      | () ->
          (try
             Unix.ftruncate fd 0;
             let pid = string_of_int (Unix.getpid ()) ^ "\n" in
             ignore (Unix.write_substring fd pid 0 (String.length pid));
             Unix.fsync fd
           with Unix.Unix_error _ -> ());
          Ok { fd; path = p }
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
          let holder =
            match
              let buf = Bytes.create 64 in
              ignore (Unix.lseek fd 0 Unix.SEEK_SET);
              let n = Unix.read fd buf 0 (Bytes.length buf) in
              String.trim (Bytes.sub_string buf 0 n)
            with
            | "" | (exception Unix.Unix_error _) -> ""
            | pid -> Printf.sprintf " (pid %s)" pid
          in
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf
               "state dir %s is locked by another live daemon%s; refusing to interleave \
                writes into its journals"
               dir holder)
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "cannot lock %s: %s" p (Unix.error_message e)))

let release t =
  (try Unix.lockf t.fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  try Sys.remove t.path with Sys_error _ -> ()
