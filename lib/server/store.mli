(** The cross-campaign evaluation result store.

    The {!Journal} memoizes verdicts {e within} one campaign; the code
    cache shares compiled blocks across evaluations. This store is the
    serving-layer third leg: verdicts memoized {e across} campaigns and
    clients, keyed by everything a verdict depends on —

    {v (program key, eval-options digest, Config.digest) v}

    where the program key is {!Checkpoint.program_key} (the structural
    fingerprint of the candidate tree), the eval-options digest covers the
    step budget and backend (two jobs with different budgets may
    legitimately disagree on a timeout verdict), and {!Config.digest}
    identifies the candidate's effective per-instruction flags. Two
    clients submitting overlapping campaigns against one program evaluate
    each shared candidate once, server-wide.

    Lookups deduplicate {e in flight}: while a key is being computed, a
    second requester blocks on it instead of recomputing — so even two
    byte-identical campaigns racing each other evaluate each candidate
    exactly once. The store is domain- and thread-safe. *)

type t

type stats = {
  hits : int;  (** served without evaluating (includes in-flight waits) *)
  misses : int;  (** computed and recorded *)
  entries : int;
  waits : int;  (** hits that blocked on an in-flight computation *)
}

val create : unit -> t

val key : program_key:string -> opts_digest:string -> config_digest:string -> string
(** Compose the canonical store key. *)

val find_or_compute : t -> key:string -> (unit -> Verdict.verdict) -> Verdict.verdict * bool
(** [find_or_compute t ~key f] returns the memoized verdict for [key],
    running [f] (outside the store lock) and recording its result on a
    miss. The boolean is [true] when the verdict was served from the
    store — already recorded, or computed concurrently by someone else
    while we waited. If [f] raises, the pending entry is withdrawn (the
    next requester recomputes) and the exception propagates. *)

val stats : t -> stats

val hit_rate : stats -> float
(** Hits over total lookups, in [0,1]; 0 before any lookup. *)

val report : t -> string
(** One-line summary for status output and the bench. *)
