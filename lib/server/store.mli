(** The cross-campaign evaluation result store.

    The {!Journal} memoizes verdicts {e within} one campaign; the code
    cache shares compiled blocks across evaluations. This store is the
    serving-layer third leg: verdicts memoized {e across} campaigns and
    clients, keyed by everything a verdict depends on —

    {v (program key, eval-options digest, Config.digest) v}

    where the program key is {!Checkpoint.program_key} (the structural
    fingerprint of the candidate tree), the eval-options digest covers the
    step budget and backend (two jobs with different budgets may
    legitimately disagree on a timeout verdict), and {!Config.digest}
    identifies the candidate's effective per-instruction flags. Two
    clients submitting overlapping campaigns against one program evaluate
    each shared candidate once, server-wide.

    Lookups deduplicate {e in flight}: while a key is being computed, a
    second requester blocks on it instead of recomputing — so even two
    byte-identical campaigns racing each other evaluate each candidate
    exactly once. The store is domain- and thread-safe.

    With [?path], the store is {e durable}: every fresh verdict is appended
    to an on-disk log in the Journal's record style (one escaped-key line
    per verdict, tolerant truncation-safe loader) and the log is replayed
    into the table on {!create} — so a daemon SIGKILLed mid-campaign
    restarts with every verdict it ever computed. Appends flush per record
    and [fsync(2)] every [fsync_every] records (the write-batching policy);
    {!sync} forces the batch out early, {!compact} rewrites a log grown by
    duplicate-free appends across many daemon lifetimes. *)

type t

type stats = {
  hits : int;  (** served without evaluating (includes in-flight waits) *)
  misses : int;  (** computed and recorded *)
  entries : int;
  waits : int;  (** hits that blocked on an in-flight computation *)
  replayed : int;  (** entries loaded from the durable log at {!create} *)
}

val create : ?path:string -> ?fsync_every:int -> unit -> t
(** Memory-only without [path]. With [path], replay the log (tolerantly:
    unparseable lines, including a crash's trailing half-record, are
    dropped) and append every fresh verdict to it. [fsync_every] (default
    32) batches fsyncs: 1 syncs per record, 0 never syncs (flush only). *)

val key : program_key:string -> opts_digest:string -> config_digest:string -> string
(** Compose the canonical store key. *)

val find_or_compute : t -> key:string -> (unit -> Verdict.verdict) -> Verdict.verdict * bool
(** [find_or_compute t ~key f] returns the memoized verdict for [key],
    running [f] (outside the store lock) and recording its result on a
    miss. The boolean is [true] when the verdict was served from the
    store — already recorded, or computed concurrently by someone else
    while we waited. If [f] raises, the pending entry is withdrawn (the
    next requester recomputes) and the exception propagates. *)

val sync : t -> unit
(** Flush and fsync the durable log now, resetting the batch counter.
    No-op for a memory-only store. *)

val close : t -> unit
(** {!sync}, then close the log. The in-memory table keeps serving;
    further verdicts are no longer persisted. Idempotent. *)

val scan : path:string -> (string * Verdict.verdict) list
(** Tolerantly parse a store log into [(key, verdict)] pairs, oldest
    first, without opening it for writing (inspection, tests). *)

val compact : path:string -> (int * int, string) result
(** Offline compaction: rewrite the log with one record per distinct key
    (last verdict wins, matching replay) via write-temp/fsync/rename.
    Returns [(kept, dropped)]. Run it on a daemon's state dir between
    lifetimes, not while one is appending. *)

val stats : t -> stats

val hit_rate : stats -> float
(** Hits over total lookups, in [0,1]; 0 before any lookup. *)

val report : t -> string
(** One-line summary for status output and the bench. *)
