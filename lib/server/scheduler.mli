(** The campaign scheduler: many concurrent searches, one shared substrate.

    Each submitted {!Wire.job_spec} becomes a job with a per-job journal
    and checkpoint directory, an event stream, and a priority. [max_concurrent]
    runner threads drive the campaigns; every candidate evaluation flows
    through the one shared {!Pool} (so the machine's worker domains are a
    single resource, not per-campaign fleets), compiled blocks land in the
    one shared {!Compile.cache}, and verdicts are memoized in the
    cross-campaign {!Store} — identical evaluations submitted by different
    clients run once, server-wide.

    Failure containment mirrors {!Pool}'s semantics one level up: an
    exception escaping a campaign {e driver} (the search loop itself, not
    an evaluation — those are already classified) kills only that job's
    run; the job is requeued and, after [quarantine_after] driver deaths,
    quarantined with the exception message instead of being retried
    forever. A requeued job resumes from its own checkpoint and journal,
    so the retry re-evaluates almost nothing.

    With a [state_dir], the same containment extends to {e daemon} death:
    every submission and every terminal outcome is appended to a job-table
    {!Wal} under the state dir (terminal configurations also land in a
    per-job [result] file, written atomically), and {!create} replays it —
    finished jobs are re-listed with their persisted result, unfinished
    ones are re-queued and resume from their per-job journal+checkpoint
    exactly as after a driver death. Combined with a durable {!Store} a
    [kill -9]'d daemon restarted on the same state dir loses no verdicts
    and no campaigns.

    Cancellation and drain are cooperative through {!Bfs}'s wave-boundary
    stop: a cancelled (or drain-interrupted) job flushes a final
    checkpoint and ends [Cancelled] with the partial result composed —
    never killed mid-wave. *)

type options = {
  max_concurrent : int;  (** runner threads (campaigns in flight) *)
  wave_width : int;  (** {!Bfs} wave size ([options.workers]) per job *)
  retries : int;  (** harness retry budget per evaluation *)
  quarantine_after : int;  (** driver deaths before a job is quarantined *)
  state_dir : string option;
      (** root for the job-table WAL and per-job [journal] / [checkpoint] /
          [result] files; [None] keeps jobs journal-less and the job table
          memory-only (tests) *)
}

val default_options : options
(** 2 runners, wave width 2, no retries, quarantine after 2, no state
    dir. *)

type t

val create :
  ?options:options ->
  ?log:(string -> unit) ->
  ?fleet:Fleet.t ->
  resolve:(Wire.job_spec -> (Kernel.t, string) result) ->
  pool:Pool.t ->
  cache:Compile.cache ->
  store:Store.t ->
  unit ->
  t
(** Staff the runner threads. [resolve] maps a job spec to the benchmark
    to search (the CLI passes the bundled-kernel loader; tests inject
    synthetic programs). The scheduler borrows [pool], [cache], [store]
    and [fleet] — the caller owns their lifecycle.

    With [fleet], store misses are offered to the worker fleet inside the
    store's compute closure ({!Fleet.eval}, falling back to the local
    harness when the fleet is empty or slow); the store's in-flight dedup
    means each key reaches the fleet at most once, server-wide. *)

val submit : t -> Wire.job_spec -> (string, string) result
(** Queue a campaign; returns its job id. [Error] after {!drain} or
    {!shutdown}, or when [resolve] rejects the spec outright. *)

val status : t -> string option -> (Wire.job_status list, string) result
(** One job's status, or every job's (submission order). *)

val events : t -> job:string -> from:int -> (int * string list * bool, string) result
(** [(next_cursor, lines, final)] — the job's event lines from cursor
    [from]; [final] once the job is terminal and [lines] reaches the end
    of its log. *)

val result : t -> string -> (Wire.job_status * string * string, string) result
(** [(status, config_text, summary)] of a terminal job; [Error] while it
    is still queued or running. *)

val cancel : t -> string -> bool
(** Request a cooperative stop. [true] if the job was queued (dequeued
    immediately) or running (will stop at the next wave boundary); [false]
    for unknown or already-terminal jobs. *)

val stats : t -> Wire.server_stats

val drain : t -> unit
(** Stop accepting submissions; queued and running jobs keep going. *)

val wait_idle : t -> unit
(** Block until no job is queued or running. *)

val shutdown : t -> ?cancel_running:bool -> unit -> unit
(** {!drain}, then stop the runners: with [cancel_running] (default
    [false]) running jobs are stopped at their next wave boundary and any
    queued jobs are cancelled; without it the runners finish every queued
    and running job first. Joins the runner threads. Idempotent. *)
