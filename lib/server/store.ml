type stats = { hits : int; misses : int; entries : int; waits : int }

type cell =
  | Done of Verdict.verdict
  | Pending  (** someone is computing it; wait on [changed] *)

type t = {
  lock : Mutex.t;
  changed : Condition.t;  (* a Pending resolved (or was withdrawn) *)
  table : (string, cell) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable waits : int;
}

let create () =
  {
    lock = Mutex.create ();
    changed = Condition.create ();
    table = Hashtbl.create 1024;
    hits = 0;
    misses = 0;
    waits = 0;
  }

let key ~program_key ~opts_digest ~config_digest =
  String.concat "/" [ program_key; opts_digest; config_digest ]

let find_or_compute t ~key f =
  Mutex.lock t.lock;
  let rec claim waited =
    match Hashtbl.find_opt t.table key with
    | Some (Done v) ->
        t.hits <- t.hits + 1;
        if waited then t.waits <- t.waits + 1;
        Mutex.unlock t.lock;
        (v, true)
    | Some Pending ->
        (* computed concurrently by another campaign right now: block until
           it resolves rather than burn a duplicate evaluation *)
        Condition.wait t.changed t.lock;
        claim true
    | None ->
        t.misses <- t.misses + 1;
        Hashtbl.replace t.table key Pending;
        Mutex.unlock t.lock;
        let v =
          try f ()
          with e ->
            (* withdraw the claim so waiters recompute instead of hanging *)
            Mutex.lock t.lock;
            Hashtbl.remove t.table key;
            Condition.broadcast t.changed;
            Mutex.unlock t.lock;
            raise e
        in
        Mutex.lock t.lock;
        Hashtbl.replace t.table key (Done v);
        Condition.broadcast t.changed;
        Mutex.unlock t.lock;
        (v, false)
  in
  claim false

let stats t =
  Mutex.protect t.lock (fun () ->
      let entries =
        Hashtbl.fold (fun _ c acc -> match c with Done _ -> acc + 1 | Pending -> acc) t.table 0
      in
      { hits = t.hits; misses = t.misses; entries; waits = t.waits })

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let report t =
  let s = stats t in
  Printf.sprintf
    "result store: %d hit(s) / %d miss(es) (%.1f%% hit rate, %d in-flight wait(s)), %d \
     entr%s"
    s.hits s.misses
    (100.0 *. hit_rate s)
    s.waits s.entries
    (if s.entries = 1 then "y" else "ies")
