let header = "# craft-store v1"

type stats = {
  hits : int;
  misses : int;
  entries : int;
  waits : int;
  replayed : int;
}

type cell =
  | Done of Verdict.verdict
  | Pending  (** someone is computing it; wait on [changed] *)

type t = {
  lock : Mutex.t;
  changed : Condition.t;  (* a Pending resolved (or was withdrawn) *)
  table : (string, cell) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable waits : int;
  replayed : int;
  (* durable log; [None] keeps the store memory-only (tests, ad-hoc) *)
  mutable log : out_channel option;
  fsync_every : int;  (* 0 = never, 1 = per record, n = every n appends *)
  mutable unsynced : int;
  mutable seq : int;
}

(* ------------------------------------------------------------ log format *)

(* One record per line, mirroring the Journal's format and its tolerant
   loader: [<escaped-key> <verdict-token> <seq>]. Keys are compound
   ([program_key/opts_digest/Config.digest]) so unlike journal digests they
   are escaped; like the journal, any line that does not parse — malformed,
   or the truncated half-record a crash leaves at the end — is dropped,
   never fatal. *)
let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ key; verdict; seq ] -> (
        match
          (Verdict.unescape key, Verdict.verdict_of_string verdict, int_of_string_opt seq)
        with
        | Some k, Some v, Some _ -> Some (k, v)
        | _ -> None)
    | _ -> None

let read_records path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let records = ref [] in
    (try
       while true do
         match parse_line (input_line ic) with
         | Some r -> records := r :: !records
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !records
  end

let scan ~path = read_records path

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fsync_oc oc =
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------- lifecycle *)

let create ?path ?(fsync_every = 32) () =
  let table = Hashtbl.create 1024 in
  let log, replayed, seq =
    match path with
    | None -> (None, 0, 0)
    | Some p ->
        let records = read_records p in
        List.iter (fun (k, v) -> Hashtbl.replace table k (Done v)) records;
        let fresh = not (Sys.file_exists p) in
        mkdir_p (Filename.dirname p);
        let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 p in
        if fresh then begin
          output_string oc (header ^ "\n");
          flush oc;
          fsync_oc oc
        end;
        (Some oc, Hashtbl.length table, List.length records)
  in
  {
    lock = Mutex.create ();
    changed = Condition.create ();
    table;
    hits = 0;
    misses = 0;
    waits = 0;
    replayed;
    log;
    fsync_every = max 0 fsync_every;
    unsynced = 0;
    seq;
  }

let key ~program_key ~opts_digest ~config_digest =
  String.concat "/" [ program_key; opts_digest; config_digest ]

(* Lock held. Flush always (a crash loses at most this record); fsync per
   the batching policy (a power loss loses at most the unsynced batch). *)
let persist t key v =
  match t.log with
  | None -> ()
  | Some oc ->
      t.seq <- t.seq + 1;
      Printf.fprintf oc "%s %s %d\n" (Verdict.escape key) (Verdict.verdict_to_string v)
        t.seq;
      flush oc;
      t.unsynced <- t.unsynced + 1;
      if t.fsync_every > 0 && t.unsynced >= t.fsync_every then begin
        fsync_oc oc;
        t.unsynced <- 0
      end

let sync t =
  Mutex.protect t.lock (fun () ->
      match t.log with
      | None -> ()
      | Some oc ->
          flush oc;
          fsync_oc oc;
          t.unsynced <- 0)

let close t =
  Mutex.protect t.lock (fun () ->
      match t.log with
      | None -> ()
      | Some oc ->
          t.log <- None;
          flush oc;
          fsync_oc oc;
          close_out oc)

let find_or_compute t ~key f =
  Mutex.lock t.lock;
  let rec claim waited =
    match Hashtbl.find_opt t.table key with
    | Some (Done v) ->
        t.hits <- t.hits + 1;
        if waited then t.waits <- t.waits + 1;
        Mutex.unlock t.lock;
        (v, true)
    | Some Pending ->
        (* computed concurrently by another campaign right now: block until
           it resolves rather than burn a duplicate evaluation *)
        Condition.wait t.changed t.lock;
        claim true
    | None ->
        t.misses <- t.misses + 1;
        Hashtbl.replace t.table key Pending;
        Mutex.unlock t.lock;
        let v =
          try f ()
          with e ->
            (* withdraw the claim so waiters recompute instead of hanging *)
            Mutex.lock t.lock;
            Hashtbl.remove t.table key;
            Condition.broadcast t.changed;
            Mutex.unlock t.lock;
            raise e
        in
        Mutex.lock t.lock;
        Hashtbl.replace t.table key (Done v);
        persist t key v;
        Condition.broadcast t.changed;
        Mutex.unlock t.lock;
        (v, false)
  in
  claim false

(* ------------------------------------------------------------ compaction *)

let compact ~path =
  if not (Sys.file_exists path) then Error (path ^ ": no such store log")
  else begin
    let records = read_records path in
    let table = Hashtbl.create 1024 in
    let order = ref [] in
    List.iter
      (fun (k, v) ->
        if not (Hashtbl.mem table k) then order := k :: !order;
        (* last record wins, matching replay *)
        Hashtbl.replace table k v)
      records;
    let keys = List.rev !order in
    let tmp = path ^ ".tmp" in
    match
      let oc = open_out tmp in
      output_string oc (header ^ "\n");
      List.iteri
        (fun i k ->
          Printf.fprintf oc "%s %s %d\n" (Verdict.escape k)
            (Verdict.verdict_to_string (Hashtbl.find table k))
            (i + 1))
        keys;
      flush oc;
      fsync_oc oc;
      close_out oc;
      Sys.rename tmp path
    with
    | () -> Ok (List.length keys, List.length records - List.length keys)
    | exception Sys_error why -> Error why
  end

(* ----------------------------------------------------------------- stats *)

let stats t =
  Mutex.protect t.lock (fun () ->
      let entries =
        Hashtbl.fold (fun _ c acc -> match c with Done _ -> acc + 1 | Pending -> acc) t.table 0
      in
      { hits = t.hits; misses = t.misses; entries; waits = t.waits; replayed = t.replayed })

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let report t =
  let s = stats t in
  Printf.sprintf
    "result store: %d hit(s) / %d miss(es) (%.1f%% hit rate, %d in-flight wait(s)), %d \
     entr%s%s"
    s.hits s.misses
    (100.0 *. hit_rate s)
    s.waits s.entries
    (if s.entries = 1 then "y" else "ies")
    (if s.replayed > 0 then Printf.sprintf " (%d replayed from disk)" s.replayed else "")
