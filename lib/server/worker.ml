exception Conn_lost of string
exception Drained  (* internal unwind: stop () asked us to leave cleanly *)

type stats = {
  evaluated : int;
  pushed : int;
  skipped : int;  (* delta-synced away, or unresolvable (never fabricated) *)
  batches : int;
  rejoins : int;
}

type st = {
  mutable wid : string option;  (* reconnect token once welcomed *)
  mutable batch : Wire.batch option;
  mutable pending : (string * string) list;
  mutable completed : int;  (* items pushed in the current batch *)
  mutable in_batch : int;  (* items evaluated in the current batch *)
  mutable plan : Chaos.action option;
  mutable kill_after : int;
  mutable stalled : bool;  (* per-batch one-shot chaos triggers *)
  mutable garbaged : bool;
  skip : (string, unit) Hashtbl.t;  (* keys resolved while we were away *)
  mutable evaluated : int;
  mutable pushed : int;
  mutable skipped : int;
  mutable batches : int;
  mutable rejoins : int;
}

(* not a Wire frame: raw junk whose version byte can never be valid *)
let junk = Bytes.of_string "\x00\x00\x00\x04\xee\xee\xee\xee"

let now () = Unix.gettimeofday ()

let dial ?(retries = 10) ?(delay = 0.05) rng addr =
  let sockaddr = Server.sockaddr_of addr in
  let domain =
    match addr with Server.Unix_path _ -> Unix.PF_UNIX | Server.Tcp _ -> Unix.PF_INET
  in
  let rec go attempt delay =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if attempt >= retries then
          Error
            (Printf.sprintf "cannot reach %s: %s" (Server.addr_to_string addr)
               (Unix.error_message e))
        else begin
          (* jittered exponential backoff, same discipline as Client *)
          Thread.delay (delay *. (0.5 +. Rng.uniform rng));
          go (attempt + 1) (Float.min 2.0 (delay *. 2.0))
        end
  in
  go 0 delay

let run ?name ?(capacity = 4) ?faults ?chaos ?(log = ignore) ?(dial_retries = 10)
    ?(stop = fun () -> false) ~resolve addr =
  (* a daemon that dies mid-frame must surface as EPIPE (-> Conn_lost ->
     rejoin), not as a process-killing SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let name =
    match name with Some n -> n | None -> Printf.sprintf "worker-%d" (Unix.getpid ())
  in
  let rng = Rng.create (Hashtbl.hash ("worker", name)) in
  let cache = Compile.create_cache () in
  let kernels = Hashtbl.create 4 in
  let st =
    {
      wid = None;
      batch = None;
      pending = [];
      completed = 0;
      in_batch = 0;
      plan = None;
      kill_after = max_int;
      stalled = false;
      garbaged = false;
      skip = Hashtbl.create 32;
      evaluated = 0;
      pushed = 0;
      skipped = 0;
      batches = 0;
      rejoins = 0;
    }
  in
  let stats () =
    {
      evaluated = st.evaluated;
      pushed = st.pushed;
      skipped = st.skipped;
      batches = st.batches;
      rejoins = st.rejoins;
    }
  in
  (* one target + harness per evaluation context, reused across leases *)
  let harness_for (b : Wire.batch) =
    let key = (b.Wire.bench, b.Wire.cls, b.Wire.eval_steps, b.Wire.retries) in
    match Hashtbl.find_opt kernels key with
    | Some r -> r
    | None ->
        let r =
          match resolve ~bench:b.Wire.bench ~cls:b.Wire.cls with
          | Error why -> Error why
          | Ok kernel ->
              let target = Kernel.target ?eval_steps:b.Wire.eval_steps ?faults ~cache kernel in
              let harness, _ = Harness.wrap_target ~retries:b.Wire.retries target in
              Ok (kernel.Kernel.program, harness)
        in
        Hashtbl.replace kernels key r;
        r
  in
  let eval_item b key text =
    match harness_for b with
    | Error why ->
        log (Printf.sprintf "%s: cannot build %s.%s: %s" name b.Wire.bench b.Wire.cls why);
        None
    | Ok (program, harness) -> (
        match Config.parse program text with
        | Error why ->
            (* never fabricate a verdict for a config we cannot even
               parse; the daemon requeues it when the lease expires *)
            log (Printf.sprintf "%s: unparseable config %s: %s" name key why);
            None
        | Ok cfg -> Some (Harness.eval harness cfg))
  in
  let drop_batch () =
    st.batch <- None;
    st.pending <- [];
    st.completed <- 0;
    st.in_batch <- 0;
    st.plan <- None;
    st.kill_after <- max_int;
    st.stalled <- false;
    st.garbaged <- false
  in
  let session fd wid hb_every =
    let rpc frame =
      (try Wire.write_frame fd frame
       with Unix.Unix_error (e, fn, _) ->
         raise (Conn_lost (Printf.sprintf "%s: %s" fn (Unix.error_message e))));
      match Wire.read_frame fd with
      | Ok f -> f
      | Error e -> raise (Conn_lost (Wire.error_to_string e))
      | exception Unix.Unix_error (e, fn, _) ->
          raise (Conn_lost (Printf.sprintf "%s: %s" fn (Unix.error_message e)))
    in
    let lease_id () = Option.map (fun b -> b.Wire.lease) st.batch in
    let last_hb = ref (now ()) in
    let heartbeat_if_due () =
      if now () -. !last_hb >= hb_every then begin
        last_hb := now ();
        match rpc (Wire.Heartbeat { worker = wid; lease = lease_id (); completed = st.completed }) with
        | Wire.Heartbeat_ack { abandon = true } ->
            log (Printf.sprintf "%s: daemon abandoned our lease; dropping batch" name);
            drop_batch ()
        | Wire.Heartbeat_ack _ -> ()
        | Wire.Error_reply why -> raise (Conn_lost why)
        | _ -> raise (Conn_lost "unexpected heartbeat reply")
      end
    in
    let push b key verdict =
      let frame =
        Wire.Result_push
          {
            worker = wid;
            lease = b.Wire.lease;
            results = [ (key, Verdict.verdict_to_string verdict) ];
          }
      in
      let send () =
        match rpc frame with
        | Wire.Result_ack { accepted; _ } -> st.pushed <- st.pushed + accepted
        | Wire.Error_reply why -> raise (Conn_lost why)
        | _ -> raise (Conn_lost "unexpected push reply")
      in
      send ();
      if st.plan = Some Chaos.Dup then send ()
    in
    while true do
      if stop () then begin
        (match rpc (Wire.Goodbye wid) with
        | Wire.Goodbye_ack { requeued } ->
            if requeued > 0 then
              log (Printf.sprintf "%s: left, %d item(s) requeued" name requeued)
        | _ -> ());
        raise Drained
      end;
      heartbeat_if_due ();
      match st.pending with
      | [] -> (
          st.batch <- None;
          match rpc (Wire.Lease_request { worker = wid; capacity }) with
          | Wire.Lease_reply None -> Thread.delay 0.005
          | Wire.Lease_reply (Some b) ->
              st.batch <- Some b;
              st.pending <- b.Wire.items;
              st.completed <- 0;
              st.in_batch <- 0;
              st.stalled <- false;
              st.garbaged <- false;
              st.batches <- st.batches + 1;
              st.plan <-
                (match chaos with
                | None -> None
                | Some c -> Chaos.draw c ~key:(name ^ "/" ^ b.Wire.lease));
              st.kill_after <-
                (match st.plan with
                | Some Chaos.Kill -> max 1 (List.length b.Wire.items / 2)
                | _ -> max_int);
              Option.iter
                (fun a ->
                  log
                    (Printf.sprintf "%s: chaos draws %s for lease %s" name
                       (Chaos.action_name a) b.Wire.lease))
                st.plan
          | Wire.Error_reply why -> raise (Conn_lost why)
          | _ -> raise (Conn_lost "unexpected lease reply"))
      | (key, text) :: rest ->
          let b = match st.batch with Some b -> b | None -> assert false in
          if Hashtbl.mem st.skip key then begin
            (* delta sync: resolved while we were away *)
            st.pending <- rest;
            st.skipped <- st.skipped + 1
          end
          else begin
            match eval_item b key text with
            | None ->
                st.pending <- rest;
                st.skipped <- st.skipped + 1
            | Some verdict ->
                st.evaluated <- st.evaluated + 1;
                st.in_batch <- st.in_batch + 1;
                if st.in_batch >= st.kill_after then begin
                  (* simulated SIGKILL: no goodbye, no push, state gone *)
                  log (Printf.sprintf "%s: chaos kill mid-batch (lease %s)" name b.Wire.lease);
                  raise Chaos.Killed
                end;
                (match (st.plan, chaos) with
                | Some Chaos.Stall, Some c when not st.stalled ->
                    (* stall {e before} the push: the daemon's deadline
                       sweep requeues our lease during the silence, and
                       the push below arrives stale — which the daemon
                       must ignore, not double-record *)
                    st.stalled <- true;
                    log (Printf.sprintf "%s: chaos stall %.1fs (lease %s)" name
                           (Chaos.stall_for c) b.Wire.lease);
                    (* single-threaded: sleeping also suppresses heartbeats *)
                    Thread.delay (Chaos.stall_for c)
                | _ -> ());
                push b key verdict;
                st.pending <- rest;
                st.completed <- st.completed + 1;
                (match st.plan with
                | Some Chaos.Garbage when not st.garbaged ->
                    st.garbaged <- true;
                    log (Printf.sprintf "%s: chaos garbage frame (lease %s)" name b.Wire.lease);
                    (try ignore (Unix.write fd junk 0 (Bytes.length junk))
                     with Unix.Unix_error _ -> ())
                    (* the daemon's total decoder will drop us; the next
                       rpc raises Conn_lost and we rejoin with the token *)
                | _ -> ())
          end
    done
  in
  let rec connect_loop () =
    if stop () then stats ()
    else
      match dial ~retries:dial_retries rng addr with
      | Error why ->
          log (Printf.sprintf "%s: giving up: %s" name why);
          stats ()
      | Ok fd -> (
          let cleanup () = try Unix.close fd with Unix.Unix_error _ -> () in
          match
            Wire.write_frame fd
              (Wire.Worker_hello
                 { name; wire_version = Wire.version; reconnect = st.wid; capacity });
            Wire.read_frame fd
          with
          | exception Unix.Unix_error (_, _, _) ->
              cleanup ();
              Thread.delay (0.05 *. (0.5 +. Rng.uniform rng));
              connect_loop ()
          | Error _ ->
              cleanup ();
              Thread.delay (0.05 *. (0.5 +. Rng.uniform rng));
              connect_loop ()
          | Ok (Wire.Error_reply why) ->
              (* quarantined or version-refused: terminal *)
              log (Printf.sprintf "%s: daemon refused us: %s" name why);
              cleanup ();
              stats ()
          | Ok (Wire.Worker_welcome { worker; heartbeat_every; already_done; _ }) -> (
              if st.wid <> None then begin
                st.rejoins <- st.rejoins + 1;
                log
                  (Printf.sprintf "%s: rejoined as %s, %d item(s) delta-synced" name worker
                     (List.length already_done))
              end
              else log (Printf.sprintf "%s: joined as %s" name worker);
              st.wid <- Some worker;
              List.iter (fun k -> Hashtbl.replace st.skip k ()) already_done;
              match session fd worker heartbeat_every with
              | () -> assert false
              | exception Drained ->
                  cleanup ();
                  stats ()
              | exception Conn_lost why ->
                  log (Printf.sprintf "%s: connection lost (%s); rejoining" name why);
                  cleanup ();
                  connect_loop ()
              | exception Chaos.Killed ->
                  cleanup ();
                  raise Chaos.Killed)
          | Ok _ ->
              cleanup ();
              log (Printf.sprintf "%s: unexpected hello reply; retrying" name);
              Thread.delay (0.05 *. (0.5 +. Rng.uniform rng));
              connect_loop ())
  in
  connect_loop ()
