type options = {
  heartbeat_every : float;
  grace : float;
  lease_ttl : float;
  item_deadline : float;
  poll_timeout : float;
  max_batch : int;
  quarantine_after : int;
}

let default_options =
  {
    heartbeat_every = 2.0;
    grace = 2.0;
    lease_ttl = 60.0;
    item_deadline = 300.0;
    poll_timeout = 1.0;
    max_batch = 8;
    quarantine_after = 3;
  }

type ctx = { bench : string; cls : string; eval_steps : int option; retries : int }

(* Queued -> Leased -> Done is the happy path. Local is the waiter's
   reclaim: the item went back to in-process evaluation (deadline hit, or
   the fleet emptied out) and any late remote verdict for it is a stale
   duplicate to be ignored. *)
type item_state = Queued | Leased of string | Done of Verdict.verdict | Local

type item = {
  key : string;
  text : string;
  ctx : ctx;
  mutable state : item_state;
  enqueued : float;
}

type lease = { lid : string; items : item list; mutable issued : float }

type worker = {
  wid : string;
  wname : string;
  mutable connected : bool;
  mutable last_seen : float;
  mutable lease : lease option;
  mutable completed : int;
  mutable capacity : int;
}

type stats = {
  joined : int;
  rejoined : int;
  leases : int;
  requeued_leases : int;
  requeued_items : int;
  accepted : int;
  ignored : int;  (* duplicates, stale leases, unparseable verdicts *)
  remote : int;  (* evaluations resolved by the fleet *)
  local_fallbacks : int;  (* evaluations reclaimed to the local pool *)
  quarantined : string list;
}

type t = {
  opts : options;
  echo : string -> unit;
  lock : Mutex.t;
  cond : Condition.t;  (* items queued / resolved / fleet membership change *)
  items : (string, item) Hashtbl.t;
  workers : (string, worker) Hashtbl.t;  (* by worker id *)
  strikes : (string, int) Hashtbl.t;  (* by worker name: survives restarts *)
  quarantine : (string, string) Hashtbl.t;  (* name -> reason *)
  mutable next_wid : int;
  mutable next_lid : int;
  mutable alive : bool;
  mutable monitor : Thread.t option;
  mutable joined : int;
  mutable rejoined : int;
  mutable leases : int;
  mutable requeued_leases : int;
  mutable requeued_items : int;
  mutable accepted : int;
  mutable ignored : int;
  mutable remote : int;
  mutable local_fallbacks : int;
}

let now () = Unix.gettimeofday ()

(* Lock held. A worker counts as live while its connection is up or its
   two-tier deadline (2 heartbeats + grace) has not yet passed — so a
   briefly dropped connection (chaos garbage frame, network blip) does not
   stampede every queued item back to the local pool before the worker can
   rejoin. *)
let live_w t w =
  (not (Hashtbl.mem t.quarantine w.wname))
  && (w.connected || now () -. w.last_seen < (2.0 *. t.opts.heartbeat_every) +. t.opts.grace)

let count_live t = Hashtbl.fold (fun _ w n -> if live_w t w then n + 1 else n) t.workers 0

(* Lock held. *)
let requeue_lease t w why =
  match w.lease with
  | None -> ()
  | Some l ->
      let n =
        List.fold_left
          (fun n it ->
            match it.state with
            | Leased lid when lid = l.lid ->
                it.state <- Queued;
                n + 1
            | _ -> n)
          0 l.items
      in
      w.lease <- None;
      t.requeued_leases <- t.requeued_leases + 1;
      t.requeued_items <- t.requeued_items + n;
      t.echo
        (Printf.sprintf "fleet: %s (%s): requeued %d item(s) of lease %s: %s" w.wid w.wname n
           l.lid why);
      Condition.broadcast t.cond

(* Lock held. *)
let strike t name why =
  let n = (try Hashtbl.find t.strikes name with Not_found -> 0) + 1 in
  Hashtbl.replace t.strikes name n;
  if n >= t.opts.quarantine_after && not (Hashtbl.mem t.quarantine name) then begin
    Hashtbl.replace t.quarantine name
      (Printf.sprintf "killed %d batch(es), last: %s" n why);
    t.echo (Printf.sprintf "fleet: worker %s quarantined after %d strike(s): %s" name n why);
    Condition.broadcast t.cond
  end

(* Lock held: the fleet's Pool-style two-tier deadline sweep. Tier 1
   (missed heartbeats, expired lease) requeues the lease and records a
   strike; tier 2 (grace also spent) declares the worker dead. Requeue is
   time-based, never disconnect-based: a worker that drops its connection
   and rejoins quickly keeps its lease and its in-flight work. *)
let sweep t =
  let tnow = now () in
  Hashtbl.iter
    (fun _ w ->
      let age = tnow -. w.last_seen in
      (match w.lease with
      | Some _ when age > 2.0 *. t.opts.heartbeat_every ->
          requeue_lease t w
            (Printf.sprintf "no heartbeat for %.1fs" age);
          strike t w.wname "missed heartbeats mid-batch"
      | Some l when tnow -. l.issued > t.opts.lease_ttl ->
          requeue_lease t w "lease expired";
          strike t w.wname "lease expired"
      | _ -> ());
      if w.connected && age > (2.0 *. t.opts.heartbeat_every) +. t.opts.grace then begin
        w.connected <- false;
        t.echo (Printf.sprintf "fleet: %s (%s) presumed dead (%.1fs silent)" w.wid w.wname age);
        Condition.broadcast t.cond
      end)
    t.workers

let monitor_loop t =
  let tick = Float.max 0.01 (Float.min 0.1 (t.opts.heartbeat_every /. 4.0)) in
  let rec go () =
    let alive =
      Mutex.protect t.lock (fun () ->
          if t.alive then begin
            sweep t;
            (* wake deadline-watching waiters and long-pollers: OCaml's
               Condition has no timed wait, so the monitor is the clock *)
            Condition.broadcast t.cond
          end;
          t.alive)
    in
    if alive then begin
      Thread.delay tick;
      go ()
    end
  in
  go ()

let create ?(options = default_options) ?(log = ignore) () =
  let opts =
    {
      options with
      heartbeat_every = Float.max 0.01 options.heartbeat_every;
      max_batch = max 1 options.max_batch;
      quarantine_after = max 1 options.quarantine_after;
    }
  in
  let t =
    {
      opts;
      echo = log;
      lock = Mutex.create ();
      cond = Condition.create ();
      items = Hashtbl.create 64;
      workers = Hashtbl.create 8;
      strikes = Hashtbl.create 8;
      quarantine = Hashtbl.create 8;
      next_wid = 0;
      next_lid = 0;
      alive = true;
      monitor = None;
      joined = 0;
      rejoined = 0;
      leases = 0;
      requeued_leases = 0;
      requeued_items = 0;
      accepted = 0;
      ignored = 0;
      remote = 0;
      local_fallbacks = 0;
    }
  in
  t.monitor <- Some (Thread.create monitor_loop t);
  t

let stop t =
  let th =
    Mutex.protect t.lock (fun () ->
        t.alive <- false;
        Condition.broadcast t.cond;
        let th = t.monitor in
        t.monitor <- None;
        th)
  in
  Option.iter Thread.join th

(* ------------------------------------------------------------ evaluation *)

let live_workers t = Mutex.protect t.lock (fun () -> count_live t)

let eval t ~ctx ~key ~text local =
  Mutex.lock t.lock;
  if (not t.alive) || count_live t = 0 then begin
    Mutex.unlock t.lock;
    (local (), `Local)
  end
  else begin
    let it = { key; text; ctx; state = Queued; enqueued = now () } in
    Hashtbl.replace t.items key it;
    Condition.broadcast t.cond;
    let deadline = it.enqueued +. t.opts.item_deadline in
    let rec wait () =
      match it.state with
      | Done v ->
          Hashtbl.remove t.items key;
          t.remote <- t.remote + 1;
          `Remote v
      | _ when (not t.alive) || now () > deadline || (it.state = Queued && count_live t = 0)
        ->
          (* reclaim: graceful degradation to the in-process pool. Any
             remote verdict that arrives later is ignored as stale. *)
          it.state <- Local;
          t.local_fallbacks <- t.local_fallbacks + 1;
          `Fallback
      | _ ->
          Condition.wait t.cond t.lock;
          wait ()
    in
    match wait () with
    | `Remote v ->
        Mutex.unlock t.lock;
        (v, `Remote)
    | `Fallback ->
        Mutex.unlock t.lock;
        let v = local () in
        Mutex.protect t.lock (fun () -> Hashtbl.remove t.items key);
        (v, `Local)
  end

(* -------------------------------------------------------- frame handlers *)

let find_worker t wid = Hashtbl.find_opt t.workers wid

let welcome t w ~wire_version ~already_done =
  Wire.Worker_welcome
    {
      worker = w.wid;
      wire_version = min wire_version Wire.version;
      heartbeat_every = t.opts.heartbeat_every;
      lease_ttl = t.opts.lease_ttl;
      already_done;
    }

let hello t ~name ~wire_version ~reconnect ~capacity =
  Mutex.protect t.lock (fun () ->
      if wire_version < 2 then
        Wire.Error_reply
          (Printf.sprintf "fleet frames need protocol version 2; worker %s speaks %d" name
             wire_version)
      else
        match Hashtbl.find_opt t.quarantine name with
        | Some why -> Wire.Error_reply (Printf.sprintf "worker %s is quarantined: %s" name why)
        | None -> (
            let returning =
              match reconnect with
              | Some wid -> (
                  match find_worker t wid with
                  | Some w when w.wname = name -> Some w
                  | _ -> None)
              | None -> None
            in
            match returning with
            | Some w ->
                (* rejoin after a dropped connection: the lease survives
                   (requeue is time-based) and the worker gets a delta of
                   the items that resolved while it was away, so it never
                   re-evaluates memoized work *)
                w.connected <- true;
                w.last_seen <- now ();
                w.capacity <- max 1 capacity;
                t.rejoined <- t.rejoined + 1;
                let already_done =
                  match w.lease with
                  | None -> []
                  | Some l ->
                      List.filter_map
                        (fun it ->
                          match it.state with
                          | Done _ | Local -> Some it.key
                          | Leased lid when lid <> l.lid -> Some it.key
                          | _ -> None)
                        l.items
                in
                t.echo
                  (Printf.sprintf "fleet: %s (%s) rejoined, %d item(s) already done" w.wid name
                     (List.length already_done));
                Condition.broadcast t.cond;
                welcome t w ~wire_version ~already_done
            | None ->
                (* fresh hello. A previous incarnation with the same name
                   restarted from scratch: its outstanding lease is dead
                   weight, requeue it now instead of waiting for the
                   deadline, and count the death as a strike. *)
                Hashtbl.iter
                  (fun _ old ->
                    if old.wname = name then begin
                      if old.lease <> None then begin
                        requeue_lease t old "worker restarted mid-batch";
                        strike t name "restarted mid-batch"
                      end;
                      old.connected <- false
                    end)
                  t.workers;
                if Hashtbl.mem t.quarantine name then
                  Wire.Error_reply
                    (Printf.sprintf "worker %s is quarantined: %s" name
                       (Hashtbl.find t.quarantine name))
                else begin
                  t.next_wid <- t.next_wid + 1;
                  let wid = Printf.sprintf "w%03d" t.next_wid in
                  let w =
                    {
                      wid;
                      wname = name;
                      connected = true;
                      last_seen = now ();
                      lease = None;
                      completed = 0;
                      capacity = max 1 capacity;
                    }
                  in
                  Hashtbl.replace t.workers wid w;
                  t.joined <- t.joined + 1;
                  t.echo (Printf.sprintf "fleet: %s joined as %s" name wid);
                  Condition.broadcast t.cond;
                  welcome t w ~wire_version ~already_done:[]
                end))

(* Lock held: carve a batch out of the queued items. One batch holds one
   evaluation context (bench + options) so the worker builds one target
   and harness per lease. *)
let grab_batch t w capacity =
  let cap = max 1 (min (min capacity w.capacity) t.opts.max_batch) in
  let queued =
    Hashtbl.fold (fun _ it l -> if it.state = Queued then it :: l else l) t.items []
  in
  match List.sort (fun a b -> compare a.enqueued b.enqueued) queued with
  | [] -> None
  | first :: _ ->
      let picked =
        List.filteri (fun i _ -> i < cap)
          (List.filter (fun it -> it.ctx = first.ctx)
             (List.sort (fun a b -> compare a.enqueued b.enqueued) queued))
      in
      t.next_lid <- t.next_lid + 1;
      let lid = Printf.sprintf "l%04d" t.next_lid in
      List.iter (fun it -> it.state <- Leased lid) picked;
      let l = { lid; items = picked; issued = now () } in
      w.lease <- Some l;
      t.leases <- t.leases + 1;
      Some
        {
          Wire.lease = lid;
          bench = first.ctx.bench;
          cls = first.ctx.cls;
          eval_steps = first.ctx.eval_steps;
          retries = first.ctx.retries;
          items = List.map (fun it -> (it.key, it.text)) picked;
        }

let lease_request t ~worker ~capacity =
  Mutex.protect t.lock (fun () ->
      match find_worker t worker with
      | None -> Wire.Error_reply (Printf.sprintf "unknown worker %S (say hello first)" worker)
      | Some w when Hashtbl.mem t.quarantine w.wname ->
          Wire.Error_reply
            (Printf.sprintf "worker %s is quarantined: %s" w.wname
               (Hashtbl.find t.quarantine w.wname))
      | Some w ->
          w.connected <- true;
          (* a new request while a lease is outstanding means the worker
             abandoned it (fresh loop after an ack'd abandon) *)
          if w.lease <> None then requeue_lease t w "superseded by a new lease request";
          let deadline = now () +. t.opts.poll_timeout in
          let rec poll () =
            w.last_seen <- now ();
            match grab_batch t w capacity with
            | Some batch -> Wire.Lease_reply (Some batch)
            | None ->
                if (not t.alive) || now () > deadline then Wire.Lease_reply None
                else begin
                  (* long poll: the monitor tick is the timeout clock *)
                  Condition.wait t.cond t.lock;
                  poll ()
                end
          in
          poll ())

let result_push t ~worker ~lease ~results =
  Mutex.protect t.lock (fun () ->
      match find_worker t worker with
      | None -> Wire.Error_reply (Printf.sprintf "unknown worker %S (say hello first)" worker)
      | Some w ->
          w.connected <- true;
          w.last_seen <- now ();
          let owns_lease = match w.lease with Some l -> l.lid = lease | None -> false in
          let accepted = ref 0 and ignored = ref 0 in
          List.iter
            (fun (key, vtext) ->
              match (Hashtbl.find_opt t.items key, Verdict.verdict_of_string vtext) with
              | Some it, Some v when owns_lease && it.state = Leased lease ->
                  it.state <- Done v;
                  incr accepted
              | _ ->
                  (* duplicate delivery, stale lease, reclaimed item, or a
                     verdict that does not parse: never double-recorded,
                     never an error *)
                  incr ignored)
            results;
          w.completed <- w.completed + !accepted;
          t.accepted <- t.accepted + !accepted;
          t.ignored <- t.ignored + !ignored;
          (* auto-release: once every leased item is resolved the lease is
             spent and the worker may take the next one *)
          (match w.lease with
          | Some l
            when List.for_all
                   (fun it ->
                     match it.state with Leased lid -> lid <> l.lid | _ -> true)
                   l.items ->
              w.lease <- None
          | _ -> ());
          if !accepted > 0 then Condition.broadcast t.cond;
          Wire.Result_ack { accepted = !accepted; ignored = !ignored })

let heartbeat t ~worker ~lease ~completed =
  ignore completed;
  Mutex.protect t.lock (fun () ->
      match find_worker t worker with
      | None ->
          (* unknown id (daemon restarted): drop everything and re-hello *)
          Wire.Heartbeat_ack { abandon = true }
      | Some w ->
          w.connected <- true;
          w.last_seen <- now ();
          let abandon =
            Hashtbl.mem t.quarantine w.wname
            ||
            match (lease, w.lease) with
            | None, _ -> false
            | Some lid, Some l -> lid <> l.lid
            | Some _, None -> true
          in
          Wire.Heartbeat_ack { abandon })

let goodbye t ~worker =
  Mutex.protect t.lock (fun () ->
      match find_worker t worker with
      | None -> Wire.Goodbye_ack { requeued = 0 }
      | Some w ->
          let before = t.requeued_items in
          requeue_lease t w "clean goodbye";
          (* a clean departure is not a death: withdraw the strike *)
          (match Hashtbl.find_opt t.strikes w.wname with
          | Some n when w.lease = None && t.requeued_items > before ->
              Hashtbl.replace t.strikes w.wname (max 0 (n - 1))
          | _ -> ());
          w.connected <- false;
          w.last_seen <- neg_infinity;  (* not live: do not hold up degradation *)
          t.echo (Printf.sprintf "fleet: %s (%s) left" w.wid w.wname);
          Condition.broadcast t.cond;
          Wire.Goodbye_ack { requeued = t.requeued_items - before })

(* One fleet frame -> one reply; [None] for non-fleet frames so the server
   can fall through to the campaign dispatcher. *)
let handle t = function
  | Wire.Worker_hello { name; wire_version; reconnect; capacity } ->
      Some (hello t ~name ~wire_version ~reconnect ~capacity)
  | Wire.Lease_request { worker; capacity } -> Some (lease_request t ~worker ~capacity)
  | Wire.Result_push { worker; lease; results } -> Some (result_push t ~worker ~lease ~results)
  | Wire.Heartbeat { worker; lease; completed } -> Some (heartbeat t ~worker ~lease ~completed)
  | Wire.Goodbye worker -> Some (goodbye t ~worker)
  | _ -> None

let disconnected t wid =
  Mutex.protect t.lock (fun () ->
      match find_worker t wid with
      | None -> ()
      | Some w ->
          (* a hint, not a death: requeue stays time-based so a quick
             rejoin keeps the lease *)
          w.connected <- false;
          Condition.broadcast t.cond)

(* --------------------------------------------------------------- reports *)

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        joined = t.joined;
        rejoined = t.rejoined;
        leases = t.leases;
        requeued_leases = t.requeued_leases;
        requeued_items = t.requeued_items;
        accepted = t.accepted;
        ignored = t.ignored;
        remote = t.remote;
        local_fallbacks = t.local_fallbacks;
        quarantined =
          Hashtbl.fold (fun name _ l -> name :: l) t.quarantine [] |> List.sort compare;
      })

let report t =
  let s = stats t in
  Printf.sprintf
    "fleet: %d joined (%d rejoins), %d lease(s), %d requeued (%d item(s)), results %d accepted \
     / %d ignored, %d remote / %d local evaluations%s"
    s.joined s.rejoined s.leases s.requeued_leases s.requeued_items s.accepted s.ignored
    s.remote s.local_fallbacks
    (match s.quarantined with
    | [] -> ""
    | q -> Printf.sprintf ", quarantined: %s" (String.concat ", " q))
