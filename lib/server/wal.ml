let header = "# craft-wal v1"

type record =
  | Submitted of { id : string; spec : Wire.job_spec }
  | Outcome of { id : string; state : Wire.job_state; summary : string }

type t = { path : string; oc : out_channel; lock : Mutex.t }

(* ---------------------------------------------------------------- format *)

let state_token = function
  | Wire.Queued -> "queued"
  | Wire.Running -> "running"
  | Wire.Done -> "done"
  | Wire.Cancelled -> "cancelled"
  | Wire.Failed why -> "failed:" ^ Verdict.escape why
  | Wire.Quarantined why -> "quarantined:" ^ Verdict.escape why

let state_of_token s =
  match s with
  | "queued" -> Some Wire.Queued
  | "running" -> Some Wire.Running
  | "done" -> Some Wire.Done
  | "cancelled" -> Some Wire.Cancelled
  | _ -> (
      match String.index_opt s ':' with
      | None -> None
      | Some i -> (
          let tag = String.sub s 0 i in
          let why = Verdict.unescape (String.sub s (i + 1) (String.length s - i - 1)) in
          match (tag, why) with
          | "failed", Some why -> Some (Wire.Failed why)
          | "quarantined", Some why -> Some (Wire.Quarantined why)
          | _ -> None))

let record_line = function
  | Submitted { id; spec } ->
      Printf.sprintf "submit %s %s %s %d %d %s %s %s" id
        (Verdict.escape spec.Wire.bench)
        (Verdict.escape spec.Wire.cls)
        (if spec.Wire.shadow then 1 else 0)
        spec.Wire.priority
        (match spec.Wire.eval_steps with None -> "-" | Some n -> string_of_int n)
        (match spec.Wire.formats with "" -> "-" | m -> Verdict.escape m)
        (match spec.Wire.strategy with "" -> "-" | s -> Verdict.escape s)
  | Outcome { id; state; summary } ->
      Printf.sprintf "outcome %s %s %s" id (state_token state) (Verdict.escape summary)

(* Tolerant, like the Journal: any line that does not parse — malformed, or
   the truncated half-record a crash leaves at the end — is dropped. *)
let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    (* submit records grew an 8th (formats) token with the lattice and a
       9th (strategy) token with pluggable strategies; the 7-token form is
       what pre-lattice daemons wrote, the 8-token form what pre-strategy
       daemons wrote — both still load, resuming those jobs with the
       single-only default menu and the default bfs strategy *)
    | [ "submit"; id; bench; cls; shadow; priority; steps ]
    | [ "submit"; id; bench; cls; shadow; priority; steps; _ ]
    | [ "submit"; id; bench; cls; shadow; priority; steps; _; _ ] as toks -> (
        let formats_tok, strategy_tok =
          match toks with
          | [ _; _; _; _; _; _; _; m ] -> (m, "-")
          | [ _; _; _; _; _; _; _; m; s ] -> (m, s)
          | _ -> ("-", "-")
        in
        match
          ( Verdict.unescape bench,
            Verdict.unescape cls,
            (match shadow with "0" -> Some false | "1" -> Some true | _ -> None),
            int_of_string_opt priority,
            (match steps with
            | "-" -> Some None
            | s -> Option.map Option.some (int_of_string_opt s)),
            (match formats_tok with "-" -> Some "" | m -> Verdict.unescape m),
            match strategy_tok with "-" -> Some "" | s -> Verdict.unescape s )
        with
        | ( Some bench,
            Some cls,
            Some shadow,
            Some priority,
            Some eval_steps,
            Some formats,
            Some strategy ) ->
            Some
              (Submitted
                 {
                   id;
                   spec =
                     {
                       Wire.bench;
                       cls;
                       shadow;
                       priority;
                       eval_steps;
                       formats;
                       strategy;
                     };
                 })
        | _ -> None)
    | "outcome" :: id :: state :: rest -> (
        let summary =
          match rest with
          | [] -> Some ""
          | [ s ] -> Verdict.unescape s
          | _ -> None
        in
        match (state_of_token state, summary) with
        | Some state, Some summary -> Some (Outcome { id; state; summary })
        | _ -> None)
    | _ -> None

(* ------------------------------------------------------------- lifecycle *)

let fsync_oc oc =
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let create ~path =
  let fresh = not (Sys.file_exists path) in
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  if fresh then begin
    output_string oc (header ^ "\n");
    flush oc;
    fsync_oc oc
  end;
  { path; oc; lock = Mutex.create () }

let path t = t.path

(* Job lifecycle transitions are rare next to evaluations, so every append
   is flushed and fsynced: the job table is never behind the crash. *)
let append t r =
  Mutex.protect t.lock (fun () ->
      output_string t.oc (record_line r ^ "\n");
      flush t.oc;
      fsync_oc t.oc)

let close t =
  Mutex.protect t.lock (fun () ->
      flush t.oc;
      fsync_oc t.oc;
      close_out t.oc)

let load ~path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let records = ref [] in
    (try
       while true do
         match parse_line (input_line ic) with
         | Some r -> records := r :: !records
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !records
  end

(* ---------------------------------------------------------------- replay *)

type entry = { spec : Wire.job_spec; outcome : (Wire.job_state * string) option }

let is_terminal = function
  | Wire.Done | Wire.Cancelled | Wire.Failed _ | Wire.Quarantined _ -> true
  | Wire.Queued | Wire.Running -> false

let replay records =
  let table = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun r ->
      match r with
      | Submitted { id; spec } ->
          if not (Hashtbl.mem table id) then begin
            Hashtbl.replace table id { spec; outcome = None };
            order := id :: !order
          end
      | Outcome { id; state; summary } -> (
          (* an outcome for a job we never saw submitted, or a non-terminal
             state, is a record we cannot act on: drop it *)
          match Hashtbl.find_opt table id with
          | Some entry when is_terminal state ->
              Hashtbl.replace table id { entry with outcome = Some (state, summary) }
          | _ -> ()))
    records;
  List.rev_map (fun id -> (id, Hashtbl.find table id)) !order
