exception Aborted

module Target = struct
  type t = {
    program : Ir.program;
    eval : Config.t -> bool;
    raw_eval : Config.t -> bool;
    profile : unit -> int array;
    code_cache : Compile.cache option;
  }

  let make ?eval_steps ?faults ?(backend = Compile.Compiled) ?cache program ~setup ~output
      ~verify =
    let code_cache =
      match backend with
      | Compile.Compiled ->
          (* a caller-supplied cache is shared beyond this target — the
             campaign server hands every job on the same program one cache *)
          Some (match cache with Some c -> c | None -> Compile.create_cache ())
      | Compile.Interp -> None
    in
    let raw_eval cfg =
      let patched = Patcher.patch program cfg in
      let vm = Vm.create ~checked:true ?max_steps:eval_steps patched in
      setup vm;
      (match (faults, code_cache) with
      | Some inj, _ ->
          (* the fault injector owns the run: its hook must see every
             instruction, so the evaluation always interprets *)
          let key = Config.digest program cfg in
          Faults.arm inj ~key vm;
          Vm.run vm;
          Faults.finish inj ~key vm
      | None, Some cache ->
          (* any hook installed by [setup] (shadow tracer, test probe)
             makes Compile.run fall back to the interpreter by itself *)
          Compile.run ~cache vm
      | None, None -> Vm.run vm);
      verify (output vm)
    in
    let eval cfg =
      match raw_eval cfg with
      | ok -> ok
      | exception Vm.Trap _ -> false
      | exception Vm.Limit _ -> false
    in
    let profile () =
      let vm = Vm.create program in
      setup vm;
      Vm.run vm;
      vm.counts
    in
    { program; eval; raw_eval; profile; code_cache }
end

type granularity = Module_level | Func_level | Block_level | Insn_level

type checkpoint_opts = {
  path : string;
  every : int;
  resume : bool;
  save_counters : unit -> (string * int) list;
  restore_counters : (string * int) list -> unit;
}

let checkpoint ?(every = 1) ?(resume = false) ?(save_counters = fun () -> [])
    ?(restore_counters = ignore) path =
  { path; every = max 1 every; resume; save_counters; restore_counters }

type shadow_opts = {
  report : Shadow_report.t;
  seed_predicted : bool;
  reorder : bool;
  prune_above : float option;
  on_pruned : Config.t -> float -> unit;
}

let shadow ?(seed_predicted = true) ?(reorder = true) ?prune_above
    ?(on_pruned = fun _ _ -> ()) report =
  { report; seed_predicted; reorder; prune_above; on_pruned }

type options = {
  stop_at : granularity;
  binary_split : bool;
  prioritize : bool;
  split_threshold : int;
  workers : int;
  second_phase : bool;
  base : Config.t;
  pool : Pool.t option;
  checkpoint : checkpoint_opts option;
  shadow : shadow_opts option;
  formats : Formats.t list;
  stop : unit -> bool;
}

let default_options =
  {
    stop_at = Insn_level;
    binary_split = true;
    prioritize = true;
    split_threshold = 4;
    workers = 1;
    second_phase = false;
    base = Config.empty;
    pool = None;
    checkpoint = None;
    shadow = None;
    formats = [ Formats.single ];
    stop = (fun () -> false);
  }

type result = {
  final : Config.t;
  final_pass : bool;
  candidates : int;
  tested : int;
  static_replaced : int;
  static_pct : float;
  dynamic_pct : float;
  passing_nodes : Static.node list;
  passing_flags : (Static.node * Config.flag) list;
  bits_saved : int;
  log : string list;
  supervisor : Pool.stats option;
  snapshots : int;
  pruned : int;
  interrupted : bool;
}

let rank = function Module_level -> 0 | Func_level -> 1 | Block_level -> 2 | Insn_level -> 3

let node_rank = function
  | Static.Module _ -> 0
  | Static.Func _ -> 1
  | Static.Block _ -> 2
  | Static.Insn _ -> 3

let children_of = function
  | Static.Module (_, cs) | Static.Func (_, _, cs) | Static.Block (_, cs) -> cs
  | Static.Insn _ -> []

let force_flag ~base flag cfg node =
  let has_ignored =
    List.exists
      (fun info -> Config.effective base info = Config.Ignore)
      (Static.node_insns node)
  in
  if not has_ignored then Config.set_node cfg node flag
  else
    (* Aggregate flags override children, so setting the aggregate flag
       would clobber the user's ignore hints; expand to instruction level
       instead. *)
    List.fold_left
      (fun acc info ->
        if Config.effective base info = Config.Ignore then acc
        else Config.set_insn acc info.Static.addr flag)
      cfg (Static.node_insns node)

let force_single ~base cfg node = force_flag ~base Config.Single cfg node

type item = { nodes : Static.node list; weight : int; seq : int; score : float }
(* [score] is the shadow-predicted divergence of flipping exactly these
   nodes to single (infinity when a control-flow flip was observed inside);
   0 when the search runs without shadow guidance *)

let search ?(options = default_options) (target : Target.t) =
  let counts = target.profile () in
  let base = options.base in
  let log = ref [] in
  let say fmt = Format.kasprintf (fun s -> log := s :: !log) fmt in
  (* The format lattice. The structural descent runs entirely at the
     [entry] format (the widest reduced format on the menu — [single] by
     default, reproducing the pre-lattice search exactly); formats cheaper
     than the entry are tried per passing structure afterwards,
     cheapest-first, and the first one that still verifies wins. [double]
     on the menu means "not replaced" and never enters the descent. *)
  let menu =
    List.filter (fun f -> not (Formats.equal f Formats.double)) options.formats
    |> List.sort_uniq Formats.compare_cost
  in
  let entry_fmt = match List.rev menu with f :: _ -> f | [] -> Formats.single in
  let entry_flag = Config.of_format entry_fmt in
  let lower_menu = List.filter (fun f -> Formats.compare_cost f entry_fmt < 0) menu in
  let live_insns node =
    List.filter
      (fun info -> Config.effective base info <> Config.Ignore)
      (Static.node_insns node)
  in
  let weight_of nodes =
    List.fold_left
      (fun acc n ->
        List.fold_left (fun acc (i : Static.insn_info) -> acc + counts.(i.addr)) acc
          (live_insns n))
      0 nodes
  in
  let universe =
    Array.to_list (Static.candidates target.program)
    |> List.filter (fun info -> Config.effective base info <> Config.Ignore)
  in
  let n_candidates = List.length universe in
  (* shadow-predicted divergence of an item's node set: the worst observed
     per-instruction divergence, or infinity when any contained instruction
     flipped a comparison/conversion outcome (its prediction — and that of
     everything data-dependent — is unreliable, so such items are never
     pruned and sort last under reordering) *)
  let shadow_score nodes =
    match options.shadow with
    | None -> 0.0
    | Some s ->
        List.fold_left
          (fun acc n ->
            List.fold_left
              (fun acc (i : Static.insn_info) ->
                if Shadow_report.flips_at s.report i.addr > 0 then infinity
                else Float.max acc (Shadow_report.max_rel_at s.report i.addr))
              acc (live_insns n))
          0.0 nodes
  in
  let shadow_reorder =
    match options.shadow with Some s -> s.reorder | None -> false
  in
  let seq = ref 0 in
  let mk nodes =
    incr seq;
    { nodes; weight = weight_of nodes; seq = !seq; score = shadow_score nodes }
  in
  let queue = ref [] in
  let push it = if it.nodes <> [] then queue := it :: !queue in
  let pop_batch n =
    let cmp a b =
      if shadow_reorder then
        (* most tolerant first: predicted divergence ascending, then the
           profile weight (heavier = more dynamic coverage), then seq *)
        match Float.compare a.score b.score with
        | 0 -> (
            match compare b.weight a.weight with 0 -> compare a.seq b.seq | c -> c)
        | c -> c
      else if options.prioritize then
        match compare b.weight a.weight with 0 -> compare a.seq b.seq | c -> c
      else compare a.seq b.seq
    in
    let sorted = List.sort cmp !queue in
    let rec take k = function
      | [] -> ([], [])
      | x :: rest when k > 0 ->
          let batch, leftover = take (k - 1) rest in
          (x :: batch, leftover)
      | rest -> ([], rest)
    in
    let batch, rest = take n sorted in
    queue := rest;
    batch
  in
  let cfg_of_item it =
    List.fold_left (fun acc n -> force_flag ~base entry_flag acc n) base it.nodes
  in
  let tested = ref 0 in
  let passing = ref [] in
  let snapshots = ref 0 in
  (* An evaluation must never abort the campaign: any exception escaping
     [target.eval] (a crashing verify routine, OOM, a stack overflow, ...)
     is this one configuration's classified failure, not the search's.
     Only the deliberate [Aborted] control exception passes through — it
     IS the campaign dying (kill simulation / operator interrupt). *)
  let eval_verdict cfg =
    match target.eval cfg with
    | true -> Verdict.Pass
    | false -> Verdict.Fail_verify
    | exception Aborted -> raise Aborted
    | exception e -> Verdict.classify_exn e
  in
  let contained_eval cfg = eval_verdict cfg = Verdict.Pass in
  (* The worker pool supervises parallel waves. A caller-supplied pool is
     reused (and left running); otherwise a transient one is staffed for
     this campaign when [workers > 1] asks for parallelism. *)
  let transient_pool =
    match (options.pool, options.workers) with
    | Some _, _ | None, 1 -> None
    | None, w when w <= 1 -> None
    | None, w ->
        Some
          (Pool.create
             ~options:{ Pool.default_options with workers = w }
             ())
  in
  let pool = match options.pool with Some p -> Some p | None -> transient_pool in
  let drain_pool () =
    match pool with
    | None -> ()
    | Some p -> List.iter (fun e -> say "POOL %s" e) (Pool.drain_events p)
  in
  let eval_items items =
    tested := !tested + List.length items;
    match (items, pool) with
    | [ it ], None -> [ (it, eval_verdict (cfg_of_item it)) ]
    | _, None -> List.map (fun it -> (it, eval_verdict (cfg_of_item it))) items
    | _, Some p ->
        let thunks =
          List.map
            (fun it ->
              let cfg = cfg_of_item it in
              fun () -> eval_verdict cfg)
            items
        in
        List.combine items (Pool.run p thunks)
  in
  (* ----------------------------------------------------------- checkpoint *)
  let save_snapshot () =
    match options.checkpoint with
    | None -> ()
    | Some ck ->
        let entry it =
          {
            Checkpoint.seq = it.seq;
            weight = it.weight;
            nodes = List.map Checkpoint.node_id it.nodes;
          }
        in
        Checkpoint.save ~path:ck.path
          {
            Checkpoint.key = Checkpoint.program_key target.program;
            tested = !tested;
            next_seq = !seq;
            queue = List.map entry !queue;
            passing = List.map Checkpoint.flagged_id (List.rev !passing);
            counters = ck.save_counters ();
            log = List.rev !log;
            strategy = "bfs";
          };
        incr snapshots
  in
  let restored =
    match options.checkpoint with
    | Some ck when ck.resume -> (
        match Checkpoint.load ~path:ck.path with
        | Error msg ->
            say "CHECKPOINT not resumed: %s" msg;
            false
        | Ok snap when snap.Checkpoint.key <> Checkpoint.program_key target.program ->
            say "CHECKPOINT not resumed: written by a different program (key %s)"
              snap.Checkpoint.key;
            false
        | Ok snap when snap.Checkpoint.strategy <> "bfs" ->
            say "CHECKPOINT not resumed: written by strategy %s"
              snap.Checkpoint.strategy;
            false
        | Ok snap -> (
            let resolve_with res ids =
              List.fold_left
                (fun acc id ->
                  match acc with
                  | Error _ as e -> e
                  | Ok nodes -> (
                      match res target.program id with
                      | Ok n -> Ok (n :: nodes)
                      | Error _ as e -> e))
                (Ok []) ids
              |> Result.map List.rev
            in
            let resolve_all = resolve_with Checkpoint.resolve in
            let entries =
              List.fold_left
                (fun acc (e : Checkpoint.entry) ->
                  match acc with
                  | Error _ as err -> err
                  | Ok items -> (
                      match resolve_all e.Checkpoint.nodes with
                      | Ok nodes ->
                          Ok
                            ({ nodes; weight = e.weight; seq = e.seq; score = shadow_score nodes }
                            :: items)
                      | Error _ as err -> err))
                (Ok []) snap.Checkpoint.queue
            in
            match (entries, resolve_with Checkpoint.resolve_flagged snap.Checkpoint.passing) with
            | Error msg, _ | _, Error msg ->
                say "CHECKPOINT not resumed: %s" msg;
                false
            | Ok items, Ok passed ->
                log := List.rev snap.Checkpoint.log;
                queue := items;
                passing := List.rev passed;
                tested := snap.Checkpoint.tested;
                seq := snap.Checkpoint.next_seq;
                ck.restore_counters snap.Checkpoint.counters;
                say "RESUME from checkpoint: %d tested, %d queued, %d passing"
                  snap.Checkpoint.tested (List.length items) (List.length passed);
                true))
    | _ -> false
  in
  let pruned = ref 0 in
  let seed_default () =
    (* Seed the queue with one configuration per module. *)
    List.iter
      (fun node -> if live_insns node <> [] then push (mk [ node ]))
      (Static.tree target.program)
  in
  if not restored then begin
    (* Shadow seeding: evaluate the predicted configuration once. If it
       passes, its structures enter the passing set immediately and only
       the unpredicted remainder of the tree is queued; if it fails, the
       prediction bought nothing and the search seeds normally. *)
    let shadow_seeded =
      match options.shadow with
      | Some s when s.seed_predicted -> (
          let pred =
            List.filter (fun n -> live_insns n <> []) (Shadow_report.predicted_nodes s.report)
          in
          match pred with
          | [] ->
              say "SHADOW seed: nothing predicted single";
              false
          | pred -> (
              let cfg =
                List.fold_left (fun acc n -> force_flag ~base entry_flag acc n) base pred
              in
              incr tested;
              match eval_verdict cfg with
              | Verdict.Pass ->
                  say "SHADOW seed: predicted configuration passes — %d structure(s) pre-accepted"
                    (List.length pred);
                  passing := List.rev_map (fun n -> (n, entry_flag)) pred @ !passing;
                  let module ISet = Set.Make (Int) in
                  let pred_addrs =
                    List.fold_left
                      (fun acc n ->
                        List.fold_left
                          (fun acc (i : Static.insn_info) -> ISet.add i.addr acc)
                          acc (live_insns n))
                      ISet.empty pred
                  in
                  (* queue the not-yet-accepted remainder, descending just
                     far enough to carve the predicted structures out *)
                  let rec residual node =
                    let insns = live_insns node in
                    if insns = [] then []
                    else if
                      List.for_all (fun (i : Static.insn_info) -> ISet.mem i.addr pred_addrs) insns
                    then []
                    else if
                      List.exists (fun (i : Static.insn_info) -> ISet.mem i.addr pred_addrs) insns
                    then List.concat_map residual (children_of node)
                    else [ node ]
                  in
                  List.iter
                    (fun m -> List.iter (fun n -> push (mk [ n ])) (residual m))
                    (Static.tree target.program);
                  true
              | v ->
                  say "SHADOW seed: predicted configuration %s — seeding normally"
                    (Verdict.verdict_label v);
                  false))
      | _ -> false
    in
    if not shadow_seeded then seed_default ()
  end;
  let halves xs =
    let n = List.length xs in
    let rec split k = function
      | rest when k = 0 -> ([], rest)
      | [] -> ([], [])
      | x :: rest ->
          let a, b = split (k - 1) rest in
          (x :: a, b)
    in
    split ((n + 1) / 2) xs
  in
  let descend it =
    match it.nodes with
    | [] -> ()
    | [ node ] ->
        if node_rank node < rank options.stop_at then begin
          let cs = List.filter (fun c -> live_insns c <> []) (children_of node) in
          match cs with
          | [] -> ()
          | _ when options.binary_split && List.length cs > options.split_threshold ->
              let a, b = halves cs in
              push (mk a);
              push (mk b)
          | _ -> List.iter (fun c -> push (mk [ c ])) cs
        end
    | nodes ->
        (* a failing partition splits in two again *)
        let a, b = halves nodes in
        if options.binary_split && List.length a > 1 then begin
          push (mk a);
          push (mk b)
        end
        else List.iter (fun n -> push (mk [ n ])) nodes
  in
  let finish ~interrupted () =
    let passing_flags = List.rev !passing in
    let passing_nodes = List.map fst passing_flags in
    let final =
      List.fold_left (fun acc (n, fl) -> force_flag ~base fl acc n) base passing_flags
    in
    incr tested;
    let final_pass = contained_eval final in
    say "FINAL union of %d passing structures: %s" (List.length passing_nodes)
      (if final_pass then "pass" else "fail");
    let final, final_pass =
      if final_pass || not options.second_phase then (final, final_pass)
      else begin
        (* Greedy composition: add individually-passing structures heaviest
           first, keeping only those that compose into a passing whole. *)
        let units =
          List.sort
            (fun (a, _) (b, _) -> compare (weight_of [ b ]) (weight_of [ a ]))
            passing_flags
        in
        let acc = ref base in
        List.iter
          (fun (node, fl) ->
            let trial = force_flag ~base fl !acc node in
            incr tested;
            if contained_eval trial then begin
              acc := trial;
              say "COMPOSE keep %s" (Static.node_name node)
            end
            else say "COMPOSE drop %s" (Static.node_name node))
          units;
        (!acc, true)
      end
    in
    let replaced info =
      match Config.effective final info with
      | Config.Single | Config.Fmt _ -> true
      | Config.Double | Config.Ignore -> false
    in
    let static_replaced = List.length (List.filter replaced universe) in
    (* the dynamic denominator counts every FP candidate execution, including
       Ignore-flagged instructions: ignored work is floating-point work that
       was not replaced *)
    let dyn_num, dyn_den =
      Array.fold_left
        (fun (num, den) (info : Static.insn_info) ->
          let c = counts.(info.addr) in
          ((if replaced info then num + c else num), den + c))
        (0, 0)
        (Static.candidates target.program)
    in
    drain_pool ();
    {
      final;
      final_pass;
      candidates = n_candidates;
      tested = !tested;
      static_replaced;
      static_pct = Stats.percent (float_of_int static_replaced) (float_of_int n_candidates);
      dynamic_pct = Stats.percent (float_of_int dyn_num) (float_of_int dyn_den);
      passing_nodes;
      passing_flags;
      bits_saved = Config.bits_saved target.program final;
      log = List.rev !log;
      supervisor = Option.map Pool.stats pool;
      snapshots = !snapshots;
      pruned = !pruned;
      interrupted;
    }
  in
  let run () =
    let wave = ref 0 in
    let stopped () =
      (* polled only at wave boundaries, so a stop request never cuts a
         wave in half: the saved checkpoint is always a consistent state *)
      options.stop () && !queue <> []
    in
    while !queue <> [] && not (options.stop ()) do
      let batch = pop_batch (max 1 options.workers) in
      (* shadow pruning: an item whose predicted divergence exceeds the hard
         bound is treated as a failure without spending an evaluation — the
         skip is journaled as a [Pruned] verdict (never silent) and the item
         still descends, so finer-grained candidates below it are never lost
         (completeness is preserved; only the doomed aggregate evaluation is
         saved). Items containing flips score infinity and are never pruned. *)
      let batch =
        match options.shadow with
        | Some ({ prune_above = Some bound; _ } as s) ->
            List.filter
              (fun it ->
                if Float.is_finite it.score && it.score > bound then begin
                  incr pruned;
                  let names = String.concat " + " (List.map Static.node_name it.nodes) in
                  say "PRUNED %s (predicted divergence %.3e > bound %.3e)" names it.score
                    bound;
                  s.on_pruned (cfg_of_item it) it.score;
                  descend it;
                  false
                end
                else true)
              batch
        | _ -> batch
      in
      let results = eval_items batch in
      List.iter
        (fun (it, verdict) ->
          let names = String.concat " + " (List.map Static.node_name it.nodes) in
          match verdict with
          | Verdict.Pass ->
              say "PASS %s (weight %d)" names it.weight;
              passing := List.map (fun n -> (n, entry_flag)) it.nodes @ !passing
          | v ->
              say "%s %s (weight %d)"
                (String.uppercase_ascii (Verdict.verdict_label v))
                names it.weight;
              descend it)
        results;
      drain_pool ();
      incr wave;
      (* snapshots happen only at wave boundaries: results of the whole wave
         are folded in and the descent is queued, so the saved queue +
         passing set are exactly the campaign's resumable state *)
      (match options.checkpoint with
      | Some ck when !wave mod ck.every = 0 -> save_snapshot ()
      | _ -> ())
    done;
    let interrupted = stopped () in
    if interrupted then
      say "INTERRUPTED with %d item(s) still queued — composing the partial result"
        (List.length !queue);
    (* Lattice descent: every structure that passed at the entry format is
       retried at each strictly cheaper format on the menu, cheapest first;
       the first format that still verifies wins and the structure keeps
       that flag in the final union. One structure failing to descend
       costs at most |menu|-1 evaluations and changes nothing else. *)
    if lower_menu <> [] && not interrupted then
      passing :=
        List.map
          (fun (node, flag) ->
            if options.stop () then (node, flag)
            else begin
              let name = Static.node_name node in
              let rec try_fmts = function
                | [] -> (node, flag)
                | f :: rest -> (
                    let cfg = force_flag ~base (Config.of_format f) base node in
                    incr tested;
                    match eval_verdict cfg with
                    | Verdict.Pass ->
                        say "LATTICE %s descends to %s" name (Formats.name f);
                        (node, Config.of_format f)
                    | v ->
                        say "LATTICE %s at %s: %s" name (Formats.name f)
                          (Verdict.verdict_label v);
                        try_fmts rest)
              in
              try_fmts lower_menu
            end)
          !passing;
    (* a final snapshot is flushed either way: a stop request leaves the
       still-queued frontier on disk, so a later --resume continues the
       campaign instead of restarting it *)
    save_snapshot ();
    finish ~interrupted ()
  in
  match transient_pool with
  | None -> run ()
  | Some p -> Fun.protect ~finally:(fun () -> Pool.shutdown p) run
