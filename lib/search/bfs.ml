module Target = struct
  type t = {
    program : Ir.program;
    eval : Config.t -> bool;
    raw_eval : Config.t -> bool;
    profile : unit -> int array;
  }

  let make ?eval_steps ?faults program ~setup ~output ~verify =
    let raw_eval cfg =
      let patched = Patcher.patch program cfg in
      let vm = Vm.create ~checked:true ?max_steps:eval_steps patched in
      setup vm;
      (match faults with
      | None -> Vm.run vm
      | Some inj ->
          let key = Config.digest program cfg in
          Faults.arm inj ~key vm;
          Vm.run vm;
          Faults.finish inj ~key vm);
      verify (output vm)
    in
    let eval cfg =
      match raw_eval cfg with
      | ok -> ok
      | exception Vm.Trap _ -> false
      | exception Vm.Limit _ -> false
    in
    let profile () =
      let vm = Vm.create program in
      setup vm;
      Vm.run vm;
      vm.counts
    in
    { program; eval; raw_eval; profile }
end

type granularity = Module_level | Func_level | Block_level | Insn_level

type options = {
  stop_at : granularity;
  binary_split : bool;
  prioritize : bool;
  split_threshold : int;
  workers : int;
  second_phase : bool;
  base : Config.t;
}

let default_options =
  {
    stop_at = Insn_level;
    binary_split = true;
    prioritize = true;
    split_threshold = 4;
    workers = 1;
    second_phase = false;
    base = Config.empty;
  }

type result = {
  final : Config.t;
  final_pass : bool;
  candidates : int;
  tested : int;
  static_replaced : int;
  static_pct : float;
  dynamic_pct : float;
  passing_nodes : Static.node list;
  log : string list;
}

let rank = function Module_level -> 0 | Func_level -> 1 | Block_level -> 2 | Insn_level -> 3

let node_rank = function
  | Static.Module _ -> 0
  | Static.Func _ -> 1
  | Static.Block _ -> 2
  | Static.Insn _ -> 3

let children_of = function
  | Static.Module (_, cs) | Static.Func (_, _, cs) | Static.Block (_, cs) -> cs
  | Static.Insn _ -> []

let force_single ~base cfg node =
  let has_ignored =
    List.exists
      (fun info -> Config.effective base info = Config.Ignore)
      (Static.node_insns node)
  in
  if not has_ignored then Config.set_node cfg node Config.Single
  else
    (* Aggregate flags override children, so setting the aggregate single
       would clobber the user's ignore hints; expand to instruction level
       instead. *)
    List.fold_left
      (fun acc info ->
        if Config.effective base info = Config.Ignore then acc
        else Config.set_insn acc info.Static.addr Config.Single)
      cfg (Static.node_insns node)

type item = { nodes : Static.node list; weight : int; seq : int }

let search ?(options = default_options) (target : Target.t) =
  let counts = target.profile () in
  let base = options.base in
  let log = ref [] in
  let say fmt = Format.kasprintf (fun s -> log := s :: !log) fmt in
  let live_insns node =
    List.filter
      (fun info -> Config.effective base info <> Config.Ignore)
      (Static.node_insns node)
  in
  let weight_of nodes =
    List.fold_left
      (fun acc n ->
        List.fold_left (fun acc (i : Static.insn_info) -> acc + counts.(i.addr)) acc
          (live_insns n))
      0 nodes
  in
  let universe =
    Array.to_list (Static.candidates target.program)
    |> List.filter (fun info -> Config.effective base info <> Config.Ignore)
  in
  let n_candidates = List.length universe in
  let seq = ref 0 in
  let mk nodes =
    incr seq;
    { nodes; weight = weight_of nodes; seq = !seq }
  in
  let queue = ref [] in
  let push it = if it.nodes <> [] then queue := it :: !queue in
  let pop_batch n =
    let cmp a b =
      if options.prioritize then
        match compare b.weight a.weight with 0 -> compare a.seq b.seq | c -> c
      else compare a.seq b.seq
    in
    let sorted = List.sort cmp !queue in
    let rec take k = function
      | [] -> ([], [])
      | x :: rest when k > 0 ->
          let batch, leftover = take (k - 1) rest in
          (x :: batch, leftover)
      | rest -> ([], rest)
    in
    let batch, rest = take n sorted in
    queue := rest;
    batch
  in
  let cfg_of_item it = List.fold_left (fun acc n -> force_single ~base acc n) base it.nodes in
  let tested = ref 0 in
  (* An evaluation must never abort the campaign: any exception escaping
     [target.eval] (a crashing verify routine, an unclassified injected
     fault, ...) is this one configuration's failure, not the search's. *)
  let contained_eval cfg = try target.eval cfg with _ -> false in
  let eval_items items =
    tested := !tested + List.length items;
    match items with
    | [ it ] -> [ (it, contained_eval (cfg_of_item it)) ]
    | _ when options.workers <= 1 ->
        List.map (fun it -> (it, contained_eval (cfg_of_item it))) items
    | _ ->
        let doms =
          List.map
            (fun it ->
              let cfg = cfg_of_item it in
              (it, Domain.spawn (fun () -> target.eval cfg)))
            items
        in
        (* join defensively: a domain that died re-raises here, and one
           item's failure must not kill the whole wave *)
        List.map
          (fun (it, d) -> (it, try Domain.join d with _ -> false))
          doms
  in
  let passing = ref [] in
  (* Seed the queue with one configuration per module. *)
  List.iter
    (fun node -> if live_insns node <> [] then push (mk [ node ]))
    (Static.tree target.program);
  let halves xs =
    let n = List.length xs in
    let rec split k = function
      | rest when k = 0 -> ([], rest)
      | [] -> ([], [])
      | x :: rest ->
          let a, b = split (k - 1) rest in
          (x :: a, b)
    in
    split ((n + 1) / 2) xs
  in
  let descend it =
    match it.nodes with
    | [] -> ()
    | [ node ] ->
        if node_rank node < rank options.stop_at then begin
          let cs = List.filter (fun c -> live_insns c <> []) (children_of node) in
          match cs with
          | [] -> ()
          | _ when options.binary_split && List.length cs > options.split_threshold ->
              let a, b = halves cs in
              push (mk a);
              push (mk b)
          | _ -> List.iter (fun c -> push (mk [ c ])) cs
        end
    | nodes ->
        (* a failing partition splits in two again *)
        let a, b = halves nodes in
        if options.binary_split && List.length a > 1 then begin
          push (mk a);
          push (mk b)
        end
        else List.iter (fun n -> push (mk [ n ])) nodes
  in
  while !queue <> [] do
    let batch = pop_batch (max 1 options.workers) in
    let results = eval_items batch in
    List.iter
      (fun (it, pass) ->
        let names = String.concat " + " (List.map Static.node_name it.nodes) in
        if pass then begin
          say "PASS %s (weight %d)" names it.weight;
          passing := it.nodes @ !passing
        end
        else begin
          say "FAIL %s (weight %d)" names it.weight;
          descend it
        end)
      results
  done;
  let passing_nodes = List.rev !passing in
  let final = List.fold_left (fun acc n -> force_single ~base acc n) base passing_nodes in
  incr tested;
  let final_pass = contained_eval final in
  say "FINAL union of %d passing structures: %s" (List.length passing_nodes)
    (if final_pass then "pass" else "fail");
  let final, final_pass =
    if final_pass || not options.second_phase then (final, final_pass)
    else begin
      (* Greedy composition: add individually-passing structures heaviest
         first, keeping only those that compose into a passing whole. *)
      let units =
        List.sort
          (fun a b -> compare (weight_of [ b ]) (weight_of [ a ]))
          passing_nodes
      in
      let acc = ref base in
      List.iter
        (fun node ->
          let trial = force_single ~base !acc node in
          incr tested;
          if contained_eval trial then begin
            acc := trial;
            say "COMPOSE keep %s" (Static.node_name node)
          end
          else say "COMPOSE drop %s" (Static.node_name node))
        units;
      (!acc, true)
    end
  in
  let static_replaced =
    List.length (List.filter (fun info -> Config.effective final info = Config.Single) universe)
  in
  (* the dynamic denominator counts every FP candidate execution, including
     Ignore-flagged instructions: ignored work is floating-point work that
     was not replaced *)
  let dyn_num, dyn_den =
    Array.fold_left
      (fun (num, den) (info : Static.insn_info) ->
        let c = counts.(info.addr) in
        ( (if Config.effective final info = Config.Single then num + c else num),
          den + c ))
      (0, 0)
      (Static.candidates target.program)
  in
  {
    final;
    final_pass;
    candidates = n_candidates;
    tested = !tested;
    static_replaced;
    static_pct = Stats.percent (float_of_int static_replaced) (float_of_int n_candidates);
    dynamic_pct = Stats.percent (float_of_int dyn_num) (float_of_int dyn_den);
    passing_nodes;
    log = List.rev !log;
  }
