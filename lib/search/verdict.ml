type verdict =
  | Pass
  | Fail_verify
  | Trapped of int * string
  | Step_timeout
  | Crashed of string
  | Pruned of string

let verdict_label = function
  | Pass -> "pass"
  | Fail_verify -> "fail"
  | Trapped _ -> "trap"
  | Step_timeout -> "timeout"
  | Crashed _ -> "crash"
  | Pruned _ -> "pruned"

(* percent-escape the characters the journal format reserves *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '%' | '|' | ':' | '\t' | '\n' | '\r' ->
          Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else if s.[i] = '%' then
      if i + 2 >= n then None
      else
        match (hex s.[i + 1], hex s.[i + 2]) with
        | Some h, Some l ->
            Buffer.add_char buf (Char.chr ((h * 16) + l));
            go (i + 3)
        | _ -> None
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let verdict_to_string = function
  | Pass -> "pass"
  | Fail_verify -> "fail"
  | Trapped (addr, reason) -> Printf.sprintf "trap:0x%06x:%s" addr (escape reason)
  | Step_timeout -> "timeout"
  | Crashed msg -> "crash:" ^ escape msg
  | Pruned reason -> "pruned:" ^ escape reason

let verdict_of_string s =
  let payload_after prefix =
    let p = String.length prefix in
    if String.length s >= p && String.sub s 0 p = prefix then
      Some (String.sub s p (String.length s - p))
    else None
  in
  match s with
  | "pass" -> Some Pass
  | "fail" -> Some Fail_verify
  | "timeout" -> Some Step_timeout
  | _ -> (
      match payload_after "trap:" with
      | Some rest -> (
          match String.index_opt rest ':' with
          | None -> None
          | Some i -> (
              let addr = String.sub rest 0 i in
              let reason = String.sub rest (i + 1) (String.length rest - i - 1) in
              match (int_of_string_opt addr, unescape reason) with
              | Some a, Some r -> Some (Trapped (a, r))
              | _ -> None))
      | None -> (
          match payload_after "crash:" with
          | Some msg -> Option.map (fun m -> Crashed m) (unescape msg)
          | None -> (
              match payload_after "pruned:" with
              | Some reason -> Option.map (fun r -> Pruned r) (unescape reason)
              | None -> None)))

let pp_verdict ppf = function
  | Pass -> Format.pp_print_string ppf "pass"
  | Fail_verify -> Format.pp_print_string ppf "fail-verify"
  | Trapped (addr, reason) -> Format.fprintf ppf "trapped@0x%06x (%s)" addr reason
  | Step_timeout -> Format.pp_print_string ppf "step-timeout"
  | Crashed msg -> Format.fprintf ppf "crashed (%s)" msg
  | Pruned reason -> Format.fprintf ppf "pruned (%s)" reason

let is_flaky = function
  | Trapped _ | Step_timeout | Crashed _ -> true
  | Pass | Fail_verify | Pruned _ -> false

let classify_exn = function
  | Vm.Trap (addr, reason) -> Trapped (addr, reason)
  | Vm.Limit _ -> Step_timeout
  | Vm.Deadline _ -> Step_timeout
  | Stack_overflow -> Crashed "stack overflow"
  | Out_of_memory -> Crashed "out of memory"
  | e -> Crashed (Printexc.to_string e)

let classify f =
  match f () with
  | true -> Pass
  | false -> Fail_verify
  | exception e -> classify_exn e
