let header = "# craft-journal v1"

type sync_policy =
  | Flush_only  (* per-record flush; fsync left to the OS (and {!sync}) *)
  | Fsync_each  (* per-record flush + fsync: power loss can only truncate *)

type t = {
  path : string;
  program : Ir.program;
  memo : (string, Harness.verdict) Hashtbl.t;
  oc : out_channel;
  policy : sync_policy;
  mutable seq : int;  (* tests-so-far column of the next record *)
  mutable replayed : int;
  mutable hits : int;
  mutable fresh : int;
  lock : Mutex.t;
}

(* One record per line; anything that does not parse — malformed, or the
   truncated half-record a crash leaves at the end of the file — is
   silently dropped. *)
let parse_line line =
  let line = String.trim line in
  if line = "" || (String.length line > 0 && line.[0] = '#') then None
  else begin
    let left =
      match String.index_opt line '|' with
      | Some i -> String.trim (String.sub line 0 i)
      | None -> line
    in
    match String.split_on_char ' ' left |> List.filter (fun s -> s <> "") with
    | [ digest; verdict; seq ] when String.length digest = 16 -> (
        match (Harness.verdict_of_string verdict, int_of_string_opt seq) with
        | Some v, Some _ -> Some (digest, v)
        | _ -> None)
    | _ -> None
  end

let read_records path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let records = ref [] in
    (try
       while true do
         match parse_line (input_line ic) with
         | Some r -> records := r :: !records
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !records
  end

let load ~path (_ : Ir.program) = read_records path
let scan ~path = read_records path

(* ----------------------------------------------------------- verification *)

type verify_report = {
  records : int;
  distinct : int;
  duplicates : (string * int) list;
  verdicts : (string * int) list;
  bad : int;
  trailing_bad : int;
  torn : bool;
}

let verify ~path =
  if not (Sys.file_exists path) then Error (path ^ ": no such journal")
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    let by_digest = Hashtbl.create 256 in
    let by_verdict = Hashtbl.create 8 in
    let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
    let records = ref 0 and bad = ref 0 and trailing = ref 0 in
    List.iter
      (fun line ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then ()
        else
          match parse_line line with
          | Some (digest, v) ->
              incr records;
              bump by_digest digest;
              bump by_verdict (Harness.verdict_label v);
              trailing := 0
          | None ->
              incr bad;
              incr trailing)
      (List.rev !lines);
    let sorted tbl = Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [] |> List.sort compare in
    Ok
      {
        records = !records;
        distinct = Hashtbl.length by_digest;
        duplicates = List.filter (fun (_, n) -> n > 1) (sorted by_digest);
        verdicts = sorted by_verdict;
        bad = !bad;
        trailing_bad = !trailing;
        (* a bad line with good records after it cannot be crash truncation:
           something tore (or scribbled on) the middle of the file *)
        torn = !bad > !trailing;
      }
  end

let create ?(resume = false) ?(sync = Flush_only) ~path program =
  let records = if resume then read_records path else [] in
  let memo = Hashtbl.create 256 in
  List.iter (fun (d, v) -> if not (Hashtbl.mem memo d) then Hashtbl.add memo d v) records;
  let fresh_file = (not resume) || not (Sys.file_exists path) in
  let flags =
    if resume then [ Open_wronly; Open_append; Open_creat ]
    else [ Open_wronly; Open_trunc; Open_creat ]
  in
  let oc = open_out_gen flags 0o644 path in
  if fresh_file then begin
    output_string oc (header ^ "\n");
    flush oc
  end;
  {
    path;
    program;
    memo;
    oc;
    policy = sync;
    seq = Hashtbl.length memo;
    replayed = Hashtbl.length memo;
    hits = 0;
    fresh = 0;
    lock = Mutex.create ();
  }

let fsync_oc oc =
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let sync t =
  Mutex.protect t.lock (fun () ->
      flush t.oc;
      fsync_oc t.oc)

let close t =
  Mutex.protect t.lock (fun () ->
      flush t.oc;
      fsync_oc t.oc;
      close_out t.oc)
let path t = t.path
let entries t = Mutex.protect t.lock (fun () -> Hashtbl.length t.memo)
let replayed t = t.replayed
let hits t = Mutex.protect t.lock (fun () -> t.hits)
let fresh t = Mutex.protect t.lock (fun () -> t.fresh)

let lookup_key t key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.memo key with
      | Some v ->
          t.hits <- t.hits + 1;
          Some v
      | None -> None)

let record_key t key ~summary verdict =
  Mutex.protect t.lock (fun () ->
      if not (Hashtbl.mem t.memo key) then begin
        Hashtbl.add t.memo key verdict;
        t.seq <- t.seq + 1;
        t.fresh <- t.fresh + 1;
        Printf.fprintf t.oc "%s %s %d | %s\n" key
          (Harness.verdict_to_string verdict)
          t.seq summary;
        (* flush per record: a crash loses at most the line being written *)
        flush t.oc;
        (* under [Fsync_each], neither can a power loss: the record is on
           disk before the verdict is acted on, so the file can only ever
           end in a truncated line — never a torn earlier one *)
        match t.policy with Fsync_each -> fsync_oc t.oc | Flush_only -> ()
      end)

let summary_of cfg =
  let s = Config.summarize cfg in
  if String.length s <= 160 then s else String.sub s 0 157 ^ "..."

let lookup t cfg = lookup_key t (Config.digest t.program cfg)

let record t cfg verdict =
  record_key t (Config.digest t.program cfg) ~summary:(summary_of cfg) verdict

let wrap t f cfg =
  let key = Config.digest t.program cfg in
  match lookup_key t key with
  | Some v -> v
  | None ->
      let v = f cfg in
      record_key t key ~summary:(summary_of cfg) v;
      v

let wrap_target t ~harness (target : Bfs.Target.t) =
  let eval cfg =
    match wrap t (Harness.eval harness) cfg with
    | Harness.Pass -> true
    | _ -> false
  in
  { target with Bfs.Target.eval }
