type options = {
  workers : int;
  deadline : float option;
  grace : float;
  quarantine_after : int;
  max_worker_loss : int;
  queue_cap : int;
  poll_interval : float;
}

let default_options =
  {
    workers = 2;
    deadline = None;
    grace = 0.5;
    quarantine_after = 2;
    max_worker_loss = 8;
    queue_cap = 64;
    poll_interval = 0.002;
  }

type stats = {
  tasks : int;
  completed : int;
  deadline_misses : int;
  abandoned : int;
  worker_deaths : int;
  restarts : int;
  quarantined : int;
  inline_runs : int;
  degraded : bool;
}

type task = {
  id : int;
  thunk : unit -> Verdict.verdict;
  mutable deaths : int;
}

type slot = {
  mutable dom : unit Domain.t option;
  (* [busy]/[started] guarded by the pool lock; [cancel]/[beats] are the
     lock-free channel between the monitor and the worker's VM watchdog *)
  mutable busy : task option;
  mutable started : float;
  cancel : bool Atomic.t;
  beats : int Atomic.t;
  mutable zombie : bool;  (* abandoned mid-hang; never joined *)
  mutable retired : bool;  (* loop exited; safe to drop *)
}

type t = {
  opts : options;
  echo : string -> unit;
  lock : Mutex.t;
  cond_work : Condition.t;  (* workers: the queue may have work *)
  cond_done : Condition.t;  (* submitters: a task resolved / pool state changed *)
  work : task Queue.t;
  results : (int, Verdict.verdict) Hashtbl.t;
  mutable slots : slot list;
  mutable next_id : int;
  mutable alive : bool;
  mutable monitor : unit Domain.t option;
  mutable events : string list;  (* newest first; drained by [drain_events] *)
  (* mutable stats *)
  mutable n_tasks : int;
  mutable n_completed : int;
  mutable n_deadline_misses : int;
  mutable n_abandoned : int;
  mutable n_worker_deaths : int;
  mutable n_restarts : int;
  mutable n_quarantined : int;
  mutable n_inline : int;
  mutable is_degraded : bool;
}

let note t fmt =
  Format.kasprintf
    (fun s ->
      t.events <- s :: t.events;
      t.echo s)
    fmt

let losses t = t.n_worker_deaths + t.n_abandoned

(* ---------------------------------------------------------------- workers *)

(* Resolve [task] with [v] unless something (a zombie's late completion racing
   its abandonment) already did. Lock held. *)
let deliver t task v =
  if not (Hashtbl.mem t.results task.id) then begin
    Hashtbl.replace t.results task.id v;
    t.n_completed <- t.n_completed + 1;
    Condition.broadcast t.cond_done
  end

let degrade t why =
  if not t.is_degraded then begin
    t.is_degraded <- true;
    note t "pool: degrading to serial evaluation (%s)" why;
    (* wake submitters so they drain the queue inline *)
    Condition.broadcast t.cond_done
  end

let run_task t slot task =
  (* The watchdog heartbeats and polls the cancel flag every 256 executed
     instructions — cheap enough to leave on every supervised VM, reactive
     enough that a cooperative cancellation lands within microseconds. *)
  let tick = ref 0 in
  let watchdog _vm _addr =
    incr tick;
    if !tick land 255 = 0 then begin
      Atomic.incr slot.beats;
      if Atomic.get slot.cancel then
        raise (Vm.Deadline (Option.value ~default:0.0 t.opts.deadline))
    end
  in
  Vm.with_watchdog watchdog task.thunk

let rec spawn_worker t ~restart =
  let slot =
    {
      dom = None;
      busy = None;
      started = 0.0;
      cancel = Atomic.make false;
      beats = Atomic.make 0;
      zombie = false;
      retired = false;
    }
  in
  match Domain.spawn (fun () -> worker_loop t slot) with
  | dom ->
      slot.dom <- Some dom;
      t.slots <- slot :: t.slots;
      if restart then t.n_restarts <- t.n_restarts + 1
  | exception e ->
      degrade t (Printf.sprintf "cannot spawn a worker domain: %s" (Printexc.to_string e))

and replace_worker t =
  if losses t > t.opts.max_worker_loss then
    degrade t
      (Printf.sprintf "lost %d workers (budget %d)" (losses t) t.opts.max_worker_loss)
  else spawn_worker t ~restart:true

and worker_loop t slot =
  Mutex.lock t.lock;
  let rec next () =
    if (not t.alive) || slot.zombie then None
    else
      match Queue.take_opt t.work with
      | Some task -> Some task
      | None ->
          Condition.wait t.cond_work t.lock;
          next ()
  in
  match next () with
  | None ->
      slot.retired <- true;
      Mutex.unlock t.lock
  | Some task ->
      slot.busy <- Some task;
      slot.started <- Unix.gettimeofday ();
      Atomic.set slot.cancel false;
      (* a task freed a queue slot: submitters blocked on [queue_cap] *)
      Condition.broadcast t.cond_done;
      Mutex.unlock t.lock;
      let outcome = try Ok (run_task t slot task) with e -> Error e in
      Mutex.lock t.lock;
      slot.busy <- None;
      if slot.zombie then begin
        (* the monitor gave up on us while the task was running; the task was
           already resolved as a deadline miss — drop our late result *)
        slot.retired <- true;
        Mutex.unlock t.lock
      end
      else begin
        (match outcome with
        | Ok v -> deliver t task v
        | Error (Vm.Deadline _) ->
            (* the thunk was not classify-wrapped; the cancellation is still
               just this task's timeout, not a worker death *)
            deliver t task Verdict.Step_timeout
        | Error e ->
            (* anything escaping the evaluation stack is worker-fatal: the
               in-VM analogue of a worker process segfaulting. Restart the
               worker; requeue the task until it exhausts its quarantine
               budget. *)
            t.n_worker_deaths <- t.n_worker_deaths + 1;
            task.deaths <- task.deaths + 1;
            if task.deaths >= t.opts.quarantine_after then begin
              t.n_quarantined <- t.n_quarantined + 1;
              let msg =
                Printf.sprintf "quarantined after %d worker death(s): %s" task.deaths
                  (Printexc.to_string e)
              in
              note t "pool: task %d %s" task.id msg;
              deliver t task (Verdict.Crashed msg)
            end
            else begin
              note t "pool: worker died on task %d (%s); restarting" task.id
                (Printexc.to_string e);
              Queue.push task t.work;
              Condition.signal t.cond_work
            end;
            slot.retired <- true;
            replace_worker t);
        match outcome with
        | Error (Vm.Deadline _) | Ok _ ->
            Mutex.unlock t.lock;
            worker_loop t slot
        | Error _ -> Mutex.unlock t.lock
      end

(* ---------------------------------------------------------------- monitor *)

let monitor_loop t =
  let rec loop () =
    Unix.sleepf t.opts.poll_interval;
    Mutex.lock t.lock;
    if not t.alive then Mutex.unlock t.lock
    else begin
      (match t.opts.deadline with
      | None -> ()
      | Some d ->
          let now = Unix.gettimeofday () in
          List.iter
            (fun slot ->
              match slot.busy with
              | Some task when not slot.zombie -> (
                  let elapsed = now -. slot.started in
                  if elapsed > d && not (Atomic.get slot.cancel) then begin
                    (* first tier: cooperative cancel through the VM watchdog *)
                    t.n_deadline_misses <- t.n_deadline_misses + 1;
                    note t "pool: task %d exceeded its %.3fs deadline; cancelling" task.id d;
                    Atomic.set slot.cancel true
                  end
                  else if Atomic.get slot.cancel && elapsed > d +. t.opts.grace then begin
                    (* second tier: the worker ignored the cancel (hung outside
                       the VM, where the watchdog cannot run). OCaml domains
                       cannot be killed, so abandon it and staff a
                       replacement. *)
                    slot.zombie <- true;
                    t.n_abandoned <- t.n_abandoned + 1;
                    note t
                      "pool: task %d unresponsive %.3fs after cancellation; abandoning worker"
                      task.id t.opts.grace;
                    deliver t task Verdict.Step_timeout;
                    replace_worker t
                  end)
              | _ -> ())
            t.slots);
      Mutex.unlock t.lock;
      loop ()
    end
  in
  loop ()

(* ---------------------------------------------------------------- lifecycle *)

let create ?(options = default_options) ?(log = ignore) () =
  let t =
    {
      opts =
        {
          options with
          workers = max 1 options.workers;
          grace = Float.max 0.01 options.grace;
          quarantine_after = max 1 options.quarantine_after;
          queue_cap = max 1 options.queue_cap;
          poll_interval = Float.max 0.0005 options.poll_interval;
        };
      echo = log;
      lock = Mutex.create ();
      cond_work = Condition.create ();
      cond_done = Condition.create ();
      work = Queue.create ();
      results = Hashtbl.create 64;
      slots = [];
      next_id = 0;
      alive = true;
      monitor = None;
      events = [];
      n_tasks = 0;
      n_completed = 0;
      n_deadline_misses = 0;
      n_abandoned = 0;
      n_worker_deaths = 0;
      n_restarts = 0;
      n_quarantined = 0;
      n_inline = 0;
      is_degraded = false;
    }
  in
  Mutex.protect t.lock (fun () ->
      for _ = 1 to t.opts.workers do
        if not t.is_degraded then spawn_worker t ~restart:false
      done;
      if t.opts.deadline <> None && not t.is_degraded then
        match Domain.spawn (fun () -> monitor_loop t) with
        | dom -> t.monitor <- Some dom
        | exception e ->
            degrade t
              (Printf.sprintf "cannot spawn the monitor domain: %s" (Printexc.to_string e)));
  t

let shutdown t =
  let workers =
    Mutex.protect t.lock (fun () ->
        if not t.alive then []
        else begin
          t.alive <- false;
          Condition.broadcast t.cond_work;
          Condition.broadcast t.cond_done;
          let joinable =
            List.filter_map (fun s -> if s.zombie then None else s.dom) t.slots
          in
          let m = t.monitor in
          t.monitor <- None;
          (* zombies hold genuinely hung tasks and can never be joined; they
             are intentionally leaked and die with the process *)
          match m with Some d -> d :: joinable | None -> joinable
        end)
  in
  List.iter (fun d -> try Domain.join d with _ -> ()) workers

(* ---------------------------------------------------------------- running *)

let contained thunk =
  try thunk () with
  | Vm.Deadline _ -> Verdict.Step_timeout
  | e -> Verdict.Crashed (Printexc.to_string e)

let run t thunks =
  match thunks with
  | [] -> []
  | _ ->
      Mutex.lock t.lock;
      if (not t.alive) || t.is_degraded then begin
        (* serial fallback: no supervision, but classify-contained and alive *)
        t.n_tasks <- t.n_tasks + List.length thunks;
        t.n_inline <- t.n_inline + List.length thunks;
        t.n_completed <- t.n_completed + List.length thunks;
        Mutex.unlock t.lock;
        List.map contained thunks
      end
      else begin
        let tasks =
          List.map
            (fun thunk ->
              let id = t.next_id in
              t.next_id <- t.next_id + 1;
              { id; thunk; deaths = 0 })
            thunks
        in
        t.n_tasks <- t.n_tasks + List.length tasks;
        (* bounded submission: never hold more than [queue_cap] undispatched *)
        List.iter
          (fun task ->
            while
              t.alive && (not t.is_degraded) && Queue.length t.work >= t.opts.queue_cap
            do
              Condition.wait t.cond_done t.lock
            done;
            Queue.push task t.work;
            Condition.signal t.cond_work)
          tasks;
        let unresolved () =
          List.filter (fun task -> not (Hashtbl.mem t.results task.id)) tasks
        in
        let take_queued pending =
          (* pull one of our still-queued tasks for inline execution *)
          let n = Queue.length t.work in
          let found = ref None in
          for _ = 1 to n do
            let task = Queue.pop t.work in
            if !found = None && List.memq task pending then found := Some task
            else Queue.push task t.work
          done;
          !found
        in
        let rec wait_all () =
          match unresolved () with
          | [] -> ()
          | pending ->
              if t.is_degraded || not t.alive then begin
                match take_queued pending with
                | Some task ->
                    Mutex.unlock t.lock;
                    let v = contained task.thunk in
                    Mutex.lock t.lock;
                    t.n_inline <- t.n_inline + 1;
                    deliver t task v;
                    wait_all ()
                | None ->
                    (* in flight on a surviving worker; wait for its verdict *)
                    Condition.wait t.cond_done t.lock;
                    wait_all ()
              end
              else begin
                Condition.wait t.cond_done t.lock;
                wait_all ()
              end
        in
        wait_all ();
        let out =
          List.map
            (fun task ->
              let v = Hashtbl.find t.results task.id in
              Hashtbl.remove t.results task.id;
              v)
            tasks
        in
        Mutex.unlock t.lock;
        out
      end

let run_one t thunk = match run t [ thunk ] with [ v ] -> v | _ -> assert false

(* ---------------------------------------------------------------- observers *)

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        tasks = t.n_tasks;
        completed = t.n_completed;
        deadline_misses = t.n_deadline_misses;
        abandoned = t.n_abandoned;
        worker_deaths = t.n_worker_deaths;
        restarts = t.n_restarts;
        quarantined = t.n_quarantined;
        inline_runs = t.n_inline;
        degraded = t.is_degraded;
      })

let degraded t = Mutex.protect t.lock (fun () -> t.is_degraded)

let drain_events t =
  Mutex.protect t.lock (fun () ->
      let es = List.rev t.events in
      t.events <- [];
      es)

let report t =
  let s = stats t in
  Printf.sprintf
    "pool: %d worker(s), %d task(s) (%d deadline miss(es), %d abandoned, %d worker \
     death(s), %d restart(s), %d quarantined)%s"
    t.opts.workers s.tasks s.deadline_misses s.abandoned s.worker_deaths s.restarts
    s.quarantined
    (if s.degraded then Printf.sprintf " — DEGRADED to serial (%d inline)" s.inline_runs
     else "")

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>tasks dispatched: %d (completed %d)@,deadline misses: %d (abandoned %d)@,\
     worker deaths: %d (restarts %d)@,quarantined configurations: %d@,degraded: %b%s@]"
    s.tasks s.completed s.deadline_misses s.abandoned s.worker_deaths s.restarts
    s.quarantined s.degraded
    (if s.inline_runs > 0 then Printf.sprintf " (%d inline)" s.inline_runs else "")
