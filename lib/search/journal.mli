(** Append-only evaluation journal: crash-safe checkpoint/resume for the
    autosearch.

    Every classified verdict is appended as one text record and flushed, so
    an interrupted NAS-scale campaign (SIGKILL, OOM, power) loses at most
    the record being written. Re-opening with [resume:true] replays the
    journal into an in-memory memo table; evaluations whose configuration
    digest is already journaled are served from the memo without running
    the program, and the search continues where it stopped instead of
    restarting.

    Record format (text, one record per line, consistent with the paper's
    Fig. 3 configuration tokens in the summary field):

    {v
    # craft-journal v1 <program-name-or-blank>
    <digest16> <verdict-token> <tests-so-far> | <Fig.3-style config summary>
    v}

    e.g. [a91f...c2 trap:0x00001f:injected%20fault 17 | s MODULE: cg].
    Parsing is tolerant: a malformed or truncated line (typically the last
    one, half-written at the moment of the crash) is dropped, never fatal.

    Keys are {!Config.digest}s of {e effective} flags, so structurally
    different configurations with identical per-instruction decisions share
    one journal entry. *)

type t

type sync_policy =
  | Flush_only
      (** flush each record to the OS; physical write ordering is the
          kernel's business (call {!sync} at wave boundaries for more) *)
  | Fsync_each
      (** flush {e and} [fsync(2)] each record: even a power loss can only
          truncate the file at the record being written, never tear an
          earlier one *)

val create : ?resume:bool -> ?sync:sync_policy -> path:string -> Ir.program -> t
(** Open [path] for appending, creating it if missing. With
    [resume = true] (default [false]) existing records are replayed into
    the memo first; without it the file is truncated and the campaign
    starts clean. [sync] (default {!Flush_only}) picks the durability
    policy for each appended record. *)

val sync : t -> unit
(** Flush and [fsync(2)] the journal now — the per-wave durability point
    for callers running under {!Flush_only}. *)

val close : t -> unit
(** Flush, fsync and close. *)

val path : t -> string

val entries : t -> int
(** Records in the memo (replayed + freshly written). *)

val replayed : t -> int
(** Records loaded when the journal was opened with [resume]. *)

val hits : t -> int
(** Lookups served from the memo (evaluations skipped). *)

val fresh : t -> int
(** Verdicts actually evaluated and appended this session. *)

val lookup : t -> Config.t -> Harness.verdict option

val record : t -> Config.t -> Harness.verdict -> unit
(** Memoize and append-flush one verdict. A digest already present is not
    re-appended. *)

val wrap : t -> (Config.t -> Harness.verdict) -> Config.t -> Harness.verdict
(** Memoized view of a classified evaluator: journal hit, or evaluate then
    {!record}. *)

val wrap_target : t -> harness:Harness.t -> Bfs.Target.t -> Bfs.Target.t
(** The full resilient evaluation stack as a drop-in target: [eval]
    consults the journal, falls back to {!Harness.eval} (containment +
    retries), records the verdict, and folds to the search's boolean
    view. *)

val load : path:string -> Ir.program -> (string * Harness.verdict) list
(** Tolerantly parse a journal file into [(digest, verdict)] pairs, oldest
    first, without opening it for writing. *)

val scan : path:string -> (string * Harness.verdict) list
(** {!load} without a program: the records carry their own configuration
    digests, so read-only inspection ([craft journal]) needs no binary. *)

type verify_report = {
  records : int;  (** well-formed records *)
  distinct : int;  (** distinct configuration digests *)
  duplicates : (string * int) list;
      (** digests appearing more than once, with their occurrence counts —
          a healthy journal has none ({!record} refuses duplicates) *)
  verdicts : (string * int) list;  (** verdict label -> record count *)
  bad : int;  (** unparseable non-comment lines *)
  trailing_bad : int;
      (** the contiguous unparseable suffix: the half-record an interrupted
          writer legitimately leaves behind *)
  torn : bool;
      (** an unparseable line {e followed by} well-formed records — not
          crash truncation but mid-file corruption; [craft journal --verify]
          exits non-zero on it *)
}

val verify : path:string -> (verify_report, string) result
(** Integrity scan for [craft journal FILE --verify]. [Error] only when
    the file cannot be read at all; structural damage is reported in the
    record, not raised. *)
