(** Alternative search strategies (the paper's §2.5, last future item:
    "streamline the search algorithm ... adapting more conventional search
    heuristics rather than doing a simple breadth-first search").

    [delta_debug] is a ddmax-style strategy: start from the everything-
    single configuration and repeatedly try to {e keep out} chunks of
    instructions (coarse chunks first, halving granularity on failure)
    until a passing configuration emerges; then grow it greedily. Compared
    to the structural BFS it ignores program structure entirely and works
    on the flat instruction list — often fewer tests when most of the
    program is replaceable, more when failures are scattered.

    Both strategies contain their evaluations: an exception escaping
    [target.eval] counts as that configuration failing, never as the
    search aborting. Wrap the target with {!Harness.wrap_target} (and
    {!Journal.wrap_target}) for classified verdicts, retries and
    checkpoint/resume. Pass [?pool] to additionally put every evaluation
    under {!Pool} supervision (wall-clock deadline, hung-evaluation
    abandonment) — the strategies stay sequential, but a hung or dying
    evaluation can no longer freeze them. The caller keeps pool
    ownership.

    The execution backend rides inside the target: a target built with
    [backend:Compiled] (the {!Bfs.Target.make} default) evaluates every
    strategy configuration through {!Compile.run} against the campaign's
    shared code cache; nothing here needs to know which engine runs. *)

type result = {
  final : Config.t;
  final_pass : bool;
  tested : int;
  static_replaced : int;
  candidates : int;
}

val delta_debug :
  ?pool:Pool.t ->
  ?base:Config.t ->
  ?max_tests:int ->
  ?formats:Formats.t list ->
  Bfs.Target.t ->
  result
(** [max_tests] (default 2000) bounds the budget; the best passing
    configuration found so far is returned when it is exhausted.
    [formats] is the precision-format menu (default [[Formats.single]],
    the pre-lattice behavior): the structural phase runs at the widest
    reduced format, then each kept instruction is lowered in place,
    cheapest format first, while the whole configuration keeps passing
    (still within [max_tests]). *)

val greedy_grow :
  ?pool:Pool.t ->
  ?base:Config.t ->
  ?max_tests:int ->
  ?formats:Formats.t list ->
  Bfs.Target.t ->
  result
(** A simple hill-climbing baseline: instructions are considered one at a
    time in descending profile weight; each is kept single if the
    configuration so far still passes. Always returns a passing
    configuration; costs exactly one test per candidate, plus the same
    per-instruction lattice descent as {!delta_debug} when [formats]
    offers cheaper formats. *)
