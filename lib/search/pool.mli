(** The supervised evaluation worker pool.

    The autosearch dispatches hundreds of independent configuration
    evaluations. {!Bfs} used to spawn one domain per wave item and block in
    [Domain.join]: a genuinely non-terminating evaluator (hung {e outside}
    the VM step budget) or a dying worker froze the campaign forever, and
    each wave paid the full domain spawn cost. This pool replaces that with
    [workers] long-lived domains pulling from a bounded task queue, under a
    monitor domain that enforces a per-task {e wall-clock} deadline on top
    of the VM's step budget:

    - {e heartbeats} are driven through the per-instruction VM watchdog
      ({!Vm.with_watchdog}): the worker publishes progress and polls a
      cancellation flag every 256 executed instructions;
    - a {e deadline miss} is first cancelled cooperatively (the watchdog
      raises {!Vm.Deadline}, classified as a timeout). A worker that stays
      unresponsive for [grace] more seconds is hung outside the VM — OCaml
      domains cannot be killed, so it is {e abandoned} (leaked, marked
      zombie), the task resolves as {!Verdict.Step_timeout}, and a
      replacement worker is staffed;
    - an exception {e escaping} a task thunk is worker-fatal (the in-VM
      analogue of an evaluation segfaulting the worker process): the worker
      is restarted and the task is requeued — until the same task has
      killed [quarantine_after] workers, at which point it is quarantined
      with a {!Verdict.Crashed} verdict instead of being retried forever;
    - if domains cannot be spawned, or total worker losses exceed
      [max_worker_loss], the pool {e degrades} to serial inline execution
      (still exception-contained, no supervision) with a logged warning —
      the campaign always finishes.

    Well-behaved stacks (thunks wrapped in {!Verdict.classify} or
    {!Harness.eval}) are total, so worker deaths only arise from genuinely
    abnormal failures. Results are returned in submission order; a pool is
    meant to be created once per campaign and reused across waves (and by
    {!Strategies}). *)

type options = {
  workers : int;  (** long-lived worker domains (clamped to ≥ 1) *)
  deadline : float option;
      (** per-task wall-clock deadline in seconds; [None] disables the
          monitor entirely *)
  grace : float;
      (** extra seconds after a cooperative cancel before the worker is
          declared hung and abandoned (default 0.5) *)
  quarantine_after : int;
      (** worker deaths a single task may cause before it is quarantined
          (default 2) *)
  max_worker_loss : int;
      (** total deaths + abandonments before the pool degrades to serial
          (default 8) *)
  queue_cap : int;  (** bounded queue: max undispatched tasks (default 64) *)
  poll_interval : float;  (** monitor polling period in seconds *)
}

val default_options : options

type stats = {
  tasks : int;
  completed : int;
  deadline_misses : int;  (** tasks whose wall-clock deadline elapsed *)
  abandoned : int;  (** deadline misses that also ignored the cancel *)
  worker_deaths : int;
  restarts : int;  (** replacement workers staffed *)
  quarantined : int;
  inline_runs : int;  (** tasks executed serially after degradation *)
  degraded : bool;
}

type t

val create : ?options:options -> ?log:(string -> unit) -> unit -> t
(** Spawn the workers (and the monitor, when a deadline is set). [log]
    receives supervision events as they happen (default: silent); the same
    events are always buffered for {!drain_events}. *)

val run : t -> (unit -> Verdict.verdict) list -> Verdict.verdict list
(** Dispatch one wave of evaluation thunks and block until every one has a
    verdict — by evaluation, deadline, quarantine, or degraded inline
    execution. Results are in submission order. Never raises from a task. *)

val run_one : t -> (unit -> Verdict.verdict) -> Verdict.verdict
(** [run] for a single task — how {!Strategies} puts its sequential
    evaluations under supervision. *)

val shutdown : t -> unit
(** Stop accepting work, join every live worker and the monitor. Abandoned
    (zombie) workers are intentionally leaked — they hold genuinely hung
    tasks and die with the process. Idempotent. *)

val stats : t -> stats
val degraded : t -> bool

val drain_events : t -> string list
(** Supervision events (oldest first) since the last drain — how {!Bfs}
    folds pool warnings into the search narration. *)

val report : t -> string
(** One-line supervisor summary for end-of-run reports. *)

val pp_stats : Format.formatter -> stats -> unit
