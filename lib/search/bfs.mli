(** The automatic breadth-first configuration search (paper §2.2).

    The search walks the program structure tree breadth-first, testing
    whether whole modules can be replaced by single precision, descending
    into functions, basic blocks and finally individual instructions when a
    coarser replacement fails the user-provided verification routine.

    Both of the paper's optimizations are implemented and can be toggled
    for ablation:

    - {e binary splitting}: when an aggregate with many children fails, the
      children are first retried as two half-partitions instead of
      individually;
    - {e profiling prioritization}: a native profiling run weights every
      work item by the dynamic execution count of the instructions it
      covers, and the work queue is processed heaviest-first.

    Configuration evaluations are independent full program runs. With
    [workers > 1] they are dispatched in deterministic waves to a
    supervised {!Pool} of long-lived worker domains — either one the
    caller supplies (shared with {!Strategies}, carrying a wall-clock
    deadline) or a transient one staffed for this campaign. Every
    evaluation is classified through {!Verdict.classify}: a trap, step
    blowout, out-of-memory or stack overflow is that one item's TRAP /
    TIMEOUT / CRASH verdict in the log, never the campaign's death.

    With [checkpoint] set, the live search state (work queue, passing
    set, test counter, caller counters, narration log) is atomically
    snapshotted at wave boundaries; a later run with [resume] restarts
    mid-level from the snapshot instead of replaying the whole campaign
    through the {!Journal}. *)

exception Aborted
(** The one exception evaluation containment re-raises: raising it from an
    evaluator simulates the campaign being killed (tests, operator
    interrupt). Everything else is classified per-item. *)

module Target : sig
  type t = {
    program : Ir.program;  (** the original, all-double program *)
    eval : Config.t -> bool;
        (** patch + run + verify one configuration. Must be thread-safe
            (evaluations run on domains) and must treat VM traps as
            failure. Use {!make} unless custom behaviour is needed. *)
    raw_eval : Config.t -> bool;
        (** same evaluation, but failures {e raise} ({!Vm.Trap},
            {!Vm.Limit}, or anything a broken evaluator throws) instead of
            folding into [false]. This is what {!Harness.make} classifies
            into verdicts; [eval] is the legacy contained view of it. *)
    profile : unit -> int array;
        (** address-indexed dynamic execution counts from one native run *)
    code_cache : Compile.cache option;
        (** the compiled-block cache shared by every evaluation of this
            target, when it was built with [backend:Compiled] (the
            default); [None] for pure-interpreter targets. Read its
            hit/miss stats through {!Compile.stats} — {!Harness.wrap_target}
            surfaces them in the harness report. *)
  }

  val make :
    ?eval_steps:int ->
    ?faults:Faults.t ->
    ?backend:Compile.backend ->
    ?cache:Compile.cache ->
    Ir.program ->
    setup:(Vm.t -> unit) ->
    output:(Vm.t -> float array) ->
    verify:(float array -> bool) ->
    t
  (** Standard target: [eval cfg] patches the program with [cfg], runs it
      checked with [setup] applied, reads [output] (coerced) and applies
      [verify]; any VM trap or step-limit blowout counts as verification
      failure. [eval_steps] caps the VM step budget of each evaluation
      (default 2e9) — a configuration that loops or merely exceeds it is a
      step-timeout, not a stuck campaign. [faults] arms the deterministic
      fault injector around every evaluation (never around [profile]).

      [backend] selects the execution engine for plain evaluations
      (default {!Compile.Compiled}, sharing one {!Compile.cache} across
      the whole campaign). [cache] supplies that cache from outside —
      the campaign server hands every concurrent job on the same program
      one cache, so compiled blocks are shared {e across} campaigns, not
      just within one. Evaluations with [faults] armed, and runs where
      [setup] installs a VM hook, always go through the interpreter —
      {!Compile.run}'s own fallback rule — so the backend choice never
      changes observable results. [profile] always interprets (it runs the
      unpatched program once; compiling it buys nothing). *)
end

type granularity = Module_level | Func_level | Block_level | Insn_level

type checkpoint_opts = {
  path : string;  (** snapshot file ([path ^ ".tmp"] is the scratch name) *)
  every : int;  (** snapshot every [every] waves (clamped to ≥ 1) *)
  resume : bool;  (** restore from [path] before searching, if valid *)
  save_counters : unit -> (string * int) list;
      (** caller state persisted with each snapshot (e.g.
          {!Harness.counters_list}) *)
  restore_counters : (string * int) list -> unit;
      (** inverse hook on resume (e.g. {!Harness.restore_counters}) *)
}

val checkpoint :
  ?every:int ->
  ?resume:bool ->
  ?save_counters:(unit -> (string * int) list) ->
  ?restore_counters:((string * int) list -> unit) ->
  string ->
  checkpoint_opts
(** [checkpoint path] with defaults: snapshot every wave, no resume, no
    caller counters. *)

type shadow_opts = {
  report : Shadow_report.t;  (** a finished shadow-value analysis *)
  seed_predicted : bool;
      (** evaluate the predicted configuration first; on pass, its
          structures enter the passing set immediately and only the
          unpredicted remainder of the tree is searched *)
  reorder : bool;
      (** order the frontier by predicted tolerance (most tolerant first)
          instead of raw execution counts *)
  prune_above : float option;
      (** skip — without evaluating — items whose predicted divergence
          exceeds this hard bound. The skip is reported through
          [on_pruned] and the search log, and the item still descends, so
          finer candidates below it are never lost. Items containing
          control-flow flips are never pruned (their prediction is
          unreliable). [None] disables pruning. *)
  on_pruned : Config.t -> float -> unit;
      (** called for every pruned candidate with its configuration and
          predicted divergence — wire to {!Journal.record} with
          [Verdict.Pruned] so pruned candidates stay visible *)
}

val shadow :
  ?seed_predicted:bool ->
  ?reorder:bool ->
  ?prune_above:float ->
  ?on_pruned:(Config.t -> float -> unit) ->
  Shadow_report.t ->
  shadow_opts
(** Defaults: seed and reorder on, no pruning, no pruning callback. *)

type options = {
  stop_at : granularity;  (** coarsest terminal level of the descent *)
  binary_split : bool;
  prioritize : bool;
  split_threshold : int;  (** partition instead of enumerating when an
                              aggregate has more children than this *)
  workers : int;  (** parallel evaluation domains (1 = sequential) *)
  second_phase : bool;
      (** greedy composition pass when the final union fails (paper §3.1's
          suggested extension) *)
  base : Config.t;
      (** pre-seeded flags (e.g. [Ignore] hints on RNG routines); ignored
          instructions are excluded from the candidate universe *)
  pool : Pool.t option;
      (** evaluate waves on this supervised worker pool (caller keeps
          ownership — the search never shuts it down). [None] with
          [workers > 1] staffs a transient deadline-less pool for the
          campaign. *)
  checkpoint : checkpoint_opts option;
  shadow : shadow_opts option;
      (** shadow-guided mode: seed the passing set with the analysis'
          predicted configuration, reorder the frontier by predicted
          tolerance, and optionally prune hopeless candidates *)
  formats : Formats.t list;
      (** the precision-format menu (lattice). The structural descent runs
          entirely at the {e entry} format — the widest reduced format on
          the menu; with the default [[Formats.single]] the search is
          exactly the pre-lattice BFS, evaluation for evaluation. Cheaper
          formats on the menu are then tried per passing structure
          (cheapest first, first pass wins — see the LATTICE log lines),
          so e.g. [[bf16; f16; single]] can leave a structure at [bf16]
          when the verifier still accepts it there. [Formats.double] on
          the menu is ignored: double means "not replaced". Duplicates
          are removed; order is irrelevant (cost-sorted internally). *)
  stop : unit -> bool;
      (** cooperative stop request, polled at wave boundaries only (a
          consistent checkpoint is always flushed first). When it returns
          [true] the search stops descending, composes the union of the
          structures accepted {e so far} and returns with
          [interrupted = true] — how SIGINT in [craft search] and job
          cancellation in the campaign server end a campaign without
          losing it. Default: never stop. *)
}

val default_options : options
(** Instruction-level descent, both optimizations on, threshold 4, 1
    worker, no second phase, empty base, no pool, no checkpoint, no shadow
    guidance, never-firing stop. *)

type result = {
  final : Config.t;  (** union of every individually-passing replacement *)
  final_pass : bool;
  candidates : int;  (** size of the candidate universe *)
  tested : int;  (** configurations evaluated, including the final one(s) *)
  static_replaced : int;  (** candidates effectively single in [final] *)
  static_pct : float;
  dynamic_pct : float;
      (** profile-weighted replaced fraction of {e all} candidate
          executions, including [Ignore]-flagged instructions *)
  passing_nodes : Static.node list;  (** structures that passed as a whole *)
  passing_flags : (Static.node * Config.flag) list;
      (** the same structures with the precision flag each one ended the
          lattice descent at; always [entry]-format flags when the menu
          has a single reduced format *)
  bits_saved : int;
      (** {!Config.bits_saved} of [final]: total mantissa+exponent bits
          shaved off across every statically replaced candidate — the
          poster's headline metric, strictly larger when narrow formats
          survive verification *)
  log : string list;  (** chronological search narration *)
  supervisor : Pool.stats option;
      (** pool supervision tallies, when a pool evaluated the waves *)
  snapshots : int;  (** checkpoints written during the campaign *)
  pruned : int;
      (** candidates skipped by shadow pruning (each one logged and
          reported through [on_pruned], never dropped silently) *)
  interrupted : bool;
      (** the campaign was stopped by [options.stop] with work still
          queued; [final] is the union of what had passed by then *)
}

val search : ?options:options -> Target.t -> result
(** Raises only {!Aborted} (and only if an evaluator raises it). *)

val force_flag : base:Config.t -> Config.flag -> Config.t -> Static.node -> Config.t
(** [force_flag ~base flag cfg node] marks [node] with [flag] in [cfg] —
    at the aggregate level when possible, expanded to instruction level
    when the aggregate contains [Ignore]-flagged instructions (aggregate
    flags override children, and user ignore-hints must survive). *)

val force_single : base:Config.t -> Config.t -> Static.node -> Config.t
(** [force_flag ~base Config.Single] — the pre-lattice entry point, kept
    for callers that only ever speak binary32. *)
