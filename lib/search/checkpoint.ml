let header = "# craft-checkpoint v1"
let trailer = "end"

(* ---------------------------------------------------------------- node ids *)

let children = function
  | Static.Module (_, cs) | Static.Func (_, _, cs) | Static.Block (_, cs) -> cs
  | Static.Insn _ -> []

let node_id = function
  | Static.Module (name, _) -> "M:" ^ Verdict.escape name
  | Static.Func (fid, _, _) -> Printf.sprintf "F:%d" fid
  | Static.Block (label, _) -> Printf.sprintf "B:%d" label
  | Static.Insn info -> Printf.sprintf "I:%d" info.Static.addr

let resolve program id =
  let want_int prefix k ~proj =
    match int_of_string_opt k with
    | None -> Error (Printf.sprintf "checkpoint: bad %s id %S" prefix id)
    | Some n -> (
        let rec find = function
          | [] -> None
          | node :: rest -> (
              match proj node n with
              | Some _ as hit -> hit
              | None -> (
                  match find (children node) with
                  | Some _ as hit -> hit
                  | None -> find rest))
        in
        match find (Static.tree program) with
        | Some node -> Ok node
        | None -> Error (Printf.sprintf "checkpoint: unknown structure %S" id))
  in
  match String.index_opt id ':' with
  | Some 1 -> (
      let k = String.sub id 2 (String.length id - 2) in
      match id.[0] with
      | 'M' -> (
          match Verdict.unescape k with
          | None -> Error (Printf.sprintf "checkpoint: bad module id %S" id)
          | Some name -> (
              match
                List.find_opt
                  (function Static.Module (m, _) -> m = name | _ -> false)
                  (Static.tree program)
              with
              | Some node -> Ok node
              | None -> Error (Printf.sprintf "checkpoint: unknown module %S" name)))
      | 'F' ->
          want_int "function" k ~proj:(fun node n ->
              match node with
              | Static.Func (fid, _, _) when fid = n -> Some node
              | _ -> None)
      | 'B' ->
          want_int "block" k ~proj:(fun node n ->
              match node with
              | Static.Block (label, _) when label = n -> Some node
              | _ -> None)
      | 'I' ->
          want_int "instruction" k ~proj:(fun node n ->
              match node with
              | Static.Insn info when info.Static.addr = n -> Some node
              | _ -> None)
      | _ -> Error (Printf.sprintf "checkpoint: bad node id %S" id))
  | _ -> Error (Printf.sprintf "checkpoint: bad node id %S" id)

(* A passing entry may carry a precision flag after '@' ("I:12@e5m10");
   a bare id means Single — exactly what pre-lattice checkpoints wrote, so
   they resume unchanged. *)
let flagged_id (node, flag) =
  match flag with
  | Config.Single -> node_id node
  | flag -> node_id node ^ "@" ^ Config.flag_token flag

let resolve_flagged program id =
  match String.index_opt id '@' with
  | None -> Result.map (fun n -> (n, Config.Single)) (resolve program id)
  | Some k -> (
      let base = String.sub id 0 k in
      let tok = String.sub id (k + 1) (String.length id - k - 1) in
      match Config.flag_of_token tok with
      | Some flag -> Result.map (fun n -> (n, flag)) (resolve program base)
      | None -> Error (Printf.sprintf "checkpoint: bad flag token in id %S" id))

(* A cheap structural fingerprint so a checkpoint is never resumed against a
   different program: FNV-1a over every node id of the structure tree. *)
let program_key program =
  let h = ref 0xcbf29ce484222325L in
  let mix s =
    String.iter
      (fun c ->
        h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
      s
  in
  let rec walk node =
    mix (node_id node);
    List.iter walk (children node)
  in
  List.iter walk (Static.tree program);
  Printf.sprintf "%016Lx" !h

(* ---------------------------------------------------------------- snapshot *)

type entry = { seq : int; weight : int; nodes : string list }

type snapshot = {
  key : string;
  tested : int;
  next_seq : int;
  queue : entry list;
  passing : string list;
  counters : (string * int) list;
  log : string list;
  strategy : string;
}

let save ~path snap =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Printf.fprintf oc "%s %s\n" header snap.key;
  Printf.fprintf oc "tested %d\n" snap.tested;
  Printf.fprintf oc "seq %d\n" snap.next_seq;
  (* The strategy record is written only for non-default strategies: bfs
     checkpoints stay byte-identical to every pre-strategy snapshot. *)
  if snap.strategy <> "" && snap.strategy <> "bfs" then
    Printf.fprintf oc "strategy %s\n" (Verdict.escape snap.strategy);
  List.iter
    (fun (k, v) -> Printf.fprintf oc "counter %s %d\n" (Verdict.escape k) v)
    snap.counters;
  Printf.fprintf oc "passing%s\n"
    (String.concat "" (List.map (fun id -> " " ^ id) snap.passing));
  List.iter
    (fun e ->
      Printf.fprintf oc "item %d %d%s\n" e.seq e.weight
        (String.concat "" (List.map (fun id -> " " ^ id) e.nodes)))
    snap.queue;
  List.iter (fun line -> Printf.fprintf oc "log %s\n" (Verdict.escape line)) snap.log;
  Printf.fprintf oc "%s\n" trailer;
  (* write-temp, flush, fsync, then rename: the visible file is always
     either the previous complete snapshot or this complete one, never a
     prefix — and the fsync before the rename means even a power loss
     cannot leave the final name pointing at unwritten data *)
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc;
  Sys.rename tmp path;
  (* best-effort fsync of the containing directory so the rename itself is
     durable; not all filesystems allow opening a directory for this *)
  try
    let dir = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close dir with Unix.Unix_error _ -> ())
      (fun () -> Unix.fsync dir)
  with Unix.Unix_error _ -> ()

let load ~path =
  if not (Sys.file_exists path) then Error "no checkpoint file"
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    let lines = List.rev !lines in
    let fields line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
    match lines with
    | first :: rest
      when String.length first > String.length header
           && String.sub first 0 (String.length header) = header -> (
        let key = String.trim (String.sub first (String.length header)
                                 (String.length first - String.length header)) in
        let complete =
          match List.rev rest with
          | last :: _ -> String.trim last = trailer
          | [] -> false
        in
        if not complete then Error "truncated checkpoint (no end marker)"
        else begin
          let snap =
            ref
              {
                key;
                tested = 0;
                next_seq = 0;
                queue = [];
                passing = [];
                counters = [];
                log = [];
                strategy = "bfs";
              }
          in
          let bad = ref None in
          let fail msg = if !bad = None then bad := Some msg in
          List.iter
            (fun line ->
              if !bad = None && String.trim line <> trailer && String.trim line <> "" then
                match fields line with
                | [ "tested"; n ] -> (
                    match int_of_string_opt n with
                    | Some n -> snap := { !snap with tested = n }
                    | None -> fail "bad tested count")
                | [ "seq"; n ] -> (
                    match int_of_string_opt n with
                    | Some n -> snap := { !snap with next_seq = n }
                    | None -> fail "bad seq count")
                | [ "strategy"; tok ] -> (
                    match Verdict.unescape tok with
                    | Some s -> snap := { !snap with strategy = s }
                    | None -> fail "bad strategy record")
                | [ "counter"; k; v ] -> (
                    match (Verdict.unescape k, int_of_string_opt v) with
                    | Some k, Some v ->
                        snap := { !snap with counters = !snap.counters @ [ (k, v) ] }
                    | _ -> fail "bad counter record")
                | "passing" :: ids -> snap := { !snap with passing = !snap.passing @ ids }
                | "item" :: seq :: weight :: ids -> (
                    match (int_of_string_opt seq, int_of_string_opt weight, ids) with
                    | Some seq, Some weight, _ :: _ ->
                        snap :=
                          { !snap with
                            queue = !snap.queue @ [ { seq; weight; nodes = ids } ] }
                    | _ -> fail "bad item record")
                | [ "log" ] -> snap := { !snap with log = !snap.log @ [ "" ] }
                | [ "log"; s ] -> (
                    match Verdict.unescape s with
                    | Some s -> snap := { !snap with log = !snap.log @ [ s ] }
                    | None -> fail "bad log record")
                | _ -> fail (Printf.sprintf "unrecognized checkpoint line %S" line))
            rest;
          match !bad with Some msg -> Error msg | None -> Ok !snap
        end)
    | _ -> Error "not a checkpoint file (bad header)"
  end
