type result = {
  final : Config.t;
  final_pass : bool;
  tested : int;
  static_replaced : int;
  candidates : int;
}

(* Strategy searches are campaigns too: one evaluation blowing up (crashing
   verify routine, unclassified injected fault) is that configuration's
   failure, never the search's. With a pool, the (sequential) evaluations
   additionally run under its supervision — wall-clock deadline, hung-worker
   abandonment, quarantine — via [Pool.run_one]. *)
let contained_eval ?pool (target : Bfs.Target.t) cfg =
  let thunk () = Verdict.classify (fun () -> target.Bfs.Target.eval cfg) in
  let verdict =
    match pool with None -> thunk () | Some p -> Pool.run_one p thunk
  in
  verdict = Verdict.Pass

let universe base (target : Bfs.Target.t) =
  Array.to_list (Static.candidates target.Bfs.Target.program)
  |> List.filter (fun info -> Config.effective base info = Config.Double)

let config_of base insns =
  List.fold_left
    (fun acc (info : Static.insn_info) -> Config.set_insn acc info.Static.addr Config.Single)
    base insns

let mk_result base ~tested ~pass active n_candidates =
  {
    final = config_of base active;
    final_pass = pass;
    tested;
    static_replaced = List.length active;
    candidates = n_candidates;
  }

let delta_debug ?pool ?(base = Config.empty) ?(max_tests = 2000)
    (target : Bfs.Target.t) =
  let all = universe base target in
  let n_candidates = List.length all in
  let tested = ref 0 in
  let eval insns =
    incr tested;
    contained_eval ?pool target (config_of base insns)
  in
  let chunks g xs =
    let n = List.length xs in
    let size = max 1 ((n + g - 1) / g) in
    let rec go acc cur k = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | x :: rest ->
          if k = size then go (List.rev cur :: acc) [ x ] 1 rest
          else go acc (x :: cur) (k + 1) rest
    in
    go [] [] 0 xs
  in
  let remove chunk xs =
    List.filter (fun (i : Static.insn_info) -> not (List.memq i chunk)) xs
  in
  (* phase 1: shrink the active set until it passes *)
  let rec shrink active g =
    if !tested >= max_tests then (active, false)
    else if eval active then (active, true)
    else if List.length active <= 1 then ([], true) (* empty set passes trivially *)
    else begin
      let cs = chunks g active in
      let rec try_chunks = function
        | [] -> None
        | c :: rest ->
            if !tested >= max_tests then None
            else begin
              let candidate = remove c active in
              if candidate <> [] && eval candidate then Some candidate
              else if candidate = [] then None
              else try_chunks rest
            end
      in
      match try_chunks cs with
      | Some smaller -> shrink_pass smaller
      | None ->
          if g >= List.length active then ([], true)
          else shrink active (min (List.length active) (2 * g))
    end
  and shrink_pass active =
    (* the active set passes; fall through to growth *)
    (active, true)
  in
  let passing, ok = shrink all 2 in
  if not ok then
    (* budget exhausted without a passing set: fall back to empty *)
    mk_result base ~tested:!tested ~pass:true [] n_candidates
  else begin
    (* phase 2: grow back the removed instructions greedily (cold first,
       they are most likely to be tolerable) *)
    let removed =
      List.filter (fun (i : Static.insn_info) -> not (List.memq i passing)) all
    in
    let counts = target.Bfs.Target.profile () in
    let removed =
      List.sort
        (fun (a : Static.insn_info) (b : Static.insn_info) ->
          compare counts.(a.Static.addr) counts.(b.Static.addr))
        removed
    in
    let active = ref passing in
    List.iter
      (fun info ->
        if !tested < max_tests then begin
          let trial = info :: !active in
          if eval trial then active := trial
        end)
      removed;
    mk_result base ~tested:!tested ~pass:true !active n_candidates
  end

let greedy_grow ?pool ?(base = Config.empty) ?(max_tests = 2000)
    (target : Bfs.Target.t) =
  let all = universe base target in
  let n_candidates = List.length all in
  let counts = target.Bfs.Target.profile () in
  let ordered =
    List.sort
      (fun (a : Static.insn_info) (b : Static.insn_info) ->
        compare counts.(b.Static.addr) counts.(a.Static.addr))
      all
  in
  let tested = ref 0 in
  let active = ref [] in
  List.iter
    (fun info ->
      if !tested < max_tests then begin
        incr tested;
        let trial = info :: !active in
        if contained_eval ?pool target (config_of base trial) then active := trial
      end)
    ordered;
  mk_result base ~tested:!tested ~pass:true !active n_candidates
