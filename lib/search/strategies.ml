type result = {
  final : Config.t;
  final_pass : bool;
  tested : int;
  static_replaced : int;
  candidates : int;
}

(* Strategy searches are campaigns too: one evaluation blowing up (crashing
   verify routine, unclassified injected fault) is that configuration's
   failure, never the search's. With a pool, the (sequential) evaluations
   additionally run under its supervision — wall-clock deadline, hung-worker
   abandonment, quarantine — via [Pool.run_one]. *)
let contained_eval ?pool (target : Bfs.Target.t) cfg =
  let thunk () = Verdict.classify (fun () -> target.Bfs.Target.eval cfg) in
  let verdict =
    match pool with None -> thunk () | Some p -> Pool.run_one p thunk
  in
  verdict = Verdict.Pass

let universe base (target : Bfs.Target.t) =
  Array.to_list (Static.candidates target.Bfs.Target.program)
  |> List.filter (fun info -> Config.effective base info = Config.Double)

let config_of ?(flag = Config.Single) base insns =
  List.fold_left
    (fun acc (info : Static.insn_info) -> Config.set_insn acc info.Static.addr flag)
    base insns

let config_of_flags base flagged =
  List.fold_left
    (fun acc ((info : Static.insn_info), fl) -> Config.set_insn acc info.Static.addr fl)
    base flagged

(* The format menu, like {!Bfs.options.formats}: structural phases run at
   the widest reduced format (the entry); cheaper formats are tried per
   instruction afterwards. *)
let menu_entry formats =
  let menu =
    List.filter (fun f -> not (Formats.equal f Formats.double)) formats
    |> List.sort_uniq Formats.compare_cost
  in
  let entry = match List.rev menu with f :: _ -> f | [] -> Formats.single in
  (menu, entry)

(* In-place lattice descent on a composed passing configuration: lower one
   instruction at a time, cheapest format first, keeping the whole
   configuration passing after every accepted step — so the result is a
   passing configuration by construction, like everything else here. *)
let lattice_descend ?pool ~tested ~max_tests ~menu ~entry (target : Bfs.Target.t) base
    active =
  let start = List.map (fun i -> (i, Config.of_format entry)) active in
  match List.filter (fun f -> Formats.compare_cost f entry < 0) menu with
  | [] -> start
  | lower ->
      let flagged = ref start in
      List.iter
        (fun (info : Static.insn_info) ->
          let rec try_fmts = function
            | [] -> ()
            | f :: rest ->
                if !tested >= max_tests then ()
                else begin
                  let trial =
                    List.map
                      (fun ((i : Static.insn_info), fl) ->
                        if i.Static.addr = info.Static.addr then (i, Config.of_format f)
                        else (i, fl))
                      !flagged
                  in
                  incr tested;
                  if contained_eval ?pool target (config_of_flags base trial) then
                    flagged := trial
                  else try_fmts rest
                end
          in
          try_fmts lower)
        active;
      !flagged

let mk_result base ~tested ~pass flagged n_candidates =
  {
    final = config_of_flags base flagged;
    final_pass = pass;
    tested;
    static_replaced = List.length flagged;
    candidates = n_candidates;
  }

let delta_debug ?pool ?(base = Config.empty) ?(max_tests = 2000)
    ?(formats = [ Formats.single ]) (target : Bfs.Target.t) =
  let menu, entry = menu_entry formats in
  let all = universe base target in
  let n_candidates = List.length all in
  let tested = ref 0 in
  let eval insns =
    incr tested;
    contained_eval ?pool target (config_of ~flag:(Config.of_format entry) base insns)
  in
  let chunks g xs =
    let n = List.length xs in
    let size = max 1 ((n + g - 1) / g) in
    let rec go acc cur k = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | x :: rest ->
          if k = size then go (List.rev cur :: acc) [ x ] 1 rest
          else go acc (x :: cur) (k + 1) rest
    in
    go [] [] 0 xs
  in
  let remove chunk xs =
    List.filter (fun (i : Static.insn_info) -> not (List.memq i chunk)) xs
  in
  (* phase 1: shrink the active set until it passes *)
  let rec shrink active g =
    if !tested >= max_tests then (active, false)
    else if eval active then (active, true)
    else if List.length active <= 1 then ([], true) (* empty set passes trivially *)
    else begin
      let cs = chunks g active in
      let rec try_chunks = function
        | [] -> None
        | c :: rest ->
            if !tested >= max_tests then None
            else begin
              let candidate = remove c active in
              if candidate <> [] && eval candidate then Some candidate
              else if candidate = [] then None
              else try_chunks rest
            end
      in
      match try_chunks cs with
      | Some smaller -> shrink_pass smaller
      | None ->
          if g >= List.length active then ([], true)
          else shrink active (min (List.length active) (2 * g))
    end
  and shrink_pass active =
    (* the active set passes; fall through to growth *)
    (active, true)
  in
  let passing, ok = shrink all 2 in
  if not ok then
    (* budget exhausted without a passing set: fall back to empty *)
    mk_result base ~tested:!tested ~pass:true [] n_candidates
  else begin
    (* phase 2: grow back the removed instructions greedily (cold first,
       they are most likely to be tolerable) *)
    let removed =
      List.filter (fun (i : Static.insn_info) -> not (List.memq i passing)) all
    in
    let counts = target.Bfs.Target.profile () in
    let removed =
      List.sort
        (fun (a : Static.insn_info) (b : Static.insn_info) ->
          compare counts.(a.Static.addr) counts.(b.Static.addr))
        removed
    in
    let active = ref passing in
    List.iter
      (fun info ->
        if !tested < max_tests then begin
          let trial = info :: !active in
          if eval trial then active := trial
        end)
      removed;
    let flagged =
      lattice_descend ?pool ~tested ~max_tests ~menu ~entry target base !active
    in
    mk_result base ~tested:!tested ~pass:true flagged n_candidates
  end

let greedy_grow ?pool ?(base = Config.empty) ?(max_tests = 2000)
    ?(formats = [ Formats.single ]) (target : Bfs.Target.t) =
  let menu, entry = menu_entry formats in
  let all = universe base target in
  let n_candidates = List.length all in
  let counts = target.Bfs.Target.profile () in
  let ordered =
    List.sort
      (fun (a : Static.insn_info) (b : Static.insn_info) ->
        compare counts.(b.Static.addr) counts.(a.Static.addr))
      all
  in
  let tested = ref 0 in
  let active = ref [] in
  List.iter
    (fun info ->
      if !tested < max_tests then begin
        incr tested;
        let trial = info :: !active in
        if contained_eval ?pool target (config_of ~flag:(Config.of_format entry) base trial)
        then active := trial
      end)
    ordered;
  let flagged =
    lattice_descend ?pool ~tested ~max_tests ~menu ~entry target base !active
  in
  mk_result base ~tested:!tested ~pass:true flagged n_candidates
