(* The verdict taxonomy, its serialization and the total classifier now
   live in {!Verdict}, below {!Pool} and {!Bfs}; re-export them here with
   type equations so existing [Harness.Pass] etc. keep working. *)

type verdict = Verdict.verdict =
  | Pass
  | Fail_verify
  | Trapped of int * string
  | Step_timeout
  | Crashed of string
  | Pruned of string

let verdict_label = Verdict.verdict_label
let verdict_to_string = Verdict.verdict_to_string
let verdict_of_string = Verdict.verdict_of_string
let pp_verdict = Verdict.pp_verdict
let is_flaky = Verdict.is_flaky
let classify = Verdict.classify

type counters = {
  mutable evaluations : int;
  mutable attempts : int;
  mutable pass : int;
  mutable fail_verify : int;
  mutable trapped : int;
  mutable timed_out : int;
  mutable crashed : int;
  mutable retried : int;
  mutable backoff_units : int;
}

type t = {
  raw : Config.t -> bool;
  retries : int;
  backoff : int;
  retry_fail_verify : bool;
  cache : Compile.cache option;
  c : counters;
  lock : Mutex.t;
}

let make ?(retries = 0) ?(backoff = 1) ?(retry_fail_verify = false) ?cache raw =
  {
    raw;
    retries = max 0 retries;
    backoff = max 0 backoff;
    retry_fail_verify;
    cache;
    c =
      {
        evaluations = 0;
        attempts = 0;
        pass = 0;
        fail_verify = 0;
        trapped = 0;
        timed_out = 0;
        crashed = 0;
        retried = 0;
        backoff_units = 0;
      };
    lock = Mutex.create ();
  }

let counters t = t.c

let counters_list t =
  Mutex.protect t.lock (fun () ->
      [
        ("evaluations", t.c.evaluations);
        ("attempts", t.c.attempts);
        ("pass", t.c.pass);
        ("fail_verify", t.c.fail_verify);
        ("trapped", t.c.trapped);
        ("timed_out", t.c.timed_out);
        ("crashed", t.c.crashed);
        ("retried", t.c.retried);
        ("backoff_units", t.c.backoff_units);
      ])

let restore_counters t kvs =
  Mutex.protect t.lock (fun () ->
      List.iter
        (fun (k, v) ->
          match k with
          | "evaluations" -> t.c.evaluations <- v
          | "attempts" -> t.c.attempts <- v
          | "pass" -> t.c.pass <- v
          | "fail_verify" -> t.c.fail_verify <- v
          | "trapped" -> t.c.trapped <- v
          | "timed_out" -> t.c.timed_out <- v
          | "crashed" -> t.c.crashed <- v
          | "retried" -> t.c.retried <- v
          | "backoff_units" -> t.c.backoff_units <- v
          | _ -> ())
        kvs)

let tally t v =
  Mutex.protect t.lock (fun () ->
      t.c.attempts <- t.c.attempts + 1;
      match v with
      | Pass -> t.c.pass <- t.c.pass + 1
      | Fail_verify -> t.c.fail_verify <- t.c.fail_verify + 1
      | Trapped _ -> t.c.trapped <- t.c.trapped + 1
      | Step_timeout -> t.c.timed_out <- t.c.timed_out + 1
      | Crashed _ -> t.c.crashed <- t.c.crashed + 1
      (* pruned candidates never reach the harness: the search skips the
         evaluation entirely and journals the verdict itself *)
      | Pruned _ -> ())

let wants_retry t = function
  | Trapped _ | Step_timeout | Crashed _ -> true
  | Fail_verify -> t.retry_fail_verify
  | Pass | Pruned _ -> false

(* Ceiling on a single modeled backoff delay: 2^20 units. Exponential
   backoff doubles per attempt, and [1 lsl attempt] overflows to garbage
   (or 0) past attempt 62 — a harness configured with a large retry budget
   must saturate, not wrap. *)
let max_backoff_unit = 1 lsl 20

let backoff_delay ~base attempt =
  if base = 0 then 0
  else if attempt >= 20 || base >= max_backoff_unit then max_backoff_unit
  else min max_backoff_unit (base lsl attempt)

let eval t cfg =
  Mutex.protect t.lock (fun () -> t.c.evaluations <- t.c.evaluations + 1);
  let attempt_once () =
    let v = classify (fun () -> t.raw cfg) in
    tally t v;
    v
  in
  let rec go attempt v =
    if (not (wants_retry t v)) || attempt >= t.retries then v
    else begin
      (* deterministic exponential backoff, in modeled delay units — the VM
         world has no wall clock, so the delay is accounted, not slept;
         each delay saturates at [max_backoff_unit] *)
      Mutex.protect t.lock (fun () ->
          t.c.retried <- t.c.retried + 1;
          t.c.backoff_units <- t.c.backoff_units + backoff_delay ~base:t.backoff attempt);
      go (attempt + 1) (attempt_once ())
    end
  in
  go 0 (attempt_once ())

let eval_bool t cfg = match eval t cfg with Pass -> true | _ -> false

let report t =
  let c = t.c in
  let base =
    Printf.sprintf
      "verdicts: pass=%d fail=%d trap=%d timeout=%d crash=%d | %d evaluations, %d attempts, %d retried, backoff %d units"
      c.pass c.fail_verify c.trapped c.timed_out c.crashed c.evaluations c.attempts c.retried
      c.backoff_units
  in
  match t.cache with None -> base | Some cc -> base ^ " | " ^ Compile.report cc

let wrap_target ?retries ?backoff ?retry_fail_verify (target : Bfs.Target.t) =
  let h =
    make ?retries ?backoff ?retry_fail_verify ?cache:target.Bfs.Target.code_cache
      target.Bfs.Target.raw_eval
  in
  (h, { target with Bfs.Target.eval = (fun cfg -> eval_bool h cfg) })
