type verdict =
  | Pass
  | Fail_verify
  | Trapped of int * string
  | Step_timeout
  | Crashed of string

let verdict_label = function
  | Pass -> "pass"
  | Fail_verify -> "fail"
  | Trapped _ -> "trap"
  | Step_timeout -> "timeout"
  | Crashed _ -> "crash"

(* percent-escape the characters the journal format reserves *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '%' | '|' | ':' | '\t' | '\n' | '\r' ->
          Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else if s.[i] = '%' then
      if i + 2 >= n then None
      else
        match (hex s.[i + 1], hex s.[i + 2]) with
        | Some h, Some l ->
            Buffer.add_char buf (Char.chr ((h * 16) + l));
            go (i + 3)
        | _ -> None
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let verdict_to_string = function
  | Pass -> "pass"
  | Fail_verify -> "fail"
  | Trapped (addr, reason) -> Printf.sprintf "trap:0x%06x:%s" addr (escape reason)
  | Step_timeout -> "timeout"
  | Crashed msg -> "crash:" ^ escape msg

let verdict_of_string s =
  let payload_after prefix =
    let p = String.length prefix in
    if String.length s >= p && String.sub s 0 p = prefix then
      Some (String.sub s p (String.length s - p))
    else None
  in
  match s with
  | "pass" -> Some Pass
  | "fail" -> Some Fail_verify
  | "timeout" -> Some Step_timeout
  | _ -> (
      match payload_after "trap:" with
      | Some rest -> (
          match String.index_opt rest ':' with
          | None -> None
          | Some i -> (
              let addr = String.sub rest 0 i in
              let reason = String.sub rest (i + 1) (String.length rest - i - 1) in
              match (int_of_string_opt addr, unescape reason) with
              | Some a, Some r -> Some (Trapped (a, r))
              | _ -> None))
      | None -> (
          match payload_after "crash:" with
          | Some msg -> Option.map (fun m -> Crashed m) (unescape msg)
          | None -> None))

let pp_verdict ppf = function
  | Pass -> Format.pp_print_string ppf "pass"
  | Fail_verify -> Format.pp_print_string ppf "fail-verify"
  | Trapped (addr, reason) -> Format.fprintf ppf "trapped@0x%06x (%s)" addr reason
  | Step_timeout -> Format.pp_print_string ppf "step-timeout"
  | Crashed msg -> Format.fprintf ppf "crashed (%s)" msg

let is_flaky = function
  | Trapped _ | Step_timeout | Crashed _ -> true
  | Pass | Fail_verify -> false

let classify f =
  match f () with
  | true -> Pass
  | false -> Fail_verify
  | exception Vm.Trap (addr, reason) -> Trapped (addr, reason)
  | exception Vm.Limit _ -> Step_timeout
  | exception Stack_overflow -> Crashed "stack overflow"
  | exception Out_of_memory -> Crashed "out of memory"
  | exception e -> Crashed (Printexc.to_string e)

type counters = {
  mutable evaluations : int;
  mutable attempts : int;
  mutable pass : int;
  mutable fail_verify : int;
  mutable trapped : int;
  mutable timed_out : int;
  mutable crashed : int;
  mutable retried : int;
  mutable backoff_units : int;
}

type t = {
  raw : Config.t -> bool;
  retries : int;
  backoff : int;
  retry_fail_verify : bool;
  c : counters;
  lock : Mutex.t;
}

let make ?(retries = 0) ?(backoff = 1) ?(retry_fail_verify = false) raw =
  {
    raw;
    retries = max 0 retries;
    backoff = max 0 backoff;
    retry_fail_verify;
    c =
      {
        evaluations = 0;
        attempts = 0;
        pass = 0;
        fail_verify = 0;
        trapped = 0;
        timed_out = 0;
        crashed = 0;
        retried = 0;
        backoff_units = 0;
      };
    lock = Mutex.create ();
  }

let counters t = t.c

let tally t v =
  Mutex.protect t.lock (fun () ->
      t.c.attempts <- t.c.attempts + 1;
      match v with
      | Pass -> t.c.pass <- t.c.pass + 1
      | Fail_verify -> t.c.fail_verify <- t.c.fail_verify + 1
      | Trapped _ -> t.c.trapped <- t.c.trapped + 1
      | Step_timeout -> t.c.timed_out <- t.c.timed_out + 1
      | Crashed _ -> t.c.crashed <- t.c.crashed + 1)

let wants_retry t = function
  | Trapped _ | Step_timeout | Crashed _ -> true
  | Fail_verify -> t.retry_fail_verify
  | Pass -> false

let eval t cfg =
  Mutex.protect t.lock (fun () -> t.c.evaluations <- t.c.evaluations + 1);
  let attempt_once () =
    let v = classify (fun () -> t.raw cfg) in
    tally t v;
    v
  in
  let rec go attempt v =
    if (not (wants_retry t v)) || attempt >= t.retries then v
    else begin
      (* deterministic exponential backoff, in modeled delay units — the VM
         world has no wall clock, so the delay is accounted, not slept *)
      Mutex.protect t.lock (fun () ->
          t.c.retried <- t.c.retried + 1;
          t.c.backoff_units <- t.c.backoff_units + (t.backoff * (1 lsl attempt)));
      go (attempt + 1) (attempt_once ())
    end
  in
  go 0 (attempt_once ())

let eval_bool t cfg = match eval t cfg with Pass -> true | _ -> false

let report t =
  let c = t.c in
  Printf.sprintf
    "verdicts: pass=%d fail=%d trap=%d timeout=%d crash=%d | %d evaluations, %d attempts, %d retried, backoff %d units"
    c.pass c.fail_verify c.trapped c.timed_out c.crashed c.evaluations c.attempts c.retried
    c.backoff_units

let wrap_target ?retries ?backoff ?retry_fail_verify (target : Bfs.Target.t) =
  let h = make ?retries ?backoff ?retry_fail_verify target.Bfs.Target.raw_eval in
  (h, { target with Bfs.Target.eval = (fun cfg -> eval_bool h cfg) })
