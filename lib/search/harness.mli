(** The resilient evaluation harness.

    The autosearch is a long campaign of thousands of independent
    configuration evaluations, each of which — like the instrumented
    binaries of the real tool — can fail verification, trap, exceed its
    step budget, or crash outright. This module turns any raising
    evaluator (usually {!Bfs.Target.raw_eval}) into a {e total} function
    returning a classified {!verdict}, with

    - containment: no exception whatsoever escapes {!eval};
    - bounded retries with deterministic exponential backoff for flaky
      (infrastructure-looking) verdicts, so transient faults don't turn
      into permanent search decisions;
    - per-verdict counters for the end-of-campaign breakdown report.

    The verdict taxonomy itself lives in {!Verdict} (so {!Pool} and
    {!Bfs} can classify without a dependency cycle); this module
    re-exports it unchanged.

    Verdict equality of retried evaluations is deterministic because the
    VM itself is; flakiness only enters through {!Faults} injection or a
    genuinely non-deterministic user evaluator. *)

type verdict = Verdict.verdict =
  | Pass  (** ran to completion and verified *)
  | Fail_verify  (** ran to completion, verification rejected the output *)
  | Trapped of int * string
      (** the VM trapped: instrumentation-invariant violation,
          out-of-bounds access, division by zero, injected trap ...
          [(address, reason)] *)
  | Step_timeout
      (** the per-evaluation step budget ran out, or the supervisor's
          wall-clock deadline cancelled the run *)
  | Crashed of string  (** any other exception from the evaluator *)
  | Pruned of string
      (** skipped without evaluation: the shadow-value analysis predicted
          divergence above the search's hard bound (see {!Bfs.shadow});
          journaled, never produced by the harness itself *)

val verdict_label : verdict -> string
(** Short class label: ["pass"], ["fail"], ["trap"], ["timeout"],
    ["crash"], ["pruned"]. *)

val verdict_to_string : verdict -> string
(** Compact single-token serialization (no spaces; payloads are
    percent-escaped), e.g. ["trap:0x00001f:injected%20fault"]. Used by the
    {!Journal}. *)

val verdict_of_string : string -> verdict option
(** Inverse of {!verdict_to_string}; [None] on malformed input. *)

val pp_verdict : Format.formatter -> verdict -> unit

val is_flaky : verdict -> bool
(** True for {!Trapped}, {!Step_timeout} and {!Crashed} — the verdicts a
    retry might change when faults are transient. *)

val classify : (unit -> bool) -> verdict
(** Run one evaluation thunk and classify its outcome. Total: maps
    {!Vm.Trap}/{!Vm.Limit}/{!Vm.Deadline} to their verdicts and every
    other exception (including [Stack_overflow] and [Out_of_memory]) to
    {!Crashed}. *)

type counters = {
  mutable evaluations : int;  (** calls to {!eval} *)
  mutable attempts : int;  (** underlying evaluator runs, retries included *)
  mutable pass : int;
  mutable fail_verify : int;
  mutable trapped : int;
  mutable timed_out : int;
  mutable crashed : int;
  mutable retried : int;  (** retry attempts performed *)
  mutable backoff_units : int;  (** modeled backoff delay accumulated *)
}
(** Per-attempt verdict tallies ([pass + fail_verify + trapped + timed_out
    + crashed = attempts]); reads are racy-but-monotone under domain
    parallelism. *)

type t

val make :
  ?retries:int ->
  ?backoff:int ->
  ?retry_fail_verify:bool ->
  ?cache:Compile.cache ->
  (Config.t -> bool) ->
  t
(** [make raw] wraps a raising evaluator. [retries] (default 0) bounds the
    extra attempts granted to a flaky verdict; attempt [k]'s modeled
    backoff delay is [backoff * 2^(k-1)] units (default base 1, recorded
    in the counters — the VM world has no wall clock to actually sleep
    on), saturating at {!max_backoff_unit} per delay so large retry
    budgets can't overflow the accounting. [cache] attaches the target's
    compiled-block cache so {!report} can append its hit/miss line.
    [retry_fail_verify] (default
    false) extends retrying to {!Fail_verify}, for campaigns where
    injected silent corruption can forge verification failures. *)

val max_backoff_unit : int
(** Ceiling on one modeled backoff delay ([2^20] units). Exponential
    backoff saturates here instead of overflowing [1 lsl attempt] on
    large retry counts. *)

val eval : t -> Config.t -> verdict
(** Total classified evaluation with retries. Never raises. *)

val eval_bool : t -> Config.t -> bool
(** [eval] folded back to the search's view: {!Pass} is [true], everything
    else [false]. *)

val counters : t -> counters

val counters_list : t -> (string * int) list
(** Snapshot of the counters as an association list — the form
    {!Checkpoint} persists and {!restore_counters} accepts. *)

val restore_counters : t -> (string * int) list -> unit
(** Overwrite the named counters from a {!counters_list} snapshot
    (unknown names are ignored), so a resumed campaign's end-of-run
    report continues from where the killed one stopped. *)

val report : t -> string
(** One-line verdict breakdown, e.g.
    ["verdicts: pass=12 fail=30 trap=3 timeout=1 crash=0 | 46 evaluations, 47 attempts, 4 retried, backoff 7 units"];
    when a compiled-block cache is attached, the {!Compile.report} line
    (hits / misses / hit rate) is appended. *)

val wrap_target : ?retries:int -> ?backoff:int -> ?retry_fail_verify:bool ->
  Bfs.Target.t -> t * Bfs.Target.t
(** Build a harness over the target's {!Bfs.Target.raw_eval} and return it
    together with the same target whose [eval] is the harness's
    {!eval_bool} — drop-in resilience (containment + retries + counters)
    for {!Bfs.search} and every {!Strategies} search. The target's
    {!Bfs.Target.code_cache} (if any) is attached, so the harness report
    also carries the campaign's code-cache hit rate. *)
