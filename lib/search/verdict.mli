(** Classified evaluation outcomes.

    The verdict taxonomy and its total classifier live below every other
    search module so that {!Pool} (worker supervision), {!Bfs} (evaluation
    containment) and {!Harness} (retries, counters) can all speak the same
    language without a dependency cycle. {!Harness} re-exports everything
    here; existing code using [Harness.Pass] etc. is unaffected. *)

type verdict =
  | Pass  (** ran to completion and verified *)
  | Fail_verify  (** ran to completion, verification rejected the output *)
  | Trapped of int * string
      (** the VM trapped: instrumentation-invariant violation,
          out-of-bounds access, division by zero, injected trap ...
          [(address, reason)] *)
  | Step_timeout
      (** the per-evaluation step budget ran out, or the supervisor's
          wall-clock deadline cancelled the run ({!Vm.Deadline}) *)
  | Crashed of string  (** any other exception from the evaluator *)
  | Pruned of string
      (** the candidate was never evaluated: the shadow-value analysis
          predicted its divergence above the configured hard bound and the
          search skipped it. Recorded in the journal so a pruned candidate
          is always visible, never silently dropped; only produced by
          shadow-guided search, never by {!classify}. *)

val verdict_label : verdict -> string
(** Short class label: ["pass"], ["fail"], ["trap"], ["timeout"],
    ["crash"], ["pruned"]. *)

val verdict_to_string : verdict -> string
(** Compact single-token serialization (no spaces; payloads are
    percent-escaped), e.g. ["trap:0x00001f:injected%20fault"]. Used by the
    {!Journal}. *)

val verdict_of_string : string -> verdict option
(** Inverse of {!verdict_to_string}; [None] on malformed input. *)

val pp_verdict : Format.formatter -> verdict -> unit

val is_flaky : verdict -> bool
(** True for {!Trapped}, {!Step_timeout} and {!Crashed} — the verdicts a
    retry might change when faults are transient. *)

val classify : (unit -> bool) -> verdict
(** Run one evaluation thunk and classify its outcome. Total: maps
    {!Vm.Trap}/{!Vm.Limit}/{!Vm.Deadline} to their verdicts and every other
    exception (including [Stack_overflow] and [Out_of_memory]) to
    {!Crashed}. *)

val classify_exn : exn -> verdict
(** The exception half of {!classify}, for callers that must let specific
    control exceptions (e.g. {!Bfs.Aborted}) propagate before classifying
    the rest. *)

val escape : string -> string
(** Percent-escape the characters the journal/checkpoint line formats
    reserve (space, [%], [|], [:], tab, CR, LF). *)

val unescape : string -> string option
(** Inverse of {!escape}; [None] on a malformed escape sequence. *)
