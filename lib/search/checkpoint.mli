(** Atomic snapshots of the live BFS search state.

    The {!Journal} makes a killed campaign recoverable, but only by
    replaying it configuration-by-configuration from the start. A
    checkpoint snapshots the frontier itself — the work queue, the
    accepted (passing) structures, the test counter, the harness counters
    and the narration log — so a resumed campaign restarts {e mid-level}:
    it re-tests at most the wave that was in flight when the campaign died
    (and those re-tests are usually journal hits anyway).

    Writes are atomic: the snapshot is written to [<path>.tmp], flushed,
    and [rename(2)]d over [path]. The visible file is always either the
    previous complete snapshot or the new complete one; an interrupted
    write never corrupts resume. A trailing [end] marker additionally
    rejects a truncated file copied by other means.

    Format (text, one record per line):

    {v
    # craft-checkpoint v1 <program-key>
    tested <n>
    seq <n>
    strategy <escaped-token>           (only when not "bfs")
    counter <escaped-name> <n>         (zero or more)
    passing <node-id> ...
    item <seq> <weight> <node-id> ...  (one per queued work item)
    log <escaped-line>                 (zero or more)
    end
    v}

    Node ids name structure-tree nodes ([M:<escaped-name>], [F:<fid>],
    [B:<label>], [I:<addr>]); the program key is an FNV-1a fingerprint of
    the whole structure tree, so a checkpoint can never be resumed against
    a different program. *)

type entry = { seq : int; weight : int; nodes : string list }
(** One queued work item: its priority sequence number, profile weight, and
    the node ids it covers. *)

type snapshot = {
  key : string;  (** {!program_key} of the program that wrote it *)
  tested : int;
  next_seq : int;
  queue : entry list;
  passing : string list;  (** node ids, chronological *)
  counters : (string * int) list;
      (** opaque caller state (e.g. harness counters), restored verbatim *)
  log : string list;  (** search narration, chronological *)
  strategy : string;
      (** the search strategy that wrote the snapshot. Written to disk only
          when not ["bfs"] — bfs snapshots stay byte-identical to every
          pre-strategy checkpoint, and a file without the record loads as
          ["bfs"]. Resuming refuses a snapshot written by another
          strategy. *)
}

val save : path:string -> snapshot -> unit
(** Atomic write-temp-then-rename. *)

val load : path:string -> (snapshot, string) result
(** Tolerant read: a missing file, a bad header, a truncated body or any
    malformed record is an [Error] (never an exception), letting the caller
    fall back to journal-only resume. *)

val node_id : Static.node -> string

val resolve : Ir.program -> string -> (Static.node, string) result
(** Find the structure-tree node a saved id names, or explain why not. *)

val flagged_id : Static.node * Config.flag -> string
(** A passing entry with its precision flag: bare {!node_id} when the flag
    is [Single] (byte-identical to pre-lattice checkpoints), otherwise
    [<node-id>@<flag-token>] (e.g. [I:12@e5m10]). *)

val resolve_flagged : Ir.program -> string -> (Static.node * Config.flag, string) result
(** Inverse of {!flagged_id}; an id without [@] resolves with flag
    [Single], so old checkpoints replay to the same resumed state. *)

val program_key : Ir.program -> string
(** 16-hex-digit structural fingerprint of the program's candidate tree. *)
