(** Pluggable search strategies behind one interface.

    The paper's search is a fixed breadth-first descent over the precision
    hierarchy ({!Bfs}); this module makes the {e policy} pluggable while
    keeping every piece of campaign machinery — the harness/pool/fleet
    evaluation path, shadow reports, per-instruction execution counts, the
    precision-format lattice, checkpoints — available to each policy
    through one {!ctx} record.

    A strategy is a wave state machine ({!S}): it {e proposes} the next
    wave of candidate configurations, the driver evaluates them (on the
    caller's pool when one is supplied, sequentially otherwise, always
    with per-item verdict containment), and the strategy {e consumes} the
    verdicts, until it proposes an empty wave. The driver then composes
    the final configuration exactly like {!Bfs} does — union evaluation,
    optional greedy second-phase composition — plus a greedy {e top-up}
    sweep (every still-double candidate gets one chance on top of the
    final set) and the per-instruction lattice descent, so every strategy
    ends maximal over the same move set and the "no worse than BFS"
    bake-off assertion is an apples-to-apples comparison.

    [bfs] itself is {e not} re-implemented on the wave machine: {!run}
    with {!token.Bfs} delegates wholesale to {!Bfs.search}, so journals,
    checkpoints and finals reproduce byte-for-byte — the refactor moves
    the dispatch point, not the moves. Checkpoints written by the other
    strategies carry a [strategy] tag ({!Checkpoint.snapshot}) and refuse
    to resume under a different strategy; untagged (pre-strategy)
    snapshots load as [bfs]. *)

(** {1 Strategy tokens} *)

type token =
  | Bfs  (** the paper's breadth-first structural descent, verbatim *)
  | Split  (** count-weighted binary splitting over the flat candidate set *)
  | Delta  (** Precimonious-style delta-debugging with shrinking partitions *)
  | Anneal of int
      (** shadow-seeded greedy descent with bounded random restarts;
          deterministic from the explicit seed *)

val default_seed : int
(** Seed [anneal] uses when none is given (the token ["anneal"]). *)

val of_string : string -> (token, string) result
(** Parse a strategy token: [""] and ["bfs"] are {!token.Bfs}; ["split"],
    ["delta"], ["anneal"], ["anneal:<seed>"] as expected. Anything else is
    a descriptive [Error] — the typed validation the scheduler and CLI
    apply to submitted strategy tokens. *)

val to_string : token -> string
(** Inverse of {!of_string} ([Anneal default_seed] prints ["anneal"]). *)

val known : string list
(** The canonical token spellings, for help strings. *)

(** {1 The strategy interface} *)

type flagged = (Static.insn_info * Config.flag) list
(** An accepted replacement set: candidate instructions with the precision
    flag each one currently holds. *)

type ctx = {
  target : Bfs.Target.t;  (** program, eval path, profile, code cache *)
  options : Bfs.options;
      (** the full campaign options: base config, pool, checkpointing,
          shadow guidance, format menu, stop polling — strategies read
          what they need *)
  counts : int array;
      (** address-indexed dynamic execution counts from one profiling run *)
  universe : Static.insn_info list;
      (** the candidate instructions still double under [options.base] —
          the paper's set [Pd] minus user hints *)
  menu : Formats.t list;
      (** reduced formats of [options.formats], cost-sorted ascending;
          [[Formats.single]] when the menu is empty *)
  entry : Formats.t;
      (** widest reduced format — the flag structural moves are tried at *)
}

module type S = sig
  type state

  val name : string
  (** The checkpoint/WAL tag; must round-trip through {!of_string}. *)

  val init : ctx -> resume:flagged option -> state * string list
  (** Fresh state, plus narration lines. [resume] carries the accepted set
      restored from a matching strategy-tagged checkpoint. *)

  val propose : ctx -> state -> Config.t list * state
  (** The next wave of configurations to evaluate (empty = the strategy is
      done), and the state remembering what was proposed. *)

  val consume : ctx -> state -> Verdict.verdict list -> state * string list
  (** Fold one wave's verdicts (in proposal order) into the state. *)

  val flagged : ctx -> state -> flagged
  (** The accepted set so far — what checkpoints persist and what the
      driver composes, tops up and lattice-descends at the end. *)
end

(** {1 Running} *)

val run_machine : (module S) -> ?options:Bfs.options -> Bfs.Target.t -> Bfs.result
(** Drive one wave machine to completion: propose/evaluate/consume loop
    with pool evaluation, per-wave checkpointing (strategy-tagged),
    cooperative stop at wave boundaries, then the shared finish
    (union, second phase, top-up, lattice descent). Raises only
    {!Bfs.Aborted}, like {!Bfs.search}. *)

val machine : token -> (module S) option
(** The wave machine behind a token; [None] for {!token.Bfs}, which runs
    as {!Bfs.search} unchanged. *)

val run : ?options:Bfs.options -> token -> Bfs.Target.t -> Bfs.result
(** Run a strategy campaign. [run Bfs] {e is} [Bfs.search ~options] —
    same moves, same journal, same checkpoints, same result. *)
