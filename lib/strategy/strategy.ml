(* ------------------------------------------------------------- tokens *)

type token = Bfs | Split | Delta | Anneal of int

let default_seed = 0x5eed

let to_string = function
  | Bfs -> "bfs"
  | Split -> "split"
  | Delta -> "delta"
  | Anneal s when s = default_seed -> "anneal"
  | Anneal s -> Printf.sprintf "anneal:%d" s

let known = [ "bfs"; "split"; "delta"; "anneal"; "anneal:<seed>" ]

let of_string s =
  match String.trim (String.lowercase_ascii s) with
  | "" | "bfs" -> Ok Bfs
  | "split" -> Ok Split
  | "delta" -> Ok Delta
  | "anneal" -> Ok (Anneal default_seed)
  | t ->
      let pre = "anneal:" in
      let np = String.length pre in
      if String.length t > np && String.sub t 0 np = pre then
        match int_of_string_opt (String.sub t np (String.length t - np)) with
        | Some seed -> Ok (Anneal seed)
        | None -> Error (Printf.sprintf "strategy: bad anneal seed in %S" s)
      else
        Error
          (Printf.sprintf
             "strategy: unknown search strategy %S (expected bfs, split, delta \
              or anneal[:<seed>])"
             s)

(* ---------------------------------------------------------- interface *)

type flagged = (Static.insn_info * Config.flag) list

type ctx = {
  target : Bfs.Target.t;
  options : Bfs.options;
  counts : int array;
  universe : Static.insn_info list;
  menu : Formats.t list;
  entry : Formats.t;
}

module type S = sig
  type state

  val name : string
  val init : ctx -> resume:flagged option -> state * string list
  val propose : ctx -> state -> Config.t list * state
  val consume : ctx -> state -> Verdict.verdict list -> state * string list
  val flagged : ctx -> state -> flagged
end

(* ------------------------------------------------------ shared helpers *)

let addr (i : Static.insn_info) = i.Static.addr
let count ctx i = ctx.counts.(addr i)
let weight_of ctx insns = List.fold_left (fun a i -> a + count ctx i) 0 insns
let entry_flag ctx = Config.of_format ctx.entry

let config_of_flagged ctx fs =
  List.fold_left
    (fun acc (i, fl) -> Config.set_insn acc (addr i) fl)
    ctx.options.Bfs.base fs

let config_of_insns ctx insns =
  config_of_flagged ctx (List.map (fun i -> (i, entry_flag ctx)) insns)

let by_addr fs =
  List.sort (fun (a, _) (b, _) -> compare (addr a) (addr b)) fs

(* heaviest first, address ascending on ties — the deterministic order
   every count-driven choice below uses *)
let by_count_desc ctx insns =
  List.sort
    (fun a b ->
      match compare (count ctx b) (count ctx a) with
      | 0 -> compare (addr a) (addr b)
      | c -> c)
    insns

let by_count_asc ctx insns = List.rev (by_count_desc ctx insns)
let mem_addr insns i = List.exists (fun j -> addr j = addr i) insns
let diff all chosen = List.filter (fun i -> not (mem_addr chosen i)) all

let take n xs =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go n [] xs

(* -------------------------------------------------------------- split *)

(* Count-weighted binary splitting over the flat candidate set: the
   paper's own optimization pushed harder. One group holding the whole
   universe seeds the queue; a failing group splits into two halves of
   (approximately) equal dynamic execution weight instead of equal
   cardinality, so the expensive half keeps getting isolated first. *)
module Split_m = struct
  let name = "split"

  type group = { insns : Static.insn_info list; weight : int }

  type state = {
    queue : group list;
    inflight : group list;
    accepted : flagged;
    rejected : int;
  }

  let group ctx insns = { insns; weight = weight_of ctx insns }

  let init ctx ~resume =
    let accepted = Option.value resume ~default:[] in
    let rest = diff ctx.universe (List.map fst accepted) in
    let queue = if rest = [] then [] else [ group ctx rest ] in
    ( { queue; inflight = []; accepted; rejected = 0 },
      [
        Printf.sprintf "SPLIT %d candidates, total weight %d"
          (List.length rest) (weight_of ctx rest);
      ] )

  let propose ctx st =
    let width = max 1 ctx.options.Bfs.workers in
    let sorted =
      List.sort
        (fun a b ->
          match compare b.weight a.weight with
          | 0 -> compare (List.map addr a.insns) (List.map addr b.insns)
          | c -> c)
        st.queue
    in
    let batch, rest = take width sorted in
    ( List.map (fun g -> config_of_insns ctx g.insns) batch,
      { st with queue = rest; inflight = batch } )

  (* split heaviest-first, each instruction joining the lighter half, so
     both halves carry about the same dynamic weight *)
  let halves ctx g =
    let wa = ref 0 and wb = ref 0 in
    let a = ref [] and b = ref [] in
    List.iter
      (fun i ->
        if !wa <= !wb then begin
          a := i :: !a;
          wa := !wa + count ctx i
        end
        else begin
          b := i :: !b;
          wb := !wb + count ctx i
        end)
      (by_count_desc ctx g.insns);
    (group ctx (List.rev !a), group ctx (List.rev !b))

  let consume ctx st verdicts =
    let lines = ref [] in
    let say fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
    let st =
      List.fold_left2
        (fun st g v ->
          match v with
          | Verdict.Pass ->
              say "SPLIT pass: group of %d (weight %d)" (List.length g.insns)
                g.weight;
              {
                st with
                accepted =
                  st.accepted @ List.map (fun i -> (i, entry_flag ctx)) g.insns;
              }
          | v ->
              say "SPLIT %s: group of %d (weight %d)" (Verdict.verdict_label v)
                (List.length g.insns) g.weight;
              if List.length g.insns <= 1 then
                { st with rejected = st.rejected + 1 }
              else begin
                let a, b = halves ctx g in
                { st with queue = a :: b :: st.queue }
              end)
        { st with inflight = [] }
        st.inflight verdicts
    in
    (st, List.rev !lines)

  let flagged _ctx st = st.accepted
end

(* -------------------------------------------------------------- delta *)

(* Precimonious-style delta-debugging over the flag set: shrink the
   active set with complements of ever-finer partitions until some subset
   passes, then grow the removed instructions back one at a time,
   coldest first (they are the most likely to be tolerable). *)
module Delta_m = struct
  let name = "delta"

  type phase =
    | Probe  (** test the whole active set next *)
    | Await_probe
    | Await_chunks of int * Static.insn_info list list
        (** granularity, the complement sets proposed this wave *)
    | Grow of Static.insn_info list  (** still to try adding back *)
    | Await_grow of Static.insn_info * Static.insn_info list
    | Finished

  type state = { phase : phase; active : Static.insn_info list }

  let init ctx ~resume =
    match resume with
    | Some fs ->
        ( { phase = Probe; active = List.map fst fs },
          [ Printf.sprintf "DELTA resume with %d active" (List.length fs) ] )
    | None ->
        ( { phase = Probe; active = ctx.universe },
          [ Printf.sprintf "DELTA %d candidates" (List.length ctx.universe) ] )

  let chunks g xs =
    let n = List.length xs in
    let size = max 1 ((n + g - 1) / g) in
    let rec go acc cur k = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | x :: rest ->
          if k = size then go (List.rev cur :: acc) [ x ] 1 rest
          else go acc (x :: cur) (k + 1) rest
    in
    go [] [] 0 xs

  let start_grow ctx active =
    let removed = by_count_asc ctx (diff ctx.universe active) in
    match removed with
    | [] -> { phase = Finished; active }
    | _ -> { phase = Grow removed; active }

  let propose ctx st =
    match st.phase with
    | Probe -> ([ config_of_insns ctx st.active ], { st with phase = Await_probe })
    | Grow (i :: rest) ->
        ( [ config_of_insns ctx (i :: st.active) ],
          { st with phase = Await_grow (i, rest) } )
    | Grow [] | Finished -> ([], { st with phase = Finished })
    | Await_probe | Await_chunks _ | Await_grow _ -> ([], st)

  let shrink_wave ctx st g =
    (* propose every complement of the g-partition at once; consume keeps
       the first passing one (proposal order), exactly the choice the
       sequential ddmin loop would make *)
    let cs =
      List.map (fun c -> diff st.active c) (chunks g st.active)
      |> List.filter (fun c -> c <> [])
    in
    match cs with
    | [] -> ([], start_grow ctx [])
    | _ ->
        ( List.map (config_of_insns ctx) cs,
          { st with phase = Await_chunks (g, cs) } )

  let propose ctx st =
    match st.phase with
    | Await_chunks (g, []) -> shrink_wave ctx st g
    | _ -> propose ctx st

  let consume ctx st verdicts =
    let say fmt = Printf.ksprintf (fun s -> [ s ]) fmt in
    match (st.phase, verdicts) with
    | Await_probe, [ Verdict.Pass ] ->
        ( start_grow ctx st.active,
          say "DELTA active set of %d passes" (List.length st.active) )
    | Await_probe, [ _ ] ->
        if List.length st.active <= 1 then
          ( start_grow ctx [],
            say "DELTA active set fails and cannot shrink; growing from empty" )
        else
          (* signal propose to emit the g=2 complement wave *)
          ( { st with phase = Await_chunks (2, []) },
            say "DELTA active set of %d fails; shrinking" (List.length st.active)
          )
    | Await_chunks (g, cs), verdicts -> (
        let passing =
          List.find_opt (fun (_, v) -> v = Verdict.Pass) (List.combine cs verdicts)
        in
        match passing with
        | Some (smaller, _) ->
            ( start_grow ctx smaller,
              say "DELTA complement of %d passes" (List.length smaller) )
        | None ->
            if g >= List.length st.active then
              ( start_grow ctx [],
                say "DELTA no complement passes at granularity %d; growing \
                     from empty"
                  g )
            else
              ( {
                  st with
                  phase = Await_chunks (min (List.length st.active) (2 * g), []);
                },
                say "DELTA granularity %d -> %d" g (2 * g) ))
    | Await_grow (i, rest), [ v ] ->
        let st =
          if v = Verdict.Pass then { phase = Grow rest; active = i :: st.active }
          else { st with phase = Grow rest }
        in
        ( st,
          say "DELTA grow %s: %s"
            (Printf.sprintf "0x%06x" (addr i))
            (Verdict.verdict_label v) )
    | _, _ -> (st, [])

  let flagged ctx st =
    match st.phase with
    | Probe | Await_probe | Await_chunks _ ->
        (* mid-shrink the active set is not known to pass; persist nothing *)
        []
    | Grow _ | Await_grow _ | Finished ->
        List.map (fun i -> (i, entry_flag ctx)) st.active
end

(* ------------------------------------------------------------- anneal *)

(* Shadow-seeded greedy descent with bounded random restarts. The shadow
   report's predicted configuration (when the campaign carries one) seeds
   the current solution; a greedy sweep then offers every remaining
   candidate in seeded-random order; a local optimum triggers a restart
   that randomly evicts ~1/3 of the solution and re-sweeps. Deterministic
   from the explicit seed: every random draw comes from one [Rng] stream,
   and evaluation order is strictly sequential. *)
let anneal_machine seed : (module S) =
  (module struct
    let name = to_string (Anneal seed)

    type state = {
      rng : Rng.t;
      current : Static.insn_info list;
      best : Static.insn_info list;
      sweep : Static.insn_info list;
      restarts_left : int;
      phase : [ `Seed | `Sweep | `Await of Static.insn_info | `Finished ];
    }

    let restarts = 2

    let shuffled rng insns =
      let a = Array.of_list insns in
      Rng.shuffle rng a;
      Array.to_list a

    let init ctx ~resume =
      let rng = Rng.create seed in
      match resume with
      | Some fs ->
          let current = List.map fst fs in
          ( {
              rng;
              current;
              best = current;
              sweep = shuffled rng (diff ctx.universe current);
              restarts_left = restarts;
              phase = `Sweep;
            },
            [ Printf.sprintf "ANNEAL resume with %d accepted" (List.length fs) ]
          )
      | None -> (
          let predicted =
            match ctx.options.Bfs.shadow with
            | Some s ->
                List.concat_map Static.node_insns
                  (Shadow_report.predicted_nodes s.Bfs.report)
                |> List.filter (mem_addr ctx.universe)
            | None -> []
          in
          match predicted with
          | [] ->
              ( {
                  rng;
                  current = [];
                  best = [];
                  sweep = shuffled rng ctx.universe;
                  restarts_left = restarts;
                  phase = `Sweep;
                },
                [ "ANNEAL no shadow seed; greedy sweep from empty" ] )
          | p ->
              ( {
                  rng;
                  current = p;
                  best = [];
                  sweep = [];
                  restarts_left = restarts;
                  phase = `Seed;
                },
                [
                  Printf.sprintf "ANNEAL shadow seed: %d predicted"
                    (List.length p);
                ] ))

    let propose ctx st =
      match st.phase with
      | `Seed -> ([ config_of_insns ctx st.current ], st)
      | `Sweep -> (
          match st.sweep with
          | [] -> ([], st)  (* consume never leaves an exhausted sweep *)
          | i :: rest ->
              ( [ config_of_insns ctx (i :: st.current) ],
                { st with sweep = rest; phase = `Await i } ))
      | `Await _ | `Finished -> ([], st)

    (* a sweep ended: either restart (evicting a random ~1/3) or finish *)
    let rec settle ctx st lines =
      if st.sweep <> [] then (st, lines)
      else begin
        let best =
          if List.length st.current > List.length st.best then st.current
          else st.best
        in
        if st.restarts_left = 0 then
          ( { st with best; phase = `Finished },
            lines
            @ [
                Printf.sprintf "ANNEAL done: best solution keeps %d"
                  (List.length best);
              ] )
        else begin
          let keep = List.filter (fun _ -> Rng.int st.rng 3 > 0) st.current in
          let line =
            Printf.sprintf "ANNEAL restart: evicted %d of %d, %d restarts left"
              (List.length st.current - List.length keep)
              (List.length st.current)
              (st.restarts_left - 1)
          in
          let st =
            {
              st with
              best;
              current = keep;
              sweep = shuffled st.rng (diff ctx.universe keep);
              restarts_left = st.restarts_left - 1;
              phase = `Sweep;
            }
          in
          settle ctx st (lines @ [ line ])
        end
      end

    let consume ctx st verdicts =
      match (st.phase, verdicts) with
      | `Seed, [ v ] ->
          let ok = v = Verdict.Pass in
          let current = if ok then st.current else [] in
          let st =
            {
              st with
              current;
              sweep = shuffled st.rng (diff ctx.universe current);
              phase = `Sweep;
            }
          in
          settle ctx st
            [
              Printf.sprintf "ANNEAL shadow seed %s"
                (if ok then "passes" else "fails; starting empty");
            ]
      | `Await i, [ v ] ->
          let st =
            if v = Verdict.Pass then
              { st with current = i :: st.current; phase = `Sweep }
            else { st with phase = `Sweep }
          in
          settle ctx st []
      | _, _ -> (st, [])

    let flagged ctx st =
      let chosen =
        match st.phase with
        | `Finished -> st.best
        | _ ->
            if List.length st.current > List.length st.best then st.current
            else st.best
      in
      List.map (fun i -> (i, entry_flag ctx)) chosen
  end)

let machine = function
  | Bfs -> None
  | Split -> Some (module Split_m : S)
  | Delta -> Some (module Delta_m : S)
  | Anneal seed -> Some (anneal_machine seed)

(* ------------------------------------------------------------- driver *)

let make_ctx options (target : Bfs.Target.t) =
  let menu =
    List.filter
      (fun f -> not (Formats.equal f Formats.double))
      options.Bfs.formats
    |> List.sort_uniq Formats.compare_cost
  in
  let entry = match List.rev menu with f :: _ -> f | [] -> Formats.single in
  let menu = if menu = [] then [ Formats.single ] else menu in
  let base = options.Bfs.base in
  let universe =
    Array.to_list (Static.candidates target.Bfs.Target.program)
    |> List.filter (fun info -> Config.effective base info = Config.Double)
  in
  let counts = target.Bfs.Target.profile () in
  { target; options; counts; universe; menu; entry }

let run_machine (module M : S) ?(options = Bfs.default_options)
    (target : Bfs.Target.t) =
  let ctx = make_ctx options target in
  let log = ref [] in
  let say fmt = Printf.ksprintf (fun s -> log := s :: !log) fmt in
  let says lines = List.iter (fun s -> log := s :: !log) lines in
  let tested = ref 0 in
  let snapshots = ref 0 in
  let interrupted = ref false in
  (* evaluation containment and pool staffing mirror Bfs exactly: a
     caller-supplied pool is reused and left running, [workers > 1]
     without one staffs a transient pool, and only [Bfs.Aborted] escapes *)
  let transient_pool =
    match (options.Bfs.pool, options.Bfs.workers) with
    | Some _, _ | None, 1 -> None
    | None, w when w <= 1 -> None
    | None, w ->
        Some (Pool.create ~options:{ Pool.default_options with workers = w } ())
  in
  let pool =
    match options.Bfs.pool with Some p -> Some p | None -> transient_pool
  in
  let drain_pool () =
    match pool with
    | None -> ()
    | Some p -> List.iter (fun e -> say "POOL %s" e) (Pool.drain_events p)
  in
  let eval_verdict cfg =
    match target.Bfs.Target.eval cfg with
    | true -> Verdict.Pass
    | false -> Verdict.Fail_verify
    | exception Bfs.Aborted -> raise Bfs.Aborted
    | exception e -> Verdict.classify_exn e
  in
  let eval_wave cfgs =
    tested := !tested + List.length cfgs;
    match (cfgs, pool) with
    | _, None -> List.map eval_verdict cfgs
    | _, Some p -> Pool.run p (List.map (fun cfg () -> eval_verdict cfg) cfgs)
  in
  let contained_eval cfg =
    match eval_wave [ cfg ] with [ v ] -> v = Verdict.Pass | _ -> false
  in
  let save_snapshot state =
    match options.Bfs.checkpoint with
    | None -> ()
    | Some ck ->
        Checkpoint.save ~path:ck.Bfs.path
          {
            Checkpoint.key = Checkpoint.program_key target.Bfs.Target.program;
            tested = !tested;
            next_seq = 0;
            queue = [];
            passing =
              List.map
                (fun (i, fl) -> Checkpoint.flagged_id (Static.Insn i, fl))
                (by_addr (M.flagged ctx state));
            counters = ck.Bfs.save_counters ();
            log = List.rev !log;
            strategy = M.name;
          };
        incr snapshots
  in
  let resume =
    match options.Bfs.checkpoint with
    | Some ck when ck.Bfs.resume -> (
        match Checkpoint.load ~path:ck.Bfs.path with
        | Error msg ->
            say "CHECKPOINT not resumed: %s" msg;
            None
        | Ok snap
          when snap.Checkpoint.key
               <> Checkpoint.program_key target.Bfs.Target.program ->
            say "CHECKPOINT not resumed: written by a different program (key %s)"
              snap.Checkpoint.key;
            None
        | Ok snap when snap.Checkpoint.strategy <> M.name ->
            say "CHECKPOINT not resumed: written by strategy %s"
              snap.Checkpoint.strategy;
            None
        | Ok snap -> (
            let resolved =
              List.fold_left
                (fun acc id ->
                  match acc with
                  | Error _ as e -> e
                  | Ok fs -> (
                      match
                        Checkpoint.resolve_flagged target.Bfs.Target.program id
                      with
                      | Ok (node, fl) -> (
                          match Static.node_insns node with
                          | [ info ] -> Ok ((info, fl) :: fs)
                          | _ ->
                              Error
                                (Printf.sprintf
                                   "checkpoint id %S is not one instruction" id))
                      | Error _ as e -> e))
                (Ok []) snap.Checkpoint.passing
              |> Result.map List.rev
            in
            match resolved with
            | Error msg ->
                say "CHECKPOINT not resumed: %s" msg;
                None
            | Ok fs ->
                log := List.rev snap.Checkpoint.log;
                tested := snap.Checkpoint.tested;
                ck.Bfs.restore_counters snap.Checkpoint.counters;
                say "RESUME from %s checkpoint: %d tested, %d accepted" M.name
                  snap.Checkpoint.tested (List.length fs);
                Some fs))
    | _ -> None
  in
  let st0, lines0 = M.init ctx ~resume in
  says lines0;
  let state = ref st0 in
  let run () =
    let wave = ref 0 in
    let every =
      match options.Bfs.checkpoint with
      | Some ck -> max 1 ck.Bfs.every
      | None -> max_int
    in
    (* ------------------------------------------------------- wave loop *)
    let rec loop () =
      if options.Bfs.stop () then begin
        save_snapshot !state;
        interrupted := true;
        say "STOP requested: composing what was accepted so far"
      end
      else begin
        let cfgs, st = M.propose ctx !state in
        state := st;
        match cfgs with
        | [] -> ()
        | cfgs ->
            incr wave;
            let verdicts = eval_wave cfgs in
            let st, lines = M.consume ctx !state verdicts in
            state := st;
            says lines;
            drain_pool ();
            if !wave mod every = 0 then save_snapshot !state;
            loop ()
      end
    in
    loop ();
    (* ---------------------------------------------------------- finish *)
    let fs = ref (by_addr (M.flagged ctx !state)) in
    let final = ref (config_of_flagged ctx !fs) in
    let final_pass = ref (contained_eval !final) in
    say "FINAL union of %d passing instructions: %s" (List.length !fs)
      (if !final_pass then "pass" else "fail");
    if (not !final_pass) && options.Bfs.second_phase then begin
      (* greedy composition, heaviest first, exactly like Bfs's second
         phase but over instructions *)
      let units =
        List.sort
          (fun (a, _) (b, _) ->
            match compare (count ctx b) (count ctx a) with
            | 0 -> compare (addr a) (addr b)
            | c -> c)
          !fs
      in
      let acc = ref [] in
      List.iter
        (fun (i, fl) ->
          let trial = (i, fl) :: !acc in
          if contained_eval (config_of_flagged ctx trial) then begin
            acc := trial;
            say "COMPOSE keep 0x%06x" (addr i)
          end
          else say "COMPOSE drop 0x%06x" (addr i))
        units;
      fs := by_addr !acc;
      final := config_of_flagged ctx !fs;
      final_pass := true
    end;
    if !final_pass && not !interrupted then begin
      (* greedy top-up: every candidate the strategy left double gets one
         chance on top of the final set, heaviest first — each strategy
         ends maximal over the same move set, which is what makes the
         bake-off's "no worse than BFS" assertion meaningful *)
      let missing = by_count_desc ctx (diff ctx.universe (List.map fst !fs)) in
      List.iter
        (fun i ->
          let trial = (i, entry_flag ctx) :: !fs in
          if contained_eval (config_of_flagged ctx trial) then begin
            fs := by_addr trial;
            say "TOPUP keep 0x%06x" (addr i)
          end)
        missing;
      final := config_of_flagged ctx !fs;
      (* per-instruction lattice descent, cheapest format first, keeping
         the whole configuration passing after every accepted step *)
      let lower =
        List.filter (fun f -> Formats.compare_cost f ctx.entry < 0) ctx.menu
      in
      if lower <> [] then
        List.iter
          (fun (i, _) ->
            let rec try_fmts = function
              | [] -> ()
              | f :: rest ->
                  let trial =
                    List.map
                      (fun (j, fl) ->
                        if addr j = addr i then (j, Config.of_format f)
                        else (j, fl))
                      !fs
                  in
                  if contained_eval (config_of_flagged ctx trial) then begin
                    fs := trial;
                    say "LATTICE 0x%06x descends to %s" (addr i)
                      (Formats.name f)
                  end
                  else try_fmts rest
            in
            try_fmts lower)
          !fs;
      final := config_of_flagged ctx !fs
    end;
    save_snapshot !state;
    let replaced info =
      match Config.effective !final info with
      | Config.Single | Config.Fmt _ -> true
      | Config.Double | Config.Ignore -> false
    in
    let n_candidates = List.length ctx.universe in
    let static_replaced = List.length (List.filter replaced ctx.universe) in
    let dyn_num, dyn_den =
      Array.fold_left
        (fun (num, den) (info : Static.insn_info) ->
          let c = ctx.counts.(info.Static.addr) in
          ((if replaced info then num + c else num), den + c))
        (0, 0)
        (Static.candidates target.Bfs.Target.program)
    in
    drain_pool ();
    {
      Bfs.final = !final;
      final_pass = !final_pass;
      candidates = n_candidates;
      tested = !tested;
      static_replaced;
      static_pct =
        Stats.percent (float_of_int static_replaced) (float_of_int n_candidates);
      dynamic_pct =
        Stats.percent (float_of_int dyn_num) (float_of_int dyn_den);
      passing_nodes = List.map (fun (i, _) -> Static.Insn i) !fs;
      passing_flags = List.map (fun (i, fl) -> (Static.Insn i, fl)) !fs;
      bits_saved = Config.bits_saved target.Bfs.Target.program !final;
      log = List.rev !log;
      supervisor = Option.map Pool.stats pool;
      snapshots = !snapshots;
      pruned = 0;
      interrupted = !interrupted;
    }
  in
  match transient_pool with
  | None -> run ()
  | Some p -> Fun.protect ~finally:(fun () -> Pool.shutdown p) run

let run ?(options = Bfs.default_options) token target =
  match machine token with
  | None ->
      (* bfs IS the pre-strategy search: same moves, same journal, same
         checkpoints, same result, byte-for-byte *)
      Bfs.search ~options target
  | Some m -> run_machine m ~options target
