type tgt = Old of int | New of int
type pterm = PJmp of tgt | PBr of int * tgt * tgt | PRet

type out_block = {
  label : int;
  mutable rev_instrs : Ir.instr list;
  mutable term : pterm;
}

let with_prec (op : Ir.op) (p : Ir.prec) : Ir.op =
  match op with
  | Fbin (_, o, d, a, b) -> Fbin (p, o, d, a, b)
  | Fbinp (_, o, d, a, b) -> Fbinp (p, o, d, a, b)
  | Funop (_, o, d, a) -> Funop (p, o, d, a)
  | Flibm (_, o, d, a) -> Flibm (p, o, d, a)
  | Fcmp (_, c, d, a, b) -> Fcmp (p, c, d, a, b)
  | Fconst (_, d, x) -> Fconst (p, d, x)
  | Fcvt_i2f (_, d, a) -> Fcvt_i2f (p, d, a)
  | Fcvt_f2i (_, d, a) -> Fcvt_f2i (p, d, a)
  | _ -> invalid_arg "Patcher.with_prec: not a candidate op"

let dedup regs =
  List.fold_left (fun acc r -> if List.mem r acc then acc else r :: acc) [] regs
  |> List.rev

let patch ?(dataflow = false) (prog : Ir.program) (cfg : Config.t) : Ir.program =
  let df = if dataflow then Some (Dataflow.analyze prog cfg) else None in
  let next_addr = ref (Static.max_addr prog + 1) in
  let fresh_addr () =
    let a = !next_addr in
    incr next_addr;
    a
  in
  let next_label =
    ref
      (1
      + Array.fold_left
          (fun acc (f : Ir.func) ->
            Array.fold_left (fun acc (b : Ir.block) -> max acc b.label) acc f.blocks)
          0 prog.funcs)
  in
  let fresh_label () =
    let l = !next_label in
    incr next_label;
    l
  in
  let patch_func (f : Ir.func) : Ir.func =
    let tf = f.n_iregs in
    (* scratch register for flag tests *)
    let out : out_block list ref = ref [] in
    let n_out = ref 0 in
    let first_chunk = Array.make (Array.length f.blocks) 0 in
    let cur = ref { label = 0; rev_instrs = []; term = PRet } in
    let push_block label =
      let b = { label; rev_instrs = []; term = PRet } in
      let idx = !n_out in
      out := b :: !out;
      incr n_out;
      cur := b;
      idx
    in
    let emit op = !cur.rev_instrs <- { Ir.addr = fresh_addr (); op } :: !cur.rev_instrs in
    let emit_instr (i : Ir.instr) = !cur.rev_instrs <- i :: !cur.rev_instrs in
    (* One operand check-and-convert diamond (the Fig.-6 template's per-input
       sequence, as explicit control flow per Fig. 7). With the static
       data-flow optimization, definite operand states collapse the diamond
       to an unconditional conversion or remove it entirely (paper §2.5). *)
    let rec check_operand ?(addr = -1) (flag : Config.flag) r =
      let st =
        match df with
        | Some t when addr >= 0 -> Dataflow.operand_state t ~addr ~reg:r
        | _ -> Dataflow.Either
      in
      (* lattice formats carry the same replaced-encoding operand contract
         as Single: operands arrive as binary32 sentinel payloads *)
      match (flag, st) with
      | (Config.Single | Config.Fmt _), (Dataflow.Repl | Dataflow.Bot) ->
          () (* already replaced *)
      | Config.Double, (Dataflow.Plain | Dataflow.Bot) -> () (* already plain *)
      | (Config.Single | Config.Fmt _), Dataflow.Plain -> emit (Ir.Fdowncast (r, r))
      | Config.Double, Dataflow.Repl -> emit (Ir.Fupcast (r, r))
      | (Config.Single | Config.Double | Config.Fmt _), Dataflow.Either ->
          check_operand_full flag r
      | Config.Ignore, _ -> assert false
    and check_operand_full (flag : Config.flag) r =
      emit (Ir.Ftestflag (tf, r));
      let prev = !cur in
      let conv_idx = !n_out in
      let _ = push_block (fresh_label ()) in
      let conv = !cur in
      let cont_idx = !n_out in
      let _ = push_block (fresh_label ()) in
      let cont_blk = !cur in
      (match flag with
      | Config.Single | Config.Fmt _ ->
          (* replaced? skip : downcast *)
          prev.term <- PBr (tf, New cont_idx, New conv_idx);
          cur := conv;
          emit (Ir.Fdowncast (r, r))
      | Config.Double ->
          (* replaced? upcast : skip *)
          prev.term <- PBr (tf, New conv_idx, New cont_idx);
          cur := conv;
          emit (Ir.Fupcast (r, r))
      | Config.Ignore -> assert false);
      conv.term <- PJmp (New cont_idx);
      cur := cont_blk
    in
    Array.iteri
      (fun k (b : Ir.block) ->
        first_chunk.(k) <- push_block b.label;
        Array.iter
          (fun (i : Ir.instr) ->
            if not (Ir.is_candidate i.op) then emit_instr i
            else begin
              let info : Static.insn_info =
                {
                  addr = i.addr;
                  fid = f.fid;
                  fname = f.fname;
                  module_name = f.module_name;
                  block_label = b.label;
                  disasm = "";
                }
              in
              match Config.effective cfg info with
              | Config.Ignore -> emit_instr i
              | Config.Single as flag ->
                  List.iter (check_operand ~addr:i.addr flag) (dedup (Ir.used_fregs i.op));
                  emit_instr { i with op = with_prec i.op S }
              | Config.Double as flag ->
                  List.iter (check_operand ~addr:i.addr flag) (dedup (Ir.used_fregs i.op));
                  emit_instr { i with op = with_prec i.op D }
              | Config.Fmt fmt as flag ->
                  (* same operand diamond as Single; only the op's result
                     rounding differs, via the E precision *)
                  List.iter (check_operand ~addr:i.addr flag) (dedup (Ir.used_fregs i.op));
                  emit_instr
                    { i with op = with_prec i.op (E (fmt.Formats.ebits, fmt.Formats.mbits)) }
            end)
          b.instrs;
        !cur.term <-
          (match b.term with
          | Jmp t -> PJmp (Old t)
          | Br (r, t, e) -> PBr (r, Old t, Old e)
          | Ret -> PRet))
      f.blocks;
    let out_blocks = Array.of_list (List.rev !out) in
    let resolve = function Old k -> first_chunk.(k) | New j -> j in
    let blocks =
      Array.map
        (fun ob ->
          {
            Ir.label = ob.label;
            instrs = Array.of_list (List.rev ob.rev_instrs);
            term =
              (match ob.term with
              | PJmp t -> Ir.Jmp (resolve t)
              | PBr (r, t, e) -> Ir.Br (r, resolve t, resolve e)
              | PRet -> Ir.Ret);
          })
        out_blocks
    in
    { f with n_iregs = f.n_iregs + 1; entry = first_chunk.(f.entry); blocks }
  in
  Ir.validate_exn { prog with funcs = Array.map patch_func prog.funcs }

let snippet_listing () =
  let t = Builder.create () in
  let base = Builder.alloc_f t 3 in
  let main =
    Builder.func t ~module_:"demo" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let x = Builder.loadf b (Builder.at base) in
        let y = Builder.loadf b (Builder.at (base + 1)) in
        let z = Builder.fadd b x y in
        Builder.storef b (Builder.at (base + 2)) z)
  in
  let prog = Builder.program t ~main in
  let cand = (Static.candidates prog).(0) in
  let cfg = Config.set_insn Config.empty cand.addr Config.Single in
  let patched = patch prog cfg in
  Format.asprintf
    "original instruction: %s@.--- patched (single-precision snippet) ---@.%a" cand.disasm
    Ir.pp_program patched

let count_prog (p : Ir.program) =
  Array.fold_left
    (fun (nb, ni) (f : Ir.func) ->
      ( nb + Array.length f.blocks,
        ni
        + Array.fold_left (fun acc (b : Ir.block) -> acc + Array.length b.instrs) 0 f.blocks
      ))
    (0, 0) p.funcs

let patch_stats original patched =
  let ob, oi = count_prog original in
  let pb, pi = count_prog patched in
  let cands = Array.length (Static.candidates original) in
  Printf.sprintf
    "blocks: %d -> %d (+%d from splitting); instructions: %d -> %d (+%d snippet ops); %d candidates rewritten"
    ob pb (pb - ob) oi pi (pi - oi) cands
