type state = Bot | Plain | Repl | Either

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Plain, Plain -> Plain
  | Repl, Repl -> Repl
  | _ -> Either

let le a b = join a b = b

type t = { table : (int * int, state) Hashtbl.t }

(* Per-function summary: joined argument states over all call sites seen so
   far, and the current return-register states. *)
type summary = { mutable args : state array; mutable rets : state array }

let effective_flag (cfg : Config.t) (f : Ir.func) (b : Ir.block) (i : Ir.instr) =
  Config.effective cfg
    {
      Static.addr = i.Ir.addr;
      fid = f.Ir.fid;
      fname = f.Ir.fname;
      module_name = f.Ir.module_name;
      block_label = b.Ir.label;
      disasm = "";
    }

let analyze (prog : Ir.program) (cfg : Config.t) : t =
  let nf = Array.length prog.Ir.funcs in
  let summaries =
    Array.map
      (fun (f : Ir.func) ->
        {
          args = Array.make (max f.Ir.n_fargs 1) Bot;
          rets = Array.make (max (Array.length f.Ir.ret_fregs) 1) Bot;
        })
      prog.Ir.funcs
  in
  (* heap summary cell: data poked before the run is plain *)
  let mem = ref Plain in
  let changed = ref true in
  let table = Hashtbl.create 256 in
  let record = ref false in
  (* Transfer one instruction over a register-state array. *)
  let transfer (f : Ir.func) (b : Ir.block) (regs : state array) (i : Ir.instr) =
    let flag () = effective_flag cfg f b i in
    let force s rs = List.iter (fun r -> regs.(r) <- s) rs in
    let candidate_transfer () =
      if !record then
        List.iter
          (fun r ->
            let key = (i.Ir.addr, r) in
            let prev = try Hashtbl.find table key with Not_found -> Bot in
            Hashtbl.replace table key (join prev regs.(r)))
          (Ir.used_fregs i.Ir.op);
      match flag () with
      | Config.Single | Config.Fmt _ ->
          (* the snippet converts operands in place and flags the result;
             lattice formats share Single's replaced-encoding contract *)
          force Repl (Ir.used_fregs i.Ir.op);
          force Repl (Ir.defined_fregs i.Ir.op)
      | Config.Double ->
          force Plain (Ir.used_fregs i.Ir.op);
          force Plain (Ir.defined_fregs i.Ir.op)
      | Config.Ignore ->
          (* left untouched: a native double op; operands unchanged *)
          force Plain (Ir.defined_fregs i.Ir.op)
    in
    match i.Ir.op with
    | Fbin _ | Fbinp _ | Funop _ | Flibm _ | Fcmp _ | Fconst _ | Fcvt_i2f _ | Fcvt_f2i _ ->
        candidate_transfer ()
    | Fmov (d, a) -> regs.(d) <- regs.(a)
    | Fload (d, _) -> regs.(d) <- !mem
    | Fstore (_, a) ->
        let m = join !mem regs.(a) in
        if m <> !mem then begin
          mem := m;
          changed := true
        end
    | Call { callee; fargs; frets; _ } ->
        let s = summaries.(callee) in
        Array.iteri
          (fun k r ->
            let j = join s.args.(k) regs.(r) in
            if j <> s.args.(k) then begin
              s.args.(k) <- j;
              changed := true
            end)
          fargs;
        Array.iteri (fun k r -> regs.(r) <- s.rets.(k)) frets
    | Ibin _ | Icmp _ | Iconst _ | Imov _ | Iload _ | Istore _ -> ()
    | Ftestflag _ | Fdowncast _ | Fupcast _ | Fexpo _ ->
        (* the analysis runs on original (un-patched) programs *)
        ()
  in
  let analyze_func fid =
    let f = prog.Ir.funcs.(fid) in
    let s = summaries.(fid) in
    let nb = Array.length f.Ir.blocks in
    let entry_states = Array.init nb (fun _ -> Array.make f.Ir.n_fregs Bot) in
    (* entry block: args from the summary (unseen call sites contribute
       nothing); all other registers start as the VM's 0.0 — plain *)
    let entry0 = Array.make f.Ir.n_fregs Plain in
    for k = 0 to f.Ir.n_fargs - 1 do
      entry0.(k) <- (if s.args.(k) = Bot then Plain else s.args.(k))
    done;
    entry_states.(f.Ir.entry) <- entry0;
    let in_work = Array.make nb false in
    let work = Queue.create () in
    Queue.add f.Ir.entry work;
    in_work.(f.Ir.entry) <- true;
    let rets = Array.make (Array.length f.Ir.ret_fregs) Bot in
    while not (Queue.is_empty work) do
      let bi = Queue.pop work in
      in_work.(bi) <- false;
      let b = f.Ir.blocks.(bi) in
      let regs = Array.copy entry_states.(bi) in
      Array.iter (transfer f b regs) b.Ir.instrs;
      let push tgt =
        let dst = entry_states.(tgt) in
        let grew = ref false in
        Array.iteri
          (fun k v ->
            let j = join dst.(k) v in
            if j <> dst.(k) then begin
              dst.(k) <- j;
              grew := true
            end)
          regs;
        if !grew && not in_work.(tgt) then begin
          in_work.(tgt) <- true;
          Queue.add tgt work
        end
      in
      match b.Ir.term with
      | Jmp t -> push t
      | Br (_, t, e) ->
          push t;
          push e
      | Ret -> Array.iteri (fun k r -> rets.(k) <- join rets.(k) regs.(r)) f.Ir.ret_fregs
    done;
    Array.iteri
      (fun k v ->
        let j = join s.rets.(k) v in
        if j <> s.rets.(k) then begin
          s.rets.(k) <- j;
          changed := true
        end)
      rets
  in
  (* outer fix point over function summaries and the heap cell *)
  let rounds = ref 0 in
  while !changed && !rounds < 4 * (nf + 2) do
    changed := false;
    incr rounds;
    for fid = 0 to nf - 1 do
      analyze_func fid
    done
  done;
  (* one stable recording pass *)
  record := true;
  for fid = 0 to nf - 1 do
    analyze_func fid
  done;
  { table }

let operand_state t ~addr ~reg =
  match Hashtbl.find_opt t.table (addr, reg) with
  | Some s -> s
  | None -> Either

let dedup regs =
  List.fold_left (fun acc r -> if List.mem r acc then acc else r :: acc) [] regs
  |> List.rev

let checks_removable t (prog : Ir.program) (cfg : Config.t) =
  let removable = ref 0 and total = ref 0 in
  Array.iter
    (fun (f : Ir.func) ->
      Array.iter
        (fun (b : Ir.block) ->
          Array.iter
            (fun (i : Ir.instr) ->
              if Ir.is_candidate i.Ir.op then
                match effective_flag cfg f b i with
                | Config.Ignore -> ()
                | Config.Single | Config.Double | Config.Fmt _ ->
                    List.iter
                      (fun r ->
                        incr total;
                        if operand_state t ~addr:i.Ir.addr ~reg:r <> Either then
                          incr removable)
                      (dedup (Ir.used_fregs i.Ir.op)))
            b.Ir.instrs)
        f.Ir.blocks)
    prog.Ir.funcs;
  (!removable, !total)

(* keep the unused-value warning away for `le` which documents the lattice *)
let _ = le
