let with_prec = Patcher.with_prec

let map_candidates (p : Ir.program) choose =
  let funcs =
    Array.map
      (fun (f : Ir.func) ->
        let blocks =
          Array.map
            (fun (b : Ir.block) ->
              let instrs =
                Array.map
                  (fun (i : Ir.instr) ->
                    if Ir.is_candidate i.op then
                      match choose f b i with
                      | Some prec -> { i with Ir.op = with_prec i.op prec }
                      | None -> i
                    else i)
                  b.instrs
              in
              { b with Ir.instrs })
            f.blocks
        in
        { f with Ir.blocks })
      p.funcs
  in
  Ir.validate_exn { p with funcs }

let convert p = map_candidates p (fun _ _ _ -> Some Ir.S)

let convert_config p cfg =
  map_candidates p (fun f b i ->
      let info : Static.insn_info =
        {
          addr = i.addr;
          fid = f.fid;
          fname = f.fname;
          module_name = f.module_name;
          block_label = b.label;
          disasm = "";
        }
      in
      match Config.effective cfg info with
      | Config.Single -> Some Ir.S
      | Config.Fmt f -> Some (Ir.E (f.Formats.ebits, f.Formats.mbits))
      | Config.Double | Config.Ignore -> None)
