(** Shadow-value precision tracer (the profiling half of [lib/shadow]).

    One native (all-double) run, instrumented through {!Vm.add_hook},
    carries a complete parallel state: every float register of every live
    call frame and every float-heap slot has a {e shadow} computed through
    the same operations but in the precision a candidate configuration
    assigns to each instruction — by default, binary32 everywhere. The
    divergence between shadow and actual value, accumulated per
    instruction, prices how sensitive each candidate is to single
    precision {e without} running a patched binary per candidate.

    The shadow follows the native control flow (branches, effective
    addresses and trip counts come from the actual execution). Where
    single-precision execution would have taken a different path — a
    comparison or float→int conversion whose shadow outcome differs — a
    {e flip} is counted instead; predictions downstream of a flip are
    unreliable and {!Shadow_report} treats flips as disqualifying.

    Call frames are tracked by the physical identity of the VM's register
    arrays ({!Vm.t.cur_fregs}): no interpreter cooperation, and the
    fault-injection hook of {!Faults} composes with the tracer through the
    ordered hook list. *)

type insn_stats = {
  mutable execs : int;  (** value observations (packed ops count per lane) *)
  mutable sum_rel : float;  (** sum of per-observation relative divergence *)
  mutable max_rel : float;  (** worst observed relative divergence *)
  mutable max_local : float;
      (** worst {e locally introduced} rounding error: the instruction's
          configured-precision result against the infinitely-better
          (double) result {e on the same shadow operands}. Exactly 0 for
          instructions configured [Double] — the soundness property the
          test suite pins. *)
  mutable max_mag : float;  (** largest operand magnitude seen *)
  mutable cancels : int;  (** additions/subtractions that cancelled ≥10 bits *)
  mutable cancel_blowups : int;
      (** cancellations whose result divergence far exceeded the divergence
          the operands brought in — error amplification events *)
  mutable flips : int;  (** control-relevant outcome differences (Fcmp, Fcvt_f2i) *)
}

type t

val all_single : ?base:Config.t -> Ir.program -> Config.t
(** The default shadow configuration: every candidate single, except
    candidates whose effective flag under [base] is [Ignore] (hint sets
    mark those as must-stay-exact; their shadow computes in double). *)

val all_format : ?base:Config.t -> Formats.t -> Ir.program -> Config.t
(** Like {!all_single} but every non-[Ignore] candidate carries [fmt] —
    the lowest-format shadow used by lattice-aware analyses. [fmt] equal
    to {!Formats.single} reproduces {!all_single} exactly. *)

val create : ?config:Config.t -> ?fmt:Formats.t -> Ir.program -> t
(** Fresh tracer. [config] assigns each candidate the precision its shadow
    computes in (default {!all_single}); [Double]-flagged instructions
    propagate shadows exactly and accumulate zero divergence. [fmt] is a
    shorthand for [~config:(all_format fmt prog)] — it is an error to pass
    both. *)

val attach : t -> Vm.t -> int
(** Install the tracer on a VM (resets any previous trace state); returns
    the hook id ({!Vm.remove_hook}). The shadow heap is initialized from
    the VM's float heap at the first executed instruction, so call it any
    time before [Vm.run] — including before heap setup. *)

val trace : ?checked:bool -> ?smode:Vm.smode -> t -> setup:(Vm.t -> unit) -> Vm.t
(** Convenience: create a VM, run [setup], attach, run to completion, and
    return the finished VM. *)

val stats : t -> insn_stats array
(** Per-instruction accumulators, indexed by instruction address. *)

val shadow_heap : t -> float array
(** The shadow float heap after (or during) a trace — what the program's
    outputs would have been had every [Single]-configured instruction
    computed in binary32. The differential soundness test checks this
    against an actual {!To_single} converted run. *)

val observations : t -> int
(** Total shadow value observations across all instructions. *)

val rel : float -> float -> float
(** [rel shadow actual]: the relative-divergence metric (0 iff bit-equal
    modulo NaN; capped summation happens in the accumulators, not here).
    Exposed for tests and the aggregator. *)
