(* Shadow-value precision tracer.

   Runs alongside a native (all-double) execution through the VM's
   per-instruction hook and maintains, for every double-precision value the
   program manipulates — float registers of every live frame and every
   float-heap slot — a shadow computed through the same operations but in
   the precision a candidate configuration assigns to each instruction
   (by default: everything single). Per-instruction accumulators record
   how far the shadow drifts from the actual double value.

   The shadow world follows the NATIVE control flow: branches, addresses
   and loop trip counts come from the actual execution, so one profiling
   run prices every instruction's single-precision sensitivity without
   re-running the program per candidate. Where the shadow's control flow
   WOULD have differed (a comparison or float->int conversion whose
   shadow outcome disagrees), the event is counted as a "flip" — the
   prediction for everything data-dependent on it is suspect, and the
   aggregator treats flips as disqualifying. *)

type insn_stats = {
  mutable execs : int;
  mutable sum_rel : float;
  mutable max_rel : float;
  mutable max_local : float;
  mutable max_mag : float;
  mutable cancels : int;
  mutable cancel_blowups : int;
  mutable flips : int;
}

let fresh_stats () =
  {
    execs = 0;
    sum_rel = 0.0;
    max_rel = 0.0;
    max_local = 0.0;
    max_mag = 0.0;
    cancels = 0;
    cancel_blowups = 0;
    flips = 0;
  }

(* One shadow frame per live VM call frame. The VM allocates fresh register
   arrays per invocation, so [fr]'s physical identity ([==] against
   [Vm.cur_fregs]) identifies the frame across hook invocations — no
   cooperation from the interpreter loop needed. *)
type frame = {
  fr : float array;  (* the VM's own register array for this frame *)
  sfr : float array;  (* its shadow *)
  func : Ir.func;
  mutable pending_call : Ir.call option;
      (* set when this frame executes a Call; consumed either when the
         callee's frame is popped (shadow returns flow back) or at the next
         hook in this frame (callee executed no instructions — resync the
         return registers from the actual values) *)
  mutable resync : int list;
      (* registers written by the previous instruction whose shadow the
         tracer does not model (source-level [S] ops, snippet casts):
         refreshed from the actual registers before the next observation *)
}

type t = {
  prog : Ir.program;
  fmt_at : Formats.t option array;
      (* per addr: the reduced format the shadow computes in here; [None]
         means the shadow stays in binary64 (Double/Ignore decisions) *)
  op_at : Ir.op option array;
  fid_at : int array;
  stats : insn_stats array;
  mutable sheap : float array;
  mutable primed : bool;
  mutable stack : frame list;  (* innermost frame first *)
}

let all_single ?(base = Config.empty) prog =
  Array.fold_left
    (fun cfg (info : Static.insn_info) ->
      match Config.effective base info with
      | Config.Ignore -> cfg
      | Config.Single | Config.Double | Config.Fmt _ ->
          Config.set_insn cfg info.addr Config.Single)
    base (Static.candidates prog)

(* Like [all_single] but predicting an arbitrary lattice format — the
   "lowest-format shadow" that seeds lattice descent. *)
let all_format ?(base = Config.empty) fmt prog =
  let flag = Config.of_format fmt in
  Array.fold_left
    (fun cfg (info : Static.insn_info) ->
      match Config.effective base info with
      | Config.Ignore -> cfg
      | Config.Single | Config.Double | Config.Fmt _ -> Config.set_insn cfg info.addr flag)
    base (Static.candidates prog)

let create ?config ?fmt (prog : Ir.program) =
  let config =
    match (config, fmt) with
    | Some c, _ -> c
    | None, None -> all_single prog
    | None, Some f -> all_format f prog
  in
  let n = Static.max_addr prog + 1 in
  let fmt_at = Array.make n None in
  Array.iter
    (fun (info : Static.insn_info) ->
      match Config.effective config info with
      | Config.Single -> fmt_at.(info.addr) <- Some Formats.single
      | Config.Fmt f -> fmt_at.(info.addr) <- Some f
      | Config.Double | Config.Ignore -> ())
    (Static.candidates prog);
  let op_at = Array.make n None in
  let fid_at = Array.make n (-1) in
  Array.iteri
    (fun fid (f : Ir.func) ->
      Array.iter
        (fun (b : Ir.block) ->
          Array.iter
            (fun (i : Ir.instr) ->
              op_at.(i.addr) <- Some i.op;
              fid_at.(i.addr) <- fid)
            b.instrs)
        f.blocks)
    prog.funcs;
  {
    prog;
    fmt_at;
    op_at;
    fid_at;
    stats = Array.init n (fun _ -> fresh_stats ());
    sheap = [||];
    primed = false;
    stack = [];
  }

(* ---- divergence metrics ------------------------------------------------ *)

(* Relative divergence of shadow [s] against actual [d]. Exact equality
   (including equal infinities) is 0 — the property the soundness test
   relies on: a fully-double shadow is bit-identical, never approximately
   so. Divergences are capped so accumulators stay finite. *)
let rel_cap = 1e12

let rel s d =
  if s = d then 0.0
  else if Float.is_nan s && Float.is_nan d then 0.0
  else if not (Float.is_finite s && Float.is_finite d) then infinity
  else if d = 0.0 then Float.abs s
  else Float.abs (s -. d) /. Float.abs d

(* An addition/subtraction cancelled when the result lost at least 10
   binary orders of magnitude against the larger operand. *)
let cancel_bits = 10

let cancelled dres mag = mag > 0.0 && Float.is_finite dres && Float.abs dres < mag *. (1.0 /. float_of_int (1 lsl cancel_bits))

(* A cancellation "blowup": the result's divergence is far beyond what the
   operands brought in — the event amplified existing rounding error. *)
let blowup_factor = 16.0

let observe t addr ~mag ~local ~s ~d ~cancel ~opdiv =
  let st = t.stats.(addr) in
  st.execs <- st.execs + 1;
  let r = Float.min (rel s d) rel_cap in
  let local = Float.min local rel_cap in
  st.sum_rel <- st.sum_rel +. r;
  if r > st.max_rel then st.max_rel <- r;
  if local > st.max_local then st.max_local <- local;
  if mag > st.max_mag then st.max_mag <- mag;
  if cancel then begin
    st.cancels <- st.cancels + 1;
    if r > Float.max (blowup_factor *. opdiv) 1e-12 then
      st.cancel_blowups <- st.cancel_blowups + 1
  end

let observe_flip t addr ~mag ~flipped =
  let st = t.stats.(addr) in
  st.execs <- st.execs + 1;
  if mag > st.max_mag then st.max_mag <- mag;
  if flipped then st.flips <- st.flips + 1

(* ---- operation semantics ----------------------------------------------- *)

(* Double-precision op semantics, mirroring Vm's (not exported there). *)
let fbin_d (o : Ir.fbinop) x y =
  match o with
  | Add -> x +. y
  | Sub -> x -. y
  | Mul -> x *. y
  | Div -> x /. y
  | Min -> Float.min x y
  | Max -> Float.max x y

let funop_d (o : Ir.funop) x =
  match o with Sqrt -> sqrt x | Neg -> -.x | Abs -> Float.abs x

let flibm_d (o : Ir.flibm) x =
  match o with
  | Sin -> sin x
  | Cos -> cos x
  | Tan -> tan x
  | Exp -> exp x
  | Log -> log x
  | Atan -> atan x

(* Reduced-format pipeline, mirroring Vm Plain smode and the semantics of a
   To_single-converted binary: operands round onto the format's grid, the
   operation computes in binary64, the result rounds back. For
   [Formats.single] this is bit-identical to the historical F32 pipeline
   (every F32 op is the binary32 round of the host double op, and
   [Formats.round Formats.single] delegates to [F32.round]). *)
let fbin_f fmt (o : Ir.fbinop) x y =
  let x = Formats.round fmt x and y = Formats.round fmt y in
  Formats.round fmt (fbin_d o x y)

let funop_f fmt (o : Ir.funop) x =
  let x = Formats.round fmt x in
  Formats.round fmt (funop_d o x)

let flibm_f fmt (o : Ir.flibm) x =
  let x = Formats.round fmt x in
  Formats.round fmt (flibm_d o x)

let cmp (c : Ir.cmpop) (x : float) (y : float) =
  let b =
    match c with
    | Eq -> x = y
    | Ne -> x <> y
    | Lt -> x < y
    | Le -> x <= y
    | Gt -> x > y
    | Ge -> x >= y
  in
  if b then 1 else 0

(* ---- frame tracking ---------------------------------------------------- *)

let flush_resync (frame : frame) =
  match frame.resync with
  | [] -> ()
  | rs ->
      List.iter (fun r -> frame.sfr.(r) <- frame.fr.(r)) rs;
      frame.resync <- []

(* Pop [top]: its function returned. Resync any trailing untraced writes,
   then flow its shadow return registers into the caller's pending call. *)
let pop_frame (top : frame) (caller : frame) =
  flush_resync top;
  match caller.pending_call with
  | Some call ->
      Array.iteri
        (fun k r ->
          if k < Array.length top.func.ret_fregs then
            caller.sfr.(r) <- top.sfr.(top.func.ret_fregs.(k)))
        call.frets;
      caller.pending_call <- None
  | None -> ()

let push_frame t (fr : float array) addr =
  let fid = t.fid_at.(addr) in
  let func = t.prog.funcs.(fid) in
  (* default shadow = the actual entry values (argument slots were blitted,
     the rest are zeros — both exact); when the caller's pending call
     matches, the argument slots take the caller's shadows instead *)
  let sfr = Array.copy fr in
  (match t.stack with
  | { pending_call = Some call; sfr = caller_sfr; _ } :: _ when call.callee = fid ->
      Array.iteri (fun k r -> sfr.(k) <- caller_sfr.(r)) call.fargs
  | _ -> ());
  t.stack <- { fr; sfr; func; pending_call = None; resync = [] } :: t.stack

(* Re-point the shadow stack at the frame the VM is actually executing. *)
let sync t (vm : Vm.t) addr =
  let fr = vm.Vm.cur_fregs in
  let rec unwind () =
    match t.stack with
    | top :: _ when top.fr == fr -> ()
    | top :: (caller :: _ as rest) when List.exists (fun (g : frame) -> g.fr == fr) rest ->
        t.stack <- rest;
        pop_frame top caller;
        unwind ()
    | _ -> push_frame t fr addr
  in
  unwind ();
  (* still in the same frame with a call pending: the callee executed no
     instructions (the tracer never saw it) — trust the actual returns *)
  match t.stack with
  | ({ pending_call = Some call; _ } as top) :: _ when top.fr == fr ->
      Array.iter (fun r -> top.sfr.(r) <- fr.(r)) call.frets;
      top.pending_call <- None
  | _ -> ()

(* ---- per-instruction processing ---------------------------------------- *)

let eaddr (ir : int array) ({ base; index; scale; offset } : Ir.mem) bound =
  let a =
    offset
    + (match base with Some r -> ir.(r) | None -> 0)
    + (match index with Some r -> ir.(r) * scale | None -> 0)
  in
  if a < 0 || a >= bound then None else Some a

let process t (vm : Vm.t) (frame : frame) addr (op : Ir.op) =
  let fr = frame.fr and sfr = frame.sfr in
  let sfmt = t.fmt_at.(addr) in
  let defer r = frame.resync <- r :: frame.resync in
  match op with
  | Fbin (D, o, d, a, b) ->
      let da = fr.(a) and db = fr.(b) in
      let sa = sfr.(a) and sb = sfr.(b) in
      let dres = fbin_d o da db in
      let sres, local =
        match sfmt with
        | Some f ->
            let s = fbin_f f o sa sb in
            (s, rel s (fbin_d o sa sb))
        | None -> (fbin_d o sa sb, 0.0)
      in
      sfr.(d) <- sres;
      let mag = Float.max (Float.abs da) (Float.abs db) in
      let opdiv = Float.max (rel sa da) (rel sb db) in
      let cancel = (match o with Add | Sub -> cancelled dres mag | _ -> false) in
      observe t addr ~mag ~local ~s:sres ~d:dres ~cancel ~opdiv
  | Fbinp (D, o, d, a, b) ->
      for lane = 0 to 1 do
        let da = fr.(a + lane) and db = fr.(b + lane) in
        let sa = sfr.(a + lane) and sb = sfr.(b + lane) in
        let dres = fbin_d o da db in
        let sres, local =
          match sfmt with
          | Some f ->
              let s = fbin_f f o sa sb in
              (s, rel s (fbin_d o sa sb))
          | None -> (fbin_d o sa sb, 0.0)
        in
        sfr.(d + lane) <- sres;
        let mag = Float.max (Float.abs da) (Float.abs db) in
        let opdiv = Float.max (rel sa da) (rel sb db) in
        let cancel = (match o with Add | Sub -> cancelled dres mag | _ -> false) in
        observe t addr ~mag ~local ~s:sres ~d:dres ~cancel ~opdiv
      done
  | Funop (D, o, d, a) ->
      let da = fr.(a) and sa = sfr.(a) in
      let dres = funop_d o da in
      let sres, local =
        match sfmt with
        | Some f ->
            let s = funop_f f o sa in
            (s, rel s (funop_d o sa))
        | None -> (funop_d o sa, 0.0)
      in
      sfr.(d) <- sres;
      observe t addr ~mag:(Float.abs da) ~local ~s:sres ~d:dres ~cancel:false
        ~opdiv:(rel sa da)
  | Flibm (D, o, d, a) ->
      let da = fr.(a) and sa = sfr.(a) in
      let dres = flibm_d o da in
      let sres, local =
        match sfmt with
        | Some f ->
            let s = flibm_f f o sa in
            (s, rel s (flibm_d o sa))
        | None -> (flibm_d o sa, 0.0)
      in
      sfr.(d) <- sres;
      observe t addr ~mag:(Float.abs da) ~local ~s:sres ~d:dres ~cancel:false
        ~opdiv:(rel sa da)
  | Fcmp (D, c, d, a, b) ->
      ignore d;
      let actual = cmp c fr.(a) fr.(b) in
      let shadow =
        match sfmt with
        | Some f -> cmp c (Formats.round f sfr.(a)) (Formats.round f sfr.(b))
        | None -> cmp c sfr.(a) sfr.(b)
      in
      observe_flip t addr
        ~mag:(Float.max (Float.abs fr.(a)) (Float.abs fr.(b)))
        ~flipped:(actual <> shadow)
  | Fconst (D, d, x) ->
      let sres = match sfmt with Some f -> Formats.round f x | None -> x in
      sfr.(d) <- sres;
      observe t addr ~mag:(Float.abs x) ~local:(rel sres x) ~s:sres ~d:x ~cancel:false
        ~opdiv:0.0
  | Fcvt_i2f (D, d, a) ->
      let x = float_of_int vm.Vm.cur_iregs.(a) in
      let sres = match sfmt with Some f -> Formats.round f x | None -> x in
      sfr.(d) <- sres;
      observe t addr ~mag:(Float.abs x) ~local:(rel sres x) ~s:sres ~d:x ~cancel:false
        ~opdiv:0.0
  | Fcvt_f2i (D, d, a) ->
      ignore d;
      let da = fr.(a) and sa = sfr.(a) in
      let actual = int_of_float da in
      let shadow =
        int_of_float (match sfmt with Some f -> Formats.round f sa | None -> sa)
      in
      observe_flip t addr ~mag:(Float.abs da) ~flipped:(actual <> shadow)
  | Fmov (d, a) -> sfr.(d) <- sfr.(a)
  | Fload (d, m) -> (
      match eaddr vm.Vm.cur_iregs m (Array.length t.sheap) with
      | Some ea -> sfr.(d) <- t.sheap.(ea)
      | None -> () (* the VM traps on this instruction *))
  | Fstore (m, a) -> (
      match eaddr vm.Vm.cur_iregs m (Array.length t.sheap) with
      | Some ea -> t.sheap.(ea) <- sfr.(a)
      | None -> ())
  | Call c -> frame.pending_call <- Some c
  (* source-level reduced ops (single or lattice) and snippet casts write
     values the shadow does not model (replaced encodings); refresh from
     the actual register at the next observation point in this frame *)
  | Fbin ((S | E _), _, d, _, _) -> defer d
  | Fbinp ((S | E _), _, d, _, _) ->
      defer d;
      defer (d + 1)
  | Funop ((S | E _), _, d, _) -> defer d
  | Flibm ((S | E _), _, d, _) -> defer d
  | Fconst ((S | E _), d, _) -> defer d
  | Fcvt_i2f ((S | E _), d, _) -> defer d
  | Fdowncast (d, _) -> defer d
  | Fupcast (d, _) -> defer d
  | Fcmp ((S | E _), _, _, _, _) | Fcvt_f2i ((S | E _), _, _) -> ()
  | Ibin _ | Icmp _ | Iconst _ | Imov _ | Iload _ | Istore _ -> ()
  | Ftestflag _ | Fexpo _ -> ()

let hook t (vm : Vm.t) addr =
  if not t.primed then begin
    t.sheap <- Array.copy vm.Vm.fheap;
    t.primed <- true
  end;
  sync t vm addr;
  match t.stack with
  | frame :: _ ->
      flush_resync frame;
      (match t.op_at.(addr) with Some op -> process t vm frame addr op | None -> ())
  | [] -> ()

let attach t vm =
  t.sheap <- [||];
  t.primed <- false;
  t.stack <- [];
  Vm.add_hook vm (fun vm addr -> hook t vm addr)

let trace ?checked ?smode t ~setup =
  let vm = Vm.create ?checked ?smode t.prog in
  setup vm;
  let (_ : int) = attach t vm in
  Vm.run vm;
  vm

let stats t = t.stats

let shadow_heap t =
  (* trailing resyncs and shadow returns of frames that were live when the
     run ended are irrelevant to the heap: stores flow through [sheap]
     directly *)
  t.sheap

let observations t =
  Array.fold_left (fun acc st -> acc + st.execs) 0 t.stats
