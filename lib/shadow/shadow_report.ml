(* Aggregation of shadow-tracer accumulators up the Config structure
   hierarchy (instruction -> block -> function -> module), prediction of a
   passing configuration, and ranking of candidates by predicted
   tolerance. *)

type node_stats = {
  insns : int;
  observed : int;
  execs : int;
  max_rel : float;
  mean_rel : float;
  max_local : float;
  max_mag : float;
  cancels : int;
  cancel_blowups : int;
  flips : int;
}

type t = {
  program : Ir.program;
  base : Config.t;
  threshold : float;
  stats : Shadow_tracer.insn_stats array;
}

let default_threshold = 1e-8

let make ?(threshold = default_threshold) ?(base = Config.empty) program tracer =
  { program; base; threshold; stats = Shadow_tracer.stats tracer }

let threshold t = t.threshold
let base t = t.base

let stat_at t addr =
  if addr >= 0 && addr < Array.length t.stats then Some t.stats.(addr) else None

let max_rel_at t addr =
  match stat_at t addr with Some st -> st.Shadow_tracer.max_rel | None -> 0.0

let flips_at t addr =
  match stat_at t addr with Some st -> st.Shadow_tracer.flips | None -> 0

(* Candidates the search can actually flip: effective base flag <> Ignore. *)
let live_insns t node =
  List.filter
    (fun (i : Static.insn_info) -> Config.effective t.base i <> Config.Ignore)
    (Static.node_insns node)

let divergence t insns =
  List.fold_left (fun acc (i : Static.insn_info) -> Float.max acc (max_rel_at t i.addr)) 0.0 insns

let has_flips t insns =
  List.exists (fun (i : Static.insn_info) -> flips_at t i.addr > 0) insns

let node_stats t node =
  let insns = live_insns t node in
  let z =
    {
      insns = List.length insns;
      observed = 0;
      execs = 0;
      max_rel = 0.0;
      mean_rel = 0.0;
      max_local = 0.0;
      max_mag = 0.0;
      cancels = 0;
      cancel_blowups = 0;
      flips = 0;
    }
  in
  let acc, sum =
    List.fold_left
      (fun (acc, sum) (i : Static.insn_info) ->
        match stat_at t i.addr with
        | None -> (acc, sum)
        | Some st ->
            ( {
                acc with
                observed = (acc.observed + if st.execs > 0 then 1 else 0);
                execs = acc.execs + st.execs;
                max_rel = Float.max acc.max_rel st.max_rel;
                max_local = Float.max acc.max_local st.max_local;
                max_mag = Float.max acc.max_mag st.max_mag;
                cancels = acc.cancels + st.cancels;
                cancel_blowups = acc.cancel_blowups + st.cancel_blowups;
                flips = acc.flips + st.flips;
              },
              sum +. st.sum_rel ))
      (z, 0.0) insns
  in
  { acc with mean_rel = (if acc.execs > 0 then sum /. float_of_int acc.execs else 0.0) }

(* A node qualifies for the predicted configuration when every live
   candidate in it stayed below the divergence threshold and no
   control-flow flip was observed anywhere inside. Unexecuted instructions
   have zero recorded divergence and qualify — they cannot have hurt the
   traced inputs, and the predicted configuration is verified by a real
   evaluation before the search trusts it. *)
let node_predicted t node =
  let insns = live_insns t node in
  insns <> []
  && (not (has_flips t insns))
  && divergence t insns <= t.threshold

let children = function
  | Static.Module (_, cs) | Static.Func (_, _, cs) | Static.Block (_, cs) -> cs
  | Static.Insn _ -> []

(* Maximal qualifying nodes: a qualifying node subsumes its children. *)
let predicted_nodes t =
  let rec walk acc node =
    if live_insns t node = [] then acc
    else if node_predicted t node then node :: acc
    else List.fold_left walk acc (children node)
  in
  List.rev (List.fold_left walk [] (Static.tree t.program))

(* The predicted configuration, expressed at instruction granularity so
   [Ignore] hints in [base] keep their override-free meaning. *)
let predicted t =
  List.fold_left
    (fun cfg node ->
      List.fold_left
        (fun cfg (i : Static.insn_info) -> Config.set_insn cfg i.addr Config.Single)
        cfg (live_insns t node))
    t.base (predicted_nodes t)

(* Every structure node with live candidates, most tolerant first. *)
let ranked t =
  let rec collect acc node =
    if live_insns t node = [] then acc
    else
      let d = if has_flips t (live_insns t node) then infinity else divergence t (live_insns t node) in
      List.fold_left collect ((node, d) :: acc) (children node)
  in
  let all = List.fold_left collect [] (Static.tree t.program) in
  List.stable_sort (fun (_, a) (_, b) -> Float.compare a b) (List.rev all)

(* ---- rendering --------------------------------------------------------- *)

let fmt_div d =
  if d = 0.0 then "0"
  else if Float.is_finite d then Printf.sprintf "%.2e" d
  else "inf"

let render t =
  let buf = Buffer.create 4096 in
  let line depth node =
    let insns = live_insns t node in
    if insns = [] then ()
    else begin
      let st = node_stats t node in
      let mark = if node_predicted t node then 's' else 'd' in
      Buffer.add_string buf
        (Printf.sprintf "%c %s%s  [insns %d  execs %d  worst %s  mean %s  cancel %d/%d  flips %d]\n"
           mark
           (String.make (2 * depth) ' ')
           (Static.node_name node) st.insns st.execs (fmt_div st.max_rel)
           (fmt_div st.mean_rel) st.cancels st.cancel_blowups st.flips)
    end
  in
  let rec walk depth node =
    line depth node;
    (* a predicted aggregate subsumes its children: stop detailing *)
    if not (node_predicted t node) then List.iter (walk (depth + 1)) (children node)
  in
  Buffer.add_string buf
    (Printf.sprintf "shadow analysis  [threshold %s; s = predicted single]\n" (fmt_div t.threshold));
  List.iter (walk 0) (Static.tree t.program);
  let pred = predicted_nodes t in
  let pred_insns = List.fold_left (fun acc n -> acc + List.length (live_insns t n)) 0 pred in
  let total = Array.length (Static.candidates t.program) in
  Buffer.add_string buf
    (Printf.sprintf "predicted single: %d structure(s), %d/%d candidate instruction(s)\n"
       (List.length pred) pred_insns total);
  Buffer.contents buf

(* ---- JSON export ------------------------------------------------------- *)

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6e" f
  else if f > 0.0 then "1.0e308"
  else if f < 0.0 then "-1.0e308"
  else "0.0"

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let node_kind = function
  | Static.Module _ -> "module"
  | Static.Func _ -> "func"
  | Static.Block _ -> "block"
  | Static.Insn _ -> "insn"

let to_json t =
  let buf = Buffer.create 8192 in
  let pred = predicted_nodes t in
  let pred_insns = List.fold_left (fun acc n -> acc + List.length (live_insns t n)) 0 pred in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"threshold\": %s,\n" (json_float t.threshold));
  Buffer.add_string buf
    (Printf.sprintf "  \"candidates\": %d,\n" (Array.length (Static.candidates t.program)));
  Buffer.add_string buf (Printf.sprintf "  \"predicted_single_insns\": %d,\n" pred_insns);
  Buffer.add_string buf
    (Printf.sprintf "  \"predicted_nodes\": [%s],\n"
       (String.concat ", "
          (List.map (fun n -> Printf.sprintf "\"%s\"" (json_escape (Static.node_name n))) pred)));
  Buffer.add_string buf "  \"nodes\": [\n";
  let entries =
    List.filter_map
      (fun (node, d) ->
        let st = node_stats t node in
        if st.insns = 0 then None
        else
          Some
            (Printf.sprintf
               "    {\"name\": \"%s\", \"kind\": \"%s\", \"insns\": %d, \"execs\": %d, \
                \"divergence\": %s, \"max_rel\": %s, \"mean_rel\": %s, \"max_local\": %s, \
                \"max_mag\": %s, \"cancels\": %d, \"cancel_blowups\": %d, \"flips\": %d, \
                \"predicted\": %b}"
               (json_escape (Static.node_name node))
               (node_kind node) st.insns st.execs (json_float d) (json_float st.max_rel)
               (json_float st.mean_rel) (json_float st.max_local) (json_float st.max_mag)
               st.cancels st.cancel_blowups st.flips (node_predicted t node)))
      (ranked t)
  in
  Buffer.add_string buf (String.concat ",\n" entries);
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
