(** Aggregation of {!Shadow_tracer} accumulators up the configuration
    hierarchy (instruction → block → function → module): an annotated
    tree, a predicted configuration, and a ranked candidate list — the
    inputs the shadow-guided search mode ({!Bfs.shadow}) consumes. *)

type node_stats = {
  insns : int;  (** live candidate instructions (effective base ≠ Ignore) *)
  observed : int;  (** of those, how many actually executed *)
  execs : int;  (** total shadow value observations in the subtree *)
  max_rel : float;  (** worst relative divergence over the subtree *)
  mean_rel : float;  (** observation-weighted mean divergence *)
  max_local : float;
  max_mag : float;
  cancels : int;
  cancel_blowups : int;
  flips : int;
}

type t

val default_threshold : float
(** [1e-8]: strict enough that the predicted configuration's seed
    evaluation passes on the NAS kernels (their verification tolerances
    are 1e-9..1e-12); an over-eager prediction costs the search one wasted
    evaluation, an under-eager one only shrinks the head start. *)

val make : ?threshold:float -> ?base:Config.t -> Ir.program -> Shadow_tracer.t -> t
(** Build a report over a finished trace. [base] is the search's base
    configuration (hint sets): candidates it flags [Ignore] are excluded
    from prediction, exactly as the search excludes them from flipping. *)

val threshold : t -> float
val base : t -> Config.t

val max_rel_at : t -> int -> float
(** Worst observed divergence of one instruction address (0 if never
    executed or out of range). *)

val flips_at : t -> int -> int

val divergence : t -> Static.insn_info list -> float
(** Worst divergence over a set of instructions — the predicted error of
    flipping exactly those to single. *)

val has_flips : t -> Static.insn_info list -> bool

val node_stats : t -> Static.node -> node_stats

val node_predicted : t -> Static.node -> bool
(** Every live candidate below threshold and no flips anywhere inside. *)

val predicted_nodes : t -> Static.node list
(** Maximal qualifying structures, in tree order. *)

val predicted : t -> Config.t
(** The predicted configuration: [base] plus every live candidate of every
    predicted node flagged [Single] (instruction granularity, so [Ignore]
    hints keep their meaning). The search {e verifies} this configuration
    with a real evaluation before trusting it. *)

val ranked : t -> (Static.node * float) list
(** Every structure with live candidates paired with its predicted
    divergence (infinity when flips were observed), most tolerant first. *)

val render : t -> string
(** The annotated tree ([craft shadow] output): per-structure divergence,
    cancellation and flip counts, with predicted-single structures marked
    ['s'] and collapsed. *)

val to_json : t -> string
(** Machine-readable export of the same data. *)
