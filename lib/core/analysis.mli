(** The end-to-end mixed-precision analysis system (paper Fig. 2).

    Given a program, a representative data set and a verification routine
    (bundled as a {!Bfs.Target.t}), [recommend] runs the configuration
    generator and breadth-first search, composes the final configuration,
    evaluates the expected benefit of applying it (cost model of the
    source-level conversion), and returns everything a developer needs:
    the recommended configuration, its exchange-format text, the search
    statistics, and the projected speedup. *)

type recommendation = {
  result : Bfs.result;  (** full search result, including the final config *)
  config_text : string;  (** exchange-format rendering (paper Fig. 3) *)
  tree : string;  (** configuration tree view (paper Fig. 4) *)
  census : (string * int) list;
      (** {!Config.format_census} of the final configuration: candidate
          count per ending format name (plus ["ignore"]) *)
  native_cost : Cost.run_cost;
  converted_cost : Cost.run_cost;
      (** modeled cost after the suggested source-level conversion (single
          instructions become native single, 4-byte memory traffic) *)
  projected_speedup : float;
}

val recommend :
  ?options:Bfs.options ->
  ?params:Cost.params ->
  program:Ir.program ->
  setup:(Vm.t -> unit) ->
  output:(Vm.t -> float array) ->
  verify:(float array -> bool) ->
  unit ->
  recommendation

val recommend_target :
  ?options:Bfs.options ->
  ?params:Cost.params ->
  Bfs.Target.t ->
  setup:(Vm.t -> unit) ->
  recommendation
(** Same, from an existing search target ([setup] is needed again to run
    the cost-model executions). *)

val pp_summary : Format.formatter -> recommendation -> unit
