type recommendation = {
  result : Bfs.result;
  config_text : string;
  tree : string;
  census : (string * int) list;
  native_cost : Cost.run_cost;
  converted_cost : Cost.run_cost;
  projected_speedup : float;
}

let recommend_target ?(options = Bfs.default_options) ?(params = Cost.default)
    (target : Bfs.Target.t) ~setup =
  let result = Bfs.search ~options target in
  let program = target.Bfs.Target.program in
  let config_text = Config.print program result.Bfs.final in
  let counts = target.Bfs.Target.profile () in
  let tree = Tree_view.render ~counts program result.Bfs.final in
  let run_cost ?fmem_bytes prog smode =
    let vm = Vm.create ~smode prog in
    setup vm;
    Vm.run vm;
    Cost.of_run ~params ?fmem_bytes vm
  in
  let native_cost = run_cost program Vm.Flagged in
  (* the suggested source-level conversion: single-flagged instructions
     become native single precision with 4-byte float traffic *)
  let converted = To_single.convert_config program result.Bfs.final in
  let converted_cost = run_cost ~fmem_bytes:4.0 converted Vm.Plain in
  {
    result;
    config_text;
    tree;
    census = Config.format_census program result.Bfs.final;
    native_cost;
    converted_cost;
    projected_speedup = native_cost.Cost.time_cycles /. converted_cost.Cost.time_cycles;
  }

let recommend ?options ?params ~program ~setup ~output ~verify () =
  let target = Bfs.Target.make program ~setup ~output ~verify in
  recommend_target ?options ?params target ~setup

let pp_summary ppf r =
  let res = r.result in
  let census =
    r.census
    |> List.map (fun (name, n) -> Printf.sprintf "%s=%d" name n)
    |> String.concat ", "
  in
  Format.fprintf ppf
    "@[<v>candidates: %d@,configurations tested: %d@,static replaced: %d (%.1f%%)@,\
     dynamic replaced: %.1f%%@,bits saved: %d (census: %s)@,final verification: %s@,\
     projected conversion speedup: %.2fX@]"
    res.Bfs.candidates res.Bfs.tested res.Bfs.static_replaced res.Bfs.static_pct
    res.Bfs.dynamic_pct res.Bfs.bits_saved census
    (if res.Bfs.final_pass then "pass" else "fail")
    r.projected_speedup
