(** The closure-compiling execution backend.

    {!Vm.run} re-decides everything about an instruction — opcode shape,
    precision, [smode], [checked]-mode operand tests, addressing mode,
    hook presence — on every dynamic execution. This module translates
    each {!Ir.block} once into a flat array of pre-specialized closures
    (one per instruction, with registers, bounds, trap reasons, rounding
    and encode/extract steps resolved at compile time) chained by compiled
    terminators, collapsing the per-step cost to an indirect call. This is
    the software analogue of the paper's snippet splicing: precision
    decisions are baked into the code once per configuration, not
    re-interpreted per step.

    {!run} is a drop-in replacement for {!Vm.run}: identical heaps,
    [counts]/[bcounts], step accounting, {!Vm.Trap} addresses and reasons,
    {!Vm.Limit} and watchdog {!Vm.Deadline} behaviour. The one deliberate
    difference: a state with installed hooks (fault injector, shadow
    tracer, test probes) is executed by the interpreter — compiled code has
    no per-instruction observation point, and correctness of those
    subsystems outranks speed.

    Compilation is per-(block × precision slice). With a {!cache}, blocks
    whose instruction content (precisions included) is unchanged between
    two patched program variants share their compiled form, so a search
    wave that flips one function recompiles only that function's blocks —
    the patcher's layout is configuration-invariant, which makes block
    content a sound cache witness (see DESIGN §10). *)

type backend = Interp | Compiled

val backend_name : backend -> string
(** ["interp"] / ["compiled"]. *)

val backend_of_string : string -> backend option
(** Inverse of {!backend_name} (also accepts ["interpreter"], ["compile"]). *)

type cache
(** A {!Code_cache} of compiled blocks, shareable across every evaluation
    of a search campaign (domain-safe; compiled closures are immutable). *)

val create_cache : unit -> cache

val stats : cache -> Code_cache.stats
val reset_stats : cache -> unit
val report : cache -> string

val run : ?cache:cache -> Vm.t -> unit
(** Execute the state from [main] through compiled code (through the
    interpreter when hooks are installed — transparently, with identical
    results). Without [cache], blocks are compiled fresh for this run. Same
    single-shot contract as {!Vm.run}: a second call raises
    [Invalid_argument]. *)
