type backend = Interp | Compiled

let backend_name = function Interp -> "interp" | Compiled -> "compiled"

let backend_of_string = function
  | "interp" | "interpreter" -> Some Interp
  | "compiled" | "compile" -> Some Compiled
  | _ -> None

(* ------------------------------------------------------------ compiled form *)

(* A compiled terminator keeps the block-index shape of [Ir.terminator];
   resolving indices to closures here would tie a block to one linked
   function instance and defeat cross-config caching.

   [CTestBr] and [CIcmpBr] are fused terminators: when a block's last
   instruction computes exactly the flag the [Br] branches on, the pair
   executes inline in the block driver with no closure dispatch.  The
   patcher's operand-check diamond ends a block with [Ftestflag tf, r]
   + [Br tf] per checked operand — about a third of all executed
   instructions in a patched program — and loop headers end with
   [Icmp] + [Br].  The fused forms keep the instruction's full effect
   (count bump, flag-register write) so state stays bit-identical to
   the interpreter's. *)
type cterm =
  | CJmp of int
  | CBr of int * int * int
  | CRet
  | CTestBr of { addr : int; tf : int; src : int; th : int; el : int }
  | CIcmpBr of { c : Ir.cmpop; addr : int; d : int; a : int; b : int; th : int; el : int }

(* The per-frame execution environment a compiled closure runs against.
   Everything a closure touches at runtime lives here; everything else
   (operand registers, precision mode, bounds, checked-mode tests, trap
   reasons, constants) was resolved when the closure was built. [exec] is
   the run's own call-into-function entry point, threaded through the
   environment so cached closures capture no per-run state.

   Closures do not maintain [Vm.counts]: a block's instructions execute
   exactly [bcounts] times each, except in the one partially-completed
   block of every active frame when a trap, limit or deadline aborts the
   run.  The driver therefore only records the frame's current block
   index ([cur_bidx]) and the body position being executed ([cur_k]) —
   two int stores, no write barrier — and [run] rebuilds exact
   per-instruction counts from [bcounts] in one O(program) pass at the
   end, with a per-frame fixup for the partial blocks on the exception
   path. *)
type env = {
  t : Vm.t;
  fr : float array;
  ir : int array;
  fheap : float array;
  iheap : int array;
  lfuncs : lfunc array;
  exec : lfunc -> float array -> int array -> float array * int array;
  mutable cur_bidx : int;
  mutable cur_k : int;
}

and cblock = {
  clabel : int;
  nsteps : int;  (** instruction count + 1, the interpreter's per-block step charge *)
  body : (env -> unit) array;
  cterm : cterm;
  iaddrs : int array;
      (** addresses of all the source block's instructions, in order,
          including one fused into the terminator — the unit of the
          bcounts-based count reconstruction *)
}

and lfunc = { src : Ir.func; cblocks : cblock array }

(* ------------------------------------------------------------------- cache *)

(* The cache witness: the full block-local slice of everything compilation
   specialized on. Two patched variants of a program share a block's
   compiled form exactly when this record compares equal — the instruction
   array carries every precision decision (the patcher's layout is
   config-invariant, so a BFS wave that flips one function misses only on
   that function's blocks). *)
type witness = {
  w_checked : bool;
  w_plain : bool;
  w_nf : int;
  w_ni : int;
  w_fregs : int;
  w_iregs : int;
  w_instrs : Ir.instr array;
  w_term : Ir.terminator;
}

type cache = (witness, cblock) Code_cache.t

let create_cache () : cache = Code_cache.create ()
let stats = Code_cache.stats
let reset_stats = Code_cache.reset_stats
let report = Code_cache.report

(* -------------------------------------------------------------- primitives *)

let trap addr reason = raise (Vm.Trap (addr, reason))

let oob = "heap access out of bounds"

(* binary32 round of a double, bit-exact with F32.round *)
let[@inline] round32 x = Int32.float_of_bits (Int32.bits_of_float x)

(* low-32-bit extraction of a replaced encoding, bit-exact with
   Vm's extract32 *)
let[@inline] x32 v = Int32.float_of_bits (Int64.to_int32 (Int64.bits_of_float v))

(* Local, inlinable copies of the Replaced bit tests.  Without flambda a
   cross-module call cannot be inlined, so every [Replaced.is_replaced] in a
   closure body boxes its float argument and its Int64 intermediates; these
   formulations compile to straight-line unboxed code.  [is_rep] compares the
   high word as a native int: the logical shift lands in [0, 2^32), where
   [Int64.to_int] is exact, so the int equality is bit-identical to
   [Replaced.is_replaced]. *)
let[@inline] is_rep v =
  Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float v) 32) = 0x7FF4DEAD

(* bit-exact with [Replaced.encode] / [Replaced.downcast] *)
let[@inline] enc x =
  Int64.float_of_bits
    (Int64.logor 0x7FF4DEAD00000000L
       (Int64.logand (Int64.of_int32 (Int32.bits_of_float x)) 0xFFFF_FFFFL))

(* checked D-operand fetch *)
let[@inline] dchk addr v =
  if is_rep v then trap addr "replaced operand reaches a double-precision op"
  else v

(* checked Flagged S-operand fetch *)
let[@inline] schk addr v =
  if not (is_rep v) then
    trap addr "unreplaced operand reaches a single-precision op"
  else x32 v

(* checked Plain S-operand fetch *)
let[@inline] pchk addr v =
  if is_rep v then trap addr "replaced operand in a plain-single binary"
  else round32 v

(* S-operand fetch for the non-specialized paths, resolved once per instr *)
let s_fetch ~plain ~checked addr : float -> float =
  match (plain, checked) with
  | false, false -> x32
  | false, true -> schk addr
  | true, false -> round32
  | true, true -> pchk addr

let s_store ~plain : float -> float = if plain then Fun.id else enc

(* Reduced-format [E] operand fetch: identical to the S shapes in Flagged
   mode (the payload is a binary32 sentinel either way), format-grid round
   in Plain mode. Trap reasons match Vm.ope exactly — the differential
   suite compares verdicts bit-for-bit. *)
let e_fetch ~plain ~checked fmt addr : float -> float =
  match (plain, checked) with
  | false, false -> x32
  | false, true ->
      fun v ->
        if not (is_rep v) then
          trap addr "unreplaced operand reaches a reduced-precision op"
        else x32 v
  | true, false -> Formats.round fmt
  | true, true ->
      fun v ->
        if is_rep v then trap addr "replaced operand in a plain reduced-precision binary"
        else Formats.round fmt v

(* Every F32 binary/unary op is (binary32 round) of the host double op, so
   S-precision compute compiles to [round32 (double_fn ...)]. *)
let fbin_fn (o : Ir.fbinop) : float -> float -> float =
  match o with
  | Add -> ( +. )
  | Sub -> ( -. )
  | Mul -> ( *. )
  | Div -> ( /. )
  | Min -> Float.min
  | Max -> Float.max

let funop_fn (o : Ir.funop) : float -> float =
  match o with Sqrt -> sqrt | Neg -> ( ~-. ) | Abs -> Float.abs

let flibm_fn (o : Ir.flibm) : float -> float =
  match o with Sin -> sin | Cos -> cos | Tan -> tan | Exp -> exp | Log -> log | Atan -> atan

let cmp_fn (c : Ir.cmpop) : float -> float -> bool =
  match c with
  | Eq -> fun x y -> x = y
  | Ne -> fun x y -> x <> y
  | Lt -> fun x y -> x < y
  | Le -> fun x y -> x <= y
  | Gt -> fun x y -> x > y
  | Ge -> fun x y -> x >= y

(* Register accesses in closure bodies are unsafe: every register operand of
   every instruction was range-checked against the function's frame sizes
   when the block was compiled (see [check_registers]), and a cache hit
   requires an identical witness — same instructions, same frame sizes. *)
let[@inline] gf e i = Array.unsafe_get e.fr i
let[@inline] sf e i v = Array.unsafe_set e.fr i v
let[@inline] gi e i = Array.unsafe_get e.ir i
let[@inline] si e i v = Array.unsafe_set e.ir i v

(* ------------------------------------------------- per-instruction closures *)

(* Scalar Fbin arms are written out in full for the hot combinations
   (register indices, checked tests and encode/extract steps all burned
   into one straight-line closure); colder shapes go through the resolved
   [fetch]/[fn]/[store] functions. *)

let compile_fbin_d ~checked addr (o : Ir.fbinop) d a b : env -> unit =
  if checked then
    match o with
    | Add -> fun e -> sf e d (dchk addr (gf e a) +. dchk addr (gf e b))
    | Sub -> fun e -> sf e d (dchk addr (gf e a) -. dchk addr (gf e b))
    | Mul -> fun e -> sf e d (dchk addr (gf e a) *. dchk addr (gf e b))
    | Div -> fun e -> sf e d (dchk addr (gf e a) /. dchk addr (gf e b))
    | Min -> fun e -> sf e d (Float.min (dchk addr (gf e a)) (dchk addr (gf e b)))
    | Max -> fun e -> sf e d (Float.max (dchk addr (gf e a)) (dchk addr (gf e b)))
  else
    match o with
    | Add -> fun e -> sf e d ((gf e a) +. (gf e b))
    | Sub -> fun e -> sf e d ((gf e a) -. (gf e b))
    | Mul -> fun e -> sf e d ((gf e a) *. (gf e b))
    | Div -> fun e -> sf e d ((gf e a) /. (gf e b))
    | Min -> fun e -> sf e d (Float.min (gf e a) (gf e b))
    | Max -> fun e -> sf e d (Float.max (gf e a) (gf e b))

let compile_fbin_s ~checked ~plain addr (o : Ir.fbinop) d a b : env -> unit =
  if not plain then
    if checked then
      match o with
      | Add -> fun e -> sf e d (enc (round32 (schk addr (gf e a) +. schk addr (gf e b))))
      | Sub -> fun e -> sf e d (enc (round32 (schk addr (gf e a) -. schk addr (gf e b))))
      | Mul -> fun e -> sf e d (enc (round32 (schk addr (gf e a) *. schk addr (gf e b))))
      | Div -> fun e -> sf e d (enc (round32 (schk addr (gf e a) /. schk addr (gf e b))))
      | Min -> fun e -> sf e d (enc (round32 (Float.min (schk addr (gf e a)) (schk addr (gf e b)))))
      | Max -> fun e -> sf e d (enc (round32 (Float.max (schk addr (gf e a)) (schk addr (gf e b)))))
    else
      match o with
      | Add -> fun e -> sf e d (enc (round32 (x32 (gf e a) +. x32 (gf e b))))
      | Sub -> fun e -> sf e d (enc (round32 (x32 (gf e a) -. x32 (gf e b))))
      | Mul -> fun e -> sf e d (enc (round32 (x32 (gf e a) *. x32 (gf e b))))
      | Div -> fun e -> sf e d (enc (round32 (x32 (gf e a) /. x32 (gf e b))))
      | Min -> fun e -> sf e d (enc (round32 (Float.min (x32 (gf e a)) (x32 (gf e b)))))
      | Max -> fun e -> sf e d (enc (round32 (Float.max (x32 (gf e a)) (x32 (gf e b)))))
  else
    (* Plain mode only runs manually-converted binaries (run_converted);
       not a search hot path, so resolved functions suffice *)
    let fetch = s_fetch ~plain ~checked addr and fn = fbin_fn o in
    fun e -> sf e d (round32 (fn (fetch (gf e a)) (fetch (gf e b))))

let compile_fbinp ~checked ~plain addr (p : Ir.prec) (o : Ir.fbinop) d a b : env -> unit =
  (* both lanes read before either write — element-wise packed semantics,
     matching the interpreter's fixed Fbinp *)
  match p with
  | D ->
      let fn = fbin_fn o in
      if checked then
        fun e ->
          let x0 = dchk addr (gf e a) and y0 = dchk addr (gf e b) in
          let x1 = dchk addr (gf e (a + 1)) and y1 = dchk addr (gf e (b + 1)) in
          sf e d (fn x0 y0);
          sf e (d + 1) (fn x1 y1)
      else
        fun e ->
          let x0 = (gf e a) and y0 = (gf e b) in
          let x1 = (gf e (a + 1)) and y1 = (gf e (b + 1)) in
          sf e d (fn x0 y0);
          sf e (d + 1) (fn x1 y1)
  | S ->
      let fetch = s_fetch ~plain ~checked addr
      and fn = fbin_fn o
      and st = s_store ~plain in
      fun e ->
        let x0 = fetch (gf e a) and y0 = fetch (gf e b) in
        let x1 = fetch (gf e (a + 1)) and y1 = fetch (gf e (b + 1)) in
        sf e d (st (round32 (fn x0 y0)));
        sf e (d + 1) (st (round32 (fn x1 y1)))
  | E (eb, mb) ->
      let fmt = Formats.make ~ebits:eb ~mbits:mb in
      let fetch = e_fetch ~plain ~checked fmt addr
      and rnd = Formats.round fmt
      and fn = fbin_fn o
      and st = s_store ~plain in
      fun e ->
        let x0 = fetch (gf e a) and y0 = fetch (gf e b) in
        let x1 = fetch (gf e (a + 1)) and y1 = fetch (gf e (b + 1)) in
        sf e d (st (rnd (fn x0 y0)));
        sf e (d + 1) (st (rnd (fn x1 y1)))

(* loads/stores: addressing shape and bounds are burned in; the heap access
   is unsafe after the explicit bounds test (heap length = the witness's
   bound by construction) *)

let compile_fload ~nf addr d (m : Ir.mem) : env -> unit =
  let off = m.offset and scale = m.scale in
  match (m.base, m.index) with
  | None, None ->
      if off < 0 || off >= nf then fun _e -> trap addr oob
      else fun e -> sf e d (Array.unsafe_get e.fheap off)
  | Some r, None ->
      fun e ->
        let a = off + (gi e r) in
        if a < 0 || a >= nf then trap addr oob else sf e d (Array.unsafe_get e.fheap a)
  | None, Some x ->
      fun e ->
        let a = off + ((gi e x) * scale) in
        if a < 0 || a >= nf then trap addr oob else sf e d (Array.unsafe_get e.fheap a)
  | Some r, Some x ->
      fun e ->
        let a = off + (gi e r) + ((gi e x) * scale) in
        if a < 0 || a >= nf then trap addr oob else sf e d (Array.unsafe_get e.fheap a)

let compile_fstore ~nf addr (m : Ir.mem) s : env -> unit =
  let off = m.offset and scale = m.scale in
  match (m.base, m.index) with
  | None, None ->
      if off < 0 || off >= nf then fun _e -> trap addr oob
      else fun e -> Array.unsafe_set e.fheap off (gf e s)
  | Some r, None ->
      fun e ->
        let a = off + (gi e r) in
        if a < 0 || a >= nf then trap addr oob else Array.unsafe_set e.fheap a (gf e s)
  | None, Some x ->
      fun e ->
        let a = off + ((gi e x) * scale) in
        if a < 0 || a >= nf then trap addr oob else Array.unsafe_set e.fheap a (gf e s)
  | Some r, Some x ->
      fun e ->
        let a = off + (gi e r) + ((gi e x) * scale) in
        if a < 0 || a >= nf then trap addr oob else Array.unsafe_set e.fheap a (gf e s)

let compile_iload ~ni addr d (m : Ir.mem) : env -> unit =
  let off = m.offset and scale = m.scale in
  match (m.base, m.index) with
  | None, None ->
      if off < 0 || off >= ni then fun _e -> trap addr oob
      else fun e -> si e d (Array.unsafe_get e.iheap off)
  | Some r, None ->
      fun e ->
        let a = off + (gi e r) in
        if a < 0 || a >= ni then trap addr oob else si e d (Array.unsafe_get e.iheap a)
  | None, Some x ->
      fun e ->
        let a = off + ((gi e x) * scale) in
        if a < 0 || a >= ni then trap addr oob else si e d (Array.unsafe_get e.iheap a)
  | Some r, Some x ->
      fun e ->
        let a = off + (gi e r) + ((gi e x) * scale) in
        if a < 0 || a >= ni then trap addr oob else si e d (Array.unsafe_get e.iheap a)

let compile_istore ~ni addr (m : Ir.mem) s : env -> unit =
  let off = m.offset and scale = m.scale in
  match (m.base, m.index) with
  | None, None ->
      if off < 0 || off >= ni then fun _e -> trap addr oob
      else fun e -> Array.unsafe_set e.iheap off (gi e s)
  | Some r, None ->
      fun e ->
        let a = off + (gi e r) in
        if a < 0 || a >= ni then trap addr oob else Array.unsafe_set e.iheap a (gi e s)
  | None, Some x ->
      fun e ->
        let a = off + ((gi e x) * scale) in
        if a < 0 || a >= ni then trap addr oob else Array.unsafe_set e.iheap a (gi e s)
  | Some r, Some x ->
      fun e ->
        let a = off + (gi e r) + ((gi e x) * scale) in
        if a < 0 || a >= ni then trap addr oob else Array.unsafe_set e.iheap a (gi e s)

let compile_ibin addr (o : Ir.ibinop) d a b : env -> unit =
  match o with
  | Iadd -> fun e -> si e d ((gi e a) + (gi e b))
  | Isub -> fun e -> si e d ((gi e a) - (gi e b))
  | Imul -> fun e -> si e d ((gi e a) * (gi e b))
  | Idiv ->
      fun e ->
        let y = (gi e b) in
        if y = 0 then trap addr "integer division by zero" else si e d ((gi e a) / y)
  | Irem ->
      fun e ->
        let y = (gi e b) in
        if y = 0 then trap addr "integer remainder by zero" else si e d ((gi e a) mod y)
  | Iand -> fun e -> si e d ((gi e a) land (gi e b))
  | Ior -> fun e -> si e d ((gi e a) lor (gi e b))
  | Ixor -> fun e -> si e d ((gi e a) lxor (gi e b))
  | Ishl -> fun e -> si e d ((gi e a) lsl (gi e b))
  | Ishr -> fun e -> si e d ((gi e a) asr (gi e b))
  | Imax -> fun e -> si e d ((let x = (gi e a) and y = (gi e b) in if x >= y then x else y))
  | Imin -> fun e -> si e d ((let x = (gi e a) and y = (gi e b) in if x <= y then x else y))

let compile_icmp _addr (c : Ir.cmpop) d a b : env -> unit =
  match c with
  | Eq -> fun e -> si e d (if (gi e a) = (gi e b) then 1 else 0)
  | Ne -> fun e -> si e d (if (gi e a) <> (gi e b) then 1 else 0)
  | Lt -> fun e -> si e d (if (gi e a) < (gi e b) then 1 else 0)
  | Le -> fun e -> si e d (if (gi e a) <= (gi e b) then 1 else 0)
  | Gt -> fun e -> si e d (if (gi e a) > (gi e b) then 1 else 0)
  | Ge -> fun e -> si e d (if (gi e a) >= (gi e b) then 1 else 0)

let compile_instr ~checked ~plain ~nf ~ni ({ addr; op } : Ir.instr) : env -> unit =
  match op with
  | Fbin (D, o, d, a, b) -> compile_fbin_d ~checked addr o d a b
  | Fbin (S, o, d, a, b) -> compile_fbin_s ~checked ~plain addr o d a b
  | Fbin (E (eb, mb), o, d, a, b) ->
      (* format and rounding resolved at compile time; the body is the S
         shape with the binary32 round swapped for the format-grid round *)
      let fmt = Formats.make ~ebits:eb ~mbits:mb in
      let fetch = e_fetch ~plain ~checked fmt addr
      and rnd = Formats.round fmt
      and fn = fbin_fn o
      and st = s_store ~plain in
      fun e -> sf e d (st (rnd (fn (fetch (gf e a)) (fetch (gf e b)))))
  | Fbinp (p, o, d, a, b) -> compile_fbinp ~checked ~plain addr p o d a b
  | Funop (D, o, d, a) ->
      let fn = funop_fn o in
      if checked then fun e -> sf e d (fn (dchk addr (gf e a)))
      else fun e -> sf e d (fn (gf e a))
  | Funop (S, o, d, a) ->
      let fetch = s_fetch ~plain ~checked addr
      and fn = funop_fn o
      and st = s_store ~plain in
      fun e -> sf e d (st (round32 (fn (fetch (gf e a)))))
  | Funop (E (eb, mb), o, d, a) ->
      let fmt = Formats.make ~ebits:eb ~mbits:mb in
      let fetch = e_fetch ~plain ~checked fmt addr
      and rnd = Formats.round fmt
      and fn = funop_fn o
      and st = s_store ~plain in
      fun e -> sf e d (st (rnd (fn (fetch (gf e a)))))
  | Flibm (D, o, d, a) ->
      let fn = flibm_fn o in
      if checked then fun e -> sf e d (fn (dchk addr (gf e a)))
      else fun e -> sf e d (fn (gf e a))
  | Flibm (S, o, d, a) ->
      let fetch = s_fetch ~plain ~checked addr
      and fn = flibm_fn o
      and st = s_store ~plain in
      fun e -> sf e d (st (round32 (fn (fetch (gf e a)))))
  | Flibm (E (eb, mb), o, d, a) ->
      let fmt = Formats.make ~ebits:eb ~mbits:mb in
      let fetch = e_fetch ~plain ~checked fmt addr
      and rnd = Formats.round fmt
      and fn = flibm_fn o
      and st = s_store ~plain in
      fun e -> sf e d (st (rnd (fn (fetch (gf e a)))))
  | Fcmp (D, c, d, a, b) ->
      let cf = cmp_fn c in
      if checked then
        fun e ->
          si e d ((if cf (dchk addr (gf e a)) (dchk addr (gf e b)) then 1 else 0))
      else fun e -> si e d ((if cf (gf e a) (gf e b) then 1 else 0))
  | Fcmp (S, c, d, a, b) ->
      let fetch = s_fetch ~plain ~checked addr and cf = cmp_fn c in
      fun e ->
        si e d ((if cf (fetch (gf e a)) (fetch (gf e b)) then 1 else 0))
  | Fcmp (E (eb, mb), c, d, a, b) ->
      let fmt = Formats.make ~ebits:eb ~mbits:mb in
      let fetch = e_fetch ~plain ~checked fmt addr and cf = cmp_fn c in
      fun e ->
        si e d ((if cf (fetch (gf e a)) (fetch (gf e b)) then 1 else 0))
  | Fconst (D, d, x) -> fun e -> sf e d (x)
  | Fconst (S, d, x) ->
      (* the rounded (and, in Flagged mode, encoded) constant is itself a
         compile-time constant *)
      let v = if plain then round32 x else enc (round32 x) in
      fun e -> sf e d (v)
  | Fconst (E (eb, mb), d, x) ->
      let fmt = Formats.make ~ebits:eb ~mbits:mb in
      let r = Formats.round fmt x in
      let v = if plain then r else enc r in
      fun e -> sf e d (v)
  | Fmov (d, a) -> fun e -> sf e d ((gf e a))
  | Fload (d, m) -> compile_fload ~nf addr d m
  | Fstore (m, a) -> compile_fstore ~nf addr m a
  | Fcvt_i2f (D, d, a) -> fun e -> sf e d (float_of_int (gi e a))
  | Fcvt_i2f (S, d, a) ->
      let st = s_store ~plain in
      fun e -> sf e d (st (round32 (float_of_int (gi e a))))
  | Fcvt_i2f (E (eb, mb), d, a) ->
      let fmt = Formats.make ~ebits:eb ~mbits:mb in
      let rnd = Formats.round fmt and st = s_store ~plain in
      fun e -> sf e d (st (rnd (float_of_int (gi e a))))
  | Fcvt_f2i (D, d, a) ->
      if checked then fun e -> si e d (int_of_float (dchk addr (gf e a)))
      else fun e -> si e d (int_of_float (gf e a))
  | Fcvt_f2i (S, d, a) ->
      let fetch = s_fetch ~plain ~checked addr in
      fun e -> si e d (int_of_float (fetch (gf e a)))
  | Fcvt_f2i (E (eb, mb), d, a) ->
      let fmt = Formats.make ~ebits:eb ~mbits:mb in
      let fetch = e_fetch ~plain ~checked fmt addr in
      fun e -> si e d (int_of_float (fetch (gf e a)))
  | Ibin (o, d, a, b) -> compile_ibin addr o d a b
  | Icmp (c, d, a, b) -> compile_icmp addr c d a b
  | Iconst (d, x) -> fun e -> si e d (x)
  | Imov (d, a) -> fun e -> si e d ((gi e a))
  | Iload (d, m) -> compile_iload ~ni addr d m
  | Istore (m, a) -> compile_istore ~ni addr m a
  | Call { callee; fargs; iargs; frets; irets } ->
      fun e ->
        let lf = e.lfuncs.(callee) in
        let fa = Array.map (fun r -> e.fr.(r)) fargs in
        let ia = Array.map (fun r -> e.ir.(r)) iargs in
        let rf, ri = e.exec lf fa ia in
        e.t.Vm.cur_fregs <- e.fr;
        e.t.Vm.cur_iregs <- e.ir;
        Array.iteri (fun k r -> e.fr.(r) <- rf.(k)) frets;
        Array.iteri (fun k r -> e.ir.(r) <- ri.(k)) irets
  | Ftestflag (d, a) ->
      fun e -> si e d ((if is_rep (gf e a) then 1 else 0))
  | Fdowncast (d, a) -> fun e -> sf e d (enc (gf e a))
  | Fupcast (d, a) ->
      fun e ->
        let v = (gf e a) in
        if not (is_rep v) then trap addr "upcast of an unreplaced value"
        else sf e d (x32 v)
  | Fexpo (d, a) ->
      fun e ->
        si e d
          (Int64.to_int
             (Int64.logand
                (Int64.shift_right_logical (Int64.bits_of_float (gf e a)) 52)
                0x7FFL))

(* ----------------------------------------------------------------- linking *)

(* Register operands are range-checked once per compiled block so the closure
   bodies can use unsafe frame accesses.  This runs only on cache misses: a
   hit requires an identical witness, including the frame sizes the block
   was validated against.  All in-tree program producers (Builder, Asm, the
   patcher) satisfy {!Ir.validate}, so a failure here indicates a
   hand-constructed malformed program. *)
let check_registers ~fregs ~iregs ~fname (b : Ir.block) =
  let bad kind r =
    invalid_arg
      (Printf.sprintf "Compile: %s: block %d: %s register %d out of range" fname
         b.Ir.label kind r)
  in
  let chk_f r = if r < 0 || r >= fregs then bad "float" r in
  let chk_i r = if r < 0 || r >= iregs then bad "int" r in
  Array.iter
    (fun ({ op; _ } : Ir.instr) ->
      List.iter chk_f (Ir.defined_fregs op);
      List.iter chk_f (Ir.used_fregs op);
      List.iter chk_i (Ir.defined_iregs op);
      List.iter chk_i (Ir.used_iregs op))
    b.Ir.instrs;
  match b.Ir.term with Br (r, _, _) -> chk_i r | Jmp _ | Ret -> ()

let compile_block ?cache ~checked ~plain ~nf ~ni ~fregs ~iregs ~fname (b : Ir.block) :
    cblock =
  let build () =
    check_registers ~fregs ~iregs ~fname b;
    let n = Array.length b.instrs in
    (* fuse a flag-computing last instruction into the branch that tests it *)
    let fused, cterm =
      match b.term with
      | Jmp tgt -> (0, CJmp tgt)
      | Ret -> (0, CRet)
      | Br (r, th, el) -> (
          if n = 0 then (0, CBr (r, th, el))
          else
            match b.instrs.(n - 1) with
            | { addr; op = Ftestflag (d, a) } when d = r ->
                (1, CTestBr { addr; tf = d; src = a; th; el })
            | { addr; op = Icmp (c, d, a, b') } when d = r ->
                (1, CIcmpBr { c; addr; d; a; b = b'; th; el })
            | _ -> (0, CBr (r, th, el)))
    in
    {
      clabel = b.label;
      (* the fused instruction still counts toward the step charge *)
      nsteps = n + 1;
      body =
        Array.map (compile_instr ~checked ~plain ~nf ~ni) (Array.sub b.instrs 0 (n - fused));
      cterm;
      iaddrs = Array.map (fun (i : Ir.instr) -> i.addr) b.instrs;
    }
  in
  match cache with
  | None -> build ()
  | Some c ->
      let witness =
        {
          w_checked = checked;
          w_plain = plain;
          w_nf = nf;
          w_ni = ni;
          w_fregs = fregs;
          w_iregs = iregs;
          w_instrs = b.instrs;
          w_term = b.term;
        }
      in
      Code_cache.find_or_add c ~fname ~label:b.label ~witness build

let link ?cache ~checked ~plain (p : Ir.program) : lfunc array =
  let nf = p.fheap_size and ni = p.iheap_size in
  Array.map
    (fun (f : Ir.func) ->
      {
        src = f;
        cblocks =
          Array.map
            (compile_block ?cache ~checked ~plain ~nf ~ni ~fregs:f.n_fregs
               ~iregs:f.n_iregs ~fname:f.fname)
            f.blocks;
      })
    p.funcs

(* --------------------------------------------------------------- execution *)

let run ?cache (t : Vm.t) =
  if t.Vm.hooks <> [] then
    (* hooks observe (or perturb) every executed instruction; compiled code
       has no per-instruction observation point, so any installed hook —
       fault injector, shadow tracer, a test probe — routes the run through
       the interpreter unchanged *)
    Vm.run t
  else begin
    if t.Vm.ran then
      invalid_arg
        "Vm.run: this state has already executed (counters and heaps reflect \
         the previous run); create a fresh VM per run";
    t.Vm.ran <- true;
    (* fetched once per run, exactly like the interpreter *)
    let watchdog = Vm.installed_watchdog () in
    let plain = t.Vm.smode = Vm.Plain in
    let lfuncs = link ?cache ~checked:t.Vm.checked ~plain t.Vm.prog in
    let fheap = t.Vm.fheap
    and iheap = t.Vm.iheap
    and counts = t.Vm.counts
    and bcounts = t.Vm.bcounts in
    let rec exec lf fargs iargs =
      let f = lf.src in
      let fr = Array.make f.Ir.n_fregs 0.0 in
      let ir = Array.make f.Ir.n_iregs 0 in
      Array.blit fargs 0 fr 0 (Array.length fargs);
      Array.blit iargs 0 ir 0 (Array.length iargs);
      t.Vm.cur_fregs <- fr;
      t.Vm.cur_iregs <- ir;
      let e =
        { t; fr; ir; fheap; iheap; lfuncs; exec; cur_bidx = f.Ir.entry; cur_k = -1 }
      in
      let cblocks = lf.cblocks in
      let max_steps = t.Vm.max_steps in
      (* The block driver is duplicated on watchdog presence so the common
         no-watchdog case pays no per-block match.  [bcounts] and the [Br]
         register access are unsafe: any program containing a cached block
         has a [bcounts] array longer than that block's label, and the [Br]
         register was range-checked by [check_registers].  [cur_bidx]/[cur_k]
         record how far the current block got — the instruction the frame is
         executing is already counted (the interpreter bumps before it runs),
         everything after it is not. *)
      let rec go bidx =
        let cb = Array.unsafe_get cblocks bidx in
        e.cur_bidx <- bidx;
        e.cur_k <- -1;
        let l = cb.clabel in
        Array.unsafe_set bcounts l (Array.unsafe_get bcounts l + 1);
        t.Vm.steps <- t.Vm.steps + cb.nsteps;
        if t.Vm.steps > max_steps then raise (Vm.Limit max_steps);
        let body = cb.body in
        for k = 0 to Array.length body - 1 do
          e.cur_k <- k;
          (Array.unsafe_get body k) e
        done;
        match cb.cterm with
        | CJmp tgt -> go tgt
        | CBr (r, th, el) -> if Array.unsafe_get ir r <> 0 then go th else go el
        | CTestBr { addr = _; tf; src; th; el } ->
            let rep = is_rep (Array.unsafe_get fr src) in
            Array.unsafe_set ir tf (if rep then 1 else 0);
            if rep then go th else go el
        | CIcmpBr { c; addr = _; d; a; b; th; el } ->
            let x = Array.unsafe_get ir a and y = Array.unsafe_get ir b in
            let v =
              match c with
              | Eq -> x = y
              | Ne -> x <> y
              | Lt -> x < y
              | Le -> x <= y
              | Gt -> x > y
              | Ge -> x >= y
            in
            Array.unsafe_set ir d (if v then 1 else 0);
            if v then go th else go el
        | CRet -> ()
      in
      (* the watchdog heartbeats per block here (per instruction in the
         interpreter): cancellation latency stays a few hundred blocks,
         and the block label stands in for the instruction address *)
      let rec go_w w bidx =
        let cb = Array.unsafe_get cblocks bidx in
        e.cur_bidx <- bidx;
        e.cur_k <- -1;
        let l = cb.clabel in
        Array.unsafe_set bcounts l (Array.unsafe_get bcounts l + 1);
        t.Vm.steps <- t.Vm.steps + cb.nsteps;
        if t.Vm.steps > max_steps then raise (Vm.Limit max_steps);
        w t cb.clabel;
        let body = cb.body in
        for k = 0 to Array.length body - 1 do
          e.cur_k <- k;
          (Array.unsafe_get body k) e
        done;
        match cb.cterm with
        | CJmp tgt -> go_w w tgt
        | CBr (r, th, el) -> if Array.unsafe_get ir r <> 0 then go_w w th else go_w w el
        | CTestBr { addr = _; tf; src; th; el } ->
            let rep = is_rep (Array.unsafe_get fr src) in
            Array.unsafe_set ir tf (if rep then 1 else 0);
            if rep then go_w w th else go_w w el
        | CIcmpBr { c; addr = _; d; a; b; th; el } ->
            let x = Array.unsafe_get ir a and y = Array.unsafe_get ir b in
            let v =
              match c with
              | Eq -> x = y
              | Ne -> x <> y
              | Lt -> x < y
              | Le -> x <= y
              | Gt -> x > y
              | Ge -> x >= y
            in
            Array.unsafe_set ir d (if v then 1 else 0);
            if v then go_w w th else go_w w el
        | CRet -> ()
      in
      (try match watchdog with None -> go f.Ir.entry | Some w -> go_w w f.Ir.entry
       with ex ->
         (* the run is aborting: retract the counts of this frame's current
            block for the instructions it did not reach, so the final
            bcounts-based reconstruction yields exactly the interpreter's
            per-instruction counts *)
         let cb = Array.unsafe_get cblocks e.cur_bidx in
         let ia = cb.iaddrs in
         for i = e.cur_k + 1 to Array.length ia - 1 do
           let a = Array.unsafe_get ia i in
           counts.(a) <- counts.(a) - 1
         done;
         raise ex);
      ( Array.map (fun r -> fr.(r)) f.Ir.ret_fregs,
        Array.map (fun r -> ir.(r)) f.Ir.ret_iregs )
    in
    (* one O(program) pass turns block entry counts into exact
       per-instruction counts (plus the per-frame retractions above on the
       abort path); runs on both the normal and the exceptional exit *)
    let reconstruct () =
      Array.iter
        (fun lf ->
          Array.iter
            (fun cb ->
              let m = Array.unsafe_get bcounts cb.clabel in
              if m <> 0 then
                let ia = cb.iaddrs in
                for i = 0 to Array.length ia - 1 do
                  let a = Array.unsafe_get ia i in
                  counts.(a) <- counts.(a) + m
                done)
            lf.cblocks)
        lfuncs
    in
    let main = lfuncs.(t.Vm.prog.main) in
    let mf = main.src in
    (match exec main (Array.make mf.Ir.n_fargs 0.0) (Array.make mf.Ir.n_iargs 0) with
    | (_ : float array * int array) -> reconstruct ()
    | exception ex ->
        reconstruct ();
        raise ex)
  end
