type mode = Trap | Hang | Bitflip | Corrupt | Crash

type spec = { seed : int; rate : float; modes : mode list; transient : bool }

let default = { seed = 1; rate = 0.2; modes = [ Trap; Hang ]; transient = true }

let mode_name = function
  | Trap -> "trap"
  | Hang -> "hang"
  | Bitflip -> "bitflip"
  | Corrupt -> "corrupt"
  | Crash -> "crash"

let mode_of_name = function
  | "trap" -> Ok Trap
  | "hang" -> Ok Hang
  | "bitflip" -> Ok Bitflip
  | "corrupt" -> Ok Corrupt
  | "crash" -> Ok Crash
  | s -> Error (Printf.sprintf "unknown fault mode %S (trap, hang, bitflip, corrupt, crash)" s)

let to_string s =
  Printf.sprintf "seed=%d,rate=%g,modes=%s,%s" s.seed s.rate
    (String.concat "+" (List.map mode_name s.modes))
    (if s.transient then "transient" else "persistent")

let parse text =
  let fields = String.split_on_char ',' text |> List.map String.trim in
  List.fold_left
    (fun acc field ->
      Result.bind acc (fun s ->
          match String.index_opt field '=' with
          | None -> (
              match field with
              | "" -> Ok s
              | "transient" -> Ok { s with transient = true }
              | "persistent" -> Ok { s with transient = false }
              | f -> Error (Printf.sprintf "unknown fault-spec field %S" f))
          | Some i -> (
              let k = String.sub field 0 i in
              let v = String.sub field (i + 1) (String.length field - i - 1) in
              match k with
              | "seed" -> (
                  match int_of_string_opt v with
                  | Some n -> Ok { s with seed = n }
                  | None -> Error (Printf.sprintf "bad seed %S" v))
              | "rate" -> (
                  match float_of_string_opt v with
                  | Some r when r >= 0.0 && r <= 1.0 -> Ok { s with rate = r }
                  | _ -> Error (Printf.sprintf "bad rate %S (want a float in [0,1])" v))
              | "modes" ->
                  String.split_on_char '+' v
                  |> List.fold_left
                       (fun acc m -> Result.bind acc (fun ms -> Result.map (fun m -> m :: ms) (mode_of_name m)))
                       (Ok [])
                  |> Result.map (fun ms -> { s with modes = List.rev ms })
              | k -> Error (Printf.sprintf "unknown fault-spec field %S" k))))
    (Ok default) fields

type t = {
  spec : spec;
  attempts : (string, int) Hashtbl.t;
  armed : (string, mode) Hashtbl.t;  (* decision pending for [finish] *)
  mutable fired : int;
  lock : Mutex.t;
}

let create spec = { spec; attempts = Hashtbl.create 64; armed = Hashtbl.create 16; fired = 0; lock = Mutex.create () }

let injected t = Mutex.protect t.lock (fun () -> t.fired)

let reset t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.attempts;
      Hashtbl.reset t.armed;
      t.fired <- 0)

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  (* keep it a nonnegative OCaml int for Rng seeding *)
  Int64.to_int !h land max_int

let record_fire t = Mutex.protect t.lock (fun () -> t.fired <- t.fired + 1)

(* Flip one payload bit of the first replaced encoding currently in the float
   heap. The flag half survives, so the value stays "replaced" and the
   corruption is silent — the classic bit-flip that only verification can
   catch. No replaced value in the heap yet: the fault fizzles. *)
let flip_replaced vm bit =
  let fheap = vm.Vm.fheap in
  let n = Array.length fheap in
  let rec find i =
    if i >= n then None else if Replaced.is_replaced fheap.(i) then Some i else find (i + 1)
  in
  match find 0 with
  | None -> false
  | Some i ->
      let bits = Int64.bits_of_float fheap.(i) in
      fheap.(i) <- Int64.float_of_bits (Int64.logxor bits (Int64.shift_left 1L (bit land 31)));
      true

let arm t ~key vm =
  let attempt, rng =
    Mutex.protect t.lock (fun () ->
        Hashtbl.remove t.armed key;
        let a = Option.value ~default:0 (Hashtbl.find_opt t.attempts key) in
        Hashtbl.replace t.attempts key (a + 1);
        (a, Rng.create (t.spec.seed lxor fnv64 key)))
  in
  if t.spec.modes <> [] && t.spec.rate > 0.0 then begin
    let faulty = Rng.uniform rng < t.spec.rate in
    if faulty && ((not t.spec.transient) || attempt = 0) then begin
      let mode = List.nth t.spec.modes (Rng.int rng (List.length t.spec.modes)) in
      (* fire early in the run: real evaluation crashes cluster near startup,
         and an early trigger still fires inside very short programs *)
      let trigger = 1 + Rng.int rng 16 in
      let bit = Rng.int rng 32 in
      match mode with
      | Corrupt -> Mutex.protect t.lock (fun () -> Hashtbl.replace t.armed key mode)
      | _ ->
          let countdown = ref trigger in
          let hook_id = ref (-1) in
          hook_id :=
            Vm.add_hook vm
              (fun vm addr ->
                decr countdown;
                if !countdown = 0 then begin
                  Vm.remove_hook vm !hook_id;
                  match mode with
                  | Trap ->
                      record_fire t;
                      raise (Vm.Trap (addr, "injected fault: forced trap"))
                  | Crash ->
                      record_fire t;
                      failwith "injected fault: evaluator crash"
                  | Hang ->
                      (* spin until the step budget runs out *)
                      record_fire t;
                      vm.Vm.steps <- vm.Vm.max_steps;
                      raise (Vm.Limit vm.Vm.max_steps)
                  | Bitflip -> if flip_replaced vm bit then record_fire t
                  | Corrupt -> ()
                end)
    end
  end

let finish t ~key vm =
  let armed = Mutex.protect t.lock (fun () ->
      let m = Hashtbl.find_opt t.armed key in
      Hashtbl.remove t.armed key;
      m)
  in
  match armed with
  | Some Corrupt ->
      let n = Array.length vm.Vm.fheap in
      if n > 0 then begin
        let rng = Rng.create (t.spec.seed lxor fnv64 key lxor 0x5bd1e995) in
        let i = Rng.int rng n in
        vm.Vm.fheap.(i) <- (vm.Vm.fheap.(i) *. -3.0) +. 1.0e9;
        record_fire t
      end
  | _ -> ()
