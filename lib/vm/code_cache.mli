(** Shared cache of compiled code, keyed by [(function, label, witness)].

    The witness is the caller's full description of everything the compiled
    value depends on — for {!Compile} that is the block's instruction array
    (precisions included), terminator, run mode and heap bounds, i.e. the
    block-local slice of the precision configuration. Lookups compare the
    witness structurally rather than hashing it to a digest: a block is
    reused {e only} when its slice is identical, so a cache hit can never
    splice wrongly-specialized code into a run.

    The cache is domain-safe (one internal mutex); compiled values are
    immutable closures and may be executed concurrently by many workers. *)

type ('w, 'v) t

type stats = { hits : int; misses : int; entries : int }

val create : unit -> ('w, 'v) t

val find_or_add :
  ('w, 'v) t -> fname:string -> label:int -> witness:'w -> (unit -> 'v) -> 'v
(** [find_or_add t ~fname ~label ~witness compile] returns the cached value
    for this (function, label) whose witness equals [witness], compiling
    and memoizing it on a miss. [compile] runs under the cache lock, so
    concurrent linkers never duplicate work for the same block. *)

val stats : ('w, 'v) t -> stats

val hit_rate : stats -> float
(** Hits over total lookups, in [0,1]; 0 when no lookups happened. *)

val reset_stats : ('w, 'v) t -> unit
(** Zero the hit/miss counters (compiled entries are kept). Used by the
    bench to measure one campaign at a time on a shared cache. *)

val report : ('w, 'v) t -> string
(** One-line human-readable summary. *)
