type stats = { hits : int; misses : int; entries : int }

let hit_rate s =
  let n = s.hits + s.misses in
  if n = 0 then 0.0 else float_of_int s.hits /. float_of_int n

(* Buckets are association lists compared by structural equality on the
   witness. A digest would be cheaper to compare, but a collision would
   silently splice the wrong compiled block into a run — the witness IS
   the precision slice, so equality is self-validating. Buckets stay tiny:
   within one search campaign a block has at most a handful of distinct
   precision slices (the patcher's layout is config-invariant, so flipping
   a function Single<->Double yields the same labels with different
   instruction precisions). *)
type ('w, 'v) t = {
  tbl : (string * int, ('w * 'v) list ref) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable entries : int;
}

let create () =
  {
    tbl = Hashtbl.create 256;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    entries = 0;
  }

let find_or_add t ~fname ~label ~witness compile =
  Mutex.lock t.lock;
  let key = (fname, label) in
  let bucket =
    match Hashtbl.find_opt t.tbl key with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.add t.tbl key b;
        b
  in
  let rec lookup = function
    | [] -> None
    | (w, v) :: rest -> if compare w witness = 0 then Some v else lookup rest
  in
  match lookup !bucket with
  | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      v
  | None -> (
      (* compile inside the lock: compilation is cheap next to an
         evaluation, and serializing it keeps the bucket free of duplicate
         entries when several worker domains link the same wave *)
      match compile () with
      | v ->
          t.misses <- t.misses + 1;
          t.entries <- t.entries + 1;
          bucket := (witness, v) :: !bucket;
          Mutex.unlock t.lock;
          v
      | exception e ->
          Mutex.unlock t.lock;
          raise e)

let stats t =
  Mutex.lock t.lock;
  let s = { hits = t.hits; misses = t.misses; entries = t.entries } in
  Mutex.unlock t.lock;
  s

let reset_stats t =
  Mutex.lock t.lock;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.lock

let report t =
  let s = stats t in
  Printf.sprintf "code cache: %d hits / %d misses (%.1f%% hit rate, %d compiled blocks)"
    s.hits s.misses (100.0 *. hit_rate s) s.entries
