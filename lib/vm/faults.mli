(** Deterministic fault injection for configuration evaluations.

    The real CRAFT tool evaluates thousands of instrumented binaries, any of
    which can crash, hang, or silently produce garbage. This module models
    that hostile world on top of the VM so the resilient harness
    ({!Harness}) can be proven to contain every failure mode, and so demo
    runs ([craft search --inject ...]) can show the search surviving it.

    Injection is fully deterministic: whether an evaluation faults, which
    fault it gets and when it fires are all derived from a {!Util.Rng}
    stream seeded by [(spec seed, configuration key, attempt number)]. The
    same campaign with the same spec replays bit-for-bit; with
    [transient = true], a given configuration faults on its first attempt
    only, so a retrying harness always recovers the true verdict. *)

type mode =
  | Trap  (** raise {!Vm.Trap} at the Nth executed instruction *)
  | Hang  (** spin the step counter to the budget, then {!Vm.Limit} *)
  | Bitflip
      (** flip one payload bit of a replaced encoding in the float heap
          mid-run (silent data corruption) *)
  | Corrupt  (** overwrite a float-heap slot after the run completes *)
  | Crash  (** raise a generic exception mid-run (evaluator bug / OOM) *)

type spec = {
  seed : int;
  rate : float;  (** probability that an evaluation is selected for a fault *)
  modes : mode list;  (** faults drawn uniformly from this list *)
  transient : bool;
      (** fault a given configuration on its first attempt only (retries
          see a clean run); [false] makes faults persistent *)
}

val default : spec
(** [seed=1, rate=0.2, modes=\[Trap; Hang\], transient]. *)

val mode_name : mode -> string

val parse : string -> (spec, string) result
(** Parse a CLI spec: comma-separated [seed=N], [rate=F],
    [modes=trap+hang+bitflip+corrupt+crash], [transient], [persistent].
    Omitted fields keep their {!default}. *)

val to_string : spec -> string
(** Inverse of {!parse} (up to field order). *)

type t
(** Injector state: the spec plus per-configuration attempt memory. *)

val create : spec -> t

val injected : t -> int
(** Faults that actually fired so far (a scheduled fault whose trigger
    point lies beyond the end of a short run never fires). *)

val reset : t -> unit
(** Forget attempt memory and counters (fresh campaign, same spec). *)

val arm : t -> key:string -> Vm.t -> unit
(** Decide deterministically whether the next run of [vm] — the evaluation
    of the configuration identified by [key], at that key's current attempt
    number — faults, and install the corresponding VM hook. Also records
    the decision for {!finish}. Thread-safe. *)

val finish : t -> key:string -> Vm.t -> unit
(** Apply post-run faults ({!Corrupt}) after a completed run. Call between
    [Vm.run] and output extraction; skip when the run raised. *)
