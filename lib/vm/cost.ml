type params = {
  c_fadd : float;
  c_fmul : float;
  c_fdiv_d : float;
  c_fdiv_s : float;
  c_fsqrt_d : float;
  c_fsqrt_s : float;
  c_flibm_d : float;
  c_flibm_s : float;
  c_fcmp : float;
  c_fconst : float;
  c_fmov : float;
  c_fcvt : float;
  c_fload : float;
  c_fstore : float;
  c_iop : float;
  c_iload : float;
  c_istore : float;
  c_call : float;
  c_branch : float;
  c_testflag : float;
  c_downcast : float;
  c_upcast : float;
  bytes_fmem : float;
  bytes_imem : float;
  bandwidth : float;
  clock_ghz : float;
}

let default =
  {
    c_fadd = 3.0;
    c_fmul = 5.0;
    c_fdiv_d = 22.0;
    c_fdiv_s = 14.0;
    c_fsqrt_d = 22.0;
    c_fsqrt_s = 14.0;
    c_flibm_d = 60.0;
    c_flibm_s = 40.0;
    c_fcmp = 3.0;
    c_fconst = 2.0;
    c_fmov = 1.0;
    c_fcvt = 4.0;
    c_fload = 4.0;
    c_fstore = 4.0;
    c_iop = 1.0;
    c_iload = 4.0;
    c_istore = 4.0;
    c_call = 15.0;
    c_branch = 2.0;
    c_testflag = 13.0;
    c_downcast = 9.0;
    c_upcast = 9.0;
    bytes_fmem = 8.0;
    bytes_imem = 8.0;
    bandwidth = 1.0;
    clock_ghz = 2.8;
  }

let op_cycles p (op : Ir.op) =
  match op with
  | Fbin (_, (Add | Sub | Min | Max), _, _, _) | Fbinp (_, (Add | Sub | Min | Max), _, _, _)
    ->
      p.c_fadd
  | Fbin (_, Mul, _, _, _) | Fbinp (_, Mul, _, _, _) -> p.c_fmul
  (* reduced emulated formats price like single: narrower-than-binary32
     hardware is never slower than binary32 *)
  | Fbin (D, Div, _, _, _) | Fbinp (D, Div, _, _, _) -> p.c_fdiv_d
  | Fbin ((S | E _), Div, _, _, _) | Fbinp ((S | E _), Div, _, _, _) -> p.c_fdiv_s
  | Funop (D, Sqrt, _, _) -> p.c_fsqrt_d
  | Funop ((S | E _), Sqrt, _, _) -> p.c_fsqrt_s
  | Funop (_, (Neg | Abs), _, _) -> p.c_fmov
  | Flibm (D, _, _, _) -> p.c_flibm_d
  | Flibm ((S | E _), _, _, _) -> p.c_flibm_s
  | Fcmp _ -> p.c_fcmp
  | Fconst _ -> p.c_fconst
  | Fmov _ -> p.c_fmov
  | Fload _ -> p.c_fload
  | Fstore _ -> p.c_fstore
  | Fcvt_i2f _ | Fcvt_f2i _ -> p.c_fcvt
  | Ibin _ | Icmp _ | Iconst _ | Imov _ -> p.c_iop
  | Iload _ -> p.c_iload
  | Istore _ -> p.c_istore
  | Call _ -> p.c_call
  | Ftestflag _ -> p.c_testflag
  | Fdowncast _ -> p.c_downcast
  | Fupcast _ -> p.c_upcast
  | Fexpo _ -> 4.0

let op_bytes p (op : Ir.op) =
  match op with
  | Fload _ | Fstore _ -> p.bytes_fmem
  | Iload _ | Istore _ -> p.bytes_imem
  | _ -> 0.0

type run_cost = {
  cycles : float;
  mem_bytes : float;
  time_cycles : float;
  seconds : float;
  fp_ops : int;
}

let of_run ?(params = default) ?fmem_bytes (vm : Vm.t) =
  let p =
    match fmem_bytes with None -> params | Some b -> { params with bytes_fmem = b }
  in
  let cycles = ref 0.0 and bytes = ref 0.0 and fp_ops = ref 0 in
  Array.iter
    (fun (f : Ir.func) ->
      Array.iter
        (fun (b : Ir.block) ->
          Array.iter
            (fun ({ addr; op } : Ir.instr) ->
              let n = vm.counts.(addr) in
              if n > 0 then begin
                let nf = float_of_int n in
                cycles := !cycles +. (nf *. op_cycles p op);
                bytes := !bytes +. (nf *. op_bytes p op);
                if Ir.is_candidate op then fp_ops := !fp_ops + n
              end)
            b.instrs;
          let n = vm.bcounts.(b.label) in
          if n > 0 then cycles := !cycles +. (float_of_int n *. p.c_branch))
        f.blocks)
    vm.prog.funcs;
  let time_cycles = Float.max !cycles (!bytes /. p.bandwidth) in
  {
    cycles = !cycles;
    mem_bytes = !bytes;
    time_cycles;
    seconds = time_cycles /. (p.clock_ghz *. 1e9);
    fp_ops = !fp_ops;
  }

let overhead instrumented native = instrumented.time_cycles /. native.time_cycles

let mflops rc = if rc.seconds = 0.0 then 0.0 else float_of_int rc.fp_ops /. rc.seconds /. 1e6
