(** The execution engine.

    Runs IR programs with the precise bit-level semantics the analysis
    relies on: float registers and the float heap hold raw 64-bit patterns,
    [S]-precision opcodes operate on replaced-encoded operands (extract low
    32 bits, compute in emulated binary32, re-encode with the 0x7FF4DEAD
    flag), and [D]-precision opcodes operate on plain doubles.

    In [checked] mode the VM enforces the instrumentation invariant the
    paper gets "for free" from NaN poisoning: a [D] operation consuming a
    replaced value — or an [S] operation consuming an unreplaced one —
    raises {!Trap} (the analogue of the instrumented binary crashing when
    the analysis missed an instruction).

    Execution counts are recorded per instruction address and per block
    label; {!Cost} turns them into modeled cycles and memory traffic. *)

exception Trap of int * string
(** [(address, reason)]: instrumentation-invariant violation, out-of-bounds
    heap access, or division by zero. *)

exception Limit of int
(** Raised when the step budget is exhausted (argument: the budget). *)

exception Deadline of float
(** Raised by a supervisor's {!with_watchdog} callback when an evaluation
    exceeds its wall-clock deadline (argument: the deadline in seconds).
    Classified as a timeout by {!Harness.classify}. *)

type smode =
  | Flagged  (** instrumented binaries: [S] ops read/write replaced encodings *)
  | Plain
      (** manually-converted single binaries: [S] ops read/write plain
          binary32-exact doubles, no flags anywhere *)

type t = {
  prog : Ir.program;
  fheap : float array;
  iheap : int array;
  counts : int array;  (** executions per instruction address *)
  bcounts : int array;  (** executions per block label *)
  cand_addrs : int array;
      (** addresses of candidate FP instructions, indexed once at creation
          so {!fp_ops_executed} is O(candidates) per call instead of
          rescanning the program *)
  checked : bool;
  smode : smode;
  max_steps : int;
  mutable steps : int;
  mutable ran : bool;  (** set by {!run}; a state executes at most once *)
  mutable hooks : (int * (t -> int -> unit)) list;
      (** observation/fault-injection hooks with their registration ids,
          kept in installation order; manage through {!add_hook} and
          {!remove_hook} rather than mutating directly *)
  mutable next_hook_id : int;
  mutable cur_fregs : float array;
      (** float registers of the frame currently executing — valid inside a
          hook; each call frame allocates fresh arrays, so physical identity
          ([==]) identifies the frame across hook invocations *)
  mutable cur_iregs : int array;  (** integer registers of the same frame *)
}

val add_hook : t -> (t -> int -> unit) -> int
(** Install an observation/fault-injection hook; returns a registration id
    for {!remove_hook}. Hooks are called with the state and the instruction
    address before every executed instruction, in installation order (the
    fault injector armed before an observation tracer fires first, so the
    tracer sees the faulted state the program actually executes); a hook may
    raise (e.g. {!Trap}) or mutate the state ({!Faults} uses both).
    Installing multiple hooks composes — the shadow tracer and the fault
    injector stack instead of evicting each other. *)

val remove_hook : t -> int -> unit
(** Uninstall the hook registered under this id (no-op if absent). Safe to
    call from inside the hook itself during execution. *)

val create : ?checked:bool -> ?smode:smode -> ?max_steps:int -> Ir.program -> t
(** Fresh state with zeroed heaps and counters. [checked] defaults to
    [false] (native runs); patched programs should run with
    [checked:true]. [smode] defaults to [Flagged]. [max_steps] defaults to
    2e9. *)

val run : t -> unit
(** Execute from [main]. The state's counters and heaps reflect the run
    afterwards; [run] can be called once per state — a second call raises
    [Invalid_argument] instead of silently accumulating counts into the
    previous run's state. *)

val with_watchdog : (t -> int -> unit) -> (unit -> 'a) -> 'a
(** [with_watchdog w f] runs [f] with [w] installed as the calling domain's
    watchdog: every VM executing on this domain during [f] calls
    [w vm addr] once per instruction, at the same observation point as
    [hook] but without needing access to the VM value (supervised VMs are
    created deep inside evaluation closures). The watchdog is the
    supervision channel of {!Pool}: it publishes heartbeats and raises
    {!Deadline} when the monitor flags the task as over-deadline. Nests and
    restores the previous watchdog on exit (even by exception). *)

val installed_watchdog : unit -> (t -> int -> unit) option
(** The calling domain's current watchdog, if a supervisor installed one
    with {!with_watchdog}. Alternative execution engines ({!Compile.run})
    fetch it once per run and drive it themselves, exactly as {!run}
    does. *)

val get_f : t -> int -> float
(** Raw pattern at a float-heap slot (may be a replaced encoding). *)

val get_f_value : t -> int -> float
(** Value at a float-heap slot, coerced: replaced encodings are decoded to
    their single-precision value. This is how verification routines read
    program outputs. *)

val set_f : t -> int -> float -> unit
val get_i : t -> int -> int
val set_i : t -> int -> int -> unit

val write_f : t -> int -> float array -> unit
(** Bulk-poke doubles into the float heap starting at a slot. *)

val write_i : t -> int -> int array -> unit

val read_f : t -> int -> int -> float array
(** [read_f t base n] reads [n] coerced values starting at [base]. *)

val fp_ops_executed : t -> int
(** Total executions of candidate FP instructions (denominator of the
    paper's "dynamic instructions replaced" percentage). *)
