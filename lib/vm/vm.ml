exception Trap of int * string
exception Limit of int
exception Deadline of float

type smode = Flagged | Plain

type t = {
  prog : Ir.program;
  fheap : float array;
  iheap : int array;
  counts : int array;
  bcounts : int array;
  cand_addrs : int array;
  checked : bool;
  smode : smode;
  max_steps : int;
  mutable steps : int;
  mutable ran : bool;
  mutable hooks : (int * (t -> int -> unit)) list;
  mutable next_hook_id : int;
  mutable cur_fregs : float array;
  mutable cur_iregs : int array;
}

let add_hook t h =
  let id = t.next_hook_id in
  t.next_hook_id <- id + 1;
  t.hooks <- t.hooks @ [ (id, h) ];
  id

let remove_hook t id = t.hooks <- List.filter (fun (i, _) -> i <> id) t.hooks

(* Domain-local watchdog: a supervisor (Search.Pool's monitor) installs a
   callback on the worker domain before it evaluates, and every VM created on
   that domain drives it per executed instruction — the same observation
   point as [hook], but ambient, because the supervised VM is created deep
   inside the evaluation closure where the supervisor cannot reach. The
   callback doubles as a heartbeat (progress evidence) and a cancellation
   point (it may raise, typically {!Deadline}). *)
let watchdog_key : (t -> int -> unit) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_watchdog w f =
  let cell = Domain.DLS.get watchdog_key in
  let saved = !cell in
  cell := Some w;
  Fun.protect ~finally:(fun () -> cell := saved) f

let installed_watchdog () = !(Domain.DLS.get watchdog_key)

let max_addr_of (p : Ir.program) = Static.max_addr p

let max_label_of (p : Ir.program) =
  Array.fold_left
    (fun acc (f : Ir.func) ->
      Array.fold_left (fun acc (b : Ir.block) -> max acc b.label) acc f.blocks)
    0 p.funcs

(* Addresses of candidate FP instructions, collected once per state so
   {!fp_ops_executed} — called per evaluation by the harness and bench —
   sums a short vector instead of rescanning the whole program. *)
let cand_addrs_of (p : Ir.program) =
  let acc = ref [] in
  Array.iter
    (fun (f : Ir.func) ->
      Array.iter
        (fun (b : Ir.block) ->
          Array.iter
            (fun ({ addr; op } : Ir.instr) ->
              if Ir.is_candidate op then acc := addr :: !acc)
            b.instrs)
        f.blocks)
    p.funcs;
  Array.of_list (List.rev !acc)

let create ?(checked = false) ?(smode = Flagged) ?(max_steps = 2_000_000_000) prog =
  {
    prog;
    fheap = Array.make prog.fheap_size 0.0;
    iheap = Array.make prog.iheap_size 0;
    counts = Array.make (max_addr_of prog + 1) 0;
    bcounts = Array.make (max_label_of prog + 1) 0;
    cand_addrs = cand_addrs_of prog;
    checked;
    smode;
    max_steps;
    steps = 0;
    ran = false;
    hooks = [];
    next_hook_id = 0;
    cur_fregs = [||];
    cur_iregs = [||];
  }

let is_replaced = Replaced.is_replaced

let extract32 v = Int32.float_of_bits (Int64.to_int32 (Int64.bits_of_float v))

let trap addr reason = raise (Trap (addr, reason))

(* Operand fetch for D-precision ops: enforce the invariant in checked mode. *)
let opd t addr v = if t.checked && is_replaced v then trap addr "replaced operand reaches a double-precision op" else v

(* Operand fetch for S-precision ops. Flagged mode: operands must carry the
   replacement flag and the value is extracted from the low 32 bits. Plain
   mode (manually-converted binaries): operands are ordinary binary32-exact
   doubles. *)
let ops t addr v =
  match t.smode with
  | Flagged ->
      if t.checked && not (is_replaced v) then
        trap addr "unreplaced operand reaches a single-precision op"
      else extract32 v
  | Plain ->
      if t.checked && is_replaced v then
        trap addr "replaced operand in a plain-single binary"
      else F32.round v

(* Operand fetch for reduced-format [E] ops. Flagged mode is identical to
   the S case — the operand travels as a binary32 sentinel payload and every
   in-format value is binary32-exact, so extraction loses nothing. Plain
   mode rounds through the format grid (the manually-converted-binary
   reading of a reduced-format op). *)
let ope t fmt addr v =
  match t.smode with
  | Flagged ->
      if t.checked && not (is_replaced v) then
        trap addr "unreplaced operand reaches a reduced-precision op"
      else extract32 v
  | Plain ->
      if t.checked && is_replaced v then
        trap addr "replaced operand in a plain reduced-precision binary"
      else Formats.round fmt v

(* Result store for S-precision ops. *)
let sres t v = match t.smode with Flagged -> Replaced.encode v | Plain -> v

let fmt_of e m = Formats.make ~ebits:e ~mbits:m

let fbin_d (o : Ir.fbinop) x y =
  match o with
  | Add -> x +. y
  | Sub -> x -. y
  | Mul -> x *. y
  | Div -> x /. y
  | Min -> Float.min x y
  | Max -> Float.max x y

let fbin_s (o : Ir.fbinop) x y =
  match o with
  | Add -> F32.add x y
  | Sub -> F32.sub x y
  | Mul -> F32.mul x y
  | Div -> F32.div x y
  | Min -> F32.min x y
  | Max -> F32.max x y

let funop_d (o : Ir.funop) x =
  match o with Sqrt -> sqrt x | Neg -> -.x | Abs -> Float.abs x

let funop_s (o : Ir.funop) x =
  match o with Sqrt -> F32.sqrt x | Neg -> F32.neg x | Abs -> F32.abs x

let flibm_d (o : Ir.flibm) x =
  match o with
  | Sin -> sin x
  | Cos -> cos x
  | Tan -> tan x
  | Exp -> exp x
  | Log -> log x
  | Atan -> atan x

let flibm_s (o : Ir.flibm) x =
  match o with
  | Sin -> F32.sin x
  | Cos -> F32.cos x
  | Tan -> F32.tan x
  | Exp -> F32.exp x
  | Log -> F32.log x
  | Atan -> F32.atan x

let cmp (c : Ir.cmpop) (x : float) (y : float) =
  let b =
    match c with
    | Eq -> x = y
    | Ne -> x <> y
    | Lt -> x < y
    | Le -> x <= y
    | Gt -> x > y
    | Ge -> x >= y
  in
  if b then 1 else 0

let icmp (c : Ir.cmpop) (x : int) (y : int) =
  let b =
    match c with
    | Eq -> x = y
    | Ne -> x <> y
    | Lt -> x < y
    | Le -> x <= y
    | Gt -> x > y
    | Ge -> x >= y
  in
  if b then 1 else 0

let ibin addr (o : Ir.ibinop) x y =
  match o with
  | Iadd -> x + y
  | Isub -> x - y
  | Imul -> x * y
  | Idiv -> if y = 0 then trap addr "integer division by zero" else x / y
  | Irem -> if y = 0 then trap addr "integer remainder by zero" else x mod y
  | Iand -> x land y
  | Ior -> x lor y
  | Ixor -> x lxor y
  | Ishl -> x lsl y
  | Ishr -> x asr y
  | Imax -> if x >= y then x else y
  | Imin -> if x <= y then x else y

let run t =
  if t.ran then
    invalid_arg
      "Vm.run: this state has already executed (counters and heaps reflect \
       the previous run); create a fresh VM per run";
  t.ran <- true;
  (* fetched once per run: installation happens before the evaluation starts,
     and cancellation is signalled through state the callback itself reads *)
  let watchdog = !(Domain.DLS.get watchdog_key) in
  let prog = t.prog in
  let fheap = t.fheap and iheap = t.iheap in
  let nf = Array.length fheap and ni = Array.length iheap in
  let counts = t.counts and bcounts = t.bcounts in
  let rec exec_func (f : Ir.func) (fargs : float array) (iargs : int array) =
    let fr = Array.make f.n_fregs 0.0 in
    let ir = Array.make f.n_iregs 0 in
    Array.blit fargs 0 fr 0 (Array.length fargs);
    Array.blit iargs 0 ir 0 (Array.length iargs);
    (* expose the active frame to hooks; each invocation's register arrays
       are fresh, so their physical identity distinguishes call frames *)
    t.cur_fregs <- fr;
    t.cur_iregs <- ir;
    let eaddr addr ({ base; index; scale; offset } : Ir.mem) bound =
      let a =
        offset
        + (match base with Some r -> ir.(r) | None -> 0)
        + (match index with Some r -> ir.(r) * scale | None -> 0)
      in
      if a < 0 || a >= bound then trap addr "heap access out of bounds" else a
    in
    let step ({ addr; op } : Ir.instr) =
      counts.(addr) <- counts.(addr) + 1;
      (* installation order; the list is an immutable snapshot, so a hook
         removing itself (Faults does) cannot disturb the iteration *)
      (match t.hooks with
      | [] -> ()
      | [ (_, h) ] -> h t addr
      | hs -> List.iter (fun (_, h) -> h t addr) hs);
      (match watchdog with Some w -> w t addr | None -> ());
      match op with
      | Fbin (D, o, d, a, b) -> fr.(d) <- fbin_d o (opd t addr fr.(a)) (opd t addr fr.(b))
      | Fbin (S, o, d, a, b) ->
          fr.(d) <- sres t (fbin_s o (ops t addr fr.(a)) (ops t addr fr.(b)))
      | Fbin (E (e, m), o, d, a, b) ->
          (* compute in binary64, round through the (e,m) grid: exact by the
             double-rounding theorem since every format has mbits <= 23 *)
          let f = fmt_of e m in
          fr.(d) <- sres t (Formats.round f (fbin_d o (ope t f addr fr.(a)) (ope t f addr fr.(b))))
      | Fbinp (D, o, d, a, b) ->
          (* both lanes read their operands before either result lands, as a
             packed register file does element-wise — with write-then-read,
             overlapping windows (d = a - 1, d = b - 1, ...) would feed lane
             0's result into lane 1's operands *)
          let x0 = opd t addr fr.(a) and y0 = opd t addr fr.(b) in
          let x1 = opd t addr fr.(a + 1) and y1 = opd t addr fr.(b + 1) in
          fr.(d) <- fbin_d o x0 y0;
          fr.(d + 1) <- fbin_d o x1 y1
      | Fbinp (S, o, d, a, b) ->
          let x0 = ops t addr fr.(a) and y0 = ops t addr fr.(b) in
          let x1 = ops t addr fr.(a + 1) and y1 = ops t addr fr.(b + 1) in
          fr.(d) <- sres t (fbin_s o x0 y0);
          fr.(d + 1) <- sres t (fbin_s o x1 y1)
      | Fbinp (E (e, m), o, d, a, b) ->
          let f = fmt_of e m in
          let x0 = ope t f addr fr.(a) and y0 = ope t f addr fr.(b) in
          let x1 = ope t f addr fr.(a + 1) and y1 = ope t f addr fr.(b + 1) in
          fr.(d) <- sres t (Formats.round f (fbin_d o x0 y0));
          fr.(d + 1) <- sres t (Formats.round f (fbin_d o x1 y1))
      | Funop (D, o, d, a) -> fr.(d) <- funop_d o (opd t addr fr.(a))
      | Funop (S, o, d, a) -> fr.(d) <- sres t (funop_s o (ops t addr fr.(a)))
      | Funop (E (e, m), o, d, a) ->
          let f = fmt_of e m in
          fr.(d) <- sres t (Formats.round f (funop_d o (ope t f addr fr.(a))))
      | Flibm (D, o, d, a) -> fr.(d) <- flibm_d o (opd t addr fr.(a))
      | Flibm (S, o, d, a) -> fr.(d) <- sres t (flibm_s o (ops t addr fr.(a)))
      | Flibm (E (e, m), o, d, a) ->
          let f = fmt_of e m in
          fr.(d) <- sres t (Formats.round f (flibm_d o (ope t f addr fr.(a))))
      | Fcmp (D, c, d, a, b) -> ir.(d) <- cmp c (opd t addr fr.(a)) (opd t addr fr.(b))
      | Fcmp (S, c, d, a, b) -> ir.(d) <- cmp c (ops t addr fr.(a)) (ops t addr fr.(b))
      | Fcmp (E (e, m), c, d, a, b) ->
          let f = fmt_of e m in
          ir.(d) <- cmp c (ope t f addr fr.(a)) (ope t f addr fr.(b))
      | Fconst (D, d, x) -> fr.(d) <- x
      | Fconst (S, d, x) -> fr.(d) <- sres t (F32.round x)
      | Fconst (E (e, m), d, x) -> fr.(d) <- sres t (Formats.round (fmt_of e m) x)
      | Fmov (d, a) -> fr.(d) <- fr.(a)
      | Fload (d, m) -> fr.(d) <- fheap.(eaddr addr m nf)
      | Fstore (m, a) -> fheap.(eaddr addr m nf) <- fr.(a)
      | Fcvt_i2f (D, d, a) -> fr.(d) <- float_of_int ir.(a)
      | Fcvt_i2f (S, d, a) -> fr.(d) <- sres t (F32.round (float_of_int ir.(a)))
      | Fcvt_i2f (E (e, m), d, a) ->
          fr.(d) <- sres t (Formats.round (fmt_of e m) (float_of_int ir.(a)))
      | Fcvt_f2i (D, d, a) -> ir.(d) <- int_of_float (opd t addr fr.(a))
      | Fcvt_f2i (S, d, a) -> ir.(d) <- int_of_float (ops t addr fr.(a))
      | Fcvt_f2i (E (e, m), d, a) -> ir.(d) <- int_of_float (ope t (fmt_of e m) addr fr.(a))
      | Ibin (o, d, a, b) -> ir.(d) <- ibin addr o ir.(a) ir.(b)
      | Icmp (c, d, a, b) -> ir.(d) <- icmp c ir.(a) ir.(b)
      | Iconst (d, x) -> ir.(d) <- x
      | Imov (d, a) -> ir.(d) <- ir.(a)
      | Iload (d, m) -> ir.(d) <- iheap.(eaddr addr m ni)
      | Istore (m, a) -> iheap.(eaddr addr m ni) <- ir.(a)
      | Call { callee; fargs; iargs; frets; irets } ->
          let g = prog.funcs.(callee) in
          let fa = Array.map (fun r -> fr.(r)) fargs in
          let ia = Array.map (fun r -> ir.(r)) iargs in
          let rf, ri = exec_func g fa ia in
          t.cur_fregs <- fr;
          t.cur_iregs <- ir;
          Array.iteri (fun k r -> fr.(r) <- rf.(k)) frets;
          Array.iteri (fun k r -> ir.(r) <- ri.(k)) irets
      | Ftestflag (d, a) -> ir.(d) <- if is_replaced fr.(a) then 1 else 0
      | Fdowncast (d, a) -> fr.(d) <- Replaced.downcast fr.(a)
      | Fupcast (d, a) ->
          let v = fr.(a) in
          if not (is_replaced v) then trap addr "upcast of an unreplaced value"
          else fr.(d) <- extract32 v
      | Fexpo (d, a) ->
          ir.(d) <-
            Int64.to_int
              (Int64.logand (Int64.shift_right_logical (Int64.bits_of_float fr.(a)) 52) 0x7FFL)
    in
    let rec run_block bidx =
      let b = f.blocks.(bidx) in
      bcounts.(b.label) <- bcounts.(b.label) + 1;
      let n = Array.length b.instrs in
      t.steps <- t.steps + n + 1;
      if t.steps > t.max_steps then raise (Limit t.max_steps);
      for k = 0 to n - 1 do
        step (Array.unsafe_get b.instrs k)
      done;
      match b.term with
      | Jmp tgt -> run_block tgt
      | Br (r, th, el) -> if ir.(r) <> 0 then run_block th else run_block el
      | Ret -> ()
    in
    run_block f.entry;
    (Array.map (fun r -> fr.(r)) f.ret_fregs, Array.map (fun r -> ir.(r)) f.ret_iregs)
  in
  let main = prog.funcs.(prog.main) in
  let (_ : float array * int array) =
    exec_func main (Array.make main.n_fargs 0.0) (Array.make main.n_iargs 0)
  in
  ()

let get_f t slot = t.fheap.(slot)
let get_f_value t slot = Replaced.coerce t.fheap.(slot)
let set_f t slot v = t.fheap.(slot) <- v
let get_i t slot = t.iheap.(slot)
let set_i t slot v = t.iheap.(slot) <- v
let write_f t base a = Array.blit a 0 t.fheap base (Array.length a)
let write_i t base a = Array.blit a 0 t.iheap base (Array.length a)
let read_f t base n = Array.init n (fun k -> get_f_value t (base + k))

let fp_ops_executed t =
  Array.fold_left (fun acc addr -> acc + t.counts.(addr)) 0 t.cand_addrs
