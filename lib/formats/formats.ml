type t = { ebits : int; mbits : int }

let double = { ebits = 11; mbits = 52 }
let single = { ebits = 8; mbits = 23 }
let half = { ebits = 5; mbits = 10 }
let bfloat16 = { ebits = 8; mbits = 7 }
let tf32 = { ebits = 8; mbits = 10 }

let make ~ebits ~mbits =
  if ebits < 2 || ebits > 8 then
    invalid_arg (Printf.sprintf "Formats.make: ebits %d outside [2,8]" ebits);
  if mbits < 1 || mbits > 23 then
    invalid_arg (Printf.sprintf "Formats.make: mbits %d outside [1,23]" mbits);
  { ebits; mbits }

let equal a b = a.ebits = b.ebits && a.mbits = b.mbits
let width t = 1 + t.ebits + t.mbits
let bits_saved t = 64 - width t

let compare_cost a b =
  let c = compare (width a) (width b) in
  if c <> 0 then c
  else
    let c = compare a.mbits b.mbits in
    if c <> 0 then c else compare a.ebits b.ebits

let bias t = (1 lsl (t.ebits - 1)) - 1
let emax t = bias t
let emin t = 1 - bias t
let max_value t = (2.0 -. ldexp 1.0 (-t.mbits)) *. ldexp 1.0 (emax t)
let min_normal t = ldexp 1.0 (emin t)
let min_subnormal t = ldexp 1.0 (emin t - t.mbits)

(* ------------------------------------------------------------------ round *)

let abs_mask = 0x7FFF_FFFF_FFFF_FFFFL
let frac_mask = 0xF_FFFF_FFFF_FFFFL
let exp_mask = 0x7FF0_0000_0000_0000L
let quiet_bit = Int64.shift_left 1L 51

(* Round a double to the nearest (ebits, mbits) value, ties to even, by bit
   manipulation on the Int64 payload.

   Within a binade the double's bit pattern is affine in its value, so
   round-to-nearest-even of the low [shift] bits is the classic masking
   trick: add [half - 1 + lsb] and clear the low bits; a carry out of the
   fraction increments the exponent field, which is exactly the binade
   crossing (1.111..1 -> 10.0). For results in the format's subnormal range
   the number of dropped bits grows as the exponent shrinks, keeping the
   retained granularity pinned at the format's smallest subnormal — gradual
   underflow falls out of the same masking trick with a larger [shift].

   Two edges need care:
   - [shift = 52]: the only retained value in the binade is its base 2^ue,
     whose index on the subnormal grid is odd (it IS the smallest retained
     multiple), so a tie must round UP; forcing [lsb = 1] encodes that.
   - [shift = 53]: the value sits in [min_sub/2, min_sub); the tie at
     exactly min_sub/2 rounds to (even) zero, anything above rounds to the
     smallest subnormal. Deeper than that ([shift > 53], including every
     binary64 subnormal input since min_sub/2 >= 2^-150 > 2^-1022) rounds
     to a signed zero. *)
let round_em t x =
  let bits = Int64.bits_of_float x in
  let sign = Int64.logand bits Int64.min_int in
  let a = Int64.logand bits abs_mask in
  if a = 0L then x (* signed zero *)
  else
    let e_field = Int64.to_int (Int64.shift_right_logical a 52) in
    if e_field = 0x7FF then
      if Int64.logand a frac_mask = 0L then x (* infinity *)
      else begin
        (* NaN: truncate the payload to the format's mantissa width and
           force the quiet bit so the result is never mistaken for inf *)
        let keep = Int64.lognot (Int64.sub (Int64.shift_left 1L (52 - t.mbits)) 1L) in
        let frac = Int64.logand (Int64.logand a frac_mask) keep in
        let frac = Int64.logor frac quiet_bit in
        Int64.float_of_bits (Int64.logor sign (Int64.logor exp_mask frac))
      end
    else begin
      let ue = e_field - 1023 in
      let shift = (52 - t.mbits) + if ue < emin t then emin t - ue else 0 in
      if shift <= 0 then x
      else if shift > 53 then Int64.float_of_bits sign (* +-0.0 *)
      else if shift = 53 then
        if Int64.logand a frac_mask = 0L then Int64.float_of_bits sign
        else Int64.float_of_bits (Int64.logor sign (Int64.bits_of_float (min_subnormal t)))
      else begin
        let lsb =
          if shift = 52 then 1L else Int64.logand (Int64.shift_right_logical a shift) 1L
        in
        let half = Int64.shift_left 1L (shift - 1) in
        let mask = Int64.sub (Int64.shift_left 1L shift) 1L in
        let r = Int64.logand (Int64.add a (Int64.add (Int64.sub half 1L) lsb)) (Int64.lognot mask) in
        let e' = Int64.to_int (Int64.shift_right_logical r 52) in
        if e' - 1023 > emax t then
          Int64.float_of_bits (Int64.logor sign exp_mask) (* overflow -> inf *)
        else Int64.float_of_bits (Int64.logor sign r)
      end
    end

let round t x =
  if t.mbits = 52 then x
  else if t.ebits = 8 && t.mbits = 23 then F32.round x
  else round_em t x

let is_exact t x = Int64.bits_of_float (round t x) = Int64.bits_of_float x

(* ------------------------------------------------------------------ names *)

let named =
  [ ("bf16", bfloat16); ("f16", half); ("tf32", tf32); ("single", single); ("double", double) ]

let token t = Printf.sprintf "e%dm%d" t.ebits t.mbits

let name t =
  match List.find_opt (fun (_, f) -> equal f t) named with
  | Some (n, _) -> n
  | None -> token t

let of_token s =
  (* "e<digits>m<digits>", already lowercased *)
  let n = String.length s in
  if n < 4 || s.[0] <> 'e' then None
  else
    match String.index_opt s 'm' with
    | None | Some 1 -> None
    | Some i when i = n - 1 -> None
    | Some i -> (
        match
          ( int_of_string_opt (String.sub s 1 (i - 1)),
            int_of_string_opt (String.sub s (i + 1) (n - i - 1)) )
        with
        | Some ebits, Some mbits ->
            if ebits = 11 && mbits = 52 then Some double
            else if ebits >= 2 && ebits <= 8 && mbits >= 1 && mbits <= 23 then
              Some { ebits; mbits }
            else None
        | _ -> None)

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "f16" | "half" | "fp16" | "binary16" -> Some half
  | "bf16" | "bfloat16" -> Some bfloat16
  | "tf32" -> Some tf32
  | "single" | "f32" | "fp32" | "binary32" | "s" -> Some single
  | "double" | "f64" | "fp64" | "binary64" | "d" -> Some double
  | s -> of_token s

let menu_of_string s =
  let toks =
    String.split_on_char ',' s |> List.map String.trim |> List.filter (fun s -> s <> "")
  in
  if toks = [] then Error "empty format menu"
  else
    let rec go acc = function
      | [] ->
          let menu = List.sort_uniq compare_cost (List.rev acc) in
          Ok menu
      | tok :: rest -> (
          match of_string tok with
          | Some f -> go (f :: acc) rest
          | None -> Error (Printf.sprintf "unknown format %S" tok))
    in
    go [] toks

let menu_to_string menu =
  String.concat "," (List.map name (List.sort compare_cost menu))
