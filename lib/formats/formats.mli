(** Parameterized floating-point formats: an (exponent bits, mantissa bits)
    pair with round-to-nearest-even emulation on doubles.

    A format value is represented as the nearest double (every format this
    module can build embeds exactly in binary64, and every sub-single format
    embeds exactly in binary32, which is what the 0x7FF4DEAD sentinel
    encoding requires). [round] takes any double to the nearest value
    representable in the format, so "computing in the format" means: compute
    the operation in binary64 on in-format operands, then [round] the result.
    For [+ - * / sqrt] this is bit-identical to native arithmetic in the
    format whenever [52 >= 2 * (mbits + 1) + 2] — the classical
    double-rounding theorem — which holds for every format accepted by
    [make] (mbits <= 23).

    Rounding semantics (documented contract, exercised by the test suite):
    - round-to-nearest, ties to even, implemented by bit manipulation on the
      Int64 payload of the double;
    - gradual underflow: results below the smallest normal are rounded onto
      the format's subnormal grid (no abrupt flush-to-zero), and values
      strictly below half the smallest subnormal round to a signed zero;
      exactly half rounds to zero too (ties-to-even: zero is even);
    - overflow: a rounded result whose exponent exceeds the format maximum
      becomes a signed infinity (IEEE round-then-overflow semantics);
    - NaNs stay NaN: the payload is truncated to the format's mantissa width
      and the quiet bit is forced, the sign is preserved;
    - signed zeros and infinities pass through unchanged. *)

type t = private { ebits : int; mbits : int }

val make : ebits:int -> mbits:int -> t
(** [make ~ebits ~mbits] builds a format with [2 <= ebits <= 8] and
    [1 <= mbits <= 23] — the range whose values embed exactly in binary32,
    as the sentinel encoding requires. The one exception, binary64 itself,
    is available as [double]. @raise Invalid_argument outside the range. *)

val half : t
(** IEEE binary16: e5m10. *)

val bfloat16 : t
(** bfloat16: e8m7. *)

val tf32 : t
(** NVIDIA TF32-style: e8m10 (binary32 range, binary16 precision). *)

val single : t
(** IEEE binary32: e8m23. [round single] delegates to {!F32.round}, so it is
    bit-identical to the pre-lattice single-precision pipeline. *)

val double : t
(** IEEE binary64: e11m52. [round double] is the identity. *)

val named : (string * t) list
(** The built-in menu, cheapest first: bf16, f16, tf32, single, double. *)

val round : t -> float -> float
(** Round a double to the nearest value of the format (see module doc). *)

val is_exact : t -> float -> bool
(** [is_exact t x] iff [x] survives [round t] bit-identically. *)

val width : t -> int
(** Storage width in bits: [1 + ebits + mbits]. *)

val bits_saved : t -> int
(** [64 - width t]: bits of a binary64 slot this format leaves unused. *)

val emax : t -> int
(** Largest unbiased exponent: [2^(ebits-1) - 1]. *)

val emin : t -> int
(** Smallest normal unbiased exponent: [1 - emax]. *)

val max_value : t -> float
(** Largest finite value: [(2 - 2^-mbits) * 2^emax]. *)

val min_normal : t -> float
(** Smallest positive normal: [2^emin] with [emin = 2 - 2^(ebits-1)]. *)

val min_subnormal : t -> float
(** Smallest positive subnormal: [2^(emin - mbits)]. *)

val equal : t -> t -> bool

val compare_cost : t -> t -> int
(** Ascending lattice order: by [width], then [mbits], then [ebits]. The
    lattice descends by trying cheaper formats (smaller [compare_cost])
    before more expensive ones. *)

val token : t -> string
(** Canonical machine token, ["e<E>m<M>"] (e.g. ["e5m10"]). Stable: used in
    config exchange texts, digests and checkpoints. *)

val name : t -> string
(** Friendly name when the format is a named instance (["f16"], ["bf16"],
    ["tf32"], ["single"], ["double"]), else the [token]. *)

val of_string : string -> t option
(** Accepts friendly names ([f16|half|bf16|bfloat16|tf32|single|f32|double|f64])
    and ["e<E>m<M>"] tokens, case-insensitively. [None] on anything else or
    out-of-range (e,m). *)

val menu_of_string : string -> (t list, string) result
(** Parse a comma-separated menu (e.g. ["bf16,f16,single,double"]) into a
    deduplicated, cost-ascending lattice. Errors name the offending token. *)

val menu_to_string : t list -> string
(** Canonical comma-joined friendly names, cost-ascending. *)
