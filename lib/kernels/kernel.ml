type class_ = W | A | C

let class_name = function W -> "W" | A -> "A" | C -> "C"

type t = {
  name : string;
  program : Ir.program;
  setup : Vm.t -> unit;
  output : Vm.t -> float array;
  verify : float array -> bool;
  reference : float array;
  hints : Config.t;
  comm_bytes : ranks:int -> Mpi_model.net -> float;
}

let run_native k =
  let vm = Vm.create k.program in
  k.setup vm;
  Vm.run vm;
  (k.output vm, vm)

let run_patched ?config k =
  let cfg = match config with Some c -> c | None -> k.hints in
  let patched = Patcher.patch k.program cfg in
  let vm = Vm.create ~checked:true patched in
  k.setup vm;
  Vm.run vm;
  (k.output vm, vm)

let run_converted k =
  let conv = To_single.convert k.program in
  let vm = Vm.create ~checked:true ~smode:Vm.Plain conv in
  k.setup vm;
  Vm.run vm;
  (k.output vm, vm)

let target ?eval_steps ?faults ?backend ?cache k =
  Bfs.Target.make ?eval_steps ?faults ?backend ?cache k.program ~setup:k.setup
    ~output:k.output ~verify:k.verify

let check_reference k =
  let out, _ = run_native k in
  Array.length out = Array.length k.reference
  && Array.for_all2
       (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
       out k.reference
