(** Common shape of the benchmark programs under analysis.

    Each benchmark is an IR program ("the binary") plus the pieces the
    analysis system of paper Fig. 2 needs: a representative data set
    ([setup] pokes it into a fresh VM), an output extractor, and a
    verification routine. NAS-style benchmarks come in geometrically scaled
    classes W/A/C (miniatures of the NAS classes, sized for VM execution —
    see DESIGN.md). *)

type class_ = W | A | C

val class_name : class_ -> string

type t = {
  name : string;  (** e.g. ["cg.A"] *)
  program : Ir.program;
  setup : Vm.t -> unit;
  output : Vm.t -> float array;
  verify : float array -> bool;
  reference : float array;  (** host-language double-precision reference *)
  hints : Config.t;
      (** user-provided base flags ([Ignore] on RNG routines, paper §2.1) *)
  comm_bytes : ranks:int -> Mpi_model.net -> float;
      (** modeled communication cycles per run at a rank count (Fig. 8);
          0 for single-node benchmarks *)
}

val run_native : t -> float array * Vm.t
(** Original binary, no instrumentation. *)

val run_patched : ?config:Config.t -> t -> float array * Vm.t
(** Instrumented binary under a configuration (default: the benchmark's
    hints only, i.e. the all-double base case of the overhead
    experiments). Runs checked. *)

val run_converted : t -> float array * Vm.t
(** The manually-converted all-single binary (plain single semantics). *)

val target :
  ?eval_steps:int ->
  ?faults:Faults.t ->
  ?backend:Compile.backend ->
  ?cache:Compile.cache ->
  t ->
  Bfs.Target.t
(** Search target with the benchmark's verification routine. [eval_steps],
    [faults], [backend] and [cache] are passed through to
    {!Bfs.Target.make} (per-evaluation step budget, deterministic fault
    injection, execution engine — default the compiled backend with a
    campaign-wide code cache; an explicit [cache] shares compiled blocks
    across campaigns, as the campaign server does). *)

val check_reference : t -> bool
(** Native run matches the host reference bit-for-bit. *)
