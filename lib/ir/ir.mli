(** The program representation the analysis operates on.

    The paper instruments x86-64 binaries; here the "binary" is an explicit
    register-machine IR with the same structure the analysis needs: programs
    contain modules, modules contain functions, functions contain basic
    blocks, blocks contain addressed instructions. Floating-point opcodes
    come in double ([D]) and single ([S]) variants so that the patcher's
    "opcode rewriting" (addsd -> addss) is a real transformation, plus
    emulated reduced formats [E (ebits, mbits)] (half, bfloat16, customs)
    whose operands travel exactly like [S] but whose results are rounded
    through the (ebits, mbits) grid.

    Register files are per-function (virtual registers [f0..], [i0..]);
    values in float registers and in the float heap are raw 64-bit patterns,
    so the replaced encoding of {!Craft_fpbits.Replaced} travels through
    loads, stores and moves untouched, exactly as on real hardware. *)

type prec = D | S | E of int * int

type fbinop = Add | Sub | Mul | Div | Min | Max
type funop = Sqrt | Neg | Abs
type flibm = Sin | Cos | Tan | Exp | Log | Atan
type cmpop = Eq | Ne | Lt | Le | Gt | Ge
type ibinop =
  | Iadd
  | Isub
  | Imul
  | Idiv
  | Irem
  | Iand
  | Ior
  | Ixor
  | Ishl
  | Ishr
  | Imax
  | Imin

type mem = { base : int option; index : int option; scale : int; offset : int }
(** Effective address: [offset + reg(base) + reg(index) * scale], in units of
    heap slots (8-byte doubles for the float heap, words for the int heap). *)

type call = {
  callee : int;
  fargs : int array;  (** caller float regs copied to callee f0.. *)
  iargs : int array;
  frets : int array;  (** caller float regs receiving callee returns *)
  irets : int array;
}

type op =
  | Fbin of prec * fbinop * int * int * int  (** dst, a, b *)
  | Fbinp of prec * fbinop * int * int * int
      (** packed (two-lane) arithmetic on adjacent register pairs: lanes
          [(dst, dst+1) <- (a, a+1) op (b, b+1)] — the 128-bit XMM packed
          operations the paper's replacement also covers (addpd → addps;
          the snippet template's "fix flags in any packed outputs") *)
  | Funop of prec * funop * int * int  (** dst, a *)
  | Flibm of prec * flibm * int * int  (** dst, a — libm call *)
  | Fcmp of prec * cmpop * int * int * int  (** int dst, fa, fb *)
  | Fconst of prec * int * float  (** dst, immediate *)
  | Fmov of int * int
  | Fload of int * mem
  | Fstore of mem * int
  | Fcvt_i2f of prec * int * int  (** float dst, int src *)
  | Fcvt_f2i of prec * int * int  (** int dst, float src; truncates *)
  | Ibin of ibinop * int * int * int
  | Icmp of cmpop * int * int * int
  | Iconst of int * int
  | Imov of int * int
  | Iload of int * mem
  | Istore of mem * int
  | Call of call
  | Ftestflag of int * int  (** int dst <- 1 if float src is replaced (snippet op) *)
  | Fdowncast of int * int  (** dst <- replaced(round32 src) (snippet op) *)
  | Fupcast of int * int  (** dst <- widen(extract src) (snippet op) *)
  | Fexpo of int * int
      (** int dst <- biased exponent field of float src (movq+shr+and;
          emitted by analysis instrumentation such as the cancellation
          detector, never by source programs) *)

type terminator =
  | Jmp of int  (** target: block index within the function *)
  | Br of int * int * int  (** int reg, then-index, else-index; taken if reg <> 0 *)
  | Ret

type instr = { addr : int; op : op }

type block = {
  label : int;  (** globally unique, stable under patching *)
  instrs : instr array;
  term : terminator;
}

type func = {
  fid : int;
  fname : string;
  module_name : string;
  n_fargs : int;
  n_iargs : int;
  ret_fregs : int array;  (** registers whose values Ret hands back *)
  ret_iregs : int array;
  n_fregs : int;
  n_iregs : int;
  entry : int;  (** entry block index *)
  blocks : block array;
}

type program = {
  funcs : func array;
  main : int;
  fheap_size : int;
  iheap_size : int;
  modules : string array;  (** distinct module names, in order *)
}

val is_candidate : op -> bool
(** True for the double-precision floating-point instructions the
    configuration space ranges over (the paper's set [Pd]): arithmetic,
    libm calls, comparisons, conversions and float immediates. Pure
    pattern movers ([Fmov]/[Fload]/[Fstore]) carry replaced values
    untouched and are never patched; snippet ops are patcher-internal. *)

val is_snippet_op : op -> bool

val defined_fregs : op -> int list
val used_fregs : op -> int list
val defined_iregs : op -> int list
val used_iregs : op -> int list

val mnemonic : op -> string
(** x86-flavoured mnemonic, e.g. ["addsd"], ["mulss"], ["cvtsi2sd"]. *)

val pp_op : Format.formatter -> op -> unit
(** Full disassembly of one instruction, e.g.
    ["addsd f1, f2 -> f0"]. *)

val disasm : op -> string

val pp_program : Format.formatter -> program -> unit
(** objdump-style listing of the whole program. *)

val validate : program -> (unit, string list) result
(** Structural well-formedness: register indices within the declared files,
    branch targets in range, call arities matching callee signatures, unique
    block labels and instruction addresses, entry block in range. *)

val validate_exn : program -> program
(** [validate_exn p] returns [p] or raises [Invalid_argument] listing the
    problems. *)

val find_func : program -> string -> func
(** Lookup by name; raises [Not_found]. *)
