(* [E (ebits, mbits)] is an emulated reduced format (half, bfloat16,
   tf32-style customs): operands travel as binary32 sentinel payloads like
   [S], but results are rounded through the (ebits, mbits) grid. [S] stays a
   distinct constructor (not [E (8, 23)]) so the pre-lattice single-precision
   pipeline keeps its exact F32 fast path bit-for-bit. *)
type prec = D | S | E of int * int

type fbinop = Add | Sub | Mul | Div | Min | Max
type funop = Sqrt | Neg | Abs
type flibm = Sin | Cos | Tan | Exp | Log | Atan
type cmpop = Eq | Ne | Lt | Le | Gt | Ge
type ibinop =
  | Iadd
  | Isub
  | Imul
  | Idiv
  | Irem
  | Iand
  | Ior
  | Ixor
  | Ishl
  | Ishr
  | Imax
  | Imin

type mem = { base : int option; index : int option; scale : int; offset : int }

type call = {
  callee : int;
  fargs : int array;
  iargs : int array;
  frets : int array;
  irets : int array;
}

type op =
  | Fbin of prec * fbinop * int * int * int
  | Fbinp of prec * fbinop * int * int * int
  | Funop of prec * funop * int * int
  | Flibm of prec * flibm * int * int
  | Fcmp of prec * cmpop * int * int * int
  | Fconst of prec * int * float
  | Fmov of int * int
  | Fload of int * mem
  | Fstore of mem * int
  | Fcvt_i2f of prec * int * int
  | Fcvt_f2i of prec * int * int
  | Ibin of ibinop * int * int * int
  | Icmp of cmpop * int * int * int
  | Iconst of int * int
  | Imov of int * int
  | Iload of int * mem
  | Istore of mem * int
  | Call of call
  | Ftestflag of int * int
  | Fdowncast of int * int
  | Fupcast of int * int
  | Fexpo of int * int

type terminator = Jmp of int | Br of int * int * int | Ret

type instr = { addr : int; op : op }
type block = { label : int; instrs : instr array; term : terminator }

type func = {
  fid : int;
  fname : string;
  module_name : string;
  n_fargs : int;
  n_iargs : int;
  ret_fregs : int array;
  ret_iregs : int array;
  n_fregs : int;
  n_iregs : int;
  entry : int;
  blocks : block array;
}

type program = {
  funcs : func array;
  main : int;
  fheap_size : int;
  iheap_size : int;
  modules : string array;
}

let is_candidate = function
  | Fbin _ | Fbinp _ | Funop _ | Flibm _ | Fcmp _ | Fconst _ | Fcvt_i2f _ | Fcvt_f2i _ ->
      true
  | Fmov _ | Fload _ | Fstore _ | Ibin _ | Icmp _ | Iconst _ | Imov _ | Iload _
  | Istore _ | Call _ | Ftestflag _ | Fdowncast _ | Fupcast _ | Fexpo _ ->
      false

let is_snippet_op = function
  | Ftestflag _ | Fdowncast _ | Fupcast _ | Fexpo _ -> true
  | Fbin _ | Fbinp _ | Funop _ | Flibm _ | Fcmp _ | Fconst _ | Fcvt_i2f _ | Fcvt_f2i _ | Fmov _
  | Fload _ | Fstore _ | Ibin _ | Icmp _ | Iconst _ | Imov _ | Iload _ | Istore _
  | Call _ ->
      false

let defined_fregs = function
  | Fbinp (_, _, d, _, _) -> [ d; d + 1 ]
  | Fbin (_, _, d, _, _)
  | Funop (_, _, d, _)
  | Flibm (_, _, d, _)
  | Fconst (_, d, _)
  | Fmov (d, _)
  | Fload (d, _)
  | Fcvt_i2f (_, d, _)
  | Fdowncast (d, _)
  | Fupcast (d, _) ->
      [ d ]
  | Call { frets; _ } -> Array.to_list frets
  | Fcmp _ | Fstore _ | Fcvt_f2i _ | Ibin _ | Icmp _ | Iconst _ | Imov _ | Iload _
  | Istore _ | Ftestflag _ | Fexpo _ ->
      []

let used_fregs = function
  | Fbinp (_, _, _, a, b) -> [ a; a + 1; b; b + 1 ]
  | Fbin (_, _, _, a, b) | Fcmp (_, _, _, a, b) -> [ a; b ]
  | Funop (_, _, _, a)
  | Flibm (_, _, _, a)
  | Fmov (_, a)
  | Fstore (_, a)
  | Fcvt_f2i (_, _, a)
  | Ftestflag (_, a)
  | Fdowncast (_, a)
  | Fupcast (_, a)
  | Fexpo (_, a) ->
      [ a ]
  | Call { fargs; _ } -> Array.to_list fargs
  | Fconst _ | Fload _ | Fcvt_i2f _ | Ibin _ | Icmp _ | Iconst _ | Imov _ | Iload _
  | Istore _ ->
      []

let defined_iregs = function
  | Fbinp _ -> []
  | Fcmp (_, _, d, _, _)
  | Fcvt_f2i (_, d, _)
  | Ibin (_, d, _, _)
  | Icmp (_, d, _, _)
  | Iconst (d, _)
  | Imov (d, _)
  | Iload (d, _)
  | Ftestflag (d, _)
  | Fexpo (d, _) ->
      [ d ]
  | Call { irets; _ } -> Array.to_list irets
  | Fbin _ | Funop _ | Flibm _ | Fconst _ | Fmov _ | Fload _ | Fstore _ | Fcvt_i2f _
  | Istore _ | Fdowncast _ | Fupcast _ ->
      []

let mem_iregs { base; index; _ } =
  (match base with Some r -> [ r ] | None -> [])
  @ (match index with Some r -> [ r ] | None -> [])

let used_iregs = function
  | Fbinp _ -> []
  | Ibin (_, _, a, b) | Icmp (_, _, a, b) -> [ a; b ]
  | Imov (_, a) | Fcvt_i2f (_, _, a) -> [ a ]
  | Istore (m, a) -> a :: mem_iregs m
  | Iload (_, m) | Fload (_, m) | Fstore (m, _) -> mem_iregs m
  | Call { iargs; _ } -> Array.to_list iargs
  | Fbin _ | Funop _ | Flibm _ | Fcmp _ | Fconst _ | Fmov _ | Fcvt_f2i _ | Iconst _
  | Ftestflag _ | Fdowncast _ | Fupcast _ | Fexpo _ ->
      []

let fbinop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Min -> "min"
  | Max -> "max"

let funop_name = function Sqrt -> "sqrt" | Neg -> "neg" | Abs -> "abs"

let flibm_name = function
  | Sin -> "sin"
  | Cos -> "cos"
  | Tan -> "tan"
  | Exp -> "exp"
  | Log -> "log"
  | Atan -> "atan"

let cmpop_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let ibinop_name = function
  | Iadd -> "add"
  | Isub -> "sub"
  | Imul -> "imul"
  | Idiv -> "idiv"
  | Irem -> "irem"
  | Iand -> "and"
  | Ior -> "or"
  | Ixor -> "xor"
  | Ishl -> "shl"
  | Ishr -> "shr"
  | Imax -> "imax"
  | Imin -> "imin"

let suffix = function
  | D -> "sd"
  | S -> "ss"
  | E (e, m) -> Printf.sprintf "s.e%dm%d" e m

let psuffix = function
  | D -> "pd"
  | S -> "ps"
  | E (e, m) -> Printf.sprintf "p.e%dm%d" e m

let mnemonic = function
  | Fbin (p, o, _, _, _) -> fbinop_name o ^ suffix p
  | Fbinp (p, o, _, _, _) -> fbinop_name o ^ psuffix p
  | Funop (p, o, _, _) -> funop_name o ^ suffix p
  | Flibm (p, o, _, _) -> flibm_name o ^ suffix p
  | Fcmp (p, c, _, _, _) -> "cmp" ^ suffix p ^ "." ^ cmpop_name c
  | Fconst (p, _, _) -> "mov" ^ suffix p ^ ".imm"
  | Fmov _ -> "movq"
  | Fload _ -> "movsd.ld"
  | Fstore _ -> "movsd.st"
  | Fcvt_i2f (D, _, _) -> "cvtsi2sd"
  | Fcvt_i2f (S, _, _) -> "cvtsi2ss"
  | Fcvt_i2f ((E _ as p), _, _) -> "cvtsi2" ^ suffix p
  | Fcvt_f2i (D, _, _) -> "cvttsd2si"
  | Fcvt_f2i (S, _, _) -> "cvttss2si"
  | Fcvt_f2i ((E _ as p), _, _) -> "cvtt" ^ suffix p ^ "2si"
  | Ibin (o, _, _, _) -> ibinop_name o
  | Icmp (c, _, _, _) -> "cmp." ^ cmpop_name c
  | Iconst _ -> "mov.imm"
  | Imov _ -> "mov"
  | Iload _ -> "mov.ld"
  | Istore _ -> "mov.st"
  | Call _ -> "call"
  | Ftestflag _ -> "testflag"
  | Fdowncast _ -> "cvtsd2ss.flag"
  | Fupcast _ -> "cvtss2sd.flag"
  | Fexpo _ -> "expfield"

let pp_mem ppf { base; index; scale; offset } =
  let pp_opt ppf = function Some r -> Format.fprintf ppf "i%d" r | None -> () in
  Format.fprintf ppf "[%d%t%t]" offset
    (fun ppf -> match base with Some _ -> Format.fprintf ppf "+%a" pp_opt base | None -> ())
    (fun ppf ->
      match index with
      | Some _ -> Format.fprintf ppf "+%a*%d" pp_opt index scale
      | None -> ())

let pp_op ppf op =
  let m = mnemonic op in
  match op with
  | Fbin (_, _, d, a, b) | Fbinp (_, _, d, a, b) ->
      Format.fprintf ppf "%s f%d, f%d -> f%d" m a b d
  | Funop (_, _, d, a) | Flibm (_, _, d, a) -> Format.fprintf ppf "%s f%d -> f%d" m a d
  | Fcmp (_, _, d, a, b) -> Format.fprintf ppf "%s f%d, f%d -> i%d" m a b d
  | Fconst (_, d, x) -> Format.fprintf ppf "%s $%h -> f%d" m x d
  | Fmov (d, a) -> Format.fprintf ppf "%s f%d -> f%d" m a d
  | Fload (d, mem) -> Format.fprintf ppf "%s %a -> f%d" m pp_mem mem d
  | Fstore (mem, a) -> Format.fprintf ppf "%s f%d -> %a" m a pp_mem mem
  | Fcvt_i2f (_, d, a) -> Format.fprintf ppf "%s i%d -> f%d" m a d
  | Fcvt_f2i (_, d, a) -> Format.fprintf ppf "%s f%d -> i%d" m a d
  | Ibin (_, d, a, b) | Icmp (_, d, a, b) -> Format.fprintf ppf "%s i%d, i%d -> i%d" m a b d
  | Iconst (d, x) -> Format.fprintf ppf "%s $%d -> i%d" m x d
  | Imov (d, a) -> Format.fprintf ppf "%s i%d -> i%d" m a d
  | Iload (d, mem) -> Format.fprintf ppf "%s %a -> i%d" m pp_mem mem d
  | Istore (mem, a) -> Format.fprintf ppf "%s i%d -> %a" m a pp_mem mem
  | Call { callee; fargs; iargs; frets; irets } ->
      let pp_regs pfx ppf rs =
        Array.iteri
          (fun i r -> Format.fprintf ppf "%s%s%d" (if i > 0 then ", " else "") pfx r)
          rs
      in
      Format.fprintf ppf "call @%d (%a%s%a) -> (%a%s%a)" callee (pp_regs "f") fargs
        (if Array.length fargs > 0 && Array.length iargs > 0 then ", " else "")
        (pp_regs "i") iargs (pp_regs "f") frets
        (if Array.length frets > 0 && Array.length irets > 0 then ", " else "")
        (pp_regs "i") irets
  | Ftestflag (d, a) | Fexpo (d, a) -> Format.fprintf ppf "%s f%d -> i%d" m a d
  | Fdowncast (d, a) | Fupcast (d, a) -> Format.fprintf ppf "%s f%d -> f%d" m a d

let disasm op = Format.asprintf "%a" pp_op op

let pp_term ppf = function
  | Jmp t -> Format.fprintf ppf "jmp .B%d" t
  | Br (r, t, e) -> Format.fprintf ppf "br i%d ? .B%d : .B%d" r t e
  | Ret -> Format.pp_print_string ppf "ret"

let pp_program ppf (p : program) =
  Format.fprintf ppf "; program main=%s fheap=%d iheap=%d@."
    p.funcs.(p.main).fname p.fheap_size p.iheap_size;
  Array.iter
    (fun f ->
      let regs pfx rs =
        "["
        ^ String.concat "," (Array.to_list (Array.map (Printf.sprintf "%s%d" pfx) rs))
        ^ "]"
      in
      Format.fprintf ppf
        "@[<v>%s:%s()  ; fid=%d fargs=%d iargs=%d frets=%s irets=%s fregs=%d iregs=%d@,"
        f.module_name f.fname f.fid f.n_fargs f.n_iargs (regs "f" f.ret_fregs)
        (regs "i" f.ret_iregs) f.n_fregs f.n_iregs;
      Array.iteri
        (fun i b ->
          Format.fprintf ppf ".B%d (label %d)%s:@," i b.label
            (if i = f.entry then " <entry>" else "");
          Array.iter
            (fun { addr; op } -> Format.fprintf ppf "  0x%06x  %a@," addr pp_op op)
            b.instrs;
          Format.fprintf ppf "          %a@," pp_term b.term)
        f.blocks;
      Format.fprintf ppf "@,@]")
    p.funcs

let validate (p : program) =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let labels = Hashtbl.create 64 in
  let addrs = Hashtbl.create 256 in
  if p.main < 0 || p.main >= Array.length p.funcs then err "main fid %d out of range" p.main;
  Array.iteri
    (fun fid f ->
      if f.fid <> fid then err "%s: fid %d at index %d" f.fname f.fid fid;
      if not (Array.exists (String.equal f.module_name) p.modules) then
        err "%s: module %S not listed in program modules" f.fname f.module_name;
      if f.entry < 0 || f.entry >= Array.length f.blocks then
        err "%s: entry %d out of range" f.fname f.entry;
      if f.n_fargs > f.n_fregs then err "%s: n_fargs > n_fregs" f.fname;
      if f.n_iargs > f.n_iregs then err "%s: n_iargs > n_iregs" f.fname;
      let chk_f r = if r < 0 || r >= f.n_fregs then err "%s: freg f%d out of range" f.fname r in
      let chk_i r = if r < 0 || r >= f.n_iregs then err "%s: ireg i%d out of range" f.fname r in
      Array.iter chk_f f.ret_fregs;
      Array.iter chk_i f.ret_iregs;
      Array.iter
        (fun b ->
          if Hashtbl.mem labels b.label then err "%s: duplicate block label %d" f.fname b.label
          else Hashtbl.add labels b.label ();
          Array.iter
            (fun { addr; op } ->
              if Hashtbl.mem addrs addr then err "%s: duplicate address 0x%x" f.fname addr
              else Hashtbl.add addrs addr ();
              List.iter chk_f (defined_fregs op);
              List.iter chk_f (used_fregs op);
              List.iter chk_i (defined_iregs op);
              List.iter chk_i (used_iregs op);
              match op with
              | Call c ->
                  if c.callee < 0 || c.callee >= Array.length p.funcs then
                    err "%s: call to unknown fid %d" f.fname c.callee
                  else begin
                    let g = p.funcs.(c.callee) in
                    if Array.length c.fargs <> g.n_fargs then
                      err "%s: call @%s with %d fargs, expected %d" f.fname g.fname
                        (Array.length c.fargs) g.n_fargs;
                    if Array.length c.iargs <> g.n_iargs then
                      err "%s: call @%s with %d iargs, expected %d" f.fname g.fname
                        (Array.length c.iargs) g.n_iargs;
                    if Array.length c.frets <> Array.length g.ret_fregs then
                      err "%s: call @%s receives %d frets, callee returns %d" f.fname g.fname
                        (Array.length c.frets) (Array.length g.ret_fregs);
                    if Array.length c.irets <> Array.length g.ret_iregs then
                      err "%s: call @%s receives %d irets, callee returns %d" f.fname g.fname
                        (Array.length c.irets) (Array.length g.ret_iregs)
                  end
              | _ -> ())
            b.instrs;
          let chk_target t =
            if t < 0 || t >= Array.length f.blocks then
              err "%s: branch target %d out of range" f.fname t
          in
          match b.term with
          | Jmp t -> chk_target t
          | Br (r, t, e) ->
              chk_i r;
              chk_target t;
              chk_target e
          | Ret -> ())
        f.blocks)
    p.funcs;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let validate_exn p =
  match validate p with
  | Ok () -> p
  | Error es -> invalid_arg ("Ir.validate: " ^ String.concat "; " es)

let find_func p name =
  match Array.find_opt (fun f -> String.equal f.fname name) p.funcs with
  | Some f -> f
  | None -> raise Not_found
