(** Analytic MPI rank-scaling model (for the paper's Fig. 8).

    The paper measures instrumented/native wall-clock ratios of the NAS MPI
    benchmarks at 1–8 ranks. Only computation is instrumented; communication
    time is untouched, so the overhead ratio is diluted as the communication
    fraction grows with rank count. We model exactly that:

    [T(n)      = comp / n + comm(n)]
    [T_ins(n)  = comp_instrumented / n + comm(n)]
    [overhead(n) = T_ins(n) / T(n)]

    with [comp] taken from real cost-model measurements of the single-rank
    program and [comm(n)] from standard collective/halo formulas. *)

type net = {
  latency_cycles : float;  (** per-message latency *)
  net_bandwidth : float;  (** bytes per cycle through the network *)
}

val default_net : net
(** ≈1 µs latency and ≈1 GB/s per link at the paper's 2.8 GHz clock. *)

val allreduce : net -> ranks:int -> bytes:float -> float
(** Recursive-doubling allreduce: [log2(ranks)] message rounds. *)

val alltoall : net -> ranks:int -> bytes_total:float -> float
(** Personalized all-to-all of [bytes_total] spread over ranks (FT's
    transpose). *)

val halo : net -> ranks:int -> bytes_boundary:float -> float
(** Nearest-neighbour boundary exchange, both directions. *)

val overhead_at :
  comp_native:float -> comp_instr:float -> comm:(int -> float) -> int -> float
(** [overhead_at ~comp_native ~comp_instr ~comm n] is the modeled
    instrumentation overhead at [n] ranks. *)
