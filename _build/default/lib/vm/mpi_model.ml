type net = { latency_cycles : float; net_bandwidth : float }

let default_net = { latency_cycles = 2800.0; net_bandwidth = 0.35 }

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let allreduce net ~ranks ~bytes =
  if ranks <= 1 then 0.0
  else
    float_of_int (log2i ranks) *. (net.latency_cycles +. (bytes /. net.net_bandwidth))

let alltoall net ~ranks ~bytes_total =
  if ranks <= 1 then 0.0
  else begin
    let r = float_of_int ranks in
    let per_rank_sends = r -. 1.0 in
    let bytes_moved = bytes_total *. (r -. 1.0) /. r in
    (per_rank_sends *. net.latency_cycles) +. (bytes_moved /. net.net_bandwidth)
  end

let halo net ~ranks ~bytes_boundary =
  if ranks <= 1 then 0.0
  else 2.0 *. (net.latency_cycles +. (bytes_boundary /. net.net_bandwidth))

let overhead_at ~comp_native ~comp_instr ~comm n =
  let nf = float_of_int n in
  let t_nat = (comp_native /. nf) +. comm n in
  let t_ins = (comp_instr /. nf) +. comm n in
  t_ins /. t_nat
