lib/vm/vm.ml: Array F32 Float Int32 Int64 Ir Replaced Static
