lib/vm/cost.mli: Ir Vm
