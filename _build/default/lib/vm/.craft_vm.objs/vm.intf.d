lib/vm/vm.mli: Ir
