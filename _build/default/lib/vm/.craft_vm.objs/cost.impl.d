lib/vm/cost.ml: Array Float Ir Vm
