lib/vm/mpi_model.ml:
