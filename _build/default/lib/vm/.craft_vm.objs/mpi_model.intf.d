lib/vm/mpi_model.mli:
