(** Post-hoc execution cost model.

    The paper reports wall-clock overheads on a 2.8 GHz Xeon; here runtime
    is modeled from the VM's execution counts with a per-opcode cycle table
    and a roofline memory term: [time = max(cycles, bytes / bandwidth)].
    Snippet ops ([Ftestflag]/[Fdowncast]/[Fupcast]) are priced as the x86
    integer sequences of the paper's Fig.-6 template, so instrumented-versus-
    native ratios measure the same structural overhead the paper measures.

    Instrumented programs still move 8 bytes per float access (the replaced
    value lives in the original 64-bit slot — the paper's "does not fully
    realize the benefits"); manually-converted single-precision programs
    pass [fmem_bytes:4.]. *)

type params = {
  c_fadd : float;
  c_fmul : float;
  c_fdiv_d : float;
  c_fdiv_s : float;
  c_fsqrt_d : float;
  c_fsqrt_s : float;
  c_flibm_d : float;
  c_flibm_s : float;
  c_fcmp : float;
  c_fconst : float;
  c_fmov : float;
  c_fcvt : float;
  c_fload : float;
  c_fstore : float;
  c_iop : float;
  c_iload : float;
  c_istore : float;
  c_call : float;
  c_branch : float;
  c_testflag : float;
      (** Fig.-6 flag check: mov/mov/and/mov/test/je plus the push/pop
          save-restore share — ~13 cycles per tested operand *)
  c_downcast : float;  (** cvtsd2ss + or + copy back *)
  c_upcast : float;
  bytes_fmem : float;  (** bytes per float heap access (8; 4 for converted-single) *)
  bytes_imem : float;
  bandwidth : float;  (** sustained bytes per cycle *)
  clock_ghz : float;  (** for converting modeled cycles to seconds *)
}

val default : params

type run_cost = {
  cycles : float;  (** modeled compute cycles *)
  mem_bytes : float;  (** modeled memory traffic *)
  time_cycles : float;  (** roofline: max(cycles, mem_bytes / bandwidth) *)
  seconds : float;
  fp_ops : int;  (** executed candidate FP instructions *)
}

val op_cycles : params -> Ir.op -> float

val of_run : ?params:params -> ?fmem_bytes:float -> Vm.t -> run_cost
(** Price a finished run from its counters. [fmem_bytes] overrides
    [params.bytes_fmem]. *)

val overhead : run_cost -> run_cost -> float
(** [overhead instrumented native] is the paper's overhead ratio (X). *)

val mflops : run_cost -> float
