type sizes = { m : int; steps : int }

let sizes = function
  | Kernel.W -> { m = 1 lsl 8; steps = 2 }
  | Kernel.A -> { m = 1 lsl 10; steps = 2 }
  | Kernel.C -> { m = 1 lsl 12; steps = 3 }

let alpha = 1e-4
let checksum_samples m = min 1024 (m / 4)

(* ---------- host reference, op-for-op identical to the IR ---------- *)

let host_bitrev re im m =
  let j = ref 0 in
  for i = 0 to m - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let k = ref (m / 2) in
    while !k <= !j do
      j := !j - !k;
      k := !k / 2
    done;
    j := !j + !k
  done

let host_fft wre wim re im m sgn =
  host_bitrev re im m;
  let len = ref 2 in
  while !len <= m do
    let half = !len / 2 in
    let step = m / !len in
    for b = 0 to (m / !len) - 1 do
      let base = b * !len in
      for j = 0 to half - 1 do
        let widx = j * step in
        let wr = wre.(widx) in
        let wi = sgn *. wim.(widx) in
        let ur = re.(base + j) and ui = im.(base + j) in
        let vr = re.(base + j + half) and vi = im.(base + j + half) in
        let tr = (vr *. wr) -. (vi *. wi) in
        let ti = (vr *. wi) +. (vi *. wr) in
        re.(base + j) <- ur +. tr;
        im.(base + j) <- ui +. ti;
        re.(base + j + half) <- ur -. tr;
        im.(base + j + half) <- ui -. ti
      done
    done;
    len := !len * 2
  done

let input_data ~seed m =
  let rng = Rng.create seed in
  let re = Array.init m (fun _ -> Rng.uniform rng -. 0.5) in
  let im = Array.init m (fun _ -> Rng.uniform rng -. 0.5) in
  (re, im)

let host_reference ~seed sz =
  let m = sz.m in
  let re, im = input_data ~seed m in
  let re = Array.copy re and im = Array.copy im in
  let wre = Array.make (m / 2) 0.0 and wim = Array.make (m / 2) 0.0 in
  let ang = -2.0 *. Float.pi /. float_of_int m in
  for j = 0 to (m / 2) - 1 do
    let a = ang *. float_of_int j in
    wre.(j) <- cos a;
    wim.(j) <- sin a
  done;
  host_fft wre wim re im m 1.0;
  let inv_m = 1.0 /. float_of_int m in
  let sre = Array.make m 0.0 and sim = Array.make m 0.0 in
  let out = ref [] in
  for t = 1 to sz.steps do
    (* evolve: real exponential damping by wavenumber *)
    let coef = -.alpha *. float_of_int t in
    for j = 0 to m - 1 do
      let kbar = float_of_int (min j (m - j)) in
      let f = exp (coef *. (kbar *. kbar)) in
      re.(j) <- re.(j) *. f;
      im.(j) <- im.(j) *. f
    done;
    Array.blit re 0 sre 0 m;
    Array.blit im 0 sim 0 m;
    host_fft wre wim sre sim m (-1.0);
    for j = 0 to m - 1 do
      sre.(j) <- sre.(j) *. inv_m;
      sim.(j) <- sim.(j) *. inv_m
    done;
    let csr = ref 0.0 and csi = ref 0.0 in
    let q = checksum_samples m in
    for k = 1 to q do
      let j = 5 * k mod m in
      csr := !csr +. sre.(j);
      csi := !csi +. sim.(j)
    done;
    out := !csi :: !csr :: !out
  done;
  Array.of_list (List.rev !out)

(* ---------- the IR binary ---------- *)

let build sz =
  let m = sz.m in
  let t = Builder.create () in
  let reb = Builder.alloc_f t m in
  let imb = Builder.alloc_f t m in
  let sre = Builder.alloc_f t m in
  let sim = Builder.alloc_f t m in
  let wre = Builder.alloc_f t (m / 2) in
  let wim = Builder.alloc_f t (m / 2) in
  let out = Builder.alloc_f t (2 * sz.steps) in
  let open Builder in
  let twiddles =
    func t ~module_:"ft" "twiddles" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let ang = fconst b (-2.0 *. Float.pi /. float_of_int m) in
        for_range b 0 (m / 2) (fun j ->
            let a = fmul b ang (i2f b j) in
            storef b (idx wre j) (fcos b a);
            storef b (idx wim j) (fsin b a)))
  in
  (* in-place bit-reversal permutation of the array at int-arg bases *)
  let bitrev =
    func t ~module_:"fftlib" "bitrev" ~nf_args:0 ~ni_args:2 (fun b _ iargs ->
        let rbase = iargs.(0) and ibase = iargs.(1) in
        let j = freshi b in
        seti b j (iconst b 0);
        for_range b 0 (m - 1) (fun i ->
            when_ b (ilt b i j) (fun () ->
                let t1 = loadf b (dyn_idx rbase i) in
                let t2 = loadf b (dyn_idx rbase j) in
                storef b (dyn_idx rbase i) t2;
                storef b (dyn_idx rbase j) t1;
                let t1 = loadf b (dyn_idx ibase i) in
                let t2 = loadf b (dyn_idx ibase j) in
                storef b (dyn_idx ibase i) t2;
                storef b (dyn_idx ibase j) t1);
            let k = freshi b in
            seti b k (iconst b (m / 2));
            while_ b
              (fun () -> ile b k j)
              (fun () ->
                seti b j (isub b j k);
                seti b k (idiv b k (iconst b 2)));
            seti b j (iadd b j k)))
  in
  (* radix-2 DIT fft on the arrays at int-arg bases; float arg = sign *)
  let fft =
    func t ~module_:"fftlib" "fft" ~nf_args:1 ~ni_args:2 (fun b fargs iargs ->
        let sgn = fargs.(0) in
        let rbase = iargs.(0) and ibase = iargs.(1) in
        let _ = call b bitrev ~fargs:[] ~iargs:[ rbase; ibase ] in
        let len = freshi b in
        seti b len (iconst b 2);
        let mm = iconst b m in
        while_ b
          (fun () -> ile b len mm)
          (fun () ->
            let half = idiv b len (iconst b 2) in
            let step = idiv b mm len in
            let nblocks = idiv b mm len in
            for_ b (iconst b 0) nblocks (fun blk ->
                let base = imul b blk len in
                for_ b (iconst b 0) half (fun j ->
                    let widx = imul b j step in
                    let wr = loadf b (idx wre widx) in
                    let wi = fmul b sgn (loadf b (idx wim widx)) in
                    let lo = iadd b base j in
                    let hi = iadd b lo half in
                    let ur = loadf b (dyn_idx rbase lo) in
                    let ui = loadf b (dyn_idx ibase lo) in
                    let vr = loadf b (dyn_idx rbase hi) in
                    let vi = loadf b (dyn_idx ibase hi) in
                    let tr = fsub b (fmul b vr wr) (fmul b vi wi) in
                    let ti = fadd b (fmul b vr wi) (fmul b vi wr) in
                    storef b (dyn_idx rbase lo) (fadd b ur tr);
                    storef b (dyn_idx ibase lo) (fadd b ui ti);
                    storef b (dyn_idx rbase hi) (fsub b ur tr);
                    storef b (dyn_idx ibase hi) (fsub b ui ti)));
            seti b len (imul b len (iconst b 2))))
  in
  let evolve =
    func t ~module_:"ft" "evolve" ~nf_args:1 ~ni_args:0 (fun b fargs _ ->
        let tstep = fargs.(0) in
        let malpha = fconst b (-.alpha) in
        let coef = fmul b malpha tstep in
        for_range b 0 m (fun j ->
            let jm = isub b (iconst b m) j in
            let kbar = freshi b in
            if_ b (ilt b j jm) (fun () -> seti b kbar j) (fun () -> seti b kbar jm);
            let kf = i2f b kbar in
            let f = fexp b (fmul b coef (fmul b kf kf)) in
            storef b (idx reb j) (fmul b (loadf b (idx reb j)) f);
            storef b (idx imb j) (fmul b (loadf b (idx imb j)) f)))
  in
  let checksum =
    func t ~module_:"ft" "checksum" ~nf_args:0 ~ni_args:1 (fun b _ iargs ->
        let slot = iargs.(0) in
        let zero = fconst b 0.0 in
        let csr = freshf b and csi = freshf b in
        setf b csr zero;
        setf b csi zero;
        let q = checksum_samples m in
        for_range b 1 (q + 1) (fun k ->
            let j = irem b (imulc b k 5) (iconst b m) in
            setf b csr (fadd b csr (loadf b (idx sre j)));
            setf b csi (fadd b csi (loadf b (idx sim j))));
        storef b (dyn slot) csr;
        storef b (dyn_off slot 1) csi)
  in
  let main =
    func t ~module_:"ft" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let _ = call b twiddles ~fargs:[] ~iargs:[] in
        let one = fconst b 1.0 in
        let mone = fconst b (-1.0) in
        let _ = call b fft ~fargs:[ one ] ~iargs:[ iconst b reb; iconst b imb ] in
        let inv_m = fconst b (1.0 /. float_of_int m) in
        for_range b 1 (sz.steps + 1) (fun tstep ->
            let _ = call b evolve ~fargs:[ i2f b tstep ] ~iargs:[] in
            for_range b 0 m (fun j ->
                storef b (idx sre j) (loadf b (idx reb j));
                storef b (idx sim j) (loadf b (idx imb j)));
            let _ = call b fft ~fargs:[ mone ] ~iargs:[ iconst b sre; iconst b sim ] in
            for_range b 0 m (fun j ->
                storef b (idx sre j) (fmul b (loadf b (idx sre j)) inv_m);
                storef b (idx sim j) (fmul b (loadf b (idx sim j)) inv_m));
            let slot = iadd b (iconst b out) (imulc b (isub b tstep (iconst b 1)) 2) in
            let _ = call b checksum ~fargs:[] ~iargs:[ slot ] in
            ()))
  in
  (Builder.program t ~main, reb, imb, out)

let make cls =
  let sz = sizes cls in
  let seed = 1234 + sz.m in
  let program, reb, imb, out = build sz in
  let re, im = input_data ~seed sz.m in
  let reference = host_reference ~seed sz in
  let verify res =
    Array.length res = Array.length reference
    && Array.for_all2
         (fun v r -> Float.abs (v -. r) <= 1e-11 *. Float.max 1.0 (Float.abs r))
         res reference
  in
  {
    Kernel.name = "ft." ^ Kernel.class_name cls;
    program;
    setup =
      (fun vm ->
        Vm.write_f vm reb re;
        Vm.write_f vm imb im);
    output = (fun vm -> Vm.read_f vm out (2 * sz.steps));
    verify;
    reference;
    hints = Config.empty;
    comm_bytes =
      (fun ~ranks net ->
        (* each FFT performs a full transpose-style exchange *)
        let per_fft = Mpi_model.alltoall net ~ranks ~bytes_total:(16.0 *. float_of_int sz.m) in
        float_of_int (1 + sz.steps) *. per_fft);
  }
