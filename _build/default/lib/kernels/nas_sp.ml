type sizes = { lines : int; len : int; tol : float }

let sizes = function
  | Kernel.W -> { lines = 8; len = 32; tol = 1e-7 }
  | Kernel.A -> { lines = 16; len = 48; tol = 1e-7 }
  | Kernel.C -> { lines = 32; len = 64; tol = 1e-7 }

type data = {
  a2 : float array;  (** second sub-diagonal, M*L *)
  a1 : float array;
  b : float array;
  c1 : float array;
  c2 : float array;
  d : float array;
  xtrue : float array;
}

let gen ~seed sz =
  let m = sz.lines and l = sz.len in
  let rng = Rng.create seed in
  let rnd () = Rng.uniform rng -. 0.5 in
  let a2 = Array.init (m * l) (fun _ -> rnd ()) in
  let a1 = Array.init (m * l) (fun _ -> rnd ()) in
  let b = Array.init (m * l) (fun _ -> 5.0 +. rnd ()) in
  let c1 = Array.init (m * l) (fun _ -> rnd ()) in
  let c2 = Array.init (m * l) (fun _ -> rnd ()) in
  let xtrue = Array.init (m * l) (fun _ -> rnd ()) in
  let d = Array.make (m * l) 0.0 in
  for line = 0 to m - 1 do
    for k = 0 to l - 1 do
      let g = (line * l) + k in
      let acc = ref (b.(g) *. xtrue.(g)) in
      if k >= 1 then acc := !acc +. (a1.(g) *. xtrue.(g - 1));
      if k >= 2 then acc := !acc +. (a2.(g) *. xtrue.(g - 2));
      if k <= l - 2 then acc := !acc +. (c1.(g) *. xtrue.(g + 1));
      if k <= l - 3 then acc := !acc +. (c2.(g) *. xtrue.(g + 2));
      d.(g) <- !acc
    done
  done;
  { a2; a1; b; c1; c2; d; xtrue }

(* ---------- host reference (destructive on copies) ---------- *)

let host_solve sz (data : data) =
  let m = sz.lines and l = sz.len in
  let a2 = Array.copy data.a2 and a1 = Array.copy data.a1 in
  let b = Array.copy data.b and c1 = Array.copy data.c1 in
  let c2 = Array.copy data.c2 and d = Array.copy data.d in
  let x = Array.make (m * l) 0.0 in
  for line = 0 to m - 1 do
    let o = line * l in
    for k = 0 to l - 1 do
      if k >= 2 then begin
        let m2 = a2.(o + k) /. b.(o + k - 2) in
        a1.(o + k) <- a1.(o + k) -. (m2 *. c1.(o + k - 2));
        b.(o + k) <- b.(o + k) -. (m2 *. c2.(o + k - 2));
        d.(o + k) <- d.(o + k) -. (m2 *. d.(o + k - 2))
      end;
      if k >= 1 then begin
        let m1 = a1.(o + k) /. b.(o + k - 1) in
        b.(o + k) <- b.(o + k) -. (m1 *. c1.(o + k - 1));
        c1.(o + k) <- c1.(o + k) -. (m1 *. c2.(o + k - 1));
        d.(o + k) <- d.(o + k) -. (m1 *. d.(o + k - 1))
      end
    done;
    x.(o + l - 1) <- d.(o + l - 1) /. b.(o + l - 1);
    x.(o + l - 2) <- (d.(o + l - 2) -. (c1.(o + l - 2) *. x.(o + l - 1))) /. b.(o + l - 2);
    for k = l - 3 downto 0 do
      x.(o + k) <-
        ((d.(o + k) -. (c1.(o + k) *. x.(o + k + 1))) -. (c2.(o + k) *. x.(o + k + 2)))
        /. b.(o + k)
    done
  done;
  x

(* ---------- the IR binary ---------- *)

let build sz =
  let m = sz.lines and l = sz.len in
  let t = Builder.create () in
  let a2b = Builder.alloc_f t (m * l) in
  let a1b = Builder.alloc_f t (m * l) in
  let bb = Builder.alloc_f t (m * l) in
  let c1b = Builder.alloc_f t (m * l) in
  let c2b = Builder.alloc_f t (m * l) in
  let db = Builder.alloc_f t (m * l) in
  let xb = Builder.alloc_f t (m * l) in
  let open Builder in
  let eliminate =
    func t ~module_:"sp" "eliminate" ~nf_args:0 ~ni_args:1 (fun b _ ia ->
        let o = imulc b ia.(0) l in
        let ld base g k = loadf b (dyn_idx (iconst b base) (iaddc b g k)) in
        let st base g k v = storef b (dyn_idx (iconst b base) (iaddc b g k)) v in
        for_range b 0 l (fun k ->
            let g = iadd b o k in
            when_ b (ige b k (iconst b 2)) (fun () ->
                let m2 = fdiv b (ld a2b g 0) (ld bb g (-2)) in
                st a1b g 0 (fsub b (ld a1b g 0) (fmul b m2 (ld c1b g (-2))));
                st bb g 0 (fsub b (ld bb g 0) (fmul b m2 (ld c2b g (-2))));
                st db g 0 (fsub b (ld db g 0) (fmul b m2 (ld db g (-2)))));
            when_ b (ige b k (iconst b 1)) (fun () ->
                let m1 = fdiv b (ld a1b g 0) (ld bb g (-1)) in
                st bb g 0 (fsub b (ld bb g 0) (fmul b m1 (ld c1b g (-1))));
                st c1b g 0 (fsub b (ld c1b g 0) (fmul b m1 (ld c2b g (-1))));
                st db g 0 (fsub b (ld db g 0) (fmul b m1 (ld db g (-1)))))))
  in
  let backsolve =
    func t ~module_:"sp" "backsolve" ~nf_args:0 ~ni_args:1 (fun b _ ia ->
        let o = imulc b ia.(0) l in
        let ld base g k = loadf b (dyn_idx (iconst b base) (iaddc b g k)) in
        let st base g k v = storef b (dyn_idx (iconst b base) (iaddc b g k)) v in
        let glast = iaddc b o (l - 1) in
        st xb glast 0 (fdiv b (ld db glast 0) (ld bb glast 0));
        let g2 = iaddc b o (l - 2) in
        st xb g2 0
          (fdiv b (fsub b (ld db g2 0) (fmul b (ld c1b g2 0) (ld xb g2 1))) (ld bb g2 0));
        for_down b (iconst b (l - 2)) (iconst b 0) (fun k ->
            let g = iadd b o k in
            let num =
              fsub b
                (fsub b (ld db g 0) (fmul b (ld c1b g 0) (ld xb g 1)))
                (fmul b (ld c2b g 0) (ld xb g 2))
            in
            st xb g 0 (fdiv b num (ld bb g 0))))
  in
  let main =
    func t ~module_:"sp" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for_range b 0 m (fun line ->
            let _ = call b eliminate ~fargs:[] ~iargs:[ line ] in
            let _ = call b backsolve ~fargs:[] ~iargs:[ line ] in
            ()))
  in
  let prog = Builder.program t ~main in
  (prog, a2b, a1b, bb, c1b, c2b, db, xb)

let make cls =
  let sz = sizes cls in
  let data = gen ~seed:(1300 + sz.lines) sz in
  let program, a2b, a1b, bb, c1b, c2b, db, xb = build sz in
  let reference = host_solve sz data in
  let nx = Array.length reference in
  let verify res = Stats.rel_err_inf res data.xtrue <= sz.tol in
  {
    Kernel.name = "sp." ^ Kernel.class_name cls;
    program;
    setup =
      (fun vm ->
        Vm.write_f vm a2b data.a2;
        Vm.write_f vm a1b data.a1;
        Vm.write_f vm bb data.b;
        Vm.write_f vm c1b data.c1;
        Vm.write_f vm c2b data.c2;
        Vm.write_f vm db data.d);
    output = (fun vm -> Vm.read_f vm xb nx);
    verify;
    reference;
    hints = Config.empty;
    comm_bytes =
      (fun ~ranks net ->
        2.0 *. Mpi_model.halo net ~ranks ~bytes_boundary:(16.0 *. float_of_int sz.lines));
  }
