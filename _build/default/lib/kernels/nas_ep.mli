(** EP-like benchmark: embarrassingly-parallel random-pair generation with
    Box–Muller Gaussian tallies (the numerical character of NAS EP).

    Random numbers come from a NAS-style [randlc] linear congruential
    generator implemented {e in floating point} inside the binary — the
    classic "unusual construct" the paper's [ignore] flag exists for: its
    exact double arithmetic breaks catastrophically (not gracefully) in
    single precision, so the kernel ships with an [Ignore] hint on the
    [randlc] function.

    Outputs: [sx; sy; q0..q9] (Gaussian sums and annulus counts).
    Verification: sums within 1e-6 relative, counts exact. *)

val pairs : Kernel.class_ -> int
(** Number of random pairs per class. *)

val randlc : float -> float -> float * float
(** [randlc x a] is one step of the NAS-style floating-point LCG:
    [(next_state, uniform_in_0_1)]. Host reference, bit-identical to the
    binary's [randlc] function. *)

val make : Kernel.class_ -> Kernel.t
