(** BT-like benchmark: independent block-tridiagonal line solves with 3×3
    blocks (the numerical character of NAS BT's line-implicit solver).

    Each of M lines of length L carries a diagonally-dominant block
    tridiagonal system assembled host-side from a known solution; the
    binary runs the block Thomas algorithm (explicit 3×3 inversion by
    adjugate, block updates, back-substitution) and the verification
    routine checks the recovered solution against the known one in
    relative infinity norm. The tolerance sits near single precision's
    achievable error — the paper's BT is the case where large fractions
    pass individually but the composed union is fragile (bt.W fails
    final verification). *)

type sizes = { lines : int; len : int; tol : float }

val sizes : Kernel.class_ -> sizes
val make : Kernel.class_ -> Kernel.t
