(** The AMG-microkernel analogue (paper §3.2).

    The critical section of a multigrid-style solver: an adaptive SOR
    relaxation loop on a 2-D Laplacian that iterates until the residual
    norm has dropped by a configurable factor (or a generous iteration cap
    is hit). The verification routine checks the {e achieved} residual
    reduction, not closeness to a double-precision run — the adaptive
    iteration corrects roundoff by simply iterating a little longer, which
    is exactly why the paper's AMG kernel can run entirely in single
    precision and why its manual conversion yields a ≈2X speedup on a
    bandwidth-bound kernel. *)

type sizes = { n : int; maxiter : int; omega : float; target : float }

val default_sizes : sizes
val make : ?sizes:sizes -> unit -> Kernel.t

val iterations : float array -> int
(** Extract the iteration count from the kernel's output vector. *)
