let r23 = 0x1.0p-23
let r46 = 0x1.0p-46
let t23 = 0x1.0p23
let t46 = 0x1.0p46
let lcg_a = 1220703125.0 (* 5^13 *)
let seed0 = 271828183.0
let nq = 16

let pairs = function Kernel.W -> 1 lsl 11 | Kernel.A -> 1 lsl 13 | Kernel.C -> 1 lsl 15

(* Truncation helper matching the IR's cvttsd2si/cvtsi2sd pair. *)
let aint x = float_of_int (int_of_float x)

(* Host reference randlc, bit-identical to the IR version. *)
let randlc x a =
  let t1 = r23 *. a in
  let a1 = aint t1 in
  let a2 = a -. (t23 *. a1) in
  let t1 = r23 *. x in
  let x1 = aint t1 in
  let x2 = x -. (t23 *. x1) in
  let t1 = (a1 *. x2) +. (a2 *. x1) in
  let t2 = aint (r23 *. t1) in
  let z = t1 -. (t23 *. t2) in
  let t3 = (t23 *. z) +. (a2 *. x2) in
  let t4 = aint (r46 *. t3) in
  let x' = t3 -. (t46 *. t4) in
  (x', r46 *. x')

let host_reference n =
  let sx = ref 0.0 and sy = ref 0.0 in
  let q = Array.make nq 0 in
  let x = ref seed0 in
  for _ = 1 to n do
    let x1, u1 = randlc !x lcg_a in
    let x2, u2 = randlc x1 lcg_a in
    x := x2;
    let a = (2.0 *. u1) -. 1.0 in
    let b = (2.0 *. u2) -. 1.0 in
    let t = (a *. a) +. (b *. b) in
    if t <= 1.0 then begin
      let f = sqrt (-2.0 *. log t /. t) in
      let gx = a *. f in
      let gy = b *. f in
      sx := !sx +. gx;
      sy := !sy +. gy;
      let l = int_of_float (Float.max (Float.abs gx) (Float.abs gy)) in
      q.(l) <- q.(l) + 1
    end
  done;
  Array.append [| !sx; !sy |] (Array.map float_of_int q)

let build n =
  let t = Builder.create () in
  let out = Builder.alloc_f t (2 + nq) in
  let qbase = Builder.alloc_i t nq in
  let randlc_fn =
    Builder.func t ~module_:"ep" "randlc" ~nf_args:1 ~ni_args:0 (fun b args _ ->
        let x = args.(0) in
        let c_r23 = Builder.fconst b r23 in
        let c_r46 = Builder.fconst b r46 in
        let c_t23 = Builder.fconst b t23 in
        let c_t46 = Builder.fconst b t46 in
        let c_a = Builder.fconst b lcg_a in
        let aint v = Builder.i2f b (Builder.f2i b v) in
        let t1 = Builder.fmul b c_r23 c_a in
        let a1 = aint t1 in
        let a2 = Builder.fsub b c_a (Builder.fmul b c_t23 a1) in
        let t1 = Builder.fmul b c_r23 x in
        let x1 = aint t1 in
        let x2 = Builder.fsub b x (Builder.fmul b c_t23 x1) in
        let t1 = Builder.fadd b (Builder.fmul b a1 x2) (Builder.fmul b a2 x1) in
        let t2 = aint (Builder.fmul b c_r23 t1) in
        let z = Builder.fsub b t1 (Builder.fmul b c_t23 t2) in
        let t3 = Builder.fadd b (Builder.fmul b c_t23 z) (Builder.fmul b a2 x2) in
        let t4 = aint (Builder.fmul b c_r46 t3) in
        let x' = Builder.fsub b t3 (Builder.fmul b c_t46 t4) in
        let u = Builder.fmul b c_r46 x' in
        Builder.ret b ~f:[ x'; u ] ())
  in
  let main =
    Builder.func t ~module_:"ep" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let one = Builder.fconst b 1.0 in
        let two = Builder.fconst b 2.0 in
        let neg2 = Builder.fconst b (-2.0) in
        let sx = Builder.freshf b in
        let sy = Builder.freshf b in
        let zero = Builder.fconst b 0.0 in
        Builder.setf b sx zero;
        Builder.setf b sy zero;
        let izero = Builder.iconst b 0 in
        Builder.for_range b 0 nq (fun k -> Builder.storei b (Builder.idx qbase k) izero);
        let x = Builder.freshf b in
        Builder.setf b x (Builder.fconst b seed0);
        Builder.for_range b 0 n (fun _ ->
            let r1, _ = Builder.call b randlc_fn ~fargs:[ x ] ~iargs:[] in
            let x1 = r1.(0) and u1 = r1.(1) in
            let r2, _ = Builder.call b randlc_fn ~fargs:[ x1 ] ~iargs:[] in
            Builder.setf b x r2.(0);
            let u2 = r2.(1) in
            let a = Builder.fsub b (Builder.fmul b two u1) one in
            let bb = Builder.fsub b (Builder.fmul b two u2) one in
            let tt = Builder.fadd b (Builder.fmul b a a) (Builder.fmul b bb bb) in
            Builder.when_ b
              (Builder.fle b tt one)
              (fun () ->
                let f =
                  Builder.fsqrt b (Builder.fdiv b (Builder.fmul b neg2 (Builder.flog b tt)) tt)
                in
                let gx = Builder.fmul b a f in
                let gy = Builder.fmul b bb f in
                Builder.setf b sx (Builder.fadd b sx gx);
                Builder.setf b sy (Builder.fadd b sy gy);
                let m = Builder.fmax b (Builder.fabs b gx) (Builder.fabs b gy) in
                let l = Builder.f2i b m in
                let addr = Builder.idx qbase l in
                let c = Builder.loadi b addr in
                Builder.storei b addr (Builder.iaddc b c 1)));
        Builder.storef b (Builder.at out) sx;
        Builder.storef b (Builder.at (out + 1)) sy;
        Builder.for_range b 0 nq (fun k ->
            let c = Builder.loadi b (Builder.idx qbase k) in
            Builder.storef b (Builder.idx (out + 2) k) (Builder.i2f b c)))
  in
  (Builder.program t ~main, out)

let make cls =
  let n = pairs cls in
  let program, out = build n in
  let reference = host_reference n in
  let verify result =
    Array.length result = Array.length reference
    && Float.abs (result.(0) -. reference.(0)) /. Float.abs reference.(0) <= 1e-6
    && Float.abs (result.(1) -. reference.(1)) /. Float.abs reference.(1) <= 1e-6
    &&
    let ok = ref true in
    for k = 2 to Array.length reference - 1 do
      if result.(k) <> reference.(k) then ok := false
    done;
    !ok
  in
  {
    Kernel.name = "ep." ^ Kernel.class_name cls;
    program;
    setup = (fun _ -> ());
    output = (fun vm -> Vm.read_f vm out (2 + nq));
    verify;
    reference;
    hints = Config.set_func Config.empty "randlc" Config.Ignore;
    comm_bytes =
      (fun ~ranks net -> Mpi_model.allreduce net ~ranks ~bytes:(8.0 *. float_of_int (2 + nq)));
  }
