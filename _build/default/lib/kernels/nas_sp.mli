(** SP-like benchmark: independent scalar-pentadiagonal line solves (the
    numerical character of NAS SP's ADI solver).

    Banded Gaussian elimination without pivoting on diagonally-dominant
    pentadiagonal systems assembled host-side from a known solution, then
    back substitution. The verification tolerance sits just below what a
    fully single-precision solve achieves, so individually-passing parts
    do not compose — the paper's SP fails the final composed verification
    in both classes. *)

type sizes = { lines : int; len : int; tol : float }

val sizes : Kernel.class_ -> sizes
val make : Kernel.class_ -> Kernel.t
