(** Dense LU with mixed-precision iterative refinement (paper Fig. 12).

    The binary factors a dense dominant matrix, solves, and then runs
    refinement steps: residual in full (double) precision, correction solve
    through the factored matrix, solution update in double. The
    configurations of interest mark [factor] and [solve] single — the
    O(n^3)/O(n^2) split of the paper's Fig. 12. *)

type t = {
  program : Ir.program;
  n : int;
  refine_steps : int;
  setup : Vm.t -> unit;
  solution : Vm.t -> float array;
  residual_history : Vm.t -> float array;  (** residual norm before each step + final *)
  xtrue : float array;
}

val create : ?seed:int -> ?n:int -> ?refine_steps:int -> unit -> t

val mixed_config : Config.t
(** [factor] and [solve] single; residual/update double (the Fig. 12 split). *)

val all_single_config : Config.t

type outcome = {
  error : float;  (** relative infinity-norm error vs the known solution *)
  history : float array;
  instrumented : Cost.run_cost;
  converted : Cost.run_cost;  (** cost of the suggested source-level build *)
}

val run : t -> Config.t -> outcome
