type sizes = { n : int; extras : int; outer : int; inner : int; shift : float }

let sizes = function
  | Kernel.W -> { n = 128; extras = 2; outer = 3; inner = 8; shift = 10.0 }
  | Kernel.A -> { n = 384; extras = 3; outer = 4; inner = 10; shift = 12.0 }
  | Kernel.C -> { n = 1280; extras = 4; outer = 6; inner = 14; shift = 20.0 }

(* Host reference, op-for-op identical to the IR program. *)
let host_reference (a : Sparse_gen.csr) sz =
  let n = sz.n in
  let x = Array.make n 1.0 in
  let z = Array.make n 0.0 in
  let r = Array.make n 0.0 in
  let p = Array.make n 0.0 in
  let q = Array.make n 0.0 in
  let dot u v =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (u.(i) *. v.(i))
    done;
    !acc
  in
  let cgsolve () =
    for i = 0 to n - 1 do
      z.(i) <- 0.0;
      r.(i) <- x.(i);
      p.(i) <- x.(i)
    done;
    let rho = ref (dot r r) in
    for _ = 1 to sz.inner do
      Sparse_gen.spmv a p q;
      let d = dot p q in
      let alpha = !rho /. d in
      for i = 0 to n - 1 do
        z.(i) <- z.(i) +. (alpha *. p.(i))
      done;
      for i = 0 to n - 1 do
        r.(i) <- r.(i) -. (alpha *. q.(i))
      done;
      let rho0 = !rho in
      rho := dot r r;
      let beta = !rho /. rho0 in
      for i = 0 to n - 1 do
        p.(i) <- r.(i) +. (beta *. p.(i))
      done
    done;
    Sparse_gen.spmv a z q;
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let t = x.(i) -. q.(i) in
      acc := !acc +. (t *. t)
    done;
    sqrt !acc
  in
  let zeta = ref 0.0 and rnorm = ref 0.0 in
  for _ = 1 to sz.outer do
    rnorm := cgsolve ();
    let d = dot x z in
    zeta := sz.shift +. (1.0 /. d);
    let znorm = sqrt (dot z z) in
    let inv = 1.0 /. znorm in
    for i = 0 to n - 1 do
      x.(i) <- z.(i) *. inv
    done
  done;
  (* cold diagnostics pass (trace, Frobenius norm, extremal diagonal) *)
  let tr = ref 0.0 and fro = ref 0.0 and dmin = ref infinity and dmax = ref neg_infinity in
  for i = 0 to n - 1 do
    for k = a.rowptr.(i) to a.rowptr.(i + 1) - 1 do
      let v = a.value.(k) in
      fro := !fro +. (v *. v);
      if a.col.(k) = i then begin
        tr := !tr +. v;
        dmin := Float.min !dmin v;
        dmax := Float.max !dmax v
      end
    done
  done;
  [| !zeta; !rnorm; !tr; sqrt !fro; !dmin; !dmax |]

let build (a : Sparse_gen.csr) sz =
  let n = sz.n in
  let nnz = Array.length a.value in
  let t = Builder.create () in
  let ip = Builder.alloc_i t (n + 1) in
  let ic = Builder.alloc_i t nnz in
  let av = Builder.alloc_f t nnz in
  let xb = Builder.alloc_f t n in
  let zb = Builder.alloc_f t n in
  let rb = Builder.alloc_f t n in
  let pb = Builder.alloc_f t n in
  let qb = Builder.alloc_f t n in
  let out = Builder.alloc_f t 6 in
  let open Builder in
  (* y[dst..] <- A * x[src..] *)
  let spmv =
    func t ~module_:"cglib" "spmv" ~nf_args:0 ~ni_args:2 (fun b _ iargs ->
        let dst = iargs.(0) and src = iargs.(1) in
        let zero = fconst b 0.0 in
        for_range b 0 n (fun i ->
            let acc = freshf b in
            setf b acc zero;
            let k0 = loadi b (idx ip i) in
            let k1 = loadi b (idx (ip + 1) i) in
            for_ b k0 k1 (fun k ->
                let j = loadi b (idx ic k) in
                let v = loadf b (idx av k) in
                let xj = loadf b (dyn_idx src j) in
                setf b acc (fadd b acc (fmul b v xj)));
            storef b (dyn_idx dst i) acc))
  in
  let dot =
    func t ~module_:"cglib" "dot" ~nf_args:0 ~ni_args:2 (fun b _ iargs ->
        let ub = iargs.(0) and vb = iargs.(1) in
        let zero = fconst b 0.0 in
        let acc = freshf b in
        setf b acc zero;
        for_range b 0 n (fun i ->
            let u = loadf b (dyn_idx ub i) in
            let v = loadf b (dyn_idx vb i) in
            setf b acc (fadd b acc (fmul b u v)));
        ret b ~f:[ acc ] ())
  in
  let cgsolve =
    func t ~module_:"cg" "cgsolve" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let zero = fconst b 0.0 in
        for_range b 0 n (fun i ->
            storef b (idx zb i) zero;
            let xi = loadf b (idx xb i) in
            storef b (idx rb i) xi;
            storef b (idx pb i) xi);
        let rho = freshf b in
        let rr, _ = call b dot ~fargs:[] ~iargs:[ iconst b rb; iconst b rb ] in
        setf b rho rr.(0);
        for_range b 0 sz.inner (fun _ ->
            let _, _ = ((), call b spmv ~fargs:[] ~iargs:[ iconst b qb; iconst b pb ]) in
            let dv, _ = call b dot ~fargs:[] ~iargs:[ iconst b pb; iconst b qb ] in
            let alpha = fdiv b rho dv.(0) in
            for_range b 0 n (fun i ->
                let zi = loadf b (idx zb i) in
                let pi = loadf b (idx pb i) in
                storef b (idx zb i) (fadd b zi (fmul b alpha pi)));
            for_range b 0 n (fun i ->
                let ri = loadf b (idx rb i) in
                let qi = loadf b (idx qb i) in
                storef b (idx rb i) (fsub b ri (fmul b alpha qi)));
            let rho0 = freshf b in
            setf b rho0 rho;
            let rr2, _ = call b dot ~fargs:[] ~iargs:[ iconst b rb; iconst b rb ] in
            setf b rho rr2.(0);
            let beta = fdiv b rho rho0 in
            for_range b 0 n (fun i ->
                let ri = loadf b (idx rb i) in
                let pi = loadf b (idx pb i) in
                storef b (idx pb i) (fadd b ri (fmul b beta pi))));
        let _ = call b spmv ~fargs:[] ~iargs:[ iconst b qb; iconst b zb ] in
        let acc = freshf b in
        setf b acc zero;
        for_range b 0 n (fun i ->
            let xi = loadf b (idx xb i) in
            let qi = loadf b (idx qb i) in
            let d = fsub b xi qi in
            setf b acc (fadd b acc (fmul b d d)));
        ret b ~f:[ fsqrt b acc ] ())
  in
  let diagnostics =
    func t ~module_:"cg" "diagnostics" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let zero = fconst b 0.0 in
        let tr = freshf b and fro = freshf b in
        let dmin = freshf b and dmax = freshf b in
        setf b tr zero;
        setf b fro zero;
        setf b dmin (fconst b infinity);
        setf b dmax (fconst b neg_infinity);
        for_range b 0 n (fun i ->
            let k0 = loadi b (idx ip i) in
            let k1 = loadi b (idx (ip + 1) i) in
            for_ b k0 k1 (fun k ->
                let v = loadf b (idx av k) in
                setf b fro (fadd b fro (fmul b v v));
                let j = loadi b (idx ic k) in
                when_ b (ieq b j i) (fun () ->
                    setf b tr (fadd b tr v);
                    setf b dmin (fmin b dmin v);
                    setf b dmax (fmax b dmax v))));
        storef b (at (out + 2)) tr;
        storef b (at (out + 3)) (fsqrt b fro);
        storef b (at (out + 4)) dmin;
        storef b (at (out + 5)) dmax)
  in
  let main =
    func t ~module_:"cg" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let _ = call b diagnostics ~fargs:[] ~iargs:[] in
        let one = fconst b 1.0 in
        for_range b 0 n (fun i -> storef b (idx xb i) one);
        let zeta = freshf b in
        let rnorm = freshf b in
        let shift = fconst b sz.shift in
        for_range b 0 sz.outer (fun _ ->
            let rn, _ = call b cgsolve ~fargs:[] ~iargs:[] in
            setf b rnorm rn.(0);
            let dv, _ = call b dot ~fargs:[] ~iargs:[ iconst b xb; iconst b zb ] in
            setf b zeta (fadd b shift (fdiv b one dv.(0)));
            let zz, _ = call b dot ~fargs:[] ~iargs:[ iconst b zb; iconst b zb ] in
            let znorm = fsqrt b zz.(0) in
            let inv = fdiv b one znorm in
            for_range b 0 n (fun i ->
                let zi = loadf b (idx zb i) in
                storef b (idx xb i) (fmul b zi inv)));
        storef b (at out) zeta;
        storef b (at (out + 1)) rnorm)
  in
  let prog = Builder.program t ~main in
  (prog, ip, ic, av, out)

let make cls =
  let sz = sizes cls in
  let a = Sparse_gen.random_spd ~seed:(42 + sz.n) ~n:sz.n ~extras_per_row:sz.extras in
  let program, ip, ic, av, out = build a sz in
  let reference = host_reference a sz in
  {
    Kernel.name = "cg." ^ Kernel.class_name cls;
    program;
    setup =
      (fun vm ->
        Vm.write_i vm ip a.rowptr;
        Vm.write_i vm ic a.col;
        Vm.write_f vm av a.value);
    output = (fun vm -> Vm.read_f vm out 6);
    verify = (fun res -> Float.abs (res.(0) -. reference.(0)) <= 1e-12);
    reference;
    hints = Config.empty;
    comm_bytes =
      (fun ~ranks net ->
        let per_iter =
          (2.0 *. Mpi_model.allreduce net ~ranks ~bytes:8.0)
          +. Mpi_model.alltoall net ~ranks ~bytes_total:(8.0 *. float_of_int sz.n)
        in
        float_of_int (sz.outer * sz.inner) *. per_iter);
  }
