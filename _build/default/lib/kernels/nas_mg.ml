type sizes = { n : int; cycles : int }

let sizes = function
  | Kernel.W -> { n = 33; cycles = 3 }
  | Kernel.A -> { n = 65; cycles = 4 }
  | Kernel.C -> { n = 129; cycles = 4 }

let omega4 = 0.2 (* Jacobi weight 0.8 divided by the diagonal 4 *)
let bottom_smooths = 4

let level_sizes n =
  let rec go acc s = if s <= 3 then s :: acc else go (s :: acc) (((s - 1) / 2) + 1) in
  Array.of_list (go [] n) (* coarsest-first: [|3; 5; ...; n|] *)

let input_f ~seed n =
  let rng = Rng.create seed in
  Array.init (n * n) (fun k ->
      let i = k / n and j = k mod n in
      if i = 0 || j = 0 || i = n - 1 || j = n - 1 then 0.0
      else (2.0 *. Rng.uniform rng) -. 1.0)

(* ---------- host reference ---------- *)

let host_reference ~seed sz =
  let ls = level_sizes sz.n in
  let nl = Array.length ls in
  let u = Array.map (fun s -> Array.make (s * s) 0.0) ls in
  let f = Array.map (fun s -> Array.make (s * s) 0.0) ls in
  let r = Array.map (fun s -> Array.make (s * s) 0.0) ls in
  f.(nl - 1) <- input_f ~seed sz.n;
  let residual l =
    let n = ls.(l) and u = u.(l) and f = f.(l) and r = r.(l) in
    for i = 1 to n - 2 do
      for j = 1 to n - 2 do
        let c = (i * n) + j in
        let au = (4.0 *. u.(c)) -. u.(c - n) -. u.(c + n) -. u.(c - 1) -. u.(c + 1) in
        r.(c) <- f.(c) -. au
      done
    done
  in
  let apply_corr l =
    let n = ls.(l) and u = u.(l) and r = r.(l) in
    for i = 1 to n - 2 do
      for j = 1 to n - 2 do
        let c = (i * n) + j in
        u.(c) <- u.(c) +. (omega4 *. r.(c))
      done
    done
  in
  let restrict l =
    (* r at level l -> f at level l-1 *)
    let nc = ls.(l - 1) and nf = ls.(l) in
    let rf = r.(l) and fc = f.(l - 1) in
    for i = 1 to nc - 2 do
      for j = 1 to nc - 2 do
        let fi = 2 * i and fj = 2 * j in
        let c = (fi * nf) + fj in
        let s1 = 4.0 *. rf.(c) in
        let s2 = (((rf.(c - nf) +. rf.(c + nf)) +. rf.(c - 1)) +. rf.(c + 1)) *. 2.0 in
        let s3 = ((rf.(c - nf - 1) +. rf.(c - nf + 1)) +. rf.(c + nf - 1)) +. rf.(c + nf + 1) in
        fc.((i * nc) + j) <- ((s1 +. s2) +. s3) *. 0.0625
      done
    done
  in
  let prolong l =
    (* u at level l += interpolation of u at level l-1 *)
    let nc = ls.(l - 1) and nf = ls.(l) in
    let uf = u.(l) and uc = u.(l - 1) in
    for fi = 1 to nf - 2 do
      for fj = 1 to nf - 2 do
        let i = fi / 2 and j = fj / 2 in
        let c = (i * nc) + j in
        let add =
          match (fi land 1, fj land 1) with
          | 0, 0 -> uc.(c)
          | 1, 0 -> 0.5 *. (uc.(c) +. uc.(c + nc))
          | 0, 1 -> 0.5 *. (uc.(c) +. uc.(c + 1))
          | _ -> 0.25 *. (((uc.(c) +. uc.(c + nc)) +. uc.(c + 1)) +. uc.(c + nc + 1))
        in
        uf.((fi * nf) + fj) <- uf.((fi * nf) + fj) +. add
      done
    done
  in
  let zero a = Array.fill a 0 (Array.length a) 0.0 in
  for _ = 1 to sz.cycles do
    for l = nl - 1 downto 1 do
      residual l;
      apply_corr l;
      residual l;
      restrict l;
      zero u.(l - 1)
    done;
    for _ = 1 to bottom_smooths do
      residual 0;
      apply_corr 0
    done;
    for l = 1 to nl - 1 do
      prolong l;
      residual l;
      apply_corr l
    done
  done;
  residual (nl - 1);
  let acc = ref 0.0 in
  let rf = r.(nl - 1) in
  for k = 0 to Array.length rf - 1 do
    acc := !acc +. (rf.(k) *. rf.(k))
  done;
  [| sqrt !acc |]

(* ---------- the IR binary ---------- *)

let build sz =
  let ls = level_sizes sz.n in
  let nl = Array.length ls in
  let t = Builder.create () in
  let uoff = Array.map (fun s -> Builder.alloc_f t (s * s)) ls in
  let foff = Array.map (fun s -> Builder.alloc_f t (s * s)) ls in
  let roff = Array.map (fun s -> Builder.alloc_f t (s * s)) ls in
  let out = Builder.alloc_f t 1 in
  let tsz = Builder.alloc_i t nl in
  let tu = Builder.alloc_i t nl in
  let tf = Builder.alloc_i t nl in
  let tr = Builder.alloc_i t nl in
  let open Builder in
  let at2 b base i j n = dyn_idx base (iadd b (imul b i n) j) in
  (* r <- f - A u on the interior of an n x n grid *)
  let residual =
    func t ~module_:"mg" "residual" ~nf_args:0 ~ni_args:4 (fun b _ ia ->
        let n = ia.(0) and ub = ia.(1) and fb = ia.(2) and rb = ia.(3) in
        let four = fconst b 4.0 in
        let n1 = isub b n (iconst b 1) in
        for_ b (iconst b 1) n1 (fun i ->
            for_ b (iconst b 1) n1 (fun j ->
                let c = iadd b (imul b i n) j in
                let u0 = loadf b (dyn_idx ub c) in
                let un = loadf b (dyn_idx ub (isub b c n)) in
                let us = loadf b (dyn_idx ub (iadd b c n)) in
                let uw = loadf b (dyn_idx ub (isub b c (iconst b 1))) in
                let ue = loadf b (dyn_idx ub (iadd b c (iconst b 1))) in
                let au =
                  fsub b (fsub b (fsub b (fsub b (fmul b four u0) un) us) uw) ue
                in
                let fv = loadf b (dyn_idx fb c) in
                storef b (dyn_idx rb c) (fsub b fv au))))
  in
  (* u += omega4 * r on the interior *)
  let apply_corr =
    func t ~module_:"mg" "apply_corr" ~nf_args:0 ~ni_args:3 (fun b _ ia ->
        let n = ia.(0) and ub = ia.(1) and rb = ia.(2) in
        let w = fconst b omega4 in
        let n1 = isub b n (iconst b 1) in
        for_ b (iconst b 1) n1 (fun i ->
            for_ b (iconst b 1) n1 (fun j ->
                let c = iadd b (imul b i n) j in
                let uv = loadf b (dyn_idx ub c) in
                let rv = loadf b (dyn_idx rb c) in
                storef b (dyn_idx ub c) (fadd b uv (fmul b w rv)))))
  in
  (* full-weighting restriction: fine r -> coarse f *)
  let restrict =
    func t ~module_:"mg" "restrict" ~nf_args:0 ~ni_args:4 (fun b _ ia ->
        let nc = ia.(0) and nf = ia.(1) and rfb = ia.(2) and fcb = ia.(3) in
        let four = fconst b 4.0 in
        let two = fconst b 2.0 in
        let sixteenth = fconst b 0.0625 in
        let one = iconst b 1 in
        let nc1 = isub b nc one in
        for_ b (iconst b 1) nc1 (fun i ->
            for_ b (iconst b 1) nc1 (fun j ->
                let fi = imulc b i 2 and fj = imulc b j 2 in
                let c = iadd b (imul b fi nf) fj in
                let rc = loadf b (dyn_idx rfb c) in
                let rn = loadf b (dyn_idx rfb (isub b c nf)) in
                let rs = loadf b (dyn_idx rfb (iadd b c nf)) in
                let rw = loadf b (dyn_idx rfb (isub b c one)) in
                let re = loadf b (dyn_idx rfb (iadd b c one)) in
                let rnw = loadf b (dyn_idx rfb (isub b (isub b c nf) one)) in
                let rne = loadf b (dyn_idx rfb (iadd b (isub b c nf) one)) in
                let rsw = loadf b (dyn_idx rfb (isub b (iadd b c nf) one)) in
                let rse = loadf b (dyn_idx rfb (iadd b (iadd b c nf) one)) in
                let s1 = fmul b four rc in
                let s2 = fmul b (fadd b (fadd b (fadd b rn rs) rw) re) two in
                let s3 = fadd b (fadd b (fadd b rnw rne) rsw) rse in
                let v = fmul b (fadd b (fadd b s1 s2) s3) sixteenth in
                storef b (at2 b fcb i j nc) v)))
  in
  (* bilinear prolongation: coarse u added into fine u *)
  let prolong =
    func t ~module_:"mg" "prolong" ~nf_args:0 ~ni_args:4 (fun b _ ia ->
        let nc = ia.(0) and nf = ia.(1) and ufb = ia.(2) and ucb = ia.(3) in
        let half = fconst b 0.5 in
        let quarter = fconst b 0.25 in
        let one = iconst b 1 in
        let nf1 = isub b nf one in
        for_ b (iconst b 1) nf1 (fun fi ->
            for_ b (iconst b 1) nf1 (fun fj ->
                let i = idiv b fi (iconst b 2) and j = idiv b fj (iconst b 2) in
                let c = iadd b (imul b i nc) j in
                let pi = iand b fi one and pj = iand b fj one in
                let add = freshf b in
                if_ b (ieq b pi (iconst b 0))
                  (fun () ->
                    if_ b (ieq b pj (iconst b 0))
                      (fun () -> setf b add (loadf b (dyn_idx ucb c)))
                      (fun () ->
                        let a = loadf b (dyn_idx ucb c) in
                        let bb = loadf b (dyn_idx ucb (iadd b c one)) in
                        setf b add (fmul b half (fadd b a bb))))
                  (fun () ->
                    if_ b (ieq b pj (iconst b 0))
                      (fun () ->
                        let a = loadf b (dyn_idx ucb c) in
                        let bb = loadf b (dyn_idx ucb (iadd b c nc)) in
                        setf b add (fmul b half (fadd b a bb)))
                      (fun () ->
                        let a = loadf b (dyn_idx ucb c) in
                        let bb = loadf b (dyn_idx ucb (iadd b c nc)) in
                        let cc = loadf b (dyn_idx ucb (iadd b c one)) in
                        let dd = loadf b (dyn_idx ucb (iadd b (iadd b c nc) one)) in
                        setf b add (fmul b quarter (fadd b (fadd b (fadd b a bb) cc) dd))));
                let cfine = iadd b (imul b fi nf) fj in
                let uv = loadf b (dyn_idx ufb cfine) in
                storef b (dyn_idx ufb cfine) (fadd b uv add))))
  in
  let zero_fn =
    func t ~module_:"mg" "zero" ~nf_args:0 ~ni_args:2 (fun b _ ia ->
        let count = ia.(0) and base = ia.(1) in
        let z = fconst b 0.0 in
        for_ b (iconst b 0) count (fun k -> storef b (dyn_idx base k) z))
  in
  let norm =
    func t ~module_:"mg" "norm" ~nf_args:0 ~ni_args:2 (fun b _ ia ->
        let count = ia.(0) and base = ia.(1) in
        let acc = freshf b in
        setf b acc (fconst b 0.0);
        for_ b (iconst b 0) count (fun k ->
            let v = loadf b (dyn_idx base k) in
            setf b acc (fadd b acc (fmul b v v)));
        ret b ~f:[ fsqrt b acc ] ())
  in
  let main =
    func t ~module_:"mg" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let ld tbl l = loadi b (idx tbl l) in
        let level_call_smooth l =
          let n = ld tsz l and ub = ld tu l and fb = ld tf l and rb = ld tr l in
          let _ = call b residual ~fargs:[] ~iargs:[ n; ub; fb; rb ] in
          let _ = call b apply_corr ~fargs:[] ~iargs:[ n; ub; rb ] in
          ()
        in
        for_range b 0 sz.cycles (fun _ ->
            (* down sweep *)
            let l = freshi b in
            seti b l (iconst b (nl - 1));
            while_ b
              (fun () -> ige b l (iconst b 1))
              (fun () ->
                level_call_smooth l;
                let n = ld tsz l and ub = ld tu l and fb = ld tf l and rb = ld tr l in
                let _ = call b residual ~fargs:[] ~iargs:[ n; ub; fb; rb ] in
                let lc = isub b l (iconst b 1) in
                let nc = ld tsz lc in
                let _ = call b restrict ~fargs:[] ~iargs:[ nc; n; rb; ld tf lc ] in
                let _ =
                  call b zero_fn ~fargs:[] ~iargs:[ imul b nc nc; ld tu lc ]
                in
                seti b l lc);
            (* bottom solve *)
            for_range b 0 bottom_smooths (fun _ -> level_call_smooth (iconst b 0));
            (* up sweep *)
            let l2 = freshi b in
            seti b l2 (iconst b 1);
            while_ b
              (fun () -> ilt b l2 (iconst b nl))
              (fun () ->
                let n = ld tsz l2 in
                let lc = isub b l2 (iconst b 1) in
                let _ =
                  call b prolong ~fargs:[] ~iargs:[ ld tsz lc; n; ld tu l2; ld tu lc ]
                in
                level_call_smooth l2;
                seti b l2 (iadd b l2 (iconst b 1))));
        (* final residual norm on the finest level *)
        let lf = iconst b (nl - 1) in
        let n = ld tsz lf and ub = ld tu lf and fb = ld tf lf and rb = ld tr lf in
        let _ = call b residual ~fargs:[] ~iargs:[ n; ub; fb; rb ] in
        let nv, _ = call b norm ~fargs:[] ~iargs:[ imul b n n; rb ] in
        storef b (at out) nv.(0))
  in
  let prog = Builder.program t ~main in
  (prog, ls, uoff, foff, roff, out, tsz, tu, tf, tr)

let make cls =
  let sz = sizes cls in
  let seed = 77 + sz.n in
  let program, ls, uoff, foff, roff, out, tsz, tu, tf, tr = build sz in
  let nl = Array.length ls in
  let fin = input_f ~seed sz.n in
  let reference = host_reference ~seed sz in
  let verify res = Float.abs (res.(0) -. reference.(0)) <= 1.5e-9 *. Float.abs reference.(0) in
  {
    Kernel.name = "mg." ^ Kernel.class_name cls;
    program;
    setup =
      (fun vm ->
        Vm.write_i vm tsz ls;
        Vm.write_i vm tu uoff;
        Vm.write_i vm tf foff;
        Vm.write_i vm tr roff;
        Vm.write_f vm foff.(nl - 1) fin);
    output = (fun vm -> Vm.read_f vm out 1);
    verify;
    reference;
    hints = Config.empty;
    comm_bytes =
      (fun ~ranks net ->
        (* halo exchanges at every level, every smoothing pass *)
        let per_cycle =
          Array.fold_left
            (fun acc s -> acc +. (6.0 *. Mpi_model.halo net ~ranks ~bytes_boundary:(8.0 *. float_of_int s)))
            0.0 ls
        in
        float_of_int sz.cycles *. per_cycle);
  }
