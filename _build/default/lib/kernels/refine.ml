type t = {
  program : Ir.program;
  n : int;
  refine_steps : int;
  setup : Vm.t -> unit;
  solution : Vm.t -> float array;
  residual_history : Vm.t -> float array;
  xtrue : float array;
}

let build n refine_steps =
  let t = Builder.create () in
  let ab = Builder.alloc_f t (n * n) in
  let lub = Builder.alloc_f t (n * n) in
  let bb = Builder.alloc_f t n in
  let xb = Builder.alloc_f t n in
  let rb = Builder.alloc_f t n in
  let zb = Builder.alloc_f t n in
  let yb = Builder.alloc_f t n in
  let hist = Builder.alloc_f t (refine_steps + 1) in
  let open Builder in
  let copy_a =
    func t ~module_:"refine" "copy_a" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for_range b 0 (n * n) (fun k -> storef b (idx lub k) (loadf b (idx ab k))))
  in
  let factor =
    func t ~module_:"refine" "factor" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let one = fconst b 1.0 in
        for_range b 0 n (fun k ->
            let kk = iadd b (imulc b k n) k in
            let inv = fdiv b one (loadf b (dyn_idx (iconst b lub) kk)) in
            for_ b (iaddc b k 1) (iconst b n) (fun i ->
                let ik = iadd b (imulc b i n) k in
                let lik = fmul b (loadf b (dyn_idx (iconst b lub) ik)) inv in
                storef b (dyn_idx (iconst b lub) ik) lik;
                for_ b (iaddc b k 1) (iconst b n) (fun j ->
                    let ij = iadd b (imulc b i n) j in
                    let kj = iadd b (imulc b k n) j in
                    let v =
                      fsub b
                        (loadf b (dyn_idx (iconst b lub) ij))
                        (fmul b lik (loadf b (dyn_idx (iconst b lub) kj)))
                    in
                    storef b (dyn_idx (iconst b lub) ij) v))))
  in
  let solve =
    func t ~module_:"refine" "solve" ~nf_args:0 ~ni_args:2 (fun b _ ia ->
        let rhs = ia.(0) and dst = ia.(1) in
        for_range b 0 n (fun i ->
            let acc = freshf b in
            setf b acc (loadf b (dyn_idx rhs i));
            for_ b (iconst b 0) i (fun j ->
                let ij = iadd b (imulc b i n) j in
                let lij = loadf b (dyn_idx (iconst b lub) ij) in
                let yj = loadf b (dyn_idx (iconst b yb) j) in
                setf b acc (fsub b acc (fmul b lij yj)));
            storef b (dyn_idx (iconst b yb) i) acc);
        for_down b (iconst b n) (iconst b 0) (fun i ->
            let acc = freshf b in
            setf b acc (loadf b (dyn_idx (iconst b yb) i));
            for_ b (iaddc b i 1) (iconst b n) (fun j ->
                let ij = iadd b (imulc b i n) j in
                let uij = loadf b (dyn_idx (iconst b lub) ij) in
                let xj = loadf b (dyn_idx dst j) in
                setf b acc (fsub b acc (fmul b uij xj)));
            let ii = iadd b (imulc b i n) i in
            storef b (dyn_idx dst i) (fdiv b acc (loadf b (dyn_idx (iconst b lub) ii)))))
  in
  let residual =
    func t ~module_:"refine" "residual" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for_range b 0 n (fun i ->
            let acc = freshf b in
            setf b acc (loadf b (idx bb i));
            for_range b 0 n (fun j ->
                let ij = iadd b (imulc b i n) j in
                let aij = loadf b (dyn_idx (iconst b ab) ij) in
                let xj = loadf b (dyn_idx (iconst b xb) j) in
                setf b acc (fsub b acc (fmul b aij xj)));
            storef b (dyn_idx (iconst b rb) i) acc))
  in
  let update =
    func t ~module_:"refine" "update" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for_range b 0 n (fun i ->
            storef b (idx xb i) (fadd b (loadf b (idx xb i)) (loadf b (idx zb i)))))
  in
  let rnorm =
    func t ~module_:"refine" "rnorm" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let acc = freshf b in
        setf b acc (fconst b 0.0);
        for_range b 0 n (fun i ->
            let v = loadf b (idx rb i) in
            setf b acc (fadd b acc (fmul b v v)));
        ret b ~f:[ fsqrt b acc ] ())
  in
  let main =
    func t ~module_:"refine" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let _ = call b copy_a ~fargs:[] ~iargs:[] in
        let _ = call b factor ~fargs:[] ~iargs:[] in
        let _ = call b solve ~fargs:[] ~iargs:[ iconst b bb; iconst b xb ] in
        for_range b 0 refine_steps (fun it ->
            let _ = call b residual ~fargs:[] ~iargs:[] in
            let rn, _ = call b rnorm ~fargs:[] ~iargs:[] in
            storef b (dyn_idx (iconst b hist) it) rn.(0);
            let _ = call b solve ~fargs:[] ~iargs:[ iconst b rb; iconst b zb ] in
            let _ = call b update ~fargs:[] ~iargs:[] in
            ());
        let _ = call b residual ~fargs:[] ~iargs:[] in
        let rn, _ = call b rnorm ~fargs:[] ~iargs:[] in
        storef b (at (hist + refine_steps)) rn.(0))
  in
  (Builder.program t ~main, ab, bb, xb, hist)

let create ?(seed = 31415) ?(n = 48) ?(refine_steps = 4) () =
  let program, ab, bb, xb, hist = build n refine_steps in
  let rng = Rng.create seed in
  let a = Array.init (n * n) (fun _ -> Rng.uniform rng -. 0.5) in
  for i = 0 to n - 1 do
    let s = ref 0.0 in
    for j = 0 to n - 1 do
      if j <> i then s := !s +. Float.abs a.((i * n) + j)
    done;
    a.((i * n) + i) <- 1.0 +. !s
  done;
  let xtrue = Array.init n (fun _ -> Rng.uniform rng -. 0.5) in
  let b = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      acc := !acc +. (a.((i * n) + j) *. xtrue.(j))
    done;
    b.(i) <- !acc
  done;
  {
    program;
    n;
    refine_steps;
    setup =
      (fun vm ->
        Vm.write_f vm ab a;
        Vm.write_f vm bb b);
    solution = (fun vm -> Vm.read_f vm xb n);
    residual_history = (fun vm -> Vm.read_f vm hist (refine_steps + 1));
    xtrue;
  }

let mixed_config =
  List.fold_left
    (fun acc f -> Config.set_func acc f Config.Single)
    Config.empty [ "factor"; "solve" ]

let all_single_config = Config.set_module Config.empty "refine" Config.Single

type outcome = {
  error : float;
  history : float array;
  instrumented : Cost.run_cost;
  converted : Cost.run_cost;
}

let run t config =
  let patched = Patcher.patch t.program config in
  let vm = Vm.create ~checked:true patched in
  t.setup vm;
  Vm.run vm;
  let conv = To_single.convert_config t.program config in
  let cvm = Vm.create ~smode:Vm.Plain conv in
  t.setup cvm;
  Vm.run cvm;
  {
    error = Stats.rel_err_inf (t.solution vm) t.xtrue;
    history = t.residual_history vm;
    instrumented = Cost.of_run vm;
    converted = Cost.of_run cvm;
  }
