(** LU-like benchmark: SSOR sweeps on a nonsymmetric 2-D
    convection-diffusion system (the numerical character of NAS LU's SSOR
    solver).

    A fixed number of forward+backward Gauss-Seidel relaxation sweeps is
    applied from a zero initial guess; verification compares the resulting
    field against the double-precision reference field in relative
    infinity norm. Because the iteration is cut off before full
    convergence, single-precision perturbations are only partially
    contracted — the paper's LU is the "mostly replaceable but fragile
    union" case (lu.W fails final verification, lu.A passes). *)

type sizes = { n : int; sweeps : int; tol : float }

val sizes : Kernel.class_ -> sizes
val make : Kernel.class_ -> Kernel.t
