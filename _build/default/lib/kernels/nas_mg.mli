(** MG-like benchmark: 2-D Poisson multigrid V-cycles (the numerical
    character of NAS MG).

    Weighted-Jacobi smoothing, 5-point residual, full-weighting restriction
    and bilinear prolongation over a grid hierarchy down to 3×3, driven by
    per-level offset tables. Output: the final fine-grid residual norm.

    Multigrid is the paper's "moderately replaceable" case: coarse-grid work
    tolerates single precision (the fine-grid smoothing corrects it), while
    fine-grid residual/smoothing arithmetic does not, at the verification
    tolerance used. *)

type sizes = { n : int;  (** finest grid side, 2^k+1 *) cycles : int }

val sizes : Kernel.class_ -> sizes
val make : Kernel.class_ -> Kernel.t
