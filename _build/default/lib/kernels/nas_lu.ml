type sizes = { n : int; sweeps : int; tol : float }

let sizes = function
  | Kernel.W -> { n = 24; sweeps = 12; tol = 1e-7 }
  | Kernel.A -> { n = 40; sweeps = 16; tol = 5e-7 }
  | Kernel.C -> { n = 64; sweeps = 20; tol = 5e-7 }

(* nonsymmetric convection-diffusion 5-point stencil *)
let cc = 4.2
let cw = -1.1
let ce = -0.9
let cn = -1.05
let cs = -0.95
let omega = 1.2

let input_f ~seed n =
  let rng = Rng.create seed in
  Array.init (n * n) (fun k ->
      let i = k / n and j = k mod n in
      if i = 0 || j = 0 || i = n - 1 || j = n - 1 then 0.0
      else (2.0 *. Rng.uniform rng) -. 1.0)

(* ---------- host reference ---------- *)

let host_reference ~seed sz =
  let n = sz.n in
  let u = Array.make (n * n) 0.0 in
  let f = input_f ~seed n in
  let w_over_cc = omega /. cc in
  let relax c =
    let au =
      (((cc *. u.(c)) +. (cw *. u.(c - 1))) +. (ce *. u.(c + 1)))
      +. (cn *. u.(c - n))
      +. (cs *. u.(c + n))
    in
    u.(c) <- u.(c) +. (w_over_cc *. (f.(c) -. au))
  in
  for _ = 1 to sz.sweeps do
    for i = 1 to n - 2 do
      for j = 1 to n - 2 do
        relax ((i * n) + j)
      done
    done;
    for i = n - 2 downto 1 do
      for j = n - 2 downto 1 do
        relax ((i * n) + j)
      done
    done
  done;
  let rnorm = ref 0.0 in
  for i = 1 to n - 2 do
    for j = 1 to n - 2 do
      let c = (i * n) + j in
      let au =
        (((cc *. u.(c)) +. (cw *. u.(c - 1))) +. (ce *. u.(c + 1)))
        +. (cn *. u.(c - n))
        +. (cs *. u.(c + n))
      in
      let r = f.(c) -. au in
      rnorm := !rnorm +. (r *. r)
    done
  done;
  Array.append u [| sqrt !rnorm |]

(* ---------- the IR binary ---------- *)

let build sz =
  let n = sz.n in
  let t = Builder.create () in
  let ub = Builder.alloc_f t (n * n) in
  let fb = Builder.alloc_f t (n * n) in
  let out = Builder.alloc_f t 1 in
  let open Builder in
  (* residual of one interior cell into a register, shared op order *)
  let stencil b c =
    let l_cc = fconst b cc and l_cw = fconst b cw and l_ce = fconst b ce in
    let l_cn = fconst b cn and l_cs = fconst b cs in
    let u0 = loadf b (dyn_idx (iconst b ub) c) in
    let uw = loadf b (dyn_idx (iconst b ub) (isub b c (iconst b 1))) in
    let ue = loadf b (dyn_idx (iconst b ub) (iadd b c (iconst b 1))) in
    let un = loadf b (dyn_idx (iconst b ub) (isub b c (iconst b n))) in
    let us = loadf b (dyn_idx (iconst b ub) (iadd b c (iconst b n))) in
    fadd b
      (fadd b
         (fadd b (fadd b (fmul b l_cc u0) (fmul b l_cw uw)) (fmul b l_ce ue))
         (fmul b l_cn un))
      (fmul b l_cs us)
  in
  let relax b c woc =
    let au = stencil b c in
    let fv = loadf b (dyn_idx (iconst b fb) c) in
    let u0 = loadf b (dyn_idx (iconst b ub) c) in
    storef b (dyn_idx (iconst b ub) c) (fadd b u0 (fmul b woc (fsub b fv au)))
  in
  let sweep_fwd =
    func t ~module_:"lu" "sweep_fwd" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let woc = fconst b (omega /. cc) in
        for_range b 1 (n - 1) (fun i ->
            for_range b 1 (n - 1) (fun j -> relax b (iadd b (imulc b i n) j) woc)))
  in
  let sweep_bwd =
    func t ~module_:"lu" "sweep_bwd" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let woc = fconst b (omega /. cc) in
        for_down b (iconst b (n - 1)) (iconst b 0) (fun i ->
            when_ b (ige b i (iconst b 1)) (fun () ->
                for_down b (iconst b (n - 1)) (iconst b 0) (fun j ->
                    when_ b (ige b j (iconst b 1)) (fun () ->
                        relax b (iadd b (imulc b i n) j) woc)))))
  in
  let resid_norm =
    func t ~module_:"lu" "resid_norm" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let acc = freshf b in
        setf b acc (fconst b 0.0);
        for_range b 1 (n - 1) (fun i ->
            for_range b 1 (n - 1) (fun j ->
                let c = iadd b (imulc b i n) j in
                let au = stencil b c in
                let fv = loadf b (dyn_idx (iconst b fb) c) in
                let r = fsub b fv au in
                setf b acc (fadd b acc (fmul b r r))));
        ret b ~f:[ fsqrt b acc ] ())
  in
  let main =
    func t ~module_:"lu" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for_range b 0 sz.sweeps (fun _ ->
            let _ = call b sweep_fwd ~fargs:[] ~iargs:[] in
            let _ = call b sweep_bwd ~fargs:[] ~iargs:[] in
            ());
        let rn, _ = call b resid_norm ~fargs:[] ~iargs:[] in
        storef b (at out) rn.(0))
  in
  let prog = Builder.program t ~main in
  (prog, ub, fb, out)

let make cls =
  let sz = sizes cls in
  let seed = 900 + sz.n in
  let program, ub, fb, out = build sz in
  let fin = input_f ~seed sz.n in
  let reference = host_reference ~seed sz in
  let n2 = sz.n * sz.n in
  let u_ref = Array.sub reference 0 n2 in
  let verify res =
    let u = Array.sub res 0 n2 in
    Stats.rel_err_inf u u_ref <= sz.tol
  in
  {
    Kernel.name = "lu." ^ Kernel.class_name cls;
    program;
    setup = (fun vm -> Vm.write_f vm fb fin);
    output =
      (fun vm -> Array.append (Vm.read_f vm ub n2) (Vm.read_f vm out 1));
    verify;
    reference;
    hints = Config.empty;
    comm_bytes =
      (fun ~ranks net ->
        (* wavefront pipeline: two boundary exchanges per sweep *)
        float_of_int (2 * sz.sweeps)
        *. Mpi_model.halo net ~ranks ~bytes_boundary:(8.0 *. float_of_int sz.n));
  }
