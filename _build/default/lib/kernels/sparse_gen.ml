type csr = { n : int; rowptr : int array; col : int array; value : float array }

let random_spd ~seed ~n ~extras_per_row =
  let rng = Rng.create seed in
  let rows = Array.make n [] in
  (* strictly-lower random entries, mirrored for symmetry *)
  for i = 1 to n - 1 do
    for _ = 1 to extras_per_row do
      let j = Rng.int rng i in
      let v = (2.0 *. Rng.uniform rng) -. 1.0 in
      rows.(i) <- (j, v) :: rows.(i);
      rows.(j) <- (i, v) :: rows.(j)
    done
  done;
  (* combine duplicates, add dominant diagonal *)
  let rowptr = Array.make (n + 1) 0 in
  let cols = ref [] and vals = ref [] and nnz = ref 0 in
  for i = 0 to n - 1 do
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (j, v) ->
        let cur = match Hashtbl.find_opt tbl j with Some x -> x | None -> 0.0 in
        Hashtbl.replace tbl j (cur +. v))
      rows.(i);
    let entries = Hashtbl.fold (fun j v acc -> (j, v) :: acc) tbl [] in
    let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
    let absum = List.fold_left (fun acc (_, v) -> acc +. Float.abs v) 0.0 entries in
    let diag = 1.0 +. absum in
    let with_diag =
      List.merge
        (fun (a, _) (b, _) -> compare a b)
        entries
        [ (i, diag) ]
    in
    List.iter
      (fun (j, v) ->
        cols := j :: !cols;
        vals := v :: !vals;
        incr nnz)
      with_diag;
    rowptr.(i + 1) <- !nnz
  done;
  {
    n;
    rowptr;
    col = Array.of_list (List.rev !cols);
    value = Array.of_list (List.rev !vals);
  }

let spmv a x y =
  for i = 0 to a.n - 1 do
    let acc = ref 0.0 in
    for k = a.rowptr.(i) to a.rowptr.(i + 1) - 1 do
      acc := !acc +. (a.value.(k) *. x.(a.col.(k)))
    done;
    y.(i) <- !acc
  done
