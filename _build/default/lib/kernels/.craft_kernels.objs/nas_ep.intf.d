lib/kernels/nas_ep.mli: Kernel
