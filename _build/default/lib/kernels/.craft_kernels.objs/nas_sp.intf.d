lib/kernels/nas_sp.mli: Kernel
