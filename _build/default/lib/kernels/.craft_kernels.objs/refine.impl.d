lib/kernels/refine.ml: Array Builder Config Cost Float Ir List Patcher Rng Stats To_single Vm
