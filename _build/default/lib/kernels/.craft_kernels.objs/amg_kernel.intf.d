lib/kernels/amg_kernel.mli: Kernel
