lib/kernels/nas_lu.mli: Kernel
