lib/kernels/kernel.mli: Bfs Config Ir Mpi_model Vm
