lib/kernels/nas_bt.ml: Array Builder Config Kernel Mpi_model Rng Stats Vm
