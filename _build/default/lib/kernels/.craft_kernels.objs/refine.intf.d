lib/kernels/refine.mli: Config Cost Ir Vm
