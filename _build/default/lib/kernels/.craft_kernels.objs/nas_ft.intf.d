lib/kernels/nas_ft.mli: Kernel
