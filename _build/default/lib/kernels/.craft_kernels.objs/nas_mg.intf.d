lib/kernels/nas_mg.mli: Kernel
