lib/kernels/nas_sp.ml: Array Builder Config Kernel Mpi_model Rng Stats Vm
