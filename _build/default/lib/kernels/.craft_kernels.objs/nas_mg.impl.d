lib/kernels/nas_mg.ml: Array Builder Config Float Kernel Mpi_model Rng Vm
