lib/kernels/sparse_gen.ml: Array Float Hashtbl List Rng
