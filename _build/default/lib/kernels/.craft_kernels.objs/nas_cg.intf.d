lib/kernels/nas_cg.mli: Kernel
