lib/kernels/amg_kernel.ml: Array Builder Config Kernel Mpi_model Rng Vm
