lib/kernels/nas_bt.mli: Kernel
