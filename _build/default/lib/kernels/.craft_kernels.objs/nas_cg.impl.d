lib/kernels/nas_cg.ml: Array Builder Config Float Kernel Mpi_model Sparse_gen Vm
