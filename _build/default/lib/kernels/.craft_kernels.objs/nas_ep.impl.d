lib/kernels/nas_ep.ml: Array Builder Config Float Kernel Mpi_model Vm
