lib/kernels/kernel.ml: Array Bfs Config Int64 Ir Mpi_model Patcher To_single Vm
