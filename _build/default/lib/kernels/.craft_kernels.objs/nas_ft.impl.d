lib/kernels/nas_ft.ml: Array Builder Config Float Kernel List Mpi_model Rng Vm
