lib/kernels/sparse_gen.mli:
