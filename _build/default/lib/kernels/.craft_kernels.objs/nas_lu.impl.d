lib/kernels/nas_lu.ml: Array Builder Config Kernel Mpi_model Rng Stats Vm
