type sizes = { lines : int; len : int; tol : float }

let sizes = function
  | Kernel.W -> { lines = 8; len = 16; tol = 2e-7 }
  | Kernel.A -> { lines = 16; len = 32; tol = 4e-7 }
  | Kernel.C -> { lines = 24; len = 48; tol = 4e-7 }

(* ---------- shared data generation ---------- *)

type data = {
  ablk : float array;  (** M*L*9 sub-diagonal blocks (block 0 unused) *)
  bblk : float array;  (** M*L*9 diagonal blocks *)
  cblk : float array;  (** M*L*9 super-diagonal blocks (last unused) *)
  rhs : float array;  (** M*L*3 *)
  xtrue : float array;  (** M*L*3 *)
}

let gen ~seed sz =
  let m = sz.lines and l = sz.len in
  let rng = Rng.create seed in
  let rnd () = Rng.uniform rng -. 0.5 in
  let ablk = Array.init (m * l * 9) (fun _ -> rnd ()) in
  let cblk = Array.init (m * l * 9) (fun _ -> rnd ()) in
  let bblk = Array.init (m * l * 9) (fun _ -> rnd ()) in
  (* diagonal dominance *)
  for k = 0 to (m * l) - 1 do
    for i = 0 to 2 do
      bblk.((k * 9) + (i * 3) + i) <- bblk.((k * 9) + (i * 3) + i) +. 6.0
    done
  done;
  let xtrue = Array.init (m * l * 3) (fun _ -> rnd ()) in
  let rhs = Array.make (m * l * 3) 0.0 in
  (* rhs = A x_{k-1} + B x_k + C x_{k+1}, double precision, host side *)
  for line = 0 to m - 1 do
    for k = 0 to l - 1 do
      let blk = (line * l) + k in
      for i = 0 to 2 do
        let acc = ref 0.0 in
        for j = 0 to 2 do
          acc := !acc +. (bblk.((blk * 9) + (i * 3) + j) *. xtrue.((blk * 3) + j))
        done;
        if k > 0 then
          for j = 0 to 2 do
            acc := !acc +. (ablk.((blk * 9) + (i * 3) + j) *. xtrue.(((blk - 1) * 3) + j))
          done;
        if k < l - 1 then
          for j = 0 to 2 do
            acc := !acc +. (cblk.((blk * 9) + (i * 3) + j) *. xtrue.(((blk + 1) * 3) + j))
          done;
        rhs.((blk * 3) + i) <- !acc
      done
    done
  done;
  { ablk; bblk; cblk; rhs; xtrue }

(* ---------- host reference (op-for-op identical to the IR) ---------- *)

let h_inv3 (m : float array) mo (inv : float array) io =
  let g k = m.(mo + k) in
  let c0 = (g 4 *. g 8) -. (g 5 *. g 7) in
  let c1 = (g 5 *. g 6) -. (g 3 *. g 8) in
  let c2 = (g 3 *. g 7) -. (g 4 *. g 6) in
  let det = ((g 0 *. c0) +. (g 1 *. c1)) +. (g 2 *. c2) in
  let invdet = 1.0 /. det in
  inv.(io + 0) <- c0 *. invdet;
  inv.(io + 1) <- ((g 2 *. g 7) -. (g 1 *. g 8)) *. invdet;
  inv.(io + 2) <- ((g 1 *. g 5) -. (g 2 *. g 4)) *. invdet;
  inv.(io + 3) <- c1 *. invdet;
  inv.(io + 4) <- ((g 0 *. g 8) -. (g 2 *. g 6)) *. invdet;
  inv.(io + 5) <- ((g 2 *. g 3) -. (g 0 *. g 5)) *. invdet;
  inv.(io + 6) <- c2 *. invdet;
  inv.(io + 7) <- ((g 1 *. g 6) -. (g 0 *. g 7)) *. invdet;
  inv.(io + 8) <- ((g 0 *. g 4) -. (g 1 *. g 3)) *. invdet

let h_matmul3 (d : float array) dofs (a : float array) ao (b : float array) bo =
  for i = 0 to 2 do
    for j = 0 to 2 do
      let t1 = a.(ao + (i * 3)) *. b.(bo + j) in
      let t2 = a.(ao + (i * 3) + 1) *. b.(bo + 3 + j) in
      let t3 = a.(ao + (i * 3) + 2) *. b.(bo + 6 + j) in
      d.(dofs + (i * 3) + j) <- (t1 +. t2) +. t3
    done
  done

let h_matvec3 (d : float array) dofs (a : float array) ao (v : float array) vo =
  for i = 0 to 2 do
    let t1 = a.(ao + (i * 3)) *. v.(vo) in
    let t2 = a.(ao + (i * 3) + 1) *. v.(vo + 1) in
    let t3 = a.(ao + (i * 3) + 2) *. v.(vo + 2) in
    d.(dofs + i) <- (t1 +. t2) +. t3
  done

let host_solve sz (data : data) =
  let m = sz.lines and l = sz.len in
  let x = Array.make (m * l * 3) 0.0 in
  let w = Array.make (l * 9) 0.0 in
  let g = Array.make (l * 3) 0.0 in
  let bp = Array.make 9 0.0 in
  let binv = Array.make 9 0.0 in
  let t9 = Array.make 9 0.0 in
  let t3 = Array.make 3 0.0 in
  let tv = Array.make 3 0.0 in
  for line = 0 to m - 1 do
    for k = 0 to l - 1 do
      let blk = (line * l) + k in
      Array.blit data.bblk (blk * 9) bp 0 9;
      Array.blit data.rhs (blk * 3) t3 0 3;
      if k > 0 then begin
        h_matmul3 t9 0 data.ablk (blk * 9) w ((k - 1) * 9);
        for e = 0 to 8 do
          bp.(e) <- bp.(e) -. t9.(e)
        done;
        h_matvec3 tv 0 data.ablk (blk * 9) g ((k - 1) * 3);
        for e = 0 to 2 do
          t3.(e) <- t3.(e) -. tv.(e)
        done
      end;
      h_inv3 bp 0 binv 0;
      if k < l - 1 then h_matmul3 w (k * 9) binv 0 data.cblk (blk * 9);
      h_matvec3 g (k * 3) binv 0 t3 0
    done;
    (* back substitution *)
    let last = (line * l) + (l - 1) in
    Array.blit g ((l - 1) * 3) x (last * 3) 3;
    for k = l - 2 downto 0 do
      let blk = (line * l) + k in
      h_matvec3 tv 0 w (k * 9) x ((blk + 1) * 3);
      for e = 0 to 2 do
        x.((blk * 3) + e) <- g.((k * 3) + e) -. tv.(e)
      done
    done
  done;
  x

(* ---------- the IR binary ---------- *)

let build sz =
  let m = sz.lines and l = sz.len in
  let t = Builder.create () in
  let ab = Builder.alloc_f t (m * l * 9) in
  let bb = Builder.alloc_f t (m * l * 9) in
  let cb = Builder.alloc_f t (m * l * 9) in
  let db = Builder.alloc_f t (m * l * 3) in
  let xb = Builder.alloc_f t (m * l * 3) in
  let wb = Builder.alloc_f t (l * 9) in
  let gb = Builder.alloc_f t (l * 3) in
  let bpb = Builder.alloc_f t 9 in
  let bib = Builder.alloc_f t 9 in
  let t9b = Builder.alloc_f t 9 in
  let t3b = Builder.alloc_f t 3 in
  let tvb = Builder.alloc_f t 3 in
  let open Builder in
  let inv3 =
    func t ~module_:"bt" "inv3" ~nf_args:0 ~ni_args:2 (fun b _ ia ->
        let src = ia.(0) and dst = ia.(1) in
        let g k = loadf b (dyn_off src k) in
        let m0 = g 0 and m1 = g 1 and m2 = g 2 in
        let m3 = g 3 and m4 = g 4 and m5 = g 5 in
        let m6 = g 6 and m7 = g 7 and m8 = g 8 in
        let c0 = fsub b (fmul b m4 m8) (fmul b m5 m7) in
        let c1 = fsub b (fmul b m5 m6) (fmul b m3 m8) in
        let c2 = fsub b (fmul b m3 m7) (fmul b m4 m6) in
        let det = fadd b (fadd b (fmul b m0 c0) (fmul b m1 c1)) (fmul b m2 c2) in
        let invdet = fdiv b (fconst b 1.0) det in
        let put k v = storef b (dyn_off dst k) (fmul b v invdet) in
        put 0 c0;
        put 1 (fsub b (fmul b m2 m7) (fmul b m1 m8));
        put 2 (fsub b (fmul b m1 m5) (fmul b m2 m4));
        put 3 c1;
        put 4 (fsub b (fmul b m0 m8) (fmul b m2 m6));
        put 5 (fsub b (fmul b m2 m3) (fmul b m0 m5));
        put 6 c2;
        put 7 (fsub b (fmul b m1 m6) (fmul b m0 m7));
        put 8 (fsub b (fmul b m0 m4) (fmul b m1 m3)))
  in
  let matmul3 =
    func t ~module_:"bt" "matmul3" ~nf_args:0 ~ni_args:3 (fun b _ ia ->
        let dst = ia.(0) and a = ia.(1) and bm = ia.(2) in
        for i = 0 to 2 do
          for j = 0 to 2 do
            let t1 = fmul b (loadf b (dyn_off a (i * 3))) (loadf b (dyn_off bm j)) in
            let t2 =
              fmul b (loadf b (dyn_off a ((i * 3) + 1))) (loadf b (dyn_off bm (3 + j)))
            in
            let t3 =
              fmul b (loadf b (dyn_off a ((i * 3) + 2))) (loadf b (dyn_off bm (6 + j)))
            in
            storef b (dyn_off dst ((i * 3) + j)) (fadd b (fadd b t1 t2) t3)
          done
        done)
  in
  let matvec3 =
    func t ~module_:"bt" "matvec3" ~nf_args:0 ~ni_args:3 (fun b _ ia ->
        let dst = ia.(0) and a = ia.(1) and v = ia.(2) in
        for i = 0 to 2 do
          let t1 = fmul b (loadf b (dyn_off a (i * 3))) (loadf b (dyn_off v 0)) in
          let t2 = fmul b (loadf b (dyn_off a ((i * 3) + 1))) (loadf b (dyn_off v 1)) in
          let t3 = fmul b (loadf b (dyn_off a ((i * 3) + 2))) (loadf b (dyn_off v 2)) in
          storef b (dyn_off dst i) (fadd b (fadd b t1 t2) t3)
        done)
  in
  let solve_line =
    func t ~module_:"bt" "solve_line" ~nf_args:0 ~ni_args:1 (fun b _ ia ->
        let line = ia.(0) in
        let line_l = imulc b line l in
        let bp = iconst b bpb and bi = iconst b bib in
        let t9r = iconst b t9b and t3r = iconst b t3b and tvr = iconst b tvb in
        for_range b 0 l (fun k ->
            let blk = iadd b line_l k in
            let blk9 = imulc b blk 9 in
            let blk3 = imulc b blk 3 in
            (* bp <- B_blk ; t3 <- d_blk *)
            for_range b 0 9 (fun e ->
                storef b (dyn_idx bp e) (loadf b (dyn_idx (iaddc b blk9 bb) e)));
            for_range b 0 3 (fun e ->
                storef b (dyn_idx t3r e) (loadf b (dyn_idx (iaddc b blk3 db) e)));
            when_ b (igt b k (iconst b 0)) (fun () ->
                let abase = iaddc b blk9 ab in
                let k1 = isub b k (iconst b 1) in
                let wprev = iaddc b (imulc b k1 9) wb in
                let _ = call b matmul3 ~fargs:[] ~iargs:[ t9r; abase; wprev ] in
                for_range b 0 9 (fun e ->
                    let v = fsub b (loadf b (dyn_idx bp e)) (loadf b (dyn_idx t9r e)) in
                    storef b (dyn_idx bp e) v);
                let gprev = iaddc b (imulc b k1 3) gb in
                let _ = call b matvec3 ~fargs:[] ~iargs:[ tvr; abase; gprev ] in
                for_range b 0 3 (fun e ->
                    let v = fsub b (loadf b (dyn_idx t3r e)) (loadf b (dyn_idx tvr e)) in
                    storef b (dyn_idx t3r e) v));
            let _ = call b inv3 ~fargs:[] ~iargs:[ bp; bi ] in
            when_ b (ilt b k (iconst b (l - 1))) (fun () ->
                let wk = iaddc b (imulc b k 9) wb in
                let cbase = iaddc b blk9 cb in
                let _ = call b matmul3 ~fargs:[] ~iargs:[ wk; bi; cbase ] in
                ());
            let gk = iaddc b (imulc b k 3) gb in
            let _ = call b matvec3 ~fargs:[] ~iargs:[ gk; bi; t3r ] in
            ());
        (* back substitution *)
        let lastblk = iadd b line_l (iconst b (l - 1)) in
        let xlast = iaddc b (imulc b lastblk 3) xb in
        let glast = iconst b (gb + ((l - 1) * 3)) in
        for_range b 0 3 (fun e ->
            storef b (dyn_idx xlast e) (loadf b (dyn_idx glast e)));
        for_down b (iconst b (l - 1)) (iconst b 0) (fun k ->
            let blk = iadd b line_l k in
            let wk = iaddc b (imulc b k 9) wb in
            let xnext = iaddc b (imulc b (iadd b blk (iconst b 1)) 3) xb in
            let _ = call b matvec3 ~fargs:[] ~iargs:[ tvr; wk; xnext ] in
            let gk = iaddc b (imulc b k 3) gb in
            let xk = iaddc b (imulc b blk 3) xb in
            for_range b 0 3 (fun e ->
                let v = fsub b (loadf b (dyn_idx gk e)) (loadf b (dyn_idx tvr e)) in
                storef b (dyn_idx xk e) v)))
  in
  let main =
    func t ~module_:"bt" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for_range b 0 m (fun line ->
            let _ = call b solve_line ~fargs:[] ~iargs:[ line ] in
            ()))
  in
  let prog = Builder.program t ~main in
  (prog, ab, bb, cb, db, xb)

let make cls =
  let sz = sizes cls in
  let data = gen ~seed:(500 + sz.lines) sz in
  let program, ab, bb, cb, db, xb = build sz in
  let reference = host_solve sz data in
  let nx = Array.length reference in
  let verify res = Stats.rel_err_inf res data.xtrue <= sz.tol in
  {
    Kernel.name = "bt." ^ Kernel.class_name cls;
    program;
    setup =
      (fun vm ->
        Vm.write_f vm ab data.ablk;
        Vm.write_f vm bb data.bblk;
        Vm.write_f vm cb data.cblk;
        Vm.write_f vm db data.rhs);
    output = (fun vm -> Vm.read_f vm xb nx);
    verify;
    reference;
    hints = Config.empty;
    comm_bytes =
      (fun ~ranks net ->
        (* line-sweep face exchanges, once per solve *)
        2.0 *. Mpi_model.halo net ~ranks ~bytes_boundary:(24.0 *. float_of_int sz.lines));
  }
