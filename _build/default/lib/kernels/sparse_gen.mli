(** Host-side generation of sparse symmetric positive-definite matrices in
    CSR form, used as the CG benchmark's data set (the analogue of NAS CG's
    [makea] generator). Diagonal dominance guarantees positive
    definiteness. *)

type csr = {
  n : int;
  rowptr : int array;  (** length n+1 *)
  col : int array;
  value : float array;
}

val random_spd : seed:int -> n:int -> extras_per_row:int -> csr
(** Symmetric pattern with [extras_per_row] random strictly-lower entries
    per row (mirrored), values in [(-1, 1)], diagonal set to
    [1 + sum |offdiag|]. *)

val spmv : csr -> float array -> float array -> unit
(** [spmv a x y] computes [y <- A x] with ascending-column accumulation
    order (bit-for-bit identical to the IR kernel's loop). *)
