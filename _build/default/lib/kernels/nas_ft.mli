(** FT-like benchmark: radix-2 complex FFT with spectral evolution (the
    numerical character of NAS FT).

    The binary computes its own twiddle tables with libm sin/cos, forward
    FFTs a pseudo-random complex signal, then for each evolution step
    applies a real exponential damping in frequency space, inverse FFTs
    into a scratch array, and accumulates a checksum over strided samples.

    Verification compares the checksums at 1e-9 relative — like the paper's
    FT, almost nothing hot survives single precision (only exact
    power-of-two scalings and cold code pass). *)

type sizes = { m : int;  (** transform size, power of two *) steps : int }

val sizes : Kernel.class_ -> sizes

val checksum_samples : int -> int
(** Number of strided samples in the checksum for a transform of size [m];
    strictly less than [m] so the checksum is not the (insensitive) DC
    coefficient. *)

val make : Kernel.class_ -> Kernel.t
