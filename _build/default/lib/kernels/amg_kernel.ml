type sizes = { n : int; maxiter : int; omega : float; target : float }

let default_sizes = { n = 48; maxiter = 600; omega = 1.85; target = 1e-4 }

let input_f ~seed n =
  let rng = Rng.create seed in
  Array.init (n * n) (fun k ->
      let i = k / n and j = k mod n in
      if i = 0 || j = 0 || i = n - 1 || j = n - 1 then 0.0
      else (2.0 *. Rng.uniform rng) -. 1.0)

(* ---------- host reference ---------- *)

let host_reference ~seed sz =
  let n = sz.n in
  let u = Array.make (n * n) 0.0 in
  let f = input_f ~seed n in
  let quarter_omega = sz.omega /. 4.0 in
  let relax_sweep () =
    for i = 1 to n - 2 do
      for j = 1 to n - 2 do
        let c = (i * n) + j in
        let au = (4.0 *. u.(c)) -. u.(c - n) -. u.(c + n) -. u.(c - 1) -. u.(c + 1) in
        u.(c) <- u.(c) +. (quarter_omega *. (f.(c) -. au))
      done
    done
  in
  let res2 () =
    let acc = ref 0.0 in
    for i = 1 to n - 2 do
      for j = 1 to n - 2 do
        let c = (i * n) + j in
        let au = (4.0 *. u.(c)) -. u.(c - n) -. u.(c + n) -. u.(c - 1) -. u.(c + 1) in
        let r = f.(c) -. au in
        acc := !acc +. (r *. r)
      done
    done;
    !acc
  in
  let r0 = res2 () in
  let bound = sz.target *. sz.target *. r0 in
  let iters = ref 0 in
  let rn = ref r0 in
  while !iters < sz.maxiter && !rn > bound do
    relax_sweep ();
    rn := res2 ();
    incr iters
  done;
  [| sqrt (!rn /. r0); float_of_int !iters |]

(* ---------- the IR binary ---------- *)

let build sz =
  let n = sz.n in
  let t = Builder.create () in
  let ub = Builder.alloc_f t (n * n) in
  let fb = Builder.alloc_f t (n * n) in
  let out = Builder.alloc_f t 2 in
  let open Builder in
  let stencil b c =
    let four = fconst b 4.0 in
    let u0 = loadf b (dyn_idx (iconst b ub) c) in
    let un = loadf b (dyn_idx (iconst b ub) (isub b c (iconst b n))) in
    let us = loadf b (dyn_idx (iconst b ub) (iadd b c (iconst b n))) in
    let uw = loadf b (dyn_idx (iconst b ub) (isub b c (iconst b 1))) in
    let ue = loadf b (dyn_idx (iconst b ub) (iadd b c (iconst b 1))) in
    fsub b (fsub b (fsub b (fsub b (fmul b four u0) un) us) uw) ue
  in
  let relax =
    func t ~module_:"amg" "relax" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let w4 = fconst b (sz.omega /. 4.0) in
        for_range b 1 (n - 1) (fun i ->
            for_range b 1 (n - 1) (fun j ->
                let c = iadd b (imulc b i n) j in
                let au = stencil b c in
                let fv = loadf b (dyn_idx (iconst b fb) c) in
                let u0 = loadf b (dyn_idx (iconst b ub) c) in
                storef b (dyn_idx (iconst b ub) c) (fadd b u0 (fmul b w4 (fsub b fv au))))))
  in
  let res2 =
    func t ~module_:"amg" "res2" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let acc = freshf b in
        setf b acc (fconst b 0.0);
        for_range b 1 (n - 1) (fun i ->
            for_range b 1 (n - 1) (fun j ->
                let c = iadd b (imulc b i n) j in
                let au = stencil b c in
                let fv = loadf b (dyn_idx (iconst b fb) c) in
                let r = fsub b fv au in
                setf b acc (fadd b acc (fmul b r r))));
        ret b ~f:[ acc ] ())
  in
  let main =
    func t ~module_:"amg" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let r0v, _ = call b res2 ~fargs:[] ~iargs:[] in
        let r0 = r0v.(0) in
        let tgt = fconst b (sz.target *. sz.target) in
        let bound = fmul b tgt r0 in
        let rn = freshf b in
        setf b rn r0;
        let iters = freshi b in
        seti b iters (iconst b 0);
        let maxiter = iconst b sz.maxiter in
        while_ b
          (fun () ->
            let more = ilt b iters maxiter in
            let unconverged = fgt b rn bound in
            iand b more unconverged)
          (fun () ->
            let _ = call b relax ~fargs:[] ~iargs:[] in
            let rv, _ = call b res2 ~fargs:[] ~iargs:[] in
            setf b rn rv.(0);
            seti b iters (iaddc b iters 1));
        storef b (at out) (fsqrt b (fdiv b rn r0));
        storef b (at (out + 1)) (i2f b iters))
  in
  let prog = Builder.program t ~main in
  (prog, fb, out)

let make ?(sizes = default_sizes) () =
  let sz = sizes in
  let seed = 2100 + sz.n in
  let program, fb, out = build sz in
  let fin = input_f ~seed sz.n in
  let reference = host_reference ~seed sz in
  let verify res =
    (* adaptive acceptance: converged within the iteration budget *)
    res.(0) <= sz.target && res.(1) < float_of_int sz.maxiter
  in
  {
    Kernel.name = "amg";
    program;
    setup = (fun vm -> Vm.write_f vm fb fin);
    output = (fun vm -> Vm.read_f vm out 2);
    verify;
    reference;
    hints = Config.empty;
    comm_bytes =
      (fun ~ranks net -> Mpi_model.halo net ~ranks ~bytes_boundary:(8.0 *. float_of_int sz.n));
  }

let iterations out = int_of_float out.(1)
