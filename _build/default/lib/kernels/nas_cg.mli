(** CG-like benchmark: the NAS CG power-method/conjugate-gradient kernel on
    a random sparse SPD matrix.

    Each outer iteration runs a fixed number of (unpreconditioned) CG steps
    on [A z = x], computes [zeta = shift + 1/(x·z)], and renormalizes
    [x = z/||z||]. Output: [zeta; final residual norm]. Verification is the
    NAS-style tight check [|zeta - zeta_ref| <= 1e-10], which makes the hot
    solver numerically sensitive — the paper's CG shows exactly this
    profile (high static replacement on cold code, very low dynamic
    replacement). *)

type sizes = { n : int; extras : int; outer : int; inner : int; shift : float }

val sizes : Kernel.class_ -> sizes
val make : Kernel.class_ -> Kernel.t
