(** Static analysis over the IR: enumeration of replacement candidates and
    the module/function/block/instruction structure tree that configurations
    and the search descend through (paper §2.1–2.2). *)

type insn_info = {
  addr : int;
  fid : int;
  fname : string;
  module_name : string;
  block_label : int;
  disasm : string;
}

type node =
  | Module of string * node list
  | Func of int * string * node list  (** fid, name *)
  | Block of int * node list  (** label *)
  | Insn of insn_info

val candidates : Ir.program -> insn_info array
(** All double-precision candidate instructions (the paper's set [Pd]), in
    program order. *)

val tree : Ir.program -> node list
(** The structure tree, one [Module] per program module. Only candidate
    instructions appear as leaves; blocks and functions without any
    candidate are omitted (they offer nothing to configure). *)

val max_addr : Ir.program -> int
(** Largest instruction address in the program (for counter arrays). *)

val insn_count : Ir.program -> int

val node_insns : node -> insn_info list
(** All candidate instructions contained in a structure node. *)

val node_name : node -> string
(** Display name, e.g. ["MODULE cg"], ["FUNC02 spmv"], ["BBLK07"],
    ["INSN 0x0001f2"]. *)
