(** The assembler: parses the disassembly listing format produced by
    {!Ir.pp_program} back into a program.

    This closes the binary toolchain round trip — a listing can be dumped,
    edited by hand (the workflow the paper's GUI supports at the source
    level), and re-assembled:

    {[
      let text = Format.asprintf "%a" Ir.pp_program prog in
      let prog' = Asm.parse_exn text in
      (* prog' is structurally identical to prog *)
    ]}

    The grammar is exactly the printer's output: a program prologue line
    [; program main=NAME fheap=N iheap=N], per-function headers
    [mod:name()  ; fid=... fargs=... iargs=... frets=[...] irets=[...]
    fregs=... iregs=...], block headers [.Bk (label L) <entry>:],
    instruction lines [0xADDR  mnemonic operands], and terminator lines.
    Blank lines are ignored. Addresses and labels are preserved. *)

val parse : string -> (Ir.program, string) result
(** Errors carry a line number and description. The resulting program is
    validated with {!Ir.validate}. *)

val parse_exn : string -> Ir.program
(** Raises [Invalid_argument] on parse or validation errors. *)
