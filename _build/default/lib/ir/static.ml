type insn_info = {
  addr : int;
  fid : int;
  fname : string;
  module_name : string;
  block_label : int;
  disasm : string;
}

type node =
  | Module of string * node list
  | Func of int * string * node list
  | Block of int * node list
  | Insn of insn_info

let candidates (p : Ir.program) =
  let acc = ref [] in
  Array.iter
    (fun (f : Ir.func) ->
      Array.iter
        (fun (b : Ir.block) ->
          Array.iter
            (fun ({ addr; op } : Ir.instr) ->
              if Ir.is_candidate op then
                acc :=
                  {
                    addr;
                    fid = f.fid;
                    fname = f.fname;
                    module_name = f.module_name;
                    block_label = b.label;
                    disasm = Ir.disasm op;
                  }
                  :: !acc)
            b.instrs)
        f.blocks)
    p.funcs;
  Array.of_list (List.rev !acc)

let tree (p : Ir.program) =
  let func_node (f : Ir.func) =
    let blocks =
      Array.to_list f.blocks
      |> List.filter_map (fun (b : Ir.block) ->
             let insns =
               Array.to_list b.instrs
               |> List.filter_map (fun ({ addr; op } : Ir.instr) ->
                      if Ir.is_candidate op then
                        Some
                          (Insn
                             {
                               addr;
                               fid = f.fid;
                               fname = f.fname;
                               module_name = f.module_name;
                               block_label = b.label;
                               disasm = Ir.disasm op;
                             })
                      else None)
             in
             if insns = [] then None else Some (Block (b.label, insns)))
    in
    if blocks = [] then None else Some (Func (f.fid, f.fname, blocks))
  in
  Array.to_list p.modules
  |> List.filter_map (fun m ->
         let funcs =
           Array.to_list p.funcs
           |> List.filter (fun (f : Ir.func) -> String.equal f.module_name m)
           |> List.filter_map func_node
         in
         if funcs = [] then None else Some (Module (m, funcs)))

let max_addr (p : Ir.program) =
  Array.fold_left
    (fun acc (f : Ir.func) ->
      Array.fold_left
        (fun acc (b : Ir.block) ->
          Array.fold_left (fun acc (i : Ir.instr) -> max acc i.addr) acc b.instrs)
        acc f.blocks)
    0 p.funcs

let insn_count (p : Ir.program) =
  Array.fold_left
    (fun acc (f : Ir.func) ->
      Array.fold_left (fun acc (b : Ir.block) -> acc + Array.length b.instrs) acc f.blocks)
    0 p.funcs

let rec node_insns = function
  | Insn i -> [ i ]
  | Block (_, children) | Func (_, _, children) | Module (_, children) ->
      List.concat_map node_insns children

let node_name = function
  | Module (m, _) -> Printf.sprintf "MODULE %s" m
  | Func (fid, name, _) -> Printf.sprintf "FUNC%02d %s" (fid + 1) name
  | Block (label, _) -> Printf.sprintf "BBLK%02d" label
  | Insn { addr; _ } -> Printf.sprintf "INSN 0x%06x" addr
