lib/ir/asm.ml: Array Format Ir List Printf Seq String
