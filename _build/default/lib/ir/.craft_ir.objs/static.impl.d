lib/ir/static.ml: Array Ir List Printf String
