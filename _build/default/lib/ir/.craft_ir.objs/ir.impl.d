lib/ir/ir.ml: Array Format Hashtbl List Printf String
