lib/ir/static.mli: Ir
