lib/ir/asm.mli: Ir
