exception Parse of int * string

let fail lineno fmt = Format.kasprintf (fun s -> raise (Parse (lineno, s))) fmt

let starts_with pfx s =
  String.length s >= String.length pfx && String.sub s 0 (String.length pfx) = pfx

let strip = String.trim

let split_arrow ln s =
  let n = String.length s in
  let rec find i =
    if i + 1 >= n then fail ln "expected '->' in %S" s
    else if s.[i] = '-' && s.[i + 1] = '>' then i
    else find (i + 1)
  in
  let i = find 0 in
  (strip (String.sub s 0 i), strip (String.sub s (i + 2) (n - i - 2)))

let split_commas s =
  if strip s = "" then []
  else String.split_on_char ',' s |> List.map strip |> List.filter (fun x -> x <> "")

let parse_reg ln pfx s =
  if String.length s >= 2 && s.[0] = pfx then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some r -> r
    | None -> fail ln "bad register %S" s
  else fail ln "expected %c-register, got %S" pfx s

let parse_any_reg ln s =
  if String.length s >= 2 && (s.[0] = 'f' || s.[0] = 'i') then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some r -> (s.[0], r)
    | None -> fail ln "bad register %S" s
  else fail ln "expected register, got %S" s

(* [off], [off+iB], [off+iX*s], [off+iB+iX*s] *)
let parse_mem ln s : Ir.mem =
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then fail ln "expected memory operand, got %S" s;
  let body = String.sub s 1 (n - 2) in
  let parts = String.split_on_char '+' body in
  match parts with
  | [] -> fail ln "empty memory operand"
  | off :: rest -> (
      let offset =
        match int_of_string_opt off with
        | Some v -> v
        | None -> fail ln "bad offset %S" off
      in
      let parse_part p =
        match String.index_opt p '*' with
        | Some star ->
            let r = parse_reg ln 'i' (String.sub p 0 star) in
            let scale =
              match int_of_string_opt (String.sub p (star + 1) (String.length p - star - 1)) with
              | Some v -> v
              | None -> fail ln "bad scale in %S" p
            in
            `Index (r, scale)
        | None -> `Base (parse_reg ln 'i' p)
      in
      match List.map parse_part rest with
      | [] -> { base = None; index = None; scale = 1; offset }
      | [ `Base b ] -> { base = Some b; index = None; scale = 1; offset }
      | [ `Index (i, s) ] -> { base = None; index = Some i; scale = s; offset }
      | [ `Base b; `Index (i, s) ] -> { base = Some b; index = Some i; scale = s; offset }
      | _ -> fail ln "unsupported memory operand %S" s)

let fbinop_of = function
  | "add" -> Some Ir.Add
  | "sub" -> Some Ir.Sub
  | "mul" -> Some Ir.Mul
  | "div" -> Some Ir.Div
  | "min" -> Some Ir.Min
  | "max" -> Some Ir.Max
  | _ -> None

let funop_of = function
  | "sqrt" -> Some Ir.Sqrt
  | "neg" -> Some Ir.Neg
  | "abs" -> Some Ir.Abs
  | _ -> None

let flibm_of = function
  | "sin" -> Some Ir.Sin
  | "cos" -> Some Ir.Cos
  | "tan" -> Some Ir.Tan
  | "exp" -> Some Ir.Exp
  | "log" -> Some Ir.Log
  | "atan" -> Some Ir.Atan
  | _ -> None

let cmpop_of ln = function
  | "eq" -> Ir.Eq
  | "ne" -> Ir.Ne
  | "lt" -> Ir.Lt
  | "le" -> Ir.Le
  | "gt" -> Ir.Gt
  | "ge" -> Ir.Ge
  | c -> fail ln "unknown comparison %S" c

let ibinop_of = function
  | "add" -> Some Ir.Iadd
  | "sub" -> Some Ir.Isub
  | "imul" -> Some Ir.Imul
  | "idiv" -> Some Ir.Idiv
  | "irem" -> Some Ir.Irem
  | "and" -> Some Ir.Iand
  | "or" -> Some Ir.Ior
  | "xor" -> Some Ir.Ixor
  | "shl" -> Some Ir.Ishl
  | "shr" -> Some Ir.Ishr
  | "imax" -> Some Ir.Imax
  | "imin" -> Some Ir.Imin
  | _ -> None

(* mnemonic with sd/ss suffix -> (base, prec) *)
let split_suffix m =
  let n = String.length m in
  if n > 2 && String.sub m (n - 2) 2 = "sd" then Some (String.sub m 0 (n - 2), Ir.D)
  else if n > 2 && String.sub m (n - 2) 2 = "ss" then Some (String.sub m 0 (n - 2), Ir.S)
  else None

(* packed mnemonics: addpd/addps etc. *)
let split_psuffix m =
  let n = String.length m in
  if n > 2 && String.sub m (n - 2) 2 = "pd" then Some (String.sub m 0 (n - 2), Ir.D)
  else if n > 2 && String.sub m (n - 2) 2 = "ps" then Some (String.sub m 0 (n - 2), Ir.S)
  else None

let parse_call ln rest =
  (* @N (f1, f2, i0) -> (f3, i1) *)
  let rest = strip rest in
  if not (starts_with "@" rest) then fail ln "expected call target in %S" rest;
  let lpar =
    match String.index_opt rest '(' with Some i -> i | None -> fail ln "expected '(' in call"
  in
  let callee =
    match int_of_string_opt (strip (String.sub rest 1 (lpar - 1))) with
    | Some v -> v
    | None -> fail ln "bad call target"
  in
  let rpar =
    match String.index_opt rest ')' with Some i -> i | None -> fail ln "expected ')' in call"
  in
  let args_s = String.sub rest (lpar + 1) (rpar - lpar - 1) in
  let after = String.sub rest (rpar + 1) (String.length rest - rpar - 1) in
  let _, rets_group = split_arrow ln after in
  let rets_s =
    let s = strip rets_group in
    if String.length s >= 2 && s.[0] = '(' && s.[String.length s - 1] = ')' then
      String.sub s 1 (String.length s - 2)
    else fail ln "expected '(...)' return group in call"
  in
  let classify l =
    let fs = ref [] and is = ref [] in
    List.iter
      (fun tok ->
        match parse_any_reg ln tok with
        | 'f', r -> fs := r :: !fs
        | _, r -> is := r :: !is)
      l;
    (Array.of_list (List.rev !fs), Array.of_list (List.rev !is))
  in
  let fargs, iargs = classify (split_commas args_s) in
  let frets, irets = classify (split_commas rets_s) in
  Ir.Call { callee; fargs; iargs; frets; irets }

let parse_op ln (text : string) : Ir.op =
  let text = strip text in
  let mnemonic, rest =
    match String.index_opt text ' ' with
    | Some i -> (String.sub text 0 i, String.sub text (i + 1) (String.length text - i - 1))
    | None -> (text, "")
  in
  let freg = parse_reg ln 'f' and ireg = parse_reg ln 'i' in
  let two_to_one rest =
    let lhs, rhs = split_arrow ln rest in
    match split_commas lhs with
    | [ a; b ] -> (a, b, rhs)
    | _ -> fail ln "expected two operands in %S" rest
  in
  let one_to_one rest =
    let lhs, rhs = split_arrow ln rest in
    (strip lhs, rhs)
  in
  match mnemonic with
  | "movq" ->
      let a, d = one_to_one rest in
      Fmov (freg d, freg a)
  | "mov" ->
      let a, d = one_to_one rest in
      Imov (ireg d, ireg a)
  | "movsd.ld" ->
      let a, d = one_to_one rest in
      Fload (freg d, parse_mem ln a)
  | "movsd.st" ->
      let a, d = one_to_one rest in
      Fstore (parse_mem ln d, freg a)
  | "mov.ld" ->
      let a, d = one_to_one rest in
      Iload (ireg d, parse_mem ln a)
  | "mov.st" ->
      let a, d = one_to_one rest in
      Istore (parse_mem ln d, ireg a)
  | "mov.imm" ->
      let a, d = one_to_one rest in
      if not (starts_with "$" a) then fail ln "expected immediate in %S" a;
      let v =
        match int_of_string_opt (String.sub a 1 (String.length a - 1)) with
        | Some v -> v
        | None -> fail ln "bad integer immediate %S" a
      in
      Iconst (ireg d, v)
  | "movsd.imm" | "movss.imm" ->
      let a, d = one_to_one rest in
      if not (starts_with "$" a) then fail ln "expected immediate in %S" a;
      let v =
        match float_of_string_opt (String.sub a 1 (String.length a - 1)) with
        | Some v -> v
        | None -> fail ln "bad float immediate %S" a
      in
      Fconst ((if mnemonic = "movsd.imm" then D else S), freg d, v)
  | "cvtsi2sd" ->
      let a, d = one_to_one rest in
      Fcvt_i2f (D, freg d, ireg a)
  | "cvtsi2ss" ->
      let a, d = one_to_one rest in
      Fcvt_i2f (S, freg d, ireg a)
  | "cvttsd2si" ->
      let a, d = one_to_one rest in
      Fcvt_f2i (D, ireg d, freg a)
  | "cvttss2si" ->
      let a, d = one_to_one rest in
      Fcvt_f2i (S, ireg d, freg a)
  | "testflag" ->
      let a, d = one_to_one rest in
      Ftestflag (ireg d, freg a)
  | "expfield" ->
      let a, d = one_to_one rest in
      Fexpo (ireg d, freg a)
  | "cvtsd2ss.flag" ->
      let a, d = one_to_one rest in
      Fdowncast (freg d, freg a)
  | "cvtss2sd.flag" ->
      let a, d = one_to_one rest in
      Fupcast (freg d, freg a)
  | "call" -> parse_call ln rest
  | _ -> (
      (* comparisons: cmpsd.lt / cmpss.lt / cmp.lt *)
      if starts_with "cmpsd." mnemonic || starts_with "cmpss." mnemonic then begin
        let prec = if starts_with "cmpsd." mnemonic then Ir.D else Ir.S in
        let c = cmpop_of ln (String.sub mnemonic 6 (String.length mnemonic - 6)) in
        let a, b, d = two_to_one rest in
        Fcmp (prec, c, ireg d, freg a, freg b)
      end
      else if starts_with "cmp." mnemonic then begin
        let c = cmpop_of ln (String.sub mnemonic 4 (String.length mnemonic - 4)) in
        let a, b, d = two_to_one rest in
        Icmp (c, ireg d, ireg a, ireg b)
      end
      else
        match split_psuffix mnemonic with
        | Some (base, prec) when fbinop_of base <> None -> (
            match fbinop_of base with
            | Some o ->
                let a, b, d = two_to_one rest in
                Fbinp (prec, o, freg d, freg a, freg b)
            | None -> assert false)
        | _ ->
        match split_suffix mnemonic with
        | Some (base, prec) -> (
            match fbinop_of base with
            | Some o ->
                let a, b, d = two_to_one rest in
                Fbin (prec, o, freg d, freg a, freg b)
            | None -> (
                match funop_of base with
                | Some o ->
                    let a, d = one_to_one rest in
                    Funop (prec, o, freg d, freg a)
                | None -> (
                    match flibm_of base with
                    | Some o ->
                        let a, d = one_to_one rest in
                        Flibm (prec, o, freg d, freg a)
                    | None -> fail ln "unknown mnemonic %S" mnemonic)))
        | None -> (
            match ibinop_of mnemonic with
            | Some o ->
                let a, b, d = two_to_one rest in
                Ibin (o, ireg d, ireg a, ireg b)
            | None -> fail ln "unknown mnemonic %S" mnemonic))

(* key=value field extraction from function headers *)
let field ln header key =
  let pat = key ^ "=" in
  let rec find i =
    if i + String.length pat > String.length header then fail ln "missing %s in header" key
    else if String.sub header i (String.length pat) = pat then i + String.length pat
    else find (i + 1)
  in
  let start = find 0 in
  let stop =
    match String.index_from_opt header start ' ' with
    | Some j -> j
    | None -> String.length header
  in
  String.sub header start (stop - start)

let parse_reg_list ln s pfx =
  let s = strip s in
  if String.length s < 2 || s.[0] <> '[' || s.[String.length s - 1] <> ']' then
    fail ln "expected register list, got %S" s;
  split_commas (String.sub s 1 (String.length s - 2))
  |> List.map (parse_reg ln pfx)
  |> Array.of_list

type pfunc = {
  p_name : string;
  p_module : string;
  p_fargs : int;
  p_iargs : int;
  p_frets : int array;
  p_irets : int array;
  p_fregs : int;
  p_iregs : int;
  mutable p_blocks : (int * Ir.instr list * Ir.terminator) list;  (** reverse order *)
  mutable p_entry : int;
}

let parse text =
  try
    let lines = String.split_on_char '\n' text in
    let main_name = ref "" in
    let fheap = ref 1 and iheap = ref 1 in
    let funcs = ref [] in
    let cur_func : pfunc option ref = ref None in
    let cur_block : (int * Ir.instr list) option ref = ref None in
    let close_block term =
      match (!cur_func, !cur_block) with
      | Some f, Some (label, instrs) ->
          f.p_blocks <- (label, List.rev instrs, term) :: f.p_blocks;
          cur_block := None
      | _, None -> ()
      | None, _ -> ()
    in
    List.iteri
      (fun idx raw ->
        let ln = idx + 1 in
        let line = strip raw in
        if line = "" then ()
        else if starts_with "; program" line then begin
          main_name := field ln line "main";
          fheap := int_of_string (field ln line "fheap");
          iheap := int_of_string (field ln line "iheap")
        end
        else if starts_with ".B" line then begin
          (* .B3 (label 7) <entry>: *)
          (match !cur_block with
          | Some _ -> fail ln "block %S starts before previous terminator" line
          | None -> ());
          let label =
            match String.index_opt line '(' with
            | Some i -> (
                let rest = String.sub line (i + 1) (String.length line - i - 1) in
                match String.index_opt rest ')' with
                | Some j -> (
                    let inner = String.sub rest 0 j in
                    match String.split_on_char ' ' (strip inner) with
                    | [ "label"; v ] -> int_of_string v
                    | _ -> fail ln "bad block header %S" line)
                | None -> fail ln "bad block header %S" line)
            | None -> fail ln "bad block header %S" line
          in
          (match !cur_func with
          | Some f ->
              let rec contains i =
                i + 7 <= String.length line
                && (String.sub line i 7 = "<entry>" || contains (i + 1))
              in
              if contains 0 then f.p_entry <- List.length f.p_blocks
          | None -> fail ln "block outside a function");
          cur_block := Some (label, [])
        end
        else if starts_with "0x" line then begin
          let sp =
            match String.index_opt line ' ' with
            | Some i -> i
            | None -> fail ln "bad instruction line %S" line
          in
          let addr =
            match int_of_string_opt (String.sub line 0 sp) with
            | Some a -> a
            | None -> fail ln "bad address in %S" line
          in
          let op = parse_op ln (String.sub line sp (String.length line - sp)) in
          match !cur_block with
          | Some (label, instrs) -> cur_block := Some (label, { Ir.addr; op } :: instrs)
          | None -> fail ln "instruction outside a block"
        end
        else if line = "ret" then close_block Ir.Ret
        else if starts_with "jmp " line then begin
          let tgt = strip (String.sub line 4 (String.length line - 4)) in
          if not (starts_with ".B" tgt) then fail ln "bad jump target %S" tgt;
          close_block (Ir.Jmp (int_of_string (String.sub tgt 2 (String.length tgt - 2))))
        end
        else if starts_with "br " line then begin
          (* br i1 ? .B2 : .B3 *)
          match String.split_on_char ' ' line with
          | [ "br"; r; "?"; t; ":"; e ] when starts_with ".B" t && starts_with ".B" e ->
              close_block
                (Ir.Br
                   ( parse_reg ln 'i' r,
                     int_of_string (String.sub t 2 (String.length t - 2)),
                     int_of_string (String.sub e 2 (String.length e - 2)) ))
          | _ -> fail ln "bad branch %S" line
        end
        else if String.contains line ':' && String.length line > 0 then begin
          (* function header: mod:name()  ; fid=... *)
          (match !cur_block with
          | Some _ -> fail ln "function header before block terminator"
          | None -> ());
          let colon = String.index line ':' in
          let module_name = String.sub line 0 colon in
          let after = String.sub line (colon + 1) (String.length line - colon - 1) in
          let name =
            match String.index_opt after '(' with
            | Some i -> String.sub after 0 i
            | None -> fail ln "bad function header %S" line
          in
          let f =
            {
              p_name = name;
              p_module = module_name;
              p_fargs = int_of_string (field ln line "fargs");
              p_iargs = int_of_string (field ln line "iargs");
              p_frets = parse_reg_list ln (field ln line "frets") 'f';
              p_irets = parse_reg_list ln (field ln line "irets") 'i';
              p_fregs = int_of_string (field ln line "fregs");
              p_iregs = int_of_string (field ln line "iregs");
              p_blocks = [];
              p_entry = 0;
            }
          in
          funcs := f :: !funcs;
          cur_func := Some f
        end
        else fail ln "unrecognized line %S" line)
      lines;
    (match !cur_block with
    | Some _ -> raise (Parse (0, "unterminated final block"))
    | None -> ());
    let funcs = List.rev !funcs in
    let modules =
      List.fold_left
        (fun acc f -> if List.mem f.p_module acc then acc else f.p_module :: acc)
        [] funcs
      |> List.rev |> Array.of_list
    in
    let ir_funcs =
      List.mapi
        (fun fid f ->
          {
            Ir.fid;
            fname = f.p_name;
            module_name = f.p_module;
            n_fargs = f.p_fargs;
            n_iargs = f.p_iargs;
            ret_fregs = f.p_frets;
            ret_iregs = f.p_irets;
            n_fregs = f.p_fregs;
            n_iregs = f.p_iregs;
            entry = f.p_entry;
            blocks =
              List.rev f.p_blocks
              |> List.map (fun (label, instrs, term) ->
                     { Ir.label; instrs = Array.of_list instrs; term })
              |> Array.of_list;
          })
        funcs
      |> Array.of_list
    in
    let main =
      match
        Array.to_seq ir_funcs
        |> Seq.zip (Seq.ints 0)
        |> Seq.find (fun (_, (f : Ir.func)) -> f.Ir.fname = !main_name)
      with
      | Some (i, _) -> i
      | None -> raise (Parse (0, Printf.sprintf "main function %S not found" !main_name))
    in
    let prog =
      { Ir.funcs = ir_funcs; main; fheap_size = !fheap; iheap_size = !iheap; modules }
    in
    match Ir.validate prog with
    | Ok () -> Ok prog
    | Error es -> Error ("validation: " ^ String.concat "; " es)
  with
  | Parse (ln, msg) -> Error (Printf.sprintf "line %d: %s" ln msg)
  | Failure msg -> Error msg

let parse_exn text =
  match parse text with Ok p -> p | Error e -> invalid_arg ("Asm.parse: " ^ e)
