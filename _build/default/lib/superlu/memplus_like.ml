let generate ?(dominance = 1.02) ?(dominance_base = 0.001) ?(weak_fraction = 0.0)
    ?(weak_margin = 1.0005) ?(planted_pairs = 0) ?(planted_eps = 3e-4) ~seed ~n () =
  let rng = Rng.create seed in
  let triples = ref [] in
  let add i j v = if i <> j then triples := (i, j, v) :: !triples in
  let magnitude () = 10.0 ** (-3.0 +. (3.0 *. Rng.uniform rng)) in
  let signed_mag () = if Rng.int rng 2 = 0 then magnitude () else -.magnitude () in
  (* local circuit couplings: banded neighbours *)
  for j = 0 to n - 1 do
    let k = 2 + Rng.int rng 4 in
    for _ = 1 to k do
      let off = 1 + Rng.int rng 8 in
      let i = if Rng.int rng 2 = 0 then j - off else j + off in
      if i >= 0 && i < n then add i j (signed_mag ())
    done
  done;
  (* long-range bus couplings: a few hub rows touched from everywhere *)
  let hubs = Array.init (max 1 (n / 100)) (fun _ -> Rng.int rng n) in
  for j = 0 to n - 1 do
    if Rng.int rng 10 = 0 then begin
      let h = hubs.(Rng.int rng (Array.length hubs)) in
      add h j (signed_mag ());
      add j h (signed_mag ())
    end
  done;
  (* row and column absolute sums for the dominance margin *)
  let rowsum = Array.make n 0.0 and colsum = Array.make n 0.0 in
  List.iter
    (fun (i, j, v) ->
      rowsum.(i) <- rowsum.(i) +. Float.abs v;
      colsum.(j) <- colsum.(j) +. Float.abs v)
    !triples;
  (* planted nearly-dependent node pairs: a strongly-coupled 2x2 block
     [[10,10],[10,10(1+eps)]] contributes ~1/eps to the condition number,
     the way memplus's weakly-grounded node clusters do *)
  let planted = Hashtbl.create 8 in
  for _ = 1 to planted_pairs do
    let i = Rng.int rng (n - 1) in
    let k = i + 1 in
    if not (Hashtbl.mem planted i || Hashtbl.mem planted k) then begin
      Hashtbl.replace planted i ();
      Hashtbl.replace planted k ();
      triples := (i, i, 10.0) :: (i, k, 10.0) :: (k, i, 10.0)
                 :: (k, k, 10.0 *. (1.0 +. planted_eps)) :: !triples
    end
  done;
  (* a small fraction of barely-dominant rows raises the condition number
     toward memplus's (weak circuit nodes) without endangering stability *)
  for j = 0 to n - 1 do
   if not (Hashtbl.mem planted j) then begin
    let weak = Rng.uniform rng < weak_fraction in
    let d =
      if weak then weak_margin *. Float.max rowsum.(j) colsum.(j)
      else dominance_base +. (dominance *. Float.max rowsum.(j) colsum.(j))
    in
    triples := (j, j, d) :: !triples
   end
  done;
  Sparse_csc.of_entries n !triples
