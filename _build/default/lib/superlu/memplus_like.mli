(** Synthetic stand-in for the Matrix Market "memplus" matrix (paper §3.3).

    The real memplus is a 17758-row unsymmetric memory-circuit matrix with
    a dominant diagonal, clustered off-diagonal couplings, and entry
    magnitudes spanning several orders of magnitude. This generator
    reproduces those structural statistics at a configurable (scaled-down)
    size: per column a small random number of off-diagonal entries, values
    [±10^U(-3,0)], plus long-range "bus" couplings, and a diagonal that
    keeps the matrix comfortably row/column dominant so the solver's
    no-pivot factorization is stable (see DESIGN.md substitutions). *)

val generate :
  ?dominance:float ->
  ?dominance_base:float ->
  ?weak_fraction:float ->
  ?weak_margin:float ->
  ?planted_pairs:int ->
  ?planted_eps:float ->
  seed:int ->
  n:int ->
  unit ->
  Sparse_csc.t
(** [dominance] (default 1.02) scales the max row/column off-diagonal sum
    into the diagonal; values close to 1 weaken dominance and raise the
    condition number (the knob used to match memplus's error profile).
    [dominance_base] (default 0.001) is the additive floor. *)
