(** The sparse LU linear solver under analysis (the SuperLU stand-in of
    paper §3.3).

    The factorization is left-looking over a host-computed no-pivot fill
    pattern (symbolic Gilbert–Peierls reachability); the matrices from
    {!Memplus_like} are strongly diagonally dominant, which makes the
    pivot-free factorization backward stable — the substitution for
    SuperLU's partial pivoting is documented in DESIGN.md. The numeric
    factorization and both triangular solves run {e inside the binary}
    (the IR program), so the precision search can reconfigure every
    floating-point instruction of the solver.

    The solve target is [A x = b] with [b = A·1], and the reported error
    metric is [‖x − 1‖∞] (relative), mirroring the error metric the paper
    sweeps thresholds against. *)

type symbolic = {
  up : int array;  (** U column pointers, length n+1 *)
  ui : int array;  (** U row indices (k < j), ascending per column *)
  lp : int array;  (** L column pointers, length n+1 *)
  li : int array;  (** L row indices (i > j), ascending per column *)
}

val symbolic : Sparse_csc.t -> symbolic
(** No-pivot fill pattern via per-column reachability. *)

type t = {
  a : Sparse_csc.t;
  sym : symbolic;
  program : Ir.program;
  setup : Vm.t -> unit;
  output : Vm.t -> float array;
  xtrue : float array;
  b : float array;
}

val create :
  ?dominance:float ->
  ?dominance_base:float ->
  ?weak_fraction:float ->
  ?weak_margin:float ->
  ?planted_pairs:int ->
  ?planted_eps:float ->
  ?seed:int ->
  n:int ->
  unit ->
  t
(** Generate a memplus-like system and build the solver binary for it. *)

val error : t -> float array -> float
(** Relative infinity-norm solution error (the solver's reported metric). *)

val solve_native : t -> float array * Vm.t
val solve_converted : t -> float array * Vm.t
(** Manually-converted all-single build (plain single semantics). *)

val host_solve : t -> float array
(** Host-language double reference, op-for-op identical to the binary
    (including the row equilibration pass). *)

val host_equilibrate : Sparse_csc.t -> float array -> float array * float array
(** [(scaled values, scaled rhs)] — the row-scaling pass on its own. *)

val host_factor :
  ?values:float array -> Sparse_csc.t -> symbolic -> float array * float array * float array
(** [(ux, lx, d)] numeric factors over the symbolic pattern. *)

val host_trisolve :
  symbolic -> float array * float array * float array -> float array -> float array

val target : t -> threshold:float -> Bfs.Target.t
(** Search target accepting configurations whose reported error is within
    [threshold] — the paper's driver-script verification. *)
