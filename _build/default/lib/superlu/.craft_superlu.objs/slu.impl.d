lib/superlu/slu.ml: Array Bfs Builder Float Ir List Memplus_like Rng Sparse_csc Stats To_single Vm
