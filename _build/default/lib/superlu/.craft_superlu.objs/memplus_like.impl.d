lib/superlu/memplus_like.ml: Array Float Hashtbl List Rng Sparse_csc
