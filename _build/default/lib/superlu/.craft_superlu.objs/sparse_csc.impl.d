lib/superlu/sparse_csc.ml: Array Hashtbl List
