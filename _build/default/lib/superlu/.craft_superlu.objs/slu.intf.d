lib/superlu/slu.mli: Bfs Ir Sparse_csc Vm
