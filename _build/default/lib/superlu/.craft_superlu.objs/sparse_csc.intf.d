lib/superlu/sparse_csc.mli:
