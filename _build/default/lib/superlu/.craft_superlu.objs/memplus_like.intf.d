lib/superlu/memplus_like.mli: Sparse_csc
