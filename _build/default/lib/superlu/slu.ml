type symbolic = { up : int array; ui : int array; lp : int array; li : int array }

let symbolic (a : Sparse_csc.t) =
  let n = a.n in
  (* L column structures built so far (row indices > column, ascending) *)
  let lcols = Array.make n [||] in
  let up = Array.make (n + 1) 0 and lp = Array.make (n + 1) 0 in
  let ui = ref [] and li = ref [] in
  let nu = ref 0 and nl = ref 0 in
  let seen = Array.make n (-1) in
  for j = 0 to n - 1 do
    (* reachability of A(:,j) through the columns of L *)
    let reach = ref [] in
    let rec visit i =
      if seen.(i) <> j then begin
        seen.(i) <- j;
        reach := i :: !reach;
        if i < j then Array.iter visit lcols.(i)
      end
    in
    for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      visit a.rowind.(k)
    done;
    visit j;
    let rows = List.sort compare !reach in
    let us = List.filter (fun i -> i < j) rows in
    let ls = List.filter (fun i -> i > j) rows in
    List.iter
      (fun i ->
        ui := i :: !ui;
        incr nu)
      us;
    List.iter
      (fun i ->
        li := i :: !li;
        incr nl)
      ls;
    up.(j + 1) <- !nu;
    lp.(j + 1) <- !nl;
    lcols.(j) <- Array.of_list ls
  done;
  {
    up;
    ui = Array.of_list (List.rev !ui);
    lp;
    li = Array.of_list (List.rev !li);
  }

(* ---------- host numeric reference (op-for-op identical to the IR) ---------- *)

(* Row equilibration (as in SuperLU's driver): scale each row of A and b by
   its largest absolute entry. Destructive on copies; returns (values, b). *)
let host_equilibrate (a : Sparse_csc.t) b =
  let n = a.n in
  let ax = Array.copy a.values and b = Array.copy b in
  let rmax = Array.make n 0.0 in
  for j = 0 to n - 1 do
    for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      let v = Float.abs ax.(k) in
      rmax.(a.rowind.(k)) <- Float.max rmax.(a.rowind.(k)) v
    done
  done;
  for j = 0 to n - 1 do
    for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      ax.(k) <- ax.(k) /. rmax.(a.rowind.(k))
    done
  done;
  for i = 0 to n - 1 do
    b.(i) <- b.(i) /. rmax.(i)
  done;
  (ax, b)

let host_factor ?values (a : Sparse_csc.t) (s : symbolic) =
  let vals = match values with Some v -> v | None -> a.values in
  let n = a.n in
  let ux = Array.make (max 1 (Array.length s.ui)) 0.0 in
  let lx = Array.make (max 1 (Array.length s.li)) 0.0 in
  let d = Array.make n 0.0 in
  let w = Array.make n 0.0 in
  for j = 0 to n - 1 do
    for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      w.(a.rowind.(k)) <- vals.(k)
    done;
    for p = s.up.(j) to s.up.(j + 1) - 1 do
      let k = s.ui.(p) in
      let ukj = w.(k) in
      ux.(p) <- ukj;
      for q = s.lp.(k) to s.lp.(k + 1) - 1 do
        let i = s.li.(q) in
        w.(i) <- w.(i) -. (lx.(q) *. ukj)
      done
    done;
    let dj = w.(j) in
    d.(j) <- dj;
    let inv = 1.0 /. dj in
    for q = s.lp.(j) to s.lp.(j + 1) - 1 do
      lx.(q) <- w.(s.li.(q)) *. inv
    done;
    (* clear the work vector *)
    for p = s.up.(j) to s.up.(j + 1) - 1 do
      w.(s.ui.(p)) <- 0.0
    done;
    for q = s.lp.(j) to s.lp.(j + 1) - 1 do
      w.(s.li.(q)) <- 0.0
    done;
    w.(j) <- 0.0
  done;
  (ux, lx, d)

let host_trisolve (s : symbolic) (ux, lx, d) b =
  let n = Array.length d in
  let y = Array.copy b in
  for k = 0 to n - 1 do
    let yk = y.(k) in
    for q = s.lp.(k) to s.lp.(k + 1) - 1 do
      y.(s.li.(q)) <- y.(s.li.(q)) -. (lx.(q) *. yk)
    done
  done;
  let x = Array.make n 0.0 in
  for j = n - 1 downto 0 do
    let xj = y.(j) /. d.(j) in
    x.(j) <- xj;
    for p = s.up.(j) to s.up.(j + 1) - 1 do
      y.(s.ui.(p)) <- y.(s.ui.(p)) -. (ux.(p) *. xj)
    done
  done;
  x

(* ---------- the IR binary ---------- *)

let build (a : Sparse_csc.t) (s : symbolic) =
  let n = a.n in
  let nnz = Sparse_csc.nnz a in
  let nu = Array.length s.ui and nl = Array.length s.li in
  let t = Builder.create () in
  (* int heap: CSC of A and the L/U patterns *)
  let ap = Builder.alloc_i t (n + 1) in
  let ai = Builder.alloc_i t (max 1 nnz) in
  let upb = Builder.alloc_i t (n + 1) in
  let uib = Builder.alloc_i t (max 1 nu) in
  let lpb = Builder.alloc_i t (n + 1) in
  let lib = Builder.alloc_i t (max 1 nl) in
  (* float heap: A values, factors, vectors *)
  let axb = Builder.alloc_f t (max 1 nnz) in
  let uxb = Builder.alloc_f t (max 1 nu) in
  let lxb = Builder.alloc_f t (max 1 nl) in
  let dbv = Builder.alloc_f t n in
  let wb = Builder.alloc_f t n in
  let bb = Builder.alloc_f t n in
  let yb = Builder.alloc_f t n in
  let xb = Builder.alloc_f t n in
  let rmaxb = Builder.alloc_f t n in
  let diagb = Builder.alloc_f t 4 in
  let open Builder in
  (* SuperLU-style row equilibration: A and b scaled by per-row max *)
  let equilibrate =
    func t ~module_:"superlu" "equilibrate" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let zero = fconst b 0.0 in
        for_range b 0 n (fun i -> storef b (idx rmaxb i) zero);
        for_range b 0 n (fun j ->
            let k0 = loadi b (idx ap j) in
            let k1 = loadi b (idx (ap + 1) j) in
            for_ b k0 k1 (fun k ->
                let row = loadi b (idx ai k) in
                let v = fabs b (loadf b (idx axb k)) in
                let cur = loadf b (dyn_idx (iconst b rmaxb) row) in
                storef b (dyn_idx (iconst b rmaxb) row) (fmax b cur v)));
        for_range b 0 n (fun j ->
            let k0 = loadi b (idx ap j) in
            let k1 = loadi b (idx (ap + 1) j) in
            for_ b k0 k1 (fun k ->
                let row = loadi b (idx ai k) in
                let v = loadf b (idx axb k) in
                let rm = loadf b (dyn_idx (iconst b rmaxb) row) in
                storef b (idx axb k) (fdiv b v rm)));
        for_range b 0 n (fun i ->
            let v = loadf b (idx bb i) in
            let rm = loadf b (idx rmaxb i) in
            storef b (idx bb i) (fdiv b v rm)))
  in
  (* post-solve diagnostics: scaled-b norm, pivot growth, extremal pivots *)
  let diagnostics =
    func t ~module_:"superlu" "diagnostics" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let bnorm = freshf b in
        setf b bnorm (fconst b 0.0);
        for_range b 0 n (fun i ->
            setf b bnorm (fadd b bnorm (fabs b (loadf b (idx bb i)))));
        let growth = freshf b in
        setf b growth (fconst b 0.0);
        for_range b 0 (max 1 nl) (fun q ->
            setf b growth (fmax b growth (fabs b (loadf b (idx lxb q)))));
        let dmin = freshf b and dmax = freshf b in
        setf b dmin (fconst b infinity);
        setf b dmax (fconst b 0.0);
        for_range b 0 n (fun j ->
            let v = fabs b (loadf b (idx dbv j)) in
            setf b dmin (fmin b dmin v);
            setf b dmax (fmax b dmax v));
        storef b (at diagb) bnorm;
        storef b (at (diagb + 1)) growth;
        storef b (at (diagb + 2)) dmin;
        storef b (at (diagb + 3)) dmax)
  in
  let factor =
    func t ~module_:"superlu" "factor" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let zero = fconst b 0.0 in
        let one = fconst b 1.0 in
        for_range b 0 n (fun j ->
            (* scatter A(:,j) *)
            let k0 = loadi b (idx ap j) in
            let k1 = loadi b (idx (ap + 1) j) in
            for_ b k0 k1 (fun k ->
                let row = loadi b (idx ai k) in
                storef b (dyn_idx (iconst b wb) row) (loadf b (idx axb k)));
            (* left-looking updates *)
            let p0 = loadi b (idx upb j) in
            let p1 = loadi b (idx (upb + 1) j) in
            for_ b p0 p1 (fun p ->
                let k = loadi b (idx uib p) in
                let ukj = loadf b (dyn_idx (iconst b wb) k) in
                storef b (idx uxb p) ukj;
                let q0 = loadi b (dyn_idx (iconst b lpb) k) in
                let q1 = loadi b (dyn_idx (iconst b (lpb + 1)) k) in
                for_ b q0 q1 (fun q ->
                    let i = loadi b (idx lib q) in
                    let wi = loadf b (dyn_idx (iconst b wb) i) in
                    let lq = loadf b (idx lxb q) in
                    storef b (dyn_idx (iconst b wb) i) (fsub b wi (fmul b lq ukj))));
            (* pivot and L column *)
            let dj = loadf b (dyn_idx (iconst b wb) j) in
            storef b (dyn_idx (iconst b dbv) j) dj;
            let inv = fdiv b one dj in
            let q0 = loadi b (idx lpb j) in
            let q1 = loadi b (idx (lpb + 1) j) in
            for_ b q0 q1 (fun q ->
                let i = loadi b (idx lib q) in
                let wi = loadf b (dyn_idx (iconst b wb) i) in
                storef b (idx lxb q) (fmul b wi inv));
            (* clear the work vector *)
            for_ b p0 p1 (fun p ->
                let k = loadi b (idx uib p) in
                storef b (dyn_idx (iconst b wb) k) zero);
            for_ b q0 q1 (fun q ->
                let i = loadi b (idx lib q) in
                storef b (dyn_idx (iconst b wb) i) zero);
            storef b (dyn_idx (iconst b wb) j) zero))
  in
  let fsolve =
    func t ~module_:"superlu" "fsolve" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for_range b 0 n (fun k -> storef b (idx yb k) (loadf b (idx bb k)));
        for_range b 0 n (fun k ->
            let yk = loadf b (idx yb k) in
            let q0 = loadi b (idx lpb k) in
            let q1 = loadi b (idx (lpb + 1) k) in
            for_ b q0 q1 (fun q ->
                let i = loadi b (idx lib q) in
                let yi = loadf b (dyn_idx (iconst b yb) i) in
                let lq = loadf b (idx lxb q) in
                storef b (dyn_idx (iconst b yb) i) (fsub b yi (fmul b lq yk)))))
  in
  let bsolve =
    func t ~module_:"superlu" "bsolve" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for_down b (iconst b n) (iconst b 0) (fun j ->
            let yj = loadf b (dyn_idx (iconst b yb) j) in
            let dj = loadf b (dyn_idx (iconst b dbv) j) in
            let xj = fdiv b yj dj in
            storef b (dyn_idx (iconst b xb) j) xj;
            let p0 = loadi b (dyn_idx (iconst b upb) j) in
            let p1 = loadi b (dyn_idx (iconst b (upb + 1)) j) in
            for_ b p0 p1 (fun p ->
                let k = loadi b (idx uib p) in
                let yk = loadf b (dyn_idx (iconst b yb) k) in
                let up_ = loadf b (idx uxb p) in
                storef b (dyn_idx (iconst b yb) k) (fsub b yk (fmul b up_ xj)))))
  in
  let main =
    func t ~module_:"superlu" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let _ = call b equilibrate ~fargs:[] ~iargs:[] in
        let _ = call b factor ~fargs:[] ~iargs:[] in
        let _ = call b fsolve ~fargs:[] ~iargs:[] in
        let _ = call b bsolve ~fargs:[] ~iargs:[] in
        let _ = call b diagnostics ~fargs:[] ~iargs:[] in
        ())
  in
  let prog = Builder.program t ~main in
  (prog, (ap, ai, upb, uib, lpb, lib), (axb, bb, xb))

type t = {
  a : Sparse_csc.t;
  sym : symbolic;
  program : Ir.program;
  setup : Vm.t -> unit;
  output : Vm.t -> float array;
  xtrue : float array;
  b : float array;
}

let create ?dominance ?dominance_base ?weak_fraction ?weak_margin ?(planted_pairs = 6)
    ?(planted_eps = 1e-3) ?(seed = 7777) ~n () =
  let a =
    Memplus_like.generate ?dominance ?dominance_base ?weak_fraction ?weak_margin ~planted_pairs
      ~planted_eps ~seed ~n ()
  in
  let sym = symbolic a in
  let program, (ap, ai, upb, uib, lpb, lib), (axb, bb, xb) = build a sym in
  (* a non-trivial solution: exactly-representable-in-single values would
     let the final rounding "repair" the answer (xtrue = all ones makes the
     error metric collapse to zero under single rounding) *)
  let xrng = Rng.create (seed + 1) in
  let xtrue = Array.init n (fun _ -> 0.5 +. Rng.uniform xrng) in
  let b = Sparse_csc.mul_vec a xtrue in
  let setup vm =
    Vm.write_i vm ap a.colptr;
    Vm.write_i vm ai a.rowind;
    Vm.write_i vm upb sym.up;
    Vm.write_i vm uib sym.ui;
    Vm.write_i vm lpb sym.lp;
    Vm.write_i vm lib sym.li;
    Vm.write_f vm axb a.values;
    Vm.write_f vm bb b
  in
  let output vm = Vm.read_f vm xb n in
  { a; sym; program; setup; output; xtrue; b }

let error t x = Stats.rel_err_inf x t.xtrue

let solve_native t =
  let vm = Vm.create t.program in
  t.setup vm;
  Vm.run vm;
  (t.output vm, vm)

let solve_converted t =
  let conv = To_single.convert t.program in
  let vm = Vm.create ~checked:true ~smode:Vm.Plain conv in
  t.setup vm;
  Vm.run vm;
  (t.output vm, vm)

let host_solve t =
  let ax, b = host_equilibrate t.a t.b in
  let fac = host_factor ~values:ax t.a t.sym in
  host_trisolve t.sym fac b

let target t ~threshold =
  Bfs.Target.make t.program ~setup:t.setup ~output:t.output ~verify:(fun x ->
      error t x <= threshold)
