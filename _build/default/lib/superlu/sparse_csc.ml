type t = { n : int; colptr : int array; rowind : int array; values : float array }

let nnz a = a.colptr.(a.n)

let mul_vec a x =
  let y = Array.make a.n 0.0 in
  for j = 0 to a.n - 1 do
    let xj = x.(j) in
    for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      y.(a.rowind.(k)) <- y.(a.rowind.(k)) +. (a.values.(k) *. xj)
    done
  done;
  y

let entry a i j =
  let rec go k = if k >= a.colptr.(j + 1) then 0.0 else if a.rowind.(k) = i then a.values.(k) else go (k + 1) in
  go a.colptr.(j)

let of_entries n triples =
  let cols = Array.make n [] in
  List.iter (fun (i, j, v) -> cols.(j) <- (i, v) :: cols.(j)) triples;
  let colptr = Array.make (n + 1) 0 in
  let ri = ref [] and vs = ref [] and count = ref 0 in
  for j = 0 to n - 1 do
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (i, v) ->
        let cur = match Hashtbl.find_opt tbl i with Some x -> x | None -> 0.0 in
        Hashtbl.replace tbl i (cur +. v))
      cols.(j);
    Hashtbl.fold (fun i v acc -> (i, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.iter (fun (i, v) ->
           ri := i :: !ri;
           vs := v :: !vs;
           incr count);
    colptr.(j + 1) <- !count
  done;
  {
    n;
    colptr;
    rowind = Array.of_list (List.rev !ri);
    values = Array.of_list (List.rev !vs);
  }
