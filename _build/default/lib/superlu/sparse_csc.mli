(** Compressed-sparse-column matrices (the storage format of the sparse LU
    solver, as in SuperLU). *)

type t = {
  n : int;
  colptr : int array;  (** length n+1 *)
  rowind : int array;  (** row indices, ascending within each column *)
  values : float array;
}

val nnz : t -> int

val mul_vec : t -> float array -> float array
(** [mul_vec a x] is [A x]. *)

val entry : t -> int -> int -> float
(** [entry a i j]; 0 when absent. *)

val of_entries : int -> (int * int * float) list -> t
(** [(row, col, value)] triples; duplicates are summed. *)
