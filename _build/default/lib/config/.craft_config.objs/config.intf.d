lib/config/config.mli: Ir Static
