lib/config/tree_view.ml: Array Buffer Config Ir List Printf Static
