lib/config/config.ml: Array Buffer Format Hashtbl Int Ir List Map Printf Seq Static String
