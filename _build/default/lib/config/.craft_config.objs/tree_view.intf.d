lib/config/tree_view.mli: Config Ir
