(** Terminal rendering of a configuration over the program structure tree —
    the reproduction's stand-in for the paper's GUI editor (Fig. 4).

    Each aggregate line shows its explicit flag (if any) and a summary of
    how many contained candidate instructions are effectively single /
    double / ignored; instruction leaves show their flag, address, and
    disassembly, plus dynamic execution counts when a profile is given
    (the GUI's execution-count view). *)

val render : ?counts:int array -> Ir.program -> Config.t -> string
(** [counts] is an address-indexed execution-count array, as produced by a
    {!Vm.t} profiling run. *)
