lib/fpbits/ieee.mli: Format
