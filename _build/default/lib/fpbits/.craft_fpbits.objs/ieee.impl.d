lib/fpbits/ieee.ml: Format Int32 Int64
