lib/fpbits/f32.ml: Float Int32 Int64 Stdlib
