lib/fpbits/replaced.ml: F32 Format Int32 Int64
