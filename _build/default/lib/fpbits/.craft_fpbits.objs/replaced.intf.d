lib/fpbits/replaced.mli: Format
