lib/fpbits/f32.mli:
