let flag = 0x7FF4DEADL
let flag_shifted = 0x7FF4DEAD00000000L

let is_replaced_bits bits = Int64.equal (Int64.shift_right_logical bits 32) flag

let is_replaced x = is_replaced_bits (Int64.bits_of_float x)

let pack (b32 : int32) : float =
  let low = Int64.logand (Int64.of_int32 b32) 0xFFFF_FFFFL in
  Int64.float_of_bits (Int64.logor flag_shifted low)

let downcast x = pack (Int32.bits_of_float x)
let encode x = downcast x

let extract_bits x = Int64.to_int32 (Int64.bits_of_float x)

let upcast x =
  if not (is_replaced x) then invalid_arg "Replaced.upcast: value is not replaced";
  Int32.float_of_bits (extract_bits x)

let coerce v = if is_replaced v then Int32.float_of_bits (extract_bits v) else v

let coerce32 v =
  if is_replaced v then Int32.float_of_bits (extract_bits v) else F32.round v

let pp ppf x =
  let bits = Int64.bits_of_float x in
  if is_replaced x then
    Format.fprintf ppf "0x%016Lx (replaced: %h)" bits (Int32.float_of_bits (extract_bits x))
  else Format.fprintf ppf "0x%016Lx (%h)" bits x
