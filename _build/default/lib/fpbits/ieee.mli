(** IEEE-754 field-level views of binary32 and binary64 (paper Fig. 1).

    These are used by the documentation bench ([fig1_ieee_formats]), by the
    replaced-value encoding, and in tests that check the emulated single
    precision against first principles. *)

type fields = {
  sign : int;  (** 0 or 1 *)
  exponent : int;  (** raw biased exponent field *)
  significand : int64;  (** raw trailing-significand field *)
}

type class_ = Zero | Subnormal | Normal | Infinite | Nan

val fields64 : float -> fields
(** Decode a double into its 1/11/52 fields. *)

val of_fields64 : fields -> float
(** Inverse of {!fields64}. Fields are masked to their widths. *)

val fields32 : int32 -> fields
(** Decode binary32 bits into 1/8/23 fields. *)

val of_fields32 : fields -> int32

val classify64 : float -> class_
val classify32 : int32 -> class_

val exponent_bits64 : int
val significand_bits64 : int
val exponent_bits32 : int
val significand_bits32 : int
val bias64 : int
val bias32 : int

val pp_class : Format.formatter -> class_ -> unit

val describe64 : float -> string
(** Human-readable field breakdown, e.g. for the Fig.-1 table. *)

val describe32 : int32 -> string
