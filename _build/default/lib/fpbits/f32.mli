(** Emulated IEEE binary32 ("single precision") arithmetic.

    OCaml has no native 32-bit scalar float, so single precision is emulated
    on doubles: a binary32 value is any double that survives the round-trip
    through [Int32.bits_of_float] / [Int32.float_of_bits] unchanged.

    For [+ - * / sqrt] on binary32 operands, computing in binary64 and then
    rounding to binary32 is bit-identical to native binary32 arithmetic: the
    classical double-rounding theorem requires p2 >= 2*p1 + 2, and 53 >=
    2*24 + 2 holds. Transcendentals use the host libm rounded to single,
    which matches real hardware-libm behaviour to within the usual libm
    tolerance. *)

val round : float -> float
(** Round a double to the nearest binary32, as a double (cvtsd2ss;cvtss2sd). *)

val is_exact : float -> bool
(** [is_exact x] is true iff [x] is exactly representable in binary32
    (including nan/inf/signed zero). *)

val bits : float -> int32
(** Binary32 bit pattern of [round x]. *)

val of_bits : int32 -> float
(** Widen binary32 bits to double (exact). *)

val add : float -> float -> float
val sub : float -> float -> float
val mul : float -> float -> float
val div : float -> float -> float
val sqrt : float -> float
val neg : float -> float
val abs : float -> float
val min : float -> float -> float
val max : float -> float -> float

val sin : float -> float
val cos : float -> float
val tan : float -> float
val exp : float -> float
val log : float -> float
val atan : float -> float
val pow : float -> float -> float

val epsilon : float
(** Machine epsilon of binary32, [2^-23]. *)

val max_value : float
(** Largest finite binary32, as a double. *)

val min_normal : float
(** Smallest positive normal binary32. *)
