(** The in-place replacement encoding (paper Fig. 5).

    A "replaced" double is a 64-bit pattern whose high 32 bits are the
    sentinel [0x7FF4DEAD] and whose low 32 bits are the binary32 bits of the
    value. [0x7FF4] makes the pattern a NaN, so a replaced value consumed by
    an un-instrumented operation propagates NaN instead of silently producing
    a mis-rounded result; [0xDEAD] is easy to spot in a hex dump.

    Replaced values travel through registers and memory as ordinary 64-bit
    payloads; only the instrumented snippets interpret them. *)

val flag : int64
(** [0x7FF4DEAD]. *)

val flag_shifted : int64
(** [0x7FF4DEAD00000000]. *)

val is_replaced : float -> bool
(** True iff the high 32 bits of the value's pattern equal {!flag}. *)

val is_replaced_bits : int64 -> bool

val encode : float -> float
(** [encode x32] packs a value already representable in binary32 into the
    replaced encoding. The argument is rounded to binary32 first, so
    [encode x = downcast x] for all [x]; the distinct name documents intent. *)

val downcast : float -> float
(** cvtsd2ss + flag insertion: round the double to binary32 and store it in
    the replaced encoding (Fig. 6 template's conversion path). *)

val upcast : float -> float
(** Extract the binary32 value of a replaced double and widen it (exact).
    Raises [Invalid_argument] if the value is not replaced. *)

val extract_bits : float -> int32
(** Low 32 bits of the pattern (the binary32 bits), without checking the
    flag. *)

val coerce : float -> float
(** [coerce v] is [upcast v] when [v] is replaced and [v] otherwise — the
    operand-check prologue of a double-precision snippet. *)

val coerce32 : float -> float
(** [coerce32 v] is the binary32 value of [v]: extracted when replaced,
    rounded (with downcast semantics) otherwise — the operand-check prologue
    of a single-precision snippet. *)

val pp : Format.formatter -> float -> unit
(** Hex-dump style printer: shows the 64-bit pattern and, for replaced
    values, the decoded single-precision value. *)
