type fields = { sign : int; exponent : int; significand : int64 }

type class_ = Zero | Subnormal | Normal | Infinite | Nan

let exponent_bits64 = 11
let significand_bits64 = 52
let exponent_bits32 = 8
let significand_bits32 = 23
let bias64 = 1023
let bias32 = 127

let fields64 x =
  let bits = Int64.bits_of_float x in
  {
    sign = Int64.to_int (Int64.shift_right_logical bits 63);
    exponent = Int64.to_int (Int64.logand (Int64.shift_right_logical bits 52) 0x7FFL);
    significand = Int64.logand bits 0xF_FFFF_FFFF_FFFFL;
  }

let of_fields64 { sign; exponent; significand } =
  let bits =
    Int64.logor
      (Int64.shift_left (Int64.of_int (sign land 1)) 63)
      (Int64.logor
         (Int64.shift_left (Int64.of_int (exponent land 0x7FF)) 52)
         (Int64.logand significand 0xF_FFFF_FFFF_FFFFL))
  in
  Int64.float_of_bits bits

let fields32 bits =
  {
    sign = Int32.to_int (Int32.shift_right_logical bits 31);
    exponent = Int32.to_int (Int32.logand (Int32.shift_right_logical bits 23) 0xFFl);
    significand = Int64.of_int32 (Int32.logand bits 0x7F_FFFFl);
  }

let of_fields32 { sign; exponent; significand } =
  Int32.logor
    (Int32.shift_left (Int32.of_int (sign land 1)) 31)
    (Int32.logor
       (Int32.shift_left (Int32.of_int (exponent land 0xFF)) 23)
       (Int32.logand (Int64.to_int32 significand) 0x7F_FFFFl))

let classify_fields ~max_exp { exponent; significand; _ } =
  if exponent = 0 then if significand = 0L then Zero else Subnormal
  else if exponent = max_exp then if significand = 0L then Infinite else Nan
  else Normal

let classify64 x = classify_fields ~max_exp:0x7FF (fields64 x)
let classify32 bits = classify_fields ~max_exp:0xFF (fields32 bits)

let pp_class ppf c =
  Format.pp_print_string ppf
    (match c with
    | Zero -> "zero"
    | Subnormal -> "subnormal"
    | Normal -> "normal"
    | Infinite -> "infinite"
    | Nan -> "nan")

let describe64 x =
  let f = fields64 x in
  Format.asprintf "binary64 sign=%d exp=%d (unbiased %d) frac=0x%013Lx [%a]" f.sign
    f.exponent (f.exponent - bias64) f.significand pp_class (classify64 x)

let describe32 bits =
  let f = fields32 bits in
  Format.asprintf "binary32 sign=%d exp=%d (unbiased %d) frac=0x%06Lx [%a]" f.sign
    f.exponent (f.exponent - bias32) f.significand pp_class (classify32 bits)
