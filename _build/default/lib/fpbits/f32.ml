let round (x : float) : float = Int32.float_of_bits (Int32.bits_of_float x)

let is_exact x =
  let r = round x in
  Int64.equal (Int64.bits_of_float r) (Int64.bits_of_float x) || (Float.is_nan r && Float.is_nan x)

let bits x = Int32.bits_of_float x
let of_bits b = Int32.float_of_bits b

(* Operands are assumed already representable in binary32 (the instrumented
   VM guarantees this); the double op + single rounding is then exact. *)
let add a b = round (a +. b)
let sub a b = round (a -. b)
let mul a b = round (a *. b)
let div a b = round (a /. b)
let sqrt a = round (Stdlib.sqrt a)
let neg a = round (-.a)
let abs a = round (Float.abs a)
let min a b = round (Float.min a b)
let max a b = round (Float.max a b)
let sin a = round (Stdlib.sin a)
let cos a = round (Stdlib.cos a)
let tan a = round (Stdlib.tan a)
let exp a = round (Stdlib.exp a)
let log a = round (Stdlib.log a)
let atan a = round (Stdlib.atan a)
let pow a b = round (a ** b)

let epsilon = 0x1.0p-23
let max_value = of_bits 0x7F7F_FFFFl
let min_normal = 0x1.0p-126
