lib/instrument/dataflow.ml: Array Config Hashtbl Ir List Queue Static
