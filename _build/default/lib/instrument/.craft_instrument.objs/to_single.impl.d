lib/instrument/to_single.ml: Array Config Ir Patcher Static
