lib/instrument/cancellation.ml: Array Buffer Ir List Printf Static Vm
