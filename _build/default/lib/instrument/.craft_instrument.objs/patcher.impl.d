lib/instrument/patcher.ml: Array Builder Config Dataflow Format Ir List Printf Static
