lib/instrument/patcher.mli: Config Ir
