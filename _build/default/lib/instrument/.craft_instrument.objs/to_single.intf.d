lib/instrument/to_single.mli: Config Ir
