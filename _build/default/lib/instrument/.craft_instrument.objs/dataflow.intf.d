lib/instrument/dataflow.mli: Config Ir
