lib/instrument/cancellation.mli: Ir Vm
