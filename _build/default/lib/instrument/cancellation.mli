(** Dynamic cancellation detection (the paper's §4.4 prior work, Lam et
    al., WHIST'11 — the analysis whose heavyweight successors the paper
    compares overheads against).

    [instrument] rewrites a binary so that every double-precision addition
    and subtraction also measures how many bits of significance cancel:
    the biased exponents of both operands and of the result are extracted
    (the [Fexpo] analysis op, a movq+shr+and sequence on real hardware)
    and the exponent drop [max(e_a, e_b) - e_r] is accumulated branch-free
    into per-instruction counters in the integer heap. A cancellation
    event is recorded when the drop reaches the threshold (default 10
    bits, as in the original tool).

    The instrumented binary computes exactly the same floating-point
    results as the original (the detector only observes); tests assert
    bit-for-bit equality. *)

type site = {
  addr : int;  (** original instruction address *)
  disasm : string;
  executions : int;
  cancellations : int;  (** executions with exponent drop >= threshold *)
  total_bits : int;  (** cancelled bits summed over cancellations *)
  max_bits : int;  (** worst single cancellation *)
}

type layout
(** Where the counters live in the instrumented program's integer heap. *)

val instrument : ?threshold_bits:int -> Ir.program -> Ir.program * layout

val read_sites : layout -> Vm.t -> site list
(** Extract the per-instruction statistics after a run of the instrumented
    binary. Sites are returned in program order. *)

val report : ?min_cancellations:int -> layout -> Vm.t -> string
(** Human-readable aggregate report (instructions sorted by cancelled
    bits), like the original tool's per-instruction output. *)
