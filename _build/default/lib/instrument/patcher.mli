(** Binary modification (paper §2.3–2.4).

    [patch] turns an original (all-double) program plus a precision
    configuration into an instrumented program in which {e every}
    floating-point candidate instruction — including the ones kept in
    double precision — is replaced by a snippet:

    - for each float input operand, a flag test and a conditional
      conversion (downcast for [Single] targets, upcast for [Double]
      targets), emitted as real control flow: the containing basic block
      is split and the conversion sits in its own block (paper Fig. 7);
    - the instruction itself, with its opcode rewritten to the configured
      precision (addsd → addss for [Single]);
    - [Single] results are stored in the replaced encoding (the flag fix
      of the Fig. 6 template).

    Instructions flagged [Ignore] are left untouched; if a replaced value
    ever reaches them the checked VM traps — the paper's "anything missed
    causes a crash".

    Rewritten instructions keep their original addresses (so dynamic
    replacement percentages can be measured against the original
    program); snippet instructions and blocks get fresh addresses and
    labels. *)

val patch : ?dataflow:bool -> Ir.program -> Config.t -> Ir.program
(** The result is validated. Run it with [Vm.create ~checked:true].

    With [dataflow:true] (default false) the static replaced-value
    reachability analysis of {!Dataflow} runs first and operand checks
    whose outcome is statically known are collapsed: definitely-converted
    operands lose the test-and-branch, definitely-unconverted operands
    lose the whole check — the paper's §2.5 overhead optimization. The
    instrumented semantics is unchanged (enforced by tests: optimized and
    unoptimized patched binaries agree bit-for-bit, and the checked VM
    traps on any analysis unsoundness). *)

val with_prec : Ir.op -> Ir.prec -> Ir.op
(** Opcode rewriting (addsd ↔ addss). Raises [Invalid_argument] on
    non-candidate ops. *)

val snippet_listing : unit -> string
(** The emitted snippet for one [addsd] rewritten to single precision, as
    a disassembly listing — the reproduction's rendering of the paper's
    Fig. 6 template. *)

val patch_stats : Ir.program -> Ir.program -> string
(** [patch_stats original patched] summarizes the transformation: blocks
    before/after (splits), instructions added, candidates rewritten. *)
