(** Whole-program "manual conversion" to single precision.

    The paper validates its instrumentation by manually converting codes to
    [real*4]/[float] and comparing bit-for-bit (§3.1), and obtains its
    speedups (AMG §3.2, SuperLU §3.3) from such converted builds. Here the
    conversion is the transformation a programmer would apply after the
    analysis: every candidate opcode is rewritten to its single-precision
    variant, with no flags or snippets.

    Run converted programs with [Vm.create ~smode:Plain]; price them with
    [Cost.of_run ~fmem_bytes:4.] (a real single build moves 4-byte
    floats). *)

val convert : Ir.program -> Ir.program
(** Rewrite every candidate instruction to its [S] variant. *)

val convert_config : Ir.program -> Config.t -> Ir.program
(** Rewrite only the candidates whose effective flag is [Single] — the
    source-level transformation suggested by a mixed-precision search
    result. Instructions left in double precision are unchanged; note that
    a mixed native build is only numerically meaningful when the
    configuration partitions cleanly (no replaced encodings exist in a
    native build). *)
