(** Static data-flow analysis of replaced-value reachability (the paper's
    §2.5, third future optimization: "static data flow analysis could
    improve overheads by detecting instructions that never encounter
    replaced double-precision numbers under a given configuration, and thus
    would not need to be replaced with a double-precision snippet").

    For a program and a configuration, the analysis computes, at each
    instruction, whether each float register {e may} hold a replaced value
    and whether it {e may} hold a plain double:

    - a [Double]-kept instruction needs an operand check only if the
      operand may be replaced; if it is definitely replaced the check
      collapses to an unconditional upcast;
    - a [Single] instruction needs a check only if the operand may be
      plain; if it is definitely plain the check collapses to an
      unconditional downcast.

    The analysis is a forward fix-point over each function's CFG, made
    interprocedural with per-function summaries (argument states join over
    call sites; return states flow back — register frames are private, so
    calls affect only the explicitly passed registers). The float heap is
    modeled as a single summary cell (any store taints it with the stored
    state), which is sound and precise enough to remove most checks in
    practice. In-place operand conversion is modeled: after a patched
    single instruction its operands are definitely replaced; after a
    patched double instruction they are definitely plain. *)

type state =
  | Bot  (** unreachable / uninitialized *)
  | Plain  (** definitely an ordinary double *)
  | Repl  (** definitely a replaced encoding *)
  | Either

val join : state -> state -> state

type t

val analyze : Ir.program -> Config.t -> t
(** Fix-point analysis of the program as it will behave {e after} patching
    with the given configuration. *)

val operand_state : t -> addr:int -> reg:int -> state
(** State of float register [reg] immediately before the candidate
    instruction at [addr] executes. Registers never queried at [addr]
    report [Either] (conservative). *)

val checks_removable : t -> Ir.program -> Config.t -> int * int
(** [(removable, total)] operand checks under the configuration: a check is
    removable when the operand state is definite ([Plain] for a single
    target's downcast-skip is {e not} removable — definite [Plain] means
    the conversion is unconditional, which still saves the test+branch).
    [removable] counts operands whose test+branch disappears entirely
    (definitely-converted or definitely-not), [total] counts all checked
    operands. *)
