type site = {
  addr : int;
  disasm : string;
  executions : int;
  cancellations : int;
  total_bits : int;
  max_bits : int;
}

type layout = { base : int; sites : (int * string) array; threshold : int }

let instrument ?(threshold_bits = 10) (prog : Ir.program) =
  let next_addr = ref (Static.max_addr prog + 1) in
  let fresh_addr () =
    let a = !next_addr in
    incr next_addr;
    a
  in
  let base = prog.Ir.iheap_size in
  let sites = ref [] in
  let n_sites = ref 0 in
  let instr_func (f : Ir.func) : Ir.func =
    (* seven scratch integer registers for the branch-free counter update *)
    let e1 = f.Ir.n_iregs and e2 = f.Ir.n_iregs + 1 and e3 = f.Ir.n_iregs + 2 in
    let t1 = f.Ir.n_iregs + 3 and t2 = f.Ir.n_iregs + 4 in
    let t3 = f.Ir.n_iregs + 5 and t4 = f.Ir.n_iregs + 6 in
    let blocks =
      Array.map
        (fun (b : Ir.block) ->
          let out = ref [] in
          let emit op = out := { Ir.addr = fresh_addr (); op } :: !out in
          Array.iter
            (fun (i : Ir.instr) ->
              match i.Ir.op with
              | Fbin (D, (Add | Sub), dst, a, bb) ->
                  let k = !n_sites in
                  incr n_sites;
                  sites := (i.Ir.addr, Ir.disasm i.Ir.op) :: !sites;
                  let ctr off : Ir.mem =
                    { base = None; index = None; scale = 1; offset = base + (4 * k) + off }
                  in
                  emit (Ir.Fexpo (e1, a));
                  emit (Ir.Fexpo (e2, bb));
                  out := i :: !out;
                  emit (Ir.Fexpo (e3, dst));
                  emit (Ir.Ibin (Imax, t1, e1, e2));
                  emit (Ir.Ibin (Isub, t1, t1, e3));
                  (* drop = max(e_a, e_b) - e_r; c = drop >= threshold *)
                  emit (Ir.Iconst (t2, threshold_bits));
                  emit (Ir.Icmp (Ge, t2, t1, t2));
                  emit (Ir.Iload (t3, ctr 0));
                  emit (Ir.Iconst (t4, 1));
                  emit (Ir.Ibin (Iadd, t3, t3, t4));
                  emit (Ir.Istore (ctr 0, t3));
                  emit (Ir.Iload (t3, ctr 1));
                  emit (Ir.Ibin (Iadd, t3, t3, t2));
                  emit (Ir.Istore (ctr 1, t3));
                  emit (Ir.Ibin (Imul, t4, t1, t2));
                  emit (Ir.Iload (t3, ctr 2));
                  emit (Ir.Ibin (Iadd, t3, t3, t4));
                  emit (Ir.Istore (ctr 2, t3));
                  emit (Ir.Iload (t3, ctr 3));
                  emit (Ir.Ibin (Imax, t3, t3, t4));
                  emit (Ir.Istore (ctr 3, t3))
              | _ -> out := i :: !out)
            b.Ir.instrs;
          { b with Ir.instrs = Array.of_list (List.rev !out) })
        f.Ir.blocks
    in
    { f with Ir.n_iregs = f.Ir.n_iregs + 7; blocks }
  in
  let funcs = Array.map instr_func prog.Ir.funcs in
  let instrumented =
    Ir.validate_exn
      { prog with Ir.funcs; iheap_size = prog.Ir.iheap_size + (4 * max 1 !n_sites) }
  in
  (instrumented, { base; sites = Array.of_list (List.rev !sites); threshold = threshold_bits })

let read_sites layout (vm : Vm.t) =
  Array.to_list
    (Array.mapi
       (fun k (addr, disasm) ->
         let g off = Vm.get_i vm (layout.base + (4 * k) + off) in
         {
           addr;
           disasm;
           executions = g 0;
           cancellations = g 1;
           total_bits = g 2;
           max_bits = g 3;
         })
       layout.sites)

let report ?(min_cancellations = 1) layout vm =
  let sites =
    read_sites layout vm
    |> List.filter (fun s -> s.cancellations >= min_cancellations)
    |> List.sort (fun a b -> compare b.total_bits a.total_bits)
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "cancellation report (threshold %d bits): %d instructions\n"
       layout.threshold (List.length sites));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "  0x%06x %-28s execs %-9d cancels %-8d avg bits %5.1f  max %d\n" s.addr
           s.disasm s.executions s.cancellations
           (if s.cancellations = 0 then 0.0
            else float_of_int s.total_bits /. float_of_int s.cancellations)
           s.max_bits))
    sites;
  Buffer.contents buf
