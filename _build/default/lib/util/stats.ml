let mean a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    acc /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let median a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.median: empty array";
  let b = Array.copy a in
  Array.sort compare b;
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

let min_max a =
  if Array.length a = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0)) a

let norm2 a = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 a)

let norm_inf a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 a

let rel_err_inf x x_ref =
  if Array.length x <> Array.length x_ref then
    invalid_arg "Stats.rel_err_inf: length mismatch";
  let denom = norm_inf x_ref in
  let num = ref 0.0 in
  Array.iteri (fun i xi -> num := Float.max !num (Float.abs (xi -. x_ref.(i)))) x;
  if denom = 0.0 then !num else !num /. denom

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Stats.dot: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let percent part total = if total = 0.0 then 0.0 else 100.0 *. part /. total
