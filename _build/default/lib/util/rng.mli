(** Deterministic, splittable pseudo-random number generator.

    All data sets in the reproduction are generated from seeded instances of
    this generator so that every experiment is reproducible bit-for-bit. The
    core is xoshiro256**, seeded through splitmix64. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. *)

val split : t -> t
(** [split t] returns an independent generator derived from [t]'s current
    state, advancing [t]. *)

val copy : t -> t

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)], 53-bit resolution. *)

val gaussian : t -> float
(** Standard normal via Box–Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
