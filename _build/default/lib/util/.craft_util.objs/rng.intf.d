lib/util/rng.mli:
