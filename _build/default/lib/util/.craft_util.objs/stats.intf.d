lib/util/stats.mli:
