type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the seed into the xoshiro state. *)
let splitmix_next (state : int64 ref) : int64 =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl (x : int64) (k : int) : int64 =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (bits64 t) in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let int t n =
  assert (n > 0);
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod n

let uniform t =
  (* Use the top 53 bits for a uniform double in [0,1). *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v *. 0x1.0p-53

let float t x = uniform t *. x

let gaussian t =
  let rec draw () =
    let u = uniform t in
    if u <= 0.0 then draw () else u
  in
  let u1 = draw () in
  let u2 = uniform t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
