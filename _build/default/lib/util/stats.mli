(** Small statistics helpers used by the benchmark harness and tests. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance; 0 for arrays of length < 2. *)

val stddev : float array -> float
val median : float array -> float
(** Median of a copy of the array; raises [Invalid_argument] on empty input. *)

val min_max : float array -> float * float
(** Raises [Invalid_argument] on empty input. *)

val norm2 : float array -> float
(** Euclidean norm. *)

val norm_inf : float array -> float
(** Max-absolute-value norm. *)

val rel_err_inf : float array -> float array -> float
(** [rel_err_inf x x_ref] is [max_i |x_i - x_ref_i| / max_i |x_ref_i|] — the
    infinity-norm relative error metric the SuperLU experiment reports. *)

val dot : float array -> float array -> float

val percent : float -> float -> float
(** [percent part total] is [100 * part / total], 0 when [total = 0]. *)
