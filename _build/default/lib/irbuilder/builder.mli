(** A mini-compiler for authoring IR programs ("binaries").

    The benchmark kernels are written against this imperative eDSL: virtual
    registers are handed out on demand, structured control flow ([if_],
    [while_], [for_]) is lowered to basic blocks with explicit terminators,
    and static heap regions are allocated at build time. [program] assigns
    instruction addresses and block labels and validates the result.

    All floating-point instructions are emitted as double precision ([D]
    opcodes) — exactly like the original binaries the paper starts from;
    single-precision variants only ever appear via the patcher. *)

type t
(** Program under construction. *)

type fb
(** Function under construction. *)

type fv
(** A float virtual register. *)

type iv
(** An integer virtual register. *)

type fn
(** Handle of a built function, usable as a call target. *)

val create : unit -> t

(** {1 Static heap allocation} *)

val alloc_f : t -> int -> int
(** [alloc_f t n] reserves [n] slots in the float heap, returning the base
    slot index. *)

val alloc_i : t -> int -> int

(** {1 Functions} *)

val func :
  t ->
  module_:string ->
  string ->
  nf_args:int ->
  ni_args:int ->
  (fb -> fv array -> iv array -> unit) ->
  fn
(** [func t ~module_ name ~nf_args ~ni_args body] defines a function. [body]
    receives the argument registers. If generation ends without an explicit
    {!ret}, a bare [ret] (no return values) is appended. The numbers of
    float/int return values are inferred from the first {!ret} executed
    during generation; every [ret] in one function must agree. *)

val program : t -> main:fn -> Ir.program
(** Finalize: assign addresses/labels, validate, and return the program. *)

(** {1 Emission — inside a function body} *)

val freshf : fb -> fv
(** A fresh, uninitialized float register (a mutable local variable). *)

val freshi : fb -> iv

val setf : fb -> fv -> fv -> unit
(** [setf b dst src] emits a register move. *)

val seti : fb -> iv -> iv -> unit

val fconst : fb -> float -> fv
val iconst : fb -> int -> iv

val fadd : fb -> fv -> fv -> fv
val fsub : fb -> fv -> fv -> fv
val fmul : fb -> fv -> fv -> fv
val fdiv : fb -> fv -> fv -> fv
val fmin : fb -> fv -> fv -> fv
val fmax : fb -> fv -> fv -> fv
val fsqrt : fb -> fv -> fv
val fneg : fb -> fv -> fv
val fabs : fb -> fv -> fv
val fsin : fb -> fv -> fv
val fcos : fb -> fv -> fv
val ftan : fb -> fv -> fv
val fexp : fb -> fv -> fv
val flog : fb -> fv -> fv
val fatan : fb -> fv -> fv

val feq : fb -> fv -> fv -> iv
val fne : fb -> fv -> fv -> iv
val flt : fb -> fv -> fv -> iv
val fle : fb -> fv -> fv -> iv
val fgt : fb -> fv -> fv -> iv
val fge : fb -> fv -> fv -> iv

val i2f : fb -> iv -> fv
val f2i : fb -> fv -> iv

val iadd : fb -> iv -> iv -> iv
val isub : fb -> iv -> iv -> iv
val imul : fb -> iv -> iv -> iv
val idiv : fb -> iv -> iv -> iv
val irem : fb -> iv -> iv -> iv
val iand : fb -> iv -> iv -> iv
val ior : fb -> iv -> iv -> iv
val ixor : fb -> iv -> iv -> iv
val ishl : fb -> iv -> iv -> iv
val ishr : fb -> iv -> iv -> iv

val iaddc : fb -> iv -> int -> iv
(** [iaddc b x c] adds an immediate (emits the constant load + add). *)

val imulc : fb -> iv -> int -> iv

val ieq : fb -> iv -> iv -> iv
val ine : fb -> iv -> iv -> iv
val ilt : fb -> iv -> iv -> iv
val ile : fb -> iv -> iv -> iv
val igt : fb -> iv -> iv -> iv
val ige : fb -> iv -> iv -> iv

(** {1 Memory}

    Addresses are in heap-slot units. [base] is a static slot index; the
    optional register index is scaled and added. *)

type addr

val at : int -> addr
(** Static slot. *)

val idx : int -> iv -> addr
(** [idx base i] is slot [base + i]. *)

val idx_scaled : int -> iv -> int -> addr
(** [idx_scaled base i s] is slot [base + i*s]. *)

val dyn : iv -> addr
(** Slot held in a register (pointer). *)

val dyn_idx : iv -> iv -> addr
(** [dyn_idx p i] is slot [reg(p) + reg(i)]. *)

val dyn_off : iv -> int -> addr
(** [dyn_off p k] is slot [reg(p) + k]. *)

val loadf : fb -> addr -> fv
val storef : fb -> addr -> fv -> unit
val loadi : fb -> addr -> iv
val storei : fb -> addr -> iv -> unit

(** {1 Control flow} *)

val if_ : fb -> iv -> (unit -> unit) -> (unit -> unit) -> unit
val when_ : fb -> iv -> (unit -> unit) -> unit

val while_ : fb -> (unit -> iv) -> (unit -> unit) -> unit
(** [while_ b cond body]: [cond] is re-emitted once and re-evaluated each
    iteration (a genuine loop in the IR, not unrolling). *)

val for_ : fb -> iv -> iv -> (iv -> unit) -> unit
(** [for_ b lo hi body] iterates [lo <= i < hi]. *)

val for_range : fb -> int -> int -> (iv -> unit) -> unit
(** [for_range b lo hi body] with constant bounds. *)

val for_down : fb -> iv -> iv -> (iv -> unit) -> unit
(** [for_down b hi lo body] iterates [i = hi-1 downto lo]. *)

val call : fb -> fn -> fargs:fv list -> iargs:iv list -> fv array * iv array
val ret : fb -> ?f:fv list -> ?i:iv list -> unit -> unit

(** {1 Packed (two-lane SIMD) values}

    Pairs live in adjacent registers, like doubles packed in an XMM
    register. Packed arithmetic lowers to the IR's [Fbinp] (addpd/addps
    after patching), which the cost model prices as a single operation —
    the SIMD advantage the paper's introduction describes. *)

type fpair

val fpair : fb -> fv -> fv -> fpair
(** Pack two scalars (lane 0, lane 1) into a fresh adjacent pair. *)

val flane : fb -> fpair -> int -> fv
(** Extract lane 0 or 1 into a fresh scalar register. *)

val loadfp : fb -> addr -> fpair
(** Load lanes from two consecutive heap slots. *)

val storefp : fb -> addr -> fpair -> unit

val faddp : fb -> fpair -> fpair -> fpair
val fsubp : fb -> fpair -> fpair -> fpair
val fmulp : fb -> fpair -> fpair -> fpair
val fdivp : fb -> fpair -> fpair -> fpair
