type fv = int
type iv = int
type fn = int

type pre_block = {
  label : int;
  index : int;
  mutable rev_instrs : Ir.op list;
  mutable term : Ir.terminator option;
}

type pre_func = {
  p_fid : int;
  p_name : string;
  p_module : string;
  p_nf_args : int;
  p_ni_args : int;
  mutable p_ret_fregs : int array;
  mutable p_ret_iregs : int array;
  mutable p_rets_fixed : bool;
  mutable p_n_fregs : int;
  mutable p_n_iregs : int;
  mutable p_blocks_rev : pre_block list;
  mutable p_n_blocks : int;
}

type t = {
  mutable funcs_rev : pre_func list;
  mutable n_funcs : int;
  mutable fheap : int;
  mutable iheap : int;
  mutable next_label : int;
  mutable modules_rev : string list;
}

type fb = { prog : t; pf : pre_func; mutable cur : pre_block }

let create () =
  { funcs_rev = []; n_funcs = 0; fheap = 0; iheap = 0; next_label = 1; modules_rev = [] }

let alloc_f t n =
  let base = t.fheap in
  t.fheap <- t.fheap + n;
  base

let alloc_i t n =
  let base = t.iheap in
  t.iheap <- t.iheap + n;
  base

let new_block (b : fb) =
  let pf = b.pf in
  let blk =
    { label = b.prog.next_label; index = pf.p_n_blocks; rev_instrs = []; term = None }
  in
  b.prog.next_label <- b.prog.next_label + 1;
  pf.p_n_blocks <- pf.p_n_blocks + 1;
  pf.p_blocks_rev <- blk :: pf.p_blocks_rev;
  blk

let emit (b : fb) op = b.cur.rev_instrs <- op :: b.cur.rev_instrs

let terminate (b : fb) term =
  match b.cur.term with None -> b.cur.term <- Some term | Some _ -> ()

let freshf (b : fb) =
  let r = b.pf.p_n_fregs in
  b.pf.p_n_fregs <- r + 1;
  r

let freshi (b : fb) =
  let r = b.pf.p_n_iregs in
  b.pf.p_n_iregs <- r + 1;
  r

let setf b dst src = emit b (Ir.Fmov (dst, src))
let seti b dst src = emit b (Ir.Imov (dst, src))

let fconst b x =
  let d = freshf b in
  emit b (Ir.Fconst (D, d, x));
  d

let iconst b x =
  let d = freshi b in
  emit b (Ir.Iconst (d, x));
  d

let fbin op b x y =
  let d = freshf b in
  emit b (Ir.Fbin (D, op, d, x, y));
  d

let fadd b = fbin Ir.Add b
let fsub b = fbin Ir.Sub b
let fmul b = fbin Ir.Mul b
let fdiv b = fbin Ir.Div b
let fmin b = fbin Ir.Min b
let fmax b = fbin Ir.Max b

let funop op b x =
  let d = freshf b in
  emit b (Ir.Funop (D, op, d, x));
  d

let fsqrt b = funop Ir.Sqrt b
let fneg b = funop Ir.Neg b
let fabs b = funop Ir.Abs b

let flibm op b x =
  let d = freshf b in
  emit b (Ir.Flibm (D, op, d, x));
  d

let fsin b = flibm Ir.Sin b
let fcos b = flibm Ir.Cos b
let ftan b = flibm Ir.Tan b
let fexp b = flibm Ir.Exp b
let flog b = flibm Ir.Log b
let fatan b = flibm Ir.Atan b

let fcmp op b x y =
  let d = freshi b in
  emit b (Ir.Fcmp (D, op, d, x, y));
  d

let feq b = fcmp Ir.Eq b
let fne b = fcmp Ir.Ne b
let flt b = fcmp Ir.Lt b
let fle b = fcmp Ir.Le b
let fgt b = fcmp Ir.Gt b
let fge b = fcmp Ir.Ge b

let i2f b x =
  let d = freshf b in
  emit b (Ir.Fcvt_i2f (D, d, x));
  d

let f2i b x =
  let d = freshi b in
  emit b (Ir.Fcvt_f2i (D, d, x));
  d

let ibin op b x y =
  let d = freshi b in
  emit b (Ir.Ibin (op, d, x, y));
  d

let iadd b = ibin Ir.Iadd b
let isub b = ibin Ir.Isub b
let imul b = ibin Ir.Imul b
let idiv b = ibin Ir.Idiv b
let irem b = ibin Ir.Irem b
let iand b = ibin Ir.Iand b
let ior b = ibin Ir.Ior b
let ixor b = ibin Ir.Ixor b
let ishl b = ibin Ir.Ishl b
let ishr b = ibin Ir.Ishr b

let iaddc b x c = iadd b x (iconst b c)
let imulc b x c = imul b x (iconst b c)

let icmp op b x y =
  let d = freshi b in
  emit b (Ir.Icmp (op, d, x, y));
  d

let ieq b = icmp Ir.Eq b
let ine b = icmp Ir.Ne b
let ilt b = icmp Ir.Lt b
let ile b = icmp Ir.Le b
let igt b = icmp Ir.Gt b
let ige b = icmp Ir.Ge b

type addr = Ir.mem

let at slot : addr = { base = None; index = None; scale = 1; offset = slot }
let idx base i : addr = { base = None; index = Some i; scale = 1; offset = base }
let idx_scaled base i s : addr = { base = None; index = Some i; scale = s; offset = base }
let dyn p : addr = { base = Some p; index = None; scale = 1; offset = 0 }
let dyn_idx p i : addr = { base = Some p; index = Some i; scale = 1; offset = 0 }
let dyn_off p k : addr = { base = Some p; index = None; scale = 1; offset = k }

let loadf b a =
  let d = freshf b in
  emit b (Ir.Fload (d, a));
  d

let storef b a v = emit b (Ir.Fstore (a, v))

let loadi b a =
  let d = freshi b in
  emit b (Ir.Iload (d, a));
  d

let storei b a v = emit b (Ir.Istore (a, v))

let if_ b cond then_gen else_gen =
  let then_blk = new_block b in
  let else_blk = new_block b in
  let join_blk = new_block b in
  terminate b (Ir.Br (cond, then_blk.index, else_blk.index));
  b.cur <- then_blk;
  then_gen ();
  terminate b (Ir.Jmp join_blk.index);
  b.cur <- else_blk;
  else_gen ();
  terminate b (Ir.Jmp join_blk.index);
  b.cur <- join_blk

let when_ b cond then_gen = if_ b cond then_gen (fun () -> ())

let while_ b cond_gen body_gen =
  let cond_blk = new_block b in
  terminate b (Ir.Jmp cond_blk.index);
  b.cur <- cond_blk;
  let c = cond_gen () in
  let body_blk = new_block b in
  let exit_blk = new_block b in
  terminate b (Ir.Br (c, body_blk.index, exit_blk.index));
  b.cur <- body_blk;
  body_gen ();
  terminate b (Ir.Jmp cond_blk.index);
  b.cur <- exit_blk

let for_ b lo hi body =
  let i = freshi b in
  seti b i lo;
  while_ b
    (fun () -> ilt b i hi)
    (fun () ->
      body i;
      let one = iconst b 1 in
      emit b (Ir.Ibin (Iadd, i, i, one)))

let for_range b lo hi body = for_ b (iconst b lo) (iconst b hi) body

let for_down b hi lo body =
  let i = freshi b in
  seti b i hi;
  (* i starts at hi and is pre-decremented, so the body sees hi-1 .. lo. *)
  while_ b
    (fun () -> igt b i lo)
    (fun () ->
      let one = iconst b 1 in
      emit b (Ir.Ibin (Isub, i, i, one));
      body i)

let find_pf (t : t) fid = List.find (fun pf -> pf.p_fid = fid) t.funcs_rev

let call b callee ~fargs ~iargs =
  let pf = find_pf b.prog callee in
  if List.length fargs <> pf.p_nf_args || List.length iargs <> pf.p_ni_args then
    invalid_arg
      (Printf.sprintf "Builder.call %s: arity mismatch (%d,%d args given, (%d,%d) expected)"
         pf.p_name (List.length fargs) (List.length iargs) pf.p_nf_args pf.p_ni_args);
  let frets = Array.init (Array.length pf.p_ret_fregs) (fun _ -> freshf b) in
  let irets = Array.init (Array.length pf.p_ret_iregs) (fun _ -> freshi b) in
  emit b
    (Ir.Call
       {
         callee;
         fargs = Array.of_list fargs;
         iargs = Array.of_list iargs;
         frets;
         irets;
       });
  (frets, irets)

let ret b ?(f = []) ?(i = []) () =
  let pf = b.pf in
  if not pf.p_rets_fixed then begin
    pf.p_ret_fregs <- Array.of_list (List.map (fun _ -> freshf b) f);
    pf.p_ret_iregs <- Array.of_list (List.map (fun _ -> freshi b) i);
    pf.p_rets_fixed <- true
  end;
  if List.length f <> Array.length pf.p_ret_fregs || List.length i <> Array.length pf.p_ret_iregs
  then invalid_arg (Printf.sprintf "Builder.ret %s: inconsistent return arity" pf.p_name);
  List.iteri (fun k v -> setf b pf.p_ret_fregs.(k) v) f;
  List.iteri (fun k v -> seti b pf.p_ret_iregs.(k) v) i;
  terminate b Ir.Ret;
  (* Anything emitted after a ret lands in a fresh unreachable block. *)
  let dead = new_block b in
  b.cur <- dead

let func t ~module_ name ~nf_args ~ni_args body =
  if not (List.exists (String.equal module_) t.modules_rev) then
    t.modules_rev <- module_ :: t.modules_rev;
  let pf =
    {
      p_fid = t.n_funcs;
      p_name = name;
      p_module = module_;
      p_nf_args = nf_args;
      p_ni_args = ni_args;
      p_ret_fregs = [||];
      p_ret_iregs = [||];
      p_rets_fixed = false;
      p_n_fregs = nf_args;
      p_n_iregs = ni_args;
      p_blocks_rev = [];
      p_n_blocks = 0;
    }
  in
  t.funcs_rev <- pf :: t.funcs_rev;
  t.n_funcs <- t.n_funcs + 1;
  let b = { prog = t; pf; cur = { label = 0; index = -1; rev_instrs = []; term = None } } in
  let entry = new_block b in
  b.cur <- entry;
  let fargs = Array.init nf_args (fun k -> k) in
  let iargs = Array.init ni_args (fun k -> k) in
  body b fargs iargs;
  terminate b Ir.Ret;
  if not pf.p_rets_fixed then pf.p_rets_fixed <- true;
  pf.p_fid

let program t ~main =
  let next_addr = ref 0 in
  let finalize_func (pf : pre_func) : Ir.func =
    let blocks =
      List.rev pf.p_blocks_rev
      |> List.map (fun blk ->
             let instrs =
               List.rev blk.rev_instrs
               |> List.map (fun op ->
                      let addr = !next_addr in
                      incr next_addr;
                      ({ addr; op } : Ir.instr))
               |> Array.of_list
             in
             let term = match blk.term with Some tm -> tm | None -> Ir.Ret in
             ({ label = blk.label; instrs; term } : Ir.block))
      |> Array.of_list
    in
    {
      Ir.fid = pf.p_fid;
      fname = pf.p_name;
      module_name = pf.p_module;
      n_fargs = pf.p_nf_args;
      n_iargs = pf.p_ni_args;
      ret_fregs = pf.p_ret_fregs;
      ret_iregs = pf.p_ret_iregs;
      n_fregs = max pf.p_n_fregs 1;
      n_iregs = max pf.p_n_iregs 1;
      entry = 0;
      blocks;
    }
  in
  let funcs = List.rev t.funcs_rev |> List.map finalize_func |> Array.of_list in
  let prog =
    {
      Ir.funcs;
      main;
      fheap_size = max t.fheap 1;
      iheap_size = max t.iheap 1;
      modules = Array.of_list (List.rev t.modules_rev);
    }
  in
  Ir.validate_exn prog

type fpair = int

let freshf2 b =
  let r0 = freshf b in
  let r1 = freshf b in
  assert (r1 = r0 + 1);
  r0

let fpair b x y =
  let p = freshf2 b in
  emit b (Ir.Fmov (p, x));
  emit b (Ir.Fmov (p + 1, y));
  p

let flane b p lane =
  let d = freshf b in
  emit b (Ir.Fmov (d, p + lane));
  d

let loadfp b (a : addr) =
  let p = freshf2 b in
  emit b (Ir.Fload (p, a));
  emit b (Ir.Fload (p + 1, { a with offset = a.offset + 1 }));
  p

let storefp b (a : addr) p =
  emit b (Ir.Fstore (a, p));
  emit b (Ir.Fstore ({ a with offset = a.offset + 1 }, p + 1))

let fbinp op b x y =
  let d = freshf2 b in
  emit b (Ir.Fbinp (D, op, d, x, y));
  d

let faddp b = fbinp Ir.Add b
let fsubp b = fbinp Ir.Sub b
let fmulp b = fbinp Ir.Mul b
let fdivp b = fbinp Ir.Div b
