lib/search/strategies.ml: Array Bfs Config List Static
