lib/search/bfs.mli: Config Ir Static Vm
