lib/search/bfs.ml: Array Config Domain Format Ir List Patcher Static Stats String Vm
