lib/search/strategies.mli: Bfs Config
