(* Run the automatic breadth-first search on a NAS-like benchmark and print
   the recommendation — the paper's §2.2/§3.1 workflow.

   Run with: dune exec examples/nas_search.exe [-- BENCH CLASS WORKERS] *)

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "cg" in
  let cls =
    match if Array.length Sys.argv > 2 then Sys.argv.(2) else "W" with
    | "A" | "a" -> Kernel.A
    | "C" | "c" -> Kernel.C
    | _ -> Kernel.W
  in
  let workers = if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 4 in
  let k =
    match bench with
    | "ep" -> Nas_ep.make cls
    | "ft" -> Nas_ft.make cls
    | "mg" -> Nas_mg.make cls
    | "bt" -> Nas_bt.make cls
    | "lu" -> Nas_lu.make cls
    | "sp" -> Nas_sp.make cls
    | _ -> Nas_cg.make cls
  in
  Format.printf "searching %s (%d workers)...@." k.Kernel.name workers;
  let options = { Bfs.default_options with workers; base = k.Kernel.hints } in
  let r = Analysis.recommend_target ~options (Kernel.target k) ~setup:k.Kernel.setup in
  Format.printf "%a@.@." Analysis.pp_summary r;
  Format.printf "=== search log (first 25 events) ===@.";
  List.iteri (fun i l -> if i < 25 then print_endline l) r.Analysis.result.Bfs.log;
  Format.printf "@.=== recommended configuration ===@.%s@." r.Analysis.tree
