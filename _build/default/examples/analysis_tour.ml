(* A tour of the secondary analyses: the dynamic cancellation detector
   (paper §4.4) and the static data-flow check-removal optimization
   (paper §2.5), both applied to the CG benchmark.

   Run with: dune exec examples/analysis_tour.exe *)

let () =
  let k = Nas_cg.make Kernel.W in

  (* 1. where does this program lose significance? *)
  Format.printf "=== dynamic cancellation detection ===@.";
  let instr, layout = Cancellation.instrument k.Kernel.program in
  let vm = Vm.create instr in
  k.Kernel.setup vm;
  Vm.run vm;
  print_string (Cancellation.report ~min_cancellations:1 layout vm);

  (* 2. search for a mixed-precision configuration *)
  Format.printf "@.=== mixed-precision search ===@.";
  let res =
    Bfs.search ~options:{ Bfs.default_options with workers = 4 } (Kernel.target k)
  in
  Format.printf "replaced %d of %d candidates (%.1f%% static), final %s@."
    res.Bfs.static_replaced res.Bfs.candidates res.Bfs.static_pct
    (if res.Bfs.final_pass then "pass" else "fail");

  (* 3. how much instrumentation the static analysis can strip *)
  Format.printf "@.=== static data-flow check removal ===@.";
  let df = Dataflow.analyze k.Kernel.program res.Bfs.final in
  let removable, total = Dataflow.checks_removable df k.Kernel.program res.Bfs.final in
  Format.printf "%d of %d operand checks are statically decidable@." removable total;
  let run p =
    let vm = Vm.create ~checked:true p in
    k.Kernel.setup vm;
    Vm.run vm;
    Cost.of_run vm
  in
  let _, nvm = Kernel.run_native k in
  let nat = Cost.of_run nvm in
  let plain = run (Patcher.patch k.Kernel.program res.Bfs.final) in
  let opt = run (Patcher.patch ~dataflow:true k.Kernel.program res.Bfs.final) in
  Format.printf "analysis overhead: %.2fX unoptimized, %.2fX optimized@."
    (Cost.overhead plain nat) (Cost.overhead opt nat);

  (* 4. cross-reference the two analyses: what did the search decide about
     the instruction that cancels hardest? (cancellation flags *potential*
     sensitivity; here the cancelled bits feed a residual norm the
     verification tolerates, so the site may still be replaceable) *)
  let worst =
    Cancellation.read_sites layout vm
    |> List.sort (fun a b -> compare b.Cancellation.total_bits a.Cancellation.total_bits)
    |> List.hd
  in
  let info =
    Array.to_list (Static.candidates k.Kernel.program)
    |> List.find (fun (i : Static.insn_info) -> i.Static.addr = worst.Cancellation.addr)
  in
  Format.printf "@.hottest cancellation site 0x%06x (%s) is configured %c by the search@."
    worst.Cancellation.addr worst.Cancellation.disasm
    (Config.flag_char (Config.effective res.Bfs.final info))
