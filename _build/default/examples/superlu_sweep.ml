(* Sweep verification thresholds on the sparse LU solver and report how much
   of the solver the search can replace at each bound — a scaled-down version
   of the paper's Fig. 11 experiment.

   Run with: dune exec examples/superlu_sweep.exe *)

let () =
  let s = Slu.create ~n:400 () in
  let x, _ = Slu.solve_native s in
  let xs, _ = Slu.solve_converted s in
  Format.printf "solver: n=%d nnz=%d (memplus-like)@." s.Slu.a.Sparse_csc.n
    (Sparse_csc.nnz s.Slu.a);
  Format.printf "double-precision error: %.3e@." (Slu.error s x);
  Format.printf "single-precision error: %.3e@.@." (Slu.error s xs);
  Format.printf "%-12s %10s %10s %12s@." "threshold" "static" "dynamic" "final error";
  List.iter
    (fun threshold ->
      let res =
        Bfs.search
          ~options:{ Bfs.default_options with workers = 4 }
          (Slu.target s ~threshold)
      in
      let patched = Patcher.patch s.Slu.program res.Bfs.final in
      let vm = Vm.create ~checked:true patched in
      s.Slu.setup vm;
      Vm.run vm;
      let err = Slu.error s (s.Slu.output vm) in
      Format.printf "%-12.1e %9.1f%% %9.1f%% %12.2e@." threshold res.Bfs.static_pct
        res.Bfs.dynamic_pct err)
    [ 1e-3; 1e-4; 1e-5 ]
