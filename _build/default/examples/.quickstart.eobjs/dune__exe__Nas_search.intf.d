examples/nas_search.mli:
