examples/quickstart.mli:
