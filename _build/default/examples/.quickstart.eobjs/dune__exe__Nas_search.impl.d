examples/nas_search.ml: Analysis Array Bfs Format Kernel List Nas_bt Nas_cg Nas_ep Nas_ft Nas_lu Nas_mg Nas_sp Sys
