examples/analysis_tour.mli:
