examples/mixed_refinement.ml: Array Config Cost Format Refine
