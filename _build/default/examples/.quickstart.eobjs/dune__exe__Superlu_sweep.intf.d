examples/superlu_sweep.mli:
