examples/analysis_tour.ml: Array Bfs Cancellation Config Cost Dataflow Format Kernel List Nas_cg Patcher Static Vm
