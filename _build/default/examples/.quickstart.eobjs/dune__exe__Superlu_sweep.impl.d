examples/superlu_sweep.ml: Bfs Format List Patcher Slu Sparse_csc Vm
