examples/quickstart.ml: Array Builder Config Float Format Ir List Patcher Static String Tree_view Vm
