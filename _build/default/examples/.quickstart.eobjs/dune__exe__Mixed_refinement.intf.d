examples/mixed_refinement.mli:
