(* Quickstart: author a tiny "binary" with the builder, instrument it under a
   mixed-precision configuration, and compare against the native run.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A small program: evaluate a Horner polynomial and a distance, 64 times. *)
  let n = 64 in
  let t = Builder.create () in
  let xs = Builder.alloc_f t n in
  let out = Builder.alloc_f t n in
  let main =
    Builder.func t ~module_:"quickstart" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let c3 = Builder.fconst b 0.25 in
        let c2 = Builder.fconst b (-1.5) in
        let c1 = Builder.fconst b 2.0 in
        let c0 = Builder.fconst b 0.75 in
        Builder.for_range b 0 n (fun i ->
            let x = Builder.loadf b (Builder.idx xs i) in
            (* poly = ((c3*x + c2)*x + c1)*x + c0 *)
            let p = Builder.fadd b (Builder.fmul b c3 x) c2 in
            let p = Builder.fadd b (Builder.fmul b p x) c1 in
            let p = Builder.fadd b (Builder.fmul b p x) c0 in
            let d = Builder.fsqrt b (Builder.fadd b (Builder.fmul b x x) (Builder.fmul b p p)) in
            Builder.storef b (Builder.idx out i) d))
  in
  let prog = Builder.program t ~main in
  Format.printf "=== disassembly ===@.%a@." Ir.pp_program prog;

  (* Run it natively. *)
  let input = Array.init n (fun i -> (float_of_int i /. 8.0) -. 3.0) in
  let run ?(smode = Vm.Flagged) ?(checked = false) p =
    let vm = Vm.create ~checked ~smode p in
    Vm.write_f vm xs input;
    Vm.run vm;
    (Vm.read_f vm out n, vm)
  in
  let native, _ = run prog in

  (* Build a configuration: whole module single, but keep the sqrt double. *)
  let sqrt_insn =
    Array.to_list (Static.candidates prog)
    |> List.find (fun (i : Static.insn_info) ->
           String.length i.disasm >= 4 && String.sub i.disasm 0 4 = "sqrt")
  in
  let cfg =
    Config.set_insn
      (List.fold_left
         (fun acc (i : Static.insn_info) -> Config.set_insn acc i.addr Config.Single)
         Config.empty
         (Array.to_list (Static.candidates prog)))
      sqrt_insn.addr Config.Double
  in
  Format.printf "=== configuration (exchange format, paper Fig. 3) ===@.%s@."
    (Config.print prog cfg);

  (* Instrument and run. *)
  let patched = Patcher.patch prog cfg in
  Format.printf "=== patching ===@.%s@." (Patcher.patch_stats prog patched);
  let mixed, _ = run ~checked:true patched in
  let max_err =
    Array.fold_left Float.max 0.0 (Array.map2 (fun a b -> Float.abs (a -. b)) mixed native)
  in
  Format.printf "max |mixed - native| = %.3e (single precision elsewhere)@." max_err;

  (* And the tree view (paper Fig. 4). *)
  Format.printf "=== configuration tree ===@.%s@." (Tree_view.render prog cfg)
