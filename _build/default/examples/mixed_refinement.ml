(* Mixed-precision iterative refinement (paper Fig. 12): the O(n^3)
   factorization and the triangular solves run in single precision, while the
   O(n^2) residual and solution update stay in double precision. The refined
   solution recovers double-precision accuracy.

   Run with: dune exec examples/mixed_refinement.exe *)

let () =
  let t = Refine.create () in
  let d = Refine.run t Config.empty in
  let m = Refine.run t Refine.mixed_config in
  let s = Refine.run t Refine.all_single_config in
  Format.printf "dense LU + %d refinement steps, n = %d@.@." t.Refine.refine_steps t.Refine.n;
  Format.printf "%-22s %14s %14s@." "configuration" "solution error" "converted cost";
  let row name (o : Refine.outcome) =
    Format.printf "%-22s %14.3e %13.0fc@." name o.Refine.error o.Refine.converted.Cost.cycles
  in
  row "all double" d;
  row "mixed (Fig. 12)" m;
  row "all single" s;
  Format.printf "@.residual history (mixed): ";
  Array.iter (fun r -> Format.printf "%.2e " r) m.Refine.history;
  Format.printf "@.@.";
  Format.printf
    "the mixed configuration recovers double-precision accuracy (%.1e vs %.1e)@."
    m.Refine.error d.Refine.error;
  Format.printf
    "while doing its O(n^3) work in single precision (cheaper arithmetic; on@.";
  Format.printf "real hardware the 4-byte factor storage also halves memory traffic).@."
