(* Tests for the breadth-first search: known-answer synthetic targets, the
   two optimizations, stop granularities, parallel evaluation, ignore hints
   and the second composition phase. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* A synthetic program whose verification is controlled precisely: main
   stores the result of [n_ops] independent chains; the verification
   routine rejects any configuration in which a designated "poison" subset
   of the chains was computed in single precision. Poison chains use 0.1
   (inexact in binary32) so single precision shifts their output; benign
   chains use 0.5 (exact), so replacing them is invisible. *)
let synthetic ~n_ops ~poison =
  let t = Builder.create () in
  let out = Builder.alloc_f t n_ops in
  let main =
    Builder.func t ~module_:"syn" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for k = 0 to n_ops - 1 do
          let c = Builder.fconst b (if List.mem k poison then 0.1 else 0.5) in
          let v = Builder.fadd b c c in
          Builder.storef b (Builder.at (out + k)) v
        done)
  in
  let program = Builder.program t ~main in
  let reference =
    Array.init n_ops (fun k -> if List.mem k poison then 0.2 else 1.0)
  in
  let target =
    Bfs.Target.make program
      ~setup:(fun _ -> ())
      ~output:(fun vm -> Vm.read_f vm out n_ops)
      ~verify:(fun res -> res = reference)
  in
  (program, target)

let test_finds_exact_replaceable_set () =
  let n_ops = 8 in
  let poison = [ 2; 5 ] in
  let program, target = synthetic ~n_ops ~poison in
  let res = Bfs.search target in
  (* every benign instruction single, every poison instruction double *)
  let cands = Static.candidates program in
  (* candidates alternate: fconst, fadd per chain, in emission order *)
  Array.iteri
    (fun idx (info : Static.insn_info) ->
      let chain = idx / 2 in
      let expected = if List.mem chain poison then Config.Double else Config.Single in
      if Config.effective res.Bfs.final info <> expected then
        Alcotest.failf "chain %d (insn %d): wrong flag" chain idx)
    cands;
  checkb "final passes" true res.Bfs.final_pass;
  checki "static count" ((n_ops - 2) * 2) res.Bfs.static_replaced

let test_all_replaceable_stops_at_module () =
  let _, target = synthetic ~n_ops:6 ~poison:[] in
  let res = Bfs.search target in
  (* the very first module-level configuration passes *)
  checki "tested module + final" 2 res.Bfs.tested;
  checkb "pass" true res.Bfs.final_pass;
  checkb "100%" true (res.Bfs.static_pct = 100.0)

let test_none_replaceable () =
  let _, target = synthetic ~n_ops:4 ~poison:[ 0; 1; 2; 3 ] in
  let res = Bfs.search target in
  (* constants of poisoned chains are still exact?? no: 0.1 consts are inexact *)
  checkb "final passes (empty union)" true res.Bfs.final_pass;
  checkb "low static" true (res.Bfs.static_replaced <= 4)

let test_stop_at_granularities () =
  let _, target = synthetic ~n_ops:8 ~poison:[ 1 ] in
  let res_mod = Bfs.search ~options:{ Bfs.default_options with stop_at = Bfs.Module_level } target in
  (* the single module fails and nothing is explored below it *)
  checki "module only" 2 res_mod.Bfs.tested;
  checki "nothing replaced" 0 res_mod.Bfs.static_replaced;
  let res_fn = Bfs.search ~options:{ Bfs.default_options with stop_at = Bfs.Func_level } target in
  (* one function (= whole program here), also fails *)
  checkb "function level explored" true (res_fn.Bfs.tested >= res_mod.Bfs.tested)

let test_binary_split_reduces_tests () =
  let _, target = synthetic ~n_ops:16 ~poison:[ 7 ] in
  let with_split =
    Bfs.search ~options:{ Bfs.default_options with binary_split = true } target
  in
  let without_split =
    Bfs.search ~options:{ Bfs.default_options with binary_split = false } target
  in
  (* identical findings *)
  checki "same static" without_split.Bfs.static_replaced with_split.Bfs.static_replaced;
  (* and the split prunes configurations (one bad element among many) *)
  checkb "fewer tests with split" true (with_split.Bfs.tested < without_split.Bfs.tested)

let test_prioritization_order () =
  (* a hot loop plus a cold chain: with prioritization, the hot structure is
     tested first (appears earlier in the log) *)
  let t = Builder.create () in
  let out = Builder.alloc_f t 2 in
  let hot =
    Builder.func t ~module_:"syn" "hot" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let acc = Builder.freshf b in
        Builder.setf b acc (Builder.fconst b 0.0);
        Builder.for_range b 0 100 (fun _ ->
            Builder.setf b acc (Builder.fadd b acc (Builder.fconst b 0.5)));
        Builder.storef b (Builder.at out) acc)
  in
  let cold =
    Builder.func t ~module_:"syn2" "cold" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        Builder.storef b (Builder.at (out + 1)) (Builder.fconst b 0.25))
  in
  let main =
    Builder.func t ~module_:"syn3" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let _ = Builder.call b hot ~fargs:[] ~iargs:[] in
        let _ = Builder.call b cold ~fargs:[] ~iargs:[] in
        ())
  in
  let program = Builder.program t ~main in
  let target =
    Bfs.Target.make program
      ~setup:(fun _ -> ())
      ~output:(fun vm -> Vm.read_f vm out 2)
      ~verify:(fun _ -> true)
  in
  let res = Bfs.search ~options:{ Bfs.default_options with prioritize = true } target in
  let first_event = List.hd res.Bfs.log in
  checkb "hot module first" true
    (let rec contains i =
       i + 10 <= String.length first_event
       && (String.sub first_event i 10 = "MODULE syn" || contains (i + 1))
     in
     contains 0);
  (* hot module is syn (100 execs) *)
  checkb "is the hot one" true
    (let rec find i =
       if i + 11 > String.length first_event then false
       else if String.sub first_event i 11 = "MODULE syn " then true
       else find (i + 1)
     in
     find 0)

let test_parallel_equals_sequential () =
  let _, target = synthetic ~n_ops:12 ~poison:[ 3; 9 ] in
  let seq = Bfs.search ~options:{ Bfs.default_options with workers = 1 } target in
  let par = Bfs.search ~options:{ Bfs.default_options with workers = 4 } target in
  checki "same static" seq.Bfs.static_replaced par.Bfs.static_replaced;
  checkb "same pass" true (seq.Bfs.final_pass = par.Bfs.final_pass)

let test_ignore_hints_excluded () =
  let n_ops = 6 in
  let program, _ = synthetic ~n_ops ~poison:[] in
  let cands = Static.candidates program in
  (* ignore the first chain *)
  let base =
    Config.set_insn (Config.set_insn Config.empty cands.(0).Static.addr Config.Ignore)
      cands.(1).Static.addr Config.Ignore
  in
  let target =
    Bfs.Target.make program
      ~setup:(fun _ -> ())
      ~output:(fun vm -> Vm.read_f vm 0 n_ops)
      ~verify:(fun _ -> true)
  in
  let res = Bfs.search ~options:{ Bfs.default_options with base } target in
  checki "universe shrinks by 2" (Array.length cands - 2) res.Bfs.candidates;
  (* ignored instructions keep their flag in the final config *)
  checkb "still ignored" true
    (Config.effective res.Bfs.final cands.(0) = Config.Ignore)

let test_force_single_expands_over_ignores () =
  let program, _ = synthetic ~n_ops:4 ~poison:[] in
  let cands = Static.candidates program in
  let base = Config.set_insn Config.empty cands.(0).Static.addr Config.Ignore in
  match Static.tree program with
  | [ (Static.Module _ as m) ] ->
      let cfg = Bfs.force_single ~base base m in
      checkb "ignore survives" true (Config.effective cfg cands.(0) = Config.Ignore);
      checkb "others single" true (Config.effective cfg cands.(1) = Config.Single)
  | _ -> Alcotest.fail "expected one module"

let test_second_phase_composes () =
  (* two chains that individually pass but fail together: verification
     rejects when BOTH are rounded. 0.1+0.1 and 0.3+0.3 both shift in
     single; accept if at most one shifted. *)
  let t = Builder.create () in
  let out = Builder.alloc_f t 2 in
  let main =
    Builder.func t ~module_:"syn" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let a = Builder.fconst b 0.1 in
        Builder.storef b (Builder.at out) (Builder.fadd b a a);
        let c = Builder.fconst b 0.3 in
        Builder.storef b (Builder.at (out + 1)) (Builder.fadd b c c))
  in
  let program = Builder.program t ~main in
  let target =
    Bfs.Target.make program
      ~setup:(fun _ -> ())
      ~output:(fun vm -> Vm.read_f vm out 2)
      ~verify:(fun res ->
        let shifted0 = res.(0) <> 0.2 in
        let shifted1 = res.(1) <> 0.6 in
        not (shifted0 && shifted1))
  in
  let plain = Bfs.search ~options:{ Bfs.default_options with second_phase = false } target in
  checkb "union fails" false plain.Bfs.final_pass;
  let composed = Bfs.search ~options:{ Bfs.default_options with second_phase = true } target in
  checkb "composed passes" true composed.Bfs.final_pass;
  checkb "something kept" true (composed.Bfs.static_replaced > 0);
  checkb "not everything" true (composed.Bfs.static_replaced < Array.length (Static.candidates program))

let test_trap_counts_as_failure () =
  (* a program whose single version traps (constant feeding an ignored
     consumer) must simply fail verification, not kill the search *)
  let program, target = synthetic ~n_ops:4 ~poison:[ 0 ] in
  ignore program;
  let res = Bfs.search target in
  checkb "search completes" true (res.Bfs.tested > 0)

let test_tested_counts_final () =
  let _, target = synthetic ~n_ops:4 ~poison:[] in
  let res = Bfs.search target in
  (* 1 module config + 1 final *)
  checki "tested" 2 res.Bfs.tested

let suite =
  [
    ("finds exact replaceable set", `Quick, test_finds_exact_replaceable_set);
    ("all replaceable stops at module", `Quick, test_all_replaceable_stops_at_module);
    ("none replaceable", `Quick, test_none_replaceable);
    ("stop_at granularities", `Quick, test_stop_at_granularities);
    ("binary split reduces tests", `Quick, test_binary_split_reduces_tests);
    ("prioritization order", `Quick, test_prioritization_order);
    ("parallel equals sequential", `Quick, test_parallel_equals_sequential);
    ("ignore hints excluded", `Quick, test_ignore_hints_excluded);
    ("force_single expands over ignores", `Quick, test_force_single_expands_over_ignores);
    ("second phase composes", `Quick, test_second_phase_composes);
    ("trap counts as failure", `Quick, test_trap_counts_as_failure);
    ("tested counts final", `Quick, test_tested_counts_final);
  ]
