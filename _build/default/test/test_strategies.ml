(* Tests for the alternative search strategies. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* the known-answer synthetic from the BFS tests *)
let synthetic ~n_ops ~poison =
  let t = Builder.create () in
  let out = Builder.alloc_f t n_ops in
  let main =
    Builder.func t ~module_:"syn" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for k = 0 to n_ops - 1 do
          let c = Builder.fconst b (if List.mem k poison then 0.1 else 0.5) in
          let v = Builder.fadd b c c in
          Builder.storef b (Builder.at (out + k)) v
        done)
  in
  let program = Builder.program t ~main in
  let reference = Array.init n_ops (fun k -> if List.mem k poison then 0.2 else 1.0) in
  Bfs.Target.make program
    ~setup:(fun _ -> ())
    ~output:(fun vm -> Vm.read_f vm out n_ops)
    ~verify:(fun res -> res = reference)

let test_delta_debug_finds_answer () =
  let target = synthetic ~n_ops:10 ~poison:[ 3; 7 ] in
  let r = Strategies.delta_debug target in
  checkb "passes" true r.Strategies.final_pass;
  (* exactly the benign 8 chains * 2 insns are single *)
  checki "replaced" 16 r.Strategies.static_replaced;
  checki "candidates" 20 r.Strategies.candidates

let test_delta_debug_all_pass () =
  let target = synthetic ~n_ops:6 ~poison:[] in
  let r = Strategies.delta_debug target in
  checkb "passes" true r.Strategies.final_pass;
  checki "everything" 12 r.Strategies.static_replaced;
  (* first test (everything single) already passes *)
  checki "one test" 1 r.Strategies.tested

let test_delta_debug_none_pass () =
  let target = synthetic ~n_ops:4 ~poison:[ 0; 1; 2; 3 ] in
  let r = Strategies.delta_debug target in
  checkb "passes" true r.Strategies.final_pass;
  (* only the exact constants could survive; the adds all fail *)
  checkb "few replaced" true (r.Strategies.static_replaced <= 4)

let test_greedy_always_passes () =
  let target = synthetic ~n_ops:8 ~poison:[ 2 ] in
  let r = Strategies.greedy_grow target in
  checkb "passes" true r.Strategies.final_pass;
  checki "one test per candidate" r.Strategies.candidates r.Strategies.tested;
  checki "all benign kept" 14 r.Strategies.static_replaced

let test_budget_respected () =
  let target = synthetic ~n_ops:16 ~poison:[ 1; 5; 9 ] in
  let r = Strategies.delta_debug ~max_tests:5 target in
  checkb "still returns a passing config" true r.Strategies.final_pass;
  checkb "budget respected" true (r.Strategies.tested <= 6)

let test_base_hints_respected () =
  let k = Nas_ep.make Kernel.W in
  let r = Strategies.greedy_grow ~base:k.Kernel.hints (Kernel.target k) in
  (* ignored RNG instructions are not in the universe *)
  checkb "universe excludes ignored" true
    (r.Strategies.candidates < Array.length (Static.candidates k.Kernel.program))

let test_agrees_with_bfs_on_kernel () =
  (* both strategies find passing configurations for mg.W, where the BFS
     union fails — the strategies trade tests for composability *)
  let k = Nas_mg.make Kernel.W in
  let t = Kernel.target k in
  let bfs = Bfs.search t in
  let dd = Strategies.delta_debug t in
  checkb "bfs union fails here" false bfs.Bfs.final_pass;
  checkb "ddmax passes" true dd.Strategies.final_pass;
  checkb "ddmax found replacements" true (dd.Strategies.static_replaced > 0)

let suite =
  [
    ("delta_debug finds the answer", `Quick, test_delta_debug_finds_answer);
    ("delta_debug: all pass", `Quick, test_delta_debug_all_pass);
    ("delta_debug: none pass", `Quick, test_delta_debug_none_pass);
    ("greedy always passes", `Quick, test_greedy_always_passes);
    ("budget respected", `Quick, test_budget_respected);
    ("base hints respected", `Quick, test_base_hints_respected);
    ("strategies vs bfs on mg.W", `Quick, test_agrees_with_bfs_on_kernel);
  ]
