test/test_vm_props.ml: Builder F32 Float Int64 Ir QCheck2 QCheck_alcotest Vm
