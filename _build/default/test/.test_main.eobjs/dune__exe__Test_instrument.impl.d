test/test_instrument.ml: Alcotest Array Builder Config Int64 Ir List Patcher Static Stats String To_single Vm
