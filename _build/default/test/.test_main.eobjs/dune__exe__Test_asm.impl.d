test/test_asm.ml: Alcotest Array Asm Builder Bytes Cancellation Config Format Int64 Ir Kernel List Nas_bt Nas_cg Nas_ep Nas_ft Nas_lu Nas_mg Nas_sp Patcher QCheck2 QCheck_alcotest Rng Slu Vm
