test/test_superlu.ml: Alcotest Array Bfs Config Float Int64 Memplus_like Patcher Slu Sparse_csc Vm
