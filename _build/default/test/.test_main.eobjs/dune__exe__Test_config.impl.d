test/test_config.ml: Alcotest Array Builder Config Format List QCheck2 QCheck_alcotest Static String Tree_view Vm
