test/test_packed.ml: Alcotest Asm Builder Config Cost Format Int64 Ir Patcher Replaced To_single Vm
