test/test_strategies.ml: Alcotest Array Bfs Builder Kernel List Nas_ep Nas_mg Static Strategies Vm
