test/test_search.ml: Alcotest Array Bfs Builder Config List Static String Vm
