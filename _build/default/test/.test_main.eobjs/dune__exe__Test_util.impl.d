test/test_util.ml: Alcotest Array Float Int64 QCheck2 QCheck_alcotest Rng Stats
