test/test_fpbits.ml: Alcotest F32 Float Format Ieee Int32 Int64 List QCheck2 QCheck_alcotest Replaced String
