test/test_vm.ml: Alcotest Array Builder F32 Float Format Int64 Ir List Option Replaced Static String Vm
