test/test_dataflow.ml: Alcotest Array Bfs Builder Config Cost Dataflow Int64 Ir Kernel List Nas_bt Nas_cg Nas_ep Nas_ft Nas_lu Nas_mg Nas_sp Option Patcher Rng Static Vm
