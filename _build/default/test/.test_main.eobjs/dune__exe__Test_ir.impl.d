test/test_ir.ml: Alcotest Array Format Ir List Static String
