test/test_fuzz.ml: Alcotest Array Builder Cancellation Config Float Int64 Ir List Patcher Printf Rng Static String To_single Vm
