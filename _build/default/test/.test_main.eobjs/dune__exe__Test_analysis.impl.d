test/test_analysis.ml: Alcotest Analysis Array Bfs Builder Config Cost Format Static String Vm
