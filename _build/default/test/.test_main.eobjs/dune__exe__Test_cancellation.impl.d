test/test_cancellation.ml: Alcotest Array Builder Cancellation Int64 Ir Kernel List Nas_cg Nas_ft Nas_mg Nas_sp String Vm
