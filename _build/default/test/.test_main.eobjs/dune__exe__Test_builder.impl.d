test/test_builder.ml: Alcotest Array Builder Ir List Static String Vm
