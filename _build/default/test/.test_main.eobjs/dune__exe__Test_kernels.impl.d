test/test_kernels.ml: Alcotest Amg_kernel Array Bfs Config Cost Float Int64 Ir Kernel List Mpi_model Nas_bt Nas_cg Nas_ep Nas_ft Nas_lu Nas_mg Nas_sp Sparse_gen Static Stats String Vm
