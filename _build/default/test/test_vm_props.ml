(* Property tests: the VM's arithmetic must agree bit-for-bit with the host
   (double precision) and with the emulated binary32 (single precision),
   over random operands. *)

let qt ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let finite_float =
  QCheck2.Gen.map
    (fun (frac, exp, sign) ->
      let m = Float.of_int frac /. 1e9 in
      let v = ldexp m exp in
      if sign then -.v else v)
    QCheck2.Gen.(triple (int_bound 1_000_000_000) (int_range (-40) 40) bool)

let pair_gen = QCheck2.Gen.pair finite_float finite_float

let slot k : Ir.mem = { base = None; index = None; scale = 1; offset = k }

let run_binop prec op x y =
  let instrs =
    [|
      { Ir.addr = 0; op = Ir.Fload (0, slot 0) };
      { Ir.addr = 1; op = Ir.Fload (1, slot 1) };
      { Ir.addr = 2; op = Ir.Fbin (prec, op, 2, 0, 1) };
      { Ir.addr = 3; op = Ir.Fstore (slot 2, 2) };
    |]
  in
  let f : Ir.func =
    {
      fid = 0;
      fname = "main";
      module_name = "m";
      n_fargs = 0;
      n_iargs = 0;
      ret_fregs = [||];
      ret_iregs = [||];
      n_fregs = 3;
      n_iregs = 1;
      entry = 0;
      blocks = [| { label = 1; instrs; term = Ret } |];
    }
  in
  let p : Ir.program =
    { funcs = [| f |]; main = 0; fheap_size = 4; iheap_size = 1; modules = [| "m" |] }
  in
  let vm = Vm.create ~smode:Vm.Plain p in
  Vm.set_f vm 0 x;
  Vm.set_f vm 1 y;
  Vm.run vm;
  Vm.get_f vm 2

let same a b =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
  || (Float.is_nan a && Float.is_nan b)

let binop_d name op host =
  qt ("double " ^ name ^ " matches host") pair_gen (fun (x, y) ->
      same (run_binop Ir.D op x y) (host x y))

let binop_s name op hostf32 =
  qt ("single " ^ name ^ " matches F32") pair_gen (fun (x, y) ->
      let x = F32.round x and y = F32.round y in
      same (run_binop Ir.S op x y) (hostf32 x y))

let prop_packed_matches_scalar =
  qt "packed lanes match scalar ops"
    QCheck2.Gen.(pair pair_gen pair_gen)
    (fun ((a0, a1), (b0, b1)) ->
      let t = Builder.create () in
      let base = Builder.alloc_f t 8 in
      let main =
        Builder.func t ~module_:"m" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
            let p = Builder.loadfp b (Builder.at base) in
            let q = Builder.loadfp b (Builder.at (base + 2)) in
            Builder.storefp b (Builder.at (base + 4)) (Builder.fmulp b p q);
            let x = Builder.loadf b (Builder.at base) in
            let y = Builder.loadf b (Builder.at (base + 2)) in
            Builder.storef b (Builder.at (base + 6)) (Builder.fmul b x y);
            let x1 = Builder.loadf b (Builder.at (base + 1)) in
            let y1 = Builder.loadf b (Builder.at (base + 3)) in
            Builder.storef b (Builder.at (base + 7)) (Builder.fmul b x1 y1))
      in
      let prog = Builder.program t ~main in
      let vm = Vm.create prog in
      Vm.write_f vm base [| a0; a1; b0; b1 |];
      Vm.run vm;
      same (Vm.get_f vm (base + 4)) (Vm.get_f vm (base + 6))
      && same (Vm.get_f vm (base + 5)) (Vm.get_f vm (base + 7)))

let prop_addressing =
  qt "indexed addressing = base + i*scale"
    QCheck2.Gen.(pair (int_bound 7) (int_bound 3))
    (fun (i, scale_exp) ->
      let scale = 1 lsl scale_exp in
      if (i * scale) + 1 > 64 then true
      else begin
        let t = Builder.create () in
        let arr = Builder.alloc_f t 64 in
        let out = Builder.alloc_f t 1 in
        let main =
          Builder.func t ~module_:"m" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
              let iv = Builder.iconst b i in
              Builder.storef b (Builder.at out)
                (Builder.loadf b (Builder.idx_scaled arr iv scale)))
        in
        let prog = Builder.program t ~main in
        let vm = Vm.create prog in
        for k = 0 to 63 do
          Vm.set_f vm (arr + k) (float_of_int k)
        done;
        Vm.run vm;
        Vm.get_f vm out = float_of_int (i * scale)
      end)

let suite =
  [
    binop_d "add" Ir.Add ( +. );
    binop_d "sub" Ir.Sub ( -. );
    binop_d "mul" Ir.Mul ( *. );
    binop_d "div" Ir.Div ( /. );
    binop_d "min" Ir.Min Float.min;
    binop_d "max" Ir.Max Float.max;
    binop_s "add" Ir.Add F32.add;
    binop_s "sub" Ir.Sub F32.sub;
    binop_s "mul" Ir.Mul F32.mul;
    binop_s "div" Ir.Div F32.div;
    prop_packed_matches_scalar;
    prop_addressing;
  ]
