(* Tests for the builder eDSL: every control-flow construct and addressing
   mode is lowered to IR that validates and computes the right values. *)

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 0.0)
let checki = Alcotest.check Alcotest.int

(* Build a one-function program, run it, and return heap slot 0..n-1. *)
let run_program ?(fheap_read = 1) build =
  let t = Builder.create () in
  let out = Builder.alloc_f t fheap_read in
  let main = Builder.func t ~module_:"t" "main" ~nf_args:0 ~ni_args:0 (build t out) in
  let prog = Builder.program t ~main in
  let vm = Vm.create prog in
  Vm.run vm;
  (Array.init fheap_read (fun k -> Vm.get_f_value vm (out + k)), prog)

let test_arith () =
  let out, _ =
    run_program (fun _ out b _ _ ->
        let x = Builder.fconst b 7.0 in
        let y = Builder.fconst b 2.0 in
        let r =
          Builder.fadd b
            (Builder.fmul b x y)
            (Builder.fsub b (Builder.fdiv b x y) (Builder.fsqrt b y))
        in
        Builder.storef b (Builder.at out) r)
  in
  checkf "(7*2) + (7/2 - sqrt 2)" ((7.0 *. 2.0) +. ((7.0 /. 2.0) -. sqrt 2.0)) out.(0)

let test_libm_and_unops () =
  let out, _ =
    run_program ~fheap_read:6 (fun _ out b _ _ ->
        let x = Builder.fconst b 0.5 in
        Builder.storef b (Builder.at out) (Builder.fsin b x);
        Builder.storef b (Builder.at (out + 1)) (Builder.fcos b x);
        Builder.storef b (Builder.at (out + 2)) (Builder.fexp b x);
        Builder.storef b (Builder.at (out + 3)) (Builder.flog b x);
        Builder.storef b (Builder.at (out + 4)) (Builder.fneg b x);
        Builder.storef b (Builder.at (out + 5)) (Builder.fabs b (Builder.fneg b x)))
  in
  checkf "sin" (sin 0.5) out.(0);
  checkf "cos" (cos 0.5) out.(1);
  checkf "exp" (exp 0.5) out.(2);
  checkf "log" (log 0.5) out.(3);
  checkf "neg" (-0.5) out.(4);
  checkf "abs" 0.5 out.(5)

let test_if () =
  let out, _ =
    run_program ~fheap_read:2 (fun _ out b _ _ ->
        let x = Builder.fconst b 1.0 in
        let y = Builder.fconst b 2.0 in
        let r = Builder.freshf b in
        Builder.if_ b (Builder.flt b x y)
          (fun () -> Builder.setf b r (Builder.fconst b 10.0))
          (fun () -> Builder.setf b r (Builder.fconst b 20.0));
        Builder.storef b (Builder.at out) r;
        Builder.if_ b (Builder.fgt b x y)
          (fun () -> Builder.setf b r (Builder.fconst b 30.0))
          (fun () -> Builder.setf b r (Builder.fconst b 40.0));
        Builder.storef b (Builder.at (out + 1)) r)
  in
  checkf "then branch" 10.0 out.(0);
  checkf "else branch" 40.0 out.(1)

let test_while () =
  (* sum of 1..10 via a while loop *)
  let out, _ =
    run_program (fun _ out b _ _ ->
        let i = Builder.freshi b in
        Builder.seti b i (Builder.iconst b 1);
        let acc = Builder.freshf b in
        Builder.setf b acc (Builder.fconst b 0.0);
        let eleven = Builder.iconst b 11 in
        Builder.while_ b
          (fun () -> Builder.ilt b i eleven)
          (fun () ->
            Builder.setf b acc (Builder.fadd b acc (Builder.i2f b i));
            Builder.seti b i (Builder.iaddc b i 1));
        Builder.storef b (Builder.at out) acc)
  in
  checkf "sum 1..10" 55.0 out.(0)

let test_for_and_for_down () =
  let out, _ =
    run_program ~fheap_read:2 (fun _ out b _ _ ->
        let acc = Builder.freshf b in
        Builder.setf b acc (Builder.fconst b 0.0);
        Builder.for_range b 0 5 (fun i ->
            Builder.setf b acc (Builder.fadd b acc (Builder.i2f b i)));
        Builder.storef b (Builder.at out) acc;
        (* descending: record first index seen *)
        let first = Builder.freshf b in
        Builder.setf b first (Builder.fconst b (-1.0));
        let seen = Builder.freshi b in
        Builder.seti b seen (Builder.iconst b 0);
        Builder.for_down b (Builder.iconst b 5) (Builder.iconst b 0) (fun i ->
            Builder.when_ b (Builder.ieq b seen (Builder.iconst b 0)) (fun () ->
                Builder.setf b first (Builder.i2f b i);
                Builder.seti b seen (Builder.iconst b 1)));
        Builder.storef b (Builder.at (out + 1)) first)
  in
  checkf "0+1+2+3+4" 10.0 out.(0);
  checkf "for_down starts at hi-1" 4.0 out.(1)

let test_int_ops () =
  let out, _ =
    run_program ~fheap_read:8 (fun _ out b _ _ ->
        let a = Builder.iconst b 13 in
        let c = Builder.iconst b 5 in
        let put k v = Builder.storef b (Builder.at (out + k)) (Builder.i2f b v) in
        put 0 (Builder.iadd b a c);
        put 1 (Builder.isub b a c);
        put 2 (Builder.imul b a c);
        put 3 (Builder.idiv b a c);
        put 4 (Builder.irem b a c);
        put 5 (Builder.iand b a c);
        put 6 (Builder.ishl b c (Builder.iconst b 2));
        put 7 (Builder.ixor b a c))
  in
  checkf "add" 18.0 out.(0);
  checkf "sub" 8.0 out.(1);
  checkf "mul" 65.0 out.(2);
  checkf "div" 2.0 out.(3);
  checkf "rem" 3.0 out.(4);
  checkf "and" 5.0 out.(5);
  checkf "shl" 20.0 out.(6);
  checkf "xor" 8.0 out.(7)

let test_cmp_ops () =
  let out, _ =
    run_program ~fheap_read:6 (fun _ out b _ _ ->
        let x = Builder.fconst b 1.0 in
        let y = Builder.fconst b 2.0 in
        let put k v = Builder.storef b (Builder.at (out + k)) (Builder.i2f b v) in
        put 0 (Builder.feq b x x);
        put 1 (Builder.fne b x y);
        put 2 (Builder.fle b x y);
        put 3 (Builder.fge b x y);
        put 4 (Builder.ile b (Builder.iconst b 3) (Builder.iconst b 3));
        put 5 (Builder.igt b (Builder.iconst b 3) (Builder.iconst b 4)))
  in
  Alcotest.(check (list (float 0.0)))
    "comparison results" [ 1.0; 1.0; 1.0; 0.0; 1.0; 0.0 ] (Array.to_list out)

let test_memory_addressing () =
  let t = Builder.create () in
  let arr = Builder.alloc_f t 8 in
  let iarr = Builder.alloc_i t 4 in
  let out = Builder.alloc_f t 3 in
  let main =
    Builder.func t ~module_:"t" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        (* fill arr.(i) = i*1.5 *)
        Builder.for_range b 0 8 (fun i ->
            Builder.storef b (Builder.idx arr i) (Builder.fmul b (Builder.i2f b i) (Builder.fconst b 1.5)));
        (* int heap roundtrip *)
        Builder.storei b (Builder.at iarr) (Builder.iconst b 3);
        let k = Builder.loadi b (Builder.at iarr) in
        (* static, indexed, scaled and dynamic addressing must agree *)
        Builder.storef b (Builder.at out) (Builder.loadf b (Builder.at (arr + 3)));
        Builder.storef b (Builder.at (out + 1)) (Builder.loadf b (Builder.idx arr k));
        let base = Builder.iconst b arr in
        Builder.storef b (Builder.at (out + 2))
          (Builder.loadf b (Builder.dyn_off base 3)))
  in
  let prog = Builder.program t ~main in
  let vm = Vm.create prog in
  Vm.run vm;
  checkf "static" 4.5 (Vm.get_f_value vm out);
  checkf "indexed" 4.5 (Vm.get_f_value vm (out + 1));
  checkf "dynamic" 4.5 (Vm.get_f_value vm (out + 2))

let test_scaled_addressing () =
  let t = Builder.create () in
  let arr = Builder.alloc_f t 16 in
  let out = Builder.alloc_f t 1 in
  let main =
    Builder.func t ~module_:"t" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        Builder.for_range b 0 16 (fun i ->
            Builder.storef b (Builder.idx arr i) (Builder.i2f b i));
        let two = Builder.iconst b 2 in
        Builder.storef b (Builder.at out)
          (Builder.loadf b (Builder.idx_scaled arr two 4)))
  in
  let prog = Builder.program t ~main in
  let vm = Vm.create prog in
  Vm.run vm;
  checkf "scale 4, index 2 -> slot 8" 8.0 (Vm.get_f_value vm out)

let test_calls_and_returns () =
  let t = Builder.create () in
  let out = Builder.alloc_f t 2 in
  let hypot2 =
    Builder.func t ~module_:"t" "hypot2" ~nf_args:2 ~ni_args:0 (fun b fa _ ->
        let s = Builder.fadd b (Builder.fmul b fa.(0) fa.(0)) (Builder.fmul b fa.(1) fa.(1)) in
        Builder.ret b ~f:[ Builder.fsqrt b s ] ())
  in
  let divmod =
    Builder.func t ~module_:"t" "divmod" ~nf_args:0 ~ni_args:2 (fun b _ ia ->
        Builder.ret b ~i:[ Builder.idiv b ia.(0) ia.(1); Builder.irem b ia.(0) ia.(1) ] ())
  in
  let main =
    Builder.func t ~module_:"t" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let f, _ =
          Builder.call b hypot2 ~fargs:[ Builder.fconst b 3.0; Builder.fconst b 4.0 ] ~iargs:[]
        in
        Builder.storef b (Builder.at out) f.(0);
        let _, i =
          Builder.call b divmod ~fargs:[] ~iargs:[ Builder.iconst b 17; Builder.iconst b 5 ]
        in
        Builder.storef b (Builder.at (out + 1))
          (Builder.fadd b (Builder.i2f b i.(0)) (Builder.i2f b i.(1))))
  in
  let prog = Builder.program t ~main in
  let vm = Vm.create prog in
  Vm.run vm;
  checkf "hypot 3 4" 5.0 (Vm.get_f_value vm out);
  checkf "17/5 + 17 mod 5" 5.0 (Vm.get_f_value vm (out + 1))

let test_early_ret () =
  let t = Builder.create () in
  let out = Builder.alloc_f t 1 in
  let sign =
    Builder.func t ~module_:"t" "sign" ~nf_args:1 ~ni_args:0 (fun b fa _ ->
        let zero = Builder.fconst b 0.0 in
        Builder.when_ b (Builder.flt b fa.(0) zero) (fun () ->
            Builder.ret b ~f:[ Builder.fconst b (-1.0) ] ());
        Builder.ret b ~f:[ Builder.fconst b 1.0 ] ())
  in
  let main =
    Builder.func t ~module_:"t" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let r1, _ = Builder.call b sign ~fargs:[ Builder.fconst b (-5.0) ] ~iargs:[] in
        let r2, _ = Builder.call b sign ~fargs:[ Builder.fconst b 5.0 ] ~iargs:[] in
        Builder.storef b (Builder.at out) (Builder.fsub b r1.(0) r2.(0)))
  in
  let prog = Builder.program t ~main in
  let vm = Vm.create prog in
  Vm.run vm;
  checkf "sign(-5) - sign(5)" (-2.0) (Vm.get_f_value vm out)

let test_call_arity_mismatch () =
  let t = Builder.create () in
  let f =
    Builder.func t ~module_:"t" "f" ~nf_args:1 ~ni_args:0 (fun b fa _ ->
        Builder.ret b ~f:[ fa.(0) ] ())
  in
  checkb "raises" true
    (try
       let _ =
         Builder.func t ~module_:"t" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
             ignore (Builder.call b f ~fargs:[] ~iargs:[]))
       in
       false
     with Invalid_argument _ -> true)

let test_programs_validate () =
  (* every emitted construct yields a valid program *)
  let _, prog =
    run_program (fun _ out b _ _ ->
        Builder.for_range b 0 3 (fun i ->
            Builder.when_ b (Builder.ieq b i (Builder.iconst b 1)) (fun () ->
                Builder.storef b (Builder.at out) (Builder.i2f b i))))
  in
  match Ir.validate prog with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es)

let test_addresses_sequential () =
  let _, prog =
    run_program (fun _ out b _ _ ->
        Builder.storef b (Builder.at out) (Builder.fconst b 1.0))
  in
  let addrs = ref [] in
  Array.iter
    (fun (f : Ir.func) ->
      Array.iter
        (fun (blk : Ir.block) ->
          Array.iter (fun (i : Ir.instr) -> addrs := i.Ir.addr :: !addrs) blk.Ir.instrs)
        f.Ir.blocks)
    prog.Ir.funcs;
  let sorted = List.sort compare !addrs in
  checki "dense from zero" 0 (List.hd sorted);
  checki "count matches" (List.length sorted) (Static.insn_count prog)

let suite =
  [
    ("arithmetic", `Quick, test_arith);
    ("libm and unary ops", `Quick, test_libm_and_unops);
    ("if/else", `Quick, test_if);
    ("while loop", `Quick, test_while);
    ("for and for_down", `Quick, test_for_and_for_down);
    ("integer ops", `Quick, test_int_ops);
    ("comparisons", `Quick, test_cmp_ops);
    ("memory addressing", `Quick, test_memory_addressing);
    ("scaled addressing", `Quick, test_scaled_addressing);
    ("calls and returns", `Quick, test_calls_and_returns);
    ("early return", `Quick, test_early_ret);
    ("call arity mismatch", `Quick, test_call_arity_mismatch);
    ("programs validate", `Quick, test_programs_validate);
    ("addresses dense", `Quick, test_addresses_sequential);
  ]
