(* Tests for the dynamic cancellation detector (paper §4.4). *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v)) a b

(* out.(0) = (a + b) + c with catastrophic cancellation when b = -a *)
let cancel_program a b c =
  let t = Builder.create () in
  let out = Builder.alloc_f t 1 in
  let main =
    Builder.func t ~module_:"m" "main" ~nf_args:0 ~ni_args:0 (fun bd _ _ ->
        let va = Builder.fconst bd a in
        let vb = Builder.fconst bd b in
        let vc = Builder.fconst bd c in
        let s = Builder.fadd bd va vb in
        Builder.storef bd (Builder.at out) (Builder.fadd bd s vc))
  in
  (Builder.program t ~main, out)

let run_instrumented ?threshold_bits prog =
  let instr, layout = Cancellation.instrument ?threshold_bits prog in
  let vm = Vm.create instr in
  Vm.run vm;
  (layout, vm)

let test_detects_catastrophic () =
  let prog, _ = cancel_program 1.0 (-1.0 +. 1e-14) 2.0 in
  let layout, vm = run_instrumented prog in
  let sites = Cancellation.read_sites layout vm in
  checki "two add sites" 2 (List.length sites);
  let first = List.hd sites in
  checki "executed once" 1 first.Cancellation.executions;
  checki "cancelled" 1 first.Cancellation.cancellations;
  checkb "large drop" true (first.Cancellation.total_bits > 40)

let test_benign_not_flagged () =
  let prog, _ = cancel_program 1.0 2.0 3.0 in
  let layout, vm = run_instrumented prog in
  List.iter
    (fun s -> checki "no cancellation" 0 s.Cancellation.cancellations)
    (Cancellation.read_sites layout vm)

let test_threshold () =
  (* a ~4-bit cancellation is seen at threshold 3 but not at 10 *)
  let prog, _ = cancel_program 1.0 (-0.9375) 1.0 in
  let layout10, vm10 = run_instrumented ~threshold_bits:10 prog in
  let layout3, vm3 = run_instrumented ~threshold_bits:3 prog in
  let cancels layout vm =
    List.fold_left (fun acc s -> acc + s.Cancellation.cancellations) 0
      (Cancellation.read_sites layout vm)
  in
  checki "missed at 10 bits" 0 (cancels layout10 vm10);
  checkb "caught at 3 bits" true (cancels layout3 vm3 > 0)

let test_preserves_results () =
  List.iter
    (fun k ->
      let native, _ = Kernel.run_native k in
      let instr, _ = Cancellation.instrument k.Kernel.program in
      let vm = Vm.create instr in
      k.Kernel.setup vm;
      Vm.run vm;
      if not (bits_equal native (k.Kernel.output vm)) then
        Alcotest.failf "%s: detector changed the results" k.Kernel.name)
    [ Nas_cg.make Kernel.W; Nas_ft.make Kernel.W; Nas_sp.make Kernel.W ]

let test_cg_residual_cancels () =
  (* the known hot spot: CG's final residual subtraction x - A z *)
  let k = Nas_cg.make Kernel.W in
  let instr, layout = Cancellation.instrument k.Kernel.program in
  let vm = Vm.create instr in
  k.Kernel.setup vm;
  Vm.run vm;
  let worst =
    Cancellation.read_sites layout vm
    |> List.sort (fun a b -> compare b.Cancellation.total_bits a.Cancellation.total_bits)
    |> List.hd
  in
  checkb "substantial cancellation found" true (worst.Cancellation.cancellations > 100);
  checkb "is a subtraction" true
    (String.length worst.Cancellation.disasm >= 5
    && String.sub worst.Cancellation.disasm 0 5 = "subsd")

let test_report_renders () =
  let prog, _ = cancel_program 1.0 (-1.0 +. 1e-14) 2.0 in
  let layout, vm = run_instrumented prog in
  let s = Cancellation.report layout vm in
  checkb "mentions threshold" true (String.length s > 0)

let test_validates () =
  let k = Nas_mg.make Kernel.W in
  let instr, _ = Cancellation.instrument k.Kernel.program in
  match Ir.validate instr with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es)

let suite =
  [
    ("detects catastrophic cancellation", `Quick, test_detects_catastrophic);
    ("benign additions not flagged", `Quick, test_benign_not_flagged);
    ("threshold respected", `Quick, test_threshold);
    ("preserves results bit-for-bit", `Quick, test_preserves_results);
    ("cg residual cancels", `Quick, test_cg_residual_cancels);
    ("report renders", `Quick, test_report_renders);
    ("instrumented program validates", `Quick, test_validates);
  ]
