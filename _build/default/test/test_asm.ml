(* Tests for the assembler: listing round-trips, hand-written assembly, and
   error reporting. *)

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 0.0)

let roundtrip_exact name prog =
  let text = Format.asprintf "%a" Ir.pp_program prog in
  match Asm.parse text with
  | Error e -> Alcotest.failf "%s: parse error: %s" name e
  | Ok prog2 ->
      let text2 = Format.asprintf "%a" Ir.pp_program prog2 in
      if text <> text2 then Alcotest.failf "%s: round trip differs" name

let test_roundtrip_kernels () =
  List.iter
    (fun k -> roundtrip_exact k.Kernel.name k.Kernel.program)
    [
      Nas_ep.make Kernel.W;
      Nas_cg.make Kernel.W;
      Nas_ft.make Kernel.W;
      Nas_mg.make Kernel.W;
      Nas_bt.make Kernel.W;
      Nas_lu.make Kernel.W;
      Nas_sp.make Kernel.W;
    ]

let test_roundtrip_patched () =
  let k = Nas_cg.make Kernel.W in
  let cfg = Config.set_module Config.empty "cg" Config.Single in
  roundtrip_exact "cg patched" (Patcher.patch k.Kernel.program cfg);
  roundtrip_exact "cg patched optimized" (Patcher.patch ~dataflow:true k.Kernel.program cfg)

let test_roundtrip_instrumented () =
  let k = Nas_lu.make Kernel.W in
  roundtrip_exact "lu cancellation" (fst (Cancellation.instrument k.Kernel.program))

let test_roundtrip_superlu () =
  let s = Slu.create ~n:60 ~seed:3 () in
  roundtrip_exact "superlu" s.Slu.program

let test_semantics_preserved () =
  (* the reassembled binary computes the same results *)
  let k = Nas_sp.make Kernel.W in
  let text = Format.asprintf "%a" Ir.pp_program k.Kernel.program in
  let prog2 = Asm.parse_exn text in
  let native, _ = Kernel.run_native k in
  let vm = Vm.create prog2 in
  k.Kernel.setup vm;
  Vm.run vm;
  let out = k.Kernel.output vm in
  checkb "bit-for-bit" true
    (Array.for_all2 (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b) native out)

let test_hand_written () =
  (* a small program written directly in the listing syntax *)
  let text =
    {|; program main=main fheap=4 iheap=1
demo:main()  ; fid=0 fargs=0 iargs=0 frets=[] irets=[] fregs=4 iregs=1
.B0 (label 1) <entry>:
  0x000000  movsd.imm $0x1.8p+1 -> f0
  0x000001  movsd.imm $0x1p-1 -> f1
  0x000002  addsd f0, f1 -> f2
  0x000003  sqrtsd f2 -> f3
  0x000004  movsd.st f3 -> [0]
          ret
|}
  in
  let prog = Asm.parse_exn text in
  let vm = Vm.create prog in
  Vm.run vm;
  checkf "sqrt(3 + 0.5)" (sqrt 3.5) (Vm.get_f_value vm 0)

let test_hand_written_control_flow () =
  let text =
    {|; program main=main fheap=2 iheap=1
demo:abs_diff()  ; fid=0 fargs=2 iargs=0 frets=[f2] irets=[] fregs=3 iregs=1
.B0 (label 1) <entry>:
  0x000000  cmpsd.lt f0, f1 -> i0
          br i0 ? .B1 : .B2
.B1 (label 2):
  0x000001  subsd f1, f0 -> f2
          jmp .B3
.B2 (label 3):
  0x000002  subsd f0, f1 -> f2
          jmp .B3
.B3 (label 4):
          ret
demo:main()  ; fid=1 fargs=0 iargs=0 frets=[] irets=[] fregs=3 iregs=1
.B0 (label 5) <entry>:
  0x000003  movsd.imm $0x1p+0 -> f0
  0x000004  movsd.imm $0x1.8p+1 -> f1
  0x000005  call @0 (f0, f1) -> (f2)
  0x000006  movsd.st f2 -> [0]
          ret
|}
  in
  let prog = Asm.parse_exn text in
  let vm = Vm.create prog in
  Vm.run vm;
  checkf "|1 - 3| = 2" 2.0 (Vm.get_f_value vm 0)

let expect_error text =
  match Asm.parse text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ()

let test_errors () =
  expect_error "garbage that is not a listing";
  (* unknown mnemonic *)
  expect_error
    {|; program main=main fheap=1 iheap=1
m:main()  ; fid=0 fargs=0 iargs=0 frets=[] irets=[] fregs=1 iregs=1
.B0 (label 1) <entry>:
  0x000000  frobnicate f0 -> f0
          ret
|};
  (* instruction outside a block *)
  expect_error
    {|; program main=main fheap=1 iheap=1
m:main()  ; fid=0 fargs=0 iargs=0 frets=[] irets=[] fregs=1 iregs=1
  0x000000  movsd.imm $0x1p+0 -> f0
|};
  (* validation failure: register out of range *)
  expect_error
    {|; program main=main fheap=1 iheap=1
m:main()  ; fid=0 fargs=0 iargs=0 frets=[] irets=[] fregs=1 iregs=1
.B0 (label 1) <entry>:
  0x000000  movsd.imm $0x1p+0 -> f9
          ret
|};
  (* missing main *)
  expect_error
    {|; program main=nosuch fheap=1 iheap=1
m:main()  ; fid=0 fargs=0 iargs=0 frets=[] irets=[] fregs=1 iregs=1
.B0 (label 1) <entry>:
          ret
|}

let test_fuzz_roundtrip () =
  (* reuse the fuzzer's generator through the builder: random programs
     round-trip exactly *)
  let rng = Rng.create 31337 in
  for _ = 1 to 10 do
    let t = Builder.create () in
    let base = Builder.alloc_f t 8 in
    let main =
      Builder.func t ~module_:"r" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
          let x = Builder.fconst b (Rng.uniform rng) in
          let y = Builder.fconst b (Rng.uniform rng) in
          Builder.for_range b 0 (1 + Rng.int rng 5) (fun i ->
              let v = Builder.fadd b x (Builder.fmul b y (Builder.i2f b i)) in
              Builder.when_ b
                (Builder.fgt b v x)
                (fun () -> Builder.storef b (Builder.idx base i) v)))
    in
    roundtrip_exact "random" (Builder.program t ~main)
  done

let test_parser_total =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"parser is total on garbage"
       QCheck2.Gen.(string_size ~gen:(char_range '\x20' '\x7e') (int_bound 200))
       (fun s ->
         match Asm.parse s with Ok _ -> true | Error _ -> true))

let test_parser_total_mutations =
  (* mutate a valid listing and require Ok or Error, never an exception *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"parser is total on mutated listings"
       QCheck2.Gen.(pair small_nat (char_range '\x20' '\x7e'))
       (fun (pos, c) ->
         let k = Nas_sp.make Kernel.W in
         let text = Format.asprintf "%a" Ir.pp_program k.Kernel.program in
         let b = Bytes.of_string text in
         Bytes.set b (pos mod Bytes.length b) c;
         match Asm.parse (Bytes.to_string b) with Ok _ -> true | Error _ -> true))

let suite =
  [
    test_parser_total;
    test_parser_total_mutations;
    ("roundtrip: all kernels", `Quick, test_roundtrip_kernels);
    ("roundtrip: patched binaries", `Quick, test_roundtrip_patched);
    ("roundtrip: cancellation-instrumented", `Quick, test_roundtrip_instrumented);
    ("roundtrip: superlu", `Quick, test_roundtrip_superlu);
    ("semantics preserved", `Quick, test_semantics_preserved);
    ("hand-written assembly", `Quick, test_hand_written);
    ("hand-written control flow + call", `Quick, test_hand_written_control_flow);
    ("parse errors", `Quick, test_errors);
    ("roundtrip: random programs", `Quick, test_fuzz_roundtrip);
  ]
