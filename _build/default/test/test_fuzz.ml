(* Differential fuzzing of the whole toolchain: random binaries are
   generated with the builder, then every transformation is checked against
   its equivalence oracle:

   - all-double instrumentation   == native            (bit-for-bit)
   - all-single instrumentation   == manual conversion (bit-for-bit)
   - data-flow-optimized patching == plain patching    (bit-for-bit, any config)
   - cancellation instrumentation == native            (bit-for-bit)

   The checked VM doubles as a soundness oracle: any missed conversion
   traps instead of silently mis-rounding. *)

let n_slots = 16

(* A random function body: straight-line FP/int code with occasional
   branches and loops, reading and writing the shared heap. *)
let random_body rng depth b (regs : Builder.fv list ref) =
  let pick_reg () =
    let l = !regs in
    List.nth l (Rng.int rng (List.length l))
  in
  let rnd_const () =
    match Rng.int rng 4 with
    | 0 -> Builder.fconst b (Rng.uniform rng -. 0.5)
    | 1 -> Builder.fconst b (float_of_int (Rng.int rng 16))
    | 2 -> Builder.fconst b (0.1 *. float_of_int (1 + Rng.int rng 9))
    | _ -> Builder.fconst b (Rng.uniform rng *. 100.0)
  in
  let n_ops = 8 + Rng.int rng 20 in
  for _ = 1 to n_ops do
    let v =
      match Rng.int rng 12 with
      | 0 -> Builder.fadd b (pick_reg ()) (pick_reg ())
      | 1 -> Builder.fsub b (pick_reg ()) (pick_reg ())
      | 2 -> Builder.fmul b (pick_reg ()) (pick_reg ())
      | 3 ->
          (* keep divisors away from zero *)
          let d = Builder.fadd b (Builder.fabs b (pick_reg ())) (Builder.fconst b 1.0) in
          Builder.fdiv b (pick_reg ()) d
      | 4 -> Builder.fsqrt b (Builder.fabs b (pick_reg ()))
      | 5 -> Builder.fneg b (pick_reg ())
      | 6 -> Builder.fmin b (pick_reg ()) (pick_reg ())
      | 7 -> Builder.fmax b (pick_reg ()) (pick_reg ())
      | 8 -> rnd_const ()
      | 9 -> Builder.loadf b (Builder.at (Rng.int rng n_slots))
      | 10 ->
          (* packed detour: pack, operate, extract a lane *)
          let p = Builder.fpair b (pick_reg ()) (pick_reg ()) in
          let q = Builder.fpair b (pick_reg ()) (rnd_const ()) in
          let r = if Rng.int rng 2 = 0 then Builder.faddp b p q else Builder.fmulp b p q in
          Builder.flane b r (Rng.int rng 2)
      | _ ->
          let x = Builder.fadd b (Builder.fabs b (pick_reg ())) (Builder.fconst b 0.5) in
          Builder.flog b x
    in
    regs := v :: !regs;
    if Rng.int rng 3 = 0 then Builder.storef b (Builder.at (Rng.int rng n_slots)) v
  done;
  if depth > 0 && Rng.int rng 2 = 0 then begin
    let c = Builder.flt b (pick_reg ()) (pick_reg ()) in
    let save = !regs in
    Builder.if_ b c
      (fun () ->
        let r = ref save in
        let inner_ops = 3 + Rng.int rng 5 in
        for _ = 1 to inner_ops do
          let v = Builder.fadd b (List.nth save (Rng.int rng (List.length save))) (rnd_const ()) in
          r := v :: !r;
          if Rng.int rng 2 = 0 then Builder.storef b (Builder.at (Rng.int rng n_slots)) v
        done)
      (fun () ->
        let v = Builder.fmul b (List.nth save 0) (rnd_const ()) in
        Builder.storef b (Builder.at (Rng.int rng n_slots)) v)
  end;
  if depth > 0 && Rng.int rng 3 = 0 then begin
    let save = !regs in
    Builder.for_range b 0 (1 + Rng.int rng 6) (fun i ->
        let v =
          Builder.fadd b (List.nth save (Rng.int rng (List.length save))) (Builder.i2f b i)
        in
        Builder.storef b (Builder.idx 0 (Builder.irem b (Builder.f2i b (Builder.fabs b v)) (Builder.iconst b n_slots))) v)
  end

let random_program seed =
  let rng = Rng.create seed in
  let t = Builder.create () in
  let _heap = Builder.alloc_f t n_slots in
  let helper =
    Builder.func t ~module_:"fuzz" "helper" ~nf_args:2 ~ni_args:0 (fun b fa _ ->
        let regs = ref [ fa.(0); fa.(1) ] in
        random_body rng 0 b regs;
        Builder.ret b ~f:[ List.hd !regs ] ())
  in
  let main =
    Builder.func t ~module_:"fuzz" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let regs = ref [ Builder.fconst b 1.0; Builder.fconst b 0.25 ] in
        random_body rng 1 b regs;
        if Rng.int rng 2 = 0 then begin
          let l = !regs in
          let x = List.nth l (Rng.int rng (List.length l)) in
          let y = List.nth l (Rng.int rng (List.length l)) in
          let r, _ = Builder.call b helper ~fargs:[ x; y ] ~iargs:[] in
          Builder.storef b (Builder.at (Rng.int rng n_slots)) r.(0)
        end;
        random_body rng 1 b regs)
  in
  let prog = Builder.program t ~main in
  let input = Array.init n_slots (fun i -> Rng.uniform rng +. (0.01 *. float_of_int i)) in
  (prog, input)

let run ?(checked = true) ?(smode = Vm.Flagged) prog input =
  let vm = Vm.create ~checked ~smode prog in
  Vm.write_f vm 0 input;
  match Vm.run vm with
  | () -> Ok (Vm.read_f vm 0 n_slots)
  | exception Vm.Trap (a, r) -> Error (Printf.sprintf "trap@%d: %s" a r)

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun u v ->
         Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v)
         || (Float.is_nan u && Float.is_nan v))
       a b

let outcomes_equal a b =
  match (a, b) with
  | Ok x, Ok y -> bits_equal x y
  | Error _, Error _ -> true
  | _ -> false

let n_programs = 40

let for_each_program f () =
  for seed = 1 to n_programs do
    let prog, input = random_program (seed * 7919) in
    f seed prog input
  done

let test_programs_valid =
  for_each_program (fun seed prog _ ->
      match Ir.validate prog with
      | Ok () -> ()
      | Error es -> Alcotest.failf "seed %d: invalid program: %s" seed (String.concat "; " es))

let test_all_double_identity =
  for_each_program (fun seed prog input ->
      let native = run ~checked:false prog input in
      let patched = Patcher.patch prog Config.empty in
      if not (outcomes_equal native (run patched input)) then
        Alcotest.failf "seed %d: all-double instrumentation diverged" seed)

let test_all_single_vs_manual =
  for_each_program (fun seed prog input ->
      let cfg = Config.set_module Config.empty "fuzz" Config.Single in
      let instrumented = run (Patcher.patch prog cfg) input in
      let manual = run ~smode:Vm.Plain (To_single.convert prog) input in
      if not (outcomes_equal instrumented manual) then
        Alcotest.failf "seed %d: instrumented single <> manual conversion" seed)

let test_dataflow_equivalence =
  for_each_program (fun seed prog input ->
      let rng = Rng.create (seed + 555) in
      for _ = 1 to 3 do
        let cfg =
          Array.fold_left
            (fun acc (info : Static.insn_info) ->
              match Rng.int rng 3 with
              | 0 -> Config.set_insn acc info.Static.addr Config.Single
              | _ -> acc)
            Config.empty (Static.candidates prog)
        in
        let plain = run (Patcher.patch prog cfg) input in
        let opt = run (Patcher.patch ~dataflow:true prog cfg) input in
        if not (outcomes_equal plain opt) then
          Alcotest.failf "seed %d: dataflow-optimized patch diverged" seed
      done)

let test_cancellation_identity =
  for_each_program (fun seed prog input ->
      let native = run ~checked:false prog input in
      let instr, _ = Cancellation.instrument prog in
      if not (outcomes_equal native (run ~checked:false instr input)) then
        Alcotest.failf "seed %d: cancellation detector changed results" seed)

let test_config_roundtrip =
  for_each_program (fun seed prog _ ->
      let rng = Rng.create (seed + 999) in
      let cfg =
        Array.fold_left
          (fun acc (info : Static.insn_info) ->
            match Rng.int rng 4 with
            | 0 -> Config.set_insn acc info.Static.addr Config.Single
            | 1 -> Config.set_insn acc info.Static.addr Config.Ignore
            | _ -> acc)
          Config.empty (Static.candidates prog)
      in
      match Config.parse prog (Config.print prog cfg) with
      | Ok cfg2 ->
          Array.iter
            (fun info ->
              if Config.effective cfg info <> Config.effective cfg2 info then
                Alcotest.failf "seed %d: config roundtrip changed a flag" seed)
            (Static.candidates prog)
      | Error e -> Alcotest.failf "seed %d: %s" seed e)

let suite =
  [
    ("random programs validate", `Quick, test_programs_valid);
    ("fuzz: all-double identity", `Quick, test_all_double_identity);
    ("fuzz: all-single vs manual conversion", `Quick, test_all_single_vs_manual);
    ("fuzz: dataflow-optimized equivalence", `Quick, test_dataflow_equivalence);
    ("fuzz: cancellation identity", `Quick, test_cancellation_identity);
    ("fuzz: config roundtrip", `Quick, test_config_roundtrip);
  ]
