(* Tests for the VM: bit-level instruction semantics in both precisions and
   both single-value modes, the checked-mode invariants, traps, counters. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let float_bits =
  Alcotest.testable
    (fun ppf x -> Format.fprintf ppf "%h" x)
    (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))

(* One-block, one-function programs executing [ops] over heap slots. *)
let prog_of_ops ?(n_fregs = 8) ?(n_iregs = 8) ?(fheap = 8) ?(iheap = 8) ops : Ir.program =
  let instrs = Array.of_list (List.mapi (fun i op -> { Ir.addr = i; op }) ops) in
  let f : Ir.func =
    {
      fid = 0;
      fname = "main";
      module_name = "m";
      n_fargs = 0;
      n_iargs = 0;
      ret_fregs = [||];
      ret_iregs = [||];
      n_fregs;
      n_iregs;
      entry = 0;
      blocks = [| { label = 1; instrs; term = Ret } |];
    }
  in
  Ir.validate_exn
    { funcs = [| f |]; main = 0; fheap_size = fheap; iheap_size = iheap; modules = [| "m" |] }

let slot k : Ir.mem = { base = None; index = None; scale = 1; offset = k }

let run ?checked ?smode ?(poke = fun _ -> ()) ops =
  let vm = Vm.create ?checked ?smode (prog_of_ops ops) in
  poke vm;
  Vm.run vm;
  vm

(* load slots 0,1 into f0,f1; apply op into f2; store to slot 2 *)
let binop_harness ?checked ?smode ~x ~y op =
  let vm =
    run ?checked ?smode
      ~poke:(fun vm ->
        Vm.set_f vm 0 x;
        Vm.set_f vm 1 y)
      [ Fload (0, slot 0); Fload (1, slot 1); op; Fstore (slot 2, 2) ]
  in
  Vm.get_f vm 2

let test_fbin_d () =
  let t o = binop_harness ~x:7.5 ~y:2.5 (Ir.Fbin (D, o, 2, 0, 1)) in
  Alcotest.check float_bits "add" 10.0 (t Add);
  Alcotest.check float_bits "sub" 5.0 (t Sub);
  Alcotest.check float_bits "mul" 18.75 (t Mul);
  Alcotest.check float_bits "div" 3.0 (t Div);
  Alcotest.check float_bits "min" 2.5 (t Min);
  Alcotest.check float_bits "max" 7.5 (t Max)

let test_fbin_s_flagged () =
  (* flagged single ops consume and produce replaced encodings *)
  let x = Replaced.downcast 0.1 and y = Replaced.downcast 0.2 in
  let r = binop_harness ~checked:true ~x ~y (Ir.Fbin (S, Add, 2, 0, 1)) in
  checkb "replaced result" true (Replaced.is_replaced r);
  Alcotest.check float_bits "binary32 sum" (F32.add (F32.round 0.1) (F32.round 0.2))
    (Replaced.upcast r)

let test_fbin_s_plain () =
  let x = F32.round 0.1 and y = F32.round 0.2 in
  let r = binop_harness ~checked:true ~smode:Vm.Plain ~x ~y (Ir.Fbin (S, Add, 2, 0, 1)) in
  checkb "plain result" false (Replaced.is_replaced r);
  Alcotest.check float_bits "binary32 sum" (F32.add x y) r

let test_funop_flibm () =
  let t ?smode op =
    let vm =
      run ?smode
        ~poke:(fun vm -> Vm.set_f vm 0 2.25)
        [ Fload (0, slot 0); op; Fstore (slot 2, 1) ]
    in
    Vm.get_f vm 2
  in
  Alcotest.check float_bits "sqrtsd" 1.5 (t (Ir.Funop (D, Sqrt, 1, 0)));
  Alcotest.check float_bits "negsd" (-2.25) (t (Ir.Funop (D, Neg, 1, 0)));
  Alcotest.check float_bits "sinsd" (sin 2.25) (t (Ir.Flibm (D, Sin, 1, 0)));
  Alcotest.check float_bits "logsd" (log 2.25) (t (Ir.Flibm (D, Log, 1, 0)));
  Alcotest.check float_bits "sqrtss plain" 1.5 (t ~smode:Vm.Plain (Ir.Funop (S, Sqrt, 1, 0)))

let test_fcmp () =
  let t ?(x = 1.0) ?(y = 2.0) c =
    let vm =
      run
        ~poke:(fun vm ->
          Vm.set_f vm 0 x;
          Vm.set_f vm 1 y)
        [ Fload (0, slot 0); Fload (1, slot 1); Fcmp (D, c, 0, 0, 1); Istore (slot 0, 0) ]
    in
    Vm.get_i vm 0
  in
  checki "lt" 1 (t Lt);
  checki "gt" 0 (t Gt);
  checki "le" 1 (t Le);
  checki "eq" 0 (t Eq);
  checki "ne" 1 (t Ne);
  checki "eq same" 1 (t ~y:1.0 Eq);
  (* NaN compares false *)
  checki "nan lt" 0 (t ~x:Float.nan Lt);
  checki "nan eq" 0 (t ~x:Float.nan ~y:Float.nan Eq)

let test_fconst_modes () =
  let t ?smode prec =
    let vm = run ?smode [ Fconst (prec, 0, 0.1); Fstore (slot 0, 0) ] in
    Vm.get_f vm 0
  in
  Alcotest.check float_bits "double" 0.1 (t Ir.D);
  checkb "single flagged" true (Replaced.is_replaced (t Ir.S));
  Alcotest.check float_bits "single plain" (F32.round 0.1) (t ~smode:Vm.Plain Ir.S)

let test_cvt () =
  let vm =
    run
      [
        Iconst (0, 7);
        Fcvt_i2f (D, 0, 0);
        Fstore (slot 0, 0);
        Fconst (D, 1, -3.9);
        Fcvt_f2i (D, 1, 1);
        Istore (slot 0, 1);
      ]
  in
  Alcotest.check float_bits "i2f" 7.0 (Vm.get_f vm 0);
  checki "f2i truncates toward zero" (-3) (Vm.get_i vm 0)

let test_mov_preserves_patterns () =
  (* Fmov and Fload/Fstore must move replaced encodings untouched *)
  let r = Replaced.downcast Float.pi in
  let vm =
    run
      ~poke:(fun vm -> Vm.set_f vm 0 r)
      [ Fload (0, slot 0); Fmov (1, 0); Fstore (slot 1, 1) ]
  in
  Alcotest.check float_bits "pattern preserved" r (Vm.get_f vm 1)

let test_int_semantics () =
  let vm =
    run
      [
        Iconst (0, -17);
        Iconst (1, 5);
        Ibin (Idiv, 2, 0, 1);
        Istore (slot 0, 2);
        Ibin (Irem, 3, 0, 1);
        Istore (slot 1, 3);
        Iconst (4, -8);
        Ibin (Ishr, 5, 4, 1);
        Istore (slot 2, 5);
      ]
  in
  checki "div truncates" (-3) (Vm.get_i vm 0);
  checki "rem sign" (-2) (Vm.get_i vm 1);
  checki "asr" (-1) (Vm.get_i vm 2)

let expect_trap ?checked ?smode ?poke ops =
  match run ?checked ?smode ?poke ops with
  | exception Vm.Trap _ -> ()
  | _vm -> Alcotest.fail "expected Vm.Trap"

let test_trap_replaced_into_double () =
  expect_trap ~checked:true
    ~poke:(fun vm -> Vm.set_f vm 0 (Replaced.downcast 1.0))
    [ Fload (0, slot 0); Fconst (D, 1, 1.0); Fbin (D, Add, 2, 0, 1) ]

let test_trap_plain_into_single () =
  expect_trap ~checked:true
    ~poke:(fun vm -> Vm.set_f vm 0 1.0)
    [ Fload (0, slot 0); Fconst (S, 1, 1.0); Fbin (S, Add, 2, 0, 1) ]

let test_trap_replaced_in_plain_binary () =
  expect_trap ~checked:true ~smode:Vm.Plain
    ~poke:(fun vm -> Vm.set_f vm 0 (Replaced.downcast 1.0))
    [ Fload (0, slot 0); Fconst (S, 1, 1.0); Fbin (S, Add, 2, 0, 1) ]

let test_unchecked_propagates_nan () =
  (* without checking, a replaced value reaching a D op poisons it with NaN *)
  let vm =
    run ~checked:false
      ~poke:(fun vm -> Vm.set_f vm 0 (Replaced.downcast 1.0))
      [ Fload (0, slot 0); Fconst (D, 1, 1.0); Fbin (D, Add, 2, 0, 1); Fstore (slot 1, 2) ]
  in
  checkb "NaN result" true (Float.is_nan (Vm.get_f vm 1))

let test_trap_div_zero () =
  expect_trap [ Iconst (0, 1); Iconst (1, 0); Ibin (Idiv, 2, 0, 1) ]

let test_trap_oob () =
  expect_trap [ Iconst (0, 1000); Fconst (D, 0, 1.0); Fstore ({ base = Some 0; index = None; scale = 1; offset = 0 }, 0) ];
  expect_trap [ Iconst (0, -1); Fload (0, { base = Some 0; index = None; scale = 1; offset = 0 }) ]

let test_trap_upcast_plain () =
  expect_trap ~poke:(fun vm -> Vm.set_f vm 0 1.0) [ Fload (0, slot 0); Fupcast (1, 0) ]

let test_snippet_ops () =
  let vm =
    run
      ~poke:(fun vm ->
        Vm.set_f vm 0 Float.pi;
        Vm.set_f vm 1 (Replaced.downcast 2.5))
      [
        Fload (0, slot 0);
        Fload (1, slot 1);
        Ftestflag (0, 0);
        Istore (slot 0, 0);
        Ftestflag (1, 1);
        Istore (slot 1, 1);
        Fdowncast (2, 0);
        Fstore (slot 2, 2);
        Fupcast (3, 1);
        Fstore (slot 3, 3);
      ]
  in
  checki "plain not flagged" 0 (Vm.get_i vm 0);
  checki "replaced flagged" 1 (Vm.get_i vm 1);
  Alcotest.check float_bits "downcast" (Replaced.downcast Float.pi) (Vm.get_f vm 2);
  Alcotest.check float_bits "upcast" 2.5 (Vm.get_f vm 3)

let test_step_limit () =
  (* an infinite loop must hit the Limit guard, not hang *)
  let f : Ir.func =
    {
      fid = 0;
      fname = "main";
      module_name = "m";
      n_fargs = 0;
      n_iargs = 0;
      ret_fregs = [||];
      ret_iregs = [||];
      n_fregs = 1;
      n_iregs = 1;
      entry = 0;
      blocks = [| { label = 1; instrs = [||]; term = Jmp 0 } |];
    }
  in
  let p : Ir.program =
    { funcs = [| f |]; main = 0; fheap_size = 1; iheap_size = 1; modules = [| "m" |] }
  in
  let vm = Vm.create ~max_steps:1000 p in
  checkb "limit raised" true (match Vm.run vm with exception Vm.Limit _ -> true | () -> false)

let test_counters () =
  let vm =
    run [ Fconst (D, 0, 1.0); Fconst (D, 1, 2.0); Fbin (D, Add, 2, 0, 1); Fstore (slot 0, 2) ]
  in
  checki "each once" 1 vm.Vm.counts.(0);
  checki "add once" 1 vm.Vm.counts.(2);
  checki "block once" 1 vm.Vm.bcounts.(1);
  checki "fp ops" 3 (Vm.fp_ops_executed vm)

let test_counters_loop () =
  let t = Builder.create () in
  let out = Builder.alloc_f t 1 in
  let main =
    Builder.func t ~module_:"m" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let acc = Builder.freshf b in
        Builder.setf b acc (Builder.fconst b 0.0);
        Builder.for_range b 0 10 (fun _ ->
            Builder.setf b acc (Builder.fadd b acc (Builder.fconst b 1.0)));
        Builder.storef b (Builder.at out) acc)
  in
  let prog = Builder.program t ~main in
  let vm = Vm.create prog in
  Vm.run vm;
  Alcotest.check float_bits "sum" 10.0 (Vm.get_f_value vm out);
  (* the in-loop add executed 10 times *)
  let add_addr =
    Array.to_list (Static.candidates prog)
    |> List.find_map (fun (i : Static.insn_info) ->
           if String.length i.disasm >= 5 && String.sub i.disasm 0 5 = "addsd" then Some i.addr
           else None)
    |> Option.get
  in
  checki "loop count" 10 vm.Vm.counts.(add_addr)

let test_heap_accessors () =
  let vm = run [] in
  Vm.write_f vm 0 [| 1.0; 2.0; 3.0 |];
  Vm.write_i vm 0 [| 7; 8 |];
  Alcotest.(check (array (float 0.0))) "read_f" [| 1.0; 2.0; 3.0 |] (Vm.read_f vm 0 3);
  checki "get_i" 8 (Vm.get_i vm 1);
  Vm.set_f vm 0 (Replaced.downcast 0.5);
  Alcotest.check float_bits "get_f raw" (Replaced.downcast 0.5) (Vm.get_f vm 0);
  Alcotest.check float_bits "get_f_value coerced" (F32.round 0.5) (Vm.get_f_value vm 0)

let suite =
  [
    ("fbin double", `Quick, test_fbin_d);
    ("fbin single flagged", `Quick, test_fbin_s_flagged);
    ("fbin single plain", `Quick, test_fbin_s_plain);
    ("funop/flibm", `Quick, test_funop_flibm);
    ("fcmp", `Quick, test_fcmp);
    ("fconst modes", `Quick, test_fconst_modes);
    ("conversions", `Quick, test_cvt);
    ("moves preserve patterns", `Quick, test_mov_preserves_patterns);
    ("integer semantics", `Quick, test_int_semantics);
    ("trap: replaced into double", `Quick, test_trap_replaced_into_double);
    ("trap: plain into single", `Quick, test_trap_plain_into_single);
    ("trap: replaced in plain binary", `Quick, test_trap_replaced_in_plain_binary);
    ("unchecked propagates NaN", `Quick, test_unchecked_propagates_nan);
    ("trap: division by zero", `Quick, test_trap_div_zero);
    ("trap: out of bounds", `Quick, test_trap_oob);
    ("trap: upcast of plain", `Quick, test_trap_upcast_plain);
    ("snippet ops", `Quick, test_snippet_ops);
    ("step limit", `Quick, test_step_limit);
    ("counters", `Quick, test_counters);
    ("counters in loops", `Quick, test_counters_loop);
    ("heap accessors", `Quick, test_heap_accessors);
  ]
