(* Tests for the static replaced-value reachability analysis (paper §2.5)
   and its use in the patcher. The checked VM acts as a soundness oracle:
   if the analysis ever removed a needed conversion, the optimized patched
   binary would trap or diverge from the unoptimized one. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v)) a b

let count_snippet_ops (p : Ir.program) =
  let n = ref 0 in
  Array.iter
    (fun (f : Ir.func) ->
      Array.iter
        (fun (b : Ir.block) ->
          Array.iter (fun (i : Ir.instr) -> if Ir.is_snippet_op i.Ir.op then incr n) b.Ir.instrs)
        f.Ir.blocks)
    p.Ir.funcs;
  !n

let test_all_double_removes_all_checks () =
  (* nothing is ever replaced, so no snippet ops survive at all *)
  let k = Nas_cg.make Kernel.W in
  let plain = Patcher.patch k.Kernel.program Config.empty in
  let opt = Patcher.patch ~dataflow:true k.Kernel.program Config.empty in
  checkb "unoptimized has checks" true (count_snippet_ops plain > 0);
  checki "optimized has none" 0 (count_snippet_ops opt);
  let native, _ = Kernel.run_native k in
  let out, _ = Kernel.run_patched ~config:Config.empty { k with Kernel.program = opt } in
  ignore out;
  (* run the optimized program directly *)
  let vm = Vm.create ~checked:true opt in
  k.Kernel.setup vm;
  Vm.run vm;
  checkb "bit-for-bit" true (bits_equal native (k.Kernel.output vm))

let count_testflags (p : Ir.program) =
  let n = ref 0 in
  Array.iter
    (fun (f : Ir.func) ->
      Array.iter
        (fun (b : Ir.block) ->
          Array.iter
            (fun (i : Ir.instr) -> match i.Ir.op with Ftestflag _ -> incr n | _ -> ())
            b.Ir.instrs)
        f.Ir.blocks)
    p.Ir.funcs;
  !n

let test_all_single_fewer_tests () =
  (* everything replaced: register-to-register flows lose their tests;
     only memory-sourced operands (the Either heap cell) keep diamonds *)
  let k = Nas_sp.make Kernel.W in
  let cfg = Config.set_module Config.empty "sp" Config.Single in
  let plain = Patcher.patch k.Kernel.program cfg in
  let opt = Patcher.patch ~dataflow:true k.Kernel.program cfg in
  let np = count_testflags plain and no = count_testflags opt in
  checkb "strictly fewer runtime tests" true (no < np)

let equivalent_under k cfg =
  let plain = Patcher.patch k.Kernel.program cfg in
  let opt = Patcher.patch ~dataflow:true k.Kernel.program cfg in
  let run p =
    let vm = Vm.create ~checked:true p in
    k.Kernel.setup vm;
    match Vm.run vm with
    | () -> Ok (k.Kernel.output vm)
    | exception Vm.Trap (_, reason) -> Error reason
  in
  (* equivalent outcomes: same outputs, or both crash (e.g. a replaced
     value reaching an Ignore-flagged routine traps either way) *)
  match (run plain, run opt) with
  | Ok a, Ok b -> bits_equal a b
  | Error _, Error _ -> true
  | _ -> false

let test_equivalence_all_kernels_single () =
  List.iter
    (fun k ->
      let tree = Static.tree k.Kernel.program in
      let cfg =
        List.fold_left (fun acc n -> Bfs.force_single ~base:k.Kernel.hints acc n)
          k.Kernel.hints tree
      in
      if not (equivalent_under k cfg) then
        Alcotest.failf "%s: optimized patch diverges (all-single)" k.Kernel.name)
    [
      Nas_ep.make Kernel.W;
      Nas_cg.make Kernel.W;
      Nas_ft.make Kernel.W;
      Nas_mg.make Kernel.W;
      Nas_bt.make Kernel.W;
      Nas_lu.make Kernel.W;
      Nas_sp.make Kernel.W;
    ]

let test_equivalence_mixed_random () =
  (* random mixed configurations over CG: optimized == unoptimized, checked *)
  let k = Nas_cg.make Kernel.W in
  let cands = Static.candidates k.Kernel.program in
  let rng = Rng.create 4242 in
  for _ = 1 to 12 do
    let cfg =
      Array.fold_left
        (fun acc (info : Static.insn_info) ->
          if Rng.int rng 2 = 0 then Config.set_insn acc info.Static.addr Config.Single
          else acc)
        Config.empty cands
    in
    if not (equivalent_under k cfg) then Alcotest.fail "optimized patch diverges (random mixed)"
  done

let test_equivalence_searched_config () =
  let k = Nas_mg.make Kernel.W in
  let res = Bfs.search (Kernel.target k) in
  checkb "searched config equivalent" true (equivalent_under k res.Bfs.final)

let test_states_small_program () =
  let t = Builder.create () in
  let out = Builder.alloc_f t 2 in
  let main =
    Builder.func t ~module_:"m" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let a = Builder.fconst b 1.5 in
        (* insn 1: single; its output is definitely replaced *)
        let c = Builder.fmul b a a in
        (* insn 2: double; consumes the replaced c *)
        let d = Builder.fadd b c a in
        Builder.storef b (Builder.at out) d;
        Builder.storef b (Builder.at (out + 1)) c)
  in
  let prog = Builder.program t ~main in
  let cands = Static.candidates prog in
  (* flag the mul single, rest double *)
  let cfg = Config.set_insn Config.empty cands.(1).Static.addr Config.Single in
  let df = Dataflow.analyze prog cfg in
  (* the add's first operand (the mul's output) is definitely replaced *)
  let add = cands.(2) in
  let add_op =
    match
      Array.to_list prog.Ir.funcs |> List.concat_map (fun (f : Ir.func) ->
          Array.to_list f.Ir.blocks
          |> List.concat_map (fun (b : Ir.block) -> Array.to_list b.Ir.instrs))
      |> List.find (fun (i : Ir.instr) -> i.Ir.addr = add.Static.addr)
    with
    | { Ir.op = Fbin (_, _, _, a, b); _ } -> (a, b)
    | _ -> Alcotest.fail "expected fbin"
  in
  let ra, rb = add_op in
  checkb "replaced operand" true (Dataflow.operand_state df ~addr:add.Static.addr ~reg:ra = Dataflow.Repl);
  (* the second operand is the const's output: after the single mul's
     in-place conversion, the const register was converted too *)
  checkb "converted-in-place operand" true
    (Dataflow.operand_state df ~addr:add.Static.addr ~reg:rb = Dataflow.Repl);
  let removable, total = Dataflow.checks_removable df prog cfg in
  checkb "some checks removable" true (removable > 0 && removable <= total)

let test_memory_taints () =
  (* a replaced value stored to the heap makes subsequent loads Either *)
  let t = Builder.create () in
  let out = Builder.alloc_f t 2 in
  let main =
    Builder.func t ~module_:"m" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let a = Builder.fconst b 0.5 in
        let c = Builder.fmul b a a in
        Builder.storef b (Builder.at out) c;
        let l = Builder.loadf b (Builder.at out) in
        let d = Builder.fadd b l a in
        Builder.storef b (Builder.at (out + 1)) d)
  in
  let prog = Builder.program t ~main in
  let cands = Static.candidates prog in
  let cfg = Config.set_insn Config.empty cands.(1).Static.addr Config.Single in
  let df = Dataflow.analyze prog cfg in
  let add = cands.(2) in
  let load_reg =
    Array.to_list prog.Ir.funcs |> List.concat_map (fun (f : Ir.func) ->
        Array.to_list f.Ir.blocks
        |> List.concat_map (fun (b : Ir.block) -> Array.to_list b.Ir.instrs))
    |> List.find_map (fun (i : Ir.instr) ->
           match i.Ir.op with Fload (d, _) -> Some d | _ -> None)
    |> Option.get
  in
  checkb "loaded value is Either" true
    (Dataflow.operand_state df ~addr:add.Static.addr ~reg:load_reg = Dataflow.Either)

let test_overhead_reduction () =
  (* the point of the optimization: fewer snippet executions *)
  let k = Nas_lu.make Kernel.W in
  let res = Bfs.search (Kernel.target k) in
  let run p =
    let vm = Vm.create ~checked:true p in
    k.Kernel.setup vm;
    Vm.run vm;
    Cost.of_run vm
  in
  let plain = run (Patcher.patch k.Kernel.program res.Bfs.final) in
  let opt = run (Patcher.patch ~dataflow:true k.Kernel.program res.Bfs.final) in
  checkb "cheaper" true (opt.Cost.time_cycles < plain.Cost.time_cycles)

let suite =
  [
    ("all-double removes all checks", `Quick, test_all_double_removes_all_checks);
    ("all-single: fewer runtime tests", `Quick, test_all_single_fewer_tests);
    ("equivalence: all kernels all-single", `Quick, test_equivalence_all_kernels_single);
    ("equivalence: random mixed configs", `Quick, test_equivalence_mixed_random);
    ("equivalence: searched config", `Quick, test_equivalence_searched_config);
    ("states on a small program", `Quick, test_states_small_program);
    ("memory taints loads", `Quick, test_memory_taints);
    ("overhead reduction", `Quick, test_overhead_reduction);
  ]
