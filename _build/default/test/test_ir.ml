(* Tests for the IR: validation, disassembly, register def/use sets, and the
   static analysis (candidates, structure tree). *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* A tiny hand-built valid program: main calls f(x) = x * x. *)
let valid_program () : Ir.program =
  let square : Ir.func =
    {
      fid = 0;
      fname = "square";
      module_name = "m";
      n_fargs = 1;
      n_iargs = 0;
      ret_fregs = [| 1 |];
      ret_iregs = [||];
      n_fregs = 2;
      n_iregs = 1;
      entry = 0;
      blocks =
        [|
          { label = 1; instrs = [| { addr = 0; op = Fbin (D, Mul, 1, 0, 0) } |]; term = Ret };
        |];
    }
  in
  let main : Ir.func =
    {
      fid = 1;
      fname = "main";
      module_name = "m";
      n_fargs = 0;
      n_iargs = 0;
      ret_fregs = [||];
      ret_iregs = [||];
      n_fregs = 2;
      n_iregs = 1;
      entry = 0;
      blocks =
        [|
          {
            label = 2;
            instrs =
              [|
                { addr = 1; op = Fconst (D, 0, 3.0) };
                {
                  addr = 2;
                  op = Call { callee = 0; fargs = [| 0 |]; iargs = [||]; frets = [| 1 |]; irets = [||] };
                };
                { addr = 3; op = Fstore ({ base = None; index = None; scale = 1; offset = 0 }, 1) };
              |];
            term = Jmp 1;
          };
          { label = 3; instrs = [||]; term = Ret };
        |];
    }
  in
  { funcs = [| square; main |]; main = 1; fheap_size = 4; iheap_size = 1; modules = [| "m" |] }

let test_validate_ok () =
  match Ir.validate (valid_program ()) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected errors: %s" (String.concat "; " es)

let expect_invalid name mutate =
  let p = valid_program () in
  let p = mutate p in
  match Ir.validate p with
  | Ok () -> Alcotest.failf "%s: expected validation failure" name
  | Error _ -> ()

let with_main_blocks p blocks =
  let funcs = Array.copy p.Ir.funcs in
  funcs.(1) <- { (funcs.(1)) with Ir.blocks };
  { p with Ir.funcs }

let test_validate_bad_freg () =
  expect_invalid "freg out of range" (fun p ->
      with_main_blocks p
        [|
          { Ir.label = 2; instrs = [| { addr = 1; op = Fconst (D, 99, 3.0) } |]; term = Ret };
          { Ir.label = 3; instrs = [||]; term = Ret };
        |])

let test_validate_bad_ireg () =
  expect_invalid "ireg out of range" (fun p ->
      with_main_blocks p
        [|
          { Ir.label = 2; instrs = [| { addr = 1; op = Iconst (5, 3) } |]; term = Ret };
          { Ir.label = 3; instrs = [||]; term = Ret };
        |])

let test_validate_bad_target () =
  expect_invalid "branch target out of range" (fun p ->
      with_main_blocks p
        [|
          { Ir.label = 2; instrs = [||]; term = Jmp 7 };
          { Ir.label = 3; instrs = [||]; term = Ret };
        |])

let test_validate_dup_label () =
  expect_invalid "duplicate label" (fun p ->
      with_main_blocks p
        [|
          { Ir.label = 5; instrs = [||]; term = Jmp 1 };
          { Ir.label = 5; instrs = [||]; term = Ret };
        |])

let test_validate_dup_addr () =
  expect_invalid "duplicate address" (fun p ->
      with_main_blocks p
        [|
          {
            Ir.label = 2;
            instrs = [| { addr = 9; op = Iconst (0, 1) }; { addr = 9; op = Iconst (0, 2) } |];
            term = Ret;
          };
          { Ir.label = 3; instrs = [||]; term = Ret };
        |])

let test_validate_bad_call_arity () =
  expect_invalid "call arity" (fun p ->
      with_main_blocks p
        [|
          {
            Ir.label = 2;
            instrs =
              [|
                {
                  addr = 1;
                  op = Call { callee = 0; fargs = [||]; iargs = [||]; frets = [| 1 |]; irets = [||] };
                };
              |];
            term = Ret;
          };
          { Ir.label = 3; instrs = [||]; term = Ret };
        |])

let test_validate_bad_callee () =
  expect_invalid "unknown callee" (fun p ->
      with_main_blocks p
        [|
          {
            Ir.label = 2;
            instrs =
              [|
                {
                  addr = 1;
                  op = Call { callee = 9; fargs = [||]; iargs = [||]; frets = [||]; irets = [||] };
                };
              |];
            term = Ret;
          };
          { Ir.label = 3; instrs = [||]; term = Ret };
        |])

let test_validate_bad_entry () =
  expect_invalid "entry out of range" (fun p ->
      let funcs = Array.copy p.Ir.funcs in
      funcs.(1) <- { (funcs.(1)) with Ir.entry = 9 };
      { p with Ir.funcs })

let test_validate_bad_main () =
  expect_invalid "main out of range" (fun p -> { p with Ir.main = 5 })

let test_validate_exn () =
  Alcotest.check_raises "validate_exn raises" (Invalid_argument "Ir.validate: main fid 5 out of range")
    (fun () -> ignore (Ir.validate_exn { (valid_program ()) with Ir.main = 5 }))

let test_mnemonics () =
  checks "addsd" "addsd" (Ir.mnemonic (Fbin (D, Add, 0, 1, 2)));
  checks "addss" "addss" (Ir.mnemonic (Fbin (S, Add, 0, 1, 2)));
  checks "mulsd" "mulsd" (Ir.mnemonic (Fbin (D, Mul, 0, 1, 2)));
  checks "divss" "divss" (Ir.mnemonic (Fbin (S, Div, 0, 1, 2)));
  checks "sqrtsd" "sqrtsd" (Ir.mnemonic (Funop (D, Sqrt, 0, 1)));
  checks "sqrtss" "sqrtss" (Ir.mnemonic (Funop (S, Sqrt, 0, 1)));
  checks "cvtsi2sd" "cvtsi2sd" (Ir.mnemonic (Fcvt_i2f (D, 0, 0)));
  checks "cvttss2si" "cvttss2si" (Ir.mnemonic (Fcvt_f2i (S, 0, 0)));
  checks "sinsd" "sinsd" (Ir.mnemonic (Flibm (D, Sin, 0, 1)));
  checks "testflag" "testflag" (Ir.mnemonic (Ftestflag (0, 0)));
  checks "downcast" "cvtsd2ss.flag" (Ir.mnemonic (Fdowncast (0, 0)));
  checks "upcast" "cvtss2sd.flag" (Ir.mnemonic (Fupcast (0, 0)))

let test_disasm_format () =
  checks "three-address" "addsd f1, f2 -> f0" (Ir.disasm (Fbin (D, Add, 0, 1, 2)));
  checks "cmp" "cmpsd.lt f0, f1 -> i2" (Ir.disasm (Fcmp (D, Lt, 2, 0, 1)))

let test_is_candidate () =
  checkb "fbin" true (Ir.is_candidate (Fbin (D, Add, 0, 1, 2)));
  checkb "fconst" true (Ir.is_candidate (Fconst (D, 0, 1.0)));
  checkb "fcmp" true (Ir.is_candidate (Fcmp (D, Lt, 0, 1, 2)));
  checkb "flibm" true (Ir.is_candidate (Flibm (D, Exp, 0, 1)));
  checkb "cvt" true (Ir.is_candidate (Fcvt_i2f (D, 0, 0)));
  checkb "fmov not" false (Ir.is_candidate (Fmov (0, 1)));
  checkb "fload not" false
    (Ir.is_candidate (Fload (0, { base = None; index = None; scale = 1; offset = 0 })));
  checkb "iconst not" false (Ir.is_candidate (Iconst (0, 1)));
  checkb "call not" false
    (Ir.is_candidate (Call { callee = 0; fargs = [||]; iargs = [||]; frets = [||]; irets = [||] }));
  checkb "snippet op not" false (Ir.is_candidate (Ftestflag (0, 0)))

let test_is_snippet_op () =
  checkb "testflag" true (Ir.is_snippet_op (Ftestflag (0, 0)));
  checkb "downcast" true (Ir.is_snippet_op (Fdowncast (0, 0)));
  checkb "upcast" true (Ir.is_snippet_op (Fupcast (0, 0)));
  checkb "fbin not" false (Ir.is_snippet_op (Fbin (S, Add, 0, 1, 2)))

let test_def_use () =
  let op : Ir.op = Fbin (D, Add, 3, 1, 2) in
  Alcotest.(check (list int)) "def" [ 3 ] (Ir.defined_fregs op);
  Alcotest.(check (list int)) "use" [ 1; 2 ] (Ir.used_fregs op);
  let ld : Ir.op = Fload (4, { base = Some 1; index = Some 2; scale = 8; offset = 0 }) in
  Alcotest.(check (list int)) "load def f" [ 4 ] (Ir.defined_fregs ld);
  Alcotest.(check (list int)) "load use i" [ 1; 2 ] (Ir.used_iregs ld);
  let call : Ir.op =
    Call { callee = 0; fargs = [| 5 |]; iargs = [| 6 |]; frets = [| 7 |]; irets = [| 8 |] }
  in
  Alcotest.(check (list int)) "call def f" [ 7 ] (Ir.defined_fregs call);
  Alcotest.(check (list int)) "call use f" [ 5 ] (Ir.used_fregs call);
  Alcotest.(check (list int)) "call def i" [ 8 ] (Ir.defined_iregs call);
  Alcotest.(check (list int)) "call use i" [ 6 ] (Ir.used_iregs call)

let test_find_func () =
  let p = valid_program () in
  checki "square fid" 0 (Ir.find_func p "square").Ir.fid;
  checkb "not found" true
    (match Ir.find_func p "nope" with exception Not_found -> true | _ -> false)

let test_pp_program () =
  let s = Format.asprintf "%a" Ir.pp_program (valid_program ()) in
  checkb "has func header" true
    (let rec contains i =
       i + 8 <= String.length s && (String.sub s i 8 = "m:square" || contains (i + 1))
     in
     contains 0)

(* ---------- Static ---------- *)

let test_static_candidates () =
  let p = valid_program () in
  let cands = Static.candidates p in
  checki "two candidates" 2 (Array.length cands);
  checks "first is the mul" "mulsd f0, f0 -> f1" cands.(0).Static.disasm;
  checki "addr" 0 cands.(0).Static.addr;
  checks "module" "m" cands.(0).Static.module_name

let test_static_tree () =
  let p = valid_program () in
  match Static.tree p with
  | [ Static.Module ("m", funcs) ] ->
      checki "two funcs with candidates" 2 (List.length funcs);
      let insns = List.concat_map Static.node_insns funcs in
      checki "two leaf insns" 2 (List.length insns)
  | _ -> Alcotest.fail "expected a single module"

let test_static_tree_omits_empty () =
  (* main's second block has no candidates and must not appear *)
  let p = valid_program () in
  let rec blocks = function
    | Static.Block (l, _) -> [ l ]
    | Static.Module (_, cs) | Static.Func (_, _, cs) -> List.concat_map blocks cs
    | Static.Insn _ -> []
  in
  let labels = List.concat_map blocks (Static.tree p) in
  checkb "label 3 omitted" false (List.mem 3 labels)

let test_static_counts () =
  let p = valid_program () in
  checki "max addr" 3 (Static.max_addr p);
  checki "insn count" 4 (Static.insn_count p)

let test_node_name () =
  Alcotest.(check string) "module" "MODULE m"
    (Static.node_name (Static.Module ("m", [])));
  Alcotest.(check string) "func" "FUNC03 spmv"
    (Static.node_name (Static.Func (2, "spmv", [])))

let suite =
  [
    ("validate ok", `Quick, test_validate_ok);
    ("validate: bad freg", `Quick, test_validate_bad_freg);
    ("validate: bad ireg", `Quick, test_validate_bad_ireg);
    ("validate: bad branch target", `Quick, test_validate_bad_target);
    ("validate: duplicate label", `Quick, test_validate_dup_label);
    ("validate: duplicate address", `Quick, test_validate_dup_addr);
    ("validate: call arity", `Quick, test_validate_bad_call_arity);
    ("validate: unknown callee", `Quick, test_validate_bad_callee);
    ("validate: bad entry", `Quick, test_validate_bad_entry);
    ("validate: bad main", `Quick, test_validate_bad_main);
    ("validate_exn", `Quick, test_validate_exn);
    ("mnemonics", `Quick, test_mnemonics);
    ("disasm format", `Quick, test_disasm_format);
    ("is_candidate", `Quick, test_is_candidate);
    ("is_snippet_op", `Quick, test_is_snippet_op);
    ("def/use sets", `Quick, test_def_use);
    ("find_func", `Quick, test_find_func);
    ("pp_program", `Quick, test_pp_program);
    ("static: candidates", `Quick, test_static_candidates);
    ("static: tree", `Quick, test_static_tree);
    ("static: tree omits empty blocks", `Quick, test_static_tree_omits_empty);
    ("static: counts", `Quick, test_static_counts);
    ("static: node names", `Quick, test_node_name);
  ]
