(* Tests for the benchmark kernels: host-reference bit-for-bit equivalence,
   verification behaviour, instrumentation equivalences, and per-kernel
   numerical character. Class W keeps the suite fast; one class-A spot
   check runs as a slow test. *)

let checkb = Alcotest.check Alcotest.bool

let all_w () =
  [
    Nas_ep.make Kernel.W;
    Nas_cg.make Kernel.W;
    Nas_ft.make Kernel.W;
    Nas_mg.make Kernel.W;
    Nas_bt.make Kernel.W;
    Nas_lu.make Kernel.W;
    Nas_sp.make Kernel.W;
  ]

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v)) a b

let per_kernel name f () = List.iter (fun k -> f k) (all_w ()) |> fun () -> ignore name

let test_reference_bit_for_bit =
  per_kernel "ref" (fun k ->
      if not (Kernel.check_reference k) then
        Alcotest.failf "%s: native run differs from host reference" k.Kernel.name)

let test_native_verifies =
  per_kernel "verify" (fun k ->
      let out, _ = Kernel.run_native k in
      if not (k.Kernel.verify out) then Alcotest.failf "%s: native run fails its own verification" k.Kernel.name)

let test_verify_rejects_garbage =
  per_kernel "garbage" (fun k ->
      let garbage = Array.map (fun v -> v +. 1.0) k.Kernel.reference in
      if k.Kernel.verify garbage then Alcotest.failf "%s: verification accepts garbage" k.Kernel.name)

let test_all_double_instrumented_identical =
  per_kernel "all-double" (fun k ->
      let native, _ = Kernel.run_native k in
      let out, _ = Kernel.run_patched ~config:Config.empty k in
      if not (bits_equal native out) then
        Alcotest.failf "%s: all-double instrumentation changed the output" k.Kernel.name)

let test_converted_single_runs =
  per_kernel "converted" (fun k ->
      let native, _ = Kernel.run_native k in
      let out, _ = Kernel.run_converted k in
      (* single output is finite and different (rounding visible) except
         where outputs are integers-in-float (counts) *)
      Array.iter
        (fun v -> if Float.is_nan v then Alcotest.failf "%s: NaN in single output" k.Kernel.name)
        out;
      if bits_equal native out then
        Alcotest.failf "%s: single conversion had no effect at all" k.Kernel.name)

let test_candidates_nonempty =
  per_kernel "candidates" (fun k ->
      let n = Array.length (Static.candidates k.Kernel.program) in
      if n < 10 then Alcotest.failf "%s: only %d candidates" k.Kernel.name n)

let test_programs_validate =
  per_kernel "validate" (fun k ->
      match Ir.validate k.Kernel.program with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s: %s" k.Kernel.name (String.concat "; " es))

let test_comm_models =
  per_kernel "comm" (fun k ->
      let net = Mpi_model.default_net in
      let c1 = k.Kernel.comm_bytes ~ranks:1 net in
      let c8 = k.Kernel.comm_bytes ~ranks:8 net in
      if c1 <> 0.0 then Alcotest.failf "%s: nonzero comm at 1 rank" k.Kernel.name;
      if c8 <= 0.0 then Alcotest.failf "%s: no comm at 8 ranks" k.Kernel.name)

(* --- kernel-specific behaviour --- *)

let test_ep_rng_host_matches () =
  (* the FP-based LCG produces the NAS sequence property: values in (0,1) *)
  let x = ref 271828183.0 in
  for _ = 1 to 1000 do
    let x', u = Nas_ep.randlc !x 1220703125.0 in
    x := x';
    if not (u > 0.0 && u < 1.0) then Alcotest.failf "randlc out of range: %g" u
  done

let test_ep_ignore_hint () =
  let k = Nas_ep.make Kernel.W in
  checkb "randlc hinted" true
    (not (Config.is_empty k.Kernel.hints))

let test_ep_rng_breaks_in_single () =
  (* replacing the RNG with single precision destroys the results — the
     reason the ignore flag exists *)
  let k = Nas_ep.make Kernel.W in
  let out, _ = Kernel.run_native k in
  let cfg = Config.set_func Config.empty "randlc" Config.Single in
  let outs, _ = Kernel.run_patched ~config:cfg k in
  checkb "wildly wrong" true (Stats.rel_err_inf outs out > 1e-3)

let test_cg_zeta_sensitive () =
  let k = Nas_cg.make Kernel.W in
  let out, _ = Kernel.run_native k in
  let outs, _ = Kernel.run_converted k in
  (* zeta moves far beyond the 1e-12 verification window in single *)
  checkb "zeta shifts" true (Float.abs (outs.(0) -. out.(0)) > 1e-10)

let test_ft_checksum_not_dc () =
  (* regression: the checksum must not cover all residues mod m (which
     would collapse it to the DC coefficient and hide all sensitivity) *)
  let sz = Nas_ft.sizes Kernel.W in
  checkb "samples < m" true (Nas_ft.checksum_samples sz.Nas_ft.m < sz.Nas_ft.m)

let test_mg_partial_replacement () =
  let k = Nas_mg.make Kernel.W in
  let out, _ = Kernel.run_native k in
  (* the zero-fill helper in single is exact and stays within tolerance *)
  let cfg = Config.set_func Config.empty "zero" Config.Single in
  let o, _ = Kernel.run_patched ~config:cfg k in
  checkb "zero-fill tolerable" true (k.Kernel.verify o);
  (* the whole module in single is not *)
  let tree = Static.tree k.Kernel.program in
  let cfg_all =
    List.fold_left (fun acc n -> Bfs.force_single ~base:Config.empty acc n) Config.empty tree
  in
  let oa, _ = Kernel.run_patched ~config:cfg_all k in
  checkb "all-single rejected" false (k.Kernel.verify oa);
  ignore out

let test_bt_solution_accuracy () =
  let k = Nas_bt.make Kernel.W in
  let out, _ = Kernel.run_native k in
  (* block Thomas on a dominant system: near machine precision *)
  checkb "double accurate" true (Stats.rel_err_inf out k.Kernel.reference < 1e-12)

let test_lu_converges () =
  let k = Nas_lu.make Kernel.W in
  let out, _ = Kernel.run_native k in
  let rnorm = out.(Array.length out - 1) in
  checkb "residual dropped" true (rnorm < 1.0)

let test_sp_exact_solve () =
  let k = Nas_sp.make Kernel.W in
  let out, _ = Kernel.run_native k in
  let sz = Nas_sp.sizes Kernel.W in
  ignore sz;
  checkb "double solves" true (k.Kernel.verify out)

let test_amg_reference () =
  let k = Amg_kernel.make () in
  checkb "bit-for-bit" true (Kernel.check_reference k);
  let out, _ = Kernel.run_native k in
  checkb "converged" true (k.Kernel.verify out);
  checkb "within budget" true
    (Amg_kernel.iterations out < Amg_kernel.default_sizes.Amg_kernel.maxiter)

let test_amg_single_still_converges () =
  (* the paper's §3.2 headline: the whole kernel tolerates single precision
     because the adaptive iteration corrects roundoff *)
  let k = Amg_kernel.make () in
  let tree = Static.tree k.Kernel.program in
  let cfg =
    List.fold_left (fun acc n -> Bfs.force_single ~base:Config.empty acc n) Config.empty tree
  in
  let out, _ = Kernel.run_patched ~config:cfg k in
  checkb "verifies in single" true (k.Kernel.verify out)

let test_amg_converted_cheaper () =
  let k = Amg_kernel.make () in
  let _, nvm = Kernel.run_native k in
  let _, cvm = Kernel.run_converted k in
  let params = { Cost.default with Cost.bandwidth = 0.22 } in
  let nat = Cost.of_run ~params nvm in
  let conv = Cost.of_run ~params ~fmem_bytes:4.0 cvm in
  let speedup = nat.Cost.time_cycles /. conv.Cost.time_cycles in
  checkb "meaningful speedup" true (speedup > 1.5 && speedup < 3.0)

let test_class_a_spot_check () =
  (* one slower sanity pass on class A *)
  List.iter
    (fun k ->
      if not (Kernel.check_reference k) then
        Alcotest.failf "%s: class A reference mismatch" k.Kernel.name)
    [ Nas_cg.make Kernel.A; Nas_ft.make Kernel.A; Nas_sp.make Kernel.A ]

let test_sparse_gen () =
  let a = Sparse_gen.random_spd ~seed:11 ~n:50 ~extras_per_row:3 in
  Alcotest.(check int) "rowptr length" 51 (Array.length a.Sparse_gen.rowptr);
  (* symmetric and diagonally dominant *)
  for i = 0 to 49 do
    let diag = ref 0.0 and off = ref 0.0 in
    for k = a.Sparse_gen.rowptr.(i) to a.Sparse_gen.rowptr.(i + 1) - 1 do
      if a.Sparse_gen.col.(k) = i then diag := a.Sparse_gen.value.(k)
      else off := !off +. Float.abs a.Sparse_gen.value.(k)
    done;
    if !diag <= !off then Alcotest.failf "row %d not dominant" i
  done;
  (* symmetry: entry (i,j) = entry (j,i) via spmv against basis vectors *)
  let x = Array.make 50 0.0 in
  x.(3) <- 1.0;
  let y3 = Array.make 50 0.0 in
  Sparse_gen.spmv a x y3;
  x.(3) <- 0.0;
  x.(7) <- 1.0;
  let y7 = Array.make 50 0.0 in
  Sparse_gen.spmv a x y7;
  checkb "symmetric" true (Float.abs (y3.(7) -. y7.(3)) < 1e-15)

let suite =
  [
    ("host reference bit-for-bit (all, W)", `Quick, test_reference_bit_for_bit);
    ("native verifies (all, W)", `Quick, test_native_verifies);
    ("verify rejects garbage (all, W)", `Quick, test_verify_rejects_garbage);
    ("all-double instrumentation identical (all, W)", `Quick, test_all_double_instrumented_identical);
    ("converted single runs (all, W)", `Quick, test_converted_single_runs);
    ("candidates nonempty (all, W)", `Quick, test_candidates_nonempty);
    ("programs validate (all, W)", `Quick, test_programs_validate);
    ("comm models (all, W)", `Quick, test_comm_models);
    ("ep: randlc in range", `Quick, test_ep_rng_host_matches);
    ("ep: ignore hint present", `Quick, test_ep_ignore_hint);
    ("ep: RNG breaks in single", `Quick, test_ep_rng_breaks_in_single);
    ("cg: zeta sensitive", `Quick, test_cg_zeta_sensitive);
    ("ft: checksum not DC", `Quick, test_ft_checksum_not_dc);
    ("mg: partial replacement", `Quick, test_mg_partial_replacement);
    ("bt: double accuracy", `Quick, test_bt_solution_accuracy);
    ("lu: converges", `Quick, test_lu_converges);
    ("sp: solves", `Quick, test_sp_exact_solve);
    ("amg: reference + adaptive verify", `Quick, test_amg_reference);
    ("amg: whole kernel single", `Quick, test_amg_single_still_converges);
    ("amg: converted speedup", `Quick, test_amg_converted_cheaper);
    ("class A spot check", `Slow, test_class_a_spot_check);
    ("sparse generator", `Quick, test_sparse_gen);
  ]

let test_class_c_reference () =
  (* the overhead experiments run class C; its host mirror must hold too *)
  List.iter
    (fun k ->
      if not (Kernel.check_reference k) then
        Alcotest.failf "%s: class C reference mismatch" k.Kernel.name)
    [ Nas_ep.make Kernel.C; Nas_mg.make Kernel.C ]

let test_profile_counts_stable_under_patching () =
  (* dynamic replacement percentages are computed from a native profile;
     this is valid because candidate instructions keep their addresses and
     execution counts under patching *)
  let k = Nas_cg.make Kernel.W in
  let _, nvm = Kernel.run_native k in
  let cfg = Config.set_func Config.empty "dot" Config.Single in
  let _, pvm = Kernel.run_patched ~config:cfg k in
  Array.iter
    (fun (info : Static.insn_info) ->
      if nvm.Vm.counts.(info.Static.addr) <> pvm.Vm.counts.(info.Static.addr) then
        Alcotest.failf "candidate 0x%x count changed under patching" info.Static.addr)
    (Static.candidates k.Kernel.program)

let suite =
  suite
  @ [
      ("class C references (slow)", `Slow, test_class_c_reference);
      ("profile counts stable under patching", `Quick, test_profile_counts_stable_under_patching);
    ]
