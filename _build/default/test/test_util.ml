(* Tests for the deterministic PRNG and the statistics helpers. *)

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-12)

let qt ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then Alcotest.fail "streams diverge"
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  checkb "different" false (Int64.equal (Rng.bits64 a) (Rng.bits64 b))

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  checkb "copy continues identically" true (Int64.equal (Rng.bits64 a) (Rng.bits64 b))

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  checkb "independent" false (Int64.equal (Rng.bits64 a) (Rng.bits64 b))

let test_uniform_range =
  qt "uniform in [0,1)" QCheck2.Gen.int (fun seed ->
      let r = Rng.create seed in
      let u = Rng.uniform r in
      u >= 0.0 && u < 1.0)

let test_int_range =
  qt "int in range"
    QCheck2.Gen.(pair int (int_range 1 1000))
    (fun (seed, n) ->
      let r = Rng.create seed in
      let v = Rng.int r n in
      v >= 0 && v < n)

let test_uniform_mean () =
  let r = Rng.create 9 in
  let n = 20000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.uniform r
  done;
  checkb "mean near 0.5" true (Float.abs ((!acc /. float_of_int n) -. 0.5) < 0.02)

let test_gaussian_moments () =
  let r = Rng.create 10 in
  let n = 20000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let g = Rng.gaussian r in
    sum := !sum +. g;
    sq := !sq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = !sq /. float_of_int n in
  checkb "mean near 0" true (Float.abs mean < 0.05);
  checkb "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let test_shuffle_permutes () =
  let r = Rng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Rng.shuffle r b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  checkb "same multiset" true (sorted = a);
  checkb "actually moved" false (b = a)

let test_stats_basics () =
  checkf "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  checkf "variance" 1.0 (Stats.variance [| 1.0; 2.0; 3.0 |]);
  checkf "stddev" 1.0 (Stats.stddev [| 1.0; 2.0; 3.0 |]);
  checkf "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  checkf "median even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  let lo, hi = Stats.min_max [| 3.0; -1.0; 2.0 |] in
  checkf "min" (-1.0) lo;
  checkf "max" 3.0 hi

let test_stats_norms () =
  checkf "norm2" 5.0 (Stats.norm2 [| 3.0; 4.0 |]);
  checkf "norm_inf" 4.0 (Stats.norm_inf [| 3.0; -4.0 |]);
  checkf "dot" 11.0 (Stats.dot [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  checkf "rel_err_inf" 0.25 (Stats.rel_err_inf [| 1.0; 3.0 |] [| 1.0; 4.0 |]);
  checkf "percent" 25.0 (Stats.percent 1.0 4.0);
  checkf "percent of zero" 0.0 (Stats.percent 1.0 0.0)

let test_stats_edge_cases () =
  checkf "mean empty" 0.0 (Stats.mean [||]);
  checkf "variance singleton" 0.0 (Stats.variance [| 5.0 |]);
  checkb "median empty raises" true
    (try
       ignore (Stats.median [||]);
       false
     with Invalid_argument _ -> true);
  checkb "dot mismatch raises" true
    (try
       ignore (Stats.dot [| 1.0 |] [||]);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng copy", `Quick, test_rng_copy);
    ("rng split", `Quick, test_rng_split_independent);
    test_uniform_range;
    test_int_range;
    ("uniform mean", `Quick, test_uniform_mean);
    ("gaussian moments", `Quick, test_gaussian_moments);
    ("shuffle permutes", `Quick, test_shuffle_permutes);
    ("stats basics", `Quick, test_stats_basics);
    ("stats norms", `Quick, test_stats_norms);
    ("stats edge cases", `Quick, test_stats_edge_cases);
  ]
