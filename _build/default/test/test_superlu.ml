(* Tests for the sparse LU substrate: CSC storage, the memplus-like
   generator, symbolic factorization correctness against dense elimination,
   numeric factorization, and the end-to-end solver binary. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------- Sparse_csc ---------- *)

let test_of_entries () =
  let a = Sparse_csc.of_entries 3 [ (0, 0, 2.0); (1, 0, 1.0); (2, 2, 5.0); (0, 0, 1.0) ] in
  checki "nnz with dup summed" 3 (Sparse_csc.nnz a);
  Alcotest.check (Alcotest.float 0.0) "dup summed" 3.0 (Sparse_csc.entry a 0 0);
  Alcotest.check (Alcotest.float 0.0) "absent" 0.0 (Sparse_csc.entry a 1 1);
  Alcotest.check (Alcotest.float 0.0) "present" 5.0 (Sparse_csc.entry a 2 2)

let test_rowind_sorted () =
  let a = Sparse_csc.of_entries 4 [ (3, 1, 1.0); (0, 1, 1.0); (2, 1, 1.0) ] in
  let rows = Array.sub a.Sparse_csc.rowind a.Sparse_csc.colptr.(1) 3 in
  Alcotest.(check (array int)) "ascending" [| 0; 2; 3 |] rows

let test_mul_vec () =
  (* A = [2 1; 0 3] (column-major entries) *)
  let a = Sparse_csc.of_entries 2 [ (0, 0, 2.0); (0, 1, 1.0); (1, 1, 3.0) ] in
  let y = Sparse_csc.mul_vec a [| 1.0; 2.0 |] in
  Alcotest.(check (array (float 1e-15))) "Ax" [| 4.0; 6.0 |] y

(* ---------- Memplus_like ---------- *)

let test_generator_shape () =
  let n = 200 in
  let a = Memplus_like.generate ~seed:5 ~n () in
  checki "size" n a.Sparse_csc.n;
  checkb "sparse" true (Sparse_csc.nnz a < n * 12);
  checkb "has offdiagonals" true (Sparse_csc.nnz a > n);
  (* every diagonal entry present and positive *)
  for j = 0 to n - 1 do
    if Sparse_csc.entry a j j <= 0.0 then Alcotest.failf "diag %d missing" j
  done

let test_generator_deterministic () =
  let a = Memplus_like.generate ~seed:5 ~n:100 () in
  let b = Memplus_like.generate ~seed:5 ~n:100 () in
  checkb "same values" true (a.Sparse_csc.values = b.Sparse_csc.values);
  let c = Memplus_like.generate ~seed:6 ~n:100 () in
  checkb "seed matters" false (a.Sparse_csc.values = c.Sparse_csc.values)

let test_generator_dominance_without_plants () =
  let n = 150 in
  let a = Memplus_like.generate ~seed:9 ~n ~planted_pairs:0 () in
  (* column dominance by construction *)
  for j = 0 to n - 1 do
    let diag = ref 0.0 and off = ref 0.0 in
    for k = a.Sparse_csc.colptr.(j) to a.Sparse_csc.colptr.(j + 1) - 1 do
      if a.Sparse_csc.rowind.(k) = j then diag := Float.abs a.Sparse_csc.values.(k)
      else off := !off +. Float.abs a.Sparse_csc.values.(k)
    done;
    if !diag < !off then Alcotest.failf "column %d not dominant" j
  done

(* ---------- symbolic vs dense elimination ---------- *)

let dense_lu_pattern (a : Sparse_csc.t) =
  let n = a.Sparse_csc.n in
  let m = Array.make_matrix n n 0.0 in
  for j = 0 to n - 1 do
    for k = a.Sparse_csc.colptr.(j) to a.Sparse_csc.colptr.(j + 1) - 1 do
      m.(a.Sparse_csc.rowind.(k)).(j) <- a.Sparse_csc.values.(k)
    done
  done;
  for k = 0 to n - 1 do
    for i = k + 1 to n - 1 do
      if m.(i).(k) <> 0.0 then begin
        m.(i).(k) <- m.(i).(k) /. m.(k).(k);
        for j = k + 1 to n - 1 do
          if m.(k).(j) <> 0.0 then m.(i).(j) <- m.(i).(j) -. (m.(i).(k) *. m.(k).(j))
        done
      end
    done
  done;
  m

let test_symbolic_covers_dense_fill () =
  let a = Memplus_like.generate ~seed:21 ~n:60 ~planted_pairs:2 () in
  let s = Slu.symbolic a in
  let dense = dense_lu_pattern a in
  let n = a.Sparse_csc.n in
  (* every numerically nonzero factor entry is inside the symbolic pattern *)
  let in_u i j =
    let rec go p = p < s.Slu.up.(j + 1) && (s.Slu.ui.(p) = i || go (p + 1)) in
    go s.Slu.up.(j)
  in
  let in_l i j =
    let rec go q = q < s.Slu.lp.(j + 1) && (s.Slu.li.(q) = i || go (q + 1)) in
    go s.Slu.lp.(j)
  in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      if dense.(i).(j) <> 0.0 then
        if i < j then begin
          if not (in_u i j) then Alcotest.failf "U(%d,%d) missing from pattern" i j
        end
        else if i > j then if not (in_l i j) then Alcotest.failf "L(%d,%d) missing" i j
    done
  done

let test_numeric_factor_matches_dense () =
  let a = Memplus_like.generate ~seed:22 ~n:50 ~planted_pairs:1 () in
  let s = Slu.symbolic a in
  let ux, lx, d = Slu.host_factor a s in
  let dense = dense_lu_pattern a in
  let n = a.Sparse_csc.n in
  (* diagonal pivots agree *)
  for j = 0 to n - 1 do
    if Float.abs (d.(j) -. dense.(j).(j)) > 1e-9 *. Float.abs dense.(j).(j) then
      Alcotest.failf "pivot %d: %g vs %g" j d.(j) dense.(j).(j)
  done;
  (* sampled L and U entries agree *)
  for j = 0 to n - 1 do
    for p = s.Slu.up.(j) to s.Slu.up.(j + 1) - 1 do
      let i = s.Slu.ui.(p) in
      if Float.abs (ux.(p) -. dense.(i).(j)) > 1e-9 *. Float.max 1.0 (Float.abs dense.(i).(j))
      then Alcotest.failf "U(%d,%d)" i j
    done;
    for q = s.Slu.lp.(j) to s.Slu.lp.(j + 1) - 1 do
      let i = s.Slu.li.(q) in
      if Float.abs (lx.(q) -. dense.(i).(j)) > 1e-9 *. Float.max 1.0 (Float.abs dense.(i).(j))
      then Alcotest.failf "L(%d,%d)" i j
    done
  done

let test_host_solve_accuracy () =
  let t = Slu.create ~n:120 ~seed:33 () in
  let x = Slu.host_solve t in
  checkb "accurate" true (Slu.error t x < 1e-10)

(* ---------- the binary ---------- *)

let test_binary_bit_for_bit () =
  let t = Slu.create ~n:150 ~seed:44 () in
  let x, _ = Slu.solve_native t in
  let xh = Slu.host_solve t in
  checkb "bit-for-bit" true
    (Array.for_all2 (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b) x xh)

let test_error_profile () =
  let t = Slu.create ~n:400 () in
  let x, _ = Slu.solve_native t in
  let xs, _ = Slu.solve_converted t in
  let ed = Slu.error t x and es = Slu.error t xs in
  checkb "double error tiny" true (ed < 1e-9);
  checkb "single error in the memplus band" true (es > 1e-5 && es < 5e-3);
  checkb "orders apart" true (es /. ed > 1e4)

let test_all_double_instrumented () =
  let t = Slu.create ~n:100 ~seed:55 () in
  let x, _ = Slu.solve_native t in
  let patched = Patcher.patch t.Slu.program Config.empty in
  let vm = Vm.create ~checked:true patched in
  t.Slu.setup vm;
  Vm.run vm;
  let xi = t.Slu.output vm in
  checkb "identical" true
    (Array.for_all2 (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b) x xi)

let test_target_thresholds () =
  let t = Slu.create ~n:100 ~seed:66 () in
  let tgt_loose = Slu.target t ~threshold:1.0 in
  let tgt_impossible = Slu.target t ~threshold:1e-30 in
  checkb "loose accepts all-double" true (tgt_loose.Bfs.Target.eval Config.empty);
  checkb "impossible rejects" false (tgt_impossible.Bfs.Target.eval Config.empty)

let test_equilibrate_preserves_solution () =
  let t = Slu.create ~n:100 ~seed:77 () in
  let ax, b = Slu.host_equilibrate t.Slu.a t.Slu.b in
  (* row scaling: solving the scaled system gives the same x *)
  let s = t.Slu.sym in
  let fac = Slu.host_factor ~values:ax t.Slu.a s in
  let x = Slu.host_trisolve s fac b in
  checkb "same solution" true (Slu.error t x < 1e-9)

let suite =
  [
    ("csc of_entries", `Quick, test_of_entries);
    ("csc rowind sorted", `Quick, test_rowind_sorted);
    ("csc mul_vec", `Quick, test_mul_vec);
    ("generator shape", `Quick, test_generator_shape);
    ("generator deterministic", `Quick, test_generator_deterministic);
    ("generator dominance", `Quick, test_generator_dominance_without_plants);
    ("symbolic covers dense fill", `Quick, test_symbolic_covers_dense_fill);
    ("numeric factor matches dense", `Quick, test_numeric_factor_matches_dense);
    ("host solve accuracy", `Quick, test_host_solve_accuracy);
    ("binary bit-for-bit", `Quick, test_binary_bit_for_bit);
    ("error profile", `Quick, test_error_profile);
    ("all-double instrumented identical", `Quick, test_all_double_instrumented);
    ("target thresholds", `Quick, test_target_thresholds);
    ("equilibration preserves solution", `Quick, test_equilibrate_preserves_solution);
  ]
