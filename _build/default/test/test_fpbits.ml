(* Tests for the floating-point substrate: IEEE field views, emulated
   binary32 arithmetic, and the 0x7FF4DEAD replaced-value encoding. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let float_bits = Alcotest.testable (fun ppf x -> Format.fprintf ppf "%h" x)
    (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))

let qt ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let finite_float =
  QCheck2.Gen.map
    (fun (frac, exp, sign) ->
      let m = Float.of_int frac /. 1e9 in
      let v = ldexp m exp in
      if sign then -.v else v)
    QCheck2.Gen.(triple (int_bound 1_000_000_000) (int_range (-60) 60) bool)

(* ---------- Ieee ---------- *)

let test_fields64_roundtrip () =
  List.iter
    (fun x ->
      check float_bits "roundtrip" x (Ieee.of_fields64 (Ieee.fields64 x)))
    [ 0.0; -0.0; 1.0; -1.0; Float.pi; 1e300; 1e-300; infinity; neg_infinity; Float.min_float ]

let test_fields64_values () =
  let f = Ieee.fields64 1.0 in
  checki "sign" 0 f.Ieee.sign;
  checki "exp" Ieee.bias64 f.Ieee.exponent;
  check Alcotest.int64 "frac" 0L f.Ieee.significand;
  let f2 = Ieee.fields64 (-2.0) in
  checki "sign -2" 1 f2.Ieee.sign;
  checki "exp -2" (Ieee.bias64 + 1) f2.Ieee.exponent

let test_fields32_roundtrip () =
  List.iter
    (fun b ->
      check Alcotest.int32 "roundtrip" b (Ieee.of_fields32 (Ieee.fields32 b)))
    [ 0l; Int32.min_int; 0x3F800000l; 0x7F800000l; 0xFF800000l; 0x7FC00000l; 1l ]

let test_classify () =
  let c = Alcotest.testable Ieee.pp_class ( = ) in
  check c "zero" Ieee.Zero (Ieee.classify64 0.0);
  check c "-zero" Ieee.Zero (Ieee.classify64 (-0.0));
  check c "normal" Ieee.Normal (Ieee.classify64 1.5);
  check c "subnormal" Ieee.Subnormal (Ieee.classify64 (Float.min_float /. 2.0));
  check c "inf" Ieee.Infinite (Ieee.classify64 infinity);
  check c "nan" Ieee.Nan (Ieee.classify64 Float.nan);
  check c "nan32" Ieee.Nan (Ieee.classify32 0x7FC00001l);
  check c "zero32" Ieee.Zero (Ieee.classify32 0l);
  check c "normal32" Ieee.Normal (Ieee.classify32 0x3F800000l);
  check c "inf32" Ieee.Infinite (Ieee.classify32 0x7F800000l)

let test_describe () =
  let s = Ieee.describe64 1.0 in
  checkb "mentions normal" true (String.length s > 0 && String.exists (fun _ -> true) s);
  checkb "contains binary64" true
    (String.length s >= 8 && String.sub s 0 8 = "binary64");
  let s32 = Ieee.describe32 0x3F800000l in
  checkb "contains binary32" true (String.sub s32 0 8 = "binary32")

let prop_fields64_roundtrip =
  qt "fields64 roundtrip (random)" finite_float (fun x ->
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float (Ieee.of_fields64 (Ieee.fields64 x))))

(* ---------- F32 ---------- *)

let test_round_known () =
  check float_bits "1.0 exact" 1.0 (F32.round 1.0);
  check float_bits "0.5 exact" 0.5 (F32.round 0.5);
  (* 0.1 is not representable in binary32 *)
  checkb "0.1 inexact" false (F32.is_exact 0.1);
  check float_bits "0.1 rounds" (Int32.float_of_bits 0x3DCCCCCDl) (F32.round 0.1);
  check float_bits "pi rounds" (Int32.float_of_bits 0x40490FDBl) (F32.round Float.pi)

let test_round_specials () =
  check float_bits "inf" infinity (F32.round infinity);
  check float_bits "-inf" neg_infinity (F32.round neg_infinity);
  checkb "nan" true (Float.is_nan (F32.round Float.nan));
  check float_bits "-0" (-0.0) (F32.round (-0.0));
  (* overflow to infinity *)
  check float_bits "1e300 overflows" infinity (F32.round 1e300);
  check float_bits "-1e300 overflows" neg_infinity (F32.round (-1e300));
  (* tiny values flush toward zero region (subnormal or zero) *)
  checkb "1e-300 underflows" true (F32.round 1e-300 = 0.0)

let test_exactness_small_ints () =
  for i = -4096 to 4096 do
    if not (F32.is_exact (float_of_int i)) then
      Alcotest.failf "int %d should be binary32-exact" i
  done

let test_arith_known () =
  check float_bits "add" 3.0 (F32.add 1.0 2.0);
  check float_bits "div thirds" (F32.round (1.0 /. 3.0)) (F32.div 1.0 3.0);
  check float_bits "sqrt 2" (F32.round (sqrt 2.0)) (F32.sqrt 2.0);
  check float_bits "neg" (-1.5) (F32.neg 1.5);
  check float_bits "abs" 1.5 (F32.abs (-1.5));
  check float_bits "min" 1.0 (F32.min 1.0 2.0);
  check float_bits "max" 2.0 (F32.max 1.0 2.0);
  check float_bits "pow" (F32.round (2.0 ** 10.0)) (F32.pow 2.0 10.0)

let test_constants () =
  check float_bits "epsilon" (ldexp 1.0 (-23)) F32.epsilon;
  checkb "max finite" true (F32.is_exact F32.max_value && F32.max_value < infinity);
  check float_bits "min normal" (ldexp 1.0 (-126)) F32.min_normal

let prop_round_idempotent =
  qt "round idempotent" finite_float (fun x ->
      let r = F32.round x in
      Int64.equal (Int64.bits_of_float r) (Int64.bits_of_float (F32.round r)))

let prop_round_exact =
  qt "round produces exact values" finite_float (fun x -> F32.is_exact (F32.round x))

let prop_round_monotone =
  qt "round monotone"
    QCheck2.Gen.(pair finite_float finite_float)
    (fun (a, b) ->
      let lo, hi = if a <= b then (a, b) else (b, a) in
      F32.round lo <= F32.round hi)

let prop_add_comm =
  qt "emulated add commutative"
    QCheck2.Gen.(pair finite_float finite_float)
    (fun (a, b) ->
      let a = F32.round a and b = F32.round b in
      Int64.equal (Int64.bits_of_float (F32.add a b)) (Int64.bits_of_float (F32.add b a)))

let prop_mul_by_one =
  qt "x * 1 = x for exact x" finite_float (fun x ->
      let x = F32.round x in
      Int64.equal (Int64.bits_of_float (F32.mul x 1.0)) (Int64.bits_of_float x))

let prop_bits_roundtrip =
  qt "bits/of_bits roundtrip" finite_float (fun x ->
      let x = F32.round x in
      Int64.equal (Int64.bits_of_float (F32.of_bits (F32.bits x))) (Int64.bits_of_float x))

let prop_rel_error_bound =
  qt "rounding relative error below eps/2" finite_float (fun x ->
      let r = F32.round x in
      x = 0.0 || r = 0.0 || Float.is_nan r
      || Float.abs r = infinity
      || Float.abs ((r -. x) /. x) <= F32.epsilon /. 2.0 *. 1.0001)

(* ---------- Replaced ---------- *)

let test_flag_values () =
  check Alcotest.int64 "flag" 0x7FF4DEADL Replaced.flag;
  check Alcotest.int64 "flag shifted" 0x7FF4DEAD00000000L Replaced.flag_shifted

let test_replaced_is_nan () =
  (* the key safety property: every replaced value is a NaN *)
  List.iter
    (fun x -> checkb "nan" true (Float.is_nan (Replaced.downcast x)))
    [ 0.0; 1.0; -1.0; Float.pi; 1e30; -1e-30; infinity ]

let test_downcast_upcast () =
  List.iter
    (fun x ->
      let r = Replaced.downcast x in
      checkb "is_replaced" true (Replaced.is_replaced r);
      check float_bits "upcast = round32" (F32.round x) (Replaced.upcast r))
    [ 0.0; 1.0; -2.5; 0.1; Float.pi; 1e20; -3.25e-12 ]

let test_upcast_rejects_plain () =
  Alcotest.check_raises "upcast plain" (Invalid_argument "Replaced.upcast: value is not replaced")
    (fun () -> ignore (Replaced.upcast 1.0))

let test_coerce () =
  check float_bits "coerce plain" 1.5 (Replaced.coerce 1.5);
  check float_bits "coerce replaced" (F32.round 0.1) (Replaced.coerce (Replaced.downcast 0.1));
  check float_bits "coerce32 plain rounds" (F32.round 0.1) (Replaced.coerce32 0.1);
  check float_bits "coerce32 replaced" (F32.round 0.1) (Replaced.coerce32 (Replaced.downcast 0.1))

let test_is_replaced_negative () =
  List.iter
    (fun x -> checkb "plain not replaced" false (Replaced.is_replaced x))
    [ 0.0; 1.0; -1.0; Float.nan; infinity; neg_infinity; Float.min_float ];
  (* an ordinary quiet NaN is not mistaken for a replaced value *)
  checkb "qnan not replaced" false (Replaced.is_replaced (Int64.float_of_bits 0x7FF8000000000000L))

let test_pp () =
  let s = Format.asprintf "%a" Replaced.pp (Replaced.downcast 1.0) in
  checkb "nonempty" true (String.length s > 0);
  checkb "hex flag visible" true
    (let s = String.lowercase_ascii s in
     let rec contains i =
       i + 8 <= String.length s && (String.sub s i 8 = "7ff4dead" || contains (i + 1))
     in
     contains 0)

let prop_downcast_bits =
  qt "downcast packs float32 bits" finite_float (fun x ->
      let r = Replaced.downcast x in
      let bits = Int64.bits_of_float r in
      Int64.equal (Int64.shift_right_logical bits 32) Replaced.flag
      && Int32.equal (Int64.to_int32 bits) (F32.bits x))

let prop_roundtrip_idempotent =
  qt "downcast of upcast stable" finite_float (fun x ->
      let r = Replaced.downcast x in
      let r2 = Replaced.downcast (Replaced.upcast r) in
      Int64.equal (Int64.bits_of_float r) (Int64.bits_of_float r2))

let suite =
  [
    ("fields64 roundtrip", `Quick, test_fields64_roundtrip);
    ("fields64 values", `Quick, test_fields64_values);
    ("fields32 roundtrip", `Quick, test_fields32_roundtrip);
    ("classify", `Quick, test_classify);
    ("describe", `Quick, test_describe);
    prop_fields64_roundtrip;
    ("round known vectors", `Quick, test_round_known);
    ("round specials", `Quick, test_round_specials);
    ("small ints exact", `Quick, test_exactness_small_ints);
    ("arith known vectors", `Quick, test_arith_known);
    ("constants", `Quick, test_constants);
    prop_round_idempotent;
    prop_round_exact;
    prop_round_monotone;
    prop_add_comm;
    prop_mul_by_one;
    prop_bits_roundtrip;
    prop_rel_error_bound;
    ("flag values", `Quick, test_flag_values);
    ("replaced is nan", `Quick, test_replaced_is_nan);
    ("downcast/upcast", `Quick, test_downcast_upcast);
    ("upcast rejects plain", `Quick, test_upcast_rejects_plain);
    ("coerce", `Quick, test_coerce);
    ("is_replaced negatives", `Quick, test_is_replaced_negative);
    ("pp", `Quick, test_pp);
    prop_downcast_bits;
    prop_roundtrip_idempotent;
  ]
