(* Tests for packed (two-lane) values: semantics, patching of packed
   instructions with per-lane flag fixing, dataflow, assembler, and the
   SIMD cost advantage. *)

let checkb = Alcotest.check Alcotest.bool

let float_bits =
  Alcotest.testable
    (fun ppf x -> Format.fprintf ppf "%h" x)
    (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))

(* out[0..1] = (x0, x1) * (y0, y1) + (z0, z1), packed *)
let packed_program () =
  let t = Builder.create () in
  let base = Builder.alloc_f t 8 in
  let main =
    Builder.func t ~module_:"pk" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let x = Builder.loadfp b (Builder.at base) in
        let y = Builder.loadfp b (Builder.at (base + 2)) in
        let z = Builder.loadfp b (Builder.at (base + 4)) in
        let r = Builder.faddp b (Builder.fmulp b x y) z in
        Builder.storefp b (Builder.at (base + 6)) r)
  in
  (Builder.program t ~main, base)

let input = [| 1.5; 2.5; 0.1; 0.2; 3.0; 4.0 |]

let run ?(checked = false) ?(smode = Vm.Flagged) prog base =
  let vm = Vm.create ~checked ~smode prog in
  Vm.write_f vm base input;
  Vm.run vm;
  (Vm.get_f_value vm (base + 6), Vm.get_f_value vm (base + 7))

let test_packed_semantics () =
  let prog, base = packed_program () in
  let l0, l1 = run prog base in
  Alcotest.check float_bits "lane 0" ((1.5 *. 0.1) +. 3.0) l0;
  Alcotest.check float_bits "lane 1" ((2.5 *. 0.2) +. 4.0) l1

let test_packed_mnemonics () =
  Alcotest.(check string) "addpd" "addpd" (Ir.mnemonic (Fbinp (D, Add, 0, 2, 4)));
  Alcotest.(check string) "mulps" "mulps" (Ir.mnemonic (Fbinp (S, Mul, 0, 2, 4)));
  Alcotest.(check (list int)) "defs both lanes" [ 0; 1 ] (Ir.defined_fregs (Fbinp (D, Add, 0, 2, 4)));
  Alcotest.(check (list int)) "uses both lanes" [ 2; 3; 4; 5 ] (Ir.used_fregs (Fbinp (D, Add, 0, 2, 4)))

let test_packed_validation () =
  (* lane 1 out of the register file must be rejected *)
  let f : Ir.func =
    {
      fid = 0;
      fname = "main";
      module_name = "m";
      n_fargs = 0;
      n_iargs = 0;
      ret_fregs = [||];
      ret_iregs = [||];
      n_fregs = 5;
      n_iregs = 1;
      entry = 0;
      blocks = [| { label = 1; instrs = [| { addr = 0; op = Fbinp (D, Add, 4, 0, 2) } |]; term = Ret } |];
    }
  in
  let p : Ir.program =
    { funcs = [| f |]; main = 0; fheap_size = 1; iheap_size = 1; modules = [| "m" |] }
  in
  checkb "rejected" true (match Ir.validate p with Error _ -> true | Ok () -> false)

let test_packed_all_double_identity () =
  let prog, base = packed_program () in
  let native = run prog base in
  let patched = Patcher.patch prog Config.empty in
  checkb "bit-for-bit" true (native = run ~checked:true patched base)

let test_packed_single_vs_manual () =
  let prog, base = packed_program () in
  let cfg = Config.set_module Config.empty "pk" Config.Single in
  let instrumented = run ~checked:true (Patcher.patch prog cfg) base in
  let manual = run ~checked:true ~smode:Vm.Plain (To_single.convert prog) base in
  checkb "equal" true (instrumented = manual);
  (* and single rounding is visible *)
  checkb "differs from double" true (instrumented <> run prog base)

let test_packed_flags_both_lanes () =
  (* after a single packed op, both lanes carry the replacement flag
     ("fix flags in any packed outputs") *)
  let prog, base = packed_program () in
  let cfg = Config.set_module Config.empty "pk" Config.Single in
  let patched = Patcher.patch prog cfg in
  let vm = Vm.create ~checked:true patched in
  Vm.write_f vm base input;
  Vm.run vm;
  checkb "lane 0 flagged in memory" true (Replaced.is_replaced (Vm.get_f vm (base + 6)));
  checkb "lane 1 flagged in memory" true (Replaced.is_replaced (Vm.get_f vm (base + 7)))

let test_packed_dataflow_equivalence () =
  let prog, base = packed_program () in
  let cfg = Config.set_module Config.empty "pk" Config.Single in
  let plain = run ~checked:true (Patcher.patch prog cfg) base in
  let opt = run ~checked:true (Patcher.patch ~dataflow:true prog cfg) base in
  checkb "equivalent" true (plain = opt)

let test_packed_asm_roundtrip () =
  let prog, _ = packed_program () in
  let text = Format.asprintf "%a" Ir.pp_program prog in
  let prog2 = Asm.parse_exn text in
  Alcotest.(check string) "roundtrip" text (Format.asprintf "%a" Ir.pp_program prog2)

let test_packed_cost_advantage () =
  (* packed version of a stream kernel costs fewer compute cycles than the
     scalar version of the same math *)
  let build packed =
    let t = Builder.create () in
    let n = 64 in
    let x = Builder.alloc_f t n in
    let y = Builder.alloc_f t n in
    let main =
      Builder.func t ~module_:"s" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
          if packed then
            Builder.for_range b 0 (n / 2) (fun i ->
                let i2 = Builder.imulc b i 2 in
                let v = Builder.loadfp b (Builder.idx x i2) in
                let w = Builder.fmulp b v v in
                Builder.storefp b (Builder.idx y i2) w)
          else
            Builder.for_range b 0 n (fun i ->
                let v = Builder.loadf b (Builder.idx x i) in
                Builder.storef b (Builder.idx y i) (Builder.fmul b v v)))
    in
    Builder.program t ~main
  in
  let cost packed =
    let vm = Vm.create (build packed) in
    Vm.run vm;
    (Cost.of_run vm).Cost.cycles
  in
  checkb "packed cheaper" true (cost true < cost false)

let suite =
  [
    ("packed semantics", `Quick, test_packed_semantics);
    ("packed mnemonics and def/use", `Quick, test_packed_mnemonics);
    ("packed validation", `Quick, test_packed_validation);
    ("packed all-double identity", `Quick, test_packed_all_double_identity);
    ("packed single vs manual", `Quick, test_packed_single_vs_manual);
    ("packed flags on both lanes", `Quick, test_packed_flags_both_lanes);
    ("packed dataflow equivalence", `Quick, test_packed_dataflow_equivalence);
    ("packed asm roundtrip", `Quick, test_packed_asm_roundtrip);
    ("packed cost advantage", `Quick, test_packed_cost_advantage);
  ]
