(* Tests for the end-to-end analysis pipeline (paper Fig. 2). *)

let checkb = Alcotest.check Alcotest.bool

let tiny_target () =
  let t = Builder.create () in
  let out = Builder.alloc_f t 2 in
  let main =
    Builder.func t ~module_:"app" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        (* chain 0 uses an exact constant (replaceable), chain 1 an inexact
           one whose rounding the verification rejects *)
        let a = Builder.fconst b 0.5 in
        Builder.storef b (Builder.at out) (Builder.fmul b a a);
        let c = Builder.fconst b 0.1 in
        Builder.storef b (Builder.at (out + 1)) (Builder.fmul b c c))
  in
  let program = Builder.program t ~main in
  ( program,
    (fun (_ : Vm.t) -> ()),
    (fun vm -> Vm.read_f vm out 2),
    fun res -> res.(0) = 0.25 && res.(1) = 0.1 *. 0.1 )

let test_recommend () =
  let program, setup, output, verify = tiny_target () in
  let r = Analysis.recommend ~program ~setup ~output ~verify () in
  checkb "final passes" true r.Analysis.result.Bfs.final_pass;
  checkb "replaced something" true (r.Analysis.result.Bfs.static_replaced > 0);
  checkb "not everything" true
    (r.Analysis.result.Bfs.static_replaced
    < Array.length (Static.candidates program));
  checkb "config text renders" true (String.length r.Analysis.config_text > 0);
  checkb "tree renders" true (String.length r.Analysis.tree > 0);
  checkb "costs positive" true
    (r.Analysis.native_cost.Cost.time_cycles > 0.0
    && r.Analysis.converted_cost.Cost.time_cycles > 0.0);
  checkb "speedup sane" true
    (r.Analysis.projected_speedup > 0.5 && r.Analysis.projected_speedup < 10.0)

let test_recommended_config_parses_back () =
  let program, setup, output, verify = tiny_target () in
  let r = Analysis.recommend ~program ~setup ~output ~verify () in
  match Config.parse program r.Analysis.config_text with
  | Ok cfg ->
      Array.iter
        (fun info ->
          if Config.effective cfg info <> Config.effective r.Analysis.result.Bfs.final info
          then Alcotest.fail "roundtrip changed a flag")
        (Static.candidates program)
  | Error e -> Alcotest.fail e

let test_summary_renders () =
  let program, setup, output, verify = tiny_target () in
  let r = Analysis.recommend ~program ~setup ~output ~verify () in
  let s = Format.asprintf "%a" Analysis.pp_summary r in
  checkb "mentions candidates" true
    (let rec contains i =
       i + 10 <= String.length s && (String.sub s i 10 = "candidates" || contains (i + 1))
     in
     contains 0)

let suite =
  [
    ("recommend", `Quick, test_recommend);
    ("recommended config parses back", `Quick, test_recommended_config_parses_back);
    ("summary renders", `Quick, test_summary_renders);
  ]
