(* Tests for precision configurations: the aggregate-overrides-children
   semantics, union, the exchange file format, and the tree view. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let flag = Alcotest.testable
    (fun ppf f -> Format.pp_print_char ppf (Config.flag_char f))
    ( = )

(* A two-module program with two functions and several candidates. *)
let program () =
  let t = Builder.create () in
  let base = Builder.alloc_f t 4 in
  let helper =
    Builder.func t ~module_:"modA" "helper" ~nf_args:1 ~ni_args:0 (fun b fa _ ->
        Builder.ret b ~f:[ Builder.fmul b fa.(0) fa.(0) ] ())
  in
  let main =
    Builder.func t ~module_:"modB" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let x = Builder.fconst b 1.5 in
        let r, _ = Builder.call b helper ~fargs:[ x ] ~iargs:[] in
        let y = Builder.fadd b r.(0) x in
        let z = Builder.fdiv b y (Builder.fconst b 3.0) in
        Builder.storef b (Builder.at base) (Builder.fsqrt b z))
  in
  Builder.program t ~main

let candidates p = Array.to_list (Static.candidates p)

let find_by_prefix p prefix =
  List.find
    (fun (i : Static.insn_info) ->
      String.length i.disasm >= String.length prefix
      && String.sub i.disasm 0 (String.length prefix) = prefix)
    (candidates p)

let test_default_double () =
  let p = program () in
  List.iter
    (fun info -> Alcotest.check flag "default" Config.Double (Config.effective Config.empty info))
    (candidates p)

let test_insn_flag () =
  let p = program () in
  let mul = find_by_prefix p "mulsd" in
  let cfg = Config.set_insn Config.empty mul.Static.addr Config.Single in
  Alcotest.check flag "set" Config.Single (Config.effective cfg mul);
  List.iter
    (fun (i : Static.insn_info) ->
      if i.addr <> mul.addr then
        Alcotest.check flag "others untouched" Config.Double (Config.effective cfg i))
    (candidates p)

let test_func_overrides_insn () =
  let p = program () in
  let mul = find_by_prefix p "mulsd" in
  let cfg = Config.set_insn Config.empty mul.Static.addr Config.Double in
  let cfg = Config.set_func cfg "helper" Config.Single in
  (* the paper's semantics: the aggregate flag wins over the child's *)
  Alcotest.check flag "func overrides insn" Config.Single (Config.effective cfg mul)

let test_module_overrides_func () =
  let p = program () in
  let mul = find_by_prefix p "mulsd" in
  let cfg = Config.set_func Config.empty "helper" Config.Double in
  let cfg = Config.set_module cfg "modA" Config.Single in
  Alcotest.check flag "module overrides func" Config.Single (Config.effective cfg mul)

let test_block_level () =
  let p = program () in
  let mul = find_by_prefix p "mulsd" in
  let cfg = Config.set_block Config.empty mul.Static.block_label Config.Ignore in
  Alcotest.check flag "block flag" Config.Ignore (Config.effective cfg mul)

let test_union_left_wins () =
  let p = program () in
  let mul = find_by_prefix p "mulsd" in
  let a = Config.set_insn Config.empty mul.Static.addr Config.Single in
  let b = Config.set_insn Config.empty mul.Static.addr Config.Ignore in
  Alcotest.check flag "left wins" Config.Single (Config.effective (Config.union a b) mul);
  Alcotest.check flag "right loses" Config.Ignore (Config.effective (Config.union b a) mul)

let test_union_merges () =
  let p = program () in
  let mul = find_by_prefix p "mulsd" in
  let add = find_by_prefix p "addsd" in
  let a = Config.set_insn Config.empty mul.Static.addr Config.Single in
  let b = Config.set_insn Config.empty add.Static.addr Config.Single in
  let u = Config.union a b in
  Alcotest.check flag "a part" Config.Single (Config.effective u mul);
  Alcotest.check flag "b part" Config.Single (Config.effective u add)

let test_is_empty () =
  checkb "empty" true (Config.is_empty Config.empty);
  checkb "nonempty" false (Config.is_empty (Config.set_func Config.empty "helper" Config.Single))

let test_stats () =
  let p = program () in
  let total = List.length (candidates p) in
  let s, d, i = Config.stats p Config.empty in
  checki "all double" total d;
  checki "no single" 0 s;
  checki "no ignore" 0 i;
  let cfg = Config.set_module Config.empty "modB" Config.Single in
  let s2, _, _ = Config.stats p cfg in
  let in_b =
    List.length (List.filter (fun (c : Static.insn_info) -> c.module_name = "modB") (candidates p))
  in
  checki "modB single" in_b s2

let test_set_node () =
  let p = program () in
  let tree = Static.tree p in
  let cfg =
    List.fold_left (fun acc n -> Config.set_node acc n Config.Single) Config.empty tree
  in
  let s, d, i = Config.stats p cfg in
  checki "all single" (List.length (candidates p)) s;
  checki "none double" 0 d;
  checki "none ignore" 0 i

let test_print_contains_structures () =
  let p = program () in
  let txt = Config.print p Config.empty in
  let contains needle =
    let n = String.length needle and m = String.length txt in
    let rec go i = i + n <= m && (String.sub txt i n = needle || go (i + 1)) in
    go 0
  in
  checkb "module A" true (contains "MODULE: modA");
  checkb "module B" true (contains "MODULE: modB");
  checkb "helper" true (contains "helper()");
  checkb "an insn" true (contains "INSN01");
  checkb "disasm quoted" true (contains "\"mulsd")

let test_print_flag_column () =
  let p = program () in
  let mul = find_by_prefix p "mulsd" in
  let cfg = Config.set_insn Config.empty mul.Static.addr Config.Single in
  let cfg = Config.set_func cfg "main" Config.Ignore in
  let txt = Config.print p cfg in
  let lines = String.split_on_char '\n' txt in
  checkb "has s line" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = 's') lines);
  checkb "has i line" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = 'i') lines)

let effective_equal p a b =
  List.for_all (fun info -> Config.effective a info = Config.effective b info) (candidates p)

let test_roundtrip_simple () =
  let p = program () in
  let mul = find_by_prefix p "mulsd" in
  let cfg = Config.set_insn Config.empty mul.Static.addr Config.Single in
  let cfg = Config.set_module cfg "modB" Config.Single in
  match Config.parse p (Config.print p cfg) with
  | Ok cfg2 -> checkb "same effective flags" true (effective_equal p cfg cfg2)
  | Error e -> Alcotest.fail e

let test_roundtrip_random =
  let gen =
    QCheck2.Gen.(list_size (int_bound 8) (pair (int_bound 20) (int_bound 2)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"print/parse roundtrip (random configs)" gen
       (fun choices ->
         let p = program () in
         let cands = Array.of_list (candidates p) in
         let flag_of = function 0 -> Config.Single | 1 -> Config.Double | _ -> Config.Ignore in
         let cfg =
           List.fold_left
             (fun acc (k, f) ->
               let info = cands.(k mod Array.length cands) in
               Config.set_insn acc info.Static.addr (flag_of f))
             Config.empty choices
         in
         match Config.parse p (Config.print p cfg) with
         | Ok cfg2 -> effective_equal p cfg cfg2
         | Error _ -> false))

let test_parse_errors () =
  let p = program () in
  let err txt =
    match Config.parse p txt with Ok _ -> Alcotest.fail "expected error" | Error _ -> ()
  in
  err " MODULE: nonexistent";
  err " FUNC09: nosuchfunc()";
  err " BBLK99";
  err " INSN01: 0xfffff \"addsd\"";
  err " GARBAGE LINE"

let test_parse_blank_and_unflagged () =
  let p = program () in
  (* unflagged structure lines parse as no-flag; blanks are skipped *)
  match Config.parse p "\n MODULE: modA\n\n   FUNC01: helper()\n" with
  | Ok cfg -> checkb "no flags set" true (Config.is_empty cfg)
  | Error e -> Alcotest.fail e

let test_tree_view () =
  let p = program () in
  let cfg = Config.set_module Config.empty "modA" Config.Single in
  let txt = Tree_view.render p cfg in
  let contains needle =
    let n = String.length needle and m = String.length txt in
    let rec go i = i + n <= m && (String.sub txt i n = needle || go (i + 1)) in
    go 0
  in
  checkb "module line with summary" true (contains "MODULE modA");
  checkb "summary counts" true (contains "[s:1 d:0 of 1]");
  checkb "flag chars on leaves" true (contains "s 0x")

let test_tree_view_counts () =
  let p = program () in
  let vm = Vm.create p in
  Vm.run vm;
  let txt = Tree_view.render ~counts:vm.Vm.counts p Config.empty in
  let contains needle =
    let n = String.length needle and m = String.length txt in
    let rec go i = i + n <= m && (String.sub txt i n = needle || go (i + 1)) in
    go 0
  in
  checkb "exec counts shown" true (contains "(exec 1)")

let suite =
  [
    ("default double", `Quick, test_default_double);
    ("insn flag", `Quick, test_insn_flag);
    ("func overrides insn", `Quick, test_func_overrides_insn);
    ("module overrides func", `Quick, test_module_overrides_func);
    ("block level", `Quick, test_block_level);
    ("union: left wins", `Quick, test_union_left_wins);
    ("union merges", `Quick, test_union_merges);
    ("is_empty", `Quick, test_is_empty);
    ("stats", `Quick, test_stats);
    ("set_node over tree", `Quick, test_set_node);
    ("print: structures present", `Quick, test_print_contains_structures);
    ("print: flag column", `Quick, test_print_flag_column);
    ("roundtrip simple", `Quick, test_roundtrip_simple);
    test_roundtrip_random;
    ("parse errors", `Quick, test_parse_errors);
    ("parse blank/unflagged", `Quick, test_parse_blank_and_unflagged);
    ("tree view", `Quick, test_tree_view);
    ("tree view with counts", `Quick, test_tree_view_counts);
  ]
