(* Tests for the patcher and the manual conversion: block splitting, snippet
   emission, the bit-for-bit equivalences of paper §3.1, and ignore/crash
   semantics. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* y[i] = sqrt(x[i]) * c + x[i] / d over n elements, with a helper call *)
let sample_program n =
  let t = Builder.create () in
  let x = Builder.alloc_f t n in
  let y = Builder.alloc_f t n in
  let helper =
    Builder.func t ~module_:"demo" "helper" ~nf_args:1 ~ni_args:0 (fun b fa _ ->
        Builder.ret b ~f:[ Builder.fsqrt b fa.(0) ] ())
  in
  let main =
    Builder.func t ~module_:"demo" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        let c = Builder.fconst b 3.5 in
        let d = Builder.fconst b 1.7 in
        Builder.for_range b 0 n (fun i ->
            let xi = Builder.loadf b (Builder.idx x i) in
            let s, _ = Builder.call b helper ~fargs:[ xi ] ~iargs:[] in
            let a = Builder.fmul b s.(0) c in
            let q = Builder.fdiv b xi d in
            Builder.storef b (Builder.idx y i) (Builder.fadd b a q)))
  in
  (Builder.program t ~main, x, y)

let input n = Array.init n (fun i -> (float_of_int i +. 1.0) *. 0.37)

let run_with prog ~x ~y ~n ?(smode = Vm.Flagged) ?(checked = false) () =
  let vm = Vm.create ~checked ~smode prog in
  Vm.write_f vm x (input n);
  Vm.run vm;
  (Vm.read_f vm y n, vm)

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v)) a b

let test_patched_validates () =
  let prog, _, _ = sample_program 4 in
  let patched = Patcher.patch prog Config.empty in
  match Ir.validate patched with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es)

let test_all_double_bit_for_bit () =
  let n = 16 in
  let prog, x, y = sample_program n in
  let native, _ = run_with prog ~x ~y ~n () in
  let patched = Patcher.patch prog Config.empty in
  let out, _ = run_with patched ~x ~y ~n ~checked:true () in
  checkb "bit-for-bit" true (bits_equal native out)

let test_all_single_equals_manual_conversion () =
  let n = 16 in
  let prog, x, y = sample_program n in
  let cfg = Config.set_module Config.empty "demo" Config.Single in
  let patched = Patcher.patch prog cfg in
  let instrumented, _ = run_with patched ~x ~y ~n ~checked:true () in
  let converted = To_single.convert prog in
  let manual, _ = run_with converted ~x ~y ~n ~smode:Vm.Plain ~checked:true () in
  checkb "bit-for-bit vs manual single" true (bits_equal instrumented manual)

let test_single_differs_from_double () =
  let n = 16 in
  let prog, x, y = sample_program n in
  let native, _ = run_with prog ~x ~y ~n () in
  let cfg = Config.set_module Config.empty "demo" Config.Single in
  let out, _ = run_with (Patcher.patch prog cfg) ~x ~y ~n ~checked:true () in
  checkb "rounding visible" false (bits_equal native out);
  checkb "but close" true (Stats.rel_err_inf out native < 1e-5)

let test_block_splitting () =
  let prog, _, _ = sample_program 4 in
  let patched = Patcher.patch prog Config.empty in
  let count_blocks p =
    Array.fold_left (fun acc (f : Ir.func) -> acc + Array.length f.Ir.blocks) 0 p.Ir.funcs
  in
  (* every checked float operand adds a conversion and a continuation block *)
  checkb "blocks added" true (count_blocks patched > count_blocks prog);
  let stats = Patcher.patch_stats prog patched in
  checkb "stats mention splits" true
    (let rec contains i =
       i + 9 <= String.length stats && (String.sub stats i 9 = "splitting" || contains (i + 1))
     in
     contains 0)

let test_original_addresses_kept () =
  let prog, _, _ = sample_program 4 in
  let cands = Static.candidates prog in
  let patched = Patcher.patch prog Config.empty in
  let patched_addrs =
    Array.to_list patched.Ir.funcs
    |> List.concat_map (fun (f : Ir.func) ->
           Array.to_list f.Ir.blocks
           |> List.concat_map (fun (b : Ir.block) ->
                  Array.to_list b.Ir.instrs |> List.map (fun (i : Ir.instr) -> i.Ir.addr)))
  in
  Array.iter
    (fun (c : Static.insn_info) ->
      checkb "candidate addr survives" true (List.mem c.Static.addr patched_addrs))
    cands

let test_rewritten_opcode_single () =
  let prog, _, _ = sample_program 2 in
  let cfg = Config.set_module Config.empty "demo" Config.Single in
  let patched = Patcher.patch prog cfg in
  let has_ss = ref false in
  Array.iter
    (fun (f : Ir.func) ->
      Array.iter
        (fun (b : Ir.block) ->
          Array.iter
            (fun (i : Ir.instr) ->
              match i.Ir.op with
              | Fbin (S, _, _, _, _) | Funop (S, _, _, _) | Fconst (S, _, _) -> has_ss := true
              | _ -> ())
            b.Ir.instrs)
        f.Ir.blocks)
    patched.Ir.funcs;
  checkb "single opcodes present" true !has_ss

let test_snippet_structure () =
  (* a Double-kept instruction still gets testflag+upcast diamonds *)
  let prog, _, _ = sample_program 2 in
  let patched = Patcher.patch prog Config.empty in
  let n_test = ref 0 and n_up = ref 0 and n_down = ref 0 in
  Array.iter
    (fun (f : Ir.func) ->
      Array.iter
        (fun (b : Ir.block) ->
          Array.iter
            (fun (i : Ir.instr) ->
              match i.Ir.op with
              | Ftestflag _ -> incr n_test
              | Fupcast _ -> incr n_up
              | Fdowncast _ -> incr n_down
              | _ -> ())
            b.Ir.instrs)
        f.Ir.blocks)
    patched.Ir.funcs;
  checkb "testflags emitted" true (!n_test > 0);
  checkb "upcasts emitted" true (!n_up > 0);
  checki "no downcasts in all-double" 0 !n_down

let test_ignore_left_untouched () =
  let n = 8 in
  let prog, x, y = sample_program n in
  let cfg = Config.set_module Config.empty "demo" Config.Ignore in
  let patched = Patcher.patch prog cfg in
  (* nothing patched: instruction count unchanged *)
  checki "same instruction count" (Static.insn_count prog) (Static.insn_count patched);
  let native, _ = run_with prog ~x ~y ~n () in
  let out, _ = run_with patched ~x ~y ~n ~checked:true () in
  checkb "identical" true (bits_equal native out)

let test_missed_instruction_crashes () =
  (* the paper's safety property: if an instruction consuming replaced
     values is skipped (ignore), the checked run traps instead of silently
     mis-rounding *)
  let n = 4 in
  let prog, x, y = sample_program n in
  let mul =
    Array.to_list (Static.candidates prog)
    |> List.find (fun (i : Static.insn_info) ->
           String.length i.disasm >= 5 && String.sub i.disasm 0 5 = "mulsd")
  in
  (* everything single at instruction level, except the ignored mul *)
  let cfg =
    Array.fold_left
      (fun acc (i : Static.insn_info) ->
        if i.addr = mul.Static.addr then Config.set_insn acc i.addr Config.Ignore
        else Config.set_insn acc i.addr Config.Single)
      Config.empty (Static.candidates prog)
  in
  let patched = Patcher.patch prog cfg in
  checkb "traps" true
    (match run_with patched ~x ~y ~n ~checked:true () with
    | exception Vm.Trap _ -> true
    | _ -> false)

let test_with_prec () =
  let op : Ir.op = Fbin (D, Add, 0, 1, 2) in
  checkb "to S" true (Patcher.with_prec op S = Fbin (S, Add, 0, 1, 2));
  checkb "raises on mover" true
    (try
       ignore (Patcher.with_prec (Fmov (0, 1)) S);
       false
     with Invalid_argument _ -> true)

let test_snippet_listing () =
  let s = Patcher.snippet_listing () in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  checkb "shows original addsd" true (contains "addsd");
  checkb "rewritten to addss" true (contains "addss");
  checkb "flag test" true (contains "testflag");
  checkb "conditional downcast" true (contains "cvtsd2ss.flag");
  checkb "branching" true (contains "br i")

let test_to_single_all () =
  let prog, _, _ = sample_program 2 in
  let conv = To_single.convert prog in
  Array.iter
    (fun (f : Ir.func) ->
      Array.iter
        (fun (b : Ir.block) ->
          Array.iter
            (fun (i : Ir.instr) ->
              match i.Ir.op with
              | Fbin (D, _, _, _, _) | Funop (D, _, _, _) | Fconst (D, _, _)
              | Flibm (D, _, _, _) | Fcmp (D, _, _, _, _) ->
                  Alcotest.fail "double candidate left in converted program"
              | _ -> ())
            b.Ir.instrs)
        f.Ir.blocks)
    conv.Ir.funcs

let test_convert_config_partial () =
  let prog, x, y = sample_program 8 in
  let cfg = Config.set_func Config.empty "helper" Config.Single in
  let conv = To_single.convert_config prog cfg in
  (* helper's sqrt is single; main's ops stay double *)
  let f = Ir.find_func conv "helper" in
  let has_single_sqrt =
    Array.exists
      (fun (b : Ir.block) ->
        Array.exists
          (fun (i : Ir.instr) -> match i.Ir.op with Funop (S, Sqrt, _, _) -> true | _ -> false)
          b.Ir.instrs)
      f.Ir.blocks
  in
  checkb "helper sqrt single" true has_single_sqrt;
  let m = Ir.find_func conv "main" in
  let main_all_double =
    Array.for_all
      (fun (b : Ir.block) ->
        Array.for_all
          (fun (i : Ir.instr) ->
            match i.Ir.op with
            | Fbin (S, _, _, _, _) | Fconst (S, _, _) -> false
            | _ -> true)
          b.Ir.instrs)
      m.Ir.blocks
  in
  checkb "main still double" true main_all_double;
  (* and it runs in plain mode *)
  let out, _ = run_with conv ~x ~y ~n:8 ~smode:Vm.Plain ~checked:true () in
  checkb "close to native" true (Stats.rel_err_inf out (fst (run_with prog ~x ~y ~n:8 ())) < 1e-5)

let suite =
  [
    ("patched program validates", `Quick, test_patched_validates);
    ("all-double bit-for-bit", `Quick, test_all_double_bit_for_bit);
    ("all-single equals manual conversion", `Quick, test_all_single_equals_manual_conversion);
    ("single differs from double", `Quick, test_single_differs_from_double);
    ("block splitting", `Quick, test_block_splitting);
    ("original addresses kept", `Quick, test_original_addresses_kept);
    ("opcode rewriting", `Quick, test_rewritten_opcode_single);
    ("snippet structure", `Quick, test_snippet_structure);
    ("ignore left untouched", `Quick, test_ignore_left_untouched);
    ("missed instruction crashes", `Quick, test_missed_instruction_crashes);
    ("with_prec", `Quick, test_with_prec);
    ("snippet listing", `Quick, test_snippet_listing);
    ("to_single converts all", `Quick, test_to_single_all);
    ("convert_config partial", `Quick, test_convert_config_partial);
  ]
