(* Shadow-value precision analysis guiding the mixed-precision search.

   One traced native run maintains a single-precision shadow next to every
   double value and prices each instruction's sensitivity; the search then
   starts from the predicted configuration, walks the frontier most-tolerant
   first, and skips (journaling, never silently) candidates predicted to be
   hopeless — reaching the same final configuration in far fewer
   instrumented evaluations.

   Run with: dune exec examples/shadow_guided.exe *)

let () =
  let k = Nas_cg.make Kernel.W in
  let prog = k.Kernel.program in

  (* 1. trace: one native run with the shadow tracer attached *)
  let tracer =
    Shadow_tracer.create ~config:(Shadow_tracer.all_single ~base:k.Kernel.hints prog) prog
  in
  let (_ : Vm.t) = Shadow_tracer.trace tracer ~setup:k.Kernel.setup in
  let report = Shadow_report.make ~base:k.Kernel.hints prog tracer in

  (* 2. the five most single-tolerant structures *)
  Format.printf "=== most tolerant structures (predicted divergence) ===@.";
  List.iteri
    (fun i (node, div) ->
      if i < 5 then Format.printf "  %-24s %.3e@." (Static.node_name node) div)
    (Shadow_report.ranked report);

  (* 3. unguided vs shadow-guided search *)
  let search ~shadow =
    Bfs.search
      ~options:{ Bfs.default_options with base = k.Kernel.hints; shadow }
      (Kernel.target k)
  in
  let plain = search ~shadow:None in
  let guided = search ~shadow:(Some (Bfs.shadow ~prune_above:1e-1 report)) in
  Format.printf "@.=== unguided vs shadow-guided BFS ===@.";
  Format.printf "unguided: %d evaluations, %d/%d replaced, final %s@." plain.Bfs.tested
    plain.Bfs.static_replaced plain.Bfs.candidates
    (if plain.Bfs.final_pass then "pass" else "fail");
  Format.printf "shadow:   %d evaluations (%d pruned), %d/%d replaced, final %s@."
    guided.Bfs.tested guided.Bfs.pruned guided.Bfs.static_replaced guided.Bfs.candidates
    (if guided.Bfs.final_pass then "pass" else "fail");
  Format.printf "saved %.1f%% of the evaluations@."
    (100.0 *. (1.0 -. (float_of_int guided.Bfs.tested /. float_of_int plain.Bfs.tested)))
