(* The craft command-line tool: exposes the analysis pipeline on the bundled
   benchmark binaries (list, disassemble, run, view configurations, patch,
   search, recommend). *)

open Cmdliner

let kernels () =
  let mk name f = (name, f) in
  [
    mk "ep" (fun c -> Nas_ep.make c);
    mk "cg" (fun c -> Nas_cg.make c);
    mk "ft" (fun c -> Nas_ft.make c);
    mk "mg" (fun c -> Nas_mg.make c);
    mk "bt" (fun c -> Nas_bt.make c);
    mk "lu" (fun c -> Nas_lu.make c);
    mk "sp" (fun c -> Nas_sp.make c);
  ]

let class_of_string = function
  | "W" | "w" -> Ok Kernel.W
  | "A" | "a" -> Ok Kernel.A
  | "C" | "c" -> Ok Kernel.C
  | s -> Error (Printf.sprintf "unknown class %S (use W, A or C)" s)

let load name cls =
  if String.equal name "amg" then Ok (Amg_kernel.make ())
  else
    match List.assoc_opt name (kernels ()) with
    | Some f -> Ok (f cls)
    | None -> Error (Printf.sprintf "unknown benchmark %S" name)

let bench_arg =
  let doc = "Benchmark name: ep, cg, ft, mg, bt, lu, sp or amg." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

let class_arg =
  let doc = "Problem class (W, A or C)." in
  Arg.(value & opt string "W" & info [ "c"; "class" ] ~docv:"CLASS" ~doc)

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("craft: " ^ msg);
      exit 1

let with_kernel name cls f =
  let cls = or_die (class_of_string cls) in
  let k = or_die (load name cls) in
  f k

let list_cmd =
  let run () =
    List.iter (fun (n, _) -> Printf.printf "%s\t(classes W A C)\n" n) (kernels ());
    print_endline "amg\t(single configuration)"
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled benchmark binaries") Term.(const run $ const ())

let listing_cmd =
  let run name cls =
    with_kernel name cls (fun k -> Format.printf "%a@." Ir.pp_program k.Kernel.program)
  in
  Cmd.v
    (Cmd.info "listing" ~doc:"Disassemble a benchmark binary")
    Term.(const run $ bench_arg $ class_arg)

let run_cmd =
  let run name cls =
    with_kernel name cls (fun k ->
        let out, vm = Kernel.run_native k in
        let cost = Cost.of_run vm in
        Format.printf "outputs:@.";
        Array.iteri (fun i v -> Format.printf "  [%d] %.17g@." i v) out;
        Format.printf "verification: %s@." (if k.Kernel.verify out then "pass" else "fail");
        Format.printf "executed %d instructions (%d FP), modeled %.3e cycles@." vm.Vm.steps
          cost.Cost.fp_ops cost.Cost.time_cycles)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a benchmark binary natively and verify")
    Term.(const run $ bench_arg $ class_arg)

let config_arg =
  let doc = "Configuration file in the exchange format (omit for all-double)." in
  Arg.(value & opt (some file) None & info [ "f"; "config" ] ~docv:"FILE" ~doc)

let read_config program = function
  | None -> Config.empty
  | Some path ->
      let ic = open_in path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      or_die (Config.parse program text |> Result.map_error (fun e -> "config: " ^ e))

let view_cmd =
  let run name cls cfg_file =
    with_kernel name cls (fun k ->
        let cfg = read_config k.Kernel.program cfg_file in
        let _, vm = Kernel.run_native k in
        print_string (Tree_view.render ~counts:vm.Vm.counts k.Kernel.program cfg))
  in
  Cmd.v
    (Cmd.info "view" ~doc:"Render a configuration over the program tree (the GUI view)")
    Term.(const run $ bench_arg $ class_arg $ config_arg)

let patch_cmd =
  let run name cls cfg_file =
    with_kernel name cls (fun k ->
        let cfg = read_config k.Kernel.program cfg_file in
        let patched = Patcher.patch k.Kernel.program cfg in
        print_endline (Patcher.patch_stats k.Kernel.program patched);
        let out, pvm = Kernel.run_patched ~config:cfg k in
        let nout, nvm = Kernel.run_native k in
        Format.printf "verification: %s@." (if k.Kernel.verify out then "pass" else "fail");
        Format.printf "max |instrumented - native|: %.3e@."
          (Array.fold_left Float.max 0.0
             (Array.map2 (fun a bv -> Float.abs (a -. bv)) out nout));
        Format.printf "overhead: %.2fX@." (Cost.overhead (Cost.of_run pvm) (Cost.of_run nvm)))
  in
  Cmd.v
    (Cmd.info "patch" ~doc:"Instrument a benchmark under a configuration and run it")
    Term.(const run $ bench_arg $ class_arg $ config_arg)

let workers_arg =
  Arg.(value & opt int 1 & info [ "j"; "workers" ] ~docv:"N" ~doc:"Parallel evaluation domains.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the final configuration here.")

let strategy_arg =
  let doc =
    "Search strategy: bfs (the paper's breadth-first descent), split \
     (count-weighted binary splitting), delta (Precimonious-style \
     delta-debugging), anneal[:seed] (shadow-seeded greedy descent with \
     random restarts), or the legacy ddmax/greedy baselines."
  in
  Arg.(value & opt string "bfs" & info [ "s"; "strategy" ] ~docv:"STRATEGY" ~doc)

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Append every evaluation verdict to $(docv) (flushed per record), making the \
           campaign crash-safe. Without $(b,--resume) the file is truncated first.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Replay the journal before searching: already-tested configurations are served \
           from it and an interrupted campaign continues instead of restarting. Requires \
           $(b,--journal).")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry budget per evaluation for flaky verdicts (trap, step-timeout, crash), \
           with deterministic exponential backoff.")

let eval_steps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "eval-steps" ] ~docv:"N"
        ~doc:
          "Per-evaluation VM step budget; a configuration exceeding it is classified as a \
           step-timeout instead of hanging the search (default 2e9).")

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"SPEC"
        ~doc:
          "Arm the deterministic fault injector around every evaluation, e.g. \
           $(b,seed=7,rate=0.2,modes=trap+hang+bitflip,transient) — a demo that the \
           harness contains every failure mode.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Per-evaluation wall-clock deadline, enforced by the worker-pool supervisor on \
           top of the VM step budget. A late evaluation is first cancelled cooperatively \
           (classified as a timeout); a worker that stays hung is abandoned and replaced.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Atomically snapshot the live BFS state (work queue, passing set, counters) to \
           $(docv) at every wave boundary. With $(b,--resume), restore from it and \
           restart mid-level instead of replaying the whole journal.")

let quarantine_arg =
  Arg.(
    value & opt int 2
    & info [ "quarantine-after" ] ~docv:"N"
        ~doc:
          "Quarantine a configuration with a crash verdict after it has killed $(docv) \
           evaluation workers, instead of retrying it forever (default 2).")

let shadow_flag =
  Arg.(
    value & flag
    & info [ "shadow" ]
        ~doc:
          "Run a shadow-value precision analysis (one traced native run) first and use it \
           to guide the search: seed the passing set with the predicted configuration, \
           reorder the frontier by predicted tolerance, and prune candidates whose \
           predicted divergence exceeds the $(b,--shadow-prune) bound. Every pruned \
           candidate is logged (and journaled as a $(i,pruned) verdict with \
           $(b,--journal)), never dropped silently. BFS strategy only.")

let shadow_threshold_arg =
  Arg.(
    value
    & opt float Shadow_report.default_threshold
    & info [ "shadow-threshold" ] ~docv:"REL"
        ~doc:
          "Worst-case relative divergence below which a structure is predicted to survive \
           in single precision (default 1e-8).")

let shadow_prune_arg =
  Arg.(
    value & opt float 1e-1
    & info [ "shadow-prune" ] ~docv:"BOUND"
        ~doc:
          "Hard divergence bound for shadow pruning: candidates predicted to diverge \
           beyond $(docv) are skipped (journaled as $(i,pruned)) instead of evaluated. \
           Candidates with observed control-flow flips are never pruned. A value <= 0 \
           disables pruning (default 1e-1).")

let backend_arg =
  Arg.(
    value & opt string "compiled"
    & info [ "backend" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine for candidate evaluations: $(b,compiled) (per-block closure \
           compilation with a campaign-wide code cache; the default) or $(b,interp) (the \
           reference interpreter). Both produce identical verdicts; evaluations with \
           hooks installed (e.g. $(b,--inject)) fall back to the interpreter \
           automatically.")

let cache_stats_flag =
  Arg.(
    value & flag
    & info [ "cache-stats" ]
        ~doc:
          "Print the compiled-code cache's hit/miss line after the search (hits, misses, \
           hit rate, compiled blocks). Only meaningful with the default $(b,compiled) \
           backend.")

let formats_arg =
  Arg.(
    value & opt string ""
    & info [ "formats" ] ~docv:"MENU"
        ~doc:
          "Precision-format menu for the lattice descent, comma-separated: friendly \
           names ($(b,bf16), $(b,f16), $(b,tf32), $(b,single), $(b,double)) or custom \
           $(b,e<E>m<M>) tokens (e.g. $(b,--formats bf16,f16,single,double)). The \
           structural search runs at the widest reduced format on the menu, then each \
           passing structure is retried at every cheaper format, cheapest first. Empty \
           (the default) searches single-vs-double exactly as before.")

let parse_formats_menu s =
  if s = "" then Bfs.default_options.Bfs.formats
  else
    match Formats.menu_of_string s with
    | Ok menu -> menu
    | Error why ->
        prerr_endline ("craft: --formats: " ^ why);
        exit 1

let search_cmd =
  let run name cls workers out strategy journal_path resume retries eval_steps inject
      deadline checkpoint_path quarantine_after use_shadow shadow_threshold shadow_prune
      backend_name cache_stats formats_menu =
    with_kernel name cls (fun k ->
        let formats = parse_formats_menu formats_menu in
        if resume && journal_path = None && checkpoint_path = None then begin
          prerr_endline "craft: --resume requires --journal FILE or --checkpoint FILE";
          exit 1
        end;
        let faults =
          Option.map
            (fun text ->
              Faults.create
                (or_die (Result.map_error (fun e -> "--inject: " ^ e) (Faults.parse text))))
            inject
        in
        let backend =
          match Compile.backend_of_string backend_name with
          | Some b -> b
          | None ->
              prerr_endline
                (Printf.sprintf "craft: unknown backend %S (use compiled or interp)"
                   backend_name);
              exit 1
        in
        let harness, target =
          (* silent injected corruption forges verification failures, so
             retries extend to fail-verify whenever the injector is armed *)
          Harness.wrap_target ~retries ~retry_fail_verify:(faults <> None)
            (Kernel.target ?eval_steps ?faults ~backend k)
        in
        let journal =
          Option.map (fun p -> Journal.create ~resume ~path:p k.Kernel.program) journal_path
        in
        let target =
          match journal with Some j -> Journal.wrap_target j ~harness target | None -> target
        in
        let shadow_opts =
          if not use_shadow then None
          else begin
            (match strategy with
            | "ddmax" | "greedy" ->
                prerr_endline
                  "craft: note: --shadow does not guide the legacy ddmax/greedy \
                   baselines"
            | _ -> ());
            let tracer =
              Shadow_tracer.create
                ~config:(Shadow_tracer.all_single ~base:k.Kernel.hints k.Kernel.program)
                k.Kernel.program
            in
            let (_ : Vm.t) = Shadow_tracer.trace tracer ~setup:k.Kernel.setup in
            let report =
              Shadow_report.make ~threshold:shadow_threshold ~base:k.Kernel.hints
                k.Kernel.program tracer
            in
            let on_pruned cfg div =
              match journal with
              | Some j ->
                  Journal.record j cfg
                    (Verdict.Pruned (Printf.sprintf "shadow predicted divergence %.3e" div))
              | None -> ()
            in
            let prune_above = if shadow_prune > 0.0 then Some shadow_prune else None in
            Some (Bfs.shadow ?prune_above ~on_pruned report)
          end
        in
        (* The supervised pool is staffed whenever parallelism or a deadline
           asks for it; the CLI owns it (Bfs/Strategies only borrow it). *)
        let pool =
          if workers > 1 || deadline <> None then
            Some
              (Pool.create
                 ~options:
                   {
                     Pool.default_options with
                     workers = max 1 workers;
                     deadline;
                     quarantine_after;
                   }
                 ~log:(fun s -> prerr_endline ("craft: pool: " ^ s))
                 ())
          else None
        in
        let checkpoint =
          Option.map
            (fun path ->
              Bfs.checkpoint ~resume
                ~save_counters:(fun () -> Harness.counters_list harness)
                ~restore_counters:(Harness.restore_counters harness) path)
            checkpoint_path
        in
        let snapshots = ref 0 in
        (match strategy with
        | "bfs" -> (
            (* first ^C asks the search to stop at the next wave boundary
               (final checkpoint flushed, partial result composed); a
               second ^C aborts outright *)
            let interrupt = Atomic.make false in
            let prev_sigint =
              Sys.signal Sys.sigint
                (Sys.Signal_handle
                   (fun _ ->
                     if Atomic.get interrupt then exit 130
                     else begin
                       Atomic.set interrupt true;
                       prerr_endline
                         "craft: SIGINT — finishing the current wave, flushing a final \
                          checkpoint, composing the partial result (^C again to abort)"
                     end))
            in
            let options =
              {
                Bfs.default_options with
                workers;
                base = k.Kernel.hints;
                pool;
                checkpoint;
                shadow = shadow_opts;
                formats;
                stop = (fun () -> Atomic.get interrupt);
              }
            in
            let rec_ = Analysis.recommend_target ~options target ~setup:k.Kernel.setup in
            Sys.set_signal Sys.sigint prev_sigint;
            snapshots := rec_.Analysis.result.Bfs.snapshots;
            if rec_.Analysis.result.Bfs.interrupted then
              Format.printf
                "search INTERRUPTED — the report below is the partial result (union of \
                 the structures that had passed); resume with --checkpoint/--resume@.";
            Format.printf "%a@." Analysis.pp_summary rec_;
            if use_shadow then
              Format.printf "shadow: pruned %d candidate evaluation(s)@."
                rec_.Analysis.result.Bfs.pruned;
            match out with
            | Some path ->
                let oc = open_out path in
                output_string oc rec_.Analysis.config_text;
                close_out oc;
                Format.printf "final configuration written to %s@." path
            | None -> print_string rec_.Analysis.tree)
        | ("ddmax" | "greedy") as s ->
            let f =
              if String.equal s "ddmax" then Strategies.delta_debug else Strategies.greedy_grow
            in
            let r = f ?pool ~base:k.Kernel.hints ~formats target in
            Format.printf
              "strategy %s: tested %d configurations, replaced %d of %d candidates, %d \
               bit(s) saved (%s)@."
              s r.Strategies.tested r.Strategies.static_replaced r.Strategies.candidates
              (Config.bits_saved k.Kernel.program r.Strategies.final)
              (if r.Strategies.final_pass then "pass" else "fail");
            (match out with
            | Some path ->
                let oc = open_out path in
                output_string oc (Config.print k.Kernel.program r.Strategies.final);
                close_out oc;
                Format.printf "final configuration written to %s@." path
            | None -> print_string (Tree_view.render k.Kernel.program r.Strategies.final))
        | s -> (
            match Strategy.of_string s with
            | Error why ->
                prerr_endline ("craft: " ^ why);
                exit 1
            | Ok tok ->
                (* same SIGINT contract as the bfs arm: first ^C stops at a
                   wave boundary with a final checkpoint, second ^C aborts *)
                let interrupt = Atomic.make false in
                let prev_sigint =
                  Sys.signal Sys.sigint
                    (Sys.Signal_handle
                       (fun _ ->
                         if Atomic.get interrupt then exit 130
                         else begin
                           Atomic.set interrupt true;
                           prerr_endline
                             "craft: SIGINT — finishing the current wave, \
                              flushing a final checkpoint, composing the \
                              partial result (^C again to abort)"
                         end))
                in
                let options =
                  {
                    Bfs.default_options with
                    workers;
                    base = k.Kernel.hints;
                    pool;
                    checkpoint;
                    shadow = shadow_opts;
                    formats;
                    stop = (fun () -> Atomic.get interrupt);
                  }
                in
                let r = Strategy.run ~options tok target in
                Sys.set_signal Sys.sigint prev_sigint;
                snapshots := r.Bfs.snapshots;
                if r.Bfs.interrupted then
                  Format.printf
                    "search INTERRUPTED — the report below is the partial \
                     result; resume with --checkpoint/--resume@.";
                Format.printf
                  "strategy %s: tested %d configurations, replaced %d of %d \
                   candidates (static %.1f%%, dynamic %.1f%%), %d bit(s) \
                   saved (%s)@."
                  (Strategy.to_string tok) r.Bfs.tested r.Bfs.static_replaced
                  r.Bfs.candidates r.Bfs.static_pct r.Bfs.dynamic_pct
                  r.Bfs.bits_saved
                  (if r.Bfs.final_pass then "pass" else "fail");
                (match out with
                | Some path ->
                    let oc = open_out path in
                    output_string oc (Config.print k.Kernel.program r.Bfs.final);
                    close_out oc;
                    Format.printf "final configuration written to %s@." path
                | None ->
                    print_string (Tree_view.render k.Kernel.program r.Bfs.final))));
        Format.printf "%s@." (Harness.report harness);
        if cache_stats then begin
          match target.Bfs.Target.code_cache with
          | Some c ->
              let s = Compile.stats c in
              Format.printf "%s — %.1f%% of compilations avoided@." (Compile.report c)
                (100.0 *. Code_cache.hit_rate s)
          | None -> Format.printf "code cache: none (interpreter backend)@."
        end;
        (match pool with
        | Some p ->
            Format.printf "supervisor: %s@." (Pool.report p);
            Pool.shutdown p
        | None -> ());
        (match checkpoint_path with
        | Some path -> Format.printf "checkpoint %s: %d snapshot(s) written@." path !snapshots
        | None -> ());
        (match faults with
        | Some inj -> Format.printf "injected faults fired: %d@." (Faults.injected inj)
        | None -> ());
        match journal with
        | Some j ->
            Format.printf "journal %s: %d replayed, %d hit(s), %d fresh, %d record(s)@."
              (Journal.path j) (Journal.replayed j) (Journal.hits j) (Journal.fresh j)
              (Journal.entries j);
            Journal.close j
        | None -> ())
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:"Run the automatic mixed-precision search and print the recommendation")
    Term.(
      const run $ bench_arg $ class_arg $ workers_arg $ out_arg $ strategy_arg $ journal_arg
      $ resume_arg $ retries_arg $ eval_steps_arg $ inject_arg $ deadline_arg
      $ checkpoint_arg $ quarantine_arg $ shadow_flag $ shadow_threshold_arg
      $ shadow_prune_arg $ backend_arg $ cache_stats_flag $ formats_arg)

let shadow_cmd =
  let threshold_arg =
    Arg.(
      value
      & opt float Shadow_report.default_threshold
      & info [ "t"; "threshold" ] ~docv:"REL"
          ~doc:"Divergence threshold below which a structure is predicted single.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also export the analysis as JSON to $(docv).")
  in
  let run name cls threshold json_out =
    with_kernel name cls (fun k ->
        let prog = k.Kernel.program in
        (* plain native run first, for the tracer-overhead figure *)
        let t0 = Unix.gettimeofday () in
        let plain = Vm.create prog in
        k.Kernel.setup plain;
        Vm.run plain;
        let t1 = Unix.gettimeofday () in
        let tracer =
          Shadow_tracer.create ~config:(Shadow_tracer.all_single ~base:k.Kernel.hints prog) prog
        in
        let (_ : Vm.t) = Shadow_tracer.trace tracer ~setup:k.Kernel.setup in
        let t2 = Unix.gettimeofday () in
        let report = Shadow_report.make ~threshold ~base:k.Kernel.hints prog tracer in
        print_string (Shadow_report.render report);
        Format.printf "observations: %d; tracer overhead %.1fx (plain %.3fs, traced %.3fs)@."
          (Shadow_tracer.observations tracer)
          ((t2 -. t1) /. Float.max (t1 -. t0) 1e-9)
          (t1 -. t0) (t2 -. t1);
        match json_out with
        | Some path ->
            let oc = open_out path in
            output_string oc (Shadow_report.to_json report);
            close_out oc;
            Format.printf "JSON written to %s@." path
        | None -> ())
  in
  Cmd.v
    (Cmd.info "shadow"
       ~doc:
         "Run the shadow-value precision analysis on a benchmark and print the annotated \
          structure tree (predicted-single structures marked 's')")
    Term.(const run $ bench_arg $ class_arg $ threshold_arg $ json_arg)

let cancellation_cmd =
  let run name cls =
    with_kernel name cls (fun k ->
        let instr, layout = Cancellation.instrument k.Kernel.program in
        let vm = Vm.create instr in
        k.Kernel.setup vm;
        Vm.run vm;
        print_string (Cancellation.report layout vm))
  in
  Cmd.v
    (Cmd.info "cancellation" ~doc:"Run the dynamic cancellation detector on a benchmark")
    Term.(const run $ bench_arg $ class_arg)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Assembly listing file.")

let assemble_cmd =
  let run path =
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Asm.parse text with
    | Error e ->
        prerr_endline ("craft: " ^ e);
        exit 1
    | Ok prog ->
        let cands = Array.length (Static.candidates prog) in
        Format.printf "assembled %d function(s), %d instruction(s), %d FP candidate(s)@."
          (Array.length prog.Ir.funcs) (Static.insn_count prog) cands;
        Format.printf "%a@." Ir.pp_program prog
  in
  Cmd.v
    (Cmd.info "assemble" ~doc:"Assemble a listing file and print the validated binary")
    Term.(const run $ file_arg)

let slots_arg =
  Arg.(value & opt int 8 & info [ "n"; "slots" ] ~docv:"N" ~doc:"Float-heap slots to print.")

let asm_run_cmd =
  let run path slots =
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Asm.parse text with
    | Error e ->
        prerr_endline ("craft: " ^ e);
        exit 1
    | Ok prog ->
        let vm = Vm.create prog in
        Vm.run vm;
        let n = min slots prog.Ir.fheap_size in
        for i = 0 to n - 1 do
          Format.printf "[%d] %.17g@." i (Vm.get_f_value vm i)
        done;
        Format.printf "executed %d instructions@." vm.Vm.steps
  in
  Cmd.v
    (Cmd.info "asm-run" ~doc:"Assemble a listing file, run it, and print the float heap")
    Term.(const run $ file_arg $ slots_arg)

let snippet_cmd =
  let run () = print_string (Patcher.snippet_listing ()) in
  Cmd.v
    (Cmd.info "snippet" ~doc:"Show the single-precision replacement snippet (paper Fig. 6)")
    Term.(const run $ const ())

let journal_cmd =
  let path_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Journal file written by $(b,craft search --journal).")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Integrity scan: record and duplicate-digest counts, trailing corruption \
             (the truncated half-record a crash legitimately leaves — tolerated), and \
             torn records (unparseable lines $(i,before) the last good one — mid-file \
             corruption, exit status 1).")
  in
  let run path verify =
    if verify then begin
      match Journal.verify ~path with
      | Error why ->
          prerr_endline ("craft: " ^ why);
          exit 1
      | Ok r ->
          Format.printf "%s: %d record(s), %d distinct digest(s)@." path r.Journal.records
            r.Journal.distinct;
          List.iter (fun (label, n) -> Format.printf "  %-8s %d@." label n) r.Journal.verdicts;
          List.iter
            (fun (digest, n) -> Format.printf "duplicate digest: %s (%d records)@." digest n)
            r.Journal.duplicates;
          if r.Journal.trailing_bad > 0 then
            Format.printf
              "trailing corruption: %d unparseable line(s) at the end (crash truncation — \
               tolerated on replay)@."
              r.Journal.trailing_bad;
          if r.Journal.torn then begin
            Format.printf
              "TORN: %d unparseable line(s) before the last good record — this is mid-file \
               corruption, not crash truncation@."
              (r.Journal.bad - r.Journal.trailing_bad);
            exit 1
          end
    end
    else begin
      let records = Journal.scan ~path in
      let tally = Hashtbl.create 8 in
      List.iter
        (fun (_, v) ->
          let l = Verdict.verdict_label v in
          Hashtbl.replace tally l (1 + Option.value ~default:0 (Hashtbl.find_opt tally l)))
        records;
      Format.printf "%s: %d record(s)@." path (List.length records);
      List.iter
        (fun label ->
          match Hashtbl.find_opt tally label with
          | Some n -> Format.printf "  %-8s %d@." label n
          | None -> ())
        [ "pass"; "fail"; "trap"; "timeout"; "crash"; "pruned" ];
      match List.rev records with
      | (digest, v) :: _ ->
          Format.printf "last record: %s (%s)@." digest (Verdict.verdict_label v)
      | [] -> ()
    end
  in
  Cmd.v
    (Cmd.info "journal"
       ~doc:
         "Inspect an evaluation journal: per-verdict counts and the digest of the last \
          record (read-only); $(b,--verify) adds an integrity scan")
    Term.(const run $ path_arg $ verify_arg)

let store_cmd =
  let path_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Store log written by $(b,craft serve) ($(i,state-dir)/store.log).")
  in
  let compact_arg =
    Arg.(
      value & flag
      & info [ "compact" ]
          ~doc:
            "Rewrite the log offline with one record per distinct key \
             (write-temp/fsync/rename); run between daemon lifetimes, not under a live \
             one.")
  in
  let run path compact =
    if compact then begin
      match Store.compact ~path with
      | Ok (kept, dropped) ->
          Format.printf "%s: compacted — %d record(s) kept, %d dropped@." path kept dropped
      | Error why ->
          prerr_endline ("craft: " ^ why);
          exit 1
    end
    else begin
      let records = Store.scan ~path in
      let tally = Hashtbl.create 8 in
      List.iter
        (fun (_, v) ->
          let l = Verdict.verdict_label v in
          Hashtbl.replace tally l (1 + Option.value ~default:0 (Hashtbl.find_opt tally l)))
        records;
      Format.printf "%s: %d record(s)@." path (List.length records);
      List.iter (fun (label, n) -> Format.printf "  %-8s %d@." label n)
        (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tally [] |> List.sort compare)
    end
  in
  Cmd.v
    (Cmd.info "store"
       ~doc:
         "Inspect the daemon's durable cross-campaign result store log (read-only), or \
          $(b,--compact) it offline")
    Term.(const run $ path_arg $ compact_arg)

(* --------------------------------------------------------- campaign server *)

let socket_arg =
  Arg.(
    value & opt string "craft.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket of the campaign daemon (default $(b,craft.sock)).")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"Use TCP instead of the Unix-domain socket.")

let server_addr socket tcp =
  match tcp with
  | None -> Server.Unix_path socket
  | Some spec -> (
      match Server.addr_of_string spec with
      | Ok (Server.Tcp _ as a) -> a
      | Ok (Server.Unix_path _) | Error _ ->
          prerr_endline (Printf.sprintf "craft: --tcp wants HOST:PORT, got %S" spec);
          exit 1)

let with_client socket tcp f =
  let c = or_die (Client.connect (server_addr socket tcp)) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let state_to_string = function
  | Wire.Queued -> "queued"
  | Wire.Running -> "running"
  | Wire.Done -> "done"
  | Wire.Cancelled -> "cancelled"
  | Wire.Failed why -> "failed: " ^ why
  | Wire.Quarantined why -> "quarantined: " ^ why

let exit_for_state = function
  | Wire.Done -> 0
  | Wire.Queued | Wire.Running | Wire.Cancelled | Wire.Failed _ | Wire.Quarantined _ -> 1

let serve_cmd =
  let jobs_arg =
    Arg.(
      value & opt int 2
      & info [ "jobs" ] ~docv:"N" ~doc:"Concurrent campaign runners (default 2).")
  in
  let wave_arg =
    Arg.(
      value & opt int 2
      & info [ "wave" ] ~docv:"N"
          ~doc:"BFS wave width per campaign — evaluations offered to the pool at once.")
  in
  let pool_workers_arg =
    Arg.(
      value & opt int 4
      & info [ "j"; "workers" ] ~docv:"N"
          ~doc:"Worker domains in the one shared evaluation pool (default 4).")
  in
  let state_dir_arg =
    Arg.(
      value & opt string "craft-serve-state"
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Root for the durable state that survives a daemon death: the cross-campaign \
             store log, the job-table WAL, and per-job journal/checkpoint/result files. A \
             restarted daemon replays them; an exclusive lock refuses a second live \
             daemon. Empty string disables persistence.")
  in
  let store_fsync_arg =
    Arg.(
      value & opt int 32
      & info [ "store-fsync" ] ~docv:"N"
          ~doc:
            "fsync the durable result store every N fresh verdicts (1 = per record, 0 = \
             flush only; default 32). Every append is flushed regardless.")
  in
  let run socket tcp jobs wave workers retries quarantine_after state_dir store_fsync
      fleet_heartbeat =
    let addr = server_addr socket tcp in
    let log s = Printf.printf "serve: %s\n%!" s in
    let state_dir = if state_dir = "" then None else Some state_dir in
    (* refuse to interleave on-disk state with another live daemon before
       touching any of it *)
    let lock = Option.map (fun dir -> or_die (Lockfile.acquire ~dir)) state_dir in
    let pool =
      Pool.create
        ~options:{ Pool.default_options with workers = max 1 workers }
        ~log:(fun s -> log ("pool: " ^ s))
        ()
    in
    let cache = Compile.create_cache () in
    let store =
      Store.create
        ?path:(Option.map (fun dir -> Filename.concat dir "store.log") state_dir)
        ~fsync_every:store_fsync ()
    in
    (match (Store.stats store).Store.replayed with
    | 0 -> ()
    | n -> log (Printf.sprintf "store: replayed %d verdict(s) from disk" n));
    let resolve (spec : Wire.job_spec) =
      Result.bind (class_of_string spec.Wire.cls) (fun c -> load spec.Wire.bench c)
    in
    let fleet =
      Fleet.create
        ~options:{ Fleet.default_options with heartbeat_every = fleet_heartbeat }
        ~log ()
    in
    let sched =
      Scheduler.create
        ~options:
          {
            Scheduler.max_concurrent = jobs;
            wave_width = wave;
            retries;
            quarantine_after;
            state_dir;
          }
        ~log ~fleet ~resolve ~pool ~cache ~store ()
    in
    let srv = Server.start ~log ~fleet ~scheduler:sched addr in
    let signals = Atomic.make 0 in
    let on_signal _ = Atomic.incr signals in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    log
      (Printf.sprintf
         "ready on %s — %d campaign runner(s), wave width %d, %d pool worker(s)"
         (Server.addr_to_string (Server.addr srv))
         jobs wave workers);
    log "SIGTERM drains gracefully (finish queued + running); a second signal cancels";
    while Atomic.get signals = 0 do
      Thread.delay 0.2
    done;
    log "draining: no new submissions; finishing queued and running campaigns";
    Server.stop srv;
    (* a second signal while draining stops running campaigns at their
       next wave boundary instead of finishing them *)
    let drained = Atomic.make false in
    let watcher =
      Thread.create
        (fun () ->
          while (not (Atomic.get drained)) && Atomic.get signals < 2 do
            Thread.delay 0.1
          done;
          if not (Atomic.get drained) then begin
            log "second signal: cancelling running campaigns at the next wave boundary";
            Scheduler.shutdown sched ~cancel_running:true ()
          end)
        ()
    in
    Scheduler.shutdown sched ();
    Atomic.set drained true;
    Thread.join watcher;
    Fleet.stop fleet;
    Pool.shutdown pool;
    Store.close store;
    log (Fleet.report fleet);
    log (Store.report store);
    log (Compile.report cache);
    Option.iter Lockfile.release lock;
    log "stopped"
  in
  let fleet_heartbeat_arg =
    Arg.(
      value & opt float 2.0
      & info [ "fleet-heartbeat" ] ~docv:"SECS"
          ~doc:
            "Heartbeat interval expected from remote workers; a worker silent for two \
             intervals has its lease requeued (default 2s).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the campaign daemon: accept search campaigns from many clients, multiplex \
          them onto one shared worker pool, code cache and cross-campaign result store, \
          and lease evaluation batches to remote $(b,craft worker) processes")
    Term.(
      const run $ socket_arg $ tcp_arg $ jobs_arg $ wave_arg $ pool_workers_arg
      $ retries_arg $ quarantine_arg $ state_dir_arg $ store_fsync_arg
      $ fleet_heartbeat_arg)

let worker_cmd =
  let name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "name" ] ~docv:"NAME"
          ~doc:
            "Stable worker name (default $(b,worker-<pid>)); the daemon quarantines \
             misbehaving workers by this name.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 4
      & info [ "capacity" ] ~docv:"N" ~doc:"Max evaluations leased per batch (default 4).")
  in
  let chaos_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "Arm the deterministic fleet fault injector, e.g. \
             $(b,seed=7,rate=0.25,actions=kill+stall+garbage+dup,limit=4,stall=1.0) — the \
             worker then dies, stalls, corrupts frames or duplicates deliveries \
             mid-batch, proving out the daemon's requeue/rejoin machinery. A drawn \
             $(b,kill) exits with status 137, like a real SIGKILL.")
  in
  let run socket tcp name capacity inject chaos =
    let addr = server_addr socket tcp in
    let log s = Printf.printf "worker: %s\n%!" s in
    let faults = Option.map (fun s -> Faults.create (or_die (Faults.parse s))) inject in
    let chaos = Option.map (fun s -> Chaos.create (or_die (Chaos.parse s))) chaos in
    let resolve ~bench ~cls = Result.bind (class_of_string cls) (load bench) in
    match Worker.run ?name ~capacity ?faults ?chaos ~log ~resolve addr with
    | stats ->
        log
          (Printf.sprintf "done — %d evaluated, %d pushed, %d skipped, %d batch(es), %d rejoin(s)"
             stats.Worker.evaluated stats.Worker.pushed stats.Worker.skipped
             stats.Worker.batches stats.Worker.rejoins)
    | exception Chaos.Killed ->
        (* faithful to a real SIGKILL: no goodbye, no cleanup, status 137 *)
        exit 137
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Run a remote evaluation worker: lease configuration batches from the campaign \
          daemon over the wire protocol, evaluate them locally and stream the verdicts \
          back; survives daemon restarts and dropped connections by rejoining with \
          result-store delta sync")
    Term.(
      const run $ socket_arg $ tcp_arg $ name_arg $ capacity_arg $ inject_arg $ chaos_arg)

let priority_arg =
  Arg.(
    value & opt int 0
    & info [ "priority" ] ~docv:"P" ~doc:"Scheduling priority; higher runs first.")

let submit_shadow_flag =
  Arg.(
    value & flag
    & info [ "shadow" ]
        ~doc:"Run the shadow-value analysis first and let it guide the campaign.")

let wait_flag =
  Arg.(
    value & flag
    & info [ "wait" ]
        ~doc:"Block until the campaign finishes and print its result (see also \
              $(b,craft watch)).")

let submit_strategy_arg =
  let doc =
    "Search strategy for the campaign: bfs (default), split, delta, or \
     anneal[:seed]."
  in
  Arg.(value & opt string "" & info [ "strategy" ] ~docv:"STRATEGY" ~doc)

let submit_cmd =
  let run socket tcp bench cls shadow priority eval_steps wait out formats strategy =
    (* validate locally for a friendly error; the daemon re-validates *)
    if formats <> "" then ignore (parse_formats_menu formats);
    (match Strategy.of_string strategy with
    | Ok _ -> ()
    | Error why ->
        prerr_endline ("craft: --strategy: " ^ why);
        exit 1);
    let spec = { Wire.bench; cls; shadow; priority; eval_steps; formats; strategy } in
    with_client socket tcp (fun c ->
        let id = or_die (Client.submit c spec) in
        if not wait then print_endline id
        else begin
          Printf.printf "submitted %s\n%!" id;
          let status, config_text, summary = or_die (Client.wait c id) in
          Printf.printf "%s: %s — %s\n" id (state_to_string status.Wire.state) summary;
          (match out with
          | Some path ->
              let oc = open_out path in
              output_string oc config_text;
              close_out oc;
              Printf.printf "final configuration written to %s\n" path
          | None -> print_string config_text);
          exit (exit_for_state status.Wire.state)
        end)
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit a search campaign to the daemon (prints the job id)")
    Term.(
      const run $ socket_arg $ tcp_arg $ bench_arg $ class_arg $ submit_shadow_flag
      $ priority_arg $ eval_steps_arg $ wait_flag $ out_arg $ formats_arg
      $ submit_strategy_arg)

let job_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"JOB" ~doc:"Job id.")

let status_cmd =
  let job_opt = Arg.(value & pos 0 (some string) None & info [] ~docv:"JOB" ~doc:"Job id.") in
  let run socket tcp job =
    with_client socket tcp (fun c ->
        let jobs = or_die (Client.status ?job c) in
        (match job with
        | None ->
            let s = or_die (Client.stats c) in
            Printf.printf
              "server: %d submitted, %d running, %d queued, %d done, %d cancelled, %d \
               failed; store %d/%d hits (%d entries); code cache %d/%d hits; up %.0fs\n"
              s.Wire.submitted s.Wire.running s.Wire.queued s.Wire.completed
              s.Wire.cancelled s.Wire.failed s.Wire.store.Wire.hits
              (s.Wire.store.Wire.hits + s.Wire.store.Wire.misses)
              s.Wire.store.Wire.entries s.Wire.cache_hits
              (s.Wire.cache_hits + s.Wire.cache_misses)
              s.Wire.uptime
        | Some _ -> ());
        List.iter
          (fun j ->
            Printf.printf "%s  %-9s %s.%s%s  tested %d (%d from store)  %.1fs  %s\n"
              j.Wire.id
              (match j.Wire.state with
              | Wire.Failed _ -> "failed"
              | Wire.Quarantined _ -> "quarantined"
              | st -> state_to_string st)
              j.Wire.spec.Wire.bench j.Wire.spec.Wire.cls
              (if j.Wire.spec.Wire.shadow then "+shadow" else "")
              j.Wire.tested j.Wire.store_hits j.Wire.wall
              (match j.Wire.state with
              | Wire.Failed why | Wire.Quarantined why -> why
              | _ -> ""))
          jobs)
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Show the daemon's jobs (all, or one) and server-wide stats")
    Term.(const run $ socket_arg $ tcp_arg $ job_opt)

let watch_cmd =
  let run socket tcp job =
    with_client socket tcp (fun c ->
        let (_ : int) = or_die (Client.watch c ~job print_endline) in
        let status, _, summary = or_die (Client.result c job) in
        Printf.printf "%s: %s — %s\n" job (state_to_string status.Wire.state) summary;
        exit (exit_for_state status.Wire.state))
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Stream a job's event log until it finishes (exit 0 iff it completed)")
    Term.(const run $ socket_arg $ tcp_arg $ job_arg)

let results_cmd =
  let run socket tcp job out =
    with_client socket tcp (fun c ->
        let status, config_text, summary = or_die (Client.result c job) in
        Printf.printf "%s: %s — %s\n" job (state_to_string status.Wire.state) summary;
        (match out with
        | Some path ->
            let oc = open_out path in
            output_string oc config_text;
            close_out oc;
            Printf.printf "final configuration written to %s\n" path
        | None -> print_string config_text);
        exit (exit_for_state status.Wire.state))
  in
  Cmd.v
    (Cmd.info "results" ~doc:"Fetch a finished job's final configuration and summary")
    Term.(const run $ socket_arg $ tcp_arg $ job_arg $ out_arg)

let cancel_cmd =
  let run socket tcp job =
    with_client socket tcp (fun c ->
        if or_die (Client.cancel c job) then
          print_endline (job ^ ": cancellation requested")
        else begin
          Printf.printf "%s: not cancellable (unknown, or already finished)\n" job;
          exit 1
        end)
  in
  Cmd.v
    (Cmd.info "cancel"
       ~doc:
         "Cancel a job: dequeued if still queued, stopped at the next wave boundary (with \
          a final checkpoint and partial result) if running")
    Term.(const run $ socket_arg $ tcp_arg $ job_arg)

let main =
  let info =
    Cmd.info "craft" ~version:"1.0.0"
      ~doc:"Mixed-precision floating-point analysis of binaries (paper reproduction)"
  in
  Cmd.group info
    [
      list_cmd;
      listing_cmd;
      run_cmd;
      view_cmd;
      patch_cmd;
      search_cmd;
      shadow_cmd;
      cancellation_cmd;
      assemble_cmd;
      asm_run_cmd;
      snippet_cmd;
      journal_cmd;
      store_cmd;
      serve_cmd;
      worker_cmd;
      submit_cmd;
      status_cmd;
      watch_cmd;
      results_cmd;
      cancel_cmd;
    ]

let () = exit (Cmd.eval main)
