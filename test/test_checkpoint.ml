(* Tests for atomic search checkpointing: node-id resolution, snapshot
   save/load roundtrip, corruption tolerance, write-atomicity under a
   partial temp write, and mid-level kill/resume equivalence (with strictly
   fewer re-evaluations than a journal-only replay). *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let with_temp_file f =
  let path = Filename.temp_file "craft_ck" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

let sample_snapshot key =
  {
    Checkpoint.key;
    tested = 17;
    next_seq = 23;
    queue =
      [
        { Checkpoint.seq = 21; weight = 900; nodes = [ "F:1"; "B:3" ] };
        { Checkpoint.seq = 22; weight = 0; nodes = [ "I:42" ] };
      ];
    passing = [ "M:syn"; "F:0" ];
    counters = [ ("evaluations", 17); ("odd name: 100% |risky", 3) ];
    log = [ "PASS syn (weight 5)"; "line with: colons | pipes % and\ttabs"; "" ];
    strategy = "bfs";
  }

(* ------------------------------------------------- node ids *)

let test_node_id_resolve_roundtrip () =
  let prog, _ = Test_harness.synthetic ~n_ops:5 ~poison:[ 2 ] () in
  let rec walk node =
    let id = Checkpoint.node_id node in
    (match Checkpoint.resolve prog id with
    | Ok node' -> checks "resolves to the same id" id (Checkpoint.node_id node')
    | Error e -> Alcotest.failf "cannot resolve %s: %s" id e);
    List.iter walk
      (match node with
      | Static.Module (_, cs) | Static.Func (_, _, cs) | Static.Block (_, cs) -> cs
      | Static.Insn _ -> [])
  in
  List.iter walk (Static.tree prog);
  checkb "unknown id is an error" true
    (Result.is_error (Checkpoint.resolve prog "F:9999"));
  checkb "malformed id is an error" true
    (Result.is_error (Checkpoint.resolve prog "whatever"))

let test_program_key_distinguishes_programs () =
  let p1, _ = Test_harness.synthetic ~n_ops:5 ~poison:[] () in
  let p2, _ = Test_harness.synthetic ~n_ops:6 ~poison:[] () in
  let p1', _ = Test_harness.synthetic ~n_ops:5 ~poison:[] () in
  checks "deterministic" (Checkpoint.program_key p1) (Checkpoint.program_key p1');
  checkb "different programs differ" true
    (Checkpoint.program_key p1 <> Checkpoint.program_key p2)

(* ------------------------------------------------- snapshot roundtrip *)

let test_snapshot_roundtrip () =
  with_temp_file (fun path ->
      let snap = sample_snapshot "0123456789abcdef" in
      Checkpoint.save ~path snap;
      match Checkpoint.load ~path with
      | Error e -> Alcotest.fail e
      | Ok got ->
          checks "key" snap.Checkpoint.key got.Checkpoint.key;
          checki "tested" snap.Checkpoint.tested got.Checkpoint.tested;
          checki "next_seq" snap.Checkpoint.next_seq got.Checkpoint.next_seq;
          checkb "queue" true (got.Checkpoint.queue = snap.Checkpoint.queue);
          checkb "passing" true (got.Checkpoint.passing = snap.Checkpoint.passing);
          (* counter names and log lines with reserved characters survive
             the percent-escaped line format *)
          checkb "counters" true (got.Checkpoint.counters = snap.Checkpoint.counters);
          checkb "log" true (got.Checkpoint.log = snap.Checkpoint.log))

let test_save_overwrites_atomically () =
  with_temp_file (fun path ->
      Checkpoint.save ~path (sample_snapshot "aaaaaaaaaaaaaaaa");
      Checkpoint.save ~path { (sample_snapshot "bbbbbbbbbbbbbbbb") with tested = 99 };
      (match Checkpoint.load ~path with
      | Ok got ->
          checks "latest snapshot wins" "bbbbbbbbbbbbbbbb" got.Checkpoint.key;
          checki "latest tested" 99 got.Checkpoint.tested
      | Error e -> Alcotest.fail e);
      checkb "no temp file left behind" true (not (Sys.file_exists (path ^ ".tmp"))))

(* ------------------------------------------------- corruption *)

let test_load_rejects_garbage () =
  with_temp_file (fun path ->
      checkb "missing file" true (Result.is_error (Checkpoint.load ~path:(path ^ ".nope")));
      let write s =
        let oc = open_out path in
        output_string oc s;
        close_out oc
      in
      write "not a checkpoint\nend\n";
      checkb "bad header" true (Result.is_error (Checkpoint.load ~path));
      write "# craft-checkpoint v1 k\ntested 1\nseq 2\npassing\n";
      checkb "no end marker = truncated" true (Result.is_error (Checkpoint.load ~path));
      write "# craft-checkpoint v1 k\ntested zzz\npassing\nend\n";
      checkb "malformed record" true (Result.is_error (Checkpoint.load ~path));
      write "# craft-checkpoint v1 k\nitem 1 nope I:0\npassing\nend\n";
      checkb "malformed item" true (Result.is_error (Checkpoint.load ~path)))

let test_partial_tmp_write_never_corrupts () =
  (* acceptance: an interrupted snapshot (partial temp-file write) must not
     corrupt resume — the visible checkpoint is still the previous one *)
  with_temp_file (fun path ->
      let snap = sample_snapshot "cafebabecafebabe" in
      Checkpoint.save ~path snap;
      let oc = open_out (path ^ ".tmp") in
      output_string oc "# craft-checkpoint v1 cafebabecafebabe\ntested 4";
      (* no trailer, no newline: the writer died mid-snapshot *)
      close_out oc;
      (match Checkpoint.load ~path with
      | Ok got ->
          checki "previous complete snapshot served" snap.Checkpoint.tested
            got.Checkpoint.tested
      | Error e -> Alcotest.fail e);
      (* and if the partial temp were (wrongly) taken as a checkpoint, the
         trailer check would reject it *)
      checkb "partial temp itself is rejected" true
        (Result.is_error (Checkpoint.load ~path:(path ^ ".tmp"))))

(* ------------------------------------------------- kill / resume *)

let wrap_stack ?checkpoint prog target ~journal_path ~resume =
  let h, t = Harness.wrap_target target in
  let j = Journal.create ~resume ~path:journal_path prog in
  let opts =
    match checkpoint with
    | None -> Bfs.default_options
    | Some path ->
        {
          Bfs.default_options with
          checkpoint =
            Some
              (Bfs.checkpoint ~resume
                 ~save_counters:(fun () -> Harness.counters_list h)
                 ~restore_counters:(Harness.restore_counters h) path);
        }
  in
  (h, j, Journal.wrap_target j ~harness:h t, opts)

let abort_after k (target : Bfs.Target.t) =
  let calls = ref 0 in
  {
    target with
    Bfs.Target.eval =
      (fun cfg ->
        incr calls;
        if !calls > k then raise Bfs.Aborted else target.Bfs.Target.eval cfg);
  }

let copy_file src dst =
  let ic = open_in_bin src in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc data;
  close_out oc

let test_kill_and_resume_mid_level () =
  with_temp_file (fun ck_path ->
      with_temp_file (fun j_path ->
          with_temp_file (fun j_only_path ->
              let n_ops = 8 and poison = [ 2; 5 ] in
              let kills = 6 in
              (* run A: uninterrupted, no persistence — the reference *)
              let prog, tA = Test_harness.synthetic ~n_ops ~poison () in
              let full = Bfs.search tA in
              let reference = Config.digest prog full.Bfs.final in
              (* run B: journal + checkpoint, killed mid-level *)
              let _, tB = Test_harness.synthetic ~n_ops ~poison () in
              let _, jB, wrapped, opts =
                wrap_stack ~checkpoint:ck_path prog tB ~journal_path:j_path
                  ~resume:false
              in
              (match Bfs.search ~options:opts (abort_after kills wrapped) with
              | _ -> Alcotest.fail "the kill must abort the campaign"
              | exception Bfs.Aborted -> ());
              Journal.close jB;
              checkb "checkpoint written before the kill" true (Sys.file_exists ck_path);
              checkb "journal recorded the killed campaign" true
                (Journal.load ~path:j_path prog <> []);
              (* snapshot the journal for the journal-only control *)
              copy_file j_path j_only_path;
              (* run B2: resume from checkpoint + journal *)
              let _, tB2 = Test_harness.synthetic ~n_ops ~poison () in
              let _, jB2, wrapped2, opts2 =
                wrap_stack ~checkpoint:ck_path prog tB2 ~journal_path:j_path
                  ~resume:true
              in
              let resumed = Bfs.search ~options:opts2 wrapped2 in
              let hits_checkpoint = Journal.hits jB2 in
              Journal.close jB2;
              checks "resume reaches the uninterrupted digest" reference
                (Config.digest prog resumed.Bfs.final);
              checkb "resume restarted mid-level" true
                (List.exists
                   (fun l ->
                     String.length l >= 6 && String.sub l 0 6 = "RESUME")
                   resumed.Bfs.log);
              checkb "snapshots kept flowing" true (resumed.Bfs.snapshots > 0);
              (* run C: journal-only replay of the same killed campaign *)
              let _, tC = Test_harness.synthetic ~n_ops ~poison () in
              let _, jC, wrappedC, optsC =
                wrap_stack prog tC ~journal_path:j_only_path ~resume:true
              in
              let replayed = Bfs.search ~options:optsC wrappedC in
              let hits_journal_only = Journal.hits jC in
              Journal.close jC;
              checks "journal-only replay also converges" reference
                (Config.digest prog replayed.Bfs.final);
              (* the acceptance criterion: the checkpoint restores the
                 frontier, so strictly fewer evaluations are re-served from
                 the journal than a full journal-driven replay *)
              checkb
                (Printf.sprintf "fewer re-evaluations (%d checkpoint vs %d journal-only)"
                   hits_checkpoint hits_journal_only)
                true
                (hits_checkpoint < hits_journal_only))))

let test_checkpoint_from_other_program_refused () =
  with_temp_file (fun ck_path ->
      let prog_a, t_a = Test_harness.synthetic ~n_ops:6 ~poison:[ 1 ] () in
      let opts_a =
        { Bfs.default_options with checkpoint = Some (Bfs.checkpoint ck_path) }
      in
      let res_a = Bfs.search ~options:opts_a t_a in
      checkb "snapshots written" true (res_a.Bfs.snapshots > 0);
      (* resuming a different program from prog_a's checkpoint must start
         fresh (logged), not restore a foreign frontier *)
      let prog_b, t_b = Test_harness.synthetic ~n_ops:7 ~poison:[ 3 ] () in
      checkb "different fingerprints" true
        (Checkpoint.program_key prog_a <> Checkpoint.program_key prog_b);
      let opts_b =
        {
          Bfs.default_options with
          checkpoint = Some (Bfs.checkpoint ~resume:true ck_path);
        }
      in
      let res_b = Bfs.search ~options:opts_b t_b in
      checkb "fresh campaign, checkpoint refused" true
        (List.exists
           (fun l ->
             String.length l >= 10 && String.sub l 0 10 = "CHECKPOINT")
           res_b.Bfs.log);
      checkb "still a full search" true (res_b.Bfs.tested > 1))

let test_resume_with_restored_counters () =
  with_temp_file (fun ck_path ->
      let prog, target = Test_harness.synthetic ~n_ops:6 ~poison:[ 1 ] () in
      ignore prog;
      let h1, t1 = Harness.wrap_target target in
      let ck h =
        Bfs.checkpoint ~resume:true
          ~save_counters:(fun () -> Harness.counters_list h)
          ~restore_counters:(Harness.restore_counters h) ck_path
      in
      let res1 =
        Bfs.search
          ~options:{ Bfs.default_options with checkpoint = Some (ck h1) }
          t1
      in
      let evals1 = (Harness.counters h1).Harness.evaluations in
      checkb "first campaign evaluated" true (evals1 > 0);
      checkb "first campaign snapshotted" true (res1.Bfs.snapshots > 0);
      (* a finished campaign's checkpoint has an empty queue: resuming only
         re-runs the final union, and the harness counters continue from
         the restored totals rather than restarting at zero *)
      let h2, t2 = Harness.wrap_target target in
      let res2 =
        Bfs.search
          ~options:{ Bfs.default_options with checkpoint = Some (ck h2) }
          t2
      in
      checki "only the final evaluation is fresh" res1.Bfs.tested res2.Bfs.tested;
      checkb "counters restored across the resume" true
        ((Harness.counters h2).Harness.evaluations >= evals1))

let suite =
  [
    ("node id / resolve roundtrip", `Quick, test_node_id_resolve_roundtrip);
    ("program fingerprint", `Quick, test_program_key_distinguishes_programs);
    ("snapshot roundtrip", `Quick, test_snapshot_roundtrip);
    ("save overwrites atomically", `Quick, test_save_overwrites_atomically);
    ("load rejects garbage", `Quick, test_load_rejects_garbage);
    ("partial temp write never corrupts", `Quick, test_partial_tmp_write_never_corrupts);
    ("kill mid-level, resume from checkpoint", `Quick, test_kill_and_resume_mid_level);
    ( "checkpoint of another program refused",
      `Quick,
      test_checkpoint_from_other_program_refused );
    ("counters restored on resume", `Quick, test_resume_with_restored_counters);
  ]
