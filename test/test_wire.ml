(* QCheck2 fuzz for the campaign-server wire codec: every frame type
   round-trips bit-exactly, and hostile byte streams (truncations, garbage,
   oversized or lying length prefixes, wrong version, unknown tags,
   trailing bytes) always produce a typed decode error, never an
   exception. *)

let qt ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

open QCheck2.Gen

(* strings over the full byte range, newlines and NULs included *)
let raw_string = string_size ~gen:(char_range '\x00' '\xff') (int_bound 24)

let float_gen =
  (* finite, NaN, infinities — the codec ships IEEE-754 bits, so all must
     round-trip (NaN compared bitwise below) *)
  oneof [ float; return Float.nan; return Float.infinity; return 0.0 ]

let spec_gen =
  map
    (fun ((bench, cls, shadow, priority, eval_steps), formats, strategy) ->
      { Wire.bench; cls; shadow; priority; eval_steps; formats; strategy })
    (triple (tup5 raw_string raw_string bool int (option int)) raw_string raw_string)

let state_gen =
  oneof
    [
      return Wire.Queued;
      return Wire.Running;
      return Wire.Done;
      return Wire.Cancelled;
      map (fun s -> Wire.Failed s) raw_string;
      map (fun s -> Wire.Quarantined s) raw_string;
    ]

let status_gen =
  map
    (fun ((id, spec, state), (tested, store_hits, store_misses, wall)) ->
      { Wire.id; spec; state; tested; store_hits; store_misses; wall })
    (pair (tup3 raw_string spec_gen state_gen) (tup4 nat nat nat float_gen))

let server_stats_gen =
  map
    (fun ((submitted, completed, failed, cancelled, running),
          (queued, hits, misses, entries),
          (cache_hits, cache_misses, uptime)) ->
      {
        Wire.submitted;
        completed;
        failed;
        cancelled;
        running;
        queued;
        store = { Wire.hits; misses; entries };
        cache_hits;
        cache_misses;
        uptime;
      })
    (tup3 (tup5 nat nat nat nat nat) (tup4 nat nat nat nat) (tup3 nat nat float_gen))

let batch_gen =
  map
    (fun ((lease, bench, cls), (eval_steps, retries, items)) ->
      { Wire.lease; bench; cls; eval_steps; retries; items })
    (pair
       (tup3 raw_string raw_string raw_string)
       (tup3 (option int) nat (list_size (int_bound 5) (pair raw_string raw_string))))

let frame_gen =
  oneof
    [
      map (fun s -> Wire.Submit s) spec_gen;
      map (fun j -> Wire.Status j) (option raw_string);
      map (fun (job, from) -> Wire.Events { job; from }) (pair raw_string nat);
      map (fun j -> Wire.Result j) raw_string;
      map (fun j -> Wire.Cancel j) raw_string;
      return Wire.Stats;
      map (fun j -> Wire.Accepted j) raw_string;
      map (fun l -> Wire.Status_reply l) (list_size (int_bound 4) status_gen);
      map
        (fun (next, events, final) -> Wire.Events_reply { next; events; final })
        (tup3 nat (list_size (int_bound 6) raw_string) bool);
      map
        (fun (status, config_text, summary) ->
          Wire.Result_reply { status; config_text; summary })
        (tup3 status_gen raw_string raw_string);
      map (fun b -> Wire.Cancel_reply b) bool;
      map (fun s -> Wire.Stats_reply s) server_stats_gen;
      map (fun s -> Wire.Error_reply s) raw_string;
      (* protocol v2: the worker-fleet frames *)
      map
        (fun ((name, wire_version, reconnect), capacity) ->
          Wire.Worker_hello { name; wire_version; reconnect; capacity })
        (pair (tup3 raw_string nat (option raw_string)) nat);
      map
        (fun (worker, capacity) -> Wire.Lease_request { worker; capacity })
        (pair raw_string nat);
      map
        (fun ((worker, lease), results) -> Wire.Result_push { worker; lease; results })
        (pair (pair raw_string raw_string)
           (list_size (int_bound 5) (pair raw_string raw_string)));
      map
        (fun ((worker, lease), completed) -> Wire.Heartbeat { worker; lease; completed })
        (pair (pair raw_string (option raw_string)) nat);
      map (fun w -> Wire.Goodbye w) raw_string;
      map
        (fun ((worker, wire_version), (heartbeat_every, lease_ttl, already_done)) ->
          Wire.Worker_welcome
            { worker; wire_version; heartbeat_every; lease_ttl; already_done })
        (pair (pair raw_string nat)
           (tup3 float_gen float_gen (list_size (int_bound 5) raw_string)));
      map (fun b -> Wire.Lease_reply b) (option batch_gen);
      map (fun (accepted, ignored) -> Wire.Result_ack { accepted; ignored }) (pair nat nat);
      map (fun abandon -> Wire.Heartbeat_ack { abandon }) bool;
      map (fun requeued -> Wire.Goodbye_ack { requeued }) nat;
    ]

(* structural equality with floats compared by bit pattern (NaN-safe) *)
let feq a b = Int64.bits_of_float a = Int64.bits_of_float b

let status_eq (a : Wire.job_status) (b : Wire.job_status) =
  a.Wire.id = b.Wire.id && a.Wire.spec = b.Wire.spec && a.Wire.state = b.Wire.state
  && a.Wire.tested = b.Wire.tested
  && a.Wire.store_hits = b.Wire.store_hits
  && a.Wire.store_misses = b.Wire.store_misses
  && feq a.Wire.wall b.Wire.wall

let frame_eq (a : Wire.frame) (b : Wire.frame) =
  match (a, b) with
  | Wire.Status_reply xs, Wire.Status_reply ys ->
      List.length xs = List.length ys && List.for_all2 status_eq xs ys
  | Wire.Result_reply ra, Wire.Result_reply rb ->
      status_eq ra.status rb.status
      && ra.config_text = rb.config_text
      && ra.summary = rb.summary
  | Wire.Stats_reply sa, Wire.Stats_reply sb ->
      { sa with Wire.uptime = 0.0 } = { sb with Wire.uptime = 0.0 }
      && feq sa.Wire.uptime sb.Wire.uptime
  | Wire.Worker_welcome wa, Wire.Worker_welcome wb ->
      wa.worker = wb.worker
      && wa.wire_version = wb.wire_version
      && feq wa.heartbeat_every wb.heartbeat_every
      && feq wa.lease_ttl wb.lease_ttl
      && wa.already_done = wb.already_done
  | a, b -> a = b

let decode_all buf ~pos ~len = Wire.decode buf ~pos ~len

(* 1. round trip: decode (encode f) = f, consuming the whole buffer *)
let roundtrip =
  qt ~count:1000 "wire: encode/decode round trip" frame_gen (fun f ->
      let buf = Wire.encode f in
      match decode_all buf ~pos:0 ~len:(Bytes.length buf) with
      | Ok (g, consumed) -> consumed = Bytes.length buf && frame_eq f g
      | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" (Wire.error_to_string e))

(* 2. framing: two concatenated frames decode back to back *)
let concatenated =
  qt ~count:300 "wire: concatenated frames" (pair frame_gen frame_gen) (fun (a, b) ->
      let ba = Wire.encode a and bb = Wire.encode b in
      let buf = Bytes.concat Bytes.empty [ ba; bb ] in
      match decode_all buf ~pos:0 ~len:(Bytes.length buf) with
      | Error _ -> false
      | Ok (a', used) -> (
          frame_eq a a'
          &&
          match decode_all buf ~pos:used ~len:(Bytes.length buf - used) with
          | Ok (b', used') -> frame_eq b b' && used + used' = Bytes.length buf
          | Error _ -> false))

(* 3. truncation: any proper prefix is Need_more, never a crash *)
let truncated =
  qt ~count:500 "wire: truncated frames ask for more" (pair frame_gen (int_bound 1000))
    (fun (f, cut) ->
      let buf = Wire.encode f in
      let len = cut mod Bytes.length buf in
      match decode_all buf ~pos:0 ~len with
      | Error (Wire.Need_more n) -> n > 0 && len + n <= Bytes.length buf
      | Ok _ | Error _ -> false)

(* 4. garbage: decoding random bytes never raises *)
let garbage_total =
  qt ~count:1000 "wire: random bytes never raise"
    (string_size ~gen:(char_range '\x00' '\xff') (int_bound 64))
    (fun s ->
      let buf = Bytes.of_string s in
      match decode_all buf ~pos:0 ~len:(Bytes.length buf) with
      | Ok _ | Error _ -> true)

(* 5. bit flips in a valid frame never raise; header flips give the right
   typed error *)
let flipped =
  qt ~count:1000 "wire: single byte corruption never raises"
    (tup3 frame_gen nat (int_range 1 255))
    (fun (f, at, delta) ->
      let buf = Wire.encode f in
      let i = at mod Bytes.length buf in
      Bytes.set buf i (Char.chr ((Char.code (Bytes.get buf i) + delta) land 0xff));
      match decode_all buf ~pos:0 ~len:(Bytes.length buf) with
      | Ok _ | Error _ -> true)

let show_result = function
  | Ok (_, n) -> Printf.sprintf "Ok (frame, %d)" n
  | Error e -> "Error: " ^ Wire.error_to_string e

let hostile_header () =
  let ok = Wire.encode Wire.Stats in
  (* wrong version byte -> Bad_version with the offending byte *)
  let bad_version = Bytes.copy ok in
  Bytes.set bad_version 4 '\x07';
  (match Wire.decode bad_version ~pos:0 ~len:(Bytes.length bad_version) with
  | Error (Wire.Bad_version 7) -> ()
  | r -> Alcotest.failf "wrong version: got %s" (show_result r));
  (* unknown tag -> Bad_tag *)
  let bad_tag = Bytes.copy ok in
  Bytes.set bad_tag 5 '\xee';
  (match Wire.decode bad_tag ~pos:0 ~len:(Bytes.length bad_tag) with
  | Error (Wire.Bad_tag 0xee) -> ()
  | r -> Alcotest.failf "unknown tag: got %s" (show_result r));
  (* length prefix above max_frame -> Oversized, rejected before allocation *)
  let oversized = Bytes.of_string "\xff\xff\xff\xff" in
  (match Wire.decode oversized ~pos:0 ~len:4 with
  | Error (Wire.Oversized _) -> ()
  | r -> Alcotest.failf "oversized: got %s" (show_result r));
  (* announced length longer than the real body -> trailing garbage *)
  let trailing =
    let b = Wire.encode (Wire.Cancel_reply true) in
    Bytes.concat Bytes.empty [ b; Bytes.make 3 'x' ]
  in
  (* rewrite the length prefix to claim the 3 junk bytes *)
  let n = Bytes.length trailing - 4 in
  Bytes.set trailing 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set trailing 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set trailing 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set trailing 3 (Char.chr (n land 0xff));
  (match Wire.decode trailing ~pos:0 ~len:(Bytes.length trailing) with
  | Error (Wire.Malformed _) -> ()
  | r -> Alcotest.failf "trailing bytes: got %s" (show_result r));
  (* a string field whose own length prefix lies about the payload *)
  let lying = Wire.encode (Wire.Result "abcdef") in
  (* the string length lives right after version+tag; inflate it *)
  Bytes.set lying 9 '\xff';
  match Wire.decode lying ~pos:0 ~len:(Bytes.length lying) with
  | Error (Wire.Malformed _) -> ()
  | r -> Alcotest.failf "lying string length: got %s" (show_result r)

(* protocol-version gating: legacy frames still ship as v1 (old daemons
   keep decoding them), fleet frames ship as v2, and a fleet tag smuggled
   under a v1 header is refused as an unknown tag — v1 never grew new
   tags retroactively *)
let version_gating () =
  let legacy = Wire.encode Wire.Stats in
  (match Bytes.get legacy 4 with
  | '\x01' -> ()
  | c -> Alcotest.failf "legacy frame claims version %d" (Char.code c));
  let fleet = Wire.encode (Wire.Lease_request { worker = "w"; capacity = 3 }) in
  (match Bytes.get fleet 4 with
  | '\x02' -> ()
  | c -> Alcotest.failf "fleet frame claims version %d" (Char.code c));
  (match Wire.decode fleet ~pos:0 ~len:(Bytes.length fleet) with
  | Ok (Wire.Lease_request { worker = "w"; capacity = 3 }, _) -> ()
  | r -> Alcotest.failf "fleet frame: got %s" (show_result r));
  let downgraded = Bytes.copy fleet in
  Bytes.set downgraded 4 '\x01';
  match Wire.decode downgraded ~pos:0 ~len:(Bytes.length downgraded) with
  | Error (Wire.Bad_tag _) -> ()
  | r -> Alcotest.failf "downgraded fleet frame: got %s" (show_result r)

(* The wire codec is content-agnostic about the format menu: hostile menus
   (unknown tokens, control bytes, embedded NULs) travel intact as Submit
   payloads and are rejected by the schedulers's typed validation, never by
   the codec — and config exchange texts smuggling an unknown format token
   ride batches unharmed, to be refused by the worker's Config.parse. *)
let hostile_formats_payload () =
  List.iter
    (fun menu ->
      let f = Wire.Submit { Wire.bench = "cg"; cls = "W"; shadow = false;
                            priority = 0; eval_steps = None; formats = menu;
                            strategy = "" } in
      let buf = Wire.encode f in
      match Wire.decode buf ~pos:0 ~len:(Bytes.length buf) with
      | Ok (Wire.Submit s, _) ->
          Alcotest.check Alcotest.string "menu intact" menu s.Wire.formats;
          (* the validation layer, not the codec, rejects it *)
          Alcotest.check Alcotest.bool "menu refused by validation" true
            (Result.is_error (Formats.menu_of_string menu))
      | r -> Alcotest.failf "hostile menu: got %s" (show_result r))
    [ "zz9"; "bf16,\x00,single"; "e99m99"; "\xff\xfe"; "bf16;single" ];
  (* a batch item whose config text carries an unknown format flag decodes
     fine; rejecting the text is the worker's job *)
  let hostile_text = "e9m9 MODULE: cg" in
  let b =
    Wire.Lease_reply
      (Some { Wire.lease = "L1"; bench = "cg"; cls = "W"; eval_steps = None;
              retries = 0; items = [ ("k1", hostile_text) ] })
  in
  let buf = Wire.encode b in
  match Wire.decode buf ~pos:0 ~len:(Bytes.length buf) with
  | Ok (Wire.Lease_reply (Some { Wire.items = [ ("k1", t) ]; _ }), _) ->
      Alcotest.check Alcotest.string "config text intact" hostile_text t
  | r -> Alcotest.failf "hostile batch: got %s" (show_result r)

(* Same contract for strategy tokens: the codec carries any byte string
   verbatim — hostile or unknown tokens decode fine and are refused with a
   typed error by Strategy.of_string at the validation layer (exercised
   end-to-end against Scheduler.submit in the server suite), never by the
   codec and never via an exception. *)
let hostile_strategy_payload () =
  List.iter
    (fun strategy ->
      let f = Wire.Submit { Wire.bench = "cg"; cls = "W"; shadow = false;
                            priority = 0; eval_steps = None; formats = "";
                            strategy } in
      let buf = Wire.encode f in
      match Wire.decode buf ~pos:0 ~len:(Bytes.length buf) with
      | Ok (Wire.Submit s, _) ->
          Alcotest.check Alcotest.string "token intact" strategy s.Wire.strategy;
          Alcotest.check Alcotest.bool "token refused by validation" true
            (Result.is_error (Strategy.of_string strategy))
      | r -> Alcotest.failf "hostile strategy: got %s" (show_result r))
    [ "zz9"; "anneal:"; "anneal:9q"; "bfs\x00"; "\xff\xfe"; "delta;bfs"; "spl it" ];
  (* and the known spellings all validate *)
  List.iter
    (fun strategy ->
      Alcotest.check Alcotest.bool
        (Printf.sprintf "%S accepted" strategy)
        true
        (Result.is_ok (Strategy.of_string strategy)))
    [ ""; "bfs"; "split"; "delta"; "anneal"; "anneal:42"; "ANNEAL:42"; " bfs " ]

let empty_window () =
  match Wire.decode (Bytes.create 0) ~pos:0 ~len:0 with
  | Error (Wire.Need_more 4) -> ()
  | r -> Alcotest.failf "empty buffer: got %s" (show_result r)

let bad_window () =
  let buf = Wire.encode Wire.Stats in
  (match Wire.decode buf ~pos:2 ~len:(Bytes.length buf) with
  | Error (Wire.Malformed _) -> ()
  | r -> Alcotest.failf "window past the end: got %s" (show_result r));
  match Wire.decode buf ~pos:(-1) ~len:2 with
  | Error (Wire.Malformed _) -> ()
  | r -> Alcotest.failf "negative pos: got %s" (show_result r)

let suite =
  [
    roundtrip;
    concatenated;
    truncated;
    garbage_total;
    flipped;
    ("wire: hostile headers give typed errors", `Quick, hostile_header);
    ("wire: hostile format menus travel intact", `Quick, hostile_formats_payload);
    ("wire: hostile strategy tokens travel intact", `Quick, hostile_strategy_payload);
    ("wire: fleet tags are version-gated", `Quick, version_gating);
    ("wire: empty window", `Quick, empty_window);
    ("wire: invalid windows", `Quick, bad_window);
  ]
