(* End-to-end tests for the campaign server: the cross-campaign result
   store (memoization + in-flight dedup + exception withdrawal), the
   scheduler (identical finals vs inline search, store-served duplicate
   campaigns, priorities, cancellation, poison-job quarantine), and the
   socket daemon with the typed client (including a hostile peer). *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains s sub =
  let n = String.length sub in
  let rec go i =
    if i + n > String.length s then false
    else String.sub s i n = sub || go (i + 1)
  in
  go 0

(* A controllable benchmark bundle: [n_ops] chains, the [poison] subset
   must stay double (see Test_search.synthetic); [delay] slows every
   verification down so jobs stay running long enough to race. *)
let synthetic_kernel ?(name = "syn.W") ?(delay = 0.0) ~n_ops ~poison () =
  let t = Builder.create () in
  let out = Builder.alloc_f t n_ops in
  let main =
    Builder.func t ~module_:"syn" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for k = 0 to n_ops - 1 do
          let c = Builder.fconst b (if List.mem k poison then 0.1 else 0.5) in
          let v = Builder.fadd b c c in
          Builder.storef b (Builder.at (out + k)) v
        done)
  in
  let program = Builder.program t ~main in
  let reference = Array.init n_ops (fun k -> if List.mem k poison then 0.2 else 1.0) in
  {
    Kernel.name;
    program;
    setup = (fun _ -> ());
    output = (fun vm -> Vm.read_f vm out n_ops);
    verify =
      (fun res ->
        if delay > 0.0 then Thread.delay delay;
        res = reference);
    reference;
    hints = Config.empty;
    comm_bytes = (fun ~ranks:_ _ -> 0.0);
  }

let default_spec =
  { Wire.bench = "syn"; cls = "W"; shadow = false; priority = 0; eval_steps = None; formats = ""; strategy = "" }

let with_stack ?(workers = 2) ?options ~resolve f =
  let pool = Pool.create ~options:{ Pool.default_options with workers } () in
  let cache = Compile.create_cache () in
  let store = Store.create () in
  let sched = Scheduler.create ?options ~resolve ~pool ~cache ~store () in
  Fun.protect
    ~finally:(fun () ->
      Scheduler.shutdown sched ~cancel_running:true ();
      Pool.shutdown pool)
    (fun () -> f sched store)

(* ------------------------------------------------------------------ store *)

let test_store_memoizes () =
  let store = Store.create () in
  let computed = ref 0 in
  let f () =
    incr computed;
    Verdict.Pass
  in
  let v1, served1 = Store.find_or_compute store ~key:"k" f in
  let v2, served2 = Store.find_or_compute store ~key:"k" f in
  checkb "first is computed" false served1;
  checkb "second is served" true served2;
  checkb "verdicts equal" true (v1 = v2);
  checki "computed once" 1 !computed;
  let s = Store.stats store in
  checki "one hit" 1 s.Store.hits;
  checki "one miss" 1 s.Store.misses;
  checki "one entry" 1 s.Store.entries;
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Store.hit_rate s)

let test_store_inflight_dedup () =
  let store = Store.create () in
  let computed = ref 0 in
  let f () =
    incr computed;
    Thread.delay 0.05;
    Verdict.Pass
  in
  let served = Array.make 8 false in
  let threads =
    List.init 8 (fun i ->
        Thread.create
          (fun () ->
            let _, s = Store.find_or_compute store ~key:"k" f in
            served.(i) <- s)
          ())
  in
  List.iter Thread.join threads;
  checki "computed exactly once" 1 !computed;
  checki "seven served" 7 (Array.fold_left (fun n s -> if s then n + 1 else n) 0 served);
  let s = Store.stats store in
  checkb "waiters counted" true (s.Store.waits >= 1)

let test_store_withdraws_on_exception () =
  let store = Store.create () in
  (match Store.find_or_compute store ~key:"k" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  (* the pending claim was withdrawn: the next requester computes *)
  let v, served = Store.find_or_compute store ~key:"k" (fun () -> Verdict.Pass) in
  checkb "recomputed after failure" false served;
  checkb "pass" true (v = Verdict.Pass)

(* waiters blocked on an in-flight computation that *fails*: the withdrawn
   claim must wake them, exactly one re-claims and recomputes, and the
   rest dedup onto that recomputation — nobody deadlocks, nobody sees the
   exception, and the key is computed successfully exactly once *)
let test_store_withdraw_under_concurrent_waiters () =
  let store = Store.create () in
  let recomputed = ref 0 in
  let failed = ref false in
  let first =
    Thread.create
      (fun () ->
        match
          Store.find_or_compute store ~key:"k" (fun () ->
              Thread.delay 0.05;
              failwith "boom")
        with
        | _ -> ()
        | exception Failure _ -> failed := true)
      ()
  in
  Thread.delay 0.01 (* let the doomed computation claim the key first *);
  let results = Array.make 6 None in
  let waiters =
    List.init 6 (fun i ->
        Thread.create
          (fun () ->
            let v, served =
              Store.find_or_compute store ~key:"k" (fun () ->
                  incr recomputed;
                  Verdict.Pass)
            in
            results.(i) <- Some (v, served))
          ())
  in
  Thread.join first;
  List.iter Thread.join waiters;
  checkb "the claiming thread saw its exception" true !failed;
  checki "exactly one waiter recomputed" 1 !recomputed;
  Array.iteri
    (fun i r ->
      match r with
      | Some (Verdict.Pass, _) -> ()
      | Some _ -> Alcotest.failf "waiter %d got a wrong verdict" i
      | None -> Alcotest.failf "waiter %d never resolved" i)
    results;
  checki "five waiters served by the recomputation" 5
    (Array.fold_left
       (fun n r -> match r with Some (_, true) -> n + 1 | _ -> n)
       0 results);
  let s = Store.stats store in
  checki "one entry despite the failure" 1 s.Store.entries

(* -------------------------------------------------------------- scheduler *)

let wait_running sched id =
  let rec go n =
    if n > 2000 then Alcotest.failf "%s never started" id;
    match Scheduler.status sched (Some id) with
    | Ok [ { Wire.state = Wire.Running; _ } ] -> ()
    | _ ->
        Thread.delay 0.005;
        go (n + 1)
  in
  go 0

let wait_done sched id =
  let rec go n =
    if n > 4000 then Alcotest.failf "%s never finished" id;
    match Scheduler.result sched id with
    | Ok r -> r
    | Error _ ->
        Thread.delay 0.005;
        go (n + 1)
  in
  go 0

let test_identical_campaigns_identical_finals () =
  let k = synthetic_kernel ~n_ops:6 ~poison:[ 1; 4 ] () in
  let inline = Bfs.search (Kernel.target k) in
  let inline_text = Config.print k.Kernel.program inline.Bfs.final in
  with_stack ~resolve:(fun _ -> Ok k) (fun sched store ->
      let a = Result.get_ok (Scheduler.submit sched default_spec) in
      let _, text_a, _ = wait_done sched a in
      let b = Result.get_ok (Scheduler.submit sched default_spec) in
      let status_b, text_b, _ = wait_done sched b in
      checkb "job A final = inline final" true (String.equal text_a inline_text);
      checkb "job B final = inline final" true (String.equal text_b inline_text);
      (* B ran strictly after A: every one of its evaluations is a store hit *)
      checki "B entirely served from the store" status_b.Wire.tested
        status_b.Wire.store_hits;
      checkb "B tested something" true (status_b.Wire.tested > 0);
      let s = Store.stats store in
      checki "store entries = unique evaluations" s.Store.misses s.Store.entries)

let test_concurrent_campaigns_evaluate_once () =
  let k = synthetic_kernel ~delay:0.002 ~n_ops:5 ~poison:[ 2 ] () in
  with_stack ~resolve:(fun _ -> Ok k) (fun sched store ->
      let a = Result.get_ok (Scheduler.submit sched default_spec) in
      let b = Result.get_ok (Scheduler.submit sched default_spec) in
      let _, text_a, _ = wait_done sched a in
      let _, text_b, _ = wait_done sched b in
      checkb "same final configuration" true (String.equal text_a text_b);
      let s = Store.stats store in
      (* in-flight dedup: byte-identical racing campaigns never evaluate a
         key twice, so every store entry was computed exactly once *)
      checki "every unique key computed once" s.Store.misses s.Store.entries;
      checkb "the racing campaign was served" true (s.Store.hits > 0))

let test_priorities_and_cancel () =
  let k = synthetic_kernel ~delay:0.01 ~n_ops:6 ~poison:[ 0 ] () in
  let log_lock = Mutex.create () in
  let log_lines = ref [] in
  let log s = Mutex.protect log_lock (fun () -> log_lines := s :: !log_lines) in
  let options = { Scheduler.default_options with max_concurrent = 1 } in
  let pool = Pool.create ~options:{ Pool.default_options with workers = 2 } () in
  let cache = Compile.create_cache () in
  let store = Store.create () in
  let sched =
    Scheduler.create ~options ~log ~resolve:(fun _ -> Ok k) ~pool ~cache ~store ()
  in
  Fun.protect
    ~finally:(fun () ->
      Scheduler.shutdown sched ~cancel_running:true ();
      Pool.shutdown pool)
    (fun () ->
      let a = Result.get_ok (Scheduler.submit sched default_spec) in
      (* make sure the single runner is busy with A before queueing the
         contenders, or A itself would lose the priority pick *)
      wait_running sched a;
      let low = Result.get_ok (Scheduler.submit sched default_spec) in
      let high =
        Result.get_ok (Scheduler.submit sched { default_spec with Wire.priority = 5 })
      in
      let cancelled = Result.get_ok (Scheduler.submit sched default_spec) in
      checkb "queued job cancels" true (Scheduler.cancel sched cancelled);
      checkb "unknown job does not cancel" false (Scheduler.cancel sched "j9999");
      let _ = wait_done sched a in
      let _ = wait_done sched low in
      let _ = wait_done sched high in
      Scheduler.wait_idle sched;
      (* with one runner, the high-priority job must start before the
         low-priority one submitted ahead of it *)
      let running_order =
        List.rev !log_lines
        |> List.filter_map (fun l ->
               match String.index_opt l ':' with
               | Some i
                 when String.length l > i + 2
                      && String.sub l (i + 2) (min 7 (String.length l - i - 2))
                         = "RUNNING" ->
                   Some (String.sub l 0 i)
               | _ -> None)
      in
      (match running_order with
      | [ _; second; third ] ->
          checkb "high priority ran second" true (String.equal second high);
          checkb "low priority ran last" true (String.equal third low)
      | o -> Alcotest.failf "expected 3 RUNNING lines, got %d" (List.length o));
      (match Scheduler.result sched cancelled with
      | Ok (st, _, _) -> checkb "cancelled state" true (st.Wire.state = Wire.Cancelled)
      | Error e -> Alcotest.fail e);
      checkb "terminal job does not cancel again" false (Scheduler.cancel sched cancelled))

let test_poison_job_quarantine () =
  let k = synthetic_kernel ~n_ops:4 ~poison:[] () in
  (* an exception from an *evaluation* is classified by the harness; to
     poison the campaign DRIVER itself, blow up the shadow trace that a
     shadow-guided job runs before searching *)
  let poisoned = { k with Kernel.setup = (fun _ -> failwith "driver poison") } in
  let dir = Filename.temp_file "craft_server_state" "" in
  Sys.remove dir;
  let options = { Scheduler.default_options with state_dir = Some dir } in
  with_stack ~options ~resolve:(fun _ -> Ok poisoned) (fun sched _ ->
      let id =
        Result.get_ok (Scheduler.submit sched { default_spec with Wire.shadow = true })
      in
      let status, _, _ = wait_done sched id in
      (match status.Wire.state with
      | Wire.Quarantined _ -> ()
      | st ->
          Alcotest.failf "expected quarantine, got %s"
            (match st with
            | Wire.Done -> "done"
            | Wire.Cancelled -> "cancelled"
            | Wire.Failed w -> "failed: " ^ w
            | _ -> "queued/running"));
      (* the per-job state directory was created for the resume attempt *)
      checkb "job state dir exists" true (Sys.file_exists (Filename.concat dir id)));
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let test_resolve_rejection () =
  with_stack
    ~resolve:(fun spec ->
      if spec.Wire.bench = "syn" then
        Ok (synthetic_kernel ~n_ops:2 ~poison:[] ())
      else Error "no such benchmark")
    (fun sched _ ->
      (match Scheduler.submit sched { default_spec with Wire.bench = "nope" } with
      | Error _ -> ()
      | Ok id -> Alcotest.failf "bogus spec accepted as %s" id);
      (* a hostile format menu is refused at submission, with a typed error
         naming the token — it never reaches the queue or a worker *)
      (match Scheduler.submit sched { default_spec with Wire.formats = "bf16,zz9" } with
      | Error why -> checkb "error names the token" true (contains why "zz9")
      | Ok id -> Alcotest.failf "hostile menu accepted as %s" id);
      (* a valid menu still submits *)
      (match Scheduler.submit sched { default_spec with Wire.formats = "bf16,single" } with
      | Ok _ -> ()
      | Error why -> Alcotest.failf "valid menu refused: %s" why);
      (* hostile strategy tokens are likewise refused at submission with a
         typed error naming the token — never a crash, never queued *)
      List.iter
        (fun tok ->
          match Scheduler.submit sched { default_spec with Wire.strategy = tok } with
          | Error why -> checkb "error names the token" true (contains why tok)
          | Ok id -> Alcotest.failf "hostile strategy %S accepted as %s" tok id)
        [ "zz9"; "anneal:"; "anneal:9q"; "bfs;drop" ];
      (* while every documented spelling still submits *)
      List.iter
        (fun tok ->
          match Scheduler.submit sched { default_spec with Wire.strategy = tok } with
          | Ok _ -> ()
          | Error why -> Alcotest.failf "valid strategy %S refused: %s" tok why)
        [ ""; "bfs"; "split"; "delta"; "anneal"; "anneal:7" ];
      match Scheduler.status sched (Some "j0042") with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unknown job has a status")

(* --------------------------------------------------------- socket daemon *)

let temp_socket () =
  let path = Filename.temp_file "craft_srv" ".sock" in
  Sys.remove path;
  path

let test_daemon_over_socket () =
  let k = synthetic_kernel ~n_ops:5 ~poison:[ 3 ] () in
  let inline = Bfs.search (Kernel.target k) in
  let inline_text = Config.print k.Kernel.program inline.Bfs.final in
  with_stack ~resolve:(fun _ -> Ok k) (fun sched _ ->
      let path = temp_socket () in
      let srv = Server.start ~scheduler:sched (Server.Unix_path path) in
      Fun.protect ~finally:(fun () -> Server.stop srv) (fun () ->
          let c = Result.get_ok (Client.connect (Server.Unix_path path)) in
          let id = Result.get_ok (Client.submit c default_spec) in
          (* a second concurrent client watches the same job *)
          let c2 = Result.get_ok (Client.connect (Server.Unix_path path)) in
          let events = ref 0 in
          let (_ : int) =
            Result.get_ok (Client.watch c2 ~job:id (fun _ -> incr events))
          in
          let status, text, summary = Result.get_ok (Client.wait c id) in
          checkb "done over the wire" true (status.Wire.state = Wire.Done);
          checkb "streamed final config = inline search final" true
            (String.equal text inline_text);
          checkb "summary mentions pass" true
            (String.length summary > 0
            && String.ends_with ~suffix:"pass" summary);
          checkb "watch streamed events" true (!events > 0);
          let stats = Result.get_ok (Client.stats c) in
          checki "one job submitted" 1 stats.Wire.submitted;
          checki "one job completed" 1 stats.Wire.completed;
          checkb "cancel of unknown job is false" true
            (Result.get_ok (Client.cancel c "j9999") = false);
          Client.close c;
          Client.close c2);
      checkb "socket file unlinked on stop" false (Sys.file_exists path))

(* a hostile peer gets a typed error and a closed connection; the daemon
   keeps serving well-behaved clients afterwards *)
let test_daemon_survives_hostile_client () =
  let k = synthetic_kernel ~n_ops:2 ~poison:[] () in
  with_stack ~resolve:(fun _ -> Ok k) (fun sched _ ->
      let path = temp_socket () in
      let srv = Server.start ~scheduler:sched (Server.Unix_path path) in
      Fun.protect ~finally:(fun () -> Server.stop srv) (fun () ->
          (* wrong version byte *)
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          let bad = Bytes.of_string "\x00\x00\x00\x02\x09\x06" in
          let (_ : int) = Unix.write fd bad 0 (Bytes.length bad) in
          (match Wire.read_frame fd with
          | Ok (Wire.Error_reply why) ->
              checkb "names the version" true (contains why "version")
          | r ->
              Alcotest.failf "expected Error_reply, got %s"
                (match r with Ok _ -> "another frame" | Error e -> Wire.error_to_string e));
          (* ... and the connection is closed after the error *)
          checkb "connection closed" true
            (match Wire.read_frame fd with
            | Error _ -> true
            | Ok _ -> false);
          Unix.close fd;
          (* raw garbage on a fresh connection *)
          let fd2 = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd2 (Unix.ADDR_UNIX path);
          let junk = Bytes.of_string "\x00\x00\x00\x04GARB" in
          let (_ : int) = Unix.write fd2 junk 0 (Bytes.length junk) in
          (match Wire.read_frame fd2 with
          | Ok (Wire.Error_reply _) | Error _ -> ()
          | Ok _ -> Alcotest.fail "garbage produced a real reply");
          Unix.close fd2;
          (* the daemon still serves a well-behaved client *)
          let c = Result.get_ok (Client.connect (Server.Unix_path path)) in
          let id = Result.get_ok (Client.submit c default_spec) in
          let status, _, _ = Result.get_ok (Client.wait c id) in
          checkb "daemon survived" true (status.Wire.state = Wire.Done);
          Client.close c))

(* at the connection limit the daemon sheds the excess dial with a typed
   error frame instead of silently running out of descriptors, and keeps
   serving the connections it already holds *)
let test_connection_limit_shed () =
  let k = synthetic_kernel ~n_ops:2 ~poison:[] () in
  with_stack ~resolve:(fun _ -> Ok k) (fun sched _ ->
      let path = temp_socket () in
      let srv = Server.start ~max_conns:1 ~scheduler:sched (Server.Unix_path path) in
      Fun.protect ~finally:(fun () -> Server.stop srv) (fun () ->
          let c = Result.get_ok (Client.connect (Server.Unix_path path)) in
          (* a completed rpc guarantees the connection is registered *)
          let (_ : Wire.server_stats) = Result.get_ok (Client.stats c) in
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          (match Wire.read_frame fd with
          | Ok (Wire.Error_reply why) ->
              checkb "shed error names the limit" true (contains why "limit")
          | r ->
              Alcotest.failf "expected a shed Error_reply, got %s"
                (match r with Ok _ -> "another frame" | Error e -> Wire.error_to_string e));
          checkb "shed connection closed" true
            (match Wire.read_frame fd with Error _ -> true | Ok _ -> false);
          Unix.close fd;
          (* the held connection still works *)
          let (_ : Wire.server_stats) = Result.get_ok (Client.stats c) in
          Client.close c;
          (* ... and the freed slot becomes reusable (the server notices
             the close asynchronously, so retry the dial briefly) *)
          let rec reusable n =
            if n > 200 then Alcotest.fail "slot never freed"
            else
              let c2 = Result.get_ok (Client.connect (Server.Unix_path path)) in
              match Client.stats c2 with
              | Ok _ -> Client.close c2
              | Error _ ->
                  Client.close c2;
                  Thread.delay 0.01;
                  reusable (n + 1)
          in
          reusable 0))

let suite =
  [
    ("store: memoizes verdicts", `Quick, test_store_memoizes);
    ("store: in-flight dedup computes once", `Quick, test_store_inflight_dedup);
    ("store: withdraws the claim on exception", `Quick, test_store_withdraws_on_exception);
    ( "store: withdrawal wakes concurrent waiters, one recomputes",
      `Quick,
      test_store_withdraw_under_concurrent_waiters );
    ( "scheduler: identical campaigns, identical finals, second served",
      `Quick,
      test_identical_campaigns_identical_finals );
    ( "scheduler: racing identical campaigns evaluate each key once",
      `Quick,
      test_concurrent_campaigns_evaluate_once );
    ("scheduler: priorities and cancellation", `Quick, test_priorities_and_cancel);
    ("scheduler: poison job is quarantined", `Quick, test_poison_job_quarantine);
    ("scheduler: resolve rejection and unknown jobs", `Quick, test_resolve_rejection);
    ("daemon: submit/watch/result over a socket", `Quick, test_daemon_over_socket);
    ("daemon: survives hostile clients", `Quick, test_daemon_survives_hostile_client);
    ("daemon: sheds connections past the limit with a typed error", `Quick,
      test_connection_limit_shed);
  ]
