(* Tests for the pluggable search-strategy subsystem: token parsing,
   bfs-delegation fidelity (Strategy.run Bfs replays the exact evaluation
   sequence of Bfs.search on fuzzed programs), split/delta/anneal sanity
   on known-answer synthetics, anneal fixed-seed determinism across the
   sequential and pool evaluation paths, and strategy-tagged checkpoint
   compatibility — untagged pre-strategy snapshots load and resume as
   bfs, tagged snapshots refuse to resume under a different strategy. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains s sub =
  let n = String.length sub in
  let rec go i =
    if i + n > String.length s then false
    else String.sub s i n = sub || go (i + 1)
  in
  go 0

(* the known-answer synthetic from the BFS tests: [n_ops] const+add
   chains, the poisoned ones losing bits in single precision *)
let synthetic ~n_ops ~poison =
  let t = Builder.create () in
  let out = Builder.alloc_f t n_ops in
  let main =
    Builder.func t ~module_:"syn" "main" ~nf_args:0 ~ni_args:0 (fun b _ _ ->
        for k = 0 to n_ops - 1 do
          let c = Builder.fconst b (if List.mem k poison then 0.1 else 0.5) in
          let v = Builder.fadd b c c in
          Builder.storef b (Builder.at (out + k)) v
        done)
  in
  let program = Builder.program t ~main in
  let reference = Array.init n_ops (fun k -> if List.mem k poison then 0.2 else 1.0) in
  Bfs.Target.make program
    ~setup:(fun _ -> ())
    ~output:(fun vm -> Vm.read_f vm out n_ops)
    ~verify:(fun res -> res = reference)

(* ------------------------------------------------------------- tokens *)

let test_tokens () =
  let ok s t =
    match Strategy.of_string s with
    | Ok t' -> checkb (Printf.sprintf "%S parses" s) true (t' = t)
    | Error why -> Alcotest.failf "%S refused: %s" s why
  in
  ok "" Strategy.Bfs;
  ok "bfs" Strategy.Bfs;
  ok " BFS " Strategy.Bfs;
  ok "split" Strategy.Split;
  ok "delta" Strategy.Delta;
  ok "anneal" (Strategy.Anneal Strategy.default_seed);
  ok "anneal:42" (Strategy.Anneal 42);
  List.iter
    (fun s ->
      checkb
        (Printf.sprintf "%S refused" s)
        true
        (Result.is_error (Strategy.of_string s)))
    [ "zz9"; "anneal:"; "anneal:x"; "bfs;drop"; "b fs" ];
  List.iter
    (fun t ->
      checkb "to_string round-trips" true
        (Strategy.of_string (Strategy.to_string t) = Ok t))
    [
      Strategy.Bfs;
      Strategy.Split;
      Strategy.Delta;
      Strategy.Anneal Strategy.default_seed;
      Strategy.Anneal 7;
    ];
  checks "default seed prints bare" "anneal"
    (Strategy.to_string (Strategy.Anneal Strategy.default_seed))

(* --------------------------------------------------- bfs delegation *)

(* wrap both evaluation entry points so every configuration tested is
   recorded (as its digest) in evaluation order *)
let recording target =
  let log = ref [] in
  let m = Mutex.create () in
  let note cfg =
    Mutex.lock m;
    log := Config.digest target.Bfs.Target.program cfg :: !log;
    Mutex.unlock m
  in
  let wrap f cfg =
    note cfg;
    f cfg
  in
  ( {
      target with
      Bfs.Target.eval = wrap target.Bfs.Target.eval;
      raw_eval = wrap target.Bfs.Target.raw_eval;
    },
    log )

let prop_bfs_delegation =
  let gen =
    QCheck2.Gen.(pair (int_range 1 6) (list_size (int_bound 4) (int_bound 5)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25
       ~name:"Strategy.run Bfs replays Bfs.search's exact eval sequence" gen
       (fun (n_ops, poison) ->
         let t1, log1 = recording (synthetic ~n_ops ~poison) in
         let r1 = Bfs.search t1 in
         let t2, log2 = recording (synthetic ~n_ops ~poison) in
         let r2 = Strategy.run Strategy.Bfs t2 in
         !log1 <> [] && !log1 = !log2
         && r1.Bfs.tested = r2.Bfs.tested
         && r1.Bfs.final_pass = r2.Bfs.final_pass
         && r1.Bfs.log = r2.Bfs.log
         && Config.digest t1.Bfs.Target.program r1.Bfs.final
            = Config.digest t2.Bfs.Target.program r2.Bfs.final))

(* -------------------------------------------- the machine strategies *)

let test_machines_find_the_answer () =
  let bfs = Bfs.search (synthetic ~n_ops:10 ~poison:[ 3; 7 ]) in
  List.iter
    (fun tok ->
      let name = Strategy.to_string tok in
      let r = Strategy.run tok (synthetic ~n_ops:10 ~poison:[ 3; 7 ]) in
      checkb (name ^ " passes") true r.Bfs.final_pass;
      (* exactly the benign 8 chains * 2 insns survive; the top-up sweep
         makes every strategy maximal over the same move set *)
      checki (name ^ " replaced") 16 r.Bfs.static_replaced;
      checkb (name ^ " saves at least bfs bits") true
        (r.Bfs.bits_saved >= bfs.Bfs.bits_saved))
    [ Strategy.Split; Strategy.Delta; Strategy.Anneal Strategy.default_seed ]

let test_machines_all_poisoned () =
  List.iter
    (fun tok ->
      let name = Strategy.to_string tok in
      let r = Strategy.run tok (synthetic ~n_ops:4 ~poison:[ 0; 1; 2; 3 ]) in
      checkb (name ^ " still passes") true r.Bfs.final_pass;
      checkb (name ^ " keeps few") true (r.Bfs.static_replaced <= 4))
    [ Strategy.Split; Strategy.Delta; Strategy.Anneal Strategy.default_seed ]

let test_anneal_determinism () =
  let t = synthetic ~n_ops:12 ~poison:[ 2; 9 ] in
  let p = t.Bfs.Target.program in
  let go workers =
    Strategy.run
      ~options:{ Bfs.default_options with workers }
      (Strategy.Anneal 42) t
  in
  let a = go 1 in
  let b = go 1 in
  let c = go 4 in
  checkb "passes" true a.Bfs.final_pass;
  checks "same seed, same final (sequential rerun)"
    (Config.digest p a.Bfs.final)
    (Config.digest p b.Bfs.final);
  checks "same seed, same final (pool path)"
    (Config.digest p a.Bfs.final)
    (Config.digest p c.Bfs.final);
  checki "same evals" a.Bfs.tested c.Bfs.tested;
  checki "same bits" a.Bfs.bits_saved c.Bfs.bits_saved

(* --------------------------------------------- checkpoint compatibility *)

let with_temp f =
  let path = Filename.temp_file "craft_strategy" ".ck" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* the committed fixture is a verbatim pre-strategy checkpoint — written
   before the strategy record existed — and must load with strategy "bfs" *)
let test_prestrategy_fixture_loads_as_bfs () =
  let path =
    Filename.concat (Filename.dirname Sys.executable_name) "prestrategy.ckpt"
  in
  match Checkpoint.load ~path with
  | Error why -> Alcotest.failf "fixture refused: %s" why
  | Ok snap ->
      checks "untagged snapshot is bfs" "bfs" snap.Checkpoint.strategy;
      checki "tested" 7 snap.Checkpoint.tested;
      checkb "passing carried" true
        (snap.Checkpoint.passing = [ "M:syn"; "I:12@e5m10" ])

let test_bfs_snapshots_stay_untagged () =
  with_temp (fun path ->
      let snap =
        {
          Checkpoint.key = "cafe";
          tested = 3;
          next_seq = 1;
          queue = [];
          passing = [ "I:4" ];
          counters = [];
          log = [ "one line" ];
          strategy = "bfs";
        }
      in
      Checkpoint.save ~path snap;
      (* byte-compatible with the pre-strategy format: no strategy record *)
      checkb "no strategy line for bfs" false
        (contains (read_file path) "strategy");
      checks "loads back as bfs" "bfs"
        (Result.get_ok (Checkpoint.load ~path)).Checkpoint.strategy;
      (* a machine strategy's tag round-trips *)
      Checkpoint.save ~path { snap with strategy = "anneal:42" };
      checkb "tag written" true (contains (read_file path) "strategy anneal");
      checks "tag loads back" "anneal:42"
        (Result.get_ok (Checkpoint.load ~path)).Checkpoint.strategy)

let test_tagged_snapshot_refuses_other_strategy () =
  with_temp (fun path ->
      let target = synthetic ~n_ops:6 ~poison:[ 1 ] in
      let options =
        {
          Bfs.default_options with
          checkpoint = Some (Bfs.checkpoint ~resume:true path);
        }
      in
      (* run split to completion so a split-tagged snapshot lands on disk *)
      let r = Strategy.run ~options Strategy.Split target in
      checkb "split wrote snapshots" true (r.Bfs.snapshots > 0);
      checks "on-disk tag is split" "split"
        (Result.get_ok (Checkpoint.load ~path)).Checkpoint.strategy;
      (* split itself resumes its own snapshot... *)
      let r3 = Strategy.run ~options Strategy.Split target in
      checkb "split resumes split" true
        (List.exists (fun l -> contains l "RESUME from split") r3.Bfs.log);
      (* ...but delta must refuse it and still finish fresh *)
      let r2 = Strategy.run ~options Strategy.Delta target in
      checkb "delta still passes" true r2.Bfs.final_pass;
      checkb "refusal is narrated" true
        (List.exists
           (fun l -> contains l "not resumed" && contains l "split")
           r2.Bfs.log))

let test_bfs_resumes_untagged_snapshot_via_strategy_run () =
  with_temp (fun path ->
      let target = synthetic ~n_ops:6 ~poison:[ 1 ] in
      let options resume =
        {
          Bfs.default_options with
          checkpoint = Some (Bfs.checkpoint ~resume path);
        }
      in
      (* a bfs campaign leaves an untagged snapshot behind... *)
      let r = Strategy.run ~options:(options false) Strategy.Bfs target in
      checkb "bfs wrote snapshots" true (r.Bfs.snapshots > 0);
      checkb "snapshot is untagged" false (contains (read_file path) "strategy");
      (* ...which a resuming bfs run accepts (pre-strategy compatibility) *)
      let r2 = Strategy.run ~options:(options true) Strategy.Bfs target in
      checkb "resumed run passes" true r2.Bfs.final_pass;
      checkb "no refusal narrated" false
        (List.exists (fun l -> contains l "not resumed") r2.Bfs.log))

let suite =
  [
    ("strategy: token parse/print", `Quick, test_tokens);
    prop_bfs_delegation;
    ("strategy: split/delta/anneal find the known answer", `Quick, test_machines_find_the_answer);
    ("strategy: machines survive an all-poisoned kernel", `Quick, test_machines_all_poisoned);
    ("strategy: anneal seed is deterministic across eval paths", `Quick, test_anneal_determinism);
    ("strategy: pre-strategy fixture loads as bfs", `Quick, test_prestrategy_fixture_loads_as_bfs);
    ("strategy: bfs snapshots stay untagged", `Quick, test_bfs_snapshots_stay_untagged);
    ("strategy: tagged snapshot refuses other strategies", `Quick, test_tagged_snapshot_refuses_other_strategy);
    ("strategy: bfs resumes untagged snapshots", `Quick, test_bfs_resumes_untagged_snapshot_via_strategy_run);
  ]
